//! Cross-crate pipeline tests: trace generation → I/O → labeling →
//! simulation → TDC, exercising the public APIs the way the experiment
//! binaries do.

use scip_repro::*;

use cdn_sim::runner::{run_policy, PolicyKind, TraceCtx};
use cdn_trace::{TraceGenerator, TraceStats, Workload};

#[test]
fn trace_roundtrips_through_binary_io() {
    let trace = TraceGenerator::generate(Workload::CdnW.profile().config(5_000, 3));
    let dir = std::env::temp_dir().join("scip_repro_pipeline_io");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("w.bin");
    cdn_trace::io::write_binary(&path, &trace).unwrap();
    let back = cdn_trace::io::read_binary(&path).unwrap();
    assert_eq!(trace, back);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn simulator_grid_smoke() {
    let trace = TraceGenerator::generate(Workload::CdnT.profile().config(40_000, 5));
    let stats = TraceStats::compute(&trace);
    let ctx = TraceCtx::new(&trace, 5);
    for frac in [0.01, 0.05] {
        let cap = stats.cache_bytes_for_fraction(frac);
        let belady = run_policy(PolicyKind::Belady, cap, &trace, &ctx).miss_ratio;
        for kind in [
            PolicyKind::Scip,
            PolicyKind::AscIp,
            PolicyKind::S4Lru,
            PolicyKind::Lrb,
        ] {
            let m = run_policy(kind, cap, &trace, &ctx);
            assert!(m.miss_ratio >= belady - 1e-9, "{}", m.policy);
            assert!(m.miss_ratio <= 1.0);
        }
    }
}

#[test]
fn experiment_tables_generate_and_save() {
    let bench = cdn_sim::experiments::Bench::generate(20_000, 77);
    let t1 = cdn_sim::experiments::table1(&bench).unwrap();
    assert!(!t1.is_empty());
    let f7 = cdn_sim::experiments::fig7(&bench).unwrap();
    assert_eq!(f7.len(), 9);
    let path = f7.save_tsv("pipeline_test_fig7").unwrap();
    assert!(path.exists());
    std::fs::remove_file(path).ok();
}

#[test]
fn tdc_deployment_runs_end_to_end() {
    let trace = TraceGenerator::generate(Workload::CdnT.profile().config(60_000, 9));
    let stats = TraceStats::compute(&trace);
    let span = trace.last().unwrap().wall_secs;
    let report = tdc::run_deployment(
        &trace,
        tdc::DeploymentConfig {
            tdc: tdc::TdcConfig {
                oc_nodes: 2,
                oc_capacity: stats.cache_bytes_for_fraction(0.01),
                dc_capacity: stats.cache_bytes_for_fraction(0.04),
                deploy_at: u64::MAX,
                seed: 9,
            },
            latency: tdc::LatencyModel::default(),
            deploy_fraction: 0.5,
            bucket_secs: (span / 30.0).max(1e-6),
        },
    );
    let total: u64 = report.buckets.iter().map(|b| b.requests).sum();
    assert_eq!(total, 60_000);
    assert!(report.before.bto_ratio > 0.0);
    // Deployment must not collapse the system.
    assert!(report.after.bto_ratio <= report.before.bto_ratio + 0.05);
    assert!(report.after.mean_latency_ms > 0.0);
}

#[test]
fn figure4_models_beat_chance_on_zro_task() {
    use cdn_learning::{accuracy, Classifier, ContextualBandit, Gbdt, GbdtParams, Normalizer};
    use cdn_trace::label::{label_trace, RequestLabel};

    let trace = TraceGenerator::generate(Workload::CdnA.profile().config(60_000, 13));
    let stats = TraceStats::compute(&trace);
    let cap = stats.cache_bytes_for_fraction(0.01);
    let labels = label_trace(&trace, cap);

    // Build the miss-only ZRO dataset with the simple online features.
    let mut freq: cdn_cache::FxHashMap<cdn_cache::ObjectId, (u32, u64)> =
        cdn_cache::FxHashMap::default();
    let mut ds = cdn_learning::Dataset::new();
    for r in &trace {
        let e = freq.entry(r.id).or_insert((0, r.tick));
        let gap = r.tick.saturating_sub(e.1) as f64;
        let feats = vec![
            (r.size.max(1) as f64).ln(),
            (e.0 as f64 + 1.0).ln(),
            (gap + 1.0).ln(),
        ];
        e.0 += 1;
        e.1 = r.tick;
        match labels.labels[r.tick as usize] {
            RequestLabel::MissReused => ds.push(feats, 0.0).unwrap(),
            RequestLabel::MissZro { .. } => ds.push(feats, 1.0).unwrap(),
            _ => {}
        }
    }
    let (train, test) = ds.temporal_split(0.7).unwrap();
    let mut rng = cdn_cache::SimRng::new(5);
    let train = train.balanced(&mut rng);
    let test = test.balanced(&mut rng);
    let norm = Normalizer::fit(&train.x).unwrap();
    let mut tx = train.x.clone();
    norm.apply_all(&mut tx);
    let mut sx = test.x.clone();
    norm.apply_all(&mut sx);

    let mut gbm = Gbdt::new(GbdtParams::default());
    gbm.fit(&tx, &train.y);
    let gbm_acc = accuracy(&sx, &test.y, |r| gbm.predict_score(r)).unwrap();
    assert!(gbm_acc > 0.6, "GBM accuracy {gbm_acc}");

    let mut mab = ContextualBandit::new(8);
    mab.fit(&tx, &train.y);
    let mab_acc = accuracy(&sx, &test.y, |r| mab.predict_score(r)).unwrap();
    assert!(mab_acc > 0.55, "MAB accuracy {mab_acc}");
}
