//! End-to-end shape assertions across crates: the qualitative claims the
//! paper's evaluation rests on, checked at reduced scale on all three
//! synthetic workloads.

use scip_repro::*;

use cdn_policies::replacement::Lru;
use cdn_policies::replay;
use cdn_trace::{BeladyOracle, TraceGenerator, TraceStats, Workload};
use scip::{Sci, Scip};

const REQUESTS: u64 = 120_000;
const SEED: u64 = 1234;

fn trace_for(w: Workload) -> (Vec<cdn_cache::Request>, TraceStats) {
    let trace = TraceGenerator::generate(w.profile().config(REQUESTS, SEED));
    let stats = TraceStats::compute(&trace);
    (trace, stats)
}

#[test]
fn miss_ratio_monotone_in_cache_size() {
    for w in Workload::ALL {
        let (trace, stats) = trace_for(w);
        let mut last = 1.1;
        for frac in [0.005, 0.02, 0.08, 0.3] {
            let cap = stats.cache_bytes_for_fraction(frac);
            let mut lru = Lru::new(cap);
            let mr = replay(&mut lru, &trace).miss_ratio();
            assert!(
                mr <= last + 0.01,
                "{}: mr {mr} at frac {frac} above smaller-cache mr {last}",
                w.name()
            );
            last = mr;
        }
    }
}

#[test]
fn belady_lower_bounds_scip_and_lru() {
    for w in Workload::ALL {
        let (trace, stats) = trace_for(w);
        let cap = stats.cache_bytes_for_fraction(0.05);
        let belady = BeladyOracle::run(&trace, cap);
        let mut scip = Scip::new(cap, SEED);
        let s = replay(&mut scip, &trace).miss_ratio();
        let mut lru = Lru::new(cap);
        let l = replay(&mut lru, &trace).miss_ratio();
        assert!(
            belady <= s + 1e-9,
            "{}: belady {belady} vs scip {s}",
            w.name()
        );
        assert!(
            belady <= l + 1e-9,
            "{}: belady {belady} vs lru {l}",
            w.name()
        );
    }
}

#[test]
fn scip_beats_lru_on_every_workload() {
    // The headline claim, at the paper's 64 GB-equivalent point.
    for w in Workload::ALL {
        let (trace, stats) = trace_for(w);
        let cap = stats.cache_bytes_for_fraction(w.paper_cache_fraction(64.0));
        let mut scip = Scip::new(cap, SEED);
        let s = replay(&mut scip, &trace).miss_ratio();
        let mut lru = Lru::new(cap);
        let l = replay(&mut lru, &trace).miss_ratio();
        assert!(
            s < l + 0.005,
            "{}: SCIP {s} should not lose to LRU {l}",
            w.name()
        );
    }
}

#[test]
fn scip_not_worse_than_sci_where_pzros_matter() {
    // Figure 7's claim, strongest on the burst-heavy CDN-W analog.
    let (trace, stats) = trace_for(Workload::CdnT);
    let cap = stats.cache_bytes_for_fraction(0.05);
    let mut scip = Scip::new(cap, SEED);
    let s = replay(&mut scip, &trace).miss_ratio();
    let mut sci = Sci::new(cap, SEED);
    let c = replay(&mut sci, &trace).miss_ratio();
    assert!(s <= c + 0.01, "SCIP {s} vs SCI {c}");
}

#[test]
fn scip_beats_lip_substantially() {
    // Figure 8 discussion: LIP is the weakest insertion baseline.
    use cdn_policies::insertion::{deciders::Lip, InsertionCache};
    for w in Workload::ALL {
        let (trace, stats) = trace_for(w);
        let cap = stats.cache_bytes_for_fraction(w.paper_cache_fraction(64.0));
        let mut scip = Scip::new(cap, SEED);
        let s = replay(&mut scip, &trace).miss_ratio();
        let mut lip = InsertionCache::new(Lip, cap, "LIP");
        let l = replay(&mut lip, &trace).miss_ratio();
        assert!(s < l, "{}: SCIP {s} vs LIP {l}", w.name());
    }
}

#[test]
fn zro_oracle_treatment_reduces_misses() {
    // Figure 1/3: treating labeled ZRO+P-ZRO never hurts, usually helps.
    use cdn_trace::label::{label_trace, oracle_replay, OracleTreatment};
    for w in Workload::ALL {
        let (trace, stats) = trace_for(w);
        let cap = stats.cache_bytes_for_fraction(0.01);
        let labels = label_trace(&trace, cap);
        let base = labels.summary.miss_ratio();
        let both = oracle_replay(&trace, &labels, cap, OracleTreatment::Both, 1.0);
        assert!(
            both <= base + 1e-9,
            "{}: oracle both {both} vs base {base}",
            w.name()
        );
        // And the class structure exists at all.
        assert!(labels.summary.zro > 0, "{}: no ZROs?", w.name());
        assert!(labels.summary.pzro > 0, "{}: no P-ZROs?", w.name());
    }
}

#[test]
fn workload_class_shares_match_paper_ranges() {
    // Figure 1 calibration: CDN-A has the highest ZRO share of misses;
    // CDN-W has the highest P-ZRO share of hits (paper: 21.7 % average).
    use cdn_trace::label::label_trace;
    let mut zro_shares = Vec::new();
    let mut pzro_shares = Vec::new();
    for w in Workload::ALL {
        let (trace, stats) = trace_for(w);
        let cap = stats.cache_bytes_for_fraction(0.01);
        let s = label_trace(&trace, cap).summary;
        zro_shares.push((w, s.zro_of_misses()));
        pzro_shares.push((w, s.pzro_of_hits()));
    }
    let max_zro = zro_shares
        .iter()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap();
    assert_eq!(max_zro.0, Workload::CdnA, "ZRO shares: {zro_shares:?}");
    // CDN-W's P-ZRO share must be substantial (paper: 21.7 % average);
    // every workload has a meaningful but sub-majority share.
    let w_share = pzro_shares
        .iter()
        .find(|(w, _)| *w == Workload::CdnW)
        .unwrap()
        .1;
    assert!(w_share > 0.15, "P-ZRO shares: {pzro_shares:?}");
    for (w, share) in &pzro_shares {
        assert!(
            (0.02..0.6).contains(share),
            "{}: P-ZRO share {share} out of range",
            w.name()
        );
    }
}

#[test]
fn scip_enhancement_does_not_break_lruk() {
    use cdn_policies::replacement::LruK;
    let (trace, stats) = trace_for(Workload::CdnA);
    let cap = stats.cache_bytes_for_fraction(w_frac());
    let mut plain = LruK::new(cap);
    let p = replay(&mut plain, &trace).miss_ratio();
    let mut enhanced = scip::enhance::lruk_scip(cap, 2, SEED);
    let e = replay(&mut enhanced, &trace).miss_ratio();
    assert!(e <= p + 0.03, "LRU-K-SCIP {e} vs LRU-K {p}");
}

fn w_frac() -> f64 {
    Workload::CdnA.paper_cache_fraction(64.0)
}
