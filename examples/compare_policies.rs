//! Compare every policy in the workspace on one workload — a miniature
//! Figure 8 + Figure 10 in one run.
//!
//! ```bash
//! cargo run --release --example compare_policies [cdn-t|cdn-w|cdn-a]
//! ```

use cdn_sim::runner::{run_policy, PolicyKind, TraceCtx};
use cdn_trace::{TraceGenerator, TraceStats, Workload};

fn main() {
    let workload = match std::env::args().nth(1).as_deref() {
        Some("cdn-w") => Workload::CdnW,
        Some("cdn-a") => Workload::CdnA,
        _ => Workload::CdnT,
    };
    let trace = TraceGenerator::generate(workload.profile().config(200_000, 11));
    let stats = TraceStats::compute(&trace);
    let capacity = stats.cache_bytes_for_fraction(workload.paper_cache_fraction(64.0));
    println!(
        "{} @ 64GB-equivalent cache ({:.1} MB)\n",
        workload.name(),
        capacity as f64 / 1e6
    );

    let mut policies = vec![
        PolicyKind::Belady,
        PolicyKind::Scip,
        PolicyKind::Sci,
        PolicyKind::Lru,
    ];
    policies.extend(PolicyKind::INSERTION_BASELINES);
    policies.extend(PolicyKind::REPLACEMENT_BASELINES);

    let ctx = TraceCtx::new(&trace, 3);
    let mut rows: Vec<(String, f64, f64)> = policies
        .into_iter()
        .map(|kind| {
            let m = run_policy(kind, capacity, &trace, &ctx);
            (m.policy, m.miss_ratio, m.tps)
        })
        .collect();
    rows.sort_by(|a, b| a.1.total_cmp(&b.1));

    println!("{:<14} {:>10} {:>12}", "policy", "miss", "TPS (K/s)");
    println!("{}", "-".repeat(38));
    for (name, mr, tps) in rows {
        println!("{:<14} {:>9.2}% {:>12.0}", name, mr * 100.0, tps / 1e3);
    }
}
