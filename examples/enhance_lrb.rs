//! §4 in action: bolt SCIP onto LRU-K and LRB and measure the gain
//! (the paper's Figure 12 scenario).
//!
//! ```bash
//! cargo run --release --example enhance_lrb
//! ```

use cdn_policies::replacement::{Lrb, LrbConfig, LruK};
use cdn_policies::replay;
use cdn_trace::{TraceGenerator, TraceStats, Workload};

fn main() {
    let trace = TraceGenerator::generate(Workload::CdnA.profile().config(200_000, 13));
    let stats = TraceStats::compute(&trace);
    let capacity = stats.cache_bytes_for_fraction(Workload::CdnA.paper_cache_fraction(64.0));
    let lrb_cfg = LrbConfig {
        memory_window: 25_000,
        train_interval: 5_000,
        ..LrbConfig::default()
    };
    println!(
        "CDN-A @ {:.1} MB cache — enhancing replacement algorithms with SCIP\n",
        capacity as f64 / 1e6
    );

    let mut rows = Vec::new();
    let mut lruk = LruK::new(capacity);
    rows.push(("LRU-K", replay(&mut lruk, &trace).miss_ratio()));
    let mut lruk_scip = scip::enhance::lruk_scip(capacity, 2, 5);
    rows.push(("LRU-K-SCIP", replay(&mut lruk_scip, &trace).miss_ratio()));
    let mut lruk_asc = scip::enhance::lruk_ascip(capacity, 2);
    rows.push(("LRU-K-ASC-IP", replay(&mut lruk_asc, &trace).miss_ratio()));

    let mut lrb = Lrb::with_config(capacity, lrb_cfg.clone(), 5);
    rows.push(("LRB", replay(&mut lrb, &trace).miss_ratio()));
    let mut lrb_scip = scip::enhance::lrb_scip(capacity, lrb_cfg.clone(), 5);
    rows.push(("LRB-SCIP", replay(&mut lrb_scip, &trace).miss_ratio()));
    let mut lrb_asc = scip::enhance::lrb_ascip(capacity, lrb_cfg, 5);
    rows.push(("LRB-ASC-IP", replay(&mut lrb_asc, &trace).miss_ratio()));

    println!("{:<14} {:>10}", "policy", "miss");
    println!("{}", "-".repeat(25));
    for (name, mr) in rows {
        println!("{:<14} {:>9.2}%", name, mr * 100.0);
    }
    println!("\nLower is better; the -SCIP rows show the enhancement effect.");
}
