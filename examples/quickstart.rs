//! Quickstart: run SCIP on a synthetic CDN trace and compare with LRU.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use cdn_policies::replacement::Lru;
use cdn_policies::replay;
use cdn_trace::{TraceGenerator, TraceStats, Workload};
use scip::Scip;

fn main() {
    // 1. Generate a 200k-request CDN-T-like workload (seeded: reproducible).
    let profile = Workload::CdnT.profile();
    let trace = TraceGenerator::generate(profile.config(200_000, 7));
    let stats = TraceStats::compute(&trace);
    println!(
        "workload: {} requests, {} unique objects, WSS {:.2} GB",
        stats.total_requests,
        stats.unique_objects,
        stats.wss_gb()
    );

    // 2. Size the cache like the paper: 64 GB on a 1097 GB working set.
    let capacity = stats.cache_bytes_for_fraction(Workload::CdnT.paper_cache_fraction(64.0));
    println!(
        "cache: {:.1} MB ({:.2}% of WSS)\n",
        capacity as f64 / 1e6,
        capacity as f64 / stats.wss_bytes as f64 * 100.0
    );

    // 3. Replay through LRU and SCIP.
    let mut lru = Lru::new(capacity);
    let lru_m = replay(&mut lru, &trace);

    let mut scip = Scip::new(capacity, 7);
    let scip_m = replay(&mut scip, &trace);

    println!("LRU  miss ratio: {:.2}%", lru_m.miss_ratio() * 100.0);
    println!("SCIP miss ratio: {:.2}%", scip_m.miss_ratio() * 100.0);
    println!(
        "reduction: {:.2} percentage points",
        (lru_m.miss_ratio() - scip_m.miss_ratio()) * 100.0
    );
    println!(
        "\nSCIP internals: ω_m(mean)={:.3}, ω_p={:.3}, λ={:.4}",
        scip.core().omega_m(),
        scip.core().omega_p(),
        scip.core().lambda()
    );
}
