//! Replay the paper's §5 production story: a two-tier TDC serving diurnal
//! traffic, with SCIP deployed warm at the midpoint of the timeline.
//!
//! ```bash
//! cargo run --release --example tdc_deployment
//! ```

use cdn_trace::{TraceGenerator, TraceStats, Workload};
use tdc::{run_deployment, DeploymentConfig, LatencyModel, TdcConfig};

fn main() {
    let trace = TraceGenerator::generate(Workload::CdnT.profile().config(300_000, 21));
    let stats = TraceStats::compute(&trace);
    let span = trace.last().map(|r| r.wall_secs).unwrap_or(1.0);
    let report = run_deployment(
        &trace,
        DeploymentConfig {
            tdc: TdcConfig {
                oc_nodes: 4,
                oc_capacity: stats.cache_bytes_for_fraction(0.01),
                dc_capacity: stats.cache_bytes_for_fraction(0.05),
                deploy_at: u64::MAX, // overridden by deploy_fraction
                seed: 7,
            },
            latency: LatencyModel::default(),
            deploy_fraction: 0.5,
            bucket_secs: (span / 40.0).max(1e-6),
        },
    );

    println!("TDC deployment study (SCIP deploys at the timeline midpoint)\n");
    println!("bucket  BTO-ratio  BTO-Gbps  latency(ms)");
    for (i, b) in report.buckets.iter().enumerate() {
        let marker = if (b.start_secs..b.start_secs + report.bucket_secs).contains(&(span * 0.5)) {
            "  <- SCIP deployed"
        } else {
            ""
        };
        println!(
            "{:>5}   {:>8.2}%  {:>8.3}  {:>10.1}{marker}",
            i,
            b.bto_ratio() * 100.0,
            b.bto_gbps(report.bucket_secs),
            b.mean_latency_ms()
        );
    }
    println!(
        "\nbefore: BTO {:.2}%, {:.3} Gbps, {:.1} ms",
        report.before.bto_ratio * 100.0,
        report.before.bto_gbps,
        report.before.mean_latency_ms
    );
    println!(
        "after : BTO {:.2}%, {:.3} Gbps, {:.1} ms",
        report.after.bto_ratio * 100.0,
        report.after.bto_gbps,
        report.after.mean_latency_ms
    );
    println!("\n(paper: miss 8.87%→6.59%, BTO traffic −25.7%, latency −26.1%)");
}
