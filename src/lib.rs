//! Umbrella crate for the SCIP (ICPP 2023) reproduction.
//!
//! Re-exports every workspace crate so examples and integration tests can
//! depend on a single package. See README.md for a tour and DESIGN.md for
//! the per-experiment index.

pub use cdn_cache;
pub use cdn_learning;
pub use cdn_policies;
pub use cdn_sim;
pub use cdn_trace;
pub use scip;
pub use tdc;
