//! The §5.2 deployment experiment: replay a diurnal trace through TDC,
//! deploy SCIP mid-timeline, and report BTO bandwidth, BTO ratio and mean
//! latency time series plus before/after aggregates (Figure 6).

use cdn_cache::Request;

use crate::latency::{LatencyModel, ServedBy};
use crate::system::{Tdc, TdcConfig};

/// Experiment parameters.
#[derive(Debug, Clone, Copy)]
pub struct DeploymentConfig {
    /// System shape (its `deploy_at` is overridden by `deploy_fraction`).
    pub tdc: TdcConfig,
    /// Latency model.
    pub latency: LatencyModel,
    /// Fraction of the trace after which SCIP deploys (paper: mid-run).
    pub deploy_fraction: f64,
    /// Wall-clock seconds per reporting bucket.
    pub bucket_secs: f64,
}

impl Default for DeploymentConfig {
    fn default() -> Self {
        DeploymentConfig {
            tdc: TdcConfig::default(),
            latency: LatencyModel::default(),
            deploy_fraction: 0.5,
            bucket_secs: 3_600.0,
        }
    }
}

/// One reporting bucket of the Figure 6 time series.
#[derive(Debug, Clone, Copy, Default)]
pub struct Bucket {
    /// Bucket start, wall seconds.
    pub start_secs: f64,
    /// Requests in the bucket.
    pub requests: u64,
    /// Requests that went back to origin.
    pub bto_requests: u64,
    /// Bytes fetched from origin.
    pub bto_bytes: u64,
    /// Sum of user latencies, ms.
    pub latency_sum_ms: f64,
}

impl Bucket {
    /// BTO ratio within the bucket.
    pub fn bto_ratio(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.bto_requests as f64 / self.requests as f64
        }
    }

    /// BTO bandwidth in Gbps given the bucket width.
    pub fn bto_gbps(&self, bucket_secs: f64) -> f64 {
        self.bto_bytes as f64 * 8.0 / bucket_secs / 1e9
    }

    /// Mean user latency, ms.
    pub fn mean_latency_ms(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.latency_sum_ms / self.requests as f64
        }
    }
}

/// Aggregate over a timeline phase.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseStats {
    /// BTO (miss) ratio.
    pub bto_ratio: f64,
    /// Mean BTO bandwidth, Gbps.
    pub bto_gbps: f64,
    /// Mean user latency, ms.
    pub mean_latency_ms: f64,
}

/// Full experiment output.
#[derive(Debug, Clone)]
pub struct DeploymentReport {
    /// Time series.
    pub buckets: Vec<Bucket>,
    /// Bucket width used.
    pub bucket_secs: f64,
    /// Aggregate before the deployment.
    pub before: PhaseStats,
    /// Aggregate after the deployment.
    pub after: PhaseStats,
}

impl DeploymentReport {
    /// Relative reduction helper: `(before − after) / before`.
    pub fn relative_reduction(before: f64, after: f64) -> f64 {
        if before == 0.0 {
            0.0
        } else {
            (before - after) / before
        }
    }
}

fn phase_stats(buckets: &[Bucket], wall_span: f64) -> PhaseStats {
    let requests: u64 = buckets.iter().map(|b| b.requests).sum();
    let bto: u64 = buckets.iter().map(|b| b.bto_requests).sum();
    let bytes: u64 = buckets.iter().map(|b| b.bto_bytes).sum();
    let lat: f64 = buckets.iter().map(|b| b.latency_sum_ms).sum();
    PhaseStats {
        bto_ratio: if requests == 0 {
            0.0
        } else {
            bto as f64 / requests as f64
        },
        bto_gbps: bytes as f64 * 8.0 / wall_span.max(1e-9) / 1e9,
        mean_latency_ms: if requests == 0 {
            0.0
        } else {
            lat / requests as f64
        },
    }
}

/// Run the deployment replay.
pub fn run_deployment(trace: &[Request], cfg: DeploymentConfig) -> DeploymentReport {
    assert!(!trace.is_empty());
    let deploy_tick = (trace.len() as f64 * cfg.deploy_fraction) as u64;
    let mut tdc_cfg = cfg.tdc;
    tdc_cfg.deploy_at = deploy_tick;
    let mut tdc = Tdc::new(tdc_cfg, cfg.latency);

    let mut buckets: Vec<Bucket> = Vec::new();
    let mut deploy_wall = f64::MAX;
    for r in trace {
        if r.tick == deploy_tick {
            deploy_wall = r.wall_secs;
        }
        let idx = (r.wall_secs / cfg.bucket_secs) as usize;
        while buckets.len() <= idx {
            buckets.push(Bucket {
                start_secs: buckets.len() as f64 * cfg.bucket_secs,
                ..Bucket::default()
            });
        }
        let (served, latency) = tdc.serve(r);
        let b = &mut buckets[idx];
        b.requests += 1;
        b.latency_sum_ms += latency;
        if served == ServedBy::Origin {
            b.bto_requests += 1;
            b.bto_bytes += r.size;
        }
    }
    if deploy_wall == f64::MAX {
        deploy_wall = trace.last().expect("nonempty").wall_secs;
    }

    let split = buckets
        .iter()
        .position(|b| b.start_secs + cfg.bucket_secs > deploy_wall)
        .unwrap_or(buckets.len());
    // Skip the cold-start warmup (first 20 % of the before-phase buckets)
    // when aggregating, as the paper measures a warm production system.
    let warm = split / 5;
    let before = phase_stats(
        &buckets[warm..split],
        (split - warm).max(1) as f64 * cfg.bucket_secs,
    );
    let after = phase_stats(
        &buckets[split..],
        (buckets.len() - split).max(1) as f64 * cfg.bucket_secs,
    );
    DeploymentReport {
        buckets,
        bucket_secs: cfg.bucket_secs,
        before,
        after,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdn_trace::{TraceGenerator, Workload};

    #[test]
    fn deployment_improves_bto_and_latency() {
        let profile = Workload::CdnT.profile();
        let trace = TraceGenerator::generate(profile.config(120_000, 11));
        let stats = cdn_trace::TraceStats::compute(&trace);
        // Bucket width derived from the trace's actual wall-clock span so
        // the timeline has ~50 buckets regardless of request rate.
        let span = trace.last().unwrap().wall_secs;
        let cfg = DeploymentConfig {
            tdc: TdcConfig {
                oc_nodes: 2,
                oc_capacity: stats.cache_bytes_for_fraction(0.01),
                dc_capacity: stats.cache_bytes_for_fraction(0.04),
                deploy_at: u64::MAX,
                seed: 3,
            },
            bucket_secs: (span / 50.0).max(1e-6),
            ..DeploymentConfig::default()
        };
        let report = run_deployment(&trace, cfg);
        assert!(!report.buckets.is_empty());
        assert!(report.before.bto_ratio > 0.0);
        // SCIP should not make the system worse, and typically helps.
        assert!(
            report.after.bto_ratio <= report.before.bto_ratio + 0.02,
            "before {} after {}",
            report.before.bto_ratio,
            report.after.bto_ratio
        );
        assert!(report.after.mean_latency_ms <= report.before.mean_latency_ms * 1.1);
    }

    #[test]
    fn buckets_cover_the_whole_timeline() {
        let profile = Workload::CdnW.profile();
        let trace = TraceGenerator::generate(profile.config(20_000, 5));
        let report = run_deployment(
            &trace,
            DeploymentConfig {
                bucket_secs: 1.0,
                ..DeploymentConfig::default()
            },
        );
        let total: u64 = report.buckets.iter().map(|b| b.requests).sum();
        assert_eq!(total, 20_000);
    }

    #[test]
    fn relative_reduction_math() {
        assert!((DeploymentReport::relative_reduction(8.87, 6.59) - 0.257).abs() < 0.01);
        assert_eq!(DeploymentReport::relative_reduction(0.0, 1.0), 0.0);
    }
}
