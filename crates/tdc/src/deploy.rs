//! The §5.2 deployment experiment: replay a diurnal trace through TDC,
//! deploy SCIP mid-timeline, and report BTO bandwidth, BTO ratio and mean
//! latency time series plus before/after aggregates (Figure 6).
//!
//! Two runners share one timeline loop:
//!
//! - [`run_deployment`] — the plain happy-path replay (the original).
//! - [`run_deployment_resilient`] — the same replay through
//!   [`ResilientTdc`] under a [`FaultSchedule`]. Under
//!   [`FaultSchedule::calm`] its report is bit-identical to the plain one
//!   (same buckets, same aggregates, all degradation counters zero);
//!   tests pin this down.

use cdn_cache::{LatencyHistogram, Request};

use crate::fault::FaultSchedule;
use crate::latency::{LatencyModel, ServedBy};
use crate::resilience::{ResilienceConfig, ResilienceCounters, ResilientTdc, ServeOutcome};
use crate::system::{ConfigError, Tdc, TdcConfig};

/// Experiment parameters.
#[derive(Debug, Clone, Copy)]
pub struct DeploymentConfig {
    /// System shape (its `deploy_at` is overridden by `deploy_fraction`).
    pub tdc: TdcConfig,
    /// Latency model.
    pub latency: LatencyModel,
    /// Fraction of the trace after which SCIP deploys (paper: mid-run).
    pub deploy_fraction: f64,
    /// Wall-clock seconds per reporting bucket.
    pub bucket_secs: f64,
}

impl Default for DeploymentConfig {
    fn default() -> Self {
        DeploymentConfig {
            tdc: TdcConfig::default(),
            latency: LatencyModel::default(),
            deploy_fraction: 0.5,
            bucket_secs: 3_600.0,
        }
    }
}

impl DeploymentConfig {
    /// Check every layer of the experiment config, returning the first
    /// structured rejection.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.tdc.validate()?;
        if !(self.bucket_secs.is_finite() && self.bucket_secs > 0.0) {
            return Err(ConfigError::NonPositiveBucket(self.bucket_secs));
        }
        if !(self.deploy_fraction.is_finite() && self.deploy_fraction >= 0.0) {
            return Err(ConfigError::BadDeployFraction(self.deploy_fraction));
        }
        Ok(())
    }
}

/// One reporting bucket of the Figure 6 time series.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Bucket {
    /// Bucket start, wall seconds.
    pub start_secs: f64,
    /// Requests in the bucket.
    pub requests: u64,
    /// Requests that went back to origin (coalesced followers excluded —
    /// they issue no origin traffic of their own).
    pub bto_requests: u64,
    /// Bytes fetched from origin.
    pub bto_bytes: u64,
    /// Sum of user latencies, ms.
    pub latency_sum_ms: f64,
    /// Requests not served at all (resilient path only; 0 on the plain
    /// path and under a calm schedule).
    pub failed: u64,
    /// Requests answered from the stale store.
    pub stale: u64,
    /// Requests that rode an in-flight origin fetch.
    pub coalesced: u64,
}

impl Bucket {
    /// BTO ratio within the bucket.
    pub fn bto_ratio(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.bto_requests as f64 / self.requests as f64
        }
    }

    /// BTO bandwidth in Gbps given the bucket width.
    pub fn bto_gbps(&self, bucket_secs: f64) -> f64 {
        self.bto_bytes as f64 * 8.0 / bucket_secs / 1e9
    }

    /// Mean user latency, ms.
    pub fn mean_latency_ms(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.latency_sum_ms / self.requests as f64
        }
    }

    /// Fraction of requests answered (fresh or stale) rather than failed.
    pub fn availability(&self) -> f64 {
        if self.requests == 0 {
            1.0
        } else {
            1.0 - self.failed as f64 / self.requests as f64
        }
    }
}

/// Aggregate over a timeline phase.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseStats {
    /// BTO (miss) ratio.
    pub bto_ratio: f64,
    /// Mean BTO bandwidth, Gbps.
    pub bto_gbps: f64,
    /// Mean user latency, ms.
    pub mean_latency_ms: f64,
    /// Fraction of requests answered (fresh or stale); 1.0 when no
    /// request failed.
    pub availability: f64,
    /// Median user latency, ms (histogram bucket upper bound).
    pub p50_ms: f64,
    /// 99th-percentile user latency, ms.
    pub p99_ms: f64,
    /// 99.9th-percentile user latency, ms.
    pub p999_ms: f64,
}

/// Full experiment output.
#[derive(Debug, Clone)]
pub struct DeploymentReport {
    /// Time series.
    pub buckets: Vec<Bucket>,
    /// Bucket width used.
    pub bucket_secs: f64,
    /// Aggregate before the deployment.
    pub before: PhaseStats,
    /// Aggregate after the deployment.
    pub after: PhaseStats,
    /// Latency distribution before the deployment (full phase, no warmup
    /// skip — percentiles describe everything users experienced).
    pub hist_before: LatencyHistogram,
    /// Latency distribution after the deployment.
    pub hist_after: LatencyHistogram,
    /// Degradation/recovery event counts (all zero on the plain path).
    pub counters: ResilienceCounters,
}

impl DeploymentReport {
    /// Relative reduction helper: `(before − after) / before`.
    pub fn relative_reduction(before: f64, after: f64) -> f64 {
        if before == 0.0 {
            0.0
        } else {
            (before - after) / before
        }
    }

    /// Whole-timeline availability (every bucket, no warmup skip).
    pub fn availability(&self) -> f64 {
        let requests: u64 = self.buckets.iter().map(|b| b.requests).sum();
        let failed: u64 = self.buckets.iter().map(|b| b.failed).sum();
        if requests == 0 {
            1.0
        } else {
            1.0 - failed as f64 / requests as f64
        }
    }
}

fn phase_stats(buckets: &[Bucket], wall_span: f64, hist: &LatencyHistogram) -> PhaseStats {
    let requests: u64 = buckets.iter().map(|b| b.requests).sum();
    let bto: u64 = buckets.iter().map(|b| b.bto_requests).sum();
    let bytes: u64 = buckets.iter().map(|b| b.bto_bytes).sum();
    let lat: f64 = buckets.iter().map(|b| b.latency_sum_ms).sum();
    let failed: u64 = buckets.iter().map(|b| b.failed).sum();
    PhaseStats {
        bto_ratio: if requests == 0 {
            0.0
        } else {
            bto as f64 / requests as f64
        },
        bto_gbps: bytes as f64 * 8.0 / wall_span.max(1e-9) / 1e9,
        mean_latency_ms: if requests == 0 {
            0.0
        } else {
            lat / requests as f64
        },
        availability: if requests == 0 {
            1.0
        } else {
            1.0 - failed as f64 / requests as f64
        },
        p50_ms: hist.p50_ms(),
        p99_ms: hist.p99_ms(),
        p999_ms: hist.p999_ms(),
    }
}

/// The shared timeline loop: bucket accounting, before/after histograms
/// and phase aggregation over any per-request serving function.
fn run_timeline<F>(
    trace: &[Request],
    cfg: &DeploymentConfig,
    deploy_tick: u64,
    mut serve: F,
) -> DeploymentReport
where
    F: FnMut(&Request) -> ServeOutcome,
{
    let mut buckets: Vec<Bucket> = Vec::new();
    let mut deploy_wall = f64::MAX;
    let mut hist_before = LatencyHistogram::new();
    let mut hist_after = LatencyHistogram::new();
    for r in trace {
        if r.tick == deploy_tick {
            deploy_wall = r.wall_secs;
        }
        let idx = (r.wall_secs / cfg.bucket_secs) as usize;
        while buckets.len() <= idx {
            buckets.push(Bucket {
                start_secs: buckets.len() as f64 * cfg.bucket_secs,
                ..Bucket::default()
            });
        }
        let o = serve(r);
        let b = &mut buckets[idx];
        b.requests += 1;
        b.latency_sum_ms += o.latency_ms;
        if o.served == Some(ServedBy::Origin) && !o.coalesced {
            b.bto_requests += 1;
        }
        b.bto_bytes += o.bto_bytes;
        if o.failed {
            b.failed += 1;
        }
        if o.stale {
            b.stale += 1;
        }
        if o.coalesced {
            b.coalesced += 1;
        }
        if r.tick < deploy_tick {
            hist_before.record(o.latency_ms);
        } else {
            hist_after.record(o.latency_ms);
        }
    }
    if deploy_wall == f64::MAX {
        deploy_wall = trace.last().expect("nonempty").wall_secs;
    }

    let split = buckets
        .iter()
        .position(|b| b.start_secs + cfg.bucket_secs > deploy_wall)
        .unwrap_or(buckets.len());
    // Skip the cold-start warmup (first 20 % of the before-phase buckets)
    // when aggregating, as the paper measures a warm production system.
    let warm = split / 5;
    let before = phase_stats(
        &buckets[warm..split],
        (split - warm).max(1) as f64 * cfg.bucket_secs,
        &hist_before,
    );
    let after = phase_stats(
        &buckets[split..],
        (buckets.len() - split).max(1) as f64 * cfg.bucket_secs,
        &hist_after,
    );
    DeploymentReport {
        buckets,
        bucket_secs: cfg.bucket_secs,
        before,
        after,
        hist_before,
        hist_after,
        counters: ResilienceCounters::default(),
    }
}

/// Run the deployment replay (plain happy path, no fault model).
pub fn run_deployment(trace: &[Request], cfg: DeploymentConfig) -> DeploymentReport {
    assert!(!trace.is_empty());
    cfg.validate().expect("invalid DeploymentConfig");
    let deploy_tick = (trace.len() as f64 * cfg.deploy_fraction) as u64;
    let mut tdc_cfg = cfg.tdc;
    tdc_cfg.deploy_at = deploy_tick;
    let mut tdc = Tdc::new(tdc_cfg, cfg.latency);
    run_timeline(trace, &cfg, deploy_tick, |r| {
        let (served, latency_ms) = tdc.serve(r);
        ServeOutcome {
            served: Some(served),
            latency_ms,
            stale: false,
            failed: false,
            coalesced: false,
            bto_bytes: if served == ServedBy::Origin {
                r.size
            } else {
                0
            },
        }
    })
}

/// Run the deployment replay through the resilient serving path under a
/// fault schedule. With [`FaultSchedule::calm`] the report is bit-identical
/// to [`run_deployment`]'s.
pub fn run_deployment_resilient(
    trace: &[Request],
    cfg: DeploymentConfig,
    schedule: FaultSchedule,
    res: ResilienceConfig,
) -> Result<DeploymentReport, ConfigError> {
    assert!(!trace.is_empty());
    cfg.validate()?;
    let deploy_tick = (trace.len() as f64 * cfg.deploy_fraction) as u64;
    let mut tdc_cfg = cfg.tdc;
    tdc_cfg.deploy_at = deploy_tick;
    let mut rt = ResilientTdc::new(tdc_cfg, cfg.latency, schedule, res)?;
    let mut report = run_timeline(trace, &cfg, deploy_tick, |r| rt.serve(r));
    report.counters = rt.counters();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdn_trace::{TraceGenerator, Workload};

    #[test]
    fn deployment_improves_bto_and_latency() {
        let profile = Workload::CdnT.profile();
        let trace = TraceGenerator::generate(profile.config(120_000, 11));
        let stats = cdn_trace::TraceStats::compute(&trace);
        // Bucket width derived from the trace's actual wall-clock span so
        // the timeline has ~50 buckets regardless of request rate.
        let span = trace.last().unwrap().wall_secs;
        let cfg = DeploymentConfig {
            tdc: TdcConfig {
                oc_nodes: 2,
                oc_capacity: stats.cache_bytes_for_fraction(0.01),
                dc_capacity: stats.cache_bytes_for_fraction(0.04),
                deploy_at: u64::MAX,
                seed: 3,
            },
            bucket_secs: (span / 50.0).max(1e-6),
            ..DeploymentConfig::default()
        };
        let report = run_deployment(&trace, cfg);
        assert!(!report.buckets.is_empty());
        assert!(report.before.bto_ratio > 0.0);
        // SCIP should not make the system worse, and typically helps.
        assert!(
            report.after.bto_ratio <= report.before.bto_ratio + 0.02,
            "before {} after {}",
            report.before.bto_ratio,
            report.after.bto_ratio
        );
        assert!(report.after.mean_latency_ms <= report.before.mean_latency_ms * 1.1);
        // The plain path never degrades: full availability, zero counters.
        assert_eq!(report.availability(), 1.0);
        assert_eq!(report.counters, ResilienceCounters::default());
        assert!(report.before.p50_ms > 0.0);
        assert!(report.before.p50_ms <= report.before.p99_ms);
        assert!(report.before.p99_ms <= report.before.p999_ms);
    }

    #[test]
    fn buckets_cover_the_whole_timeline() {
        let profile = Workload::CdnW.profile();
        let trace = TraceGenerator::generate(profile.config(20_000, 5));
        let report = run_deployment(
            &trace,
            DeploymentConfig {
                bucket_secs: 1.0,
                ..DeploymentConfig::default()
            },
        );
        let total: u64 = report.buckets.iter().map(|b| b.requests).sum();
        assert_eq!(total, 20_000);
    }

    #[test]
    fn relative_reduction_math() {
        assert!((DeploymentReport::relative_reduction(8.87, 6.59) - 0.257).abs() < 0.01);
        assert_eq!(DeploymentReport::relative_reduction(0.0, 1.0), 0.0);
    }

    #[test]
    fn config_validation_covers_every_layer() {
        let base = DeploymentConfig::default();
        assert!(base.validate().is_ok());
        let bad_bucket = DeploymentConfig {
            bucket_secs: 0.0,
            ..base
        };
        assert_eq!(
            bad_bucket.validate(),
            Err(ConfigError::NonPositiveBucket(0.0))
        );
        let bad_fraction = DeploymentConfig {
            deploy_fraction: f64::NAN,
            ..base
        };
        assert!(matches!(
            bad_fraction.validate(),
            Err(ConfigError::BadDeployFraction(_))
        ));
        let bad_tdc = DeploymentConfig {
            tdc: TdcConfig {
                oc_nodes: 0,
                ..TdcConfig::default()
            },
            ..base
        };
        assert_eq!(bad_tdc.validate(), Err(ConfigError::ZeroOcNodes));
        // The resilient runner surfaces the error instead of panicking.
        let trace = cdn_cache::object::micro_trace(&[(1, 10)]);
        assert!(run_deployment_resilient(
            &trace,
            bad_tdc,
            FaultSchedule::calm(),
            ResilienceConfig::default()
        )
        .is_err());
    }

    /// A 60k-request CDN-T trace dilated to a 600 s span (see
    /// [`crate::fault::dilate_wall_clock`]) plus a matching experiment
    /// config — the shared fixture for the chaos tests.
    fn chaos_fixture() -> (Vec<cdn_cache::Request>, DeploymentConfig, f64) {
        let profile = Workload::CdnT.profile();
        let raw = TraceGenerator::generate(profile.config(60_000, 17));
        let stats = cdn_trace::TraceStats::compute(&raw);
        let raw_span = raw.last().unwrap().wall_secs;
        let trace = crate::fault::dilate_wall_clock(&raw, 600.0 / raw_span);
        let span = trace.last().unwrap().wall_secs;
        let cfg = DeploymentConfig {
            tdc: TdcConfig {
                oc_nodes: 4,
                oc_capacity: stats.cache_bytes_for_fraction(0.01),
                dc_capacity: stats.cache_bytes_for_fraction(0.04),
                deploy_at: u64::MAX,
                seed: 9,
            },
            bucket_secs: (span / 48.0).max(1e-6),
            ..DeploymentConfig::default()
        };
        (trace, cfg, span)
    }

    /// The acceptance-criteria cornerstone: under a calm schedule the
    /// resilient path is *bit-identical* to the plain path — same bucket
    /// series (including latency sums), same aggregates, same histograms,
    /// zero degradation events.
    #[test]
    fn calm_resilient_run_is_bit_identical_to_plain() {
        let (trace, cfg, _span) = chaos_fixture();
        let plain = run_deployment(&trace, cfg);
        let calm = run_deployment_resilient(
            &trace,
            cfg,
            FaultSchedule::calm(),
            ResilienceConfig::default(),
        )
        .unwrap();
        assert_eq!(plain.buckets, calm.buckets);
        assert_eq!(plain.before, calm.before);
        assert_eq!(plain.after, calm.after);
        assert_eq!(plain.hist_before, calm.hist_before);
        assert_eq!(plain.hist_after, calm.hist_after);
        assert_eq!(
            calm.counters,
            ResilienceCounters {
                origin_fetches: calm.counters.origin_fetches,
                ..ResilienceCounters::default()
            },
            "no degradation events under calm"
        );
        assert_eq!(calm.availability(), 1.0);
    }

    #[test]
    fn brownout_degrades_and_recovers_deterministically() {
        let (trace, cfg, span) = chaos_fixture();
        let schedule = FaultSchedule::origin_brownout(span, 42);
        let res = ResilienceConfig::default();
        let run = || run_deployment_resilient(&trace, cfg, schedule.clone(), res).unwrap();
        let a = run();
        let b = run();
        // Deterministic: two same-seed runs agree exactly.
        assert_eq!(a.buckets, b.buckets);
        assert_eq!(a.counters, b.counters);
        // The brownout bites: breaker trips, stale serves happen, and
        // availability dips below 100 % but stays high (graceful, not
        // catastrophic, degradation).
        assert!(a.counters.breaker_trips > 0, "{:?}", a.counters);
        assert!(a.counters.stale_serves > 0, "{:?}", a.counters);
        assert!(a.counters.retries > 0);
        let avail = a.availability();
        assert!(avail < 1.0, "brownout must cost something");
        // Outages cover ~12 % of the span; availability dips by a few
        // points (misses during the outage), not catastrophically.
        assert!(avail > 0.85, "degradation must stay graceful, got {avail}");
        // Outside outage windows the system still serves normally.
        assert!(a.counters.origin_fetches > 0);
    }

    #[test]
    fn oc_churn_fails_over_and_recovers() {
        let (trace, cfg, span) = chaos_fixture();
        let schedule = FaultSchedule::oc_churn(span, 4, 7);
        let report =
            run_deployment_resilient(&trace, cfg, schedule, ResilienceConfig::default()).unwrap();
        let c = report.counters;
        assert_eq!(c.node_resets, 3, "each of nodes 1..4 crashes once");
        assert!(c.failovers > 0, "{c:?}");
        // Crashes reroute to survivors; nothing fails outright and the
        // origin never goes away.
        assert_eq!(report.availability(), 1.0, "{c:?}");
        assert_eq!(c.breaker_trips, 0);
    }
}
