//! A cache node whose insertion/promotion policy flips from LRU to SCIP
//! at a deployment tick — *warm*, exactly like the production rollout
//! (§5.1: "engineers have deployed LRU in TDC, we have merely replaced
//! LRU's insertion policy with SCIP").
//!
//! Before the deploy tick the node forces classic LRU behaviour (MRU
//! insertion, MRU promotion) while still filling SCIP's history lists, so
//! the bandit starts with a realistic view of eviction outcomes the moment
//! it takes over.

use cdn_cache::policy::RejectReason;
use cdn_cache::{
    AccessKind, CachePolicy, InsertPos, LruQueue, ObjectId, PolicyStats, Request, Tick,
};
use scip::core::VictimInfo;
use scip::{ScipConfig, ScipCore};

/// LRU-until-deploy, SCIP-after node policy.
#[derive(Debug, Clone)]
pub struct SwitchableScip {
    cache: LruQueue,
    core: ScipCore,
    /// Tick at which SCIP takes over placement decisions.
    pub deploy_at: Tick,
    stats: PolicyStats,
    /// When set, evicted `(id, size)` pairs accumulate for the caller to
    /// drain — the resilience layer feeds them into its serve-stale store.
    record_evictions: bool,
    pending_evictions: Vec<(ObjectId, u64)>,
}

impl SwitchableScip {
    /// Node with the given capacity, deploying SCIP at `deploy_at`.
    pub fn new(capacity: u64, deploy_at: Tick, seed: u64) -> Self {
        SwitchableScip {
            cache: LruQueue::new(capacity),
            core: ScipCore::new(
                capacity,
                ScipConfig {
                    seed,
                    ..ScipConfig::default()
                },
            ),
            deploy_at,
            stats: PolicyStats::default(),
            record_evictions: false,
            pending_evictions: Vec::new(),
        }
    }

    fn scip_active(&self, tick: Tick) -> bool {
        tick >= self.deploy_at
    }

    /// The SCIP engine (diagnostics).
    pub fn core(&self) -> &ScipCore {
        &self.core
    }

    /// Is `id` currently resident? Read-only: unlike
    /// [`CachePolicy::on_request`] this neither promotes nor inserts, so
    /// peeking first and replaying the real access after is side-effect
    /// equivalent to the single blind access the plain path makes.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.cache.contains(id)
    }

    /// Start (or stop) accumulating evicted `(id, size)` pairs for
    /// [`Self::take_evictions`]. Off by default: the plain serving path
    /// pays nothing for the mechanism.
    pub fn set_record_evictions(&mut self, on: bool) {
        self.record_evictions = on;
        if !on {
            self.pending_evictions.clear();
        }
    }

    /// Drain the evictions recorded since the last call.
    pub fn take_evictions(&mut self) -> Vec<(ObjectId, u64)> {
        std::mem::take(&mut self.pending_evictions)
    }
}

impl CachePolicy for SwitchableScip {
    fn name(&self) -> &str {
        "TDC-node(LRU→SCIP)"
    }

    fn on_request(&mut self, req: &Request) -> AccessKind {
        let active = self.scip_active(req.tick);
        let outcome = if self.cache.contains(req.id) {
            let mut meta = self.cache.remove(req.id).expect("resident");
            meta.hits += 1;
            meta.last_access = req.tick;
            let pos = if active {
                self.core.decide_promotion(meta.hits)
            } else {
                InsertPos::Mru
            };
            match pos {
                InsertPos::Mru => {
                    meta.inserted_at_mru = true;
                    self.cache.insert_meta_mru(meta);
                }
                InsertPos::Lru => {
                    meta.inserted_at_mru = false;
                    self.cache.insert_meta_lru(meta);
                }
            }
            AccessKind::Hit
        } else if !self.cache.admissible(req.size) {
            AccessKind::Rejected(RejectReason::TooLarge)
        } else {
            let verdict = self.core.on_miss_lookup(req.id, req.tick);
            {
                while self.cache.needs_eviction_for(req.size) {
                    let v = self.cache.evict_lru().expect("nonempty");
                    if self.record_evictions {
                        self.pending_evictions.push((v.id, v.size));
                    }
                    self.core.on_evict(VictimInfo {
                        id: v.id,
                        size: v.size,
                        tick: req.tick,
                        inserted_at_mru: v.inserted_at_mru,
                        hits: v.hits,
                        last_access: v.last_access,
                        inserted_tick: v.inserted_tick,
                    });
                    self.stats.evictions += 1;
                }
                let pos = if active {
                    verdict.unwrap_or_else(|| self.core.decide(req.size))
                } else {
                    InsertPos::Mru
                };
                match pos {
                    InsertPos::Mru => self.cache.insert_mru(req.id, req.size, req.tick),
                    InsertPos::Lru => self.cache.insert_lru(req.id, req.size, req.tick),
                };
                self.stats.insertions += 1;
            }
            AccessKind::Miss
        };
        self.core.on_request_end(outcome.is_hit());
        outcome
    }

    fn capacity(&self) -> u64 {
        self.cache.capacity()
    }

    fn used_bytes(&self) -> u64 {
        self.cache.used_bytes()
    }

    fn memory_bytes(&self) -> usize {
        self.cache.memory_bytes() + self.core.memory_bytes()
    }

    fn stats(&self) -> PolicyStats {
        PolicyStats {
            resident_objects: self.cache.len(),
            resident_bytes: self.cache.used_bytes(),
            ..self.stats
        }
    }

    fn for_each_resident(&self, visit: &mut dyn FnMut(&cdn_cache::ResidentEntry)) -> bool {
        cdn_cache::export_lru_queue(&self.cache, 0, visit);
        true
    }

    fn restore_resident(&mut self, entries: &[cdn_cache::ResidentEntry]) -> bool {
        cdn_cache::restore_lru_queue(&mut self.cache, entries);
        true
    }

    fn export_learned(&self) -> Option<Vec<u8>> {
        Some(self.core.export_learned())
    }

    fn restore_learned(&mut self, block: &[u8]) -> bool {
        self.core.restore_learned(block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdn_cache::object::micro_trace;

    #[test]
    fn behaves_as_lru_before_deploy() {
        let mut p = SwitchableScip::new(100, u64::MAX, 1);
        for r in micro_trace(&[(1, 10), (2, 10), (1, 10)]) {
            p.on_request(&r);
        }
        // Pure LRU: hit object at MRU.
        assert_eq!(p.cache.peek_mru().unwrap().id.0, 1);
        assert!(p.cache.peek_mru().unwrap().inserted_at_mru);
    }

    #[test]
    fn histories_warm_before_deploy() {
        let mut p = SwitchableScip::new(20, u64::MAX, 1);
        for r in micro_trace(&(0..50).map(|i| (i, 10)).collect::<Vec<_>>()) {
            p.on_request(&r);
        }
        assert!(!p.core().h_m.is_empty(), "history warmed pre-deploy");
    }

    #[test]
    fn scip_takes_over_after_deploy() {
        let mut p = SwitchableScip::new(1000, 10, 3);
        // After the deploy tick, at least some inserts should land at LRU
        // once ω_l is nonzero — with the 0.5 prior that's immediate.
        let reqs: Vec<(u64, u64)> = (0..200).map(|i| (i, 10)).collect();
        let mut saw_lru_insert = false;
        for r in micro_trace(&reqs) {
            p.on_request(&r);
            saw_lru_insert |= p.cache.iter().any(|m| !m.inserted_at_mru);
        }
        assert!(saw_lru_insert, "SCIP active after deploy");
        // And some of those LRU-inserted victims must have reached H_l.
        assert!(!p.core().h_l.is_empty());
    }
}
