//! TDC — a discrete-event analog of Tencent's T Disk Cache (the paper's
//! Figure 2 architecture and §5 deployment study).
//!
//! The real TDC is a production CDN: an **outside cache (OC) layer** close
//! to users, a **data-center cache (DC) layer** shielding the backing
//! object store (COS), and "back-to-origin" (BTO) traffic whenever both
//! layers miss. Reproducing §5's measurements needs exactly three things,
//! all functions of the cache decision sequence:
//!
//! 1. the BTO ratio (share of requests served from origin),
//! 2. BTO bandwidth (origin bytes per wall-clock second), and
//! 3. mean user access latency (a parametric model over which layer
//!    served each request).
//!
//! [`system::Tdc`] wires OC nodes (object-hash sharded), one DC node and a
//! latency model together; [`deploy::run_deployment`] replays a diurnal
//! trace and flips every node's insertion/promotion policy from LRU to
//! SCIP mid-timeline, warm — mirroring how engineers "merely replaced
//! LRU's insertion policy with SCIP" in the real system (§5.1).

pub mod deploy;
pub mod fault;
pub mod latency;
pub mod resilience;
pub mod switchable;
pub mod system;

pub use deploy::{run_deployment, run_deployment_resilient, DeploymentConfig, DeploymentReport};
pub use fault::{FaultSchedule, LatencySpike, NodeCrash, SpikeTarget, Window};
pub use latency::{LatencyModel, ServedBy};
pub use resilience::{
    BreakerState, CircuitBreaker, ResilienceConfig, ResilienceCounters, ResilientTdc, ServeOutcome,
};
pub use switchable::SwitchableScip;
pub use system::{ConfigError, Tdc, TdcConfig};
