//! The two-tier TDC system: sharded OC nodes in front of one DC node.

use cdn_cache::hash::mix64;
use cdn_cache::{AccessKind, CachePolicy, ObjectId, Request};

use crate::latency::{LatencyModel, ServedBy};
use crate::switchable::SwitchableScip;

/// A structured configuration rejection: every variant names the field and
/// the constraint it violated, so callers can report (or match on) the
/// exact problem instead of unwinding from a deep `assert!`.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `oc_nodes` must be at least 1.
    ZeroOcNodes,
    /// `oc_capacity` must be positive.
    ZeroOcCapacity,
    /// `dc_capacity` must be positive.
    ZeroDcCapacity,
    /// `bucket_secs` must be positive and finite.
    NonPositiveBucket(f64),
    /// `deploy_fraction` must be finite and non-negative.
    BadDeployFraction(f64),
    /// A resilience parameter is out of range; the message names it.
    BadResilience(&'static str),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroOcNodes => write!(f, "oc_nodes must be >= 1"),
            ConfigError::ZeroOcCapacity => write!(f, "oc_capacity must be > 0 bytes"),
            ConfigError::ZeroDcCapacity => write!(f, "dc_capacity must be > 0 bytes"),
            ConfigError::NonPositiveBucket(v) => {
                write!(f, "bucket_secs must be positive and finite, got {v}")
            }
            ConfigError::BadDeployFraction(v) => {
                write!(f, "deploy_fraction must be finite and >= 0, got {v}")
            }
            ConfigError::BadResilience(what) => write!(f, "resilience config: {what}"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// System shape and sizing.
#[derive(Debug, Clone, Copy)]
pub struct TdcConfig {
    /// Number of OC nodes (requests shard by object hash).
    pub oc_nodes: usize,
    /// Byte capacity of each OC node.
    pub oc_capacity: u64,
    /// Byte capacity of the DC layer.
    pub dc_capacity: u64,
    /// Tick at which SCIP deploys everywhere (`u64::MAX` = never).
    pub deploy_at: u64,
    /// Seed.
    pub seed: u64,
}

impl Default for TdcConfig {
    fn default() -> Self {
        TdcConfig {
            oc_nodes: 4,
            oc_capacity: 256 << 20,
            dc_capacity: 1 << 30,
            deploy_at: u64::MAX,
            seed: 7,
        }
    }
}

impl TdcConfig {
    /// Check the shape for values that would only fail later and deeper
    /// (zero modulus panics, caches that can never admit anything).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.oc_nodes == 0 {
            return Err(ConfigError::ZeroOcNodes);
        }
        if self.oc_capacity == 0 {
            return Err(ConfigError::ZeroOcCapacity);
        }
        if self.dc_capacity == 0 {
            return Err(ConfigError::ZeroDcCapacity);
        }
        Ok(())
    }
}

/// The assembled system.
#[derive(Debug)]
pub struct Tdc {
    cfg: TdcConfig,
    oc: Vec<SwitchableScip>,
    dc: SwitchableScip,
    latency: LatencyModel,
}

impl Tdc {
    /// Build a TDC instance, panicking on an invalid shape (see
    /// [`Tdc::try_new`] for the non-panicking path).
    pub fn new(cfg: TdcConfig, latency: LatencyModel) -> Self {
        Self::try_new(cfg, latency).expect("invalid TdcConfig")
    }

    /// Build a TDC instance, rejecting invalid shapes with a
    /// [`ConfigError`] instead of panicking downstream.
    pub fn try_new(cfg: TdcConfig, latency: LatencyModel) -> Result<Self, ConfigError> {
        cfg.validate()?;
        Ok(Tdc {
            cfg,
            oc: (0..cfg.oc_nodes)
                .map(|i| SwitchableScip::new(cfg.oc_capacity, cfg.deploy_at, cfg.seed ^ i as u64))
                .collect(),
            dc: SwitchableScip::new(cfg.dc_capacity, cfg.deploy_at, cfg.seed ^ 0xDC),
            latency,
        })
    }

    /// The OC shard a request maps to.
    #[inline]
    pub(crate) fn primary_shard(&self, id: ObjectId) -> usize {
        (mix64(id.0) % self.oc.len() as u64) as usize
    }

    /// Serve one request through OC → DC → origin; returns which layer
    /// answered and the user-perceived latency in ms.
    pub fn serve(&mut self, req: &Request) -> (ServedBy, f64) {
        let shard = self.primary_shard(req.id);
        let served = if self.oc[shard].on_request(req).is_hit() {
            ServedBy::Oc
        } else if self.dc.on_request(req).is_hit() {
            ServedBy::Dc
        } else {
            ServedBy::Origin
        };
        (served, self.latency.latency_ms(req.size, served))
    }

    /// Aggregate bytes resident across all caches.
    pub fn used_bytes(&self) -> u64 {
        self.oc.iter().map(|n| n.used_bytes()).sum::<u64>() + self.dc.used_bytes()
    }

    /// OC node count.
    pub fn n_oc(&self) -> usize {
        self.oc.len()
    }

    /// The latency model in force.
    pub fn latency(&self) -> &LatencyModel {
        &self.latency
    }

    /// The shape the system was built with.
    pub fn config(&self) -> &TdcConfig {
        &self.cfg
    }

    /// Is `id` resident on OC node `node`? Read-only (no LRU movement).
    pub(crate) fn oc_contains(&self, node: usize, id: ObjectId) -> bool {
        self.oc[node].contains(id)
    }

    /// Drive OC node `node` exactly as the plain serving path would.
    pub(crate) fn oc_request(&mut self, node: usize, req: &Request) -> AccessKind {
        self.oc[node].on_request(req)
    }

    /// Is `id` resident in the DC layer? Read-only.
    pub(crate) fn dc_contains(&self, id: ObjectId) -> bool {
        self.dc.contains(id)
    }

    /// Drive the DC node exactly as the plain serving path would.
    pub(crate) fn dc_request(&mut self, req: &Request) -> AccessKind {
        self.dc.on_request(req)
    }

    /// Mutable access to the DC node (eviction recording).
    pub(crate) fn dc_mut(&mut self) -> &mut SwitchableScip {
        &mut self.dc
    }

    /// Crash OC node `node`: all cache state (contents, SCIP histories,
    /// bandit weights) is lost; the node restarts cold with its original
    /// capacity, deploy tick and seed.
    pub(crate) fn reset_oc_node(&mut self, node: usize) {
        self.oc[node] = SwitchableScip::new(
            self.cfg.oc_capacity,
            self.cfg.deploy_at,
            self.cfg.seed ^ node as u64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdn_cache::object::micro_trace;

    fn tiny() -> Tdc {
        Tdc::new(
            TdcConfig {
                oc_nodes: 2,
                oc_capacity: 100,
                dc_capacity: 300,
                deploy_at: u64::MAX,
                seed: 1,
            },
            LatencyModel::default(),
        )
    }

    #[test]
    fn first_touch_goes_to_origin_then_oc() {
        let mut t = tiny();
        let reqs = micro_trace(&[(1, 10), (1, 10)]);
        let (s0, l0) = t.serve(&reqs[0]);
        let (s1, l1) = t.serve(&reqs[1]);
        assert_eq!(s0, ServedBy::Origin);
        assert_eq!(s1, ServedBy::Oc);
        assert!(l1 < l0);
    }

    #[test]
    fn dc_catches_oc_evictions() {
        let mut t = tiny();
        // Fill one OC shard past capacity; DC (3× bigger) still holds the
        // object, so a re-request is a DC hit, not origin.
        let mut reqs = Vec::new();
        for i in 0..30u64 {
            reqs.push((i, 10));
        }
        reqs.push((0, 10));
        let trace = micro_trace(&reqs);
        let mut last = ServedBy::Origin;
        for r in &trace {
            last = t.serve(r).0;
        }
        assert!(matches!(last, ServedBy::Dc | ServedBy::Oc));
    }

    #[test]
    fn sharding_is_stable() {
        let mut t = tiny();
        let reqs = micro_trace(&[(5, 10), (5, 10), (5, 10)]);
        t.serve(&reqs[0]);
        assert_eq!(t.serve(&reqs[1]).0, ServedBy::Oc);
        assert_eq!(t.serve(&reqs[2]).0, ServedBy::Oc);
    }

    #[test]
    fn invalid_shapes_are_structured_errors() {
        let l = LatencyModel::default();
        let base = TdcConfig::default();
        for (cfg, want) in [
            (
                TdcConfig {
                    oc_nodes: 0,
                    ..base
                },
                ConfigError::ZeroOcNodes,
            ),
            (
                TdcConfig {
                    oc_capacity: 0,
                    ..base
                },
                ConfigError::ZeroOcCapacity,
            ),
            (
                TdcConfig {
                    dc_capacity: 0,
                    ..base
                },
                ConfigError::ZeroDcCapacity,
            ),
        ] {
            assert_eq!(cfg.validate(), Err(want.clone()));
            assert_eq!(Tdc::try_new(cfg, l).err(), Some(want.clone()));
            // Errors render the field name for operators.
            assert!(!want.to_string().is_empty());
        }
        assert!(Tdc::try_new(base, l).is_ok());
    }

    #[test]
    fn reset_loses_node_state() {
        let mut t = tiny();
        let reqs = micro_trace(&[(1, 10), (2, 10), (3, 10), (4, 10)]);
        for r in &reqs {
            t.serve(r);
        }
        let before = t.used_bytes();
        assert!(before > 0);
        t.reset_oc_node(0);
        t.reset_oc_node(1);
        // Only DC bytes remain.
        assert!(t.used_bytes() < before);
        assert_eq!(t.oc.iter().map(|n| n.used_bytes()).sum::<u64>(), 0);
    }
}
