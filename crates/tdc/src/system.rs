//! The two-tier TDC system: sharded OC nodes in front of one DC node.

use cdn_cache::hash::mix64;
use cdn_cache::{CachePolicy, Request};

use crate::latency::{LatencyModel, ServedBy};
use crate::switchable::SwitchableScip;

/// System shape and sizing.
#[derive(Debug, Clone, Copy)]
pub struct TdcConfig {
    /// Number of OC nodes (requests shard by object hash).
    pub oc_nodes: usize,
    /// Byte capacity of each OC node.
    pub oc_capacity: u64,
    /// Byte capacity of the DC layer.
    pub dc_capacity: u64,
    /// Tick at which SCIP deploys everywhere (`u64::MAX` = never).
    pub deploy_at: u64,
    /// Seed.
    pub seed: u64,
}

impl Default for TdcConfig {
    fn default() -> Self {
        TdcConfig {
            oc_nodes: 4,
            oc_capacity: 256 << 20,
            dc_capacity: 1 << 30,
            deploy_at: u64::MAX,
            seed: 7,
        }
    }
}

/// The assembled system.
#[derive(Debug)]
pub struct Tdc {
    oc: Vec<SwitchableScip>,
    dc: SwitchableScip,
    latency: LatencyModel,
}

impl Tdc {
    /// Build a TDC instance.
    pub fn new(cfg: TdcConfig, latency: LatencyModel) -> Self {
        assert!(cfg.oc_nodes > 0);
        Tdc {
            oc: (0..cfg.oc_nodes)
                .map(|i| SwitchableScip::new(cfg.oc_capacity, cfg.deploy_at, cfg.seed ^ i as u64))
                .collect(),
            dc: SwitchableScip::new(cfg.dc_capacity, cfg.deploy_at, cfg.seed ^ 0xDC),
            latency,
        }
    }

    /// Serve one request through OC → DC → origin; returns which layer
    /// answered and the user-perceived latency in ms.
    pub fn serve(&mut self, req: &Request) -> (ServedBy, f64) {
        let shard = (mix64(req.id.0) % self.oc.len() as u64) as usize;
        let served = if self.oc[shard].on_request(req).is_hit() {
            ServedBy::Oc
        } else if self.dc.on_request(req).is_hit() {
            ServedBy::Dc
        } else {
            ServedBy::Origin
        };
        (served, self.latency.latency_ms(req.size, served))
    }

    /// Aggregate bytes resident across all caches.
    pub fn used_bytes(&self) -> u64 {
        self.oc.iter().map(|n| n.used_bytes()).sum::<u64>() + self.dc.used_bytes()
    }

    /// OC node count.
    pub fn n_oc(&self) -> usize {
        self.oc.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdn_cache::object::micro_trace;

    fn tiny() -> Tdc {
        Tdc::new(
            TdcConfig {
                oc_nodes: 2,
                oc_capacity: 100,
                dc_capacity: 300,
                deploy_at: u64::MAX,
                seed: 1,
            },
            LatencyModel::default(),
        )
    }

    #[test]
    fn first_touch_goes_to_origin_then_oc() {
        let mut t = tiny();
        let reqs = micro_trace(&[(1, 10), (1, 10)]);
        let (s0, l0) = t.serve(&reqs[0]);
        let (s1, l1) = t.serve(&reqs[1]);
        assert_eq!(s0, ServedBy::Origin);
        assert_eq!(s1, ServedBy::Oc);
        assert!(l1 < l0);
    }

    #[test]
    fn dc_catches_oc_evictions() {
        let mut t = tiny();
        // Fill one OC shard past capacity; DC (3× bigger) still holds the
        // object, so a re-request is a DC hit, not origin.
        let mut reqs = Vec::new();
        for i in 0..30u64 {
            reqs.push((i, 10));
        }
        reqs.push((0, 10));
        let trace = micro_trace(&reqs);
        let mut last = ServedBy::Origin;
        for r in &trace {
            last = t.serve(r).0;
        }
        assert!(matches!(last, ServedBy::Dc | ServedBy::Oc));
    }

    #[test]
    fn sharding_is_stable() {
        let mut t = tiny();
        let reqs = micro_trace(&[(5, 10), (5, 10), (5, 10)]);
        t.serve(&reqs[0]);
        assert_eq!(t.serve(&reqs[1]).0, ServedBy::Oc);
        assert_eq!(t.serve(&reqs[2]).0, ServedBy::Oc);
    }
}
