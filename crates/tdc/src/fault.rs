//! Deterministic, seeded fault schedules for the TDC simulator.
//!
//! A [`FaultSchedule`] is a plain data description of *what goes wrong
//! when*, expressed against the trace's wall clock: origin outage windows,
//! per-OC-node crash/restart windows (cache state is lost at the crash),
//! and latency-spike windows that multiply a tier's round-trip time. The
//! schedule is pure data — evaluating it never mutates anything — so a
//! replay under a given schedule is exactly as reproducible as the trace
//! itself.
//!
//! Canned generators ([`FaultSchedule::origin_brownout`],
//! [`FaultSchedule::oc_churn`]) derive their windows from a seed via
//! [`SimRng`], scaled to the trace's wall span, so the same `(span, seed)`
//! always yields the same chaos plan. [`FaultSchedule::calm`] is the empty
//! schedule: the resilient serving path under `calm` is required (and
//! tested) to be bit-identical to the plain happy-path simulator.
//!
//! The schedule composes with the `cdn_cache::fault` failpoint registry:
//! under the `fault-injection` feature the resilient path additionally
//! consults the `tdc.origin_fetch` site on every origin attempt, so tests
//! can force failures at exact ticks without authoring a schedule.

use cdn_cache::{Request, SimRng};

/// Stretch a trace's wall clock by `factor` (ticks, ids and sizes are
/// unchanged).
///
/// Generated traces compress a diurnal cycle into a few wall seconds —
/// fine for cache decisions, which are clocked by ticks, but too fast for
/// resilience machinery whose budgets are wall-time: a 200 ms outage can
/// never outlast an origin timeout that must itself exceed the ~200 ms
/// nominal origin RTT. Chaos replays therefore dilate the clock to a
/// production-like span first; both arms of a comparison must replay the
/// same dilated trace.
pub fn dilate_wall_clock(trace: &[Request], factor: f64) -> Vec<Request> {
    assert!(factor.is_finite() && factor > 0.0, "bad dilation {factor}");
    trace
        .iter()
        .map(|r| Request {
            wall_secs: r.wall_secs * factor,
            ..*r
        })
        .collect()
}

/// A half-open wall-clock window `[start_secs, end_secs)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Window {
    /// Window start, trace wall seconds.
    pub start_secs: f64,
    /// Window end (exclusive), trace wall seconds.
    pub end_secs: f64,
}

impl Window {
    /// True if `t` falls inside the window.
    #[inline]
    pub fn contains(&self, t: f64) -> bool {
        t >= self.start_secs && t < self.end_secs
    }
}

/// One OC node's crash: the node is unreachable for the window and loses
/// its entire cache state (it restarts cold at `down.end_secs`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeCrash {
    /// Index of the crashed OC node.
    pub node: usize,
    /// Unreachability window.
    pub down: Window,
}

/// What a latency spike slows down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpikeTarget {
    /// One OC node's round trip (hedging to a sibling can dodge this).
    OcNode(usize),
    /// The OC↔DC leg.
    Dc,
    /// The DC↔origin leg (can push attempts past the origin timeout).
    Origin,
}

/// A latency-spike window: the target's RTT is multiplied by `factor`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySpike {
    /// When the spike is active.
    pub window: Window,
    /// What slows down.
    pub target: SpikeTarget,
    /// RTT multiplier (`> 1`).
    pub factor: f64,
}

/// A full fault plan for one replay.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    /// Windows during which the origin answers nothing.
    pub origin_outages: Vec<Window>,
    /// OC node crash/restart events.
    pub oc_crashes: Vec<NodeCrash>,
    /// Latency-spike windows.
    pub latency_spikes: Vec<LatencySpike>,
}

impl FaultSchedule {
    /// The empty schedule: nothing ever fails.
    pub fn calm() -> Self {
        FaultSchedule::default()
    }

    /// True when no fault is scheduled at all.
    pub fn is_calm(&self) -> bool {
        self.origin_outages.is_empty()
            && self.oc_crashes.is_empty()
            && self.latency_spikes.is_empty()
    }

    /// Seeded origin brownout over `[0, span_secs)`: a few hard outage
    /// windows (~12 % of the span in total) surrounded by origin latency
    /// spikes strong enough to trip per-attempt timeouts, which is what
    /// drives retries and ultimately the circuit breaker.
    pub fn origin_brownout(span_secs: f64, seed: u64) -> Self {
        let mut rng = SimRng::new(seed ^ 0xB20_0B20);
        let mut s = FaultSchedule::default();
        for _ in 0..3 {
            let len = span_secs * rng.f64_range(0.03, 0.05);
            let start = rng.f64_range(0.05, 0.9) * span_secs;
            let outage = Window {
                start_secs: start,
                end_secs: (start + len).min(span_secs),
            };
            // The brownout shoulder: origin RTT ×8 for a stretch around the
            // outage (attempts time out instead of erroring instantly).
            s.latency_spikes.push(LatencySpike {
                window: Window {
                    start_secs: (start - len * 0.5).max(0.0),
                    end_secs: (outage.end_secs + len * 0.5).min(span_secs),
                },
                target: SpikeTarget::Origin,
                factor: 8.0,
            });
            s.origin_outages.push(outage);
        }
        s.origin_outages
            .sort_by(|a, b| a.start_secs.total_cmp(&b.start_secs));
        s
    }

    /// Seeded OC churn over `[0, span_secs)`: each node except node 0
    /// crashes once (losing its cache) for ~5-8 % of the span, and a few
    /// nodes get OC latency spikes big enough to trigger hedging but not
    /// timeouts. Node 0 is spared so there is always a failover target.
    pub fn oc_churn(span_secs: f64, oc_nodes: usize, seed: u64) -> Self {
        let mut rng = SimRng::new(seed ^ 0x0CC_0CC);
        let mut s = FaultSchedule::default();
        for node in 1..oc_nodes {
            let len = span_secs * rng.f64_range(0.05, 0.08);
            let start = rng.f64_range(0.1, 0.85) * span_secs;
            s.oc_crashes.push(NodeCrash {
                node,
                down: Window {
                    start_secs: start,
                    end_secs: (start + len).min(span_secs),
                },
            });
            if rng.chance(0.5) {
                let sp_len = span_secs * rng.f64_range(0.04, 0.07);
                let sp_start = rng.f64_range(0.1, 0.85) * span_secs;
                s.latency_spikes.push(LatencySpike {
                    window: Window {
                        start_secs: sp_start,
                        end_secs: (sp_start + sp_len).min(span_secs),
                    },
                    target: SpikeTarget::OcNode(node),
                    factor: 10.0,
                });
            }
        }
        s
    }

    /// Is the origin hard-down at `t`?
    pub fn origin_down(&self, t: f64) -> bool {
        self.origin_outages.iter().any(|w| w.contains(t))
    }

    /// Is OC node `node` crashed at `t`?
    pub fn node_down(&self, node: usize, t: f64) -> bool {
        self.oc_crashes
            .iter()
            .any(|c| c.node == node && c.down.contains(t))
    }

    /// RTT multiplier for `target` at `t` (product of active spikes; 1.0
    /// when none are active).
    pub fn spike_factor(&self, target: SpikeTarget, t: f64) -> f64 {
        self.latency_spikes
            .iter()
            .filter(|s| s.target == target && s.window.contains(t))
            .map(|s| s.factor)
            .product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calm_has_no_faults() {
        let s = FaultSchedule::calm();
        assert!(s.is_calm());
        assert!(!s.origin_down(0.0));
        assert!(!s.node_down(0, 123.0));
        assert_eq!(s.spike_factor(SpikeTarget::Origin, 50.0), 1.0);
    }

    #[test]
    fn window_is_half_open() {
        let w = Window {
            start_secs: 1.0,
            end_secs: 2.0,
        };
        assert!(!w.contains(0.999));
        assert!(w.contains(1.0));
        assert!(w.contains(1.999));
        assert!(!w.contains(2.0));
    }

    #[test]
    fn brownout_is_deterministic_and_in_span() {
        let a = FaultSchedule::origin_brownout(300.0, 42);
        let b = FaultSchedule::origin_brownout(300.0, 42);
        assert_eq!(a, b);
        assert_ne!(a, FaultSchedule::origin_brownout(300.0, 43));
        assert!(!a.origin_outages.is_empty());
        for w in &a.origin_outages {
            assert!(w.start_secs >= 0.0 && w.end_secs <= 300.0 && w.start_secs < w.end_secs);
        }
        // Spikes envelope the outages.
        assert_eq!(a.latency_spikes.len(), 3);
        assert!(a
            .latency_spikes
            .iter()
            .all(|s| s.target == SpikeTarget::Origin));
    }

    #[test]
    fn churn_spares_node_zero() {
        let s = FaultSchedule::oc_churn(300.0, 4, 7);
        assert_eq!(s, FaultSchedule::oc_churn(300.0, 4, 7));
        assert_eq!(s.oc_crashes.len(), 3);
        assert!(s.oc_crashes.iter().all(|c| c.node != 0));
        for c in &s.oc_crashes {
            let mid = (c.down.start_secs + c.down.end_secs) / 2.0;
            assert!(s.node_down(c.node, mid));
            assert!(!s.node_down(0, mid));
        }
    }

    #[test]
    fn spike_factors_multiply_when_overlapping() {
        let w = Window {
            start_secs: 0.0,
            end_secs: 10.0,
        };
        let s = FaultSchedule {
            latency_spikes: vec![
                LatencySpike {
                    window: w,
                    target: SpikeTarget::Origin,
                    factor: 4.0,
                },
                LatencySpike {
                    window: w,
                    target: SpikeTarget::Origin,
                    factor: 2.0,
                },
                LatencySpike {
                    window: w,
                    target: SpikeTarget::Dc,
                    factor: 3.0,
                },
            ],
            ..FaultSchedule::default()
        };
        assert_eq!(s.spike_factor(SpikeTarget::Origin, 5.0), 8.0);
        assert_eq!(s.spike_factor(SpikeTarget::Dc, 5.0), 3.0);
        assert_eq!(s.spike_factor(SpikeTarget::OcNode(1), 5.0), 1.0);
        assert_eq!(s.spike_factor(SpikeTarget::Origin, 10.0), 1.0);
    }
}
