//! The resilient serving path: timeouts, retries, hedging, circuit
//! breaking, serve-stale, request coalescing and OC failover.
//!
//! [`ResilientTdc`] wraps the plain [`Tdc`] with the machinery a real
//! serving stack puts between tiers:
//!
//! - **Per-tier timeouts** compare each leg's (possibly spiked) round-trip
//!   time against a budget. Timeouts apply to the RTT — time to first
//!   byte — not the transfer: a slow-but-moving download is not an error.
//! - **Bounded retries with exponential backoff + jitter** against the
//!   origin. The jitter draws from a seeded [`SimRng`], so a run is
//!   deterministic; the clock advances by the modeled timeout/backoff, so
//!   retries naturally walk out of short fault windows.
//! - **Hedging**: when the primary OC node's first-byte time exceeds the
//!   hedge threshold, a second read goes to the rendezvous-hash sibling;
//!   the faster copy wins. Hedged probes are read-only — the primary still
//!   processes the request, so cache state stays single-writer.
//! - **Circuit breaker** on the origin: consecutive timeouts trip it open;
//!   after a cooldown it half-opens and a single probe decides whether to
//!   close. While open, misses fail fast instead of burning timeouts.
//! - **Serve-stale**: the DC layer retains a byte-budgeted ghost of
//!   recently evicted objects (its "disk tail"). When the origin is
//!   unreachable, a miss whose object is in the stale store is answered
//!   stale — degraded but available — instead of failing.
//! - **Request coalescing**: while a degraded (slow or doomed) origin
//!   fetch is in flight, further misses for the same object ride it
//!   instead of issuing their own fetch — the thundering-herd guard.
//!   Happy-path fetches complete instantly in the simulator's logical
//!   model, so only degraded fetches open a coalescing window; this is
//!   exactly when herds form in a real system.
//! - **Failover**: requests whose primary OC shard is crashed re-route to
//!   the highest-random-weight (rendezvous) alive node, so one crash
//!   remaps only the crashed node's key range.
//!
//! Under [`FaultSchedule::calm`] every branch above is quiescent and the
//! request path performs *the same cache mutations in the same order* as
//! [`Tdc::serve`]; the `calm_is_bit_identical_to_plain` test pins that
//! down.

use cdn_cache::ghost::GhostEntry;
use cdn_cache::hash::rendezvous_weight;
use cdn_cache::{FxHashMap, GhostList, ObjectId, Request, SimRng, Tick};

use crate::fault::{FaultSchedule, SpikeTarget};
use crate::latency::{LatencyModel, ServedBy};
use crate::system::{ConfigError, Tdc, TdcConfig};

/// Tunables of the resilient path.
#[derive(Debug, Clone, Copy)]
pub struct ResilienceConfig {
    /// OC first-byte budget, ms.
    pub oc_timeout_ms: f64,
    /// DC first-byte budget, ms.
    pub dc_timeout_ms: f64,
    /// Origin per-attempt budget, ms.
    pub origin_timeout_ms: f64,
    /// Origin retries after the first attempt.
    pub max_retries: u32,
    /// First backoff, ms (doubles per retry).
    pub backoff_base_ms: f64,
    /// Uniform jitter fraction applied to each backoff (`0` = none).
    pub backoff_jitter: f64,
    /// Hedge a second OC read once the primary's first byte is this late.
    pub hedge_after_ms: f64,
    /// Consecutive origin timeouts that trip the breaker open.
    pub breaker_threshold: u32,
    /// Seconds the breaker stays open before half-opening a probe.
    pub breaker_cooldown_secs: f64,
    /// Stale-store budget as a fraction of DC capacity.
    pub stale_budget_fraction: f64,
    /// Serve stale DC copies when the origin is unreachable.
    pub serve_stale: bool,
    /// Coalesce misses onto in-flight degraded fetches.
    pub coalesce: bool,
    /// Seed for backoff jitter.
    pub seed: u64,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            oc_timeout_ms: 250.0,
            dc_timeout_ms: 500.0,
            origin_timeout_ms: 1_000.0,
            max_retries: 2,
            backoff_base_ms: 50.0,
            backoff_jitter: 0.2,
            hedge_after_ms: 100.0,
            breaker_threshold: 5,
            breaker_cooldown_secs: 5.0,
            stale_budget_fraction: 0.5,
            serve_stale: true,
            coalesce: true,
            seed: 0x7E51,
        }
    }
}

impl ResilienceConfig {
    /// Reject out-of-range tunables with a structured error.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let pos = |v: f64| v.is_finite() && v > 0.0;
        if !pos(self.oc_timeout_ms) || !pos(self.dc_timeout_ms) || !pos(self.origin_timeout_ms) {
            return Err(ConfigError::BadResilience(
                "timeouts must be positive and finite",
            ));
        }
        if self.max_retries > 16 {
            return Err(ConfigError::BadResilience("max_retries must be <= 16"));
        }
        if !(self.backoff_base_ms.is_finite() && self.backoff_base_ms >= 0.0) {
            return Err(ConfigError::BadResilience("backoff_base_ms must be >= 0"));
        }
        if !(0.0..=1.0).contains(&self.backoff_jitter) {
            return Err(ConfigError::BadResilience(
                "backoff_jitter must be in [0,1]",
            ));
        }
        if !pos(self.hedge_after_ms) {
            return Err(ConfigError::BadResilience("hedge_after_ms must be > 0"));
        }
        if self.breaker_threshold == 0 {
            return Err(ConfigError::BadResilience("breaker_threshold must be >= 1"));
        }
        if !pos(self.breaker_cooldown_secs) {
            return Err(ConfigError::BadResilience(
                "breaker_cooldown_secs must be > 0",
            ));
        }
        if !(0.0..=1.0).contains(&self.stale_budget_fraction) {
            return Err(ConfigError::BadResilience(
                "stale_budget_fraction must be in [0,1]",
            ));
        }
        Ok(())
    }
}

/// Circuit-breaker state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BreakerState {
    /// Requests flow normally.
    Closed,
    /// Failing fast; opened at the contained wall time.
    Open {
        /// Wall second the breaker opened.
        since: f64,
    },
    /// Cooldown elapsed; the next request is a probe.
    HalfOpen,
}

/// Closed → (N consecutive failures) → Open → (cooldown) → HalfOpen →
/// probe success → Closed / probe failure → Open again.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown_secs: f64,
    state: BreakerState,
    consecutive_failures: u32,
    trips: u64,
}

impl CircuitBreaker {
    /// Breaker tripping after `threshold` consecutive failures, probing
    /// after `cooldown_secs` open.
    pub fn new(threshold: u32, cooldown_secs: f64) -> Self {
        CircuitBreaker {
            threshold,
            cooldown_secs,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            trips: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Times the breaker tripped open.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// May a request attempt the origin at wall time `t`? An open breaker
    /// past its cooldown transitions to half-open and admits the probe.
    pub fn allow(&mut self, t: f64) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open { since } => {
                if t >= since + self.cooldown_secs {
                    self.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Record a successful origin round trip.
    pub fn on_success(&mut self) {
        self.consecutive_failures = 0;
        self.state = BreakerState::Closed;
    }

    /// Record a failed origin attempt at wall time `t`; returns `true`
    /// when this failure tripped the breaker open.
    pub fn on_failure(&mut self, t: f64) -> bool {
        self.consecutive_failures += 1;
        let trip = match self.state {
            BreakerState::HalfOpen => true,
            BreakerState::Closed => self.consecutive_failures >= self.threshold,
            BreakerState::Open { .. } => false,
        };
        if trip {
            self.state = BreakerState::Open { since: t };
            self.trips += 1;
        }
        trip
    }
}

/// Degradation and recovery event counts for one replay.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ResilienceCounters {
    /// Origin retry attempts issued.
    pub retries: u64,
    /// Per-tier attempts that exceeded their budget.
    pub timeouts: u64,
    /// Hedged second OC reads issued.
    pub hedges: u64,
    /// Hedges that beat the primary.
    pub hedge_wins: u64,
    /// Misses answered from the stale store.
    pub stale_serves: u64,
    /// Requests that could not be served at all.
    pub failures: u64,
    /// Misses that rode an in-flight fetch instead of issuing their own.
    pub coalesced: u64,
    /// Successful origin fetches (one per coalescing window).
    pub origin_fetches: u64,
    /// Times the circuit breaker tripped open.
    pub breaker_trips: u64,
    /// Requests rejected by an open breaker without an attempt.
    pub breaker_fast_fails: u64,
    /// Requests re-routed because their primary OC shard was down.
    pub failovers: u64,
    /// OC node crashes applied (cache state wiped).
    pub node_resets: u64,
}

/// What happened to one request on the resilient path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeOutcome {
    /// The layer that answered, `None` for stale serves and failures.
    pub served: Option<ServedBy>,
    /// User-perceived latency, ms (for failures: time to the error).
    pub latency_ms: f64,
    /// Answered from the stale store (degraded but available).
    pub stale: bool,
    /// Not answered at all.
    pub failed: bool,
    /// Rode an in-flight fetch (no origin traffic of its own).
    pub coalesced: bool,
    /// Bytes this request pulled from the origin.
    pub bto_bytes: u64,
}

impl ServeOutcome {
    /// True unless the request failed outright.
    pub fn available(&self) -> bool {
        !self.failed
    }
}

/// An origin fetch window other misses can coalesce onto.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    /// Wall second the fetch resolves (successfully or not).
    completion_secs: f64,
    /// Whether the fetch will deliver bytes.
    ok: bool,
}

/// [`Tdc`] plus the fault schedule and every resilience mechanism above.
#[derive(Debug)]
pub struct ResilientTdc {
    tdc: Tdc,
    schedule: FaultSchedule,
    res: ResilienceConfig,
    breaker: CircuitBreaker,
    stale: GhostList,
    in_flight: FxHashMap<ObjectId, InFlight>,
    rng: SimRng,
    counters: ResilienceCounters,
    /// Last observed down/up state per OC node (crash-edge detection).
    crashed: Vec<bool>,
}

impl ResilientTdc {
    /// Assemble the system, validating every config layer.
    pub fn new(
        cfg: TdcConfig,
        latency: LatencyModel,
        schedule: FaultSchedule,
        res: ResilienceConfig,
    ) -> Result<Self, ConfigError> {
        res.validate()?;
        if schedule.oc_crashes.iter().any(|c| c.node >= cfg.oc_nodes) {
            return Err(ConfigError::BadResilience(
                "fault schedule crashes an OC node outside the system",
            ));
        }
        let mut tdc = Tdc::try_new(cfg, latency)?;
        tdc.dc_mut().set_record_evictions(true);
        let stale_budget = (cfg.dc_capacity as f64 * res.stale_budget_fraction) as u64;
        Ok(ResilientTdc {
            tdc,
            schedule,
            breaker: CircuitBreaker::new(res.breaker_threshold, res.breaker_cooldown_secs),
            stale: GhostList::new(stale_budget),
            in_flight: FxHashMap::default(),
            rng: SimRng::new(res.seed),
            counters: ResilienceCounters::default(),
            crashed: vec![false; cfg.oc_nodes],
            res,
        })
    }

    /// Event counters so far.
    pub fn counters(&self) -> ResilienceCounters {
        self.counters
    }

    /// The breaker (diagnostics).
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// The wrapped plain system.
    pub fn tdc(&self) -> &Tdc {
        &self.tdc
    }

    /// Objects currently in the stale store.
    pub fn stale_len(&self) -> usize {
        self.stale.len()
    }

    /// Serve one request through the full resilient path.
    pub fn serve(&mut self, req: &Request) -> ServeOutcome {
        let now = req.wall_secs;
        self.sync_crashes(now);
        if !self.in_flight.is_empty() {
            self.in_flight.retain(|_, fl| fl.completion_secs > now);
        }

        let lat = *self.tdc.latency();
        let n = self.tdc.n_oc();
        let primary = self.tdc.primary_shard(req.id);
        let shard = if !self.schedule.node_down(primary, now) {
            Some(primary)
        } else {
            self.counters.failovers += 1;
            self.alive_rendezvous(req.id, now, n, usize::MAX)
        };

        // Penalty milliseconds accrued from timeouts and backoffs.
        let mut accrued = 0.0f64;
        // OC node to fill if the request is ultimately served from deeper.
        let mut oc_fill: Option<usize> = None;
        // Spike factor of the OC leg actually traversed.
        let mut f_oc = 1.0f64;

        match shard {
            None => {
                // Whole OC layer down: pay one timeout discovering it.
                accrued += self.res.oc_timeout_ms;
                self.counters.timeouts += 1;
            }
            Some(s) => {
                let f = self.schedule.spike_factor(SpikeTarget::OcNode(s), now);
                let first_byte = lat.oc_rtt_ms * f;
                if first_byte > self.res.oc_timeout_ms {
                    // Node unresponsive: it never sees the request.
                    accrued += self.res.oc_timeout_ms;
                    self.counters.timeouts += 1;
                } else {
                    f_oc = f;
                    if self.tdc.oc_contains(s, req.id) {
                        self.tdc.oc_request(s, req);
                        let mut latency =
                            lat.latency_ms_scaled(req.size, ServedBy::Oc, f, 1.0, 1.0);
                        if first_byte > self.res.hedge_after_ms {
                            latency = self.try_hedge(req, s, now, n, latency, &lat);
                        }
                        return ServeOutcome {
                            served: Some(ServedBy::Oc),
                            latency_ms: accrued + latency,
                            stale: false,
                            failed: false,
                            coalesced: false,
                            bto_bytes: 0,
                        };
                    }
                    oc_fill = Some(s);
                }
            }
        }

        // DC tier.
        let f_dc = self.schedule.spike_factor(SpikeTarget::Dc, now);
        let mut dc_up = true;
        if lat.dc_rtt_ms * f_dc > self.res.dc_timeout_ms {
            accrued += self.res.dc_timeout_ms;
            self.counters.timeouts += 1;
            dc_up = false;
        }
        if dc_up && self.tdc.dc_contains(req.id) {
            if let Some(s) = oc_fill {
                // Fill OC on the way back, exactly like the plain path.
                self.tdc.oc_request(s, req);
            }
            self.tdc.dc_request(req);
            self.drain_dc_evictions(req.tick);
            let latency = lat.latency_ms_scaled(req.size, ServedBy::Dc, f_oc, f_dc, 1.0);
            return ServeOutcome {
                served: Some(ServedBy::Dc),
                latency_ms: accrued + latency,
                stale: false,
                failed: false,
                coalesced: false,
                bto_bytes: 0,
            };
        }

        // Both layers missed (or were skipped): origin territory.

        // Thundering-herd guard: ride an in-flight fetch when one exists.
        if let Some(fl) = self.in_flight.get(&req.id).copied() {
            self.counters.coalesced += 1;
            let remaining_ms = (fl.completion_secs - now).max(0.0) * 1000.0;
            if fl.ok {
                return ServeOutcome {
                    served: Some(ServedBy::Origin),
                    latency_ms: accrued + remaining_ms,
                    stale: false,
                    failed: false,
                    coalesced: true,
                    bto_bytes: 0,
                };
            }
            // Piggybacked on a doomed fetch: degrade without re-attempting.
            return self.stale_or_fail(req, accrued + remaining_ms, f_oc, f_dc, true, &lat);
        }

        // Circuit breaker gate.
        if !self.breaker.allow(now + accrued / 1000.0) {
            self.counters.breaker_fast_fails += 1;
            return self.stale_or_fail(req, accrued, f_oc, f_dc, false, &lat);
        }

        // Origin attempts: bounded retry with exponential backoff.
        let mut success_factor = None;
        let mut attempt: u32 = 0;
        loop {
            let t = now + accrued / 1000.0;
            if let Some(f) = self.origin_attempt_ok(req.tick, t) {
                success_factor = Some(f);
                self.breaker.on_success();
                break;
            }
            self.counters.timeouts += 1;
            accrued += self.res.origin_timeout_ms;
            if self.breaker.on_failure(now + accrued / 1000.0) {
                self.counters.breaker_trips += 1;
                break; // tripped open: stop hammering the origin
            }
            if attempt >= self.res.max_retries {
                break;
            }
            let jitter = 1.0 + self.res.backoff_jitter * self.rng.f64();
            accrued += self.res.backoff_base_ms * (1u64 << attempt.min(16)) as f64 * jitter;
            self.counters.retries += 1;
            attempt += 1;
        }

        if let Some(f_origin) = success_factor {
            if let Some(s) = oc_fill {
                self.tdc.oc_request(s, req);
            }
            if dc_up {
                self.tdc.dc_request(req);
                self.drain_dc_evictions(req.tick);
                // A fresh copy exists again; drop any stale shadow.
                self.stale.delete(req.id);
            }
            self.counters.origin_fetches += 1;
            let latency =
                accrued + lat.latency_ms_scaled(req.size, ServedBy::Origin, f_oc, f_dc, f_origin);
            if self.res.coalesce && accrued > 0.0 {
                // Degraded fetch: open a coalescing window until it lands.
                self.in_flight.insert(
                    req.id,
                    InFlight {
                        completion_secs: now + latency / 1000.0,
                        ok: true,
                    },
                );
            }
            return ServeOutcome {
                served: Some(ServedBy::Origin),
                latency_ms: latency,
                stale: false,
                failed: false,
                coalesced: false,
                bto_bytes: req.size,
            };
        }

        // Fetch failed: let followers coalesce onto the doomed window
        // instead of burning their own timeouts.
        if self.res.coalesce && accrued > 0.0 {
            self.in_flight.insert(
                req.id,
                InFlight {
                    completion_secs: now + accrued / 1000.0,
                    ok: false,
                },
            );
        }
        self.stale_or_fail(req, accrued, f_oc, f_dc, false, &lat)
    }

    /// Hedge a second OC read against `primary`'s slow first byte.
    fn try_hedge(
        &mut self,
        req: &Request,
        primary: usize,
        now: f64,
        n: usize,
        primary_latency: f64,
        lat: &LatencyModel,
    ) -> f64 {
        let Some(sib) = self.alive_rendezvous(req.id, now, n, primary) else {
            return primary_latency;
        };
        self.counters.hedges += 1;
        if !self.tdc.oc_contains(sib, req.id) {
            // The sibling would have to go deeper than the primary; the
            // hedge cannot win. Read-only probe: no state touched.
            return primary_latency;
        }
        let sf = self.schedule.spike_factor(SpikeTarget::OcNode(sib), now);
        let hedged =
            self.res.hedge_after_ms + lat.latency_ms_scaled(req.size, ServedBy::Oc, sf, 1.0, 1.0);
        if hedged < primary_latency {
            self.counters.hedge_wins += 1;
            hedged
        } else {
            primary_latency
        }
    }

    /// Serve stale if possible, else fail — the end of the degraded path.
    fn stale_or_fail(
        &mut self,
        req: &Request,
        penalty_ms: f64,
        f_oc: f64,
        f_dc: f64,
        coalesced: bool,
        lat: &LatencyModel,
    ) -> ServeOutcome {
        if self.res.serve_stale && self.stale.contains(req.id) {
            self.counters.stale_serves += 1;
            // A stale body streams from DC disk: full DC-path latency.
            let latency =
                penalty_ms + lat.latency_ms_scaled(req.size, ServedBy::Dc, f_oc, f_dc, 1.0);
            ServeOutcome {
                served: None,
                latency_ms: latency,
                stale: true,
                failed: false,
                coalesced,
                bto_bytes: 0,
            }
        } else {
            self.counters.failures += 1;
            // Errors carry headers, not bodies: RTT cost only.
            let latency = penalty_ms + lat.latency_ms_scaled(0, ServedBy::Dc, f_oc, f_dc, 1.0);
            ServeOutcome {
                served: None,
                latency_ms: latency,
                stale: false,
                failed: true,
                coalesced,
                bto_bytes: 0,
            }
        }
    }

    /// One origin attempt at wall time `t`: `Some(origin spike factor)` on
    /// success, `None` on outage/timeout. Composes with the
    /// `cdn_cache::fault` registry: the `tdc.origin_fetch` site (keyed by
    /// tick) can force failures under the `fault-injection` feature.
    fn origin_attempt_ok(&mut self, _tick: Tick, t: f64) -> Option<f64> {
        #[cfg(feature = "fault-injection")]
        if cdn_cache::fault::check("tdc.origin_fetch", _tick).is_some() {
            return None;
        }
        if self.schedule.origin_down(t) {
            return None;
        }
        let f = self.schedule.spike_factor(SpikeTarget::Origin, t);
        if self.tdc.latency().origin_rtt_ms * f > self.res.origin_timeout_ms {
            return None;
        }
        Some(f)
    }

    /// Highest-random-weight choice among alive OC nodes, skipping
    /// `exclude`. Consistent: a node's death remaps only its own keys.
    fn alive_rendezvous(&self, id: ObjectId, now: f64, n: usize, exclude: usize) -> Option<usize> {
        let mut best: Option<(u64, usize)> = None;
        for node in 0..n {
            if node == exclude || self.schedule.node_down(node, now) {
                continue;
            }
            let w = rendezvous_weight(id.0, node);
            if best.is_none_or(|(bw, _)| w > bw) {
                best = Some((w, node));
            }
        }
        best.map(|(_, node)| node)
    }

    /// Apply crash edges: a node transitioning up→down loses all state.
    fn sync_crashes(&mut self, now: f64) {
        if self.schedule.oc_crashes.is_empty() {
            return;
        }
        for i in 0..self.crashed.len() {
            let down = self.schedule.node_down(i, now);
            if down && !self.crashed[i] {
                self.tdc.reset_oc_node(i);
                self.counters.node_resets += 1;
            }
            self.crashed[i] = down;
        }
    }

    /// Move freshly evicted DC objects into the stale store.
    fn drain_dc_evictions(&mut self, tick: Tick) {
        for (id, size) in self.tdc.dc_mut().take_evictions() {
            self.stale.add(GhostEntry {
                id,
                size,
                evicted_tick: tick,
                tag: 0,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::Window;
    use cdn_cache::object::micro_trace;

    fn base_cfg() -> TdcConfig {
        TdcConfig {
            oc_nodes: 2,
            oc_capacity: 100,
            dc_capacity: 300,
            deploy_at: u64::MAX,
            seed: 1,
        }
    }

    fn rt(schedule: FaultSchedule) -> ResilientTdc {
        ResilientTdc::new(
            base_cfg(),
            LatencyModel::default(),
            schedule,
            ResilienceConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn breaker_walks_the_state_machine() {
        let mut b = CircuitBreaker::new(3, 10.0);
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow(0.0));
        assert!(!b.on_failure(1.0));
        assert!(!b.on_failure(2.0));
        assert!(b.on_failure(3.0), "third consecutive failure trips");
        assert_eq!(b.state(), BreakerState::Open { since: 3.0 });
        assert_eq!(b.trips(), 1);
        assert!(!b.allow(4.0), "open rejects during cooldown");
        assert!(b.allow(13.0), "cooldown elapsed: half-open probe admitted");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // Failed probe reopens immediately, restarting the cooldown.
        assert!(b.on_failure(13.5));
        assert_eq!(b.state(), BreakerState::Open { since: 13.5 });
        assert_eq!(b.trips(), 2);
        assert!(b.allow(25.0));
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow(26.0));
    }

    #[test]
    fn breaker_needs_consecutive_failures() {
        let mut b = CircuitBreaker::new(3, 10.0);
        for i in 0..10 {
            assert!(!b.on_failure(i as f64));
            b.on_success();
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.trips(), 0);
    }

    #[test]
    fn resilience_config_validation() {
        assert!(ResilienceConfig::default().validate().is_ok());
        for bad in [
            ResilienceConfig {
                oc_timeout_ms: 0.0,
                ..ResilienceConfig::default()
            },
            ResilienceConfig {
                origin_timeout_ms: f64::NAN,
                ..ResilienceConfig::default()
            },
            ResilienceConfig {
                max_retries: 17,
                ..ResilienceConfig::default()
            },
            ResilienceConfig {
                backoff_jitter: 1.5,
                ..ResilienceConfig::default()
            },
            ResilienceConfig {
                breaker_threshold: 0,
                ..ResilienceConfig::default()
            },
            ResilienceConfig {
                stale_budget_fraction: -0.1,
                ..ResilienceConfig::default()
            },
        ] {
            assert!(matches!(bad.validate(), Err(ConfigError::BadResilience(_))));
        }
    }

    #[test]
    fn schedule_crashing_unknown_node_is_rejected() {
        let schedule = FaultSchedule {
            oc_crashes: vec![crate::fault::NodeCrash {
                node: 9,
                down: Window {
                    start_secs: 0.0,
                    end_secs: 1.0,
                },
            }],
            ..FaultSchedule::default()
        };
        let err = ResilientTdc::new(
            base_cfg(),
            LatencyModel::default(),
            schedule,
            ResilienceConfig::default(),
        )
        .err();
        assert!(matches!(err, Some(ConfigError::BadResilience(_))));
    }

    #[test]
    fn calm_serves_like_plain() {
        let mut r = rt(FaultSchedule::calm());
        let reqs = micro_trace(&[(1, 10), (1, 10), (2, 10)]);
        let o0 = r.serve(&reqs[0]);
        assert_eq!(o0.served, Some(ServedBy::Origin));
        assert_eq!(o0.bto_bytes, 10);
        let o1 = r.serve(&reqs[1]);
        assert_eq!(o1.served, Some(ServedBy::Oc));
        assert!(o1.available() && !o1.stale && !o1.coalesced);
        let o2 = r.serve(&reqs[2]);
        assert_eq!(o2.served, Some(ServedBy::Origin));
        // Under calm, every counter except origin_fetches stays zero.
        assert_eq!(
            r.counters(),
            ResilienceCounters {
                origin_fetches: 2,
                ..ResilienceCounters::default()
            }
        );
    }

    #[test]
    fn outage_fails_cold_misses_and_breaker_trips() {
        let schedule = FaultSchedule {
            origin_outages: vec![Window {
                start_secs: 0.0,
                end_secs: 1e9,
            }],
            ..FaultSchedule::default()
        };
        let mut r = rt(schedule);
        // Distinct cold objects: each is a both-layer miss into a dead
        // origin. micro_trace spaces requests 1 s apart, past the doomed
        // in-flight windows, so every request attempts (until the trip).
        let reqs = micro_trace(&(0..30u64).map(|i| (i, 10)).collect::<Vec<_>>());
        let mut outcomes = Vec::new();
        for req in &reqs {
            outcomes.push(r.serve(req));
        }
        assert!(outcomes.iter().all(|o| o.failed), "nothing to serve stale");
        let c = r.counters();
        assert!(c.breaker_trips >= 1, "{c:?}");
        assert!(c.breaker_fast_fails > 0, "open breaker fails fast {c:?}");
        assert_eq!(c.origin_fetches, 0);
        assert_eq!(c.stale_serves, 0);
        assert!(c.timeouts > 0 && c.retries > 0);
    }

    #[test]
    fn coalescing_issues_exactly_one_fetch_per_window() {
        // Origin extremely spiked (attempts time out) but not hard-down,
        // and requests arrive 1 ms apart: a herd on one cold object.
        let schedule = FaultSchedule {
            latency_spikes: vec![crate::fault::LatencySpike {
                window: Window {
                    start_secs: 0.0,
                    end_secs: 100.0,
                },
                target: SpikeTarget::Origin,
                factor: 1e6,
            }],
            ..FaultSchedule::default()
        };
        let mut r = rt(schedule);
        let mut reqs = Vec::new();
        for i in 0..20u64 {
            let mut q = Request::new(i, 500, 10);
            q.wall_secs = i as f64 * 0.001;
            reqs.push(q);
        }
        let outcomes: Vec<ServeOutcome> = reqs.iter().map(|q| r.serve(q)).collect();
        let c = r.counters();
        assert_eq!(c.origin_fetches, 0, "spiked origin never succeeds");
        assert!(c.coalesced > 0, "{c:?}");
        // Exactly one request per window burned timeouts; all followers in
        // that window coalesced. Windows are keyed by accrued penalty, so
        // attempt series == windows == requests - coalesced.
        let attempted = outcomes.iter().filter(|o| !o.coalesced).count() as u64;
        assert_eq!(c.coalesced + attempted, 20);
        assert!(
            attempted < 20,
            "the herd must mostly coalesce, got {attempted} attempt series"
        );
    }

    #[test]
    fn stale_serves_cover_outage_for_evicted_objects() {
        // DC capacity 300, objects of 60 bytes: 6th object evicts.
        let cfg = TdcConfig {
            oc_nodes: 2,
            oc_capacity: 60,
            dc_capacity: 300,
            deploy_at: u64::MAX,
            seed: 1,
        };
        let schedule = FaultSchedule {
            origin_outages: vec![Window {
                start_secs: 100.0,
                end_secs: 1e9,
            }],
            ..FaultSchedule::default()
        };
        let mut r = ResilientTdc::new(
            cfg,
            LatencyModel::default(),
            schedule,
            ResilienceConfig::default(),
        )
        .unwrap();
        // Before the outage: stream 10 objects through; early ones get
        // evicted from DC into the stale store.
        let warm = micro_trace(&(0..10u64).map(|i| (i, 60)).collect::<Vec<_>>());
        for q in &warm {
            r.serve(q);
        }
        assert!(r.stale_len() > 0, "DC evictions populated the stale store");
        // During the outage: re-request everything. Objects evicted from
        // both cache tiers but still in the stale store come back stale;
        // nothing reaches the (dead) origin.
        let fetches_before = r.counters().origin_fetches;
        let mut stale_seen = 0;
        for i in 0..10u64 {
            let mut q = Request::new(100 + i, i, 60);
            q.wall_secs = 200.0 + 10.0 * i as f64;
            let o = r.serve(&q);
            if o.stale {
                assert!(o.available());
                assert_eq!(o.bto_bytes, 0, "stale serves move no origin bytes");
                stale_seen += 1;
            }
        }
        assert!(stale_seen > 0, "{:?}", r.counters());
        assert_eq!(r.counters().stale_serves, stale_seen);
        assert_eq!(r.counters().origin_fetches, fetches_before);
    }

    #[test]
    fn crash_failover_and_state_loss() {
        let schedule = FaultSchedule {
            oc_crashes: vec![crate::fault::NodeCrash {
                node: 1,
                down: Window {
                    start_secs: 50.0,
                    end_secs: 80.0,
                },
            }],
            ..FaultSchedule::default()
        };
        let mut r = rt(schedule);
        // Find an object that shards to node 1.
        let id = (0..100u64)
            .find(|&i| r.tdc().primary_shard(ObjectId(i)) == 1)
            .unwrap();
        let mk = |tick: u64, wall: f64| {
            let mut q = Request::new(tick, id, 10);
            q.wall_secs = wall;
            q
        };
        // Warm it on node 1 before the crash.
        r.serve(&mk(0, 0.0));
        assert_eq!(r.serve(&mk(1, 1.0)).served, Some(ServedBy::Oc));
        // During the crash: fails over to node 0 — a DC hit (node 0 is
        // cold for this key range), filling node 0 on the way.
        let during = r.serve(&mk(2, 60.0));
        assert_eq!(during.served, Some(ServedBy::Dc));
        let c = r.counters();
        assert_eq!(c.failovers, 1);
        assert_eq!(c.node_resets, 1);
        // And the failover target now serves it from OC.
        assert_eq!(r.serve(&mk(3, 61.0)).served, Some(ServedBy::Oc));
        // After restart, node 1 is cold: the object lives on via DC.
        let after = r.serve(&mk(4, 90.0));
        assert!(matches!(after.served, Some(ServedBy::Dc)), "{after:?}");
    }

    #[test]
    fn hedging_dodges_a_node_spike() {
        // Node spiked ×10: first byte 150 ms > hedge_after 100 ms but
        // < 250 ms timeout, so the hedge fires while the primary serves.
        let probe = rt(FaultSchedule::calm());
        let id = (0..100u64)
            .find(|&i| probe.tdc().primary_shard(ObjectId(i)) == 1)
            .unwrap();
        let schedule = FaultSchedule {
            latency_spikes: vec![crate::fault::LatencySpike {
                window: Window {
                    start_secs: 10.0,
                    end_secs: 100.0,
                },
                target: SpikeTarget::OcNode(1),
                factor: 10.0,
            }],
            ..FaultSchedule::default()
        };
        let mut r = ResilientTdc::new(
            base_cfg(),
            LatencyModel::default(),
            schedule,
            ResilienceConfig::default(),
        )
        .unwrap();
        let mk = |tick: u64, wall: f64| {
            let mut q = Request::new(tick, id, 10);
            q.wall_secs = wall;
            q
        };
        r.serve(&mk(0, 0.0)); // origin → fills node 1 + DC
        let calm_hit = r.serve(&mk(1, 1.0));
        assert_eq!(calm_hit.served, Some(ServedBy::Oc));
        // Spiked window: primary OC hit at 10× RTT → hedge fires. The
        // sibling doesn't hold the object (read-only probe, no win), but
        // the hedge is still issued and the primary still serves.
        let spiked = r.serve(&mk(2, 20.0));
        assert_eq!(spiked.served, Some(ServedBy::Oc));
        let c = r.counters();
        assert_eq!(c.hedges, 1);
        assert_eq!(c.hedge_wins, 0);
        assert!(spiked.latency_ms > calm_hit.latency_ms);
    }

    #[test]
    fn rendezvous_failover_is_consistent() {
        let r = rt(FaultSchedule::calm());
        // With no faults, rendezvous over both nodes is deterministic and
        // excluding the chosen node yields the other.
        for i in 0..50u64 {
            let id = ObjectId(i);
            let a = r.alive_rendezvous(id, 0.0, 2, usize::MAX).unwrap();
            let b = r.alive_rendezvous(id, 0.0, 2, a).unwrap();
            assert_ne!(a, b);
            assert_eq!(a, r.alive_rendezvous(id, 0.0, 2, usize::MAX).unwrap());
        }
    }
}
