//! Parametric user-latency model.
//!
//! Latency decomposes into per-layer round trips plus size-dependent
//! transfer time on the narrowest link of the path. Defaults approximate
//! a metro OC (~15 ms), an in-region DC (~45 ms) and a cross-region origin
//! (~200 ms) — the absolute numbers only scale the figure; the *relative*
//! change the paper reports (−26.1 % mean latency) comes from shifting
//! traffic between layers.

/// Which layer ultimately served a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedBy {
    /// Outside-cache hit.
    Oc,
    /// OC miss, data-center cache hit.
    Dc,
    /// Both layers missed: back to origin (COS).
    Origin,
}

/// Latency parameters.
#[derive(Debug, Clone, Copy)]
pub struct LatencyModel {
    /// User ↔ OC round trip, ms.
    pub oc_rtt_ms: f64,
    /// OC ↔ DC round trip, ms.
    pub dc_rtt_ms: f64,
    /// DC ↔ origin round trip, ms.
    pub origin_rtt_ms: f64,
    /// Effective user-path bandwidth, bytes/ms.
    pub edge_bw: f64,
    /// Effective origin-path bandwidth, bytes/ms (narrower).
    pub origin_bw: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            oc_rtt_ms: 15.0,
            dc_rtt_ms: 45.0,
            origin_rtt_ms: 200.0,
            edge_bw: 12_500.0,  // ≈100 Mbit/s
            origin_bw: 2_500.0, // ≈20 Mbit/s
        }
    }
}

impl LatencyModel {
    /// User-perceived latency of a request of `size` bytes served by the
    /// given layer, in milliseconds.
    pub fn latency_ms(&self, size: u64, served: ServedBy) -> f64 {
        self.latency_ms_scaled(size, served, 1.0, 1.0, 1.0)
    }

    /// [`Self::latency_ms`] with each leg's RTT multiplied by a fault-spike
    /// factor (`1.0` = nominal). With all factors at `1.0` this is
    /// bit-identical to the unscaled model (`x * 1.0 == x` for every
    /// non-NaN `x`, and the summation order is unchanged) — the calm-path
    /// equivalence the resilience tests pin down relies on this.
    pub fn latency_ms_scaled(
        &self,
        size: u64,
        served: ServedBy,
        f_oc: f64,
        f_dc: f64,
        f_origin: f64,
    ) -> f64 {
        let transfer_edge = size as f64 / self.edge_bw;
        match served {
            ServedBy::Oc => self.oc_rtt_ms * f_oc + transfer_edge,
            ServedBy::Dc => self.oc_rtt_ms * f_oc + self.dc_rtt_ms * f_dc + transfer_edge,
            ServedBy::Origin => {
                self.oc_rtt_ms * f_oc
                    + self.dc_rtt_ms * f_dc
                    + self.origin_rtt_ms * f_origin
                    + transfer_edge
                    + size as f64 / self.origin_bw
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deeper_layers_are_slower() {
        let m = LatencyModel::default();
        let size = 100_000;
        let oc = m.latency_ms(size, ServedBy::Oc);
        let dc = m.latency_ms(size, ServedBy::Dc);
        let origin = m.latency_ms(size, ServedBy::Origin);
        assert!(oc < dc && dc < origin, "{oc} {dc} {origin}");
    }

    #[test]
    fn larger_objects_take_longer() {
        let m = LatencyModel::default();
        assert!(m.latency_ms(10_000_000, ServedBy::Origin) > m.latency_ms(1_000, ServedBy::Origin));
    }

    #[test]
    fn zero_size_is_pure_rtt() {
        let m = LatencyModel::default();
        assert!((m.latency_ms(0, ServedBy::Oc) - 15.0).abs() < 1e-12);
        assert!((m.latency_ms(0, ServedBy::Origin) - 260.0).abs() < 1e-12);
    }

    #[test]
    fn unit_factors_are_bit_identical_to_unscaled() {
        let m = LatencyModel::default();
        for size in [0u64, 1, 999, 1_000_000, u64::MAX >> 20] {
            for served in [ServedBy::Oc, ServedBy::Dc, ServedBy::Origin] {
                assert_eq!(
                    m.latency_ms(size, served).to_bits(),
                    m.latency_ms_scaled(size, served, 1.0, 1.0, 1.0).to_bits()
                );
            }
        }
    }

    #[test]
    fn spike_factors_scale_only_their_leg() {
        let m = LatencyModel::default();
        let size = 10_000;
        // Origin-leg spike leaves OC-served latency alone.
        assert_eq!(
            m.latency_ms(size, ServedBy::Oc),
            m.latency_ms_scaled(size, ServedBy::Oc, 1.0, 1.0, 8.0)
        );
        // ...but slows an origin-served request by 7×200ms.
        let spiked = m.latency_ms_scaled(size, ServedBy::Origin, 1.0, 1.0, 8.0);
        assert!((spiked - m.latency_ms(size, ServedBy::Origin) - 7.0 * 200.0).abs() < 1e-9);
    }
}
