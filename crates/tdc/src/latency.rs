//! Parametric user-latency model.
//!
//! Latency decomposes into per-layer round trips plus size-dependent
//! transfer time on the narrowest link of the path. Defaults approximate
//! a metro OC (~15 ms), an in-region DC (~45 ms) and a cross-region origin
//! (~200 ms) — the absolute numbers only scale the figure; the *relative*
//! change the paper reports (−26.1 % mean latency) comes from shifting
//! traffic between layers.

/// Which layer ultimately served a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedBy {
    /// Outside-cache hit.
    Oc,
    /// OC miss, data-center cache hit.
    Dc,
    /// Both layers missed: back to origin (COS).
    Origin,
}

/// Latency parameters.
#[derive(Debug, Clone, Copy)]
pub struct LatencyModel {
    /// User ↔ OC round trip, ms.
    pub oc_rtt_ms: f64,
    /// OC ↔ DC round trip, ms.
    pub dc_rtt_ms: f64,
    /// DC ↔ origin round trip, ms.
    pub origin_rtt_ms: f64,
    /// Effective user-path bandwidth, bytes/ms.
    pub edge_bw: f64,
    /// Effective origin-path bandwidth, bytes/ms (narrower).
    pub origin_bw: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            oc_rtt_ms: 15.0,
            dc_rtt_ms: 45.0,
            origin_rtt_ms: 200.0,
            edge_bw: 12_500.0,  // ≈100 Mbit/s
            origin_bw: 2_500.0, // ≈20 Mbit/s
        }
    }
}

impl LatencyModel {
    /// User-perceived latency of a request of `size` bytes served by the
    /// given layer, in milliseconds.
    pub fn latency_ms(&self, size: u64, served: ServedBy) -> f64 {
        let transfer_edge = size as f64 / self.edge_bw;
        match served {
            ServedBy::Oc => self.oc_rtt_ms + transfer_edge,
            ServedBy::Dc => self.oc_rtt_ms + self.dc_rtt_ms + transfer_edge,
            ServedBy::Origin => {
                self.oc_rtt_ms
                    + self.dc_rtt_ms
                    + self.origin_rtt_ms
                    + transfer_edge
                    + size as f64 / self.origin_bw
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deeper_layers_are_slower() {
        let m = LatencyModel::default();
        let size = 100_000;
        let oc = m.latency_ms(size, ServedBy::Oc);
        let dc = m.latency_ms(size, ServedBy::Dc);
        let origin = m.latency_ms(size, ServedBy::Origin);
        assert!(oc < dc && dc < origin, "{oc} {dc} {origin}");
    }

    #[test]
    fn larger_objects_take_longer() {
        let m = LatencyModel::default();
        assert!(m.latency_ms(10_000_000, ServedBy::Origin) > m.latency_ms(1_000, ServedBy::Origin));
    }

    #[test]
    fn zero_size_is_pure_rtt() {
        let m = LatencyModel::default();
        assert!((m.latency_ms(0, ServedBy::Oc) - 15.0).abs() < 1e-12);
        assert!((m.latency_ms(0, ServedBy::Origin) - 260.0).abs() < 1e-12);
    }
}
