//! The mid-timeline policy switch is *warm*: flipping `deploy_at` on a
//! node that has already replayed the pre-deploy prefix must behave
//! exactly like a node that knew the deploy tick from the start. This is
//! what makes the §5.2 deployment experiment meaningful — the switch
//! itself injects no discontinuity beyond the policy change.

use cdn_cache::{AccessKind, CachePolicy};
use cdn_trace::{TraceGenerator, Workload};
use tdc::SwitchableScip;

#[test]
fn mid_timeline_switch_is_identical_to_standalone_runs() {
    let profile = Workload::CdnT.profile();
    let trace = TraceGenerator::generate(profile.config(30_000, 23));
    let stats = cdn_trace::TraceStats::compute(&trace);
    let capacity = stats.cache_bytes_for_fraction(0.02);
    let deploy_at = (trace.len() / 2) as u64;

    // A: knows the deploy tick from the start.
    let mut a = SwitchableScip::new(capacity, deploy_at, 42);
    // B: starts as never-deploying LRU, gets the deploy tick mid-run.
    let mut b = SwitchableScip::new(capacity, u64::MAX, 42);

    let split = deploy_at as usize;
    let mut a_prefix: Vec<AccessKind> = Vec::with_capacity(split);
    let mut b_prefix: Vec<AccessKind> = Vec::with_capacity(split);
    for r in &trace[..split] {
        a_prefix.push(a.on_request(r));
        b_prefix.push(b.on_request(r));
    }
    assert_eq!(a_prefix, b_prefix, "pre-deploy behavior is plain LRU");
    assert_eq!(a.stats(), b.stats());

    // Flip B's deploy tick mid-timeline — the warm switch.
    b.deploy_at = deploy_at;

    let mut a_suffix: Vec<AccessKind> = Vec::new();
    let mut b_suffix: Vec<AccessKind> = Vec::new();
    for r in &trace[split..] {
        a_suffix.push(a.on_request(r));
        b_suffix.push(b.on_request(r));
    }
    assert_eq!(a_suffix, b_suffix, "post-deploy decisions bit-identical");
    assert_eq!(a.stats(), b.stats());
    assert_eq!(a.used_bytes(), b.used_bytes());
    // Sanity: the suffix actually exercised SCIP (some activity happened).
    assert!(a_suffix.iter().any(|k| k.is_hit()));
    assert!(a_suffix.iter().any(|k| !k.is_hit()));
}
