//! Property-based tests for the latency model: monotonicity in object
//! size per tier, and the OC ≤ DC ≤ origin tier ordering, over sampled
//! model parameterizations.

use proptest::prelude::*;
use tdc::{LatencyModel, ServedBy};

/// A physically plausible latency model: positive RTTs and bandwidths.
fn model() -> impl Strategy<Value = LatencyModel> {
    (
        0.1..200.0f64,
        0.1..200.0f64,
        0.1..500.0f64,
        100.0..50_000.0f64,
        50.0..10_000.0f64,
    )
        .prop_map(|(oc, dc, origin, edge_bw, origin_bw)| LatencyModel {
            oc_rtt_ms: oc,
            dc_rtt_ms: dc,
            origin_rtt_ms: origin,
            edge_bw,
            origin_bw,
        })
}

proptest! {
    /// Bigger objects never finish faster, whichever tier serves them.
    #[test]
    fn latency_is_monotone_in_size(
        m in model(),
        a in 0u64..1_000_000_000,
        b in 0u64..1_000_000_000,
    ) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        for served in [ServedBy::Oc, ServedBy::Dc, ServedBy::Origin] {
            prop_assert!(m.latency_ms(lo, served) <= m.latency_ms(hi, served));
        }
    }

    /// Deeper layers are never faster: OC ≤ DC ≤ origin for any size.
    #[test]
    fn tiers_order_oc_dc_origin(m in model(), size in 0u64..1_000_000_000) {
        let oc = m.latency_ms(size, ServedBy::Oc);
        let dc = m.latency_ms(size, ServedBy::Dc);
        let origin = m.latency_ms(size, ServedBy::Origin);
        prop_assert!(oc <= dc && dc <= origin);
    }

    /// Unit spike factors leave the scaled model bit-identical to the
    /// plain one for arbitrary parameterizations, not just the default.
    #[test]
    fn unit_spikes_are_identity(m in model(), size in 0u64..1_000_000_000) {
        for served in [ServedBy::Oc, ServedBy::Dc, ServedBy::Origin] {
            prop_assert_eq!(
                m.latency_ms(size, served).to_bits(),
                m.latency_ms_scaled(size, served, 1.0, 1.0, 1.0).to_bits()
            );
        }
    }
}
