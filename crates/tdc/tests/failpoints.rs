//! Composition of the scheduled fault model with the `cdn_cache::fault`
//! failpoint registry: under `--features fault-injection` the resilient
//! path consults the `tdc.origin_fetch` site (keyed by request tick) on
//! every origin attempt, so tests can force failures at exact ticks
//! without authoring a schedule.
#![cfg(feature = "fault-injection")]

use cdn_cache::fault::{self, FaultAction, FaultRule};
use cdn_cache::object::micro_trace;
use tdc::{FaultSchedule, LatencyModel, ResilienceConfig, ResilientTdc, ServedBy, TdcConfig};

const SITE: &str = "tdc.origin_fetch";

fn system() -> ResilientTdc {
    ResilientTdc::new(
        TdcConfig {
            oc_nodes: 2,
            oc_capacity: 1_000,
            dc_capacity: 3_000,
            deploy_at: u64::MAX,
            seed: 1,
        },
        LatencyModel::default(),
        FaultSchedule::calm(),
        ResilienceConfig::default(),
    )
    .unwrap()
}

/// One test drives all scenarios: the registry is process-global, so
/// splitting these into separate `#[test]`s would race on the site.
#[test]
fn failpoints_compose_with_the_resilient_path() {
    fault::clear();

    // Transient: the first origin attempt per tick errors; the bounded
    // retry absorbs it and the request is still served from origin.
    fault::arm(
        SITE,
        FaultRule::FirstAttempts(1, FaultAction::Error("flaky origin".into())),
    );
    let mut rt = system();
    let reqs = micro_trace(&[(1, 10), (2, 10)]);
    let o = rt.serve(&reqs[0]);
    assert_eq!(o.served, Some(ServedBy::Origin));
    assert!(!o.failed);
    let c = rt.counters();
    assert_eq!(c.retries, 1, "{c:?}");
    assert_eq!(c.timeouts, 1);
    assert_eq!(c.origin_fetches, 1);
    assert_eq!(fault::fired(SITE), 1);
    // The injected timeout shows up as accrued latency.
    let calm_origin = LatencyModel::default().latency_ms(10, ServedBy::Origin);
    assert!(o.latency_ms > calm_origin);

    // Hard: every attempt for tick 1 errors; retries are exhausted and
    // the request fails (nothing is stale yet).
    fault::disarm(SITE);
    fault::arm(
        SITE,
        FaultRule::OnKeys(vec![1], FaultAction::Error("dead origin".into())),
    );
    let o = rt.serve(&reqs[1]);
    assert!(o.failed, "{o:?}");
    assert_eq!(o.served, None);
    let c = rt.counters();
    assert_eq!(c.failures, 1);
    assert_eq!(c.retries, 3, "two more retries on the doomed request");
    assert_eq!(fault::fired(SITE), 3, "initial attempt + 2 retries");
    // A failed fetch must not populate any cache tier: the same object
    // succeeds from origin (not OC/DC) once the failpoint is gone.
    fault::disarm(SITE);
    let mut again = reqs[1];
    again.tick = 50;
    again.wall_secs = 50.0;
    let o = rt.serve(&again);
    assert_eq!(o.served, Some(ServedBy::Origin), "{o:?}");

    fault::clear();
}
