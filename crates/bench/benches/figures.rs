//! One Criterion benchmark per paper table/figure pipeline, exercising the
//! exact code each `fig*` binary runs (at bench scale). Regenerate the
//! full-scale numbers with `cargo run --release -p cdn-sim --bin <figN>`.
//!
//! Compiled out unless the `criterion` feature is enabled, because the
//! offline build environment cannot fetch the criterion crate — see
//! `crates/bench/Cargo.toml` for how to restore it.

#[cfg(feature = "criterion")]
mod real {
    use bench::{Fixture, BENCH_REQUESTS};
    use cdn_sim::runner::{run_policy, PolicyKind, TraceCtx};
    use cdn_trace::label::{label_trace, oracle_replay, OracleTreatment};
    use cdn_trace::{BeladyOracle, TraceGenerator, TraceStats, Workload};
    use criterion::{criterion_group, Criterion};
    use std::hint::black_box;

    fn bench_table1_tracegen(c: &mut Criterion) {
        c.bench_function("table1_tracegen_cdn_t", |b| {
            b.iter(|| {
                let cfg = Workload::CdnT.profile().config(BENCH_REQUESTS, 3);
                let trace = TraceGenerator::generate(cfg);
                black_box(TraceStats::compute(&trace))
            })
        });
    }

    fn bench_fig1_labeling(c: &mut Criterion) {
        let f = Fixture::new(Workload::CdnA);
        let cap = f.stats.cache_bytes_for_fraction(0.01);
        c.bench_function("fig1_zro_labeling", |b| {
            b.iter(|| black_box(label_trace(&f.trace, cap)))
        });
    }

    fn bench_fig3_oracle(c: &mut Criterion) {
        let f = Fixture::new(Workload::CdnT);
        let cap = f.stats.cache_bytes_for_fraction(0.01);
        let labels = label_trace(&f.trace, cap);
        c.bench_function("fig3_oracle_replay_both", |b| {
            b.iter(|| {
                black_box(oracle_replay(
                    &f.trace,
                    &labels,
                    cap,
                    OracleTreatment::Both,
                    1.0,
                ))
            })
        });
    }

    fn bench_fig4_models(c: &mut Criterion) {
        use cdn_learning::{Classifier, ContextualBandit, Gbdt, GbdtParams, LogReg};
        let mut rng = cdn_cache::SimRng::new(4);
        let x: Vec<Vec<f64>> = (0..8_000)
            .map(|_| vec![rng.f64(), rng.f64(), rng.f64()])
            .collect();
        let y: Vec<f64> = x
            .iter()
            .map(|r| f64::from(r[0] + 0.5 * r[1] > 0.7))
            .collect();
        let mut g = c.benchmark_group("fig4_model_training");
        g.sample_size(10);
        g.bench_function("gbm", |b| {
            b.iter(|| {
                let mut m = Gbdt::new(GbdtParams::default());
                m.fit(&x, &y);
                black_box(m.predict_score(&x[0]))
            })
        });
        g.bench_function("logreg", |b| {
            b.iter(|| {
                let mut m = LogReg::new(3);
                m.fit(&x, &y);
                black_box(m.predict_score(&x[0]))
            })
        });
        g.bench_function("mab", |b| {
            b.iter(|| {
                let mut m = ContextualBandit::new(8);
                m.fit(&x, &y);
                black_box(m.predict_score(&x[0]))
            })
        });
        g.finish();
    }

    fn bench_fig6_tdc(c: &mut Criterion) {
        let f = Fixture::new(Workload::CdnT);
        let span = f.trace.last().unwrap().wall_secs;
        c.bench_function("fig6_tdc_deployment", |b| {
            b.iter(|| {
                black_box(tdc::run_deployment(
                    &f.trace,
                    tdc::DeploymentConfig {
                        tdc: tdc::TdcConfig {
                            oc_nodes: 2,
                            oc_capacity: f.stats.cache_bytes_for_fraction(0.01),
                            dc_capacity: f.stats.cache_bytes_for_fraction(0.04),
                            deploy_at: u64::MAX,
                            seed: 3,
                        },
                        latency: tdc::LatencyModel::default(),
                        deploy_fraction: 0.5,
                        bucket_secs: (span / 20.0).max(1e-6),
                    },
                ))
            })
        });
    }

    fn bench_fig7_scip_vs_sci(c: &mut Criterion) {
        let f = Fixture::new(Workload::CdnT);
        let ctx = TraceCtx::new(&f.trace, 7);
        let mut g = c.benchmark_group("fig7_scip_vs_sci");
        g.sample_size(10);
        for kind in [PolicyKind::Scip, PolicyKind::Sci] {
            g.bench_function(kind.label(), |b| {
                b.iter(|| black_box(run_policy(kind, f.cache_64g, &f.trace, &ctx).miss_ratio))
            });
        }
        g.finish();
    }

    fn bench_fig8_insertion(c: &mut Criterion) {
        let f = Fixture::new(Workload::CdnT);
        let ctx = TraceCtx::new(&f.trace, 7);
        let mut g = c.benchmark_group("fig8_insertion_policies");
        g.sample_size(10);
        for kind in [
            PolicyKind::Scip,
            PolicyKind::AscIp,
            PolicyKind::Lip,
            PolicyKind::Dip,
        ] {
            g.bench_function(kind.label(), |b| {
                b.iter(|| black_box(run_policy(kind, f.cache_64g, &f.trace, &ctx).miss_ratio))
            });
        }
        g.finish();
    }

    fn bench_fig10_replacement(c: &mut Criterion) {
        let f = Fixture::new(Workload::CdnT);
        let ctx = TraceCtx::new(&f.trace, 7);
        let mut g = c.benchmark_group("fig10_replacement_algorithms");
        g.sample_size(10);
        for kind in [
            PolicyKind::Scip,
            PolicyKind::LruK,
            PolicyKind::S4Lru,
            PolicyKind::Lrb,
            PolicyKind::GlCache,
        ] {
            g.bench_function(kind.label(), |b| {
                b.iter(|| black_box(run_policy(kind, f.cache_64g, &f.trace, &ctx).miss_ratio))
            });
        }
        g.finish();
    }

    fn bench_fig12_enhance(c: &mut Criterion) {
        let f = Fixture::new(Workload::CdnA);
        let ctx = TraceCtx::new(&f.trace, 7);
        let mut g = c.benchmark_group("fig12_enhancement");
        g.sample_size(10);
        for kind in [
            PolicyKind::LruK,
            PolicyKind::LruKScip,
            PolicyKind::LruKAscIp,
        ] {
            g.bench_function(kind.label(), |b| {
                b.iter(|| black_box(run_policy(kind, f.cache_64g, &f.trace, &ctx).miss_ratio))
            });
        }
        g.finish();
    }

    fn bench_belady(c: &mut Criterion) {
        let f = Fixture::new(Workload::CdnT);
        c.bench_function("belady_lower_bound", |b| {
            b.iter(|| black_box(BeladyOracle::run(&f.trace, f.cache_64g)))
        });
    }

    fn bench_ablation_scip_components(c: &mut Criterion) {
        use cdn_policies::replay;
        use scip::{Scip, ScipConfig};
        let f = Fixture::new(Workload::CdnT);
        let mut g = c.benchmark_group("ablation_scip");
        g.sample_size(10);
        let variants = [
            ("adaptive_lambda", ScipConfig::default()),
            (
                "fixed_lambda",
                ScipConfig {
                    unlearn_threshold: u32::MAX,
                    ..ScipConfig::default()
                },
            ),
            (
                "quarter_history",
                ScipConfig {
                    history_fraction: 0.25,
                    ..ScipConfig::default()
                },
            ),
        ];
        for (name, cfg) in variants {
            g.bench_function(name, |b| {
                b.iter(|| {
                    let mut p = Scip::with_config(f.cache_64g, cfg);
                    black_box(replay(&mut p, &f.trace).miss_ratio())
                })
            });
        }
        g.finish();
    }

    criterion_group!(
        figures,
        bench_table1_tracegen,
        bench_fig1_labeling,
        bench_fig3_oracle,
        bench_fig4_models,
        bench_fig6_tdc,
        bench_fig7_scip_vs_sci,
        bench_fig8_insertion,
        bench_fig10_replacement,
        bench_fig12_enhance,
        bench_belady,
        bench_ablation_scip_components
    );
}

#[cfg(feature = "criterion")]
criterion::criterion_main!(real::figures);

#[cfg(not(feature = "criterion"))]
fn main() {
    eprintln!(
        "criterion benches are disabled in offline builds; \
         see crates/bench/Cargo.toml to enable them, or run \
         `cargo run --release -p cdn-sim --bin replay_bench` for throughput"
    );
}
