//! Per-policy replay throughput — the measurements behind Figures 9 and
//! 11 (CPU cost per request / TPS), one Criterion benchmark per policy on
//! the CDN-T fixture at the 64 GB-equivalent cache size.

use bench::Fixture;
use cdn_sim::runner::{PolicyKind, TraceCtx};
use cdn_trace::Workload;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_policies(c: &mut Criterion) {
    let f = Fixture::new(Workload::CdnT);
    let ctx = TraceCtx::new(&f.trace, 7);
    let mut group = c.benchmark_group("fig9_fig11_throughput");
    group.sample_size(10);
    let mut kinds = vec![PolicyKind::Lru, PolicyKind::Scip, PolicyKind::Sci];
    kinds.extend(PolicyKind::INSERTION_BASELINES);
    kinds.extend(PolicyKind::REPLACEMENT_BASELINES);
    kinds.push(PolicyKind::Belady);
    for kind in kinds {
        group.bench_function(kind.label(), |b| {
            b.iter(|| {
                let mut p = kind.build(f.cache_64g, &ctx);
                let mut hits = 0u64;
                for r in &f.trace {
                    hits += u64::from(p.on_request(black_box(r)).is_hit());
                }
                black_box(hits)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
