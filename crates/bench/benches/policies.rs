//! Per-policy replay throughput — the measurements behind Figures 9 and
//! 11 (CPU cost per request / TPS), one Criterion benchmark per policy on
//! the CDN-T fixture at the 64 GB-equivalent cache size.
//!
//! Compiled out unless the `criterion` feature is enabled, because the
//! offline build environment cannot fetch the criterion crate — see
//! `crates/bench/Cargo.toml` for how to restore it.

#[cfg(feature = "criterion")]
mod real {
    use bench::Fixture;
    use cdn_sim::runner::{run_policy, run_policy_dyn, PolicyKind, TraceCtx};
    use cdn_trace::Workload;
    use criterion::{criterion_group, Criterion};
    use std::hint::black_box;

    fn bench_policies(c: &mut Criterion) {
        let f = Fixture::new(Workload::CdnT);
        let ctx = TraceCtx::new(&f.trace, 7);
        let mut group = c.benchmark_group("fig9_fig11_throughput");
        group.sample_size(10);
        let mut kinds = vec![PolicyKind::Lru, PolicyKind::Scip, PolicyKind::Sci];
        kinds.extend(PolicyKind::INSERTION_BASELINES);
        kinds.extend(PolicyKind::REPLACEMENT_BASELINES);
        kinds.push(PolicyKind::Belady);
        for kind in kinds {
            group.bench_function(kind.label(), |b| {
                b.iter(|| black_box(run_policy(kind, f.cache_64g, &f.trace, &ctx).miss_ratio))
            });
        }
        group.finish();
    }

    fn bench_dispatch(c: &mut Criterion) {
        // Monomorphized vs dyn replay of the same policy/trace — the overhead
        // the static-dispatch sweep path removes.
        let f = Fixture::new(Workload::CdnT);
        let ctx = TraceCtx::new(&f.trace, 7);
        let mut group = c.benchmark_group("dispatch_overhead_lru");
        group.sample_size(10);
        group.bench_function("monomorphized", |b| {
            b.iter(|| black_box(run_policy(PolicyKind::Lru, f.cache_64g, &f.trace, &ctx).tps))
        });
        group.bench_function("dyn", |b| {
            b.iter(|| black_box(run_policy_dyn(PolicyKind::Lru, f.cache_64g, &f.trace, &ctx).tps))
        });
        group.finish();
    }

    criterion_group!(benches, bench_policies, bench_dispatch);
}

#[cfg(feature = "criterion")]
criterion::criterion_main!(real::benches);

#[cfg(not(feature = "criterion"))]
fn main() {
    eprintln!(
        "criterion benches are disabled in offline builds; \
         see crates/bench/Cargo.toml to enable them, or run \
         `cargo run --release -p cdn-sim --bin replay_bench` for throughput"
    );
}
