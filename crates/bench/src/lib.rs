//! Shared fixtures for the Criterion benches: small, seeded traces so
//! `cargo bench` regenerates every figure's code path in minutes.

use cdn_cache::Request;
use cdn_trace::{TraceGenerator, TraceStats, Workload};

/// Requests per bench trace (small on purpose; the `fig*` binaries run the
/// full-scale experiments).
pub const BENCH_REQUESTS: u64 = 40_000;

/// A seeded bench trace plus its stats and a paper-equivalent cache size.
pub struct Fixture {
    /// The workload.
    pub workload: Workload,
    /// The trace.
    pub trace: Vec<Request>,
    /// Its statistics.
    pub stats: TraceStats,
    /// 64 GB-equivalent cache bytes.
    pub cache_64g: u64,
}

impl Fixture {
    /// Build the fixture for a workload.
    pub fn new(workload: Workload) -> Self {
        let trace = TraceGenerator::generate(workload.profile().config(BENCH_REQUESTS, 99));
        let stats = TraceStats::compute(&trace);
        let cache_64g = stats.cache_bytes_for_fraction(workload.paper_cache_fraction(64.0));
        Fixture {
            workload,
            trace,
            stats,
            cache_64g,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_builds() {
        let f = Fixture::new(Workload::CdnW);
        assert_eq!(f.trace.len() as u64, BENCH_REQUESTS);
        assert!(f.cache_64g > 0);
    }
}
