//! Multi-armed bandit with multiplicative-weight updates (Figure 4's "MAB").
//!
//! This is the model family SCIP itself is built on: a small number of arms
//! whose selection probabilities are adjusted multiplicatively (`ω ← ω·e^{-λ}`
//! on evidence against an arm, then renormalised). For the classification
//! benchmark of Figure 4 we make it *contextual*: feature vectors are
//! discretised into quantile buckets, and each context bucket holds its own
//! arm weights, learned online in one temporal pass — exactly how a cache
//! would run it, and the reason the paper calls out MAB's ability to "make
//! decisions from a global perspective" at near-zero cost.

use cdn_cache::hash::mix64;
use cdn_cache::FxHashMap;

use crate::Classifier;

/// One arm's weight (public for inspection in tests/experiments).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BanditArm {
    /// Current selection weight; weights of one context sum to 1.
    pub weight: f64,
}

/// Contextual two-arm bandit classifier.
#[derive(Debug, Clone)]
pub struct ContextualBandit {
    /// Quantile boundaries per feature (fitted on training data).
    boundaries: Vec<Vec<f64>>,
    /// Context key → arm weights `[w_class0, w_class1]`.
    contexts: FxHashMap<u64, [f64; 2]>,
    /// Multiplicative penalty exponent.
    pub lambda: f64,
    /// Buckets per feature.
    pub buckets: usize,
    /// Floor on weights to keep exploration alive.
    pub floor: f64,
}

impl ContextualBandit {
    /// Bandit with `buckets` quantile buckets per feature.
    pub fn new(buckets: usize) -> Self {
        assert!(buckets >= 2);
        ContextualBandit {
            boundaries: Vec::new(),
            contexts: FxHashMap::default(),
            lambda: 0.3,
            buckets,
            floor: 0.02,
        }
    }

    fn fit_boundaries(&mut self, x: &[Vec<f64>]) {
        let dim = x[0].len();
        self.boundaries = (0..dim)
            .map(|f| {
                let mut vals: Vec<f64> = x.iter().map(|r| r[f]).collect();
                // total_cmp tolerates NaN features (they sort last) instead
                // of panicking mid-fit on adversarial input.
                vals.sort_unstable_by(f64::total_cmp);
                (1..self.buckets)
                    .map(|q| vals[q * (vals.len() - 1) / self.buckets])
                    .collect()
            })
            .collect();
    }

    fn context_key(&self, x: &[f64]) -> u64 {
        let mut key = 0xcbf29ce484222325u64;
        for (f, bounds) in self.boundaries.iter().enumerate() {
            let bucket = bounds.partition_point(|&b| b < x[f]) as u64;
            key = mix64(key ^ (f as u64) << 32 ^ bucket);
        }
        key
    }

    /// One online update: observe `(x, label)`, penalise the wrong arm.
    pub fn update(&mut self, x: &[f64], label: bool) {
        let key = self.context_key(x);
        let w = self.contexts.entry(key).or_insert([0.5, 0.5]);
        let wrong = usize::from(!label);
        w[wrong] *= (-self.lambda).exp();
        let sum = w[0] + w[1];
        // A non-finite or vanished sum (λ set to ±∞/NaN, or extreme
        // penalties underflowing both arms) would otherwise poison every
        // later renormalisation of this context; reset to uniform instead.
        if !sum.is_finite() || sum <= 0.0 {
            *w = [0.5, 0.5];
            return;
        }
        w[0] = (w[0] / sum).clamp(self.floor, 1.0 - self.floor);
        w[1] = 1.0 - w[0];
    }

    /// Arm weights for a sample's context (`[w0, w1]`, uniform if unseen).
    pub fn arms(&self, x: &[f64]) -> [BanditArm; 2] {
        let w = self
            .contexts
            .get(&self.context_key(x))
            .copied()
            .unwrap_or([0.5, 0.5]);
        [BanditArm { weight: w[0] }, BanditArm { weight: w[1] }]
    }

    /// Number of distinct contexts touched so far.
    pub fn n_contexts(&self) -> usize {
        self.contexts.len()
    }
}

impl Classifier for ContextualBandit {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        if x.is_empty() {
            return;
        }
        self.contexts.clear();
        self.fit_boundaries(x);
        // Single temporal pass: bandits learn online, not by epochs.
        for (row, &label) in x.iter().zip(y) {
            self.update(row, label == 1.0);
        }
    }

    fn predict_score(&self, x: &[f64]) -> f64 {
        self.arms(x)[1].weight
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::accuracy;
    use cdn_cache::SimRng;

    #[test]
    fn learns_bucketable_boundary() {
        let mut rng = SimRng::new(20);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..4000 {
            let a = rng.f64_range(0.0, 1.0);
            x.push(vec![a]);
            y.push(f64::from(a > 0.5));
        }
        let mut m = ContextualBandit::new(8);
        m.fit(&x, &y);
        let acc = accuracy(&x, &y, |r| m.predict_score(r)).unwrap();
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn adapts_to_distribution_shift() {
        // The mapping flips halfway: online multiplicative weights recover,
        // which is the property the paper leans on for dynamic workloads.
        let mut m = ContextualBandit::new(2);
        let x: Vec<Vec<f64>> = (0..2000).map(|i| vec![f64::from(i % 2 == 0)]).collect();
        m.fit_boundaries(&x);
        for r in x.iter().take(1000) {
            m.update(r, r[0] > 0.5);
        }
        assert!(m.predict_score(&[1.0]) > 0.5);
        for r in x.iter().take(1000) {
            m.update(r, r[0] <= 0.5); // flipped concept
        }
        assert!(m.predict_score(&[1.0]) < 0.5, "should have flipped");
    }

    #[test]
    fn weights_stay_normalised_and_floored() {
        let mut m = ContextualBandit::new(2);
        m.fit_boundaries(&[vec![0.0], vec![1.0]]);
        for _ in 0..1000 {
            m.update(&[0.7], true);
        }
        let arms = m.arms(&[0.7]);
        let sum = arms[0].weight + arms[1].weight;
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(arms[0].weight >= m.floor - 1e-12);
        assert!(arms[1].weight > 0.9);
    }

    #[test]
    fn unseen_context_is_uniform() {
        let m = ContextualBandit::new(4);
        assert_eq!(m.predict_score(&[]), 0.5);
    }

    #[test]
    fn degenerate_lambda_cannot_poison_weights() {
        // λ = ∞ makes e^{-λ} = 0: both arms can hit exactly 0 and the old
        // renormalisation divided by 0. NaN λ is worse: it propagates into
        // the stored weights forever. Both must stay finite and normalised.
        for bad_lambda in [f64::INFINITY, f64::NEG_INFINITY, f64::NAN] {
            let mut m = ContextualBandit::new(2);
            m.fit_boundaries(&[vec![0.0], vec![1.0]]);
            m.lambda = bad_lambda;
            for i in 0..100 {
                m.update(&[0.7], i % 2 == 0);
                let arms = m.arms(&[0.7]);
                assert!(
                    arms[0].weight.is_finite() && arms[1].weight.is_finite(),
                    "λ={bad_lambda}: weights {arms:?}"
                );
                let sum = arms[0].weight + arms[1].weight;
                assert!((sum - 1.0).abs() < 1e-9, "λ={bad_lambda}: sum {sum}");
            }
        }
        // NaN features must not panic boundary fitting either.
        let mut m = ContextualBandit::new(4);
        m.fit(&[vec![f64::NAN], vec![1.0], vec![2.0]], &[0.0, 1.0, 0.0]);
        assert!(m.predict_score(&[1.5]).is_finite());
    }

    #[test]
    fn contexts_grow_with_data_diversity() {
        let mut rng = SimRng::new(22);
        let x: Vec<Vec<f64>> = (0..500).map(|_| vec![rng.f64(), rng.f64()]).collect();
        let y: Vec<f64> = (0..500).map(|i| f64::from(i % 2 == 0)).collect();
        let mut m = ContextualBandit::new(4);
        m.fit(&x, &y);
        assert!(m.n_contexts() > 4, "contexts {}", m.n_contexts());
        assert!(m.n_contexts() <= 16);
    }
}
