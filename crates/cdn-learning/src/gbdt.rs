//! Gradient-boosted regression trees (the paper's "GBM", and the model
//! inside LRB and GL-Cache).
//!
//! Least-squares boosting (Friedman 2001): each CART regression tree fits
//! the residual of the ensemble so far, scaled by a shrinkage factor.
//! Splits are chosen by exhaustive SSE reduction over quantile candidate
//! thresholds — exact enough at cache-feature dimensionality and orders of
//! magnitude cheaper than scanning every unique value.

use crate::Classifier;

/// Boosting hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct GbdtParams {
    /// Number of boosted trees.
    pub n_trees: usize,
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Shrinkage (learning rate).
    pub shrinkage: f64,
    /// Minimum samples per leaf.
    pub min_leaf: usize,
    /// Candidate thresholds per feature per node.
    pub n_thresholds: usize,
}

impl Default for GbdtParams {
    fn default() -> Self {
        GbdtParams {
            n_trees: 30,
            max_depth: 4,
            shrinkage: 0.2,
            min_leaf: 8,
            n_thresholds: 16,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: u32,
        right: u32,
    },
}

/// One CART regression tree.
#[derive(Debug, Clone)]
pub struct Tree {
    nodes: Vec<Node>,
}

impl Tree {
    fn predict(&self, x: &[f64]) -> f64 {
        let mut i = 0usize;
        loop {
            match &self.nodes[i] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if x[*feature] <= *threshold {
                        *left as usize
                    } else {
                        *right as usize
                    };
                }
            }
        }
    }

    /// Fit a tree to targets `r` on rows `idx` of `x`.
    fn fit(x: &[Vec<f64>], r: &[f64], idx: &mut [usize], params: &GbdtParams) -> Tree {
        let mut tree = Tree { nodes: Vec::new() };
        tree.build(x, r, idx, 0, params);
        tree
    }

    fn build(
        &mut self,
        x: &[Vec<f64>],
        r: &[f64],
        idx: &mut [usize],
        depth: usize,
        params: &GbdtParams,
    ) -> u32 {
        let n = idx.len();
        let mean = idx.iter().map(|&i| r[i]).sum::<f64>() / n as f64;
        if depth >= params.max_depth || n < 2 * params.min_leaf {
            self.nodes.push(Node::Leaf { value: mean });
            return (self.nodes.len() - 1) as u32;
        }
        let sse = |items: &[usize]| -> (f64, f64) {
            let m = items.iter().map(|&i| r[i]).sum::<f64>() / items.len() as f64;
            (
                items.iter().map(|&i| (r[i] - m) * (r[i] - m)).sum::<f64>(),
                m,
            )
        };
        let (parent_sse, _) = sse(idx);
        let dim = x[0].len();
        let mut best: Option<(f64, usize, f64)> = None; // (gain, feature, threshold)
        let mut vals: Vec<f64> = Vec::with_capacity(n);
        // Features are columns of row-major `x`; a column index is the
        // natural loop variable here.
        #[allow(clippy::needless_range_loop)]
        for f in 0..dim {
            vals.clear();
            vals.extend(idx.iter().map(|&i| x[i][f]));
            vals.sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaN features"));
            if vals[0] == vals[n - 1] {
                continue; // constant feature at this node
            }
            for q in 1..=params.n_thresholds {
                let pos = q * (n - 1) / (params.n_thresholds + 1);
                let threshold = vals[pos];
                if threshold == vals[n - 1] {
                    continue; // nothing would go right
                }
                // One pass: left/right sums for SSE reduction.
                let (mut ln, mut ls, mut lss) = (0usize, 0.0f64, 0.0f64);
                let (mut rn, mut rs, mut rss) = (0usize, 0.0f64, 0.0f64);
                for &i in idx.iter() {
                    let v = r[i];
                    if x[i][f] <= threshold {
                        ln += 1;
                        ls += v;
                        lss += v * v;
                    } else {
                        rn += 1;
                        rs += v;
                        rss += v * v;
                    }
                }
                if ln < params.min_leaf || rn < params.min_leaf {
                    continue;
                }
                let child_sse = (lss - ls * ls / ln as f64) + (rss - rs * rs / rn as f64);
                let gain = parent_sse - child_sse;
                if best.is_none_or(|(g, _, _)| gain > g) {
                    best = Some((gain, f, threshold));
                }
            }
        }
        let Some((gain, feature, threshold)) = best else {
            self.nodes.push(Node::Leaf { value: mean });
            return (self.nodes.len() - 1) as u32;
        };
        if gain <= 1e-12 {
            self.nodes.push(Node::Leaf { value: mean });
            return (self.nodes.len() - 1) as u32;
        }
        // Partition indices in place.
        let split_at = partition(idx, |&i| x[i][feature] <= threshold);
        let node_slot = self.nodes.len();
        self.nodes.push(Node::Leaf { value: mean }); // placeholder
        let (left_idx, right_idx) = idx.split_at_mut(split_at);
        let left = self.build(x, r, left_idx, depth + 1, params);
        let right = self.build(x, r, right_idx, depth + 1, params);
        self.nodes[node_slot] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        node_slot as u32
    }
}

/// Stable-order partition: moves elements satisfying `pred` to the front,
/// returning the boundary.
fn partition<T: Copy, F: Fn(&T) -> bool>(items: &mut [T], pred: F) -> usize {
    let mut buf: Vec<T> = Vec::with_capacity(items.len());
    buf.extend(items.iter().copied().filter(|t| pred(t)));
    let boundary = buf.len();
    buf.extend(items.iter().copied().filter(|t| !pred(t)));
    items.copy_from_slice(&buf);
    boundary
}

/// Gradient-boosted tree ensemble for regression and classification.
#[derive(Debug, Clone)]
pub struct Gbdt {
    params: GbdtParams,
    base: f64,
    trees: Vec<Tree>,
}

impl Gbdt {
    /// Untrained ensemble with the given hyper-parameters.
    pub fn new(params: GbdtParams) -> Self {
        Gbdt {
            params,
            base: 0.0,
            trees: Vec::new(),
        }
    }

    /// Least-squares boosting on arbitrary real targets.
    pub fn fit_regression(&mut self, x: &[Vec<f64>], y: &[f64]) {
        assert_eq!(x.len(), y.len());
        self.trees.clear();
        if x.is_empty() {
            self.base = 0.0;
            return;
        }
        self.base = y.iter().sum::<f64>() / y.len() as f64;
        let mut pred: Vec<f64> = vec![self.base; y.len()];
        let mut residual = vec![0.0f64; y.len()];
        let mut idx: Vec<usize> = (0..x.len()).collect();
        for _ in 0..self.params.n_trees {
            for i in 0..y.len() {
                residual[i] = y[i] - pred[i];
            }
            let tree = Tree::fit(x, &residual, &mut idx, &self.params);
            for (i, row) in x.iter().enumerate() {
                pred[i] += self.params.shrinkage * tree.predict(row);
            }
            self.trees.push(tree);
        }
    }

    /// Raw regression prediction.
    pub fn predict_raw(&self, x: &[f64]) -> f64 {
        self.base + self.params.shrinkage * self.trees.iter().map(|t| t.predict(x)).sum::<f64>()
    }

    /// Number of fitted trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Approximate model footprint in bytes (for resource figures).
    pub fn memory_bytes(&self) -> usize {
        self.trees
            .iter()
            .map(|t| t.nodes.len() * std::mem::size_of::<Node>())
            .sum::<usize>()
            + std::mem::size_of::<Self>()
    }
}

impl Classifier for Gbdt {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        self.fit_regression(x, y);
    }

    fn predict_score(&self, x: &[f64]) -> f64 {
        self.predict_raw(x).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::accuracy;
    use cdn_cache::SimRng;

    #[test]
    fn partition_is_stable() {
        let mut v = vec![3, 1, 4, 1, 5, 9, 2, 6];
        let b = partition(&mut v, |&x| x % 2 == 0);
        assert_eq!(b, 3);
        assert_eq!(v, vec![4, 2, 6, 3, 1, 1, 5, 9]);
    }

    #[test]
    fn fits_step_function() {
        let x: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64 / 200.0]).collect();
        let y: Vec<f64> = x.iter().map(|r| f64::from(r[0] > 0.6)).collect();
        let mut m = Gbdt::new(GbdtParams::default());
        m.fit(&x, &y);
        let acc = accuracy(&x, &y, |r| m.predict_score(r)).unwrap();
        assert!(acc > 0.97, "accuracy {acc}");
    }

    #[test]
    fn fits_nonlinear_interaction() {
        // XOR-style checkerboard: trees must model interactions.
        let mut rng = SimRng::new(16);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..3000 {
            let a = rng.f64_range(-1.0, 1.0);
            let b = rng.f64_range(-1.0, 1.0);
            x.push(vec![a, b]);
            y.push(f64::from((a > 0.0) != (b > 0.0)));
        }
        let mut m = Gbdt::new(GbdtParams {
            n_trees: 40,
            max_depth: 3,
            ..GbdtParams::default()
        });
        m.fit(&x, &y);
        let acc = accuracy(&x, &y, |r| m.predict_score(r)).unwrap();
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn regression_reduces_error_with_more_trees() {
        let x: Vec<Vec<f64>> = (0..400).map(|i| vec![i as f64 / 400.0]).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|r| (r[0] * std::f64::consts::TAU).sin())
            .collect();
        let mse = |m: &Gbdt| {
            x.iter()
                .zip(&y)
                .map(|(r, &t)| (m.predict_raw(r) - t).powi(2))
                .sum::<f64>()
                / x.len() as f64
        };
        let mut small = Gbdt::new(GbdtParams {
            n_trees: 3,
            ..GbdtParams::default()
        });
        small.fit_regression(&x, &y);
        let mut big = Gbdt::new(GbdtParams {
            n_trees: 50,
            ..GbdtParams::default()
        });
        big.fit_regression(&x, &y);
        assert!(
            mse(&big) < mse(&small) * 0.5,
            "{} vs {}",
            mse(&big),
            mse(&small)
        );
        assert!(mse(&big) < 0.01, "big mse {}", mse(&big));
    }

    #[test]
    fn constant_target_gives_constant_prediction() {
        let x: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let y = vec![0.7; 50];
        let mut m = Gbdt::new(GbdtParams::default());
        m.fit_regression(&x, &y);
        assert!((m.predict_raw(&[25.0]) - 0.7).abs() < 1e-9);
    }

    #[test]
    fn empty_fit_is_safe() {
        let mut m = Gbdt::new(GbdtParams::default());
        m.fit_regression(&[], &[]);
        assert_eq!(m.predict_raw(&[1.0]), 0.0);
        assert_eq!(m.n_trees(), 0);
    }

    #[test]
    fn memory_reporting_grows_with_trees() {
        let x: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..100).map(|i| f64::from(i % 2 == 0)).collect();
        let mut a = Gbdt::new(GbdtParams {
            n_trees: 2,
            ..GbdtParams::default()
        });
        a.fit(&x, &y);
        let mut b = Gbdt::new(GbdtParams {
            n_trees: 20,
            ..GbdtParams::default()
        });
        b.fit(&x, &y);
        assert!(b.memory_bytes() > a.memory_bytes());
    }
}
