//! One-hidden-layer fully-connected network (Figure 4's "NN").
//!
//! The paper uses 1024 hidden neurons; that width is tractable here too,
//! but the default is 64 because accuracy on ≤16-dimensional cache features
//! saturates far below 1024 and experiments run hundreds of fits. ReLU
//! hidden activation, sigmoid output, log loss, plain SGD with shuffling.

use cdn_cache::SimRng;

use crate::{sigmoid, Classifier};

/// `dim → hidden → 1` multi-layer perceptron.
#[derive(Debug, Clone)]
pub struct Mlp {
    dim: usize,
    hidden: usize,
    /// Row-major `hidden × dim` input weights.
    w1: Vec<f64>,
    b1: Vec<f64>,
    w2: Vec<f64>,
    b2: f64,
    /// SGD step size.
    pub lr: f64,
    /// Passes over the data.
    pub epochs: usize,
    seed: u64,
}

impl Mlp {
    /// Network with the given hidden width.
    pub fn with_hidden(dim: usize, hidden: usize) -> Self {
        let mut rng = SimRng::new(29);
        // He initialisation for ReLU.
        let scale1 = (2.0 / dim.max(1) as f64).sqrt();
        let scale2 = (2.0 / hidden as f64).sqrt();
        Mlp {
            dim,
            hidden,
            w1: (0..hidden * dim).map(|_| rng.normal() * scale1).collect(),
            b1: vec![0.0; hidden],
            w2: (0..hidden).map(|_| rng.normal() * scale2).collect(),
            b2: 0.0,
            lr: 0.05,
            epochs: 20,
            seed: 31,
        }
    }

    /// Default width (64 hidden units).
    pub fn new(dim: usize) -> Self {
        Self::with_hidden(dim, 64)
    }

    /// Paper-scale width (1024 hidden units) for fidelity runs.
    pub fn paper_scale(dim: usize) -> Self {
        Self::with_hidden(dim, 1024)
    }

    /// Forward pass; fills `h` with hidden activations and returns the
    /// output probability.
    fn forward(&self, x: &[f64], h: &mut [f64]) -> f64 {
        debug_assert_eq!(x.len(), self.dim);
        for (j, hj) in h.iter_mut().enumerate() {
            let row = &self.w1[j * self.dim..(j + 1) * self.dim];
            let z = self.b1[j] + row.iter().zip(x).map(|(w, v)| w * v).sum::<f64>();
            *hj = z.max(0.0); // ReLU
        }
        let z2 = self.b2
            + self
                .w2
                .iter()
                .zip(h.iter())
                .map(|(w, v)| w * v)
                .sum::<f64>();
        sigmoid(z2)
    }
}

impl Classifier for Mlp {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        assert_eq!(x.len(), y.len());
        if x.is_empty() {
            return;
        }
        assert_eq!(x[0].len(), self.dim, "feature dim mismatch");
        let mut order: Vec<usize> = (0..x.len()).collect();
        let mut rng = SimRng::new(self.seed);
        let mut h = vec![0.0; self.hidden];
        for epoch in 0..self.epochs {
            rng.shuffle(&mut order);
            let step = self.lr / (1.0 + epoch as f64 * 0.1);
            for &i in &order {
                let p = self.forward(&x[i], &mut h);
                let err = p - y[i]; // dL/dz2 for log loss + sigmoid
                                    // Output layer.
                self.b2 -= step * err;
                for (j, w2j) in self.w2.iter_mut().enumerate() {
                    let grad_hidden = err * *w2j;
                    *w2j -= step * err * h[j];
                    // Hidden layer (ReLU gate: gradient flows iff h > 0).
                    if h[j] > 0.0 {
                        self.b1[j] -= step * grad_hidden;
                        let row = &mut self.w1[j * self.dim..(j + 1) * self.dim];
                        for (w, v) in row.iter_mut().zip(&x[i]) {
                            *w -= step * grad_hidden * v;
                        }
                    }
                }
            }
        }
    }

    fn predict_score(&self, x: &[f64]) -> f64 {
        let mut h = vec![0.0; self.hidden];
        self.forward(x, &mut h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::accuracy;

    #[test]
    fn learns_xor_unlike_linear_models() {
        let mut rng = SimRng::new(12);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..2000 {
            let a = rng.f64_range(-1.0, 1.0);
            let b = rng.f64_range(-1.0, 1.0);
            x.push(vec![a, b]);
            y.push(f64::from((a > 0.0) != (b > 0.0)));
        }
        let mut m = Mlp::with_hidden(2, 32);
        m.epochs = 60;
        m.fit(&x, &y);
        let acc = accuracy(&x, &y, |r| m.predict_score(r)).unwrap();
        assert!(acc > 0.9, "XOR accuracy {acc}");
    }

    #[test]
    fn learns_linear_boundary_too() {
        let mut rng = SimRng::new(14);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..1500 {
            let a = rng.f64_range(-1.0, 1.0);
            x.push(vec![a]);
            y.push(f64::from(a > 0.2));
        }
        let mut m = Mlp::new(1);
        m.fit(&x, &y);
        let acc = accuracy(&x, &y, |r| m.predict_score(r)).unwrap();
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn output_is_probability() {
        let m = Mlp::new(3);
        for v in [-100.0, 0.0, 100.0] {
            let p = m.predict_score(&[v, v, v]);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn deterministic_training() {
        let x = vec![vec![1.0], vec![-1.0]];
        let y = vec![1.0, 0.0];
        let mut a = Mlp::new(1);
        let mut b = Mlp::new(1);
        a.fit(&x, &y);
        b.fit(&x, &y);
        assert_eq!(a.predict_score(&[0.5]), b.predict_score(&[0.5]));
    }
}
