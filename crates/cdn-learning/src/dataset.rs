//! Feature matrices, normalisation, splits and metrics.

use cdn_cache::SimRng;

/// A dense binary-classification dataset (row-major features).
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    /// Feature rows; all rows must share a length.
    pub x: Vec<Vec<f64>>,
    /// Labels in `{0, 1}`.
    pub y: Vec<f64>,
}

impl Dataset {
    /// Empty dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one labelled sample.
    pub fn push(&mut self, features: Vec<f64>, label: f64) {
        debug_assert!(label == 0.0 || label == 1.0, "binary labels only");
        if let Some(first) = self.x.first() {
            debug_assert_eq!(first.len(), features.len(), "ragged features");
        }
        self.x.push(features);
        self.y.push(label);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// True when no samples are present.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Feature dimensionality (0 for an empty set).
    pub fn dim(&self) -> usize {
        self.x.first().map_or(0, |r| r.len())
    }

    /// Fraction of positive labels.
    pub fn positive_rate(&self) -> f64 {
        if self.y.is_empty() {
            0.0
        } else {
            self.y.iter().sum::<f64>() / self.y.len() as f64
        }
    }

    /// Split into (train, test) by time order: the first `train_frac` of
    /// samples train, the rest test. Temporal splits match how a cache
    /// would actually deploy a model (no lookahead leakage).
    pub fn temporal_split(&self, train_frac: f64) -> (Dataset, Dataset) {
        assert!((0.0..=1.0).contains(&train_frac));
        let cut = (self.len() as f64 * train_frac) as usize;
        (
            Dataset {
                x: self.x[..cut].to_vec(),
                y: self.y[..cut].to_vec(),
            },
            Dataset {
                x: self.x[cut..].to_vec(),
                y: self.y[cut..].to_vec(),
            },
        )
    }

    /// Downsample the majority class so classes are balanced (the paper
    /// notes heuristics "favor the side with a large number" — balancing
    /// the training set removes that bias for the learned models).
    pub fn balanced(&self, rng: &mut SimRng) -> Dataset {
        let pos: Vec<usize> = (0..self.len()).filter(|&i| self.y[i] == 1.0).collect();
        let neg: Vec<usize> = (0..self.len()).filter(|&i| self.y[i] == 0.0).collect();
        let (mut majority, minority) = if pos.len() > neg.len() {
            (pos, neg)
        } else {
            (neg, pos)
        };
        rng.shuffle(&mut majority);
        majority.truncate(minority.len());
        let mut idx: Vec<usize> = minority.into_iter().chain(majority).collect();
        rng.shuffle(&mut idx);
        Dataset {
            x: idx.iter().map(|&i| self.x[i].clone()).collect(),
            y: idx.iter().map(|&i| self.y[i]).collect(),
        }
    }
}

/// Per-feature z-score normalisation fitted on a training set.
#[derive(Debug, Clone)]
pub struct Normalizer {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl Normalizer {
    /// Fit means and standard deviations on `x`.
    pub fn fit(x: &[Vec<f64>]) -> Self {
        assert!(!x.is_empty(), "cannot fit a normalizer on no data");
        let dim = x[0].len();
        let n = x.len() as f64;
        let mut mean = vec![0.0; dim];
        for row in x {
            for (m, v) in mean.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0; dim];
        for row in x {
            for ((s, v), m) in var.iter_mut().zip(row).zip(&mean) {
                let d = v - m;
                *s += d * d;
            }
        }
        let std = var
            .into_iter()
            .map(|s| {
                let sd = (s / n).sqrt();
                if sd < 1e-12 {
                    1.0
                } else {
                    sd
                }
            })
            .collect();
        Normalizer { mean, std }
    }

    /// Normalise a single row in place.
    pub fn apply(&self, row: &mut [f64]) {
        for ((v, m), s) in row.iter_mut().zip(&self.mean).zip(&self.std) {
            *v = (*v - m) / s;
        }
    }

    /// Normalise a whole matrix in place.
    pub fn apply_all(&self, x: &mut [Vec<f64>]) {
        for row in x {
            self.apply(row);
        }
    }
}

/// Classification accuracy of a scoring function thresholded at 0.5.
pub fn accuracy<F: Fn(&[f64]) -> f64>(x: &[Vec<f64>], y: &[f64], score: F) -> f64 {
    assert_eq!(x.len(), y.len());
    if x.is_empty() {
        return 0.0;
    }
    let correct = x
        .iter()
        .zip(y)
        .filter(|(row, &label)| (score(row) >= 0.5) == (label == 1.0))
        .count();
    correct as f64 / x.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let mut d = Dataset::new();
        for i in 0..10 {
            d.push(vec![i as f64, 1.0], if i < 3 { 1.0 } else { 0.0 });
        }
        d
    }

    #[test]
    fn push_and_dims() {
        let d = toy();
        assert_eq!(d.len(), 10);
        assert_eq!(d.dim(), 2);
        assert!((d.positive_rate() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn temporal_split_preserves_order() {
        let d = toy();
        let (tr, te) = d.temporal_split(0.7);
        assert_eq!(tr.len(), 7);
        assert_eq!(te.len(), 3);
        assert_eq!(te.x[0][0], 7.0);
    }

    #[test]
    fn balanced_equalises_classes() {
        let d = toy();
        let mut rng = SimRng::new(1);
        let b = d.balanced(&mut rng);
        assert_eq!(b.len(), 6);
        assert!((b.positive_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn normalizer_zero_mean_unit_std() {
        let d = toy();
        let norm = Normalizer::fit(&d.x);
        let mut x = d.x.clone();
        norm.apply_all(&mut x);
        let n = x.len() as f64;
        for j in 0..2 {
            let mean: f64 = x.iter().map(|r| r[j]).sum::<f64>() / n;
            assert!(mean.abs() < 1e-9, "col {j} mean {mean}");
        }
        let var0: f64 = x.iter().map(|r| r[0] * r[0]).sum::<f64>() / n;
        assert!((var0 - 1.0).abs() < 1e-9);
        // Constant column maps to zeros (std clamped to 1), not NaN.
        assert!(x.iter().all(|r| r[1] == 0.0));
    }

    #[test]
    fn accuracy_counts() {
        let x = vec![vec![0.0], vec![1.0], vec![2.0]];
        let y = vec![0.0, 1.0, 1.0];
        let acc = accuracy(&x, &y, |r| if r[0] > 0.5 { 1.0 } else { 0.0 });
        assert!((acc - 1.0).abs() < 1e-12);
        let acc = accuracy(&x, &y, |_| 1.0);
        assert!((acc - 2.0 / 3.0).abs() < 1e-12);
    }
}
