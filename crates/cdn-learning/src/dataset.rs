//! Feature matrices, normalisation, splits and metrics.

use std::fmt;

use cdn_cache::SimRng;

/// Structured errors for dataset construction and evaluation.
///
/// These replace the panics that used to guard user-reachable paths: a
/// caller feeding ragged feature rows or a bad split fraction gets a
/// typed error to report, not an abort inside the library.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LearnError {
    /// A feature row's length disagrees with the dataset's dimensionality.
    RaggedRow {
        /// Expected feature count (from the first row).
        expected: usize,
        /// Length of the offending row.
        got: usize,
    },
    /// A label outside `{0, 1}` (NaN included).
    BadLabel(f64),
    /// An operation that needs at least one sample got an empty set.
    EmptyDataset,
    /// A split fraction outside `[0, 1]` (NaN included).
    BadFraction(f64),
    /// Feature matrix and label vector lengths disagree.
    LengthMismatch {
        /// Number of feature rows.
        x: usize,
        /// Number of labels.
        y: usize,
    },
}

impl fmt::Display for LearnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LearnError::RaggedRow { expected, got } => {
                write!(
                    f,
                    "ragged feature row: expected {expected} features, got {got}"
                )
            }
            LearnError::BadLabel(l) => write!(f, "label {l} is not a binary 0/1 label"),
            LearnError::EmptyDataset => write!(f, "operation requires a non-empty dataset"),
            LearnError::BadFraction(v) => write!(f, "split fraction {v} is outside [0, 1]"),
            LearnError::LengthMismatch { x, y } => {
                write!(f, "feature/label length mismatch: {x} rows vs {y} labels")
            }
        }
    }
}

impl std::error::Error for LearnError {}

/// A dense binary-classification dataset (row-major features).
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    /// Feature rows; all rows must share a length.
    pub x: Vec<Vec<f64>>,
    /// Labels in `{0, 1}`.
    pub y: Vec<f64>,
}

impl Dataset {
    /// Empty dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one labelled sample.
    ///
    /// Rejects labels outside `{0, 1}` and feature rows whose length
    /// disagrees with the first row's; the dataset is unchanged on error.
    pub fn push(&mut self, features: Vec<f64>, label: f64) -> Result<(), LearnError> {
        if label != 0.0 && label != 1.0 {
            return Err(LearnError::BadLabel(label));
        }
        if let Some(first) = self.x.first() {
            if first.len() != features.len() {
                return Err(LearnError::RaggedRow {
                    expected: first.len(),
                    got: features.len(),
                });
            }
        }
        self.x.push(features);
        self.y.push(label);
        Ok(())
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// True when no samples are present.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Feature dimensionality (0 for an empty set).
    pub fn dim(&self) -> usize {
        self.x.first().map_or(0, |r| r.len())
    }

    /// Fraction of positive labels.
    pub fn positive_rate(&self) -> f64 {
        if self.y.is_empty() {
            0.0
        } else {
            self.y.iter().sum::<f64>() / self.y.len() as f64
        }
    }

    /// Split into (train, test) by time order: the first `train_frac` of
    /// samples train, the rest test. Temporal splits match how a cache
    /// would actually deploy a model (no lookahead leakage).
    pub fn temporal_split(&self, train_frac: f64) -> Result<(Dataset, Dataset), LearnError> {
        if !(0.0..=1.0).contains(&train_frac) {
            return Err(LearnError::BadFraction(train_frac));
        }
        let cut = (self.len() as f64 * train_frac) as usize;
        Ok((
            Dataset {
                x: self.x[..cut].to_vec(),
                y: self.y[..cut].to_vec(),
            },
            Dataset {
                x: self.x[cut..].to_vec(),
                y: self.y[cut..].to_vec(),
            },
        ))
    }

    /// Downsample the majority class so classes are balanced (the paper
    /// notes heuristics "favor the side with a large number" — balancing
    /// the training set removes that bias for the learned models).
    pub fn balanced(&self, rng: &mut SimRng) -> Dataset {
        let pos: Vec<usize> = (0..self.len()).filter(|&i| self.y[i] == 1.0).collect();
        let neg: Vec<usize> = (0..self.len()).filter(|&i| self.y[i] == 0.0).collect();
        let (mut majority, minority) = if pos.len() > neg.len() {
            (pos, neg)
        } else {
            (neg, pos)
        };
        rng.shuffle(&mut majority);
        majority.truncate(minority.len());
        let mut idx: Vec<usize> = minority.into_iter().chain(majority).collect();
        rng.shuffle(&mut idx);
        Dataset {
            x: idx.iter().map(|&i| self.x[i].clone()).collect(),
            y: idx.iter().map(|&i| self.y[i]).collect(),
        }
    }
}

/// Per-feature z-score normalisation fitted on a training set.
#[derive(Debug, Clone)]
pub struct Normalizer {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl Normalizer {
    /// Fit means and standard deviations on `x`.
    ///
    /// Errors on an empty matrix or ragged rows instead of panicking.
    pub fn fit(x: &[Vec<f64>]) -> Result<Self, LearnError> {
        if x.is_empty() {
            return Err(LearnError::EmptyDataset);
        }
        let dim = x[0].len();
        if let Some(bad) = x.iter().find(|r| r.len() != dim) {
            return Err(LearnError::RaggedRow {
                expected: dim,
                got: bad.len(),
            });
        }
        let n = x.len() as f64;
        let mut mean = vec![0.0; dim];
        for row in x {
            for (m, v) in mean.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0; dim];
        for row in x {
            for ((s, v), m) in var.iter_mut().zip(row).zip(&mean) {
                let d = v - m;
                *s += d * d;
            }
        }
        let std = var
            .into_iter()
            .map(|s| {
                let sd = (s / n).sqrt();
                if sd < 1e-12 {
                    1.0
                } else {
                    sd
                }
            })
            .collect();
        Ok(Normalizer { mean, std })
    }

    /// Normalise a single row in place.
    pub fn apply(&self, row: &mut [f64]) {
        for ((v, m), s) in row.iter_mut().zip(&self.mean).zip(&self.std) {
            *v = (*v - m) / s;
        }
    }

    /// Normalise a whole matrix in place.
    pub fn apply_all(&self, x: &mut [Vec<f64>]) {
        for row in x {
            self.apply(row);
        }
    }
}

/// Classification accuracy of a scoring function thresholded at 0.5.
///
/// Errors when features and labels disagree in length; an empty set scores
/// 0.0 (no decisions were correct because none were made).
pub fn accuracy<F: Fn(&[f64]) -> f64>(
    x: &[Vec<f64>],
    y: &[f64],
    score: F,
) -> Result<f64, LearnError> {
    if x.len() != y.len() {
        return Err(LearnError::LengthMismatch {
            x: x.len(),
            y: y.len(),
        });
    }
    if x.is_empty() {
        return Ok(0.0);
    }
    let correct = x
        .iter()
        .zip(y)
        .filter(|(row, &label)| (score(row) >= 0.5) == (label == 1.0))
        .count();
    Ok(correct as f64 / x.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let mut d = Dataset::new();
        for i in 0..10 {
            d.push(vec![i as f64, 1.0], if i < 3 { 1.0 } else { 0.0 })
                .unwrap();
        }
        d
    }

    #[test]
    fn push_and_dims() {
        let d = toy();
        assert_eq!(d.len(), 10);
        assert_eq!(d.dim(), 2);
        assert!((d.positive_rate() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn temporal_split_preserves_order() {
        let d = toy();
        let (tr, te) = d.temporal_split(0.7).unwrap();
        assert_eq!(tr.len(), 7);
        assert_eq!(te.len(), 3);
        assert_eq!(te.x[0][0], 7.0);
    }

    #[test]
    fn balanced_equalises_classes() {
        let d = toy();
        let mut rng = SimRng::new(1);
        let b = d.balanced(&mut rng);
        assert_eq!(b.len(), 6);
        assert!((b.positive_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn normalizer_zero_mean_unit_std() {
        let d = toy();
        let norm = Normalizer::fit(&d.x).unwrap();
        let mut x = d.x.clone();
        norm.apply_all(&mut x);
        let n = x.len() as f64;
        for j in 0..2 {
            let mean: f64 = x.iter().map(|r| r[j]).sum::<f64>() / n;
            assert!(mean.abs() < 1e-9, "col {j} mean {mean}");
        }
        let var0: f64 = x.iter().map(|r| r[0] * r[0]).sum::<f64>() / n;
        assert!((var0 - 1.0).abs() < 1e-9);
        // Constant column maps to zeros (std clamped to 1), not NaN.
        assert!(x.iter().all(|r| r[1] == 0.0));
    }

    #[test]
    fn accuracy_counts() {
        let x = vec![vec![0.0], vec![1.0], vec![2.0]];
        let y = vec![0.0, 1.0, 1.0];
        let acc = accuracy(&x, &y, |r| if r[0] > 0.5 { 1.0 } else { 0.0 }).unwrap();
        assert!((acc - 1.0).abs() < 1e-12);
        let acc = accuracy(&x, &y, |_| 1.0).unwrap();
        assert!((acc - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn structured_errors_not_panics() {
        let mut d = toy();
        assert_eq!(
            d.push(vec![1.0], 0.0),
            Err(LearnError::RaggedRow {
                expected: 2,
                got: 1
            })
        );
        assert_eq!(d.push(vec![1.0, 2.0], 0.5), Err(LearnError::BadLabel(0.5)));
        assert!(matches!(
            d.push(vec![1.0, 2.0], f64::NAN),
            Err(LearnError::BadLabel(l)) if l.is_nan()
        ));
        assert_eq!(d.len(), 10, "failed pushes must not mutate");
        assert!(matches!(
            d.temporal_split(1.5),
            Err(LearnError::BadFraction(v)) if v == 1.5
        ));
        assert!(d.temporal_split(f64::NAN).is_err());
        assert!(matches!(
            Normalizer::fit(&[]),
            Err(LearnError::EmptyDataset)
        ));
        assert_eq!(
            Normalizer::fit(&[vec![1.0, 2.0], vec![3.0]]).unwrap_err(),
            LearnError::RaggedRow {
                expected: 2,
                got: 1
            }
        );
        assert_eq!(
            accuracy(&[vec![1.0]], &[], |_| 0.0),
            Err(LearnError::LengthMismatch { x: 1, y: 0 })
        );
        // Errors render with context for binaries to report.
        let msg = LearnError::EmptyDataset.to_string();
        assert!(msg.contains("non-empty"), "{msg}");
    }
}
