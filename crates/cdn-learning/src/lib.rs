//! Learning substrate for the SCIP reproduction.
//!
//! The paper's Figure 4 compares six model families on ZRO / P-ZRO
//! identification — linear regression, logistic regression, a linear SVM, a
//! one-hidden-layer neural network, a gradient boosting machine and a
//! multi-armed bandit — and its baselines LRB and GL-Cache embed gradient
//! boosted trees. All are implemented here from scratch on plain `f64`
//! slices: the feature dimensionality of cache metadata is tiny (≤ 16), so
//! cache-friendly dense loops beat any linear-algebra dependency.
//!
//! - [`dataset`]: feature matrices, z-score normalisation, splits, metrics.
//! - [`linreg`]: linear regression (SGD, squared loss).
//! - [`logreg`]: logistic regression (SGD, log loss).
//! - [`svm`]: linear SVM (SGD, hinge loss + L2).
//! - [`mlp`]: one-hidden-layer fully-connected network (backprop).
//! - [`gbdt`]: gradient-boosted regression trees (CART + boosting).
//! - [`mab`]: contextual multi-armed bandit with exponential weights — the
//!   model family SCIP itself builds on.

pub mod dataset;
pub mod gbdt;
pub mod linreg;
pub mod logreg;
pub mod mab;
pub mod mlp;
pub mod svm;

pub use dataset::{accuracy, Dataset, LearnError, Normalizer};
pub use gbdt::{Gbdt, GbdtParams};
pub use linreg::LinReg;
pub use logreg::LogReg;
pub use mab::{BanditArm, ContextualBandit};
pub use mlp::Mlp;
pub use svm::LinearSvm;

/// A binary classifier over dense feature slices.
///
/// `predict_score` returns a score in `[0, 1]`; `predict` thresholds it at
/// 0.5. Scores are probabilities for models that produce them (logreg, MLP,
/// GBDT-with-sigmoid) and squashed regression/margin values otherwise.
pub trait Classifier {
    /// Fit on features `x` (row-major) and labels `y ∈ {0, 1}`.
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]);

    /// Score one sample in `[0, 1]`.
    fn predict_score(&self, x: &[f64]) -> f64;

    /// Hard 0/1 decision.
    fn predict(&self, x: &[f64]) -> bool {
        self.predict_score(x) >= 0.5
    }
}

/// Numerically-stable logistic sigmoid, shared by several models.
#[inline]
pub fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::sigmoid;

    #[test]
    fn sigmoid_properties() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(40.0) > 0.999_999);
        assert!(sigmoid(-40.0) < 1e-6);
        assert!(sigmoid(1000.0).is_finite());
        assert!(sigmoid(-1000.0).is_finite());
    }
}
