//! Logistic regression trained by SGD (Figure 4's "LogReg").

use cdn_cache::SimRng;

use crate::{sigmoid, Classifier};

/// Logistic regression: `p = σ(w·x + b)`, log loss, L2 regularisation.
#[derive(Debug, Clone)]
pub struct LogReg {
    w: Vec<f64>,
    b: f64,
    /// SGD step size.
    pub lr: f64,
    /// L2 penalty.
    pub l2: f64,
    /// Passes over the data.
    pub epochs: usize,
    seed: u64,
}

impl LogReg {
    /// Model for `dim` features with default hyper-parameters.
    pub fn new(dim: usize) -> Self {
        LogReg {
            w: vec![0.0; dim],
            b: 0.0,
            lr: 0.1,
            l2: 1e-4,
            epochs: 30,
            seed: 19,
        }
    }

    fn margin(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.w.len());
        self.b + self.w.iter().zip(x).map(|(w, v)| w * v).sum::<f64>()
    }
}

impl Classifier for LogReg {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        assert_eq!(x.len(), y.len());
        if x.is_empty() {
            return;
        }
        let dim = x[0].len();
        if self.w.len() != dim {
            self.w = vec![0.0; dim];
        }
        let mut order: Vec<usize> = (0..x.len()).collect();
        let mut rng = SimRng::new(self.seed);
        for epoch in 0..self.epochs {
            rng.shuffle(&mut order);
            let step = self.lr / (1.0 + epoch as f64 * 0.2);
            for &i in &order {
                // d(logloss)/d(margin) = p - y.
                let err = sigmoid(self.margin(&x[i])) - y[i];
                self.b -= step * err;
                for (w, v) in self.w.iter_mut().zip(&x[i]) {
                    *w -= step * (err * v + self.l2 * *w);
                }
            }
        }
    }

    fn predict_score(&self, x: &[f64]) -> f64 {
        sigmoid(self.margin(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::accuracy;

    #[test]
    fn learns_separable_data() {
        let mut rng = SimRng::new(4);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..2000 {
            let a = rng.f64_range(-1.0, 1.0);
            let b = rng.f64_range(-1.0, 1.0);
            x.push(vec![a, b]);
            y.push(if 2.0 * a - b > 0.3 { 1.0 } else { 0.0 });
        }
        let mut m = LogReg::new(2);
        m.fit(&x, &y);
        let acc = accuracy(&x, &y, |r| m.predict_score(r)).unwrap();
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn probabilities_calibrated_on_noise() {
        // Pure label noise: the model should sit near p = positive rate.
        let mut rng = SimRng::new(6);
        let x: Vec<Vec<f64>> = (0..1000).map(|_| vec![rng.f64()]).collect();
        let y: Vec<f64> = (0..1000).map(|_| f64::from(rng.chance(0.7))).collect();
        let mut m = LogReg::new(1);
        m.fit(&x, &y);
        let mean: f64 = x.iter().map(|r| m.predict_score(r)).sum::<f64>() / x.len() as f64;
        assert!((mean - 0.7).abs() < 0.1, "mean p {mean}");
    }

    #[test]
    fn scores_are_probabilities() {
        let mut m = LogReg::new(1);
        m.fit(&[vec![5.0], vec![-5.0]], &[1.0, 0.0]);
        let hi = m.predict_score(&[100.0]);
        let lo = m.predict_score(&[-100.0]);
        assert!((0.0..=1.0).contains(&hi) && (0.0..=1.0).contains(&lo));
        assert!(hi > lo);
    }
}
