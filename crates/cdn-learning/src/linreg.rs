//! Linear regression trained by SGD, used as a thresholded classifier
//! (the paper's "LinReg" baseline in Figure 4).

use cdn_cache::SimRng;

use crate::Classifier;

/// Linear regression: `ŷ = w·x + b`, squared loss, L2 regularisation.
#[derive(Debug, Clone)]
pub struct LinReg {
    w: Vec<f64>,
    b: f64,
    /// SGD step size.
    pub lr: f64,
    /// L2 penalty.
    pub l2: f64,
    /// Passes over the data.
    pub epochs: usize,
    seed: u64,
}

impl LinReg {
    /// Model for `dim` features with default hyper-parameters.
    pub fn new(dim: usize) -> Self {
        LinReg {
            w: vec![0.0; dim],
            b: 0.0,
            lr: 0.05,
            l2: 1e-4,
            epochs: 30,
            seed: 17,
        }
    }

    /// Raw (unsquashed) prediction.
    pub fn raw(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.w.len());
        self.b + self.w.iter().zip(x).map(|(w, v)| w * v).sum::<f64>()
    }

    /// Learned weights (for inspection).
    pub fn weights(&self) -> &[f64] {
        &self.w
    }
}

impl Classifier for LinReg {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        assert_eq!(x.len(), y.len());
        if x.is_empty() {
            return;
        }
        let dim = x[0].len();
        if self.w.len() != dim {
            self.w = vec![0.0; dim];
        }
        let mut order: Vec<usize> = (0..x.len()).collect();
        let mut rng = SimRng::new(self.seed);
        for epoch in 0..self.epochs {
            rng.shuffle(&mut order);
            // 1/t learning-rate decay keeps late epochs from oscillating.
            let step = self.lr / (1.0 + epoch as f64 * 0.2);
            for &i in &order {
                let err = self.raw(&x[i]) - y[i];
                self.b -= step * err;
                for (w, v) in self.w.iter_mut().zip(&x[i]) {
                    *w -= step * (err * v + self.l2 * *w);
                }
            }
        }
    }

    fn predict_score(&self, x: &[f64]) -> f64 {
        // Regression output clamped into [0,1]; 0.5 threshold as in the
        // classic "linear probability model" classifier.
        self.raw(x).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::accuracy;

    fn separable(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = SimRng::new(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let a = rng.f64_range(-1.0, 1.0);
            let b = rng.f64_range(-1.0, 1.0);
            x.push(vec![a, b]);
            y.push(if a + b > 0.0 { 1.0 } else { 0.0 });
        }
        (x, y)
    }

    #[test]
    fn learns_linearly_separable_data() {
        let (x, y) = separable(2000, 3);
        let mut m = LinReg::new(2);
        m.fit(&x, &y);
        let acc = accuracy(&x, &y, |r| m.predict_score(r)).unwrap();
        assert!(acc > 0.93, "accuracy {acc}");
    }

    #[test]
    fn recovers_plane_weights_direction() {
        let (x, y) = separable(3000, 5);
        let mut m = LinReg::new(2);
        m.fit(&x, &y);
        let w = m.weights();
        // True separator is a+b=0: both weights positive and similar.
        assert!(w[0] > 0.0 && w[1] > 0.0);
        assert!((w[0] / w[1] - 1.0).abs() < 0.3, "weights {w:?}");
    }

    #[test]
    fn empty_fit_is_noop() {
        let mut m = LinReg::new(2);
        m.fit(&[], &[]);
        assert_eq!(m.predict_score(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn scores_clamped() {
        let mut m = LinReg::new(1);
        m.fit(&[vec![10.0], vec![-10.0]], &[1.0, 0.0]);
        assert!(m.predict_score(&[1000.0]) <= 1.0);
        assert!(m.predict_score(&[-1000.0]) >= 0.0);
    }
}
