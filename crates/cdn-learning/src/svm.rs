//! Linear support-vector machine trained with Pegasos-style SGD
//! (Figure 4's "SVM"; Joachims' large-scale linear setting).

use cdn_cache::SimRng;

use crate::{sigmoid, Classifier};

/// Linear SVM: hinge loss with L2 regularisation, labels mapped to ±1.
#[derive(Debug, Clone)]
pub struct LinearSvm {
    w: Vec<f64>,
    b: f64,
    /// Regularisation strength (Pegasos λ).
    pub lambda: f64,
    /// Passes over the data.
    pub epochs: usize,
    seed: u64,
}

impl LinearSvm {
    /// Model for `dim` features with default hyper-parameters.
    pub fn new(dim: usize) -> Self {
        LinearSvm {
            w: vec![0.0; dim],
            b: 0.0,
            lambda: 1e-4,
            epochs: 30,
            seed: 23,
        }
    }

    /// Signed margin `w·x + b`.
    pub fn margin(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.w.len());
        self.b + self.w.iter().zip(x).map(|(w, v)| w * v).sum::<f64>()
    }
}

impl Classifier for LinearSvm {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        assert_eq!(x.len(), y.len());
        if x.is_empty() {
            return;
        }
        let dim = x[0].len();
        if self.w.len() != dim {
            self.w = vec![0.0; dim];
        }
        let mut order: Vec<usize> = (0..x.len()).collect();
        let mut rng = SimRng::new(self.seed);
        let mut t = 1.0f64;
        for _ in 0..self.epochs {
            rng.shuffle(&mut order);
            for &i in &order {
                // Pegasos step size 1/(λ t).
                let step = 1.0 / (self.lambda * t);
                t += 1.0;
                let yi = if y[i] == 1.0 { 1.0 } else { -1.0 };
                let violated = yi * self.margin(&x[i]) < 1.0;
                for (w, v) in self.w.iter_mut().zip(&x[i]) {
                    *w -= step * self.lambda * *w;
                    if violated {
                        *w += step * yi * v;
                    }
                }
                if violated {
                    self.b += step * yi * 0.1; // unregularised bias, damped
                }
            }
        }
    }

    fn predict_score(&self, x: &[f64]) -> f64 {
        // Squash the margin so scores are comparable to probabilistic
        // models (Platt scaling with fixed slope).
        sigmoid(2.0 * self.margin(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::accuracy;

    #[test]
    fn learns_separable_data() {
        let mut rng = SimRng::new(8);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..2000 {
            let a = rng.f64_range(-1.0, 1.0);
            let b = rng.f64_range(-1.0, 1.0);
            x.push(vec![a, b]);
            y.push(if a - b > 0.0 { 1.0 } else { 0.0 });
        }
        let mut m = LinearSvm::new(2);
        m.fit(&x, &y);
        let acc = accuracy(&x, &y, |r| m.predict_score(r)).unwrap();
        assert!(acc > 0.93, "accuracy {acc}");
    }

    #[test]
    fn margin_sign_matches_class() {
        let x = vec![vec![1.0], vec![2.0], vec![-1.0], vec![-2.0]];
        let y = vec![1.0, 1.0, 0.0, 0.0];
        let mut m = LinearSvm::new(1);
        m.fit(&x, &y);
        assert!(m.margin(&[3.0]) > 0.0);
        assert!(m.margin(&[-3.0]) < 0.0);
    }

    #[test]
    fn tolerates_label_noise() {
        let mut rng = SimRng::new(10);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..3000 {
            let a = rng.f64_range(-1.0, 1.0);
            x.push(vec![a]);
            let clean = a > 0.0;
            let label = if rng.chance(0.1) { !clean } else { clean };
            y.push(f64::from(label));
        }
        let mut m = LinearSvm::new(1);
        m.fit(&x, &y);
        let acc = accuracy(&x, &y, |r| m.predict_score(r)).unwrap();
        assert!(acc > 0.85, "accuracy {acc}");
    }
}
