//! Exact finite-support Zipf sampling.
//!
//! CDN object popularity is classically Zipf-like: the r-th most popular
//! object is requested with probability proportional to `1 / r^s`. We
//! precompute the cumulative distribution once (O(N) memory, N ≤ a few
//! million for our scaled traces) and sample by binary search (O(log N)).
//! This is exact, branch-predictable and fast enough that trace generation
//! is never the bottleneck of an experiment.

use cdn_cache::SimRng;

/// Finite Zipf(s) distribution over ranks `0..n`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
    s: f64,
}

impl Zipf {
    /// Distribution over `n` ranks with exponent `s ≥ 0`. `s = 0` is
    /// uniform; CDN workloads typically fit `s ∈ [0.6, 1.1]`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s >= 0.0 && s.is_finite(), "invalid Zipf exponent {s}");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for r in 1..=n {
            acc += (r as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against FP round-off so the final bucket always catches.
        *cdf.last_mut().expect("n > 0") = 1.0;
        Zipf { cdf, s }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Exponent.
    pub fn s(&self) -> f64 {
        self.s
    }

    /// Probability mass of rank `r` (0-based).
    pub fn pmf(&self, r: usize) -> f64 {
        if r == 0 {
            self.cdf[0]
        } else {
            self.cdf[r] - self.cdf[r - 1]
        }
    }

    /// Sample a rank (0-based; rank 0 is the most popular).
    #[inline]
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.f64();
        // partition_point returns the first index with cdf[i] >= u … we use
        // the "first strictly greater-or-equal" boundary via !(c < u).
        self.cdf.partition_point(|&c| c < u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(1000, 0.9);
        let sum: f64 = (0..1000).map(|r| z.pmf(r)).sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
    }

    #[test]
    fn rank_zero_most_popular() {
        let z = Zipf::new(100, 1.0);
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(50));
    }

    #[test]
    fn uniform_when_s_zero() {
        let z = Zipf::new(10, 0.0);
        for r in 0..10 {
            assert!((z.pmf(r) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn samples_in_range_and_skewed() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = SimRng::new(1);
        let mut top10 = 0usize;
        let n = 100_000;
        for _ in 0..n {
            let r = z.sample(&mut rng);
            assert!(r < 1000);
            if r < 10 {
                top10 += 1;
            }
        }
        // With s=1, N=1000 the top-10 mass is H(10)/H(1000) ≈ 0.39.
        let frac = top10 as f64 / n as f64;
        assert!((0.34..0.44).contains(&frac), "top-10 fraction {frac}");
    }

    #[test]
    fn empirical_matches_pmf() {
        let z = Zipf::new(50, 0.8);
        let mut rng = SimRng::new(7);
        let mut counts = [0u32; 50];
        let n = 200_000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for r in [0usize, 1, 5, 20, 49] {
            let emp = counts[r] as f64 / n as f64;
            let exp = z.pmf(r);
            assert!(
                (emp - exp).abs() < 0.01 + exp * 0.1,
                "rank {r}: emp {emp} vs pmf {exp}"
            );
        }
    }

    #[test]
    fn single_rank_always_zero() {
        let z = Zipf::new(1, 1.2);
        let mut rng = SimRng::new(3);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }
}
