//! Out-of-core streaming: double-buffered trace prefetch and the
//! direct-to-disk corpus generator.
//!
//! Two halves, both bounded-memory by construction:
//!
//! - **Read side** — [`StreamingTrace`] wraps a [`ChunkIter`] in a
//!   prefetch thread connected to the consumer by one bounded two-slot
//!   channel ([`STREAM_SLOTS`]): while the consumer replays chunk *N*,
//!   the reader decodes (and CRC-verifies) chunk *N+1* into the free
//!   slot, overlapping I/O + decode with compute. Peak memory on the
//!   read path is `(STREAM_SLOTS + 2) × chunk bytes` — the slots, the
//!   chunk being decoded, and the chunk being consumed — independent of
//!   trace length. Decode errors travel through the channel as values;
//!   a reader panic is caught and surfaces as a structured
//!   [`TraceError`], never a hang or a silently short stream.
//!
//! - **Write side** — [`generate_binary`] runs the deterministic
//!   [`TraceGenerator`] and writes format v2 straight to disk. The
//!   generator itself is sequential (its RNG state is the determinism),
//!   so parallelism comes from pipelining *around* it: chunk encode +
//!   CRC run on a small worker pool while the writer thread reassembles
//!   chunks in index order. The output is byte-identical to
//!   `write_binary(path, &TraceGenerator::generate(cfg))` without ever
//!   materializing the trace.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Write};
use std::path::Path;
use std::sync::mpsc::{self, Receiver};
use std::sync::Mutex;
use std::thread::JoinHandle;

use cdn_cache::Request;

use crate::checksum::{crc32, Fnv1a64};
use crate::columns::TraceColumns;
use crate::gen::{GeneratorConfig, TraceGenerator};
use crate::io::{
    encode_record, ChunkIter, TraceError, CHUNK_RECORDS, END_MAGIC, MAGIC, RECORD_BYTES, VERSION_V2,
};

/// Bounded channel depth between the prefetch thread and the consumer:
/// one slot being consumed-from, one being filled — classic double
/// buffering.
pub const STREAM_SLOTS: usize = 2;

/// Records per chunk yielded to the consumer (`REPLAY_STREAM_CHUNK`,
/// default [`CHUNK_RECORDS`]). Values below one disk chunk are rounded up
/// to it — the reader coalesces whole disk chunks, it never splits them.
pub fn stream_chunk_records() -> usize {
    std::env::var("REPLAY_STREAM_CHUNK")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n: &usize| n > 0)
        .unwrap_or(CHUNK_RECORDS)
}

/// A trace streamed off disk through a prefetch thread. Iterate it like
/// any chunk source: `Item = Result<TraceColumns, TraceError>`, fused
/// after the first error.
pub struct StreamingTrace {
    rx: Option<Receiver<Result<TraceColumns, TraceError>>>,
    handle: Option<JoinHandle<()>>,
    header_count: usize,
    failed: bool,
}

impl StreamingTrace {
    /// Open `path` and start prefetching. Header errors (missing file,
    /// bad magic, unsupported version) surface synchronously here;
    /// everything later arrives through the stream.
    pub fn open(path: &Path) -> Result<Self, TraceError> {
        Self::open_with_chunk_records(path, stream_chunk_records())
    }

    /// [`Self::open`] with an explicit records-per-yielded-chunk target
    /// (rounded up to whole disk chunks).
    pub fn open_with_chunk_records(path: &Path, records: usize) -> Result<Self, TraceError> {
        let iter = ChunkIter::open(path)?;
        let header_count = iter.header_count();
        Ok(Self::spawn_coalescing(iter, records.max(1), header_count))
    }

    /// Wrap an arbitrary chunk source in the prefetch thread. Tests use
    /// synthetic sources to prove error and panic propagation.
    pub fn spawn<I>(chunks: I) -> Self
    where
        I: Iterator<Item = Result<TraceColumns, TraceError>> + Send + 'static,
    {
        Self::spawn_coalescing(chunks, 1, 0)
    }

    fn spawn_coalescing<I>(chunks: I, target_records: usize, header_count: usize) -> Self
    where
        I: Iterator<Item = Result<TraceColumns, TraceError>> + Send + 'static,
    {
        let (tx, rx) = mpsc::sync_channel(STREAM_SLOTS);
        // A panic anywhere in here drops `tx`; the consumer tells a panic
        // apart from a clean end by joining the thread on disconnect.
        let handle = std::thread::Builder::new()
            .name("trace-prefetch".to_string())
            .spawn(move || {
                let mut pending: Option<TraceColumns> = None;
                for item in chunks {
                    match item {
                        Ok(cols) => {
                            let merged = match pending.take() {
                                None => cols,
                                Some(mut acc) => {
                                    acc.append_columns(&cols);
                                    acc
                                }
                            };
                            if merged.len() >= target_records {
                                if tx.send(Ok(merged)).is_err() {
                                    return; // consumer gone
                                }
                            } else {
                                pending = Some(merged);
                            }
                        }
                        Err(e) => {
                            let _ = tx.send(Err(e));
                            return;
                        }
                    }
                }
                if let Some(acc) = pending {
                    let _ = tx.send(Ok(acc));
                }
            })
            .expect("spawn trace-prefetch thread");
        StreamingTrace {
            rx: Some(rx),
            handle: Some(handle),
            header_count,
            failed: false,
        }
    }

    /// Record count the file header claims (untrusted; sizing hint only).
    pub fn header_count(&self) -> usize {
        self.header_count
    }
}

impl Iterator for StreamingTrace {
    type Item = Result<TraceColumns, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        match self.rx.as_ref()?.recv() {
            Ok(Ok(cols)) => Some(Ok(cols)),
            Ok(Err(e)) => {
                self.failed = true;
                Some(Err(e))
            }
            // Disconnect: either a clean end of stream or the reader
            // thread died without sending an error (a panic). Join it to
            // find out which — a panic must never masquerade as a clean,
            // shorter trace.
            Err(_) => {
                self.rx = None;
                match self.handle.take().map(|h| h.join()) {
                    Some(Err(panic)) => {
                        self.failed = true;
                        let msg = panic
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| panic.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "opaque panic payload".to_string());
                        Some(Err(TraceError::Io(io::Error::other(format!(
                            "trace prefetch thread panicked: {msg}"
                        )))))
                    }
                    _ => None,
                }
            }
        }
    }
}

impl Drop for StreamingTrace {
    fn drop(&mut self) {
        // Disconnect first so a reader blocked in `send` exits, then reap
        // the thread (panics were already surfaced through `next`).
        self.rx = None;
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Fold a chunk stream into the whole-trace content hash (equal to
/// [`TraceColumns::content_hash`] of the concatenation) — the fingerprint
/// seed for checkpointed sweeps over on-disk traces.
pub fn stream_content_hash<I>(chunks: I) -> Result<u64, TraceError>
where
    I: IntoIterator<Item = Result<TraceColumns, TraceError>>,
{
    let mut h = Fnv1a64::new();
    for chunk in chunks {
        chunk?.fold_content_hash(&mut h);
    }
    Ok(h.finish())
}

/// Open `path` and hash its contents chunk-by-chunk without holding more
/// than one chunk in memory.
pub fn file_content_hash(path: &Path) -> Result<u64, TraceError> {
    stream_content_hash(ChunkIter::open(path)?)
}

/// One v2 chunk framed and checksummed, ready to append to the file.
fn encode_chunk(records: &[Request]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(records.len() * RECORD_BYTES);
    for r in records {
        encode_record(&mut payload, r);
    }
    let mut framed = Vec::with_capacity(payload.len() + 8);
    framed.extend_from_slice(&(records.len() as u32).to_le_bytes());
    framed.extend_from_slice(&payload);
    framed.extend_from_slice(&crc32(&payload).to_le_bytes());
    framed
}

/// Write format v2 directly from a request iterator that will yield
/// exactly `count` records; errors if it yields a different number (the
/// header and footer would otherwise lie). Single-threaded reference
/// writer — [`generate_binary`] is the pipelined version.
pub fn write_binary_stream(
    path: &Path,
    count: u64,
    iter: impl Iterator<Item = Request>,
) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION_V2.to_le_bytes())?;
    w.write_all(&count.to_le_bytes())?;
    let mut written = 0u64;
    let mut chunk: Vec<Request> = Vec::with_capacity(CHUNK_RECORDS);
    let flush_chunk = |w: &mut BufWriter<File>, chunk: &mut Vec<Request>| -> io::Result<()> {
        if !chunk.is_empty() {
            w.write_all(&encode_chunk(chunk))?;
            chunk.clear();
        }
        Ok(())
    };
    for r in iter {
        chunk.push(r);
        written += 1;
        if chunk.len() == CHUNK_RECORDS {
            flush_chunk(&mut w, &mut chunk)?;
        }
    }
    flush_chunk(&mut w, &mut chunk)?;
    if written != count {
        return Err(io::Error::other(format!(
            "streaming writer: iterator yielded {written} records, header promised {count}"
        )));
    }
    w.write_all(&count.to_le_bytes())?;
    w.write_all(END_MAGIC)?;
    w.flush()
}

/// Generate `cfg`'s trace straight to disk in format v2, byte-identical
/// to `write_binary(path, &TraceGenerator::generate(cfg))`, holding only
/// a bounded window of chunks in memory. Generation is sequential (the
/// RNG state *is* the determinism); chunk encode + CRC are pipelined on a
/// worker pool and the writer reassembles chunks in index order. Returns
/// the record count written.
pub fn generate_binary(path: &Path, cfg: GeneratorConfig) -> io::Result<u64> {
    let count = cfg.requests;
    let workers = std::thread::available_parallelism()
        .map(|n| n.get().saturating_sub(1))
        .unwrap_or(1)
        .clamp(1, 4);
    // gen -> encoders: bounded so the generator can run at most
    // ENCODE_SLOTS chunks ahead of the slowest encoder.
    const ENCODE_SLOTS: usize = 2;
    let (raw_tx, raw_rx) = mpsc::sync_channel::<(usize, Vec<Request>)>(ENCODE_SLOTS);
    // encoders -> writer: bounded so an out-of-order finish cannot pile
    // up more than `workers + ENCODE_SLOTS` encoded chunks.
    let (enc_tx, enc_rx) = mpsc::sync_channel::<(usize, Vec<u8>)>(workers + ENCODE_SLOTS);
    // `Option` so an encoder can *drop* the shared receiver when the
    // writer dies — disconnecting the generator's sender instead of
    // leaving it blocked on a channel nobody drains.
    let raw_rx = Mutex::new(Some(raw_rx));

    let mut file = BufWriter::new(File::create(path)?);
    file.write_all(MAGIC)?;
    file.write_all(&VERSION_V2.to_le_bytes())?;
    file.write_all(&count.to_le_bytes())?;

    let written = std::thread::scope(|s| -> io::Result<u64> {
        for _ in 0..workers {
            let raw_rx = &raw_rx;
            let enc_tx = enc_tx.clone();
            s.spawn(move || loop {
                let msg = {
                    let guard = raw_rx.lock().expect("encoder receiver poisoned");
                    let Some(rx) = guard.as_ref() else { return };
                    rx.recv()
                };
                match msg {
                    Ok((idx, records)) => {
                        if enc_tx.send((idx, encode_chunk(&records))).is_err() {
                            // Writer gone (I/O error): unhook the
                            // generator so it stops instead of blocking.
                            raw_rx.lock().expect("encoder receiver poisoned").take();
                            return;
                        }
                    }
                    Err(_) => return, // generator done
                }
            });
        }
        drop(enc_tx); // writer sees disconnect once all encoders finish

        let writer = s.spawn(move || -> io::Result<u64> {
            let mut pending: BTreeMap<usize, Vec<u8>> = BTreeMap::new();
            let mut next = 0usize;
            let mut written = 0u64;
            while let Ok((idx, bytes)) = enc_rx.recv() {
                pending.insert(idx, bytes);
                while let Some(bytes) = pending.remove(&next) {
                    written += (bytes.len().saturating_sub(8) / RECORD_BYTES) as u64;
                    file.write_all(&bytes)?;
                    next += 1;
                }
            }
            file.write_all(&count.to_le_bytes())?;
            file.write_all(END_MAGIC)?;
            file.flush()?;
            Ok(written)
        });

        // Drive the generator on this thread; its sequential state never
        // crosses a thread boundary.
        let mut idx = 0usize;
        let mut chunk: Vec<Request> = Vec::with_capacity(CHUNK_RECORDS.min(count.max(1) as usize));
        for r in TraceGenerator::new(cfg) {
            chunk.push(r);
            if chunk.len() == CHUNK_RECORDS {
                let full = std::mem::replace(&mut chunk, Vec::with_capacity(CHUNK_RECORDS));
                if raw_tx.send((idx, full)).is_err() {
                    break; // encoders bailed because the writer errored
                }
                idx += 1;
            }
        }
        if !chunk.is_empty() {
            let _ = raw_tx.send((idx, chunk));
        }
        drop(raw_tx); // encoders drain and exit, then the writer finishes
        writer.join().expect("trace writer thread panicked")
    })?;

    if written != count {
        return Err(io::Error::other(format!(
            "streaming generator wrote {written} records, config promised {count}"
        )));
    }
    Ok(written)
}

/// Stream-write a CSV trace from an iterator (header row included).
pub fn write_csv_stream(path: &Path, iter: impl Iterator<Item = Request>) -> io::Result<u64> {
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(w, "tick,id,size,wall_secs")?;
    let mut written = 0u64;
    for r in iter {
        writeln!(w, "{},{},{},{}", r.tick, r.id.0, r.size, r.wall_secs)?;
        written += 1;
    }
    w.flush()?;
    Ok(written)
}

/// Convenience: read a streamed trace back through a plain [`ChunkIter`]
/// (no prefetch thread) — test and tooling helper.
pub fn chunked(path: &Path) -> Result<ChunkIter<BufReader<File>>, TraceError> {
    ChunkIter::open(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::write_binary;
    use crate::profiles::Workload;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(name);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn small_cfg(requests: u64) -> GeneratorConfig {
        Workload::CdnT.profile().config(requests, 11)
    }

    #[test]
    fn generate_binary_bit_identical_to_in_ram_writer() {
        // Crosses several chunk boundaries plus a partial tail, with the
        // PR 9 drift-event schedule included, so the pipelined writer is
        // proven byte-identical on exactly the corpora it exists for.
        let n = CHUNK_RECORDS as u64 * 2 + 4_321;
        let cfg = crate::profiles::Workload::CdnT
            .profile()
            .config_with_events(
                n,
                11,
                vec![crate::gen::DriftEvent::FlashCrowd {
                    start: n / 4,
                    duration: n / 2,
                    share: 0.5,
                    objects: 64,
                }],
            );
        let dir = tmpdir("cdn_trace_stream_bitident");
        let streamed = dir.join("streamed.bin");
        let reference = dir.join("reference.bin");
        assert_eq!(generate_binary(&streamed, cfg.clone()).unwrap(), n);
        write_binary(&reference, &TraceGenerator::generate(cfg)).unwrap();
        assert_eq!(
            std::fs::read(&streamed).unwrap(),
            std::fs::read(&reference).unwrap(),
            "pipelined generator output differs from the in-RAM writer"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_binary_stream_matches_write_binary() {
        let cfg = small_cfg(10_000);
        let trace = TraceGenerator::generate(cfg.clone());
        let dir = tmpdir("cdn_trace_stream_writer");
        let a = dir.join("a.bin");
        let b = dir.join("b.bin");
        write_binary_stream(&a, cfg.requests, TraceGenerator::new(cfg)).unwrap();
        write_binary(&b, &trace).unwrap();
        assert_eq!(std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_binary_stream_rejects_count_lies() {
        let cfg = small_cfg(100);
        let dir = tmpdir("cdn_trace_stream_countlie");
        let path = dir.join("lie.bin");
        let err = write_binary_stream(&path, 101, TraceGenerator::new(cfg)).unwrap_err();
        assert!(err.to_string().contains("yielded 100"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn streaming_trace_reproduces_file_in_order() {
        let cfg = small_cfg(CHUNK_RECORDS as u64 + 777);
        let trace = TraceGenerator::generate(cfg);
        let dir = tmpdir("cdn_trace_stream_roundtrip");
        let path = dir.join("t.bin");
        write_binary(&path, &trace).unwrap();
        let mut streamed = TraceColumns::new();
        let mut chunks = 0usize;
        for chunk in StreamingTrace::open(&path).unwrap() {
            streamed.append_columns(&chunk.unwrap());
            chunks += 1;
        }
        assert!(chunks >= 2, "expected multiple chunks, got {chunks}");
        assert_eq!(streamed.to_requests(), trace);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn coalescing_respects_target_and_order() {
        let cfg = small_cfg(CHUNK_RECORDS as u64 * 3 + 5);
        let trace = TraceGenerator::generate(cfg);
        let dir = tmpdir("cdn_trace_stream_coalesce");
        let path = dir.join("t.bin");
        write_binary(&path, &trace).unwrap();
        let mut streamed = TraceColumns::new();
        let mut chunks = 0usize;
        for chunk in StreamingTrace::open_with_chunk_records(&path, CHUNK_RECORDS * 2).unwrap() {
            streamed.append_columns(&chunk.unwrap());
            chunks += 1;
        }
        // 3 full disk chunks + tail coalesced pairwise: 2 yields.
        assert_eq!(chunks, 2, "coalescing changed the chunk count");
        assert_eq!(streamed.to_requests(), trace);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stream_hash_matches_in_ram_hash() {
        let cfg = small_cfg(CHUNK_RECORDS as u64 + 99);
        let trace = TraceGenerator::generate(cfg);
        let dir = tmpdir("cdn_trace_stream_hash");
        let path = dir.join("t.bin");
        write_binary(&path, &trace).unwrap();
        assert_eq!(
            file_content_hash(&path).unwrap(),
            TraceColumns::from_requests(&trace).content_hash()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn io_error_propagates_through_prefetch_thread() {
        let chunks = vec![
            Ok(TraceColumns::from_requests(
                &cdn_cache::object::micro_trace(&[(1, 10), (2, 20)]),
            )),
            Err(TraceError::Io(io::Error::other("disk on fire"))),
            // Never reached: the stream must fuse at the first error.
            Ok(TraceColumns::from_requests(
                &cdn_cache::object::micro_trace(&[(3, 30)]),
            )),
        ];
        let mut stream = StreamingTrace::spawn(chunks.into_iter());
        assert!(stream.next().unwrap().is_ok());
        let err = stream.next().unwrap().unwrap_err();
        assert!(err.to_string().contains("disk on fire"), "{err}");
        assert!(stream.next().is_none(), "stream must fuse after an error");
    }

    #[test]
    fn reader_panic_surfaces_as_error_not_short_stream() {
        struct PanicAfter(usize);
        impl Iterator for PanicAfter {
            type Item = Result<TraceColumns, TraceError>;
            fn next(&mut self) -> Option<Self::Item> {
                if self.0 == 0 {
                    panic!("prefetch exploded mid-trace");
                }
                self.0 -= 1;
                Some(Ok(TraceColumns::from_requests(
                    &cdn_cache::object::micro_trace(&[(7, 70)]),
                )))
            }
        }
        let mut stream = StreamingTrace::spawn(PanicAfter(1));
        assert!(stream.next().unwrap().is_ok());
        let err = stream.next().unwrap().unwrap_err();
        assert!(
            err.to_string().contains("prefetch thread panicked"),
            "panic must not look like end-of-trace: {err}"
        );
        assert!(stream.next().is_none());
    }

    #[test]
    fn dropping_mid_stream_does_not_hang() {
        let cfg = small_cfg(CHUNK_RECORDS as u64 * 4);
        let dir = tmpdir("cdn_trace_stream_drop");
        let path = dir.join("t.bin");
        generate_binary(&path, cfg).unwrap();
        let mut stream = StreamingTrace::open(&path).unwrap();
        assert!(stream.next().unwrap().is_ok());
        drop(stream); // reader may be blocked in send; Drop must unwedge it
        std::fs::remove_dir_all(&dir).ok();
    }
}
