//! Trace serialisation: a corruption-detecting binary format plus CSV.
//!
//! Two binary versions share the magic/version/count header (little-endian
//! magic `CDNT`, `u32` version, `u64` request count; per record `u64 id`,
//! `u64 size`, `f64 wall_secs`; ticks are implicit record positions):
//!
//! - **v1** — header then a flat record array. Still fully readable (and
//!   writable via [`write_binary_v1`]) but offers no integrity protection
//!   beyond the magic: truncation mid-record is detected, a flipped byte
//!   is not.
//! - **v2** (default, [`write_binary`]) — records are grouped into chunks
//!   of up to [`CHUNK_RECORDS`]; each chunk is `u32 record-count`,
//!   payload, `u32` IEEE CRC-32 of the payload. A footer (`u64` count
//!   repeated + magic `CDNE`) closes the file, so *any* single corrupted
//!   byte — header, payload, checksum or footer — and any truncation is
//!   reported as a structured [`TraceError`] instead of a silent short
//!   trace.
//!
//! The CSV flavour (`tick,id,size,wall_secs` with a header) matches what
//! the LRB simulator's tooling consumes after a one-column rename.
//!
//! Under the `fault-injection` feature the read path evaluates the
//! `trace.read_chunk` failpoint per chunk, letting tests deliver short
//! reads and corrupted chunks deterministically (see `cdn_cache::fault`).

use std::fmt;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use cdn_cache::Request;

use crate::checksum::crc32;
use crate::columns::TraceColumns;

pub(crate) const MAGIC: &[u8; 4] = b"CDNT";
pub(crate) const END_MAGIC: &[u8; 4] = b"CDNE";
pub(crate) const VERSION_V1: u32 = 1;
pub(crate) const VERSION_V2: u32 = 2;

/// Bytes per on-disk record: `u64 id`, `u64 size`, `f64 wall_secs`.
pub const RECORD_BYTES: usize = 24;

/// Records per v2 chunk and per bulk read (1.5 MiB of I/O per syscall
/// batch); also the granularity of v2 corruption detection and the unit
/// a [`ChunkIter`] yields.
pub const CHUNK_RECORDS: usize = 64 * 1024;

/// Cap on up-front allocation derived from the (untrusted) header count,
/// so a corrupt count cannot OOM the reader; the vectors still grow to
/// the real size if the file actually holds that many records.
const PREALLOC_CAP_BYTES: usize = 64 << 20;

/// Failpoint evaluated once per chunk read (key = chunk index).
#[cfg(feature = "fault-injection")]
pub const FP_READ_CHUNK: &str = "trace.read_chunk";

/// Everything that can go wrong reading a trace, with enough structure
/// for callers to distinguish "file missing" from "file lying".
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure (open, read, write).
    Io(io::Error),
    /// The file does not start with the `CDNT` magic.
    BadMagic,
    /// The header names a format version this reader does not speak.
    UnsupportedVersion(u32),
    /// The file ends in the middle of record `tick` (or its chunk
    /// framing): the byte stream is shorter than the header promised.
    TruncatedMidRecord {
        /// Record index (= tick) at which the data ran out.
        tick: u64,
    },
    /// A v2 chunk's payload does not match its stored CRC-32.
    ChecksumMismatch {
        /// Zero-based chunk index.
        chunk: usize,
        /// CRC stored in the file.
        stored: u32,
        /// CRC computed over the payload actually read.
        computed: u32,
    },
    /// A v2 chunk header disagrees with the record count the file header
    /// implies for that chunk (a corrupted length field).
    ChunkLengthMismatch {
        /// Zero-based chunk index.
        chunk: usize,
        /// Records this chunk must hold given the header count.
        expected: u32,
        /// Records the chunk claims to hold.
        actual: u32,
    },
    /// The v2 footer is missing, malformed, or repeats a different count
    /// than the header (header/footer disagreement ⇒ one of them lies).
    CountMismatch {
        /// Count from the file header.
        header: u64,
        /// Count from the footer.
        footer: u64,
    },
    /// A record claims zero size — no valid CDN request is empty
    /// (reported by [`TraceColumns::validate`]).
    ZeroSizeRecord {
        /// Offending record index.
        tick: u64,
    },
    /// Ticks or wall-clock timestamps go backwards (reported by
    /// [`TraceColumns::validate`]).
    NonMonotonicTime {
        /// First offending record index.
        tick: u64,
    },
    /// A CSV line failed to parse.
    Csv {
        /// 1-based line number.
        line: usize,
        /// What was wrong with it.
        msg: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::BadMagic => write!(f, "not a CDNT trace (bad magic)"),
            TraceError::UnsupportedVersion(v) => {
                write!(f, "unsupported trace format version {v}")
            }
            TraceError::TruncatedMidRecord { tick } => {
                write!(f, "trace truncated mid-record at tick {tick}")
            }
            TraceError::ChecksumMismatch {
                chunk,
                stored,
                computed,
            } => write!(
                f,
                "chunk {chunk} checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
            ),
            TraceError::ChunkLengthMismatch {
                chunk,
                expected,
                actual,
            } => write!(
                f,
                "chunk {chunk} length field corrupt (expected {expected} records, claims {actual})"
            ),
            TraceError::CountMismatch { header, footer } => write!(
                f,
                "header/footer record counts disagree ({header} vs {footer})"
            ),
            TraceError::ZeroSizeRecord { tick } => {
                write!(f, "zero-size record at tick {tick}")
            }
            TraceError::NonMonotonicTime { tick } => {
                write!(f, "non-monotonic tick/wall-clock at tick {tick}")
            }
            TraceError::Csv { line, msg } => write!(f, "csv line {line}: {msg}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// Read exactly `buf.len()` bytes; an early EOF becomes
/// [`TraceError::TruncatedMidRecord`] at record index `tick`.
fn read_exact_or_truncated(r: &mut impl Read, buf: &mut [u8], tick: u64) -> Result<(), TraceError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            TraceError::TruncatedMidRecord { tick }
        } else {
            TraceError::Io(e)
        }
    })
}

pub(crate) fn encode_record(out: &mut Vec<u8>, r: &Request) {
    out.extend_from_slice(&r.id.0.to_le_bytes());
    out.extend_from_slice(&r.size.to_le_bytes());
    out.extend_from_slice(&r.wall_secs.to_le_bytes());
}

/// Write a trace in binary format **v2** (chunked, CRC-32 per chunk,
/// length footer). This is the default writer; readers accept v1 and v2.
pub fn write_binary(path: &Path, trace: &[Request]) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION_V2.to_le_bytes())?;
    w.write_all(&(trace.len() as u64).to_le_bytes())?;
    let mut payload = Vec::with_capacity(CHUNK_RECORDS.min(trace.len().max(1)) * RECORD_BYTES);
    for chunk in trace.chunks(CHUNK_RECORDS) {
        payload.clear();
        for r in chunk {
            encode_record(&mut payload, r);
        }
        w.write_all(&(chunk.len() as u32).to_le_bytes())?;
        w.write_all(&payload)?;
        w.write_all(&crc32(&payload).to_le_bytes())?;
    }
    w.write_all(&(trace.len() as u64).to_le_bytes())?;
    w.write_all(END_MAGIC)?;
    w.flush()
}

/// Write a trace in legacy binary format **v1** (flat record array, no
/// checksums). Kept so v1 fixtures can be produced and round-tripped
/// bit-identically; new traces should use [`write_binary`].
pub fn write_binary_v1(path: &Path, trace: &[Request]) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION_V1.to_le_bytes())?;
    w.write_all(&(trace.len() as u64).to_le_bytes())?;
    let mut payload = Vec::with_capacity(RECORD_BYTES);
    for r in trace {
        payload.clear();
        encode_record(&mut payload, r);
        w.write_all(&payload)?;
    }
    w.flush()
}

/// Validate the magic, read the version and the (untrusted) record count.
fn read_header(r: &mut impl Read) -> Result<(u32, usize), TraceError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(TraceError::BadMagic);
    }
    let mut buf4 = [0u8; 4];
    r.read_exact(&mut buf4)?;
    let version = u32::from_le_bytes(buf4);
    if version != VERSION_V1 && version != VERSION_V2 {
        return Err(TraceError::UnsupportedVersion(version));
    }
    let mut buf8 = [0u8; 8];
    r.read_exact(&mut buf8)?;
    Ok((version, u64::from_le_bytes(buf8) as usize))
}

/// Decode one chunk payload, feeding each record to `push` as
/// `(tick, id, size, wall_secs)`.
fn decode_payload(bytes: &[u8], first_tick: usize, mut push: impl FnMut(u64, u64, u64, f64)) {
    for (i, rec) in bytes.chunks_exact(RECORD_BYTES).enumerate() {
        let id = u64::from_le_bytes(rec[0..8].try_into().unwrap());
        let size = u64::from_le_bytes(rec[8..16].try_into().unwrap());
        let wall_secs = f64::from_le_bytes(rec[16..24].try_into().unwrap());
        push((first_tick + i) as u64, id, size, wall_secs);
    }
}

/// Apply any armed `trace.read_chunk` fault to a freshly read chunk
/// payload. Returns the (possibly shortened) payload length.
#[cfg(feature = "fault-injection")]
fn inject_chunk_fault(payload: &mut [u8], chunk: usize) -> Result<usize, TraceError> {
    use cdn_cache::fault::{self, FaultAction};
    match fault::check(FP_READ_CHUNK, chunk as u64) {
        Some(FaultAction::ShortRead(n)) => Ok(n.min(payload.len())),
        Some(FaultAction::CorruptByte(off)) => {
            if let Some(b) = payload.get_mut(off % payload.len().max(1)) {
                *b ^= 0x01;
            }
            Ok(payload.len())
        }
        Some(FaultAction::Error(msg)) => Err(TraceError::Io(io::Error::other(msg))),
        Some(FaultAction::Panic(msg)) => panic!("{msg}"),
        None => Ok(payload.len()),
    }
}

#[cfg(not(feature = "fault-injection"))]
#[inline]
fn inject_chunk_fault(payload: &mut [u8], _chunk: usize) -> Result<usize, TraceError> {
    Ok(payload.len())
}

/// Streaming decoder over a binary trace (v1 or v2): yields one decoded
/// chunk at a time, so working memory is bounded by a single chunk buffer
/// regardless of trace length — **the only v1/v2 decode path in the
/// crate** ([`read_binary`] and [`read_binary_columns`] are collectors
/// over it).
///
/// Memory safety against hostile headers: the per-chunk scratch buffer is
/// sized by `min(header count, CHUNK_RECORDS)`, so a header claiming
/// `u64::MAX` records allocates at most one chunk (1.5 MiB) and then
/// fails with [`TraceError::TruncatedMidRecord`] when the bytes run out.
///
/// Error handling: the first error fuses the iterator (subsequent calls
/// yield nothing), so a corrupt chunk can never be followed by silently
/// decoded tail data. The v2 footer is verified when the last chunk has
/// been consumed, before the stream reports a clean end.
pub struct ChunkIter<R> {
    r: R,
    version: u32,
    /// Untrusted record count from the header — a *size hint*, never an
    /// allocation bound beyond one chunk.
    count: usize,
    tick: usize,
    chunk: usize,
    buf: Vec<u8>,
    done: bool,
}

impl ChunkIter<BufReader<File>> {
    /// Open a trace file and validate its header.
    pub fn open(path: &Path) -> Result<Self, TraceError> {
        Self::new(BufReader::new(File::open(path)?))
    }
}

impl<R: Read> ChunkIter<R> {
    /// Wrap any byte stream positioned at the trace header.
    pub fn new(mut r: R) -> Result<Self, TraceError> {
        let (version, count) = read_header(&mut r)?;
        Ok(ChunkIter {
            r,
            version,
            count,
            tick: 0,
            chunk: 0,
            // One chunk of scratch, no matter what the header claims.
            buf: vec![0u8; CHUNK_RECORDS.min(count.max(1)) * RECORD_BYTES],
            done: false,
        })
    }

    /// Record count the header claims. Untrusted: use it to size
    /// estimates, never allocations.
    pub fn header_count(&self) -> usize {
        self.count
    }

    /// Format version (1 or 2) of the underlying file.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Records decoded so far.
    pub fn records_decoded(&self) -> usize {
        self.tick
    }

    /// Decode the next chunk, feeding each record to `push` as
    /// `(tick, id, size, wall_secs)`. Returns the number of records
    /// decoded; `Ok(0)` means clean end-of-trace (for v2, the footer has
    /// been verified). Any error fuses the stream.
    pub fn next_chunk_with(
        &mut self,
        mut push: impl FnMut(u64, u64, u64, f64),
    ) -> Result<usize, TraceError> {
        if self.done {
            return Ok(0);
        }
        match self.step_payload() {
            Ok(0) => Ok(0),
            Ok(n) => {
                decode_payload(&self.buf[..n * RECORD_BYTES], self.tick, &mut push);
                self.advance(n);
                Ok(n)
            }
            Err(e) => {
                self.done = true;
                Err(e)
            }
        }
    }

    /// Decode the next chunk straight into `cols` (appending) with one
    /// bulk pass per column instead of a per-record closure — the decode
    /// path the prefetch thread runs, where per-record call overhead is
    /// stolen directly from the replay loop on small hosts. Same
    /// semantics as [`Self::next_chunk_with`] otherwise.
    pub fn next_chunk_columns(&mut self, cols: &mut TraceColumns) -> Result<usize, TraceError> {
        if self.done {
            return Ok(0);
        }
        match self.step_payload() {
            Ok(0) => Ok(0),
            Ok(n) => {
                let bytes = &self.buf[..n * RECORD_BYTES];
                cols.ids.extend(bytes.chunks_exact(RECORD_BYTES).map(|r| {
                    cdn_cache::ObjectId::from(u64::from_le_bytes(r[0..8].try_into().unwrap()))
                }));
                cols.sizes.extend(
                    bytes
                        .chunks_exact(RECORD_BYTES)
                        .map(|r| u64::from_le_bytes(r[8..16].try_into().unwrap())),
                );
                cols.wall_secs.extend(
                    bytes
                        .chunks_exact(RECORD_BYTES)
                        .map(|r| f64::from_le_bytes(r[16..24].try_into().unwrap())),
                );
                cols.ticks.extend(self.tick as u64..(self.tick + n) as u64);
                self.advance(n);
                Ok(n)
            }
            Err(e) => {
                self.done = true;
                Err(e)
            }
        }
    }

    fn advance(&mut self, records: usize) {
        self.tick += records;
        self.chunk += 1;
    }

    /// Read and integrity-check the next chunk into `self.buf`, without
    /// decoding or advancing. Returns the record count (0 = clean end,
    /// footer verified for v2); the payload is `self.buf[..n * RECORD_BYTES]`.
    fn step_payload(&mut self) -> Result<usize, TraceError> {
        if self.tick >= self.count {
            self.done = true;
            if self.version == VERSION_V2 {
                self.verify_footer()?;
            }
            return Ok(0);
        }
        let expected = (self.count - self.tick).min(CHUNK_RECORDS);
        if self.version == VERSION_V2 {
            let mut buf4 = [0u8; 4];
            read_exact_or_truncated(&mut self.r, &mut buf4, self.tick as u64)?;
            let actual = u32::from_le_bytes(buf4);
            if actual != expected as u32 {
                return Err(TraceError::ChunkLengthMismatch {
                    chunk: self.chunk,
                    expected: expected as u32,
                    actual,
                });
            }
        }
        let bytes = &mut self.buf[..expected * RECORD_BYTES];
        read_exact_or_truncated(&mut self.r, bytes, self.tick as u64)?;
        let stored = if self.version == VERSION_V2 {
            let mut buf4 = [0u8; 4];
            read_exact_or_truncated(&mut self.r, &mut buf4, (self.tick + expected) as u64)?;
            Some(u32::from_le_bytes(buf4))
        } else {
            None
        };
        let usable = inject_chunk_fault(bytes, self.chunk)?;
        if usable < bytes.len() {
            return Err(TraceError::TruncatedMidRecord {
                tick: (self.tick + usable / RECORD_BYTES) as u64,
            });
        }
        if let Some(stored) = stored {
            let computed = crc32(bytes);
            if computed != stored {
                return Err(TraceError::ChecksumMismatch {
                    chunk: self.chunk,
                    stored,
                    computed,
                });
            }
        }
        Ok(expected)
    }

    /// v2 footer: repeated count + end magic.
    fn verify_footer(&mut self) -> Result<(), TraceError> {
        let mut buf8 = [0u8; 8];
        read_exact_or_truncated(&mut self.r, &mut buf8, self.count as u64)?;
        let footer = u64::from_le_bytes(buf8);
        if footer != self.count as u64 {
            return Err(TraceError::CountMismatch {
                header: self.count as u64,
                footer,
            });
        }
        let mut magic = [0u8; 4];
        read_exact_or_truncated(&mut self.r, &mut magic, self.count as u64)?;
        if &magic != END_MAGIC {
            return Err(TraceError::CountMismatch {
                header: self.count as u64,
                footer,
            });
        }
        Ok(())
    }
}

impl<R: Read> Iterator for ChunkIter<R> {
    type Item = Result<TraceColumns, TraceError>;

    /// Yield the next chunk as columns with global ticks. `None` after a
    /// clean end or a prior error.
    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let mut cols =
            TraceColumns::with_capacity(self.count.saturating_sub(self.tick).min(CHUNK_RECORDS));
        match self.next_chunk_columns(&mut cols) {
            Ok(0) => None,
            Ok(_) => Some(Ok(cols)),
            Err(e) => Some(Err(e)),
        }
    }
}

/// Pre-allocation for `count` records of `record_size` in-memory bytes,
/// capped at [`PREALLOC_CAP_BYTES`].
fn capped_prealloc(count: usize, record_size: usize) -> usize {
    count.min(PREALLOC_CAP_BYTES / record_size.max(1))
}

/// Read a binary trace (v1 or v2) written by [`write_binary`] /
/// [`write_binary_v1`]. A collector over [`ChunkIter`].
pub fn read_binary(path: &Path) -> Result<Vec<Request>, TraceError> {
    let mut it = ChunkIter::open(path)?;
    let mut trace = Vec::with_capacity(capped_prealloc(
        it.header_count(),
        std::mem::size_of::<Request>(),
    ));
    loop {
        let n = it.next_chunk_with(|tick, id, size, wall_secs| {
            trace.push(Request {
                tick,
                id: id.into(),
                size,
                wall_secs,
            });
        })?;
        if n == 0 {
            return Ok(trace);
        }
    }
}

/// Read a binary trace (v1 or v2) straight into structure-of-arrays form
/// (no intermediate `Vec<Request>`). A collector over [`ChunkIter`].
pub fn read_binary_columns(path: &Path) -> Result<TraceColumns, TraceError> {
    let mut it = ChunkIter::open(path)?;
    // 32 = the per-request total across the four columns.
    let mut cols = TraceColumns::with_capacity(capped_prealloc(it.header_count(), 32));
    loop {
        let n = it.next_chunk_with(|tick, id, size, wall_secs| {
            cols.ids.push(id.into());
            cols.sizes.push(size);
            cols.ticks.push(tick);
            cols.wall_secs.push(wall_secs);
        })?;
        if n == 0 {
            return Ok(cols);
        }
    }
}

/// Write a trace as CSV with a header row.
pub fn write_csv(path: &Path, trace: &[Request]) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(w, "tick,id,size,wall_secs")?;
    for r in trace {
        writeln!(w, "{},{},{},{}", r.tick, r.id.0, r.size, r.wall_secs)?;
    }
    w.flush()
}

/// Read a CSV trace written by [`write_csv`] (header required).
pub fn read_csv(path: &Path) -> Result<Vec<Request>, TraceError> {
    let r = BufReader::new(File::open(path)?);
    let mut trace = Vec::new();
    let bad = |line: usize, what: &str| TraceError::Csv {
        line,
        msg: what.to_string(),
    };
    for (i, line) in r.lines().enumerate() {
        let line = line?;
        if i == 0 {
            if !line.starts_with("tick,") {
                return Err(bad(1, "missing header"));
            }
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.split(',');
        let tick: u64 = parts
            .next()
            .and_then(|s| s.trim().parse().ok())
            .ok_or_else(|| bad(i + 1, "bad tick"))?;
        let id: u64 = parts
            .next()
            .and_then(|s| s.trim().parse().ok())
            .ok_or_else(|| bad(i + 1, "bad id"))?;
        let size: u64 = parts
            .next()
            .and_then(|s| s.trim().parse().ok())
            .ok_or_else(|| bad(i + 1, "bad size"))?;
        let wall_secs: f64 = parts
            .next()
            .and_then(|s| s.trim().parse().ok())
            .ok_or_else(|| bad(i + 1, "bad wall_secs"))?;
        trace.push(Request {
            tick,
            id: id.into(),
            size,
            wall_secs,
        });
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{GeneratorConfig, TraceGenerator};

    fn sample_trace() -> Vec<Request> {
        TraceGenerator::generate(GeneratorConfig {
            requests: 2_000,
            core_objects: 1_000,
            ..GeneratorConfig::default()
        })
    }

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(name);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Both binary writers, labeled, for version-parametrised tests.
    type WriterFn = fn(&Path, &[Request]) -> io::Result<()>;
    const WRITERS: [(&str, WriterFn); 2] = [("v2.bin", write_binary), ("v1.bin", write_binary_v1)];

    #[test]
    fn binary_roundtrip_v2() {
        let dir = tmpdir("cdn_trace_io_test_bin");
        let path = dir.join("t.bin");
        let t = sample_trace();
        write_binary(&path, &t).unwrap();
        let back = read_binary(&path).unwrap();
        assert_eq!(t, back);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn binary_roundtrip_v1_bit_identical() {
        let dir = tmpdir("cdn_trace_io_test_v1");
        let a = dir.join("a.bin");
        let b = dir.join("b.bin");
        let t = sample_trace();
        write_binary_v1(&a, &t).unwrap();
        let back = read_binary(&a).unwrap();
        assert_eq!(t, back);
        // Re-serialising the decoded trace reproduces the file exactly.
        write_binary_v1(&b, &back).unwrap();
        assert_eq!(std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn csv_roundtrip() {
        let dir = tmpdir("cdn_trace_io_test_csv");
        let path = dir.join("t.csv");
        let t = sample_trace();
        write_csv(&path, &t).unwrap();
        let back = read_csv(&path).unwrap();
        assert_eq!(t.len(), back.len());
        for (a, b) in t.iter().zip(&back) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.size, b.size);
            assert_eq!(a.tick, b.tick);
            assert!((a.wall_secs - b.wall_secs).abs() < 1e-9);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn binary_roundtrip_large_crosses_chunks() {
        // > CHUNK_RECORDS so both decoders take several full chunks plus a
        // partial tail.
        let n = super::CHUNK_RECORDS as u64 * 2 + 1_234;
        let t = TraceGenerator::generate(GeneratorConfig {
            requests: n,
            core_objects: 5_000,
            ..GeneratorConfig::default()
        });
        let dir = tmpdir("cdn_trace_io_test_large");
        for (name, write) in WRITERS {
            let path = dir.join(name);
            write(&path, &t).unwrap();
            let back = read_binary(&path).unwrap();
            assert_eq!(t, back, "{name}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn binary_columns_roundtrip() {
        let t = sample_trace();
        let dir = tmpdir("cdn_trace_io_test_cols");
        let path = dir.join("t.bin");
        write_binary(&path, &t).unwrap();
        let cols = read_binary_columns(&path).unwrap();
        assert_eq!(cols.to_requests(), t);
        cols.validate().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_mid_record_is_an_error_both_versions_both_readers() {
        // Regression: a trace cut mid-record (not just a garbage header)
        // must fail loudly from both `read_binary` and
        // `read_binary_columns`, never yield a silent short trace.
        let t = sample_trace();
        let dir = tmpdir("cdn_trace_io_test_trunc");
        for (name, write) in WRITERS {
            let path = dir.join(name);
            write(&path, &t).unwrap();
            let full = std::fs::read(&path).unwrap();
            // Cut inside record 100's bytes (offsets differ per version,
            // both land mid-record well past the header).
            let cut = full.len() - (t.len() / 2) * RECORD_BYTES - RECORD_BYTES / 2;
            std::fs::write(&path, &full[..cut]).unwrap();
            let err = read_binary(&path).unwrap_err();
            assert!(
                matches!(err, TraceError::TruncatedMidRecord { .. }),
                "{name}: {err}"
            );
            let err = read_binary_columns(&path).unwrap_err();
            assert!(
                matches!(err, TraceError::TruncatedMidRecord { .. }),
                "{name}: {err}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn v2_detects_any_single_byte_corruption() {
        // Flip one bit of *every* byte of a small v2 file in turn: each
        // variant must surface as some TraceError, never as a clean read
        // of wrong data. Small trace: the sweep re-reads the file once
        // per byte.
        let t = TraceGenerator::generate(GeneratorConfig {
            requests: 300,
            core_objects: 100,
            ..GeneratorConfig::default()
        });
        let dir = tmpdir("cdn_trace_io_test_flip");
        let path = dir.join("t.bin");
        write_binary(&path, &t).unwrap();
        let pristine = std::fs::read(&path).unwrap();
        for i in 0..pristine.len() {
            let mut bytes = pristine.clone();
            bytes[i] ^= 0x10;
            std::fs::write(&path, &bytes).unwrap();
            match read_binary(&path) {
                Err(_) => {}
                Ok(back) => panic!(
                    "flip at byte {i}/{} read cleanly ({} records)",
                    pristine.len(),
                    back.len()
                ),
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_count_fails_without_huge_alloc() {
        // Header claims u64::MAX records but carries only one: the reader
        // must cap its pre-allocation and fail with a structured error
        // instead of trying to reserve ~400 EiB.
        let dir = tmpdir("cdn_trace_io_test_corrupt");
        let path = dir.join("corrupt.bin");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"CDNT");
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0u8; super::RECORD_BYTES]);
        std::fs::write(&path, &bytes).unwrap();
        let err = read_binary(&path).unwrap_err();
        assert!(
            matches!(err, TraceError::TruncatedMidRecord { .. }),
            "{err}"
        );
        let err = read_binary_columns(&path).unwrap_err();
        assert!(
            matches!(err, TraceError::TruncatedMidRecord { .. }),
            "{err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_garbage() {
        let dir = tmpdir("cdn_trace_io_test_bad");
        let path = dir.join("bad.bin");
        std::fs::write(&path, b"not a trace").unwrap();
        assert!(matches!(
            read_binary(&path).unwrap_err(),
            TraceError::BadMagic
        ));
        let future = dir.join("future.bin");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"CDNT");
        bytes.extend_from_slice(&99u32.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        std::fs::write(&future, &bytes).unwrap();
        assert!(matches!(
            read_binary(&future).unwrap_err(),
            TraceError::UnsupportedVersion(99)
        ));
        let csv = dir.join("bad.csv");
        std::fs::write(&csv, "nope\n1,2\n").unwrap();
        assert!(matches!(
            read_csv(&csv).unwrap_err(),
            TraceError::Csv { .. }
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
