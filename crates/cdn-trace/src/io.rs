//! Trace serialisation: a compact binary format plus CSV for interop.
//!
//! Binary layout (little-endian): magic `CDNT`, `u32` version, `u64`
//! request count, then per request `u64 id`, `u64 size`, `f64 wall_secs`.
//! Ticks are implicit (records are stored in tick order).
//!
//! The CSV flavour (`tick,id,size,wall_secs` with a header) matches what
//! the LRB simulator's tooling consumes after a one-column rename.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use cdn_cache::Request;

const MAGIC: &[u8; 4] = b"CDNT";
const VERSION: u32 = 1;

/// Write a trace in the binary format.
pub fn write_binary(path: &Path, trace: &[Request]) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(trace.len() as u64).to_le_bytes())?;
    for r in trace {
        w.write_all(&r.id.0.to_le_bytes())?;
        w.write_all(&r.size.to_le_bytes())?;
        w.write_all(&r.wall_secs.to_le_bytes())?;
    }
    w.flush()
}

/// Read a binary trace written by [`write_binary`].
pub fn read_binary(path: &Path) -> io::Result<Vec<Request>> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let mut buf4 = [0u8; 4];
    r.read_exact(&mut buf4)?;
    let version = u32::from_le_bytes(buf4);
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported version {version}"),
        ));
    }
    let mut buf8 = [0u8; 8];
    r.read_exact(&mut buf8)?;
    let count = u64::from_le_bytes(buf8) as usize;
    let mut trace = Vec::with_capacity(count);
    for tick in 0..count {
        r.read_exact(&mut buf8)?;
        let id = u64::from_le_bytes(buf8);
        r.read_exact(&mut buf8)?;
        let size = u64::from_le_bytes(buf8);
        r.read_exact(&mut buf8)?;
        let wall_secs = f64::from_le_bytes(buf8);
        trace.push(Request {
            tick: tick as u64,
            id: id.into(),
            size,
            wall_secs,
        });
    }
    Ok(trace)
}

/// Write a trace as CSV with a header row.
pub fn write_csv(path: &Path, trace: &[Request]) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(w, "tick,id,size,wall_secs")?;
    for r in trace {
        writeln!(w, "{},{},{},{}", r.tick, r.id.0, r.size, r.wall_secs)?;
    }
    w.flush()
}

/// Read a CSV trace written by [`write_csv`] (header required).
pub fn read_csv(path: &Path) -> io::Result<Vec<Request>> {
    let r = BufReader::new(File::open(path)?);
    let mut trace = Vec::new();
    let bad = |line: usize, what: &str| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("line {line}: {what}"),
        )
    };
    for (i, line) in r.lines().enumerate() {
        let line = line?;
        if i == 0 {
            if !line.starts_with("tick,") {
                return Err(bad(1, "missing header"));
            }
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.split(',');
        let tick: u64 = parts
            .next()
            .and_then(|s| s.trim().parse().ok())
            .ok_or_else(|| bad(i + 1, "bad tick"))?;
        let id: u64 = parts
            .next()
            .and_then(|s| s.trim().parse().ok())
            .ok_or_else(|| bad(i + 1, "bad id"))?;
        let size: u64 = parts
            .next()
            .and_then(|s| s.trim().parse().ok())
            .ok_or_else(|| bad(i + 1, "bad size"))?;
        let wall_secs: f64 = parts
            .next()
            .and_then(|s| s.trim().parse().ok())
            .ok_or_else(|| bad(i + 1, "bad wall_secs"))?;
        trace.push(Request {
            tick,
            id: id.into(),
            size,
            wall_secs,
        });
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{GeneratorConfig, TraceGenerator};

    fn sample_trace() -> Vec<Request> {
        TraceGenerator::generate(GeneratorConfig {
            requests: 2_000,
            core_objects: 1_000,
            ..GeneratorConfig::default()
        })
    }

    #[test]
    fn binary_roundtrip() {
        let dir = std::env::temp_dir().join("cdn_trace_io_test_bin");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.bin");
        let t = sample_trace();
        write_binary(&path, &t).unwrap();
        let back = read_binary(&path).unwrap();
        assert_eq!(t, back);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("cdn_trace_io_test_csv");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        let t = sample_trace();
        write_csv(&path, &t).unwrap();
        let back = read_csv(&path).unwrap();
        assert_eq!(t.len(), back.len());
        for (a, b) in t.iter().zip(&back) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.size, b.size);
            assert_eq!(a.tick, b.tick);
            assert!((a.wall_secs - b.wall_secs).abs() < 1e-9);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_garbage() {
        let dir = std::env::temp_dir().join("cdn_trace_io_test_bad");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.bin");
        std::fs::write(&path, b"not a trace").unwrap();
        assert!(read_binary(&path).is_err());
        let csv = dir.join("bad.csv");
        std::fs::write(&csv, "nope\n1,2\n").unwrap();
        assert!(read_csv(&csv).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
