//! Trace serialisation: a compact binary format plus CSV for interop.
//!
//! Binary layout (little-endian): magic `CDNT`, `u32` version, `u64`
//! request count, then per request `u64 id`, `u64 size`, `f64 wall_secs`.
//! Ticks are implicit (records are stored in tick order).
//!
//! The CSV flavour (`tick,id,size,wall_secs` with a header) matches what
//! the LRB simulator's tooling consumes after a one-column rename.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use cdn_cache::Request;

use crate::columns::TraceColumns;

const MAGIC: &[u8; 4] = b"CDNT";
const VERSION: u32 = 1;

/// Bytes per on-disk record: `u64 id`, `u64 size`, `f64 wall_secs`.
const RECORD_BYTES: usize = 24;

/// Records decoded per bulk read (1.5 MiB of I/O per syscall batch).
const CHUNK_RECORDS: usize = 64 * 1024;

/// Cap on up-front allocation derived from the (untrusted) header count,
/// so a corrupt count cannot OOM the reader; the vectors still grow to
/// the real size if the file actually holds that many records.
const PREALLOC_CAP_BYTES: usize = 64 << 20;

/// Write a trace in the binary format.
pub fn write_binary(path: &Path, trace: &[Request]) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(trace.len() as u64).to_le_bytes())?;
    for r in trace {
        w.write_all(&r.id.0.to_le_bytes())?;
        w.write_all(&r.size.to_le_bytes())?;
        w.write_all(&r.wall_secs.to_le_bytes())?;
    }
    w.flush()
}

/// Validate the header and return the (untrusted) record count.
fn read_header(r: &mut impl Read) -> io::Result<usize> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let mut buf4 = [0u8; 4];
    r.read_exact(&mut buf4)?;
    let version = u32::from_le_bytes(buf4);
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported version {version}"),
        ));
    }
    let mut buf8 = [0u8; 8];
    r.read_exact(&mut buf8)?;
    Ok(u64::from_le_bytes(buf8) as usize)
}

/// Bulk-decode `count` records, feeding each to `push` as
/// `(tick, id, size, wall_secs)`. Reads fixed-size chunks into one
/// reusable buffer instead of three `read_exact` calls per record.
fn decode_records(
    r: &mut impl Read,
    count: usize,
    mut push: impl FnMut(u64, u64, u64, f64),
) -> io::Result<()> {
    let mut buf = vec![0u8; CHUNK_RECORDS.min(count.max(1)) * RECORD_BYTES];
    let mut tick = 0usize;
    while tick < count {
        let n = (count - tick).min(CHUNK_RECORDS);
        let bytes = &mut buf[..n * RECORD_BYTES];
        r.read_exact(bytes)?;
        for rec in bytes.chunks_exact(RECORD_BYTES) {
            let id = u64::from_le_bytes(rec[0..8].try_into().unwrap());
            let size = u64::from_le_bytes(rec[8..16].try_into().unwrap());
            let wall_secs = f64::from_le_bytes(rec[16..24].try_into().unwrap());
            push(tick as u64, id, size, wall_secs);
            tick += 1;
        }
    }
    Ok(())
}

/// Pre-allocation for `count` records of `record_size` in-memory bytes,
/// capped at [`PREALLOC_CAP_BYTES`].
fn capped_prealloc(count: usize, record_size: usize) -> usize {
    count.min(PREALLOC_CAP_BYTES / record_size.max(1))
}

/// Read a binary trace written by [`write_binary`].
pub fn read_binary(path: &Path) -> io::Result<Vec<Request>> {
    let mut r = BufReader::new(File::open(path)?);
    let count = read_header(&mut r)?;
    let mut trace = Vec::with_capacity(capped_prealloc(count, std::mem::size_of::<Request>()));
    decode_records(&mut r, count, |tick, id, size, wall_secs| {
        trace.push(Request {
            tick,
            id: id.into(),
            size,
            wall_secs,
        });
    })?;
    Ok(trace)
}

/// Read a binary trace written by [`write_binary`] straight into
/// structure-of-arrays form (no intermediate `Vec<Request>`).
pub fn read_binary_columns(path: &Path) -> io::Result<TraceColumns> {
    let mut r = BufReader::new(File::open(path)?);
    let count = read_header(&mut r)?;
    // 32 = the per-request total across the four columns.
    let mut cols = TraceColumns::with_capacity(capped_prealloc(count, 32));
    decode_records(&mut r, count, |tick, id, size, wall_secs| {
        cols.ids.push(id.into());
        cols.sizes.push(size);
        cols.ticks.push(tick);
        cols.wall_secs.push(wall_secs);
    })?;
    Ok(cols)
}

/// Write a trace as CSV with a header row.
pub fn write_csv(path: &Path, trace: &[Request]) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(w, "tick,id,size,wall_secs")?;
    for r in trace {
        writeln!(w, "{},{},{},{}", r.tick, r.id.0, r.size, r.wall_secs)?;
    }
    w.flush()
}

/// Read a CSV trace written by [`write_csv`] (header required).
pub fn read_csv(path: &Path) -> io::Result<Vec<Request>> {
    let r = BufReader::new(File::open(path)?);
    let mut trace = Vec::new();
    let bad = |line: usize, what: &str| {
        io::Error::new(io::ErrorKind::InvalidData, format!("line {line}: {what}"))
    };
    for (i, line) in r.lines().enumerate() {
        let line = line?;
        if i == 0 {
            if !line.starts_with("tick,") {
                return Err(bad(1, "missing header"));
            }
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.split(',');
        let tick: u64 = parts
            .next()
            .and_then(|s| s.trim().parse().ok())
            .ok_or_else(|| bad(i + 1, "bad tick"))?;
        let id: u64 = parts
            .next()
            .and_then(|s| s.trim().parse().ok())
            .ok_or_else(|| bad(i + 1, "bad id"))?;
        let size: u64 = parts
            .next()
            .and_then(|s| s.trim().parse().ok())
            .ok_or_else(|| bad(i + 1, "bad size"))?;
        let wall_secs: f64 = parts
            .next()
            .and_then(|s| s.trim().parse().ok())
            .ok_or_else(|| bad(i + 1, "bad wall_secs"))?;
        trace.push(Request {
            tick,
            id: id.into(),
            size,
            wall_secs,
        });
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{GeneratorConfig, TraceGenerator};

    fn sample_trace() -> Vec<Request> {
        TraceGenerator::generate(GeneratorConfig {
            requests: 2_000,
            core_objects: 1_000,
            ..GeneratorConfig::default()
        })
    }

    #[test]
    fn binary_roundtrip() {
        let dir = std::env::temp_dir().join("cdn_trace_io_test_bin");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.bin");
        let t = sample_trace();
        write_binary(&path, &t).unwrap();
        let back = read_binary(&path).unwrap();
        assert_eq!(t, back);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("cdn_trace_io_test_csv");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        let t = sample_trace();
        write_csv(&path, &t).unwrap();
        let back = read_csv(&path).unwrap();
        assert_eq!(t.len(), back.len());
        for (a, b) in t.iter().zip(&back) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.size, b.size);
            assert_eq!(a.tick, b.tick);
            assert!((a.wall_secs - b.wall_secs).abs() < 1e-9);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn binary_roundtrip_large_crosses_chunks() {
        // > CHUNK_RECORDS so the bulk decoder takes several full chunks
        // plus a partial tail.
        let n = super::CHUNK_RECORDS as u64 * 2 + 1_234;
        let t = TraceGenerator::generate(GeneratorConfig {
            requests: n,
            core_objects: 5_000,
            ..GeneratorConfig::default()
        });
        let dir = std::env::temp_dir().join("cdn_trace_io_test_large");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("large.bin");
        write_binary(&path, &t).unwrap();
        let back = read_binary(&path).unwrap();
        assert_eq!(t, back);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn binary_columns_roundtrip() {
        let t = sample_trace();
        let dir = std::env::temp_dir().join("cdn_trace_io_test_cols");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.bin");
        write_binary(&path, &t).unwrap();
        let cols = read_binary_columns(&path).unwrap();
        assert_eq!(cols.to_requests(), t);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_count_fails_without_huge_alloc() {
        // Header claims u64::MAX records but carries only one: the reader
        // must cap its pre-allocation and fail with UnexpectedEof instead
        // of trying to reserve ~400 EiB.
        let dir = std::env::temp_dir().join("cdn_trace_io_test_corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt.bin");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"CDNT");
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0u8; super::RECORD_BYTES]);
        std::fs::write(&path, &bytes).unwrap();
        let err = read_binary(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
        let err = read_binary_columns(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_garbage() {
        let dir = std::env::temp_dir().join("cdn_trace_io_test_bad");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.bin");
        std::fs::write(&path, b"not a trace").unwrap();
        assert!(read_binary(&path).is_err());
        let csv = dir.join("bad.csv");
        std::fs::write(&csv, "nope\n1,2\n").unwrap();
        assert!(read_csv(&csv).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
