//! Checksums and content hashing for trace integrity.
//!
//! Two distinct needs, two functions:
//!
//! - [`crc32`]: the IEEE 802.3 CRC (polynomial `0xEDB88320`), used by the
//!   v2 binary trace format to detect any corrupted byte within a chunk.
//!   Table-driven, one table per process, no dependencies.
//! - [`fnv1a64`] / [`trace_content_hash`]: a cheap 64-bit content hash
//!   used to fingerprint a trace for sweep checkpoints — two sweeps
//!   resume against the same sidecar only if they replay byte-identical
//!   request streams.

use std::sync::OnceLock;

use cdn_cache::Request;

const CRC_SLICES: usize = 16;

fn crc_tables() -> &'static [[u32; 256]; CRC_SLICES] {
    static TABLES: OnceLock<[[u32; 256]; CRC_SLICES]> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; CRC_SLICES];
        for (i, entry) in t[0].iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        // t[k][i] = CRC of byte i followed by k zero bytes — lets sixteen
        // input bytes fold per loop iteration (slicing-by-16).
        for i in 0..256 {
            let mut c = t[0][i];
            for k in 1..CRC_SLICES {
                c = t[0][(c & 0xFF) as usize] ^ (c >> 8);
                t[k][i] = c;
            }
        }
        t
    })
}

/// IEEE CRC-32 of `bytes` (same polynomial as zlib/PNG/Ethernet).
///
/// Slicing-by-16: sixteen bytes per table step instead of one, because
/// this sits on the trace-prefetch thread's critical path — with the
/// classic byte-at-a-time loop the CRC alone caps streamed replay well
/// below the in-RAM hot loop, and on a single-core host every CRC cycle
/// is stolen directly from the replay loop.
pub fn crc32(bytes: &[u8]) -> u32 {
    let t = crc_tables();
    let mut c = 0xFFFF_FFFFu32;
    let mut words = bytes.chunks_exact(16);
    for w in &mut words {
        let a = u64::from_le_bytes(w[0..8].try_into().unwrap()) ^ u64::from(c);
        let b = u64::from_le_bytes(w[8..16].try_into().unwrap());
        c = t[15][(a & 0xFF) as usize]
            ^ t[14][((a >> 8) & 0xFF) as usize]
            ^ t[13][((a >> 16) & 0xFF) as usize]
            ^ t[12][((a >> 24) & 0xFF) as usize]
            ^ t[11][((a >> 32) & 0xFF) as usize]
            ^ t[10][((a >> 40) & 0xFF) as usize]
            ^ t[9][((a >> 48) & 0xFF) as usize]
            ^ t[8][(a >> 56) as usize]
            ^ t[7][(b & 0xFF) as usize]
            ^ t[6][((b >> 8) & 0xFF) as usize]
            ^ t[5][((b >> 16) & 0xFF) as usize]
            ^ t[4][((b >> 24) & 0xFF) as usize]
            ^ t[3][((b >> 32) & 0xFF) as usize]
            ^ t[2][((b >> 40) & 0xFF) as usize]
            ^ t[1][((b >> 48) & 0xFF) as usize]
            ^ t[0][(b >> 56) as usize];
    }
    let mut tail = words.remainder().chunks_exact(8);
    for w in &mut tail {
        let lo = u32::from_le_bytes(w[0..4].try_into().unwrap()) ^ c;
        let hi = u32::from_le_bytes(w[4..8].try_into().unwrap());
        c = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in tail.remainder() {
        c = t[0][((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// FNV-1a 64-bit over a byte stream fed incrementally.
#[derive(Debug, Clone)]
pub struct Fnv1a64(u64);

impl Default for Fnv1a64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a64 {
    const OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;

    /// Fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a64(Self::OFFSET)
    }

    /// Fold `bytes` into the running hash.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(Self::PRIME);
        }
    }

    /// Current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// FNV-1a 64-bit of one byte slice.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a64::new();
    h.update(bytes);
    h.finish()
}

/// 64-bit content hash of a request stream: folds `id`, `size` and the
/// bit pattern of `wall_secs` per record (ticks are positional and add no
/// information). Matches [`crate::TraceColumns::content_hash`].
pub fn trace_content_hash(trace: &[Request]) -> u64 {
    let mut h = Fnv1a64::new();
    for r in trace {
        h.update(&r.id.0.to_le_bytes());
        h.update(&r.size.to_le_bytes());
        h.update(&r.wall_secs.to_bits().to_le_bytes());
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_detects_any_single_byte_change() {
        let data = b"the quick brown fox jumps over the lazy dog".to_vec();
        let base = crc32(&data);
        for i in 0..data.len() {
            let mut changed = data.clone();
            changed[i] ^= 0x40;
            assert_ne!(crc32(&changed), base, "flip at byte {i} undetected");
        }
    }

    #[test]
    fn fnv_known_vector() {
        // FNV-1a 64 of "a" per the reference implementation.
        assert_eq!(fnv1a64(b"a"), 0xAF63_DC4C_8601_EC8C);
    }

    #[test]
    fn trace_hash_sensitive_to_every_field() {
        let base = cdn_cache::object::micro_trace(&[(1, 10), (2, 20)]);
        let h = trace_content_hash(&base);
        let mut other_id = base.clone();
        other_id[1].id = 3u64.into();
        let mut other_size = base.clone();
        other_size[0].size = 11;
        let mut other_wall = base.clone();
        other_wall[0].wall_secs += 0.5;
        for t in [&other_id, &other_size, &other_wall] {
            assert_ne!(trace_content_hash(t), h);
        }
        assert_eq!(trace_content_hash(&base), h);
    }
}
