//! Checksums and content hashing for trace integrity.
//!
//! Two distinct needs, two functions:
//!
//! - [`crc32`]: the IEEE 802.3 CRC (polynomial `0xEDB88320`), used by the
//!   v2 binary trace format to detect any corrupted byte within a chunk.
//!   Table-driven, one table per process, no dependencies.
//! - [`fnv1a64`] / [`trace_content_hash`]: a cheap 64-bit content hash
//!   used to fingerprint a trace for sweep checkpoints — two sweeps
//!   resume against the same sidecar only if they replay byte-identical
//!   request streams.

use std::sync::OnceLock;

use cdn_cache::Request;

fn crc_table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        table
    })
}

/// IEEE CRC-32 of `bytes` (same polynomial as zlib/PNG/Ethernet).
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = table[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// FNV-1a 64-bit over a byte stream fed incrementally.
#[derive(Debug, Clone)]
pub struct Fnv1a64(u64);

impl Default for Fnv1a64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a64 {
    const OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;

    /// Fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a64(Self::OFFSET)
    }

    /// Fold `bytes` into the running hash.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(Self::PRIME);
        }
    }

    /// Current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// FNV-1a 64-bit of one byte slice.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a64::new();
    h.update(bytes);
    h.finish()
}

/// 64-bit content hash of a request stream: folds `id`, `size` and the
/// bit pattern of `wall_secs` per record (ticks are positional and add no
/// information). Matches [`crate::TraceColumns::content_hash`].
pub fn trace_content_hash(trace: &[Request]) -> u64 {
    let mut h = Fnv1a64::new();
    for r in trace {
        h.update(&r.id.0.to_le_bytes());
        h.update(&r.size.to_le_bytes());
        h.update(&r.wall_secs.to_bits().to_le_bytes());
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_detects_any_single_byte_change() {
        let data = b"the quick brown fox jumps over the lazy dog".to_vec();
        let base = crc32(&data);
        for i in 0..data.len() {
            let mut changed = data.clone();
            changed[i] ^= 0x40;
            assert_ne!(crc32(&changed), base, "flip at byte {i} undetected");
        }
    }

    #[test]
    fn fnv_known_vector() {
        // FNV-1a 64 of "a" per the reference implementation.
        assert_eq!(fnv1a64(b"a"), 0xAF63_DC4C_8601_EC8C);
    }

    #[test]
    fn trace_hash_sensitive_to_every_field() {
        let base = cdn_cache::object::micro_trace(&[(1, 10), (2, 20)]);
        let h = trace_content_hash(&base);
        let mut other_id = base.clone();
        other_id[1].id = 3u64.into();
        let mut other_size = base.clone();
        other_size[0].size = 11;
        let mut other_wall = base.clone();
        other_wall[0].wall_secs += 0.5;
        for t in [&other_id, &other_size, &other_wall] {
            assert_ne!(trace_content_hash(t), h);
        }
        assert_eq!(trace_content_hash(&base), h);
    }
}
