//! Key-partitioning of a trace into per-shard column sets.
//!
//! The sharded replay engine (and later the sharded `cdnd` daemon) wants
//! one independent `CachePolicy` instance per shard, each fed only the
//! requests whose object ids map to it. The partition is computed once
//! over [`TraceColumns`] with the workspace-wide
//! [`cdn_cache::hash::key_shard`] fibonacci mapping, so the trace side and
//! the serving side agree on where every key lives.
//!
//! Guarantees (property-tested in `tests/shard_prop.rs` and relied on by
//! the exact-equality proofs in `cdn-sim`):
//! - **per-key order**: all requests for an object land on one shard, in
//!   their original relative order (the partition is a subsequence);
//! - **multiset union**: every input request appears on exactly one shard;
//! - **validity**: each shard's columns still pass
//!   [`TraceColumns::validate`] (ticks strictly increasing, wall clock
//!   non-decreasing — subsequences of a valid trace remain valid).

use cdn_cache::hash::key_shard;
use cdn_cache::FxHashSet;

use crate::columns::TraceColumns;

/// Per-shard request-stream statistics, computed during partitioning.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Requests routed to this shard.
    pub requests: u64,
    /// Distinct object ids routed to this shard.
    pub unique_objects: u64,
    /// Sum of requested bytes routed to this shard.
    pub bytes: u64,
}

/// A trace split into per-shard column sets by object id.
#[derive(Debug, Clone)]
pub struct ShardedTrace {
    /// Per-shard request streams, order-preserving subsequences of the
    /// input. `shards.len()` is the shard count the mapping was built for.
    pub shards: Vec<TraceColumns>,
    /// Per-shard statistics (same indexing as `shards`).
    pub stats: Vec<ShardStats>,
}

impl ShardedTrace {
    /// Shard count.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total requests across all shards (equals the input length).
    pub fn total_requests(&self) -> u64 {
        self.stats.iter().map(|s| s.requests).sum()
    }

    /// The largest shard's request count divided by the ideal per-shard
    /// share — 1.0 is a perfectly balanced partition. Values well above 1
    /// mean one shard will straggle and cap aggregate replay throughput.
    pub fn imbalance(&self) -> f64 {
        let total = self.total_requests();
        if total == 0 || self.shards.is_empty() {
            return 1.0;
        }
        let ideal = total as f64 / self.shards.len() as f64;
        let max = self.stats.iter().map(|s| s.requests).max().unwrap_or(0);
        max as f64 / ideal
    }
}

/// Split `cols` into `shards` order-preserving per-key partitions.
///
/// Single pass; each request is appended to the shard
/// [`key_shard`]`(id, shards)` selects. With `shards == 1` the output is a
/// copy of the input.
///
/// # Panics
/// If `shards` is zero.
pub fn partition_columns(cols: &TraceColumns, shards: usize) -> ShardedTrace {
    assert!(shards > 0, "partition_columns: shard count must be >= 1");
    let per_shard_hint = cols.len() / shards + 1;
    let mut out: Vec<TraceColumns> = (0..shards)
        .map(|_| TraceColumns::with_capacity(per_shard_hint))
        .collect();
    let mut stats = vec![ShardStats::default(); shards];
    let mut seen: Vec<FxHashSet<u64>> = vec![FxHashSet::default(); shards];
    for i in 0..cols.len() {
        let r = cols.get(i);
        let s = key_shard(r.id.0, shards);
        out[s].push(r);
        stats[s].requests += 1;
        stats[s].bytes = stats[s].bytes.saturating_add(r.size);
        if seen[s].insert(r.id.0) {
            stats[s].unique_objects += 1;
        }
    }
    ShardedTrace { shards: out, stats }
}

/// Incremental chunk-at-a-time partitioner for streamed traces.
///
/// Feeding chunks in order produces, per shard, exactly the *localized*
/// partition of the concatenated trace: each shard's requests in original
/// relative order, re-ticked `0..len` by per-shard counters that run
/// across chunk boundaries. That is precisely what the sharded replay
/// engine's `localized_shards` preprocessing computes over a whole
/// in-RAM trace, so a chunk-fed sharded replay sees bit-identical
/// per-shard request streams without the whole trace ever existing.
#[derive(Debug, Clone)]
pub struct ChunkPartitioner {
    shards: usize,
    /// Next local tick per shard, continuous across chunks.
    next_tick: Vec<u64>,
}

impl ChunkPartitioner {
    /// Partitioner for `shards` shards.
    ///
    /// # Panics
    /// If `shards` is zero.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "ChunkPartitioner: shard count must be >= 1");
        ChunkPartitioner {
            shards,
            next_tick: vec![0; shards],
        }
    }

    /// Shard count the partitioner was built for.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// Requests routed to each shard so far.
    pub fn routed(&self) -> &[u64] {
        &self.next_tick
    }

    /// Split one chunk into per-shard mini-chunks with localized ticks.
    /// Shards that receive nothing from this chunk get empty columns.
    pub fn split(&mut self, chunk: &TraceColumns) -> Vec<TraceColumns> {
        let mut out: Vec<TraceColumns> = (0..self.shards).map(|_| TraceColumns::new()).collect();
        for i in 0..chunk.len() {
            let mut r = chunk.get(i);
            let s = key_shard(r.id.0, self.shards);
            r.tick = self.next_tick[s];
            self.next_tick[s] += 1;
            out[s].push(r);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{GeneratorConfig, TraceGenerator};

    fn sample_columns() -> TraceColumns {
        let trace = TraceGenerator::generate(GeneratorConfig {
            requests: 20_000,
            core_objects: 1_500,
            ..GeneratorConfig::default()
        });
        TraceColumns::from_requests(&trace)
    }

    #[test]
    fn one_shard_is_identity() {
        let cols = sample_columns();
        let sharded = partition_columns(&cols, 1);
        assert_eq!(sharded.shards.len(), 1);
        assert_eq!(sharded.shards[0], cols);
        assert_eq!(sharded.stats[0].requests, cols.len() as u64);
        assert!((sharded.imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shards_are_valid_subsequences_and_cover_input() {
        let cols = sample_columns();
        for n in [2usize, 3, 4, 8] {
            let sharded = partition_columns(&cols, n);
            assert_eq!(sharded.total_requests(), cols.len() as u64);
            let mut covered = 0usize;
            for (s, shard) in sharded.shards.iter().enumerate() {
                shard.validate().unwrap_or_else(|e| {
                    panic!("shard {s}/{n} failed validation: {e}");
                });
                for i in 0..shard.len() {
                    assert_eq!(key_shard(shard.ids[i].0, n), s, "misrouted key");
                }
                covered += shard.len();
            }
            assert_eq!(covered, cols.len());
        }
    }

    #[test]
    fn stats_count_uniques_and_bytes() {
        let cols = TraceColumns::from_requests(&cdn_cache::object::micro_trace(&[
            (1, 10),
            (2, 20),
            (1, 10),
            (3, 30),
        ]));
        let sharded = partition_columns(&cols, 2);
        let uniques: u64 = sharded.stats.iter().map(|s| s.unique_objects).sum();
        let bytes: u64 = sharded.stats.iter().map(|s| s.bytes).sum();
        assert_eq!(uniques, 3, "ids 1,2,3 each counted once");
        assert_eq!(bytes, 70);
    }

    #[test]
    fn realistic_trace_is_roughly_balanced() {
        // A Zipf-heavy trace concentrates requests on few hot keys, so some
        // imbalance is expected — but the fibonacci mapping must not send
        // everything to one shard.
        let cols = sample_columns();
        for n in [2usize, 4, 8] {
            let sharded = partition_columns(&cols, n);
            assert!(
                sharded.imbalance() < 2.0,
                "{n} shards: imbalance {}",
                sharded.imbalance()
            );
            for s in &sharded.stats {
                assert!(s.requests > 0, "empty shard at n={n}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "shard count")]
    fn zero_shards_panics() {
        partition_columns(&TraceColumns::new(), 0);
    }

    #[test]
    fn chunk_partitioner_matches_whole_trace_localized_partition() {
        // Feeding arbitrary chunkings must reproduce, per shard, the
        // whole-trace partition re-ticked 0..len — chunk boundaries
        // invisible.
        let cols = sample_columns();
        for shards in [1usize, 2, 3, 4] {
            let mut reference = partition_columns(&cols, shards).shards;
            for shard in &mut reference {
                for (i, t) in shard.ticks.iter_mut().enumerate() {
                    *t = i as u64;
                }
            }
            for chunk_len in [1usize, 97, 4_096, cols.len()] {
                let mut p = ChunkPartitioner::new(shards);
                let mut rebuilt: Vec<TraceColumns> =
                    (0..shards).map(|_| TraceColumns::new()).collect();
                let mut at = 0usize;
                while at < cols.len() {
                    let end = (at + chunk_len).min(cols.len());
                    let mut chunk = TraceColumns::new();
                    for i in at..end {
                        chunk.push(cols.get(i));
                    }
                    for (s, mini) in p.split(&chunk).iter().enumerate() {
                        rebuilt[s].append_columns(mini);
                    }
                    at = end;
                }
                assert_eq!(rebuilt, reference, "shards={shards} chunk_len={chunk_len}");
                let routed: u64 = p.routed().iter().sum();
                assert_eq!(routed, cols.len() as u64);
            }
        }
    }
}
