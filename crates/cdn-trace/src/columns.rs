//! Structure-of-arrays trace storage for the replay engine.
//!
//! A `Vec<Request>` interleaves id/size/tick/wall-clock per record; the
//! sweep wants the opposite: one contiguous column per field so replay
//! loops stream exactly the fields they touch and a multi-million-request
//! trace is materialized once and shared (`Arc<TraceColumns>`) across
//! worker threads instead of being cloned per job.

use std::sync::Arc;

use cdn_cache::{ObjectId, Request, Tick};

/// A trace decomposed into per-field columns (equal lengths).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceColumns {
    /// Object of each request.
    pub ids: Vec<ObjectId>,
    /// Size in bytes of each request.
    pub sizes: Vec<u64>,
    /// Logical time of each request.
    pub ticks: Vec<Tick>,
    /// Wall-clock seconds since trace start of each request.
    pub wall_secs: Vec<f64>,
}

/// A trace shared across sweep workers without copying.
pub type SharedTrace = Arc<TraceColumns>;

impl TraceColumns {
    /// Empty columns.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty columns with room for `n` requests.
    pub fn with_capacity(n: usize) -> Self {
        TraceColumns {
            ids: Vec::with_capacity(n),
            sizes: Vec::with_capacity(n),
            ticks: Vec::with_capacity(n),
            wall_secs: Vec::with_capacity(n),
        }
    }

    /// Decompose an interleaved trace.
    pub fn from_requests(trace: &[Request]) -> Self {
        let mut c = Self::with_capacity(trace.len());
        for r in trace {
            c.push(*r);
        }
        c
    }

    /// Rebuild the interleaved representation.
    pub fn to_requests(&self) -> Vec<Request> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }

    /// Append one request.
    pub fn push(&mut self, r: Request) {
        self.ids.push(r.id);
        self.sizes.push(r.size);
        self.ticks.push(r.tick);
        self.wall_secs.push(r.wall_secs);
    }

    /// Requests stored.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when no requests are stored.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Reassemble request `i`.
    ///
    /// # Panics
    /// If `i` is out of bounds.
    #[inline]
    pub fn get(&self, i: usize) -> Request {
        Request {
            tick: self.ticks[i],
            id: self.ids[i],
            size: self.sizes[i],
            wall_secs: self.wall_secs[i],
        }
    }

    /// Stream the requests in order (values, not references — `Request`
    /// is `Copy`-sized and rebuilt from the columns in registers).
    pub fn iter(&self) -> impl Iterator<Item = Request> + '_ {
        self.ids
            .iter()
            .zip(&self.sizes)
            .zip(&self.ticks)
            .zip(&self.wall_secs)
            .map(|(((&id, &size), &tick), &wall_secs)| Request {
                tick,
                id,
                size,
                wall_secs,
            })
    }

    /// Bytes held by the four columns.
    pub fn memory_bytes(&self) -> usize {
        self.ids.capacity() * std::mem::size_of::<ObjectId>()
            + self.sizes.capacity() * 8
            + self.ticks.capacity() * 8
            + self.wall_secs.capacity() * 8
    }

    /// Wrap in an [`Arc`] for zero-copy sharing across sweep workers.
    pub fn into_shared(self) -> SharedTrace {
        Arc::new(self)
    }
}

impl From<&[Request]> for TraceColumns {
    fn from(trace: &[Request]) -> Self {
        Self::from_requests(trace)
    }
}

impl FromIterator<Request> for TraceColumns {
    fn from_iter<I: IntoIterator<Item = Request>>(iter: I) -> Self {
        let iter = iter.into_iter();
        let mut c = Self::with_capacity(iter.size_hint().0);
        for r in iter {
            c.push(r);
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{GeneratorConfig, TraceGenerator};

    #[test]
    fn roundtrip_preserves_everything() {
        let trace = TraceGenerator::generate(GeneratorConfig {
            requests: 5_000,
            core_objects: 800,
            ..GeneratorConfig::default()
        });
        let cols = TraceColumns::from_requests(&trace);
        assert_eq!(cols.len(), trace.len());
        assert_eq!(cols.to_requests(), trace);
    }

    #[test]
    fn iter_matches_get() {
        let trace = cdn_cache::object::micro_trace(&[(1, 10), (2, 20), (1, 10)]);
        let cols = TraceColumns::from_requests(&trace);
        for (i, r) in cols.iter().enumerate() {
            assert_eq!(r, cols.get(i));
            assert_eq!(r, trace[i]);
        }
    }

    #[test]
    fn shared_is_zero_copy() {
        let cols =
            TraceColumns::from_requests(&cdn_cache::object::micro_trace(&[(1, 1)])).into_shared();
        let other = cols.clone();
        assert!(std::ptr::eq(cols.ids.as_ptr(), other.ids.as_ptr()));
    }

    #[test]
    fn empty_and_capacity() {
        let c = TraceColumns::new();
        assert!(c.is_empty());
        let c = TraceColumns::with_capacity(16);
        assert_eq!(c.len(), 0);
        assert!(c.memory_bytes() >= 16 * 32);
    }

    #[test]
    fn from_iterator_collects() {
        let trace = cdn_cache::object::micro_trace(&[(3, 30), (4, 40)]);
        let cols: TraceColumns = trace.iter().copied().collect();
        assert_eq!(cols.to_requests(), trace);
    }
}
