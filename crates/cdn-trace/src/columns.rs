//! Structure-of-arrays trace storage for the replay engine.
//!
//! A `Vec<Request>` interleaves id/size/tick/wall-clock per record; the
//! sweep wants the opposite: one contiguous column per field so replay
//! loops stream exactly the fields they touch and a multi-million-request
//! trace is materialized once and shared (`Arc<TraceColumns>`) across
//! worker threads instead of being cloned per job.

use std::sync::Arc;

use cdn_cache::{ObjectId, Request, Tick};

/// A trace decomposed into per-field columns (equal lengths).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceColumns {
    /// Object of each request.
    pub ids: Vec<ObjectId>,
    /// Size in bytes of each request.
    pub sizes: Vec<u64>,
    /// Logical time of each request.
    pub ticks: Vec<Tick>,
    /// Wall-clock seconds since trace start of each request.
    pub wall_secs: Vec<f64>,
}

/// A trace shared across sweep workers without copying.
pub type SharedTrace = Arc<TraceColumns>;

impl TraceColumns {
    /// Empty columns.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty columns with room for `n` requests.
    pub fn with_capacity(n: usize) -> Self {
        TraceColumns {
            ids: Vec::with_capacity(n),
            sizes: Vec::with_capacity(n),
            ticks: Vec::with_capacity(n),
            wall_secs: Vec::with_capacity(n),
        }
    }

    /// Decompose an interleaved trace.
    pub fn from_requests(trace: &[Request]) -> Self {
        let mut c = Self::with_capacity(trace.len());
        for r in trace {
            c.push(*r);
        }
        c
    }

    /// Rebuild the interleaved representation.
    pub fn to_requests(&self) -> Vec<Request> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }

    /// Append one request.
    pub fn push(&mut self, r: Request) {
        self.ids.push(r.id);
        self.sizes.push(r.size);
        self.ticks.push(r.tick);
        self.wall_secs.push(r.wall_secs);
    }

    /// Requests stored.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when no requests are stored.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Reassemble request `i`.
    ///
    /// # Panics
    /// If `i` is out of bounds.
    #[inline]
    pub fn get(&self, i: usize) -> Request {
        Request {
            tick: self.ticks[i],
            id: self.ids[i],
            size: self.sizes[i],
            wall_secs: self.wall_secs[i],
        }
    }

    /// Stream the requests in order (values, not references — `Request`
    /// is `Copy`-sized and rebuilt from the columns in registers).
    pub fn iter(&self) -> impl Iterator<Item = Request> + '_ {
        self.ids
            .iter()
            .zip(&self.sizes)
            .zip(&self.ticks)
            .zip(&self.wall_secs)
            .map(|(((&id, &size), &tick), &wall_secs)| Request {
                tick,
                id,
                size,
                wall_secs,
            })
    }

    /// Bytes held by the four columns.
    pub fn memory_bytes(&self) -> usize {
        self.ids.capacity() * std::mem::size_of::<ObjectId>()
            + self.sizes.capacity() * 8
            + self.ticks.capacity() * 8
            + self.wall_secs.capacity() * 8
    }

    /// Wrap in an [`Arc`] for zero-copy sharing across sweep workers.
    pub fn into_shared(self) -> SharedTrace {
        Arc::new(self)
    }

    /// Semantic integrity check over the decoded trace: column lengths
    /// must agree, every record must have a nonzero size, ticks must be
    /// strictly increasing and wall-clock timestamps finite and
    /// non-decreasing. Run this after loading an untrusted trace — the
    /// binary readers verify the *bytes* (checksums, framing), this
    /// verifies the *values*.
    pub fn validate(&self) -> Result<(), crate::io::TraceError> {
        use crate::io::TraceError;
        let n = self.ids.len();
        if self.sizes.len() != n || self.ticks.len() != n || self.wall_secs.len() != n {
            return Err(TraceError::NonMonotonicTime { tick: 0 });
        }
        for i in 0..n {
            if self.sizes[i] == 0 {
                return Err(TraceError::ZeroSizeRecord {
                    tick: self.ticks[i],
                });
            }
            if !self.wall_secs[i].is_finite()
                || (i > 0
                    && (self.ticks[i] <= self.ticks[i - 1]
                        || self.wall_secs[i] < self.wall_secs[i - 1]))
            {
                return Err(TraceError::NonMonotonicTime {
                    tick: self.ticks[i],
                });
            }
        }
        Ok(())
    }

    /// Append all of `other`'s records (the streaming reader uses this to
    /// coalesce disk chunks into larger replay chunks).
    pub fn append_columns(&mut self, other: &TraceColumns) {
        self.ids.extend_from_slice(&other.ids);
        self.sizes.extend_from_slice(&other.sizes);
        self.ticks.extend_from_slice(&other.ticks);
        self.wall_secs.extend_from_slice(&other.wall_secs);
    }

    /// 64-bit content hash over `(id, size, wall_secs)` of every record —
    /// the trace component of a sweep checkpoint fingerprint. Equals
    /// [`crate::checksum::trace_content_hash`] of the interleaved form.
    pub fn content_hash(&self) -> u64 {
        let mut h = crate::checksum::Fnv1a64::new();
        self.fold_content_hash(&mut h);
        h.finish()
    }

    /// Fold this trace's records into a running hasher, so a chunked
    /// stream reproduces [`Self::content_hash`] of the whole trace by
    /// folding chunks in order.
    pub fn fold_content_hash(&self, h: &mut crate::checksum::Fnv1a64) {
        for i in 0..self.len() {
            h.update(&self.ids[i].0.to_le_bytes());
            h.update(&self.sizes[i].to_le_bytes());
            h.update(&self.wall_secs[i].to_bits().to_le_bytes());
        }
    }
}

impl From<&[Request]> for TraceColumns {
    fn from(trace: &[Request]) -> Self {
        Self::from_requests(trace)
    }
}

impl FromIterator<Request> for TraceColumns {
    fn from_iter<I: IntoIterator<Item = Request>>(iter: I) -> Self {
        let iter = iter.into_iter();
        let mut c = Self::with_capacity(iter.size_hint().0);
        for r in iter {
            c.push(r);
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{GeneratorConfig, TraceGenerator};

    #[test]
    fn roundtrip_preserves_everything() {
        let trace = TraceGenerator::generate(GeneratorConfig {
            requests: 5_000,
            core_objects: 800,
            ..GeneratorConfig::default()
        });
        let cols = TraceColumns::from_requests(&trace);
        assert_eq!(cols.len(), trace.len());
        assert_eq!(cols.to_requests(), trace);
    }

    #[test]
    fn iter_matches_get() {
        let trace = cdn_cache::object::micro_trace(&[(1, 10), (2, 20), (1, 10)]);
        let cols = TraceColumns::from_requests(&trace);
        for (i, r) in cols.iter().enumerate() {
            assert_eq!(r, cols.get(i));
            assert_eq!(r, trace[i]);
        }
    }

    #[test]
    fn shared_is_zero_copy() {
        let cols =
            TraceColumns::from_requests(&cdn_cache::object::micro_trace(&[(1, 1)])).into_shared();
        let other = cols.clone();
        assert!(std::ptr::eq(cols.ids.as_ptr(), other.ids.as_ptr()));
    }

    #[test]
    fn empty_and_capacity() {
        let c = TraceColumns::new();
        assert!(c.is_empty());
        let c = TraceColumns::with_capacity(16);
        assert_eq!(c.len(), 0);
        assert!(c.memory_bytes() >= 16 * 32);
    }

    #[test]
    fn validate_accepts_generated_and_rejects_bad_values() {
        let trace = TraceGenerator::generate(GeneratorConfig {
            requests: 2_000,
            core_objects: 300,
            ..GeneratorConfig::default()
        });
        let cols = TraceColumns::from_requests(&trace);
        cols.validate().unwrap();

        let mut zero = cols.clone();
        zero.sizes[17] = 0;
        assert!(matches!(
            zero.validate().unwrap_err(),
            crate::io::TraceError::ZeroSizeRecord { tick: 17 }
        ));

        let mut backwards = cols.clone();
        backwards.wall_secs[100] = backwards.wall_secs[99] - 1.0;
        assert!(matches!(
            backwards.validate().unwrap_err(),
            crate::io::TraceError::NonMonotonicTime { tick: 100 }
        ));

        let mut dup_tick = cols.clone();
        dup_tick.ticks[5] = dup_tick.ticks[4];
        assert!(matches!(
            dup_tick.validate().unwrap_err(),
            crate::io::TraceError::NonMonotonicTime { .. }
        ));

        let mut ragged = cols;
        ragged.sizes.pop();
        assert!(ragged.validate().is_err());
    }

    #[test]
    fn content_hash_matches_interleaved_and_detects_changes() {
        let trace = cdn_cache::object::micro_trace(&[(1, 10), (2, 20), (3, 30)]);
        let cols = TraceColumns::from_requests(&trace);
        assert_eq!(
            cols.content_hash(),
            crate::checksum::trace_content_hash(&trace)
        );
        let mut other = cols.clone();
        other.sizes[1] = 21;
        assert_ne!(other.content_hash(), cols.content_hash());
    }

    #[test]
    fn from_iterator_collects() {
        let trace = cdn_cache::object::micro_trace(&[(3, 30), (4, 40)]);
        let cols: TraceColumns = trace.iter().copied().collect();
        assert_eq!(cols.to_requests(), trace);
    }
}
