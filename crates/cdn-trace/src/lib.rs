//! CDN workload substrate: synthetic traces, trace I/O, offline analysis.
//!
//! The paper evaluates on CDN-T (proprietary Tencent), CDN-W (wiki, from
//! the LRB artifact) and CDN-A (Tencent photo, ICS'18). None are available
//! offline, so this crate generates seeded synthetic analogs whose Table-1
//! statistics (requests per unique object, size distribution, working-set
//! size) and class structure (ZRO / A-ZRO / P-ZRO / A-P-ZRO percentages)
//! match the paper's reported ranges. See DESIGN.md §5 for the substitution
//! argument.
//!
//! Modules:
//! - [`columns`]: structure-of-arrays trace storage shared across sweep
//!   workers ([`TraceColumns`]).
//! - [`shard`]: key-partitioning of a trace into per-shard column sets
//!   (fibonacci key→shard mapping shared with the cache layer), feeding
//!   the sharded replay engine.
//! - [`zipf`]: exact finite-support Zipf rank sampling.
//! - [`sizes`]: per-object size models (clamped lognormal + heavy tail).
//! - [`gen`]: the trace generator engine (Zipf core, popularity drift,
//!   one-hit wonders, burst processes, diurnal wall clock).
//! - [`profiles`]: CDN-T / CDN-W / CDN-A parameterisations.
//! - [`stats`]: Table-1 style trace statistics.
//! - [`io`]: binary + CSV trace serialisation (v2 adds per-chunk CRC-32
//!   and a length footer; corruption surfaces as structured
//!   [`TraceError`]s), with [`ChunkIter`] as the single streaming decode
//!   path both whole-trace readers collect over.
//! - [`stream`]: out-of-core streaming — [`StreamingTrace`] (double-
//!   buffered prefetch thread over a [`ChunkIter`]) and the pipelined
//!   direct-to-disk generator ([`generate_binary`]), bounded-memory on
//!   both the read and write side regardless of trace length.
//! - [`checksum`]: CRC-32 + FNV-1a content hashing behind trace
//!   integrity and sweep checkpoint fingerprints.
//! - [`label`]: offline ZRO / P-ZRO / A-ZRO / A-P-ZRO labeling by LRU
//!   replay, and the oracle-placement replay behind Figure 3.
//! - [`belady`]: next-access precomputation and the Belady MIN lower bound.

pub mod belady;
pub mod checksum;
pub mod columns;
pub mod gen;
pub mod io;
pub mod label;
pub mod profiles;
pub mod shard;
pub mod sizes;
pub mod stats;
pub mod stream;
pub mod zipf;

pub use belady::{next_access_table, BeladyOracle, NO_NEXT};
pub use checksum::{crc32, trace_content_hash};
pub use columns::{SharedTrace, TraceColumns};
pub use gen::{degenerate_corpus, DriftEvent, GeneratorConfig, TraceGenerator};
pub use io::{ChunkIter, TraceError, CHUNK_RECORDS, RECORD_BYTES};
pub use label::{label_trace, LabelSummary, RequestLabel, TraceLabels};
pub use profiles::{drift_corpus, flash_crowd_window, Workload, WorkloadProfile};
pub use shard::{partition_columns, ChunkPartitioner, ShardStats, ShardedTrace};
pub use sizes::SizeModel;
pub use stats::{hot_set_overlap, top_k_ids, top_k_share, TraceStats};
pub use stream::{
    file_content_hash, generate_binary, stream_chunk_records, stream_content_hash,
    write_binary_stream, write_csv_stream, StreamingTrace, STREAM_SLOTS,
};
pub use zipf::Zipf;
