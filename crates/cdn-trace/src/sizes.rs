//! Per-object size models.
//!
//! CDN object sizes are heavy-tailed: most objects are tens of kilobytes
//! (thumbnails, page assets) with a long tail of large objects (originals,
//! media segments). We model them as a clamped lognormal body mixed with a
//! Pareto-ish tail, tuned per profile to land on Table 1's min / max / mean.
//!
//! Sizes are a *stable property of the object*: the sampler is keyed by
//! object id through a hash so the same id always gets the same size with
//! no per-object state.

use cdn_cache::hash::mix64;
use cdn_cache::SimRng;

/// A deterministic object-size distribution.
#[derive(Debug, Clone, Copy)]
pub struct SizeModel {
    /// `mu` of the underlying normal (log of bytes).
    pub mu: f64,
    /// `sigma` of the underlying normal.
    pub sigma: f64,
    /// Probability an object is drawn from the heavy tail instead.
    pub tail_prob: f64,
    /// Tail Pareto exponent (smaller = heavier); must be > 1.
    pub tail_alpha: f64,
    /// Tail scale: minimum size of tail objects, bytes.
    pub tail_min: u64,
    /// Clamp: minimum object size, bytes.
    pub min: u64,
    /// Clamp: maximum object size, bytes.
    pub max: u64,
}

impl SizeModel {
    /// A model whose lognormal body has the given median bytes and shape.
    pub fn lognormal(median_bytes: f64, sigma: f64) -> Self {
        SizeModel {
            mu: median_bytes.ln(),
            sigma,
            tail_prob: 0.0,
            tail_alpha: 2.0,
            tail_min: 1 << 20,
            min: 1,
            max: u64::MAX,
        }
    }

    /// Add a Pareto tail.
    pub fn with_tail(mut self, prob: f64, alpha: f64, min_bytes: u64) -> Self {
        assert!((0.0..1.0).contains(&prob));
        assert!(alpha > 1.0, "tail must have finite mean");
        self.tail_prob = prob;
        self.tail_alpha = alpha;
        self.tail_min = min_bytes;
        self
    }

    /// Clamp sizes to `[min, max]` bytes.
    pub fn clamped(mut self, min: u64, max: u64) -> Self {
        assert!(min >= 1 && min <= max);
        self.min = min;
        self.max = max;
        self
    }

    /// Deterministic size of object `id` (same id ⇒ same size).
    pub fn size_of(&self, id: u64, seed: u64) -> u64 {
        let mut rng = SimRng::new(mix64(id ^ mix64(seed)));
        let raw = if rng.chance(self.tail_prob) {
            // Pareto(alpha, tail_min) by inversion.
            let u = loop {
                let u = rng.f64();
                if u > 0.0 {
                    break u;
                }
            };
            self.tail_min as f64 * u.powf(-1.0 / self.tail_alpha)
        } else {
            rng.lognormal(self.mu, self.sigma)
        };
        (raw as u64).clamp(self.min, self.max)
    }

    /// Monte-Carlo mean of the model (for profile calibration and tests).
    pub fn empirical_mean(&self, samples: u64, seed: u64) -> f64 {
        let sum: u128 = (0..samples).map(|i| self.size_of(i, seed) as u128).sum();
        sum as f64 / samples as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_id() {
        let m = SizeModel::lognormal(30_000.0, 1.0);
        assert_eq!(m.size_of(7, 42), m.size_of(7, 42));
        // Different seeds decouple sizes.
        assert_ne!(m.size_of(7, 42), m.size_of(7, 43));
    }

    #[test]
    fn respects_clamp() {
        let m = SizeModel::lognormal(30_000.0, 2.5).clamped(100, 1_000_000);
        for id in 0..50_000 {
            let s = m.size_of(id, 1);
            assert!((100..=1_000_000).contains(&s));
        }
    }

    #[test]
    fn median_roughly_matches() {
        let m = SizeModel::lognormal(30_000.0, 1.2);
        let mut v: Vec<u64> = (0..20_001).map(|i| m.size_of(i, 5)).collect();
        v.sort_unstable();
        let median = v[v.len() / 2] as f64;
        assert!(
            (median / 30_000.0 - 1.0).abs() < 0.1,
            "median {median} vs 30000"
        );
    }

    #[test]
    fn tail_increases_mean() {
        let body = SizeModel::lognormal(30_000.0, 1.0);
        let tailed = body.with_tail(0.02, 1.5, 5 << 20);
        let m0 = body.empirical_mean(20_000, 9);
        let m1 = tailed.empirical_mean(20_000, 9);
        assert!(m1 > 1.5 * m0, "tail mean {m1} vs body {m0}");
    }

    #[test]
    #[should_panic(expected = "finite mean")]
    fn rejects_infinite_mean_tail() {
        let _ = SizeModel::lognormal(1000.0, 1.0).with_tail(0.1, 1.0, 1 << 20);
    }
}
