//! The synthetic trace generator engine.
//!
//! A trace is a superposition of four request processes, each responsible
//! for one of the phenomena the paper's analysis depends on:
//!
//! 1. **Zipf core** — a pool of `core_objects` ids sampled by Zipf rank.
//!    The popular head produces ordinary hits; the long tail produces ZROs
//!    (inter-access gap exceeds cache residency) and A-ZROs (tail objects
//!    that do come back eventually).
//! 2. **One-hit wonders** — with probability `one_hit_fraction` a request
//!    goes to a brand-new id never seen again: a guaranteed ZRO.
//! 3. **Bursts** — short-lived objects accessed a few times in quick
//!    succession and then abandoned. The *last* hit of a burst is exactly a
//!    P-ZRO (a hit object that will not be hit again), so the burst rate
//!    controls the Figure-1(d) P-ZRO share.
//! 4. **Popularity drift** — every `drift_interval` requests a fraction of
//!    Zipf ranks is remapped to fresh ids, modelling content churn.
//!
//! On top of the stationary mix, [`DriftEvent`]s inject *scheduled*
//! nonstationarity at exact ticks — flash crowds, working-set rotations
//! and diurnal popularity cycles — so chaos schedules can land shard
//! kills inside a known drift window (DESIGN.md §18).
//!
//! All randomness flows from a single [`SimRng`] seed; a trace is a pure
//! function of its [`GeneratorConfig`].

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use cdn_cache::{Request, SimRng, Tick};

use crate::sizes::SizeModel;
use crate::zipf::Zipf;

/// A scheduled nonstationarity, pinned to exact request ticks so chaos
/// schedules can place failures *inside* the drift they are stressing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DriftEvent {
    /// A sudden surge onto a tiny set of brand-new objects: while
    /// `start <= tick < start + duration`, a `share` fraction of requests
    /// is redirected to a pool of `objects` ids minted at the window's
    /// first tick, sampled Zipf(1.0)-skewed. Models a viral release —
    /// massive concentrated load on content no cache has seen.
    FlashCrowd {
        /// First tick of the surge.
        start: Tick,
        /// Window length in ticks.
        duration: Tick,
        /// Probability a request inside the window goes to the crowd pool.
        share: f64,
        /// Size of the crowd pool (small ⇒ extreme skew).
        objects: usize,
    },
    /// One-shot churn of the popular head: at tick `at`, the top
    /// `fraction` of core ranks is remapped to fresh ids. Unlike the
    /// periodic background drift (which remaps *random* ranks), rotating
    /// the head guarantees the hot set before and after the boundary
    /// barely overlaps — a catalog refresh.
    WorkingSetRotation {
        /// Tick of the rotation boundary.
        at: Tick,
        /// Fraction of core ranks remapped, hottest first, in `(0, 1]`.
        fraction: f64,
    },
    /// Diurnal popularity cycle: popularity mass oscillates between the
    /// two halves of the core pool with period `period` ticks. A sampled
    /// rank is phase-shifted by half the pool with probability
    /// `amplitude * (1 - cos(2πt/period)) / 2` — zero at phase 0, peak
    /// `amplitude` at half-period. Models day/night audience swap.
    PopularityCycle {
        /// Cycle length in ticks.
        period: Tick,
        /// Peak shift probability, in `[0, 1]`.
        amplitude: f64,
    },
}

/// Full parameterisation of a synthetic trace.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Total requests to emit.
    pub requests: u64,
    /// Size of the Zipf-popular core pool.
    pub core_objects: usize,
    /// Zipf exponent of the core pool.
    pub zipf_s: f64,
    /// Probability a request is a never-repeated fresh object.
    pub one_hit_fraction: f64,
    /// Probability a request *starts* a new burst object.
    pub burst_start_prob: f64,
    /// Mean number of accesses in a burst (geometric, ≥ 1).
    pub burst_len_mean: f64,
    /// Mean request-count gap between consecutive accesses of a burst.
    pub burst_gap_mean: f64,
    /// Remap period for popularity drift (0 disables drift).
    pub drift_interval: u64,
    /// Fraction of core ranks remapped per drift event.
    pub drift_fraction: f64,
    /// Object-size distribution.
    pub size_model: SizeModel,
    /// Size multiplier for one-hit-wonder objects (real CDN traces show a
    /// strong size↔reuse anticorrelation: one-shot originals/downloads are
    /// much larger than hot thumbnails — the signal ASC-IP and the
    /// Figure 4 classifiers exploit).
    pub wonder_size_factor: f64,
    /// Base request rate for the wall clock (requests/second).
    pub requests_per_sec: f64,
    /// Diurnal modulation amplitude in `[0, 1)` (0 = flat rate).
    pub diurnal_amplitude: f64,
    /// Scheduled nonstationarities (empty = stationary mix only).
    pub events: Vec<DriftEvent>,
    /// Master seed.
    pub seed: u64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            requests: 1_000_000,
            core_objects: 100_000,
            zipf_s: 0.8,
            one_hit_fraction: 0.1,
            burst_start_prob: 0.005,
            burst_len_mean: 4.0,
            burst_gap_mean: 2_000.0,
            drift_interval: 200_000,
            drift_fraction: 0.02,
            size_model: SizeModel::lognormal(15_000.0, 1.3),
            wonder_size_factor: 1.0,
            requests_per_sec: 2_000.0,
            diurnal_amplitude: 0.4,
            events: Vec::new(),
            seed: 1,
        }
    }
}

#[derive(Debug, Clone)]
struct Burst {
    id: u64,
    remaining: u32,
}

/// Streaming generator: implements `Iterator<Item = Request>`.
#[derive(Debug)]
pub struct TraceGenerator {
    cfg: GeneratorConfig,
    rng: SimRng,
    zipf: Zipf,
    rank_to_id: Vec<u64>,
    next_id: u64,
    bursts: Vec<Burst>,
    /// Min-heap of (due_tick, burst slot index).
    burst_queue: BinaryHeap<Reverse<(Tick, usize)>>,
    free_burst_slots: Vec<usize>,
    tick: Tick,
    wall_secs: f64,
    next_drift: Tick,
    /// Per-event flash-crowd pools (minted at window entry), parallel to
    /// `cfg.events`.
    flash_pools: Vec<Option<(Vec<u64>, Zipf)>>,
    /// Which [`DriftEvent::WorkingSetRotation`]s have fired, parallel to
    /// `cfg.events`.
    rotated: Vec<bool>,
}

impl TraceGenerator {
    /// Build a generator for `cfg`.
    pub fn new(cfg: GeneratorConfig) -> Self {
        assert!(cfg.core_objects > 0, "need a core pool");
        assert!(cfg.one_hit_fraction + cfg.burst_start_prob < 1.0);
        assert!(cfg.burst_len_mean >= 1.0);
        assert!(cfg.burst_gap_mean >= 1.0);
        assert!((0.0..1.0).contains(&cfg.diurnal_amplitude));
        for ev in &cfg.events {
            match *ev {
                DriftEvent::FlashCrowd {
                    duration,
                    share,
                    objects,
                    ..
                } => {
                    assert!(duration > 0, "flash crowd needs a window");
                    assert!(objects > 0, "flash crowd needs a pool");
                    assert!((0.0..=1.0).contains(&share), "flash share in [0,1]");
                }
                DriftEvent::WorkingSetRotation { fraction, .. } => {
                    assert!(
                        fraction > 0.0 && fraction <= 1.0,
                        "rotation fraction in (0,1]"
                    );
                }
                DriftEvent::PopularityCycle { period, amplitude } => {
                    assert!(period > 0, "cycle needs a period");
                    assert!((0.0..=1.0).contains(&amplitude), "amplitude in [0,1]");
                }
            }
        }
        let mut rng = SimRng::new(cfg.seed);
        let zipf = Zipf::new(cfg.core_objects, cfg.zipf_s);
        // Shuffle ids over ranks so object id carries no popularity signal
        // (policies must not be able to cheat by reading the id).
        let mut rank_to_id: Vec<u64> = (0..cfg.core_objects as u64).collect();
        rng.shuffle(&mut rank_to_id);
        let next_drift = if cfg.drift_interval == 0 {
            u64::MAX
        } else {
            cfg.drift_interval
        };
        TraceGenerator {
            next_id: cfg.core_objects as u64,
            zipf,
            rank_to_id,
            rng,
            bursts: Vec::new(),
            burst_queue: BinaryHeap::new(),
            free_burst_slots: Vec::new(),
            tick: 0,
            wall_secs: 0.0,
            next_drift,
            flash_pools: (0..cfg.events.len()).map(|_| None).collect(),
            rotated: vec![false; cfg.events.len()],
            cfg,
        }
    }

    /// Generate the whole trace into a vector.
    pub fn generate(cfg: GeneratorConfig) -> Vec<Request> {
        let n = cfg.requests as usize;
        let mut v = Vec::with_capacity(n);
        v.extend(TraceGenerator::new(cfg));
        v
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    fn start_burst(&mut self) -> u64 {
        let id = self.fresh_id();
        // Geometric length with mean `burst_len_mean`: support {1, 2, ...}.
        let p = 1.0 / self.cfg.burst_len_mean;
        let mut len = 1u32;
        while !self.rng.chance(p) && len < 10_000 {
            len += 1;
        }
        if len > 1 {
            let slot = if let Some(s) = self.free_burst_slots.pop() {
                self.bursts[s] = Burst {
                    id,
                    remaining: len - 1,
                };
                s
            } else {
                self.bursts.push(Burst {
                    id,
                    remaining: len - 1,
                });
                self.bursts.len() - 1
            };
            let gap = self.sample_gap();
            self.burst_queue.push(Reverse((self.tick + gap, slot)));
        }
        id
    }

    fn sample_gap(&mut self) -> u64 {
        (self.rng.exponential(1.0 / self.cfg.burst_gap_mean) as u64).max(1)
    }

    fn drift(&mut self) {
        let n = self.cfg.core_objects;
        let count = ((n as f64) * self.cfg.drift_fraction) as usize;
        for _ in 0..count {
            let rank = self.rng.usize_below(n);
            self.rank_to_id[rank] = self.fresh_id();
        }
    }

    /// Fire tick-scheduled state changes: mint a flash-crowd pool at its
    /// window entry, rotate the popular head at a rotation boundary.
    fn apply_events(&mut self) {
        for i in 0..self.cfg.events.len() {
            match self.cfg.events[i] {
                DriftEvent::FlashCrowd {
                    start,
                    duration,
                    objects,
                    ..
                } => {
                    if self.tick >= start
                        && self.tick < start.saturating_add(duration)
                        && self.flash_pools[i].is_none()
                    {
                        let ids = (0..objects).map(|_| self.fresh_id()).collect();
                        self.flash_pools[i] = Some((ids, Zipf::new(objects, 1.0)));
                    }
                }
                DriftEvent::WorkingSetRotation { at, fraction } => {
                    if self.tick >= at && !self.rotated[i] {
                        self.rotated[i] = true;
                        let n = self.cfg.core_objects;
                        let count = (((n as f64) * fraction) as usize).clamp(1, n);
                        // Hottest ranks first: rank 0 is the Zipf head, so
                        // the pre-boundary hot set is guaranteed to churn.
                        for rank in 0..count {
                            self.rank_to_id[rank] = self.fresh_id();
                        }
                    }
                }
                DriftEvent::PopularityCycle { .. } => {}
            }
        }
    }

    /// A flash-crowd object for this tick, if a window is open and the
    /// crowd share fires.
    fn flash_object(&mut self) -> Option<u64> {
        for i in 0..self.cfg.events.len() {
            if let DriftEvent::FlashCrowd {
                start,
                duration,
                share,
                ..
            } = self.cfg.events[i]
            {
                if self.tick >= start
                    && self.tick < start.saturating_add(duration)
                    && self.rng.chance(share)
                {
                    let (ids, zipf) = self.flash_pools[i]
                        .as_ref()
                        .expect("flash pool minted at window entry");
                    let rank = zipf.sample(&mut self.rng);
                    return Some(ids[rank]);
                }
            }
        }
        None
    }

    /// Phase-shift a sampled core rank per any active popularity cycle.
    fn cycled_rank(&mut self, rank: usize) -> usize {
        let n = self.cfg.core_objects;
        for ev in &self.cfg.events {
            if let DriftEvent::PopularityCycle { period, amplitude } = *ev {
                let phase = (self.tick % period) as f64 / period as f64;
                let p = amplitude * 0.5 * (1.0 - (std::f64::consts::TAU * phase).cos());
                if p > 0.0 && self.rng.chance(p) {
                    return (rank + n / 2) % n;
                }
            }
        }
        rank
    }

    fn advance_wall(&mut self) {
        let day_frac = self.wall_secs / 86_400.0;
        let rate = self.cfg.requests_per_sec
            * (1.0 + self.cfg.diurnal_amplitude * (std::f64::consts::TAU * day_frac).sin());
        self.wall_secs += 1.0 / rate.max(1e-9);
    }

    fn base_size(&self, id: u64) -> u64 {
        self.cfg.size_model.size_of(id, self.cfg.seed)
    }

    fn wonder_size(&self, id: u64) -> u64 {
        let s = (self.base_size(id) as f64 * self.cfg.wonder_size_factor) as u64;
        s.clamp(self.cfg.size_model.min, self.cfg.size_model.max)
    }

    fn next_object(&mut self) -> (u64, u64) {
        // Due burst accesses take priority (they model tight temporal
        // correlation a probability mix cannot express).
        if let Some(&Reverse((due, slot))) = self.burst_queue.peek() {
            if due <= self.tick {
                self.burst_queue.pop();
                let id = self.bursts[slot].id;
                self.bursts[slot].remaining -= 1;
                if self.bursts[slot].remaining > 0 {
                    let gap = self.sample_gap();
                    self.burst_queue.push(Reverse((self.tick + gap, slot)));
                } else {
                    self.free_burst_slots.push(slot);
                }
                return (id, self.base_size(id));
            }
        }
        // An open flash-crowd window preempts the stationary mix for its
        // share of requests — that is the point of a flash crowd.
        if let Some(id) = self.flash_object() {
            return (id, self.base_size(id));
        }
        let u = self.rng.f64();
        if u < self.cfg.one_hit_fraction {
            let id = self.fresh_id();
            (id, self.wonder_size(id))
        } else if u < self.cfg.one_hit_fraction + self.cfg.burst_start_prob {
            let id = self.start_burst();
            (id, self.base_size(id))
        } else {
            let rank = self.zipf.sample(&mut self.rng);
            let rank = self.cycled_rank(rank);
            let id = self.rank_to_id[rank];
            (id, self.base_size(id))
        }
    }
}

impl Iterator for TraceGenerator {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        if self.tick >= self.cfg.requests {
            return None;
        }
        if self.tick >= self.next_drift {
            self.drift();
            self.next_drift += self.cfg.drift_interval;
        }
        if !self.cfg.events.is_empty() {
            self.apply_events();
        }
        let (id, size) = self.next_object();
        let req = Request {
            tick: self.tick,
            id: id.into(),
            size,
            wall_secs: self.wall_secs,
        };
        self.tick += 1;
        self.advance_wall();
        Some(req)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.cfg.requests - self.tick) as usize;
        (rem, Some(rem))
    }
}

/// Named degenerate traces for robustness testing, parameterised by the
/// byte capacity the replaying cache will use.
///
/// Each entry stresses a boundary real CDN traces hit but Zipf-shaped
/// generators rarely produce: an empty trace, a single hot object, an
/// all-unique ZRO storm (every request a compulsory miss — the workload
/// that starves SCIP's ghost lists), one key hammered forever, objects
/// exactly as large as the cache, objects strictly larger (up to
/// `u64::MAX`), zero-byte objects, and a mix that interleaves all of the
/// above with duplicate keys. Sizes are fixed per id, matching the
/// generator's contract.
pub fn degenerate_corpus(capacity: u64) -> Vec<(&'static str, Vec<Request>)> {
    let req = |tick: u64, id: u64, size: u64| Request {
        tick,
        id: id.into(),
        size,
        wall_secs: tick as f64 * 1e-3,
    };
    let mut corpus: Vec<(&'static str, Vec<Request>)> = Vec::new();

    corpus.push(("empty", Vec::new()));

    corpus.push((
        "single-object",
        (0..200).map(|t| req(t, 1, capacity / 2 + 1)).collect(),
    ));

    // Every request a brand-new id: nothing ever re-referenced, every
    // ghost entry wasted — the zero-reuse storm of the paper's ZRO story.
    corpus.push((
        "zro-storm-all-unique",
        (0..10_000).map(|t| req(t, t + 10, 1 + t % 97)).collect(),
    ));

    corpus.push((
        "all-same-key",
        (0..10_000).map(|t| req(t, 42, 1 + capacity / 8)).collect(),
    ));

    // Objects exactly as large as the cache: admissible, but every insert
    // evicts everything else.
    corpus.push((
        "max-size",
        (0..100).map(|t| req(t, 100 + t % 3, capacity)).collect(),
    ));

    // Strictly larger than the cache, up to u64::MAX: must be uniformly
    // Rejected(TooLarge) and must never wrap the size ledger.
    corpus.push((
        "oversized",
        (0..100)
            .map(|t| {
                let size = match t % 3 {
                    0 => capacity.saturating_add(1),
                    1 => u64::MAX / 2,
                    _ => u64::MAX,
                };
                req(t, 200 + t % 3, size)
            })
            .collect(),
    ));

    corpus.push((
        "zero-size",
        (0..5_000).map(|t| req(t, 300 + t % 7, 0)).collect(),
    ));

    // Everything at once: duplicates, zero sizes, boundary sizes and
    // oversized ids interleaved so rejections land mid-stream.
    corpus.push((
        "mixed-adversarial",
        (0..5_000)
            .map(|t| {
                let (id, size) = match t % 6 {
                    0 => (400, 0),
                    1 => (401, 1),
                    2 => (402, capacity),
                    3 => (403, capacity.saturating_add(1)),
                    4 => (404, u64::MAX),
                    // Size derived from the id so repeats keep their size.
                    _ => (405 + t % 11, 1 + (405 + t % 11) % 13),
                };
                req(t, id, size)
            })
            .collect(),
    ));

    corpus
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdn_cache::FxHashMap;

    fn small_cfg() -> GeneratorConfig {
        GeneratorConfig {
            requests: 50_000,
            core_objects: 5_000,
            ..GeneratorConfig::default()
        }
    }

    #[test]
    fn deterministic() {
        let a = TraceGenerator::generate(small_cfg());
        let b = TraceGenerator::generate(small_cfg());
        assert_eq!(a, b);
        let mut c = small_cfg();
        c.seed = 99;
        assert_ne!(a, TraceGenerator::generate(c));
    }

    #[test]
    fn emits_exact_count_with_monotone_ticks_and_wall() {
        let t = TraceGenerator::generate(small_cfg());
        assert_eq!(t.len(), 50_000);
        for (i, r) in t.iter().enumerate() {
            assert_eq!(r.tick, i as u64);
        }
        for w in t.windows(2) {
            assert!(w[1].wall_secs > w[0].wall_secs);
        }
    }

    #[test]
    fn sizes_stable_per_object() {
        let t = TraceGenerator::generate(small_cfg());
        let mut seen: FxHashMap<u64, u64> = FxHashMap::default();
        for r in &t {
            let prev = seen.insert(r.id.0, r.size);
            if let Some(p) = prev {
                assert_eq!(p, r.size, "object {} changed size", r.id);
            }
        }
    }

    #[test]
    fn one_hit_fraction_controls_uniques() {
        let mut lo = small_cfg();
        lo.one_hit_fraction = 0.01;
        let mut hi = small_cfg();
        hi.one_hit_fraction = 0.5;
        let uniq = |t: &[Request]| {
            let mut s = cdn_cache::FxHashSet::default();
            for r in t {
                s.insert(r.id);
            }
            s.len()
        };
        let ulo = uniq(&TraceGenerator::generate(lo));
        let uhi = uniq(&TraceGenerator::generate(hi));
        assert!(uhi > 2 * ulo, "uniques: hi {uhi} vs lo {ulo}");
    }

    #[test]
    fn bursts_reaccess_within_short_gaps() {
        let mut cfg = small_cfg();
        cfg.burst_start_prob = 0.05;
        cfg.burst_len_mean = 5.0;
        cfg.burst_gap_mean = 50.0;
        cfg.one_hit_fraction = 0.0;
        let t = TraceGenerator::generate(cfg.clone());
        // Count accesses to non-core ids (burst ids): mean accesses should
        // approach burst_len_mean.
        let mut counts: FxHashMap<u64, u32> = FxHashMap::default();
        for r in &t {
            if r.id.0 >= cfg.core_objects as u64 {
                *counts.entry(r.id.0).or_insert(0) += 1;
            }
        }
        assert!(!counts.is_empty());
        let mean = counts.values().map(|&c| c as f64).sum::<f64>() / counts.len() as f64;
        assert!(
            (mean - cfg.burst_len_mean).abs() < 1.5,
            "mean burst length {mean}"
        );
    }

    #[test]
    fn drift_introduces_new_ids_over_time() {
        let mut cfg = small_cfg();
        cfg.drift_interval = 5_000;
        cfg.drift_fraction = 0.05;
        cfg.one_hit_fraction = 0.0;
        cfg.burst_start_prob = 0.0;
        let t = TraceGenerator::generate(cfg.clone());
        let fresh = t
            .iter()
            .filter(|r| r.id.0 >= cfg.core_objects as u64)
            .count();
        assert!(fresh > 0, "drift should surface fresh ids");
    }

    #[test]
    fn no_drift_when_disabled() {
        let mut cfg = small_cfg();
        cfg.drift_interval = 0;
        cfg.one_hit_fraction = 0.0;
        cfg.burst_start_prob = 0.0;
        let t = TraceGenerator::generate(cfg.clone());
        assert!(t.iter().all(|r| r.id.0 < cfg.core_objects as u64));
    }

    #[test]
    fn size_hint_exact() {
        let mut g = TraceGenerator::new(small_cfg());
        assert_eq!(g.size_hint(), (50_000, Some(50_000)));
        g.next();
        assert_eq!(g.size_hint(), (49_999, Some(49_999)));
    }

    #[test]
    fn degenerate_corpus_is_well_formed() {
        let cap = 1_000u64;
        let corpus = degenerate_corpus(cap);
        let mut names: Vec<&str> = corpus.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), corpus.len(), "duplicate trace names");
        assert!(
            corpus.iter().any(|(_, t)| t.is_empty()),
            "empty trace present"
        );
        for (name, trace) in &corpus {
            let mut sizes: FxHashMap<u64, u64> = FxHashMap::default();
            for (i, r) in trace.iter().enumerate() {
                assert_eq!(r.tick, i as u64, "{name}: ticks must be dense");
                let prev = sizes.insert(r.id.0, r.size);
                assert!(
                    prev.is_none() || prev == Some(r.size),
                    "{name}: id {} changed size",
                    r.id.0
                );
            }
        }
        let oversized = corpus
            .iter()
            .find(|(n, _)| *n == "oversized")
            .map(|(_, t)| t)
            .unwrap();
        assert!(oversized.iter().all(|r| r.size > cap));
        assert!(oversized.iter().any(|r| r.size == u64::MAX));
    }
}
