//! CDN-T / CDN-W / CDN-A workload parameterisations.
//!
//! Each profile scales to an arbitrary request count while preserving the
//! *ratios* of Table 1 — requests per unique object, object-size
//! distribution and working-set size per request — so experiments quote
//! cache sizes as fractions of the working set exactly like the paper
//! (64 GB on CDN-T = 64/1097 of the WSS).
//!
//! | paper trait            | CDN-T | CDN-W  | CDN-A |
//! |------------------------|-------|--------|-------|
//! | requests (M)           | 78.75 | 100.0  | 99.55 |
//! | unique objects (M)     | 24.71 | 2.34   | 54.43 |
//! | requests per unique    | 3.19  | 42.7   | 1.83  |
//! | mean size (KB)         | 44.56 | 35.07  | 31.21 |
//! | max size               | 20 MB | 674 MB | 8 MB  |
//! | working set (GB)       | 1097  | 327    | 1580  |
//!
//! CDN-A is a photo store (massive one-hit-wonder share), CDN-W is a
//! popularity-concentrated wiki/media trace with bursty items (highest
//! P-ZRO share in the paper, 21.7 % of hits), CDN-T sits in between.

use crate::gen::{DriftEvent, GeneratorConfig};
use crate::sizes::SizeModel;

/// The three evaluation workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// Tencent TDC image CDN analog.
    CdnT,
    /// Wiki/media CDN analog (LRB's trace).
    CdnW,
    /// Tencent photo-store analog (ICS'18 trace).
    CdnA,
}

impl Workload {
    /// All three, in paper order.
    pub const ALL: [Workload; 3] = [Workload::CdnT, Workload::CdnW, Workload::CdnA];

    /// Paper's name for the workload.
    pub fn name(self) -> &'static str {
        match self {
            Workload::CdnT => "CDN-T",
            Workload::CdnW => "CDN-W",
            Workload::CdnA => "CDN-A",
        }
    }

    /// The profile behind this workload.
    pub fn profile(self) -> WorkloadProfile {
        match self {
            Workload::CdnT => WorkloadProfile::cdn_t(),
            Workload::CdnW => WorkloadProfile::cdn_w(),
            Workload::CdnA => WorkloadProfile::cdn_a(),
        }
    }

    /// Working-set size (`X` in the paper's figures), in GB, of the paper's
    /// original trace. Used to translate absolute paper cache sizes into
    /// WSS fractions.
    pub fn paper_wss_gb(self) -> f64 {
        match self {
            Workload::CdnT => 1097.0,
            Workload::CdnW => 327.0,
            Workload::CdnA => 1580.0,
        }
    }

    /// The WSS fraction corresponding to a paper cache size in GB
    /// (e.g. `paper_cache_fraction(64.0)` for the 64 GB figures).
    pub fn paper_cache_fraction(self, cache_gb: f64) -> f64 {
        cache_gb / self.paper_wss_gb()
    }
}

/// Scalable generator parameterisation of one workload.
#[derive(Debug, Clone)]
pub struct WorkloadProfile {
    /// Paper name.
    pub name: &'static str,
    /// Core pool size as a fraction of total requests.
    pub core_frac: f64,
    /// Zipf exponent.
    pub zipf_s: f64,
    /// One-hit-wonder request fraction.
    pub one_hit_fraction: f64,
    /// Burst start probability per request.
    pub burst_start_prob: f64,
    /// Mean burst length.
    pub burst_len_mean: f64,
    /// Mean intra-burst gap in requests, as a fraction of total requests.
    pub burst_gap_frac: f64,
    /// Drift period as a fraction of total requests (0 = off).
    pub drift_interval_frac: f64,
    /// Fraction of core ranks remapped per drift.
    pub drift_fraction: f64,
    /// Size distribution.
    pub size_model: SizeModel,
    /// One-hit-wonder size multiplier (size↔reuse anticorrelation).
    pub wonder_size_factor: f64,
    /// Base request rate (requests/second) at the paper's traffic scale.
    pub requests_per_sec: f64,
}

impl WorkloadProfile {
    /// CDN-T: ~3.2 requests per unique object, 44.6 KB mean size.
    pub fn cdn_t() -> Self {
        WorkloadProfile {
            name: "CDN-T",
            core_frac: 0.09,
            zipf_s: 0.80,
            one_hit_fraction: 0.18,
            burst_start_prob: 0.010,
            burst_len_mean: 5.0,
            burst_gap_frac: 0.0008,
            drift_interval_frac: 0.02,
            drift_fraction: 0.03,
            size_model: SizeModel::lognormal(7_500.0, 1.30)
                .with_tail(0.002, 1.7, 1 << 20)
                .clamped(2, 19_970_000),
            wonder_size_factor: 3.0,
            requests_per_sec: 12_000.0,
        }
    }

    /// CDN-W: ~43 requests per unique object, burstiest (highest P-ZRO share).
    pub fn cdn_w() -> Self {
        WorkloadProfile {
            name: "CDN-W",
            core_frac: 0.010,
            zipf_s: 0.85,
            one_hit_fraction: 0.004,
            burst_start_prob: 0.006,
            burst_len_mean: 12.0,
            burst_gap_frac: 0.0005,
            drift_interval_frac: 0.04,
            drift_fraction: 0.04,
            size_model: SizeModel::lognormal(6_000.0, 1.30)
                .with_tail(0.0002, 1.5, 10 << 20)
                .clamped(10, 674_380_000),
            wonder_size_factor: 7.0,
            requests_per_sec: 15_000.0,
        }
    }

    /// CDN-A: ~1.8 requests per unique object (photo store, ZRO-dominated).
    pub fn cdn_a() -> Self {
        WorkloadProfile {
            name: "CDN-A",
            core_frac: 0.09,
            zipf_s: 0.72,
            one_hit_fraction: 0.42,
            burst_start_prob: 0.018,
            burst_len_mean: 3.0,
            burst_gap_frac: 0.001,
            drift_interval_frac: 0.02,
            drift_fraction: 0.03,
            size_model: SizeModel::lognormal(7_000.0, 1.20)
                .with_tail(0.0007, 1.8, 1 << 20)
                .clamped(2, 7_990_000),
            wonder_size_factor: 2.5,
            requests_per_sec: 15_000.0,
        }
    }

    /// Concrete generator configuration at `requests` scale.
    pub fn config(&self, requests: u64, seed: u64) -> GeneratorConfig {
        GeneratorConfig {
            requests,
            core_objects: ((requests as f64 * self.core_frac) as usize).max(1_000),
            zipf_s: self.zipf_s,
            one_hit_fraction: self.one_hit_fraction,
            burst_start_prob: self.burst_start_prob,
            burst_len_mean: self.burst_len_mean,
            burst_gap_mean: (requests as f64 * self.burst_gap_frac).max(10.0),
            drift_interval: (requests as f64 * self.drift_interval_frac) as u64,
            drift_fraction: self.drift_fraction,
            size_model: self.size_model,
            wonder_size_factor: self.wonder_size_factor,
            requests_per_sec: self.requests_per_sec,
            diurnal_amplitude: 0.4,
            events: Vec::new(),
            seed,
        }
    }

    /// `config(requests, seed)` with a scheduled [`DriftEvent`] overlay.
    pub fn config_with_events(
        &self,
        requests: u64,
        seed: u64,
        events: Vec<DriftEvent>,
    ) -> GeneratorConfig {
        GeneratorConfig {
            events,
            ..self.config(requests, seed)
        }
    }
}

/// The drift corpus: named nonstationary CDN-T variants used by the
/// routing chaos gates and the drift-generator test suite. Each entry
/// pins its drift to exact ticks so a chaos schedule can place shard
/// kills *inside* the disturbance (DESIGN.md §18):
///
/// - `flash-crowd` — a crowd window over the middle half of the trace,
///   sending half of all requests to 64 brand-new objects.
/// - `ws-rotation` — the hottest half of the core rotated to fresh ids at
///   the midpoint (catalog refresh).
/// - `diurnal-cycle` — popularity mass oscillating between core halves,
///   one full cycle over the trace.
pub fn drift_corpus(requests: u64, seed: u64) -> Vec<(&'static str, GeneratorConfig)> {
    let p = Workload::CdnT.profile();
    vec![
        (
            "flash-crowd",
            p.config_with_events(requests, seed, vec![flash_crowd_window(requests)]),
        ),
        (
            "ws-rotation",
            p.config_with_events(
                requests,
                seed,
                vec![DriftEvent::WorkingSetRotation {
                    at: requests / 2,
                    fraction: 0.5,
                }],
            ),
        ),
        (
            "diurnal-cycle",
            p.config_with_events(
                requests,
                seed,
                vec![DriftEvent::PopularityCycle {
                    period: requests.max(2),
                    amplitude: 0.8,
                }],
            ),
        ),
    ]
}

/// The canonical flash-crowd window over `requests`: open on the middle
/// half (`[n/4, 3n/4)`), crowd share 0.5, 64 crowd objects. Exposed so
/// the chaos binary can compute which trace slice is "inside the flash
/// crowd" without re-deriving the constants.
pub fn flash_crowd_window(requests: u64) -> DriftEvent {
    DriftEvent::FlashCrowd {
        start: requests / 4,
        duration: (requests / 2).max(1),
        share: 0.5,
        objects: 64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::TraceGenerator;
    use crate::stats::TraceStats;

    fn stats_for(w: Workload, requests: u64) -> TraceStats {
        let cfg = w.profile().config(requests, 7);
        let trace = TraceGenerator::generate(cfg);
        TraceStats::compute(&trace)
    }

    #[test]
    fn cdn_t_ratios_match_table1() {
        let s = stats_for(Workload::CdnT, 300_000);
        let ratio = s.total_requests as f64 / s.unique_objects as f64;
        // Paper: 3.19 requests per unique object.
        assert!((2.4..4.2).contains(&ratio), "CDN-T req/uniq {ratio}");
        let mean_kb = s.mean_size_bytes() / 1024.0;
        assert!(
            (30.0..62.0).contains(&mean_kb),
            "CDN-T mean size {mean_kb} KB"
        );
    }

    #[test]
    fn cdn_w_ratios_match_table1() {
        let s = stats_for(Workload::CdnW, 300_000);
        let ratio = s.total_requests as f64 / s.unique_objects as f64;
        // Paper: 42.7.
        assert!((25.0..60.0).contains(&ratio), "CDN-W req/uniq {ratio}");
        let mean_kb = s.mean_size_bytes() / 1024.0;
        assert!(
            (20.0..55.0).contains(&mean_kb),
            "CDN-W mean size {mean_kb} KB"
        );
    }

    #[test]
    fn cdn_a_ratios_match_table1() {
        let s = stats_for(Workload::CdnA, 300_000);
        let ratio = s.total_requests as f64 / s.unique_objects as f64;
        // Paper: 1.83.
        assert!((1.4..2.4).contains(&ratio), "CDN-A req/uniq {ratio}");
        let mean_kb = s.mean_size_bytes() / 1024.0;
        assert!(
            (20.0..45.0).contains(&mean_kb),
            "CDN-A mean size {mean_kb} KB"
        );
    }

    #[test]
    fn workload_ordering_of_uniques() {
        // CDN-A most unique objects, CDN-W fewest — as in Table 1.
        let t = stats_for(Workload::CdnT, 200_000).unique_objects;
        let w = stats_for(Workload::CdnW, 200_000).unique_objects;
        let a = stats_for(Workload::CdnA, 200_000).unique_objects;
        assert!(a > t && t > w, "uniques A={a} T={t} W={w}");
    }

    #[test]
    fn paper_cache_fraction_sane() {
        let f = Workload::CdnT.paper_cache_fraction(64.0);
        assert!((f - 64.0 / 1097.0).abs() < 1e-12);
        assert!(Workload::CdnW.paper_cache_fraction(64.0) > f);
    }

    #[test]
    fn names_roundtrip() {
        for w in Workload::ALL {
            assert_eq!(w.profile().name, w.name());
        }
    }
}
