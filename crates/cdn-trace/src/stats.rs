//! Table-1 style trace statistics.

use std::fmt;

use cdn_cache::{FxHashMap, Request};

/// Summary statistics of a trace (the paper's Table 1 row set).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceStats {
    /// Total requests.
    pub total_requests: u64,
    /// Distinct object ids.
    pub unique_objects: u64,
    /// Largest object size, bytes.
    pub max_size: u64,
    /// Smallest object size, bytes.
    pub min_size: u64,
    /// Sum of requested bytes (over all requests).
    pub total_bytes: u64,
    /// Working-set size: sum of unique objects' sizes, bytes.
    pub wss_bytes: u64,
}

impl TraceStats {
    /// Compute statistics in one pass.
    pub fn compute(trace: &[Request]) -> Self {
        let mut sizes: FxHashMap<u64, u64> = FxHashMap::default();
        let mut max_size = 0u64;
        let mut min_size = u64::MAX;
        let mut total_bytes = 0u64;
        for r in trace {
            sizes.entry(r.id.0).or_insert(r.size);
            max_size = max_size.max(r.size);
            min_size = min_size.min(r.size);
            total_bytes += r.size;
        }
        let wss_bytes: u64 = sizes.values().sum();
        TraceStats {
            total_requests: trace.len() as u64,
            unique_objects: sizes.len() as u64,
            max_size,
            min_size: if trace.is_empty() { 0 } else { min_size },
            total_bytes,
            wss_bytes,
        }
    }

    /// Mean size over *unique objects*, bytes (Table 1's "Mean Object Size").
    pub fn mean_size_bytes(&self) -> f64 {
        if self.unique_objects == 0 {
            0.0
        } else {
            self.wss_bytes as f64 / self.unique_objects as f64
        }
    }

    /// Requests per unique object.
    pub fn requests_per_object(&self) -> f64 {
        if self.unique_objects == 0 {
            0.0
        } else {
            self.total_requests as f64 / self.unique_objects as f64
        }
    }

    /// Working-set size in GB.
    pub fn wss_gb(&self) -> f64 {
        self.wss_bytes as f64 / 1e9
    }

    /// A cache capacity in bytes for a given fraction of this trace's WSS.
    pub fn cache_bytes_for_fraction(&self, fraction: f64) -> u64 {
        assert!(fraction > 0.0);
        ((self.wss_bytes as f64 * fraction) as u64).max(1)
    }
}

/// Ids of the `k` most-requested objects in `trace`, by descending
/// request count (ties broken by ascending id, so the set is a pure
/// function of the trace). Fewer than `k` when the trace has fewer
/// unique ids.
pub fn top_k_ids(trace: &[Request], k: usize) -> Vec<u64> {
    let mut counts: FxHashMap<u64, u64> = FxHashMap::default();
    for r in trace {
        *counts.entry(r.id.0).or_insert(0) += 1;
    }
    let mut by_count: Vec<(u64, u64)> = counts.into_iter().collect();
    by_count.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    by_count.truncate(k);
    by_count.into_iter().map(|(id, _)| id).collect()
}

/// Overlap of the top-`k` hot sets of two trace slices, as a fraction of
/// `k`: 1.0 = identical hot sets, 0.0 = disjoint. The drift suite uses
/// this across a rotation boundary (overlap collapses) and across an
/// arbitrary stationary split (overlap stays high).
pub fn hot_set_overlap(a: &[Request], b: &[Request], k: usize) -> f64 {
    assert!(k > 0, "hot_set_overlap: k must be >= 1");
    let ha: cdn_cache::FxHashSet<u64> = top_k_ids(a, k).into_iter().collect();
    let shared = top_k_ids(b, k).iter().filter(|id| ha.contains(id)).count();
    shared as f64 / k as f64
}

/// Fraction of requests landing on the trace's own top-`k` ids — the
/// concentration measure the flash-crowd check gates on (a crowd window
/// funnels a large share onto a tiny pool).
pub fn top_k_share(trace: &[Request], k: usize) -> f64 {
    if trace.is_empty() {
        return 0.0;
    }
    let top: cdn_cache::FxHashSet<u64> = top_k_ids(trace, k).into_iter().collect();
    let hits = trace.iter().filter(|r| top.contains(&r.id.0)).count();
    hits as f64 / trace.len() as f64
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Total Requests        : {}", self.total_requests)?;
        writeln!(f, "Unique Objects        : {}", self.unique_objects)?;
        writeln!(
            f,
            "Max Object Size (MB)  : {:.2}",
            self.max_size as f64 / 1e6
        )?;
        writeln!(f, "Min Object Size (B)   : {}", self.min_size)?;
        writeln!(
            f,
            "Mean Object Size (KB) : {:.2}",
            self.mean_size_bytes() / 1024.0
        )?;
        write!(f, "Working Set Size (GB) : {:.2}", self.wss_gb())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdn_cache::object::micro_trace;

    #[test]
    fn basic_stats() {
        let t = micro_trace(&[(1, 100), (2, 200), (1, 100), (3, 50)]);
        let s = TraceStats::compute(&t);
        assert_eq!(s.total_requests, 4);
        assert_eq!(s.unique_objects, 3);
        assert_eq!(s.max_size, 200);
        assert_eq!(s.min_size, 50);
        assert_eq!(s.total_bytes, 450);
        assert_eq!(s.wss_bytes, 350);
        assert!((s.mean_size_bytes() - 350.0 / 3.0).abs() < 1e-9);
        assert!((s.requests_per_object() - 4.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_trace() {
        let s = TraceStats::compute(&[]);
        assert_eq!(s.total_requests, 0);
        assert_eq!(s.min_size, 0);
        assert_eq!(s.mean_size_bytes(), 0.0);
    }

    #[test]
    fn cache_fraction() {
        let t = micro_trace(&[(1, 1000)]);
        let s = TraceStats::compute(&t);
        assert_eq!(s.cache_bytes_for_fraction(0.1), 100);
        assert_eq!(s.cache_bytes_for_fraction(1.0), 1000);
    }

    #[test]
    fn display_contains_rows() {
        let t = micro_trace(&[(1, 1 << 20)]);
        let s = TraceStats::compute(&t).to_string();
        assert!(s.contains("Total Requests"));
        assert!(s.contains("Working Set Size"));
    }
}
