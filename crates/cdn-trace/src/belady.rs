//! Belady's MIN: next-access precomputation and the offline lower bound.
//!
//! Belady (1966) evicts the object whose next access is farthest in the
//! future; with full knowledge of the trace it lower-bounds every online
//! policy's miss ratio (the paper plots it in Figures 8-11 as the
//! unachievable floor). For variable-size objects we use the standard CDN
//! extension: evict farthest-next-access first until the new object fits,
//! and bypass objects with no future access at all (keeping them can never
//! produce a hit, so bypassing is optimal for the *object* miss ratio).

use std::collections::BTreeSet;

use cdn_cache::{FxHashMap, MissRatio, ObjectId, Request};

/// Sentinel "no further access" value in a next-access table.
pub const NO_NEXT: u64 = u64::MAX;

/// For each request index `i`, the index of the next request to the same
/// object, or [`NO_NEXT`]. O(n) time, one backward pass.
pub fn next_access_table(trace: &[Request]) -> Vec<u64> {
    let mut next: Vec<u64> = vec![NO_NEXT; trace.len()];
    let mut last_seen: FxHashMap<ObjectId, u64> = FxHashMap::default();
    for (i, r) in trace.iter().enumerate().rev() {
        if let Some(&j) = last_seen.get(&r.id) {
            next[i] = j;
        }
        last_seen.insert(r.id, i as u64);
    }
    next
}

/// Offline Belady MIN replay over a trace.
#[derive(Debug)]
pub struct BeladyOracle {
    capacity: u64,
    used: u64,
    /// (next_access, id) ordered so the farthest future is the last element.
    by_next: BTreeSet<(u64, ObjectId)>,
    resident: FxHashMap<ObjectId, (u64, u64)>, // id -> (next_access, size)
}

impl BeladyOracle {
    /// Oracle with the given byte capacity.
    pub fn new(capacity: u64) -> Self {
        BeladyOracle {
            capacity,
            used: 0,
            by_next: BTreeSet::new(),
            resident: FxHashMap::default(),
        }
    }

    /// Process one request with its precomputed next access; returns hit.
    pub fn access(&mut self, req: &Request, next_access: u64) -> bool {
        if let Some(&(old_next, size)) = self.resident.get(&req.id) {
            // Hit: re-key to the new next access.
            self.by_next.remove(&(old_next, req.id));
            if next_access == NO_NEXT {
                // No future use: free the space immediately (optimal).
                self.resident.remove(&req.id);
                self.used -= size;
            } else {
                self.by_next.insert((next_access, req.id));
                self.resident.insert(req.id, (next_access, size));
            }
            return true;
        }
        // Miss. Bypass objects that are never requested again or too big.
        if next_access == NO_NEXT || req.size > self.capacity {
            return false;
        }
        // Evict farthest-future objects until the new one fits, but never
        // evict an object whose next access is *sooner* than the incoming
        // one's (keeping those dominates admitting the newcomer).
        while self.used.saturating_add(req.size) > self.capacity {
            let &(far_next, victim) = self.by_next.iter().next_back().expect("over capacity");
            if far_next <= next_access {
                // Everything resident is more urgent: bypass the newcomer.
                return false;
            }
            self.by_next.remove(&(far_next, victim));
            let (_, vsize) = self.resident.remove(&victim).expect("resident");
            self.used -= vsize;
        }
        self.by_next.insert((next_access, req.id));
        self.resident.insert(req.id, (next_access, req.size));
        self.used += req.size;
        false
    }

    /// Bytes currently resident.
    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    /// Replay an entire trace and return its object miss ratio.
    pub fn run(trace: &[Request], capacity: u64) -> f64 {
        let next = next_access_table(trace);
        let mut oracle = BeladyOracle::new(capacity);
        let mut m = MissRatio::new();
        for (i, r) in trace.iter().enumerate() {
            if oracle.access(r, next[i]) {
                m.record_hit(r.size);
            } else {
                m.record_miss(r.size);
            }
        }
        m.miss_ratio()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdn_cache::object::micro_trace;
    use cdn_cache::SimRng;

    #[test]
    fn next_access_table_basics() {
        let t = micro_trace(&[(1, 1), (2, 1), (1, 1), (1, 1)]);
        let n = next_access_table(&t);
        assert_eq!(n, vec![2, NO_NEXT, 3, NO_NEXT]);
    }

    #[test]
    fn classic_belady_example() {
        // Sequence 1 2 3 1 2 3 with capacity 2 (unit sizes):
        // MIN keeps {1,2} through t=4 by never admitting 3 (its reuse is
        // farther), giving hits at t=3 and t=4: miss ratio 4/6.
        let t = micro_trace(&[(1, 1), (2, 1), (3, 1), (1, 1), (2, 1), (3, 1)]);
        let mr = BeladyOracle::run(&t, 2);
        assert!((mr - 4.0 / 6.0).abs() < 1e-12, "mr {mr}");
    }

    #[test]
    fn no_future_objects_bypass() {
        let t = micro_trace(&[(1, 1), (2, 1), (1, 1)]);
        let next = next_access_table(&t);
        let mut o = BeladyOracle::new(1);
        assert!(!o.access(&t[0], next[0])); // 1 admitted (future at 2)
        assert!(!o.access(&t[1], next[1])); // 2 bypassed (no future)
        assert!(o.access(&t[2], next[2])); // 1 hits
        assert_eq!(o.used_bytes(), 0); // final access had no future: freed
    }

    #[test]
    fn belady_lower_bounds_lru_on_random_traces() {
        let mut rng = SimRng::new(5);
        for _ in 0..10 {
            let trace: Vec<_> = (0..2000)
                .map(|t| cdn_cache::Request::new(t, rng.u64_below(50), 1 + rng.u64_below(100)))
                .collect();
            let cap = 500;
            let belady = BeladyOracle::run(&trace, cap);
            // Plain LRU replay.
            let mut cache = cdn_cache::LruQueue::new(cap);
            let mut m = MissRatio::new();
            for r in &trace {
                if cache.contains(r.id) {
                    m.record_hit(r.size);
                    cache.record_hit(r.id, r.tick);
                    cache.promote_to_mru(r.id);
                } else {
                    m.record_miss(r.size);
                    if !cache.admissible(r.size) {
                        continue;
                    }
                    while cache.needs_eviction_for(r.size) {
                        cache.evict_lru();
                    }
                    cache.insert_mru(r.id, r.size, r.tick);
                }
            }
            assert!(
                belady <= m.miss_ratio() + 1e-9,
                "belady {belady} > lru {}",
                m.miss_ratio()
            );
        }
    }

    #[test]
    fn belady_optimal_on_tiny_traces_vs_brute_force() {
        // Exhaustively verify MIN is a lower bound on every possible online
        // eviction schedule for tiny unit-size traces: compare against the
        // best of all "evict one of the residents" decision trees.
        fn best_hits(trace: &[(u64, u64)], i: usize, cache: &mut Vec<u64>, cap: usize) -> u32 {
            if i == trace.len() {
                return 0;
            }
            let (id, _) = trace[i];
            if cache.contains(&id) {
                return 1 + best_hits(trace, i + 1, cache, cap);
            }
            // Option A: bypass.
            let mut best = best_hits(trace, i + 1, cache, cap);
            // Option B: admit (evicting each possible victim if full).
            if cache.len() < cap {
                cache.push(id);
                best = best.max(best_hits(trace, i + 1, cache, cap));
                cache.pop();
            } else {
                for v in 0..cache.len() {
                    let old = cache[v];
                    cache[v] = id;
                    best = best.max(best_hits(trace, i + 1, cache, cap));
                    cache[v] = old;
                }
            }
            best
        }

        let mut rng = SimRng::new(11);
        for _ in 0..20 {
            let pairs: Vec<(u64, u64)> = (0..10).map(|_| (rng.u64_below(4), 1)).collect();
            let t = micro_trace(&pairs);
            let belady_mr = BeladyOracle::run(&t, 2);
            let opt_hits = best_hits(&pairs, 0, &mut Vec::new(), 2);
            let opt_mr = 1.0 - opt_hits as f64 / pairs.len() as f64;
            assert!(
                (belady_mr - opt_mr).abs() < 1e-9,
                "belady {belady_mr} vs brute-force optimum {opt_mr} on {pairs:?}"
            );
        }
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut rng = SimRng::new(13);
        let trace: Vec<_> = (0..3000)
            .map(|t| cdn_cache::Request::new(t, rng.u64_below(100), 1 + rng.u64_below(300)))
            .collect();
        let next = next_access_table(&trace);
        let mut o = BeladyOracle::new(1000);
        for (i, r) in trace.iter().enumerate() {
            o.access(r, next[i]);
            assert!(o.used_bytes() <= 1000);
        }
    }
}
