//! Offline ZRO / P-ZRO labeling by LRU replay, and oracle placement.
//!
//! Definitions (paper §1-§2), all relative to an LRU replay at a fixed
//! cache size:
//!
//! - a **ZRO event** is a *miss* whose resulting residency ends with zero
//!   hits — the inserted object was never reused while cached;
//! - an **A-ZRO** is a ZRO event whose object is requested again *after*
//!   that residency's eviction (the object is not permanently cold);
//! - a **P-ZRO event** is a *hit* after which the object receives no
//!   further hit before eviction — i.e. the final hit of a residency;
//! - an **A-P-ZRO** is a P-ZRO event whose object is requested again after
//!   eviction.
//!
//! Residencies still open at end-of-trace are treated as evicted at the
//! trace end (their ZRO/P-ZRO status is decided by what was observed; they
//! can never be A-*).
//!
//! [`oracle_replay`] re-runs LRU but places a chosen fraction of labeled
//! ZRO insertions and/or P-ZRO promotions at the LRU position — exactly the
//! experiment behind Figure 1's slashed bars and Figure 3's curves.

use cdn_cache::{FxHashMap, LruQueue, MissRatio, ObjectId, Request};

/// Per-request classification from the labeling replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestLabel {
    /// Miss whose residency got at least one hit.
    MissReused,
    /// Miss whose residency ended hitless (ZRO). `reaccessed` marks A-ZRO.
    MissZro {
        /// True when the object is requested again after eviction (A-ZRO).
        reaccessed: bool,
    },
    /// Hit followed by another hit in the same residency.
    HitReused,
    /// Final hit of a residency (P-ZRO). `reaccessed` marks A-P-ZRO.
    HitPZro {
        /// True when the object is requested again after eviction (A-P-ZRO).
        reaccessed: bool,
    },
    /// Miss on an object larger than the cache (never admitted).
    Inadmissible,
}

impl RequestLabel {
    /// Is this any kind of miss?
    pub fn is_miss(self) -> bool {
        matches!(
            self,
            RequestLabel::MissReused | RequestLabel::MissZro { .. } | RequestLabel::Inadmissible
        )
    }

    /// Is this a ZRO-labeled miss?
    pub fn is_zro(self) -> bool {
        matches!(self, RequestLabel::MissZro { .. })
    }

    /// Is this a P-ZRO-labeled hit?
    pub fn is_pzro(self) -> bool {
        matches!(self, RequestLabel::HitPZro { .. })
    }
}

/// Aggregate label counts (Figure 1's bar heights).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LabelSummary {
    /// Total requests.
    pub requests: u64,
    /// Total misses (including inadmissible).
    pub misses: u64,
    /// Total hits.
    pub hits: u64,
    /// ZRO events.
    pub zro: u64,
    /// A-ZRO events (subset of `zro`).
    pub azro: u64,
    /// P-ZRO events.
    pub pzro: u64,
    /// A-P-ZRO events (subset of `pzro`).
    pub apzro: u64,
}

impl LabelSummary {
    /// ZRO share of missing objects — Figure 1(a).
    pub fn zro_of_misses(&self) -> f64 {
        ratio(self.zro, self.misses)
    }

    /// A-ZRO share of ZROs — Figure 1(c).
    pub fn azro_of_zros(&self) -> f64 {
        ratio(self.azro, self.zro)
    }

    /// P-ZRO share of hit objects — Figure 1(d).
    pub fn pzro_of_hits(&self) -> f64 {
        ratio(self.pzro, self.hits)
    }

    /// A-P-ZRO share of P-ZROs — Figure 1(f).
    pub fn apzro_of_pzros(&self) -> f64 {
        ratio(self.apzro, self.pzro)
    }

    /// LRU miss ratio of the labeling replay.
    pub fn miss_ratio(&self) -> f64 {
        ratio(self.misses, self.requests)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Labels for a whole trace.
#[derive(Debug, Clone)]
pub struct TraceLabels {
    /// One label per request, aligned with the trace.
    pub labels: Vec<RequestLabel>,
    /// Aggregate counts.
    pub summary: LabelSummary,
}

/// Replay `trace` through LRU at `cache_bytes` and label every request.
pub fn label_trace(trace: &[Request], cache_bytes: u64) -> TraceLabels {
    // Last request index per object, to decide A-ZRO / A-P-ZRO.
    let mut last_req: FxHashMap<ObjectId, u64> = FxHashMap::default();
    for r in trace {
        last_req.insert(r.id, r.tick);
    }

    let mut labels = vec![RequestLabel::MissReused; trace.len()];
    let mut summary = LabelSummary {
        requests: trace.len() as u64,
        ..LabelSummary::default()
    };
    let mut cache = LruQueue::new(cache_bytes);

    // Close a residency: decide the ZRO/P-ZRO label of its defining event.
    // `evict_tick` of None means the residency survived to end-of-trace.
    let close = |meta: &cdn_cache::EntryMeta,
                 evict_tick: Option<u64>,
                 labels: &mut Vec<RequestLabel>,
                 summary: &mut LabelSummary| {
        let reaccessed = match evict_tick {
            Some(t) => last_req.get(&meta.id).is_some_and(|&last| last > t),
            None => false,
        };
        if meta.hits == 0 {
            labels[meta.inserted_tick as usize] = RequestLabel::MissZro { reaccessed };
            summary.zro += 1;
            if reaccessed {
                summary.azro += 1;
            }
        } else {
            labels[meta.last_access as usize] = RequestLabel::HitPZro { reaccessed };
            summary.pzro += 1;
            if reaccessed {
                summary.apzro += 1;
            }
        }
    };

    for r in trace {
        if cache.contains(r.id) {
            summary.hits += 1;
            labels[r.tick as usize] = RequestLabel::HitReused; // may be relabeled at close
            cache.record_hit(r.id, r.tick);
            cache.promote_to_mru(r.id);
        } else {
            summary.misses += 1;
            if !cache.admissible(r.size) {
                labels[r.tick as usize] = RequestLabel::Inadmissible;
                continue;
            }
            labels[r.tick as usize] = RequestLabel::MissReused; // may be relabeled at close
            while cache.needs_eviction_for(r.size) {
                let victim = cache.evict_lru().expect("needs_eviction implies nonempty");
                close(&victim, Some(r.tick), &mut labels, &mut summary);
            }
            cache.insert_mru(r.id, r.size, r.tick);
        }
    }
    // Close residencies still open at end of trace.
    let residents: Vec<cdn_cache::EntryMeta> = cache.iter().collect();
    for meta in residents {
        close(&meta, None, &mut labels, &mut summary);
    }

    TraceLabels { labels, summary }
}

/// Which label classes the oracle replay treats (Figure 3's three curves).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleTreatment {
    /// Place labeled ZRO insertions at the LRU position.
    Zro,
    /// Place labeled P-ZRO promotions at the LRU position.
    PZro,
    /// Both.
    Both,
}

/// Replay LRU, but send the first `fraction` (by occurrence order) of the
/// treated label class(es) to the LRU position. Returns the replay's miss
/// ratio.
///
/// This is the paper's "theoretical" experiment: labels come from the plain
/// LRU replay, so the feedback between placement and later ZRO formation is
/// deliberately ignored (§2.2 discusses exactly this bias).
pub fn oracle_replay(
    trace: &[Request],
    labels: &TraceLabels,
    cache_bytes: u64,
    treatment: OracleTreatment,
    fraction: f64,
) -> f64 {
    assert_eq!(trace.len(), labels.labels.len(), "labels/trace mismatch");
    assert!((0.0..=1.0).contains(&fraction));
    let treat_zro = matches!(treatment, OracleTreatment::Zro | OracleTreatment::Both);
    let treat_pzro = matches!(treatment, OracleTreatment::PZro | OracleTreatment::Both);
    let zro_budget = (labels.summary.zro as f64 * fraction) as u64;
    let pzro_budget = (labels.summary.pzro as f64 * fraction) as u64;

    let mut zro_seen = 0u64;
    let mut pzro_seen = 0u64;
    let mut cache = LruQueue::new(cache_bytes);
    let mut metrics = MissRatio::new();

    for r in trace {
        let label = labels.labels[r.tick as usize];
        if cache.contains(r.id) {
            metrics.record_hit(r.size);
            cache.record_hit(r.id, r.tick);
            let demote = label.is_pzro() && treat_pzro && {
                pzro_seen += 1;
                pzro_seen <= pzro_budget
            };
            if demote {
                cache.demote_to_lru(r.id);
            } else {
                cache.promote_to_mru(r.id);
            }
        } else {
            metrics.record_miss(r.size);
            if !cache.admissible(r.size) {
                continue;
            }
            while cache.needs_eviction_for(r.size) {
                cache.evict_lru();
            }
            let to_lru = label.is_zro() && treat_zro && {
                zro_seen += 1;
                zro_seen <= zro_budget
            };
            if to_lru {
                cache.insert_lru(r.id, r.size, r.tick);
            } else {
                cache.insert_mru(r.id, r.size, r.tick);
            }
        }
    }
    metrics.miss_ratio()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdn_cache::object::micro_trace;

    // Cache of 2 unit-size objects: a classic pedagogical setting.
    const UNIT: u64 = 1;

    #[test]
    fn pure_one_hit_wonders_are_all_zro() {
        let t = micro_trace(&[(1, UNIT), (2, UNIT), (3, UNIT), (4, UNIT)]);
        let l = label_trace(&t, 2);
        assert_eq!(l.summary.misses, 4);
        assert_eq!(l.summary.zro, 4);
        assert_eq!(l.summary.azro, 0);
        assert_eq!(l.summary.pzro, 0);
        assert!(l.labels.iter().all(|lb| lb.is_zro()));
    }

    #[test]
    fn final_hit_is_pzro() {
        // 1 inserted, hit once, then displaced by 2,3.
        let t = micro_trace(&[(1, UNIT), (1, UNIT), (2, UNIT), (3, UNIT)]);
        let l = label_trace(&t, 2);
        assert_eq!(l.summary.hits, 1);
        assert_eq!(l.summary.pzro, 1);
        assert_eq!(l.labels[1], RequestLabel::HitPZro { reaccessed: false });
        // The miss at t=0 led to a residency with a hit: not a ZRO.
        assert_eq!(l.labels[0], RequestLabel::MissReused);
    }

    #[test]
    fn intermediate_hits_are_reused() {
        let t = micro_trace(&[(1, UNIT), (1, UNIT), (1, UNIT)]);
        let l = label_trace(&t, 2);
        assert_eq!(l.labels[1], RequestLabel::HitReused);
        // Final hit at t=2 closes at end-of-trace as P-ZRO.
        assert_eq!(l.labels[2], RequestLabel::HitPZro { reaccessed: false });
        assert_eq!(l.summary.pzro, 1);
    }

    #[test]
    fn azro_detected_on_reaccess_after_eviction() {
        // 1 evicted hitless by 2,3, then requested again: its first miss is
        // an A-ZRO.
        let t = micro_trace(&[(1, UNIT), (2, UNIT), (3, UNIT), (1, UNIT)]);
        let l = label_trace(&t, 2);
        assert_eq!(l.labels[0], RequestLabel::MissZro { reaccessed: true });
        assert_eq!(l.summary.azro, 1);
        assert!(l.summary.zro >= 2); // 1 (twice? second still open) + 2
    }

    #[test]
    fn apzro_detected() {
        // 1 hit (t=1), evicted by 2,3, then re-requested (t=4): the hit at
        // t=1 is an A-P-ZRO.
        let t = micro_trace(&[(1, UNIT), (1, UNIT), (2, UNIT), (3, UNIT), (1, UNIT)]);
        let l = label_trace(&t, 2);
        assert_eq!(l.labels[1], RequestLabel::HitPZro { reaccessed: true });
        assert_eq!(l.summary.apzro, 1);
    }

    #[test]
    fn inadmissible_objects_labeled() {
        let t = micro_trace(&[(1, 10)]);
        let l = label_trace(&t, 2);
        assert_eq!(l.labels[0], RequestLabel::Inadmissible);
        assert_eq!(l.summary.misses, 1);
        assert_eq!(l.summary.zro, 0);
    }

    #[test]
    fn counts_are_consistent() {
        let t = micro_trace(&[
            (1, UNIT),
            (2, UNIT),
            (1, UNIT),
            (3, UNIT),
            (4, UNIT),
            (2, UNIT),
            (1, UNIT),
        ]);
        let l = label_trace(&t, 2);
        assert_eq!(l.summary.hits + l.summary.misses, 7);
        assert!(l.summary.azro <= l.summary.zro);
        assert!(l.summary.apzro <= l.summary.pzro);
        assert!(l.summary.zro <= l.summary.misses);
        assert!(l.summary.pzro <= l.summary.hits);
    }

    #[test]
    fn oracle_zro_placement_reduces_misses() {
        // ZRO-heavy stream with a stable pair of hot objects: placing the
        // one-hit wonders at LRU protects the hot pair.
        let mut reqs = Vec::new();
        let mut next = 100u64;
        for i in 0..200u64 {
            if i % 4 == 0 {
                reqs.push((1, UNIT));
            } else if i % 4 == 2 {
                reqs.push((2, UNIT));
            } else {
                reqs.push((next, UNIT));
                next += 1;
            }
        }
        let t = micro_trace(&reqs);
        let cache = 2;
        let l = label_trace(&t, cache);
        let base = l.summary.miss_ratio();
        let treated = oracle_replay(&t, &l, cache, OracleTreatment::Zro, 1.0);
        assert!(
            treated < base,
            "oracle ZRO placement should help: {treated} vs {base}"
        );
        // Fraction 0 reproduces plain LRU exactly.
        let zero = oracle_replay(&t, &l, cache, OracleTreatment::Zro, 0.0);
        assert!((zero - base).abs() < 1e-12);
    }

    #[test]
    fn oracle_fraction_monotone_in_expectation() {
        // More treated ZROs should not hurt on this adversarial stream.
        let mut reqs = Vec::new();
        let mut next = 100u64;
        for i in 0..400u64 {
            if i % 3 == 0 {
                reqs.push((i % 9 / 3 + 1, UNIT)); // rotating trio of hot ids
            } else {
                reqs.push((next, UNIT));
                next += 1;
            }
        }
        let t = micro_trace(&reqs);
        let l = label_trace(&t, 3);
        let m25 = oracle_replay(&t, &l, 3, OracleTreatment::Zro, 0.25);
        let m100 = oracle_replay(&t, &l, 3, OracleTreatment::Zro, 1.0);
        assert!(m100 <= m25 + 1e-9, "{m100} vs {m25}");
    }

    #[test]
    fn oracle_both_at_least_as_good_as_each() {
        let mut reqs = Vec::new();
        let mut next = 1000u64;
        for i in 0..600u64 {
            match i % 5 {
                0 => reqs.push((1, UNIT)),
                1 => reqs.push((2, UNIT)),
                2 => {
                    // Burst object: inserted, hit once shortly after, gone.
                    reqs.push((next, UNIT));
                }
                3 => {
                    reqs.push((next, UNIT));
                    next += 1;
                }
                _ => {
                    reqs.push((next + 10_000, UNIT)); // one-hit wonder
                    next += 1;
                }
            }
        }
        let t = micro_trace(&reqs);
        let l = label_trace(&t, 3);
        let z = oracle_replay(&t, &l, 3, OracleTreatment::Zro, 1.0);
        let p = oracle_replay(&t, &l, 3, OracleTreatment::PZro, 1.0);
        let b = oracle_replay(&t, &l, 3, OracleTreatment::Both, 1.0);
        assert!(
            b <= z + 0.02 && b <= p + 0.02,
            "both {b}, zro {z}, pzro {p}"
        );
    }
}
