//! Drift-generator suite: statistical sanity of the scheduled
//! nonstationarities ([`DriftEvent`]) and determinism-by-seed over random
//! event parameters.
//!
//! The chaos gates lean on these generators to place shard kills inside
//! a known disturbance, so the suite proves two things: the
//! disturbances are *real* (measurable in the emitted trace — hot-set
//! churn at a rotation boundary, request concentration inside a flash
//! crowd, popularity swing across a cycle) and *reproducible* (the trace
//! is a pure function of its config, and the drift window touches only
//! the ticks it claims).

use cdn_trace::{
    drift_corpus, flash_crowd_window, hot_set_overlap, top_k_share, DriftEvent, GeneratorConfig,
    TraceGenerator, Workload,
};
use proptest::prelude::*;

const N: u64 = 60_000;

fn base_cfg(seed: u64) -> GeneratorConfig {
    GeneratorConfig {
        requests: N,
        core_objects: 5_000,
        // Isolate the scheduled drift: no background churn or wonders.
        one_hit_fraction: 0.0,
        burst_start_prob: 0.0,
        drift_interval: 0,
        ..GeneratorConfig::default()
    }
    .with_seed(seed)
}

trait WithSeed {
    fn with_seed(self, seed: u64) -> Self;
}
impl WithSeed for GeneratorConfig {
    fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[test]
fn rotation_churns_hot_set_at_boundary_only() {
    let at = N / 2;
    let mut cfg = base_cfg(7);
    cfg.events = vec![DriftEvent::WorkingSetRotation { at, fraction: 0.5 }];
    let trace = TraceGenerator::generate(cfg.clone());
    let before = &trace[..at as usize];
    let after = &trace[at as usize..];

    // Across the rotation boundary the hot set collapses...
    let across = hot_set_overlap(before, after, 50);
    assert!(across < 0.30, "overlap across rotation {across}");

    // ...while an equal-sized split of a stationary control stays hot.
    let control = TraceGenerator::generate(base_cfg(7));
    let stable = hot_set_overlap(&control[..at as usize], &control[at as usize..], 50);
    assert!(stable > 0.80, "stationary control overlap {stable}");

    // And the pre-boundary halves of both traces are identical: the
    // rotation touches nothing before its tick.
    assert_eq!(&trace[..at as usize], &control[..at as usize]);
}

#[test]
fn flash_crowd_concentrates_inside_window_only() {
    let ev = flash_crowd_window(N);
    let DriftEvent::FlashCrowd {
        start,
        duration,
        share,
        objects,
    } = ev
    else {
        panic!("flash_crowd_window must be a FlashCrowd");
    };
    assert_eq!(start, N / 4);
    assert_eq!(duration, N / 2);
    let mut cfg = base_cfg(11);
    cfg.events = vec![ev];
    let trace = TraceGenerator::generate(cfg);
    let inside = &trace[start as usize..(start + duration) as usize];
    let outside = &trace[..start as usize];

    // Inside the window, roughly `share` of requests land on a pool of
    // `objects` ids, so the top-`objects` share must clear the crowd
    // share; outside, Zipf(0.8) over 5000 ids is far more dispersed.
    let skew_in = top_k_share(inside, objects);
    let skew_out = top_k_share(outside, objects);
    assert!(skew_in > share, "inside skew {skew_in} <= share {share}");
    assert!(
        skew_in > skew_out + 0.25,
        "inside {skew_in} vs outside {skew_out}"
    );

    // Crowd ids are minted fresh at window entry: they never appear
    // before the window opens.
    let crowd_floor = 5_000u64; // ids >= core_objects are minted
    assert!(outside.iter().all(|r| r.id.0 < crowd_floor));
    assert!(inside.iter().any(|r| r.id.0 >= crowd_floor));
}

#[test]
fn popularity_cycle_swings_hot_set_with_phase() {
    let mut cfg = base_cfg(13);
    cfg.events = vec![DriftEvent::PopularityCycle {
        period: N,
        amplitude: 0.9,
    }];
    let trace = TraceGenerator::generate(cfg);
    let q = (N / 4) as usize;
    // Phase ~0 (first quarter) vs phase ~π (third quarter): popularity
    // mass shifts onto the opposite core half, so hot sets diverge far
    // more than the stationary control's.
    let peak_vs_trough = hot_set_overlap(&trace[..q], &trace[2 * q..3 * q], 50);
    let control = TraceGenerator::generate(base_cfg(13));
    let stable = hot_set_overlap(&control[..q], &control[2 * q..3 * q], 50);
    assert!(
        peak_vs_trough < stable - 0.25,
        "cycle overlap {peak_vs_trough} vs control {stable}"
    );
}

#[test]
fn drift_corpus_names_and_shapes() {
    let corpus = drift_corpus(N, 3);
    let names: Vec<&str> = corpus.iter().map(|(n, _)| *n).collect();
    assert_eq!(names, vec!["flash-crowd", "ws-rotation", "diurnal-cycle"]);
    for (name, cfg) in &corpus {
        assert_eq!(cfg.requests, N, "{name}");
        assert_eq!(cfg.events.len(), 1, "{name}");
        let trace = TraceGenerator::generate(cfg.clone());
        assert_eq!(trace.len(), N as usize, "{name}");
        // The CDN-T base profile survives underneath the drift overlay.
        assert_eq!(cfg.zipf_s, Workload::CdnT.profile().zipf_s, "{name}");
    }
}

proptest! {
    /// A drift-ful trace is a pure function of its config: same seed and
    /// events ⇒ identical traces; different seed ⇒ different trace.
    #[test]
    fn drift_traces_deterministic_by_seed(
        seed in 0u64..1_000,
        start_frac in 1u64..8,
        share in 1u32..100,
        objects in 1usize..200,
        fraction in 1u32..100,
        amplitude in 0u32..100,
    ) {
        let n = 4_000u64;
        let events = vec![
            DriftEvent::FlashCrowd {
                start: n * start_frac / 8,
                duration: n / 4,
                share: share as f64 / 100.0,
                objects,
            },
            DriftEvent::WorkingSetRotation { at: n / 2, fraction: fraction as f64 / 100.0 },
            DriftEvent::PopularityCycle { period: n / 2, amplitude: amplitude as f64 / 100.0 },
        ];
        let cfg = GeneratorConfig {
            requests: n,
            core_objects: 500,
            events: events.clone(),
            ..GeneratorConfig::default()
        }.with_seed(seed);
        let a = TraceGenerator::generate(cfg.clone());
        let b = TraceGenerator::generate(cfg.clone());
        prop_assert_eq!(&a, &b, "same config must replay identically");
        let c = TraceGenerator::generate(cfg.clone().with_seed(seed + 1));
        prop_assert_ne!(&a, &c, "seed must matter");
        prop_assert_eq!(a.len(), n as usize);
        for (i, r) in a.iter().enumerate() {
            prop_assert_eq!(r.tick, i as u64);
        }
    }

    /// Scheduled events never perturb the trace before their first tick:
    /// the prefix is bit-identical to the event-free run.
    #[test]
    fn events_leave_prefix_untouched(seed in 0u64..1_000, start_frac in 2u64..8) {
        let n = 4_000u64;
        let start = n * start_frac / 8;
        let mut cfg = GeneratorConfig {
            requests: n,
            core_objects: 500,
            ..GeneratorConfig::default()
        }.with_seed(seed);
        let calm = TraceGenerator::generate(cfg.clone());
        cfg.events = vec![
            DriftEvent::FlashCrowd { start, duration: n / 8, share: 0.5, objects: 16 },
            DriftEvent::WorkingSetRotation { at: start, fraction: 0.5 },
        ];
        let drifted = TraceGenerator::generate(cfg);
        prop_assert_eq!(&calm[..start as usize], &drifted[..start as usize]);
    }
}
