//! Property tests for the key partitioner: the per-shard streams must be
//! order-preserving subsequences whose union is exactly the input
//! multiset, with every key pinned to one shard — the invariants the
//! sharded replay's exactness proof stands on.

use cdn_cache::hash::key_shard;
use cdn_trace::{partition_columns, TraceColumns};
use proptest::prelude::*;

fn arb_pairs() -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec((0u64..200, 1u64..100), 0..600)
}

fn columns_from(pairs: &[(u64, u64)]) -> TraceColumns {
    let trace: Vec<cdn_cache::Request> = pairs
        .iter()
        .enumerate()
        .map(|(t, &(id, size))| cdn_cache::Request::new(t as u64, id, size))
        .collect();
    TraceColumns::from_requests(&trace)
}

proptest! {
    /// Every request lands on exactly the shard `key_shard` names, and the
    /// per-shard request counts cover the input with nothing dropped or
    /// duplicated.
    #[test]
    fn every_request_on_its_keys_shard(pairs in arb_pairs(), shards in 1usize..9) {
        let cols = columns_from(&pairs);
        let sharded = partition_columns(&cols, shards);
        prop_assert_eq!(sharded.shard_count(), shards);
        let mut total = 0usize;
        for (s, shard_cols) in sharded.shards.iter().enumerate() {
            for id in &shard_cols.ids {
                prop_assert_eq!(key_shard(id.0, shards), s);
            }
            total += shard_cols.len();
        }
        prop_assert_eq!(total, cols.len());
    }

    /// Each shard is an order-preserving subsequence of the input: ticks
    /// strictly increase within a shard, so per-key request order (which
    /// is what cache outcomes depend on) is untouched by partitioning.
    #[test]
    fn shards_preserve_input_order(pairs in arb_pairs(), shards in 1usize..9) {
        let cols = columns_from(&pairs);
        let sharded = partition_columns(&cols, shards);
        for shard_cols in &sharded.shards {
            for w in shard_cols.ticks.windows(2) {
                prop_assert!(w[0] < w[1], "ticks within a shard must stay ascending");
            }
        }
    }

    /// Union of the shards equals the input as a multiset of full
    /// `(tick, id, size)` records — partitioning neither rewrites nor
    /// reorders any request's payload.
    #[test]
    fn union_is_input_multiset(pairs in arb_pairs(), shards in 1usize..9) {
        let cols = columns_from(&pairs);
        let sharded = partition_columns(&cols, shards);
        let mut merged: Vec<(u64, u64, u64)> = sharded
            .shards
            .iter()
            .flat_map(|c| c.iter().map(|r| (r.tick, r.id.0, r.size)))
            .collect();
        merged.sort_unstable();
        let expect: Vec<(u64, u64, u64)> =
            cols.iter().map(|r| (r.tick, r.id.0, r.size)).collect();
        // Input ticks are already ascending, so sorting the merge by tick
        // reconstructs the exact input sequence.
        prop_assert_eq!(merged, expect);
    }

    /// Partitioning is deterministic and stats agree with shard contents.
    #[test]
    fn deterministic_with_consistent_stats(pairs in arb_pairs(), shards in 1usize..9) {
        let cols = columns_from(&pairs);
        let a = partition_columns(&cols, shards);
        let b = partition_columns(&cols, shards);
        prop_assert_eq!(a.total_requests(), b.total_requests());
        for (s, (ca, cb)) in a.shards.iter().zip(&b.shards).enumerate() {
            prop_assert_eq!(&ca.ids, &cb.ids, "shard {} ids diverged", s);
            prop_assert_eq!(&ca.sizes, &cb.sizes);
            prop_assert_eq!(&ca.ticks, &cb.ticks);
        }
        for (stats, shard_cols) in a.stats.iter().zip(&a.shards) {
            prop_assert_eq!(stats.requests, shard_cols.len() as u64);
            prop_assert_eq!(stats.bytes, shard_cols.sizes.iter().sum::<u64>());
            let uniques: std::collections::HashSet<u64> =
                shard_cols.ids.iter().map(|id| id.0).collect();
            prop_assert_eq!(stats.unique_objects, uniques.len() as u64);
        }
    }
}
