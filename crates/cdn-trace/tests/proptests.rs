//! Property tests for the workload substrate: Belady optimality bounds,
//! labeling consistency and generator determinism over random parameter
//! draws.

use cdn_cache::{LruQueue, MissRatio, Request};
use cdn_trace::label::label_trace;
use cdn_trace::{next_access_table, BeladyOracle, GeneratorConfig, TraceGenerator, NO_NEXT};
use proptest::prelude::*;

fn lru_miss_ratio(trace: &[Request], cap: u64) -> f64 {
    let mut cache = LruQueue::new(cap);
    let mut m = MissRatio::new();
    for r in trace {
        if cache.contains(r.id) {
            m.record_hit(r.size);
            cache.record_hit(r.id, r.tick);
            cache.promote_to_mru(r.id);
        } else {
            m.record_miss(r.size);
            if !cache.admissible(r.size) {
                continue;
            }
            while cache.needs_eviction_for(r.size) {
                cache.evict_lru();
            }
            cache.insert_mru(r.id, r.size, r.tick);
        }
    }
    m.miss_ratio()
}

fn arb_pairs() -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec((0u64..60, 1u64..100), 1..500)
}

proptest! {
    /// Belady lower-bounds LRU on arbitrary request streams.
    #[test]
    fn belady_lower_bounds_lru(pairs in arb_pairs(), cap in 50u64..2000) {
        let trace: Vec<Request> = pairs
            .iter()
            .enumerate()
            .map(|(t, &(id, size))| Request::new(t as u64, id, size))
            .collect();
        let belady = BeladyOracle::run(&trace, cap);
        let lru = lru_miss_ratio(&trace, cap);
        prop_assert!(belady <= lru + 1e-9, "belady {belady} vs lru {lru}");
    }

    /// The next-access table is self-consistent: `next[i]` points to a
    /// strictly later request for the same object, and nothing in between
    /// touches that object.
    #[test]
    fn next_access_table_consistent(pairs in arb_pairs()) {
        let trace: Vec<Request> = pairs
            .iter()
            .enumerate()
            .map(|(t, &(id, size))| Request::new(t as u64, id, size))
            .collect();
        let next = next_access_table(&trace);
        for (i, &n) in next.iter().enumerate() {
            if n == NO_NEXT {
                for later in &trace[i + 1..] {
                    prop_assert_ne!(later.id, trace[i].id);
                }
            } else {
                let n = n as usize;
                prop_assert!(n > i);
                prop_assert_eq!(trace[n].id, trace[i].id);
                for between in &trace[i + 1..n] {
                    prop_assert_ne!(between.id, trace[i].id);
                }
            }
        }
    }

    /// Labeling counts are internally consistent for any stream.
    #[test]
    fn label_counts_consistent(pairs in arb_pairs(), cap in 20u64..500) {
        let trace: Vec<Request> = pairs
            .iter()
            .enumerate()
            .map(|(t, &(id, size))| Request::new(t as u64, id, size))
            .collect();
        let l = label_trace(&trace, cap);
        let s = l.summary;
        prop_assert_eq!(s.hits + s.misses, trace.len() as u64);
        prop_assert!(s.zro <= s.misses);
        prop_assert!(s.pzro <= s.hits);
        prop_assert!(s.azro <= s.zro);
        prop_assert!(s.apzro <= s.pzro);
        // Label vector agrees with the counters.
        let zro_count = l.labels.iter().filter(|lb| lb.is_zro()).count() as u64;
        let pzro_count = l.labels.iter().filter(|lb| lb.is_pzro()).count() as u64;
        prop_assert_eq!(zro_count, s.zro);
        prop_assert_eq!(pzro_count, s.pzro);
    }

    /// The generator is a pure function of its config.
    #[test]
    fn generator_deterministic(
        requests in 100u64..3000,
        core in 100usize..2000,
        s in 0.3f64..1.2,
        ohw in 0.0f64..0.5,
        seed in 0u64..1000,
    ) {
        let cfg = GeneratorConfig {
            requests,
            core_objects: core,
            zipf_s: s,
            one_hit_fraction: ohw,
            burst_start_prob: 0.01,
            seed,
            ..GeneratorConfig::default()
        };
        let a = TraceGenerator::generate(cfg.clone());
        let b = TraceGenerator::generate(cfg);
        prop_assert_eq!(a.len() as u64, requests);
        prop_assert_eq!(a, b);
    }
}
