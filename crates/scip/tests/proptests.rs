//! Property tests for SCIP's invariants: weight normalisation, λ bounds,
//! history budgets and byte accounting under arbitrary request streams.

use cdn_cache::{CachePolicy, Request};
use proptest::prelude::*;
use scip::{Sci, Scip, ScipConfig, UpdateLr};

fn arb_trace() -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec((0u64..200, 1u64..500), 1..400)
}

proptest! {
    /// Scip never exceeds capacity, and its bandit state stays in range
    /// for any request stream.
    #[test]
    fn scip_invariants(pairs in arb_trace(), seed in 0u64..1000) {
        let capacity = 2_000u64;
        let mut p = Scip::with_config(
            capacity,
            ScipConfig {
                seed,
                update_interval: 50,
                ..ScipConfig::default()
            },
        );
        for (tick, &(id, size)) in pairs.iter().enumerate() {
            p.on_request(&Request::new(tick as u64, id, size));
            prop_assert!(p.used_bytes() <= capacity);
            let c = p.core();
            prop_assert!((0.0..=1.0).contains(&c.omega_m()));
            prop_assert!((0.0..=1.0).contains(&c.omega_p()));
            prop_assert!((c.omega_m_for(size) + c.omega_l_for(size) - 1.0).abs() < 1e-9);
            prop_assert!((0.001..=1.0).contains(&c.lambda()));
            prop_assert!(c.h_m.used_bytes() <= c.h_m.capacity());
            prop_assert!(c.h_l.used_bytes() <= c.h_l.capacity());
        }
    }

    /// Sci keeps the same invariants.
    #[test]
    fn sci_invariants(pairs in arb_trace(), seed in 0u64..1000) {
        let capacity = 2_000u64;
        let mut p = Sci::with_config(
            capacity,
            ScipConfig {
                seed,
                update_interval: 50,
                ..ScipConfig::default()
            },
        );
        for (tick, &(id, size)) in pairs.iter().enumerate() {
            p.on_request(&Request::new(tick as u64, id, size));
            prop_assert!(p.used_bytes() <= capacity);
        }
    }

    /// Algorithm 2 keeps λ within [0.001, 1] for any hit-rate sequence.
    #[test]
    fn updatelr_lambda_bounded(rates in proptest::collection::vec(0.0f64..1.0, 1..200)) {
        let mut u = UpdateLr::new(0.1, 10, 7);
        for pi in rates {
            u.update(pi);
            prop_assert!((0.001..=1.0).contains(&u.lambda()), "λ {}", u.lambda());
        }
    }

    /// A resident object is never simultaneously in a history list (the
    /// paper's REMOVE-vs-EVICT distinction): ghost hits on resident ids
    /// are impossible because insertion consumes the ghost entry.
    #[test]
    fn resident_objects_not_in_history(pairs in arb_trace()) {
        let capacity = 1_000u64;
        let mut p = Scip::new(capacity, 3);
        for (tick, &(id, size)) in pairs.iter().enumerate() {
            p.on_request(&Request::new(tick as u64, id, size));
        }
        for meta in p.queue().iter() {
            prop_assert!(!p.core().h_m.contains(meta.id), "{} in H_m", meta.id);
            prop_assert!(!p.core().h_l.contains(meta.id), "{} in H_l", meta.id);
        }
    }

    /// The enhancement wrapper honours the byte budget for any stream.
    #[test]
    fn enhanced_lruk_budget(pairs in arb_trace(), seed in 0u64..100) {
        let capacity = 2_000u64;
        let mut p = scip::enhance::lruk_scip(capacity, 2, seed);
        for (tick, &(id, size)) in pairs.iter().enumerate() {
            p.on_request(&Request::new(tick as u64, id, size));
            prop_assert!(p.used_bytes() <= capacity);
        }
    }

    /// Determinism: identical seeds and streams give identical outcomes.
    #[test]
    fn scip_deterministic(pairs in arb_trace(), seed in 0u64..50) {
        let run = |s: u64| {
            let mut p = Scip::new(1_500, s);
            let mut hits = 0u64;
            for (tick, &(id, size)) in pairs.iter().enumerate() {
                hits += u64::from(p.on_request(&Request::new(tick as u64, id, size)).is_hit());
            }
            hits
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}
