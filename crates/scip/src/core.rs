//! The SCIP brain: history lists, bandit weights and the adaptive
//! learning rate (Algorithm 1's state + Algorithm 2).
//!
//! ## Concretization notes (see DESIGN.md §"SCIP concretization")
//!
//! Algorithm 1 as printed under-determines the learning signals — its
//! prose (§3.3, "the probability of insertion into the MRU/LRU position is
//! increased") and pseudo-code (lines 8/11 decrease the corresponding ω)
//! disagree, and a bandit fed *only* by ghost hits cannot observe one-hit
//! wonders at all (they never return, so they generate no ghost evidence
//! even though placing them at the LRU position is SCIP's headline win).
//! Reproducing the paper's qualitative results therefore requires three
//! concretizations, each staying inside the paper's own vocabulary:
//!
//! 1. **Eviction-outcome pressure.** A victim whose residency began at the
//!    MRU position and ended hitless is a *confirmed ZRO residency* (§2.3
//!    uses exactly this "hit token equals False" signal for ASC-IP), so
//!    every such eviction applies a small ω_m penalty. This is the only
//!    signal one-hit wonders emit.
//! 2. **Gap-tested per-object judgement.** §3.2's judgement ("when the
//!    missing object is in H_l, it means the object has a chance to be hit
//!    if it is inserted into the MRU position") is applied per object, but
//!    qualified by comparing the object's observed re-access gap with the
//!    cache's estimated full-queue traversal time: a returning object
//!    whose gap exceeds what an MRU residency lasts could not have been
//!    hit anywhere — re-demote it instead of oscillating.
//! 3. **Size-contextual insertion arms.** Figure 4 trains its MAB (and
//!    every other model) on object features, size first among them; the
//!    production system stores sizes in the inode for exactly this reason.
//!    We therefore keep one (ω_m, ω_l) pair per log₂-size class rather
//!    than a single global pair — the bandit machinery and updates are
//!    unchanged, they just address the arm pair of the object's class.
//! 4. **A distinct promotion weight ω_p.** The unified model still treats
//!    promotion as insertion (same SELECT machinery, same λ), but hits and
//!    misses see different base rates (§1 discusses this imbalance), so
//!    the bandit keeps one weight per decision type. P-ZRO evidence comes
//!    from evictions whose *final hit* long predates the eviction — the
//!    promotion bought nothing.

use cdn_cache::ghost::GhostEntry;
use cdn_cache::{GhostList, InsertPos, ObjectId, SimRng, Tick};

/// Floor of the learning rate (Algorithm 2, line 8).
pub const LAMBDA_MIN: f64 = 0.001;
/// Ceiling of the learning rate (Algorithm 2, line 6).
pub const LAMBDA_MAX: f64 = 1.0;
/// Weight floor/ceiling: keeps both arms explorable (the BIP "give
/// suspected ZROs a chance" property).
const OMEGA_FLOOR: f64 = 0.02;
/// Number of log₂-size context classes.
const N_SIZE_CLASSES: usize = 40;
/// Version byte of the [`ScipCore::export_learned`] snapshot block.
const LEARNED_BLOCK_VERSION: u8 = 1;

#[inline]
fn size_class(size: u64) -> usize {
    (64 - size.max(1).leading_zeros() as usize).min(N_SIZE_CLASSES - 1)
}

/// Tunable parameters of SCIP.
#[derive(Debug, Clone, Copy)]
pub struct ScipConfig {
    /// Learning-rate update interval `i` in requests (Algorithm 1 line 21).
    pub update_interval: u64,
    /// Initial learning rate `λ`.
    pub initial_lambda: f64,
    /// Each history list's byte budget as a fraction of the cache
    /// ("logically, the size of each list is half of the real cache").
    pub history_fraction: f64,
    /// Restarts trigger after this many stagnant windows (paper: 10).
    pub unlearn_threshold: u32,
    /// Initial MRU-insertion probability `ω_m`.
    pub initial_omega_m: f64,
    /// Initial MRU-promotion probability `ω_p`.
    pub initial_omega_p: f64,
    /// Scale of per-eviction pressure relative to per-ghost-hit updates
    /// (evictions are far more frequent than ghost hits).
    pub eviction_pressure: f64,
    /// Host mode, for enhancing non-queue algorithms (§4): disables every
    /// queue-relative signal — the traversal-gap test and the P-ZRO
    /// promotion pressure — keeping only the admission-relevant pair
    /// (confirmed-ZRO eviction pressure vs. H_l bypass-mistake rescue).
    pub host_mode: bool,
    /// PRNG seed for `γ` draws and restarts.
    pub seed: u64,
}

impl Default for ScipConfig {
    fn default() -> Self {
        ScipConfig {
            update_interval: 20_000,
            initial_lambda: 0.1,
            history_fraction: 0.5,
            unlearn_threshold: 10,
            initial_omega_m: 0.5,
            initial_omega_p: 0.95,
            eviction_pressure: 0.05,
            host_mode: false,
            seed: 42,
        }
    }
}

/// Algorithm 2 — UPDATELR as a standalone, testable unit.
///
/// Holds the (λ, Π) history it needs: `λ_{t-i}`, `λ_{t-2i}`, `Π_{t-i}`.
#[derive(Debug, Clone)]
pub struct UpdateLr {
    lambda: f64,
    lambda_prev: f64,
    pi_prev: f64,
    unlearn_count: u32,
    unlearn_threshold: u32,
    rng: SimRng,
}

impl UpdateLr {
    /// Fresh state with the given initial learning rate.
    pub fn new(initial_lambda: f64, unlearn_threshold: u32, seed: u64) -> Self {
        assert!((LAMBDA_MIN..=LAMBDA_MAX).contains(&initial_lambda));
        UpdateLr {
            lambda: initial_lambda,
            lambda_prev: initial_lambda,
            pi_prev: 0.0,
            unlearn_count: 0,
            unlearn_threshold,
            rng: SimRng::new(seed),
        }
    }

    /// Current learning rate `λ_t`.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Stagnation counter (diagnostics).
    pub fn unlearn_count(&self) -> u32 {
        self.unlearn_count
    }

    /// Learning-rate history `(λ, λ_prev, Π_prev, unlearn_count)` for the
    /// snapshot learned block. The restart RNG is deliberately excluded —
    /// it is exploration state, not learned knowledge.
    pub(crate) fn export_params(&self) -> (f64, f64, f64, u32) {
        (
            self.lambda,
            self.lambda_prev,
            self.pi_prev,
            self.unlearn_count,
        )
    }

    /// Restore learning-rate history from a snapshot, clamping every value
    /// back into its legal range so a stale or hostile block can never
    /// violate the `audit()` invariants.
    pub(crate) fn restore_params(
        &mut self,
        lambda: f64,
        lambda_prev: f64,
        pi_prev: f64,
        unlearn_count: u32,
    ) {
        self.lambda = if lambda.is_finite() {
            lambda.clamp(LAMBDA_MIN, LAMBDA_MAX)
        } else {
            self.lambda
        };
        self.lambda_prev = if lambda_prev.is_finite() {
            lambda_prev.clamp(LAMBDA_MIN, LAMBDA_MAX)
        } else {
            self.lambda
        };
        self.pi_prev = if pi_prev.is_finite() {
            pi_prev.clamp(0.0, 1.0)
        } else {
            0.0
        };
        self.unlearn_count = unlearn_count.min(self.unlearn_threshold);
    }

    /// One Algorithm-2 step with the window's average hit rate `Π_t`.
    ///
    /// Hardened against degenerate windows: a non-finite or out-of-range
    /// `Π_t` is treated as 0 (a window with no observable hit rate), and
    /// the resulting `λ` is re-validated — a poisoned gradient can never
    /// drive `λ` to 0, NaN or infinity.
    pub fn update(&mut self, pi_t: f64) {
        let pi_t = if pi_t.is_finite() {
            pi_t.clamp(0.0, 1.0)
        } else {
            0.0
        };
        let delta = pi_t - self.pi_prev; // Δ_t = Π_t − Π_{t−i}
        let grad_denom = self.lambda - self.lambda_prev; // δ_t = λ_{t−i} − λ_{t−2i}
        let new_lambda;
        if grad_denom != 0.0 {
            let ratio = delta / grad_denom;
            // λ_t = λ_{t−i} + λ_{t−i}·(Δ/δ), clamped per the sign of Δ/δ.
            if ratio > 0.0 {
                new_lambda = (self.lambda + self.lambda * ratio).min(LAMBDA_MAX);
            } else {
                new_lambda = (self.lambda + self.lambda * ratio).max(LAMBDA_MIN);
            }
            self.unlearn_count = 0;
        } else {
            new_lambda = self.lambda;
            if pi_t == 0.0 || delta <= 0.0 {
                self.unlearn_count += 1;
            }
        }
        self.lambda_prev = self.lambda;
        // Belt-and-braces: the branch clamps above keep finite values in
        // range already (the clamp here is a no-op for them); a non-finite
        // result keeps the previous λ instead of poisoning the climb.
        self.lambda = if new_lambda.is_finite() {
            new_lambda.clamp(LAMBDA_MIN, LAMBDA_MAX)
        } else {
            self.lambda
        };
        if self.unlearn_count >= self.unlearn_threshold {
            // Random restart (gradient-based stochastic hill climbing).
            self.unlearn_count = 0;
            self.lambda = self.rng.f64_range(LAMBDA_MIN, LAMBDA_MAX);
        }
        self.pi_prev = pi_t;
    }
}

/// What the core needs to know about an eviction.
#[derive(Debug, Clone, Copy)]
pub struct VictimInfo {
    /// Victim identity.
    pub id: ObjectId,
    /// Victim size, bytes.
    pub size: u64,
    /// Eviction tick.
    pub tick: Tick,
    /// Whether the residency began at the MRU position (`insert_pos`).
    pub inserted_at_mru: bool,
    /// Hits during the residency.
    pub hits: u32,
    /// Tick of the last access (insert or hit).
    pub last_access: Tick,
    /// Tick the residency began.
    pub inserted_tick: Tick,
}

/// The reusable SCIP decision engine: two history lists, the (ω_m, ω_l)
/// insertion bandit, the ω_p promotion bandit, and the adaptive learning
/// rate. Queue-agnostic — [`crate::Scip`] drives an LRU queue with it,
/// [`crate::Enhanced`] drives LRU-K/LRB.
#[derive(Debug, Clone)]
pub struct ScipCore {
    /// History of evictions whose residency began at the MRU position.
    pub h_m: GhostList,
    /// History of evictions whose residency began at the LRU position.
    pub h_l: GhostList,
    /// Per-size-class MRU-insertion weights.
    omega_m: Vec<f64>,
    omega_p: f64,
    /// EWMA of how long a hitless MRU residency lasts (ticks): the
    /// "could MRU have helped?" yardstick for the gap test.
    traversal_est: f64,
    lr: UpdateLr,
    cfg: ScipConfig,
    rng: SimRng,
    // Window bookkeeping for Π_t.
    window_hits: u64,
    window_reqs: u64,
    requests: u64,
}

/// Ghost tag layout: `last_access << 1 | had_hits`.
fn pack_tag(last_access: Tick, had_hits: bool) -> u64 {
    (last_access << 1) | u64::from(had_hits)
}

fn unpack_tag(tag: u64) -> (Tick, bool) {
    (tag >> 1, tag & 1 == 1)
}

impl ScipCore {
    /// Engine for a cache of `capacity` bytes.
    pub fn new(capacity: u64, cfg: ScipConfig) -> Self {
        let budget = ((capacity as f64) * cfg.history_fraction) as u64;
        let mut seed_rng = SimRng::new(cfg.seed);
        let lr_seed = seed_rng.next_u64();
        ScipCore {
            h_m: GhostList::new(budget),
            h_l: GhostList::new(budget),
            omega_m: vec![
                cfg.initial_omega_m.clamp(OMEGA_FLOOR, 1.0 - OMEGA_FLOOR);
                N_SIZE_CLASSES
            ],
            omega_p: cfg.initial_omega_p.clamp(OMEGA_FLOOR, 1.0 - OMEGA_FLOOR),
            traversal_est: 0.0,
            lr: UpdateLr::new(cfg.initial_lambda, cfg.unlearn_threshold, lr_seed),
            cfg,
            rng: seed_rng,
            window_hits: 0,
            window_reqs: 0,
            requests: 0,
        }
    }

    /// MRU-insertion probability `ω_m` for a given object size's class.
    pub fn omega_m_for(&self, size: u64) -> f64 {
        self.omega_m[size_class(size)]
    }

    /// Mean MRU-insertion probability across classes (diagnostics).
    pub fn omega_m(&self) -> f64 {
        self.omega_m.iter().sum::<f64>() / self.omega_m.len() as f64
    }

    /// LRU-insertion probability `ω_l = 1 − ω_m` for a size's class.
    pub fn omega_l_for(&self, size: u64) -> f64 {
        1.0 - self.omega_m_for(size)
    }

    /// Current MRU-promotion probability `ω_p`.
    pub fn omega_p(&self) -> f64 {
        self.omega_p
    }

    /// Current learning rate `λ`.
    pub fn lambda(&self) -> f64 {
        self.lr.lambda()
    }

    /// Estimated full-queue traversal time in ticks (0 until observed).
    pub fn traversal_estimate(&self) -> f64 {
        self.traversal_est
    }

    #[inline]
    fn clamp_omega(w: f64) -> f64 {
        w.clamp(OMEGA_FLOOR, 1.0 - OMEGA_FLOOR)
    }

    /// Multiplicative update: decrease arm `m` (of a two-arm pair with
    /// total 1) by `e^{-λ·scale}` and renormalise; returns the new weight
    /// of the *first* arm.
    fn decay_arm(w_first: f64, decay_first: bool, lambda: f64, scale: f64) -> f64 {
        let decay = (-lambda * scale).exp();
        let mut a = w_first;
        let mut b = 1.0 - w_first;
        if decay_first {
            a *= decay;
        } else {
            b *= decay;
        }
        let renorm = a / (a + b);
        if renorm.is_finite() {
            Self::clamp_omega(renorm)
        } else {
            // Degenerate normalisation (both arms underflowed to 0): keep
            // the previous weight rather than poisoning the pair.
            Self::clamp_omega(w_first)
        }
    }

    /// Algorithm 1 lines 6-13 + gap-tested §3.2 judgement: on a miss,
    /// consult the history lists, update the weights, and return the
    /// per-object placement when history exists (`None` = fall back to
    /// SELECT on the global weights).
    pub fn on_miss_lookup(&mut self, id: ObjectId, now: Tick) -> Option<InsertPos> {
        let lambda = self.lr.lambda();
        let (entry, from_hm) = if let Some(e) = self.h_m.delete(id) {
            (e, true)
        } else if let Some(e) = self.h_l.delete(id) {
            (e, false)
        } else {
            return None;
        };
        let class = size_class(entry.size);
        let (last_access, had_hits) = unpack_tag(entry.tag);
        if self.cfg.host_mode {
            // Host mode: an H_l ghost is a confirmed bypass mistake —
            // rescue the object and penalise the class's LRU arm. H_m
            // ghosts (the host's own victims returning) say nothing about
            // admission and are just forgotten.
            if !from_hm {
                self.omega_m[class] = Self::decay_arm(self.omega_m[class], false, lambda, 1.0);
                if had_hits {
                    self.omega_p = Self::decay_arm(self.omega_p, false, lambda, 1.0);
                }
                return Some(InsertPos::Mru);
            }
            return None;
        }
        let gap = now.saturating_sub(last_access) as f64;
        // Could an MRU residency have covered this gap?
        let mru_would_help = self.traversal_est <= 0.0 || gap < self.traversal_est;
        if from_hm {
            // MRU residency failed and the object came back: Algorithm 1
            // line 8 — decrease ω_m (of the object's size class).
            self.omega_m[class] = Self::decay_arm(self.omega_m[class], true, lambda, 1.0);
        } else if mru_would_help {
            // Demotion was a confirmed mistake: line 11 — decrease ω_l.
            self.omega_m[class] = Self::decay_arm(self.omega_m[class], false, lambda, 1.0);
            if had_hits {
                // The demotion happened on a hit: promotion arm was wrong.
                self.omega_p = Self::decay_arm(self.omega_p, false, lambda, 1.0);
            }
        }
        Some(if mru_would_help {
            InsertPos::Mru
        } else {
            InsertPos::Lru
        })
    }

    /// Algorithm 1 lines 27-33: SELECT between MIP and LIP by γ, on the
    /// arm pair of the object's size class.
    pub fn decide(&mut self, size: u64) -> InsertPos {
        let gamma = self.rng.f64();
        if self.omega_m[size_class(size)] > gamma {
            InsertPos::Mru
        } else {
            InsertPos::Lru
        }
    }

    /// Promotion SELECT: Algorithm 1 treats every hit as a special miss
    /// (same bimodal SELECT, on the promotion arm). We exempt objects that
    /// have already proven multi-hit behaviour in this residency — a
    /// SELECT there can only lose (verified empirically; see
    /// EXPERIMENTS.md's Figure-7 notes).
    pub fn decide_promotion(&mut self, hits_including_this: u32) -> InsertPos {
        if hits_including_this >= 2 {
            return InsertPos::Mru;
        }
        let gamma = self.rng.f64();
        if self.omega_p > gamma {
            InsertPos::Mru
        } else {
            InsertPos::Lru
        }
    }

    /// Algorithm 1 lines 16-19 + eviction-outcome pressure: record the
    /// victim in the history list matching its `insert_pos` mark, and
    /// apply the confirmed-ZRO / wasted-promotion penalties.
    pub fn on_evict(&mut self, v: VictimInfo) {
        let lambda = self.lr.lambda();
        let kappa = self.cfg.eviction_pressure;
        if v.inserted_at_mru && v.hits == 0 {
            // Confirmed ZRO residency: the full traversal bought nothing.
            let residency = v.tick.saturating_sub(v.inserted_tick) as f64;
            self.traversal_est = if self.traversal_est <= 0.0 {
                residency
            } else {
                0.95 * self.traversal_est + 0.05 * residency
            };
            let class = size_class(v.size);
            self.omega_m[class] = Self::decay_arm(self.omega_m[class], true, lambda, kappa);
        }
        if v.hits > 0 && !self.cfg.host_mode {
            let since_last_hit = v.tick.saturating_sub(v.last_access) as f64;
            if self.traversal_est > 0.0 && since_last_hit > 0.5 * self.traversal_est {
                // The final hit's promotion bought nothing: P-ZRO.
                self.omega_p = Self::decay_arm(self.omega_p, true, lambda, kappa);
            }
        }
        let entry = GhostEntry {
            id: v.id,
            size: v.size,
            evicted_tick: v.tick,
            tag: pack_tag(v.last_access, v.hits > 0),
        };
        if v.inserted_at_mru {
            self.h_m.add(entry);
        } else {
            self.h_l.add(entry);
        }
    }

    /// Algorithm 1 lines 21-22: clock one request and run UPDATELR on
    /// interval boundaries.
    pub fn on_request_end(&mut self, hit: bool) {
        self.requests += 1;
        self.window_reqs += 1;
        if hit {
            self.window_hits += 1;
        }
        if self.requests.is_multiple_of(self.cfg.update_interval) {
            let pi = if self.window_reqs == 0 {
                0.0
            } else {
                self.window_hits as f64 / self.window_reqs as f64
            };
            self.lr.update(pi);
            self.window_hits = 0;
            self.window_reqs = 0;
        }
    }

    /// Invariant walk over the engine's learned state and history lists.
    /// Checks, in order:
    ///
    /// - every per-class `ω_m` is finite and inside `[OMEGA_FLOOR,
    ///   1 − OMEGA_FLOOR]`, so `ω_m + ω_l = 1` holds exactly and both arms
    ///   stay explorable;
    /// - `ω_p` obeys the same bounds;
    /// - `λ` is finite and inside `[LAMBDA_MIN, LAMBDA_MAX]`;
    /// - the traversal estimate is finite and non-negative;
    /// - `H_m` and `H_l` pass their structural audits (doubly-linked
    ///   consistency, ledger == Σ sizes, ledger within budget).
    ///
    /// O(|H_m| + |H_l|). Returns the first violated invariant.
    pub fn audit(&self) -> Result<(), String> {
        for (class, &w) in self.omega_m.iter().enumerate() {
            if !w.is_finite() || !(OMEGA_FLOOR..=1.0 - OMEGA_FLOOR).contains(&w) {
                return Err(format!("scip: omega_m[{class}] = {w} out of bounds"));
            }
        }
        let p = self.omega_p;
        if !p.is_finite() || !(OMEGA_FLOOR..=1.0 - OMEGA_FLOOR).contains(&p) {
            return Err(format!("scip: omega_p = {p} out of bounds"));
        }
        let l = self.lr.lambda();
        if !l.is_finite() || !(LAMBDA_MIN..=LAMBDA_MAX).contains(&l) {
            return Err(format!("scip: lambda = {l} out of bounds"));
        }
        if !self.traversal_est.is_finite() || self.traversal_est < 0.0 {
            return Err(format!(
                "scip: traversal estimate = {} invalid",
                self.traversal_est
            ));
        }
        self.h_m.audit().map_err(|e| format!("scip H_m: {e}"))?;
        self.h_l.audit().map_err(|e| format!("scip H_l: {e}"))?;
        Ok(())
    }

    /// Serialise the learned parameters — per-class `ω_m`, `ω_p`, the
    /// traversal estimate and the `UPDATELR` history — into an opaque
    /// versioned block for warm-restart snapshots.
    ///
    /// The ghost lists (`H_m`/`H_l`) are deliberately *not* included: they
    /// are bulky derived evidence that re-accumulates within one history
    /// lifetime, while the weights are the distilled knowledge whose loss a
    /// restart actually feels. The RNGs are also excluded (exploration
    /// state, not learned state).
    pub fn export_learned(&self) -> Vec<u8> {
        let (lambda, lambda_prev, pi_prev, unlearn_count) = self.lr.export_params();
        let mut out = Vec::with_capacity(2 + 8 * (self.omega_m.len() + 5) + 4);
        out.push(LEARNED_BLOCK_VERSION);
        out.push(self.omega_m.len() as u8);
        for w in &self.omega_m {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out.extend_from_slice(&self.omega_p.to_le_bytes());
        out.extend_from_slice(&self.traversal_est.to_le_bytes());
        out.extend_from_slice(&lambda.to_le_bytes());
        out.extend_from_slice(&lambda_prev.to_le_bytes());
        out.extend_from_slice(&pi_prev.to_le_bytes());
        out.extend_from_slice(&unlearn_count.to_le_bytes());
        out
    }

    /// Restore learned parameters from an [`export_learned`] block.
    ///
    /// Validated and clamped: an unknown version, wrong class count or
    /// short block is rejected wholesale (returns `false`, state
    /// untouched); individual values are clamped back into their audit
    /// bounds so even a bit-flipped block that passes the outer CRC can
    /// never produce a core that fails [`ScipCore::audit`].
    ///
    /// [`export_learned`]: ScipCore::export_learned
    pub fn restore_learned(&mut self, block: &[u8]) -> bool {
        let n = self.omega_m.len();
        let expect = 2 + 8 * (n + 5) + 4;
        if block.len() != expect || block[0] != LEARNED_BLOCK_VERSION || block[1] as usize != n {
            return false;
        }
        let f64_at = |i: usize| {
            let off = 2 + 8 * i;
            f64::from_le_bytes(block[off..off + 8].try_into().expect("sized above"))
        };
        for (class, w) in self.omega_m.iter_mut().enumerate() {
            let v = f64_at(class);
            if v.is_finite() {
                *w = Self::clamp_omega(v);
            }
        }
        let p = f64_at(n);
        if p.is_finite() {
            self.omega_p = Self::clamp_omega(p);
        }
        let t = f64_at(n + 1);
        if t.is_finite() && t >= 0.0 {
            self.traversal_est = t;
        }
        let count_off = 2 + 8 * (n + 5);
        let unlearn_count = u32::from_le_bytes(
            block[count_off..count_off + 4]
                .try_into()
                .expect("sized above"),
        );
        self.lr
            .restore_params(f64_at(n + 2), f64_at(n + 3), f64_at(n + 4), unlearn_count);
        true
    }

    /// Metadata footprint (history lists + per-class weights).
    pub fn memory_bytes(&self) -> usize {
        self.h_m.memory_bytes()
            + self.h_l.memory_bytes()
            + self.omega_m.len() * 8
            + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn victim(id: u64, mru: bool, hits: u32, inserted: Tick, last: Tick, tick: Tick) -> VictimInfo {
        victim_sized(id, 10, mru, hits, inserted, last, tick)
    }

    fn victim_sized(
        id: u64,
        size: u64,
        mru: bool,
        hits: u32,
        inserted: Tick,
        last: Tick,
        tick: Tick,
    ) -> VictimInfo {
        VictimInfo {
            id: ObjectId(id),
            size,
            tick,
            inserted_at_mru: mru,
            hits,
            last_access: last,
            inserted_tick: inserted,
        }
    }

    #[test]
    fn updatelr_amplifies_on_positive_gradient() {
        let mut u = UpdateLr::new(0.1, 10, 1);
        u.lambda = 0.2; // λ_{t-i}=0.2, λ_{t-2i}=0.1 ⇒ δ=0.1
        u.pi_prev = 0.3;
        u.update(0.4); // Δ=0.1, ratio=1 ⇒ λ=0.4
        assert!((u.lambda() - 0.4).abs() < 1e-12, "λ {}", u.lambda());
        assert_eq!(u.unlearn_count(), 0);
    }

    #[test]
    fn updatelr_damps_on_negative_gradient() {
        let mut u = UpdateLr::new(0.1, 10, 1);
        u.lambda = 0.2;
        u.pi_prev = 0.5;
        u.update(0.4); // Δ=-0.1, δ=0.1, ratio=-1 ⇒ λ = max(0.2-0.2, MIN)
        assert!((u.lambda() - LAMBDA_MIN).abs() < 1e-12);
    }

    #[test]
    fn updatelr_clamps_to_one() {
        let mut u = UpdateLr::new(0.1, 10, 1);
        u.lambda = 0.9;
        u.lambda_prev = 0.1;
        u.pi_prev = 0.1;
        u.update(0.9); // huge positive ratio ⇒ clamp at 1.0
        assert!((u.lambda() - LAMBDA_MAX).abs() < 1e-12);
    }

    #[test]
    fn updatelr_random_restart_after_stagnation() {
        let mut u = UpdateLr::new(0.5, 10, 7);
        for _ in 0..9 {
            u.update(0.0);
        }
        assert_eq!(u.unlearn_count(), 9);
        u.update(0.0); // 10th stagnant window: restart
        assert_eq!(u.unlearn_count(), 0);
        assert!((LAMBDA_MIN..=LAMBDA_MAX).contains(&u.lambda()));
    }

    #[test]
    fn updatelr_improving_hit_rate_is_not_stagnation() {
        let mut u = UpdateLr::new(0.5, 10, 7);
        for i in 0..20 {
            u.update(0.1 + i as f64 * 0.01); // rising Π with δ=0
        }
        assert_eq!(u.unlearn_count(), 0);
        assert!((u.lambda() - 0.5).abs() < 1e-12, "λ untouched while δ=0");
    }

    #[test]
    fn confirmed_zro_evictions_lower_omega_m() {
        let mut c = ScipCore::new(10_000, ScipConfig::default());
        let before = c.omega_m_for(10);
        for i in 0..200u64 {
            c.on_evict(victim(i, true, 0, i, i, i + 100));
        }
        assert!(
            c.omega_m_for(10) < before,
            "ω_m {} -> {}",
            before,
            c.omega_m_for(10)
        );
        assert!(c.traversal_estimate() > 0.0);
    }

    #[test]
    fn hm_ghost_hit_lowers_omega_m_and_demotes_far_returner() {
        let mut c = ScipCore::new(10_000, ScipConfig::default());
        // Establish a traversal estimate of ~100 ticks.
        for i in 0..50u64 {
            c.on_evict(victim(1000 + i, true, 0, i, i, i + 100));
        }
        let before = c.omega_m_for(10);
        c.on_evict(victim(7, true, 0, 0, 0, 100));
        // Returns at t=1000: gap 1000 >> traversal 100 ⇒ demote.
        let verdict = c.on_miss_lookup(ObjectId(7), 1000);
        assert_eq!(verdict, Some(InsertPos::Lru));
        assert!(c.omega_m_for(10) < before);
    }

    #[test]
    fn hl_ghost_quick_return_promotes_and_penalises_demotion() {
        let mut c = ScipCore::new(10_000, ScipConfig::default());
        for i in 0..50u64 {
            c.on_evict(victim(1000 + i, true, 0, i, i, i + 100));
        }
        // Demoted object evicted at t=10, returns at t=20 (gap 10 < 100).
        c.on_evict(victim(8, false, 0, 5, 10, 10));
        let w_before = c.omega_m_for(10);
        let verdict = c.on_miss_lookup(ObjectId(8), 20);
        assert_eq!(verdict, Some(InsertPos::Mru));
        assert!(c.omega_m_for(10) > w_before, "demotion mistake raises ω_m");
    }

    #[test]
    fn demoted_hit_object_returning_boosts_promotion_arm() {
        let mut c = ScipCore::new(10_000, ScipConfig::default());
        for i in 0..50u64 {
            c.on_evict(victim(1000 + i, true, 0, i, i, i + 100));
        }
        let p_before = c.omega_p();
        // Object demoted at a hit (lives in H_l with had_hits), returns
        // quickly: the promotion arm was wrongly suppressed.
        c.on_evict(victim(9, false, 1, 5, 10, 12));
        c.on_miss_lookup(ObjectId(9), 20);
        assert!(c.omega_p() >= p_before);
    }

    #[test]
    fn wasted_final_hit_lowers_promotion_arm() {
        let mut c = ScipCore::new(10_000, ScipConfig::default());
        for i in 0..50u64 {
            c.on_evict(victim(1000 + i, true, 0, i, i, i + 100));
        }
        let p_before = c.omega_p();
        for i in 0..200u64 {
            // Hit at t=10, evicted at t=400: promotion bought nothing.
            c.on_evict(victim(100 + i, true, 1, 0, 10, 400));
        }
        assert!(
            c.omega_p() < p_before,
            "ω_p {} -> {}",
            p_before,
            c.omega_p()
        );
    }

    #[test]
    fn unknown_miss_leaves_weights_untouched() {
        let mut c = ScipCore::new(1000, ScipConfig::default());
        let before = c.omega_m_for(10);
        assert_eq!(c.on_miss_lookup(ObjectId(99), 5), None);
        assert_eq!(c.omega_m_for(10), before);
    }

    #[test]
    fn decide_follows_omega() {
        let mut c = ScipCore::new(1000, ScipConfig::default());
        let class = size_class(10);
        c.omega_m[class] = 0.98;
        let mru = (0..10_000)
            .filter(|_| c.decide(10) == InsertPos::Mru)
            .count();
        assert!(mru > 9_500, "mru picks {mru}");
        c.omega_m[class] = 0.02;
        let mru = (0..10_000)
            .filter(|_| c.decide(10) == InsertPos::Mru)
            .count();
        assert!(mru < 500, "mru picks {mru}");
    }

    #[test]
    fn size_classes_learn_independently() {
        let mut c = ScipCore::new(1_000_000, ScipConfig::default());
        // Big objects (1 MB class) keep getting evicted hitless; small
        // (10 B class) don't. Only the big class's arm should fall.
        let small_before = c.omega_m_for(10);
        for i in 0..500u64 {
            c.on_evict(victim_sized(i, 1 << 20, true, 0, i, i, i + 100));
            c.on_miss_lookup(ObjectId(i), i + 100_000);
        }
        assert!(c.omega_m_for(1 << 20) < 0.5);
        assert_eq!(c.omega_m_for(10), small_before);
    }

    #[test]
    fn multi_hit_objects_always_promote_to_mru() {
        let mut c = ScipCore::new(1000, ScipConfig::default());
        c.omega_p = OMEGA_FLOOR; // promotion arm fully suppressed
        assert!((0..100).all(|_| c.decide_promotion(2) == InsertPos::Mru));
        let mru = (0..1000)
            .filter(|_| c.decide_promotion(1) == InsertPos::Mru)
            .count();
        assert!(mru < 100, "first hits mostly demoted: {mru}");
    }

    #[test]
    fn weights_stay_clamped() {
        let mut c = ScipCore::new(10_000, ScipConfig::default());
        for i in 0..10_000u64 {
            c.on_evict(victim(i, true, 0, i, i, i + 1));
        }
        assert!(c.omega_m_for(10) >= OMEGA_FLOOR);
        for i in 0..10_000u64 {
            c.on_evict(victim(i, false, 0, i, i, i + 1));
            c.on_miss_lookup(ObjectId(i), i + 2);
        }
        assert!(c.omega_m_for(10) <= 1.0 - OMEGA_FLOOR);
    }

    #[test]
    fn history_budget_is_half_cache() {
        let c = ScipCore::new(1000, ScipConfig::default());
        assert_eq!(c.h_m.capacity(), 500);
        assert_eq!(c.h_l.capacity(), 500);
    }

    #[test]
    fn lambda_updates_fire_on_interval() {
        let cfg = ScipConfig {
            update_interval: 10,
            initial_lambda: 0.5,
            ..ScipConfig::default()
        };
        let mut c = ScipCore::new(1000, cfg);
        let mut saw_change = false;
        for _ in 0..1000 {
            c.on_request_end(false);
            if (c.lambda() - 0.5).abs() > 1e-12 {
                saw_change = true;
            }
        }
        assert!(saw_change, "λ should restart after stagnant windows");
    }

    #[test]
    fn learned_block_roundtrips() {
        let mut trained = ScipCore::new(10_000, ScipConfig::default());
        for i in 0..200u64 {
            c_evict_zro(&mut trained, i);
        }
        for _ in 0..50_000 {
            trained.on_request_end(false);
        }
        let block = trained.export_learned();
        let mut fresh = ScipCore::new(10_000, ScipConfig::default());
        assert!(fresh.restore_learned(&block));
        assert_eq!(fresh.omega_m, trained.omega_m);
        assert_eq!(fresh.omega_p, trained.omega_p);
        assert_eq!(fresh.traversal_est, trained.traversal_est);
        assert_eq!(fresh.lr.lambda(), trained.lr.lambda());
        fresh.audit().expect("restored core audits");
    }

    #[test]
    fn learned_block_rejects_malformed() {
        let c = ScipCore::new(10_000, ScipConfig::default());
        let block = c.export_learned();
        let mut fresh = ScipCore::new(10_000, ScipConfig::default());
        assert!(!fresh.restore_learned(&block[..block.len() - 1]));
        assert!(!fresh.restore_learned(&[]));
        let mut wrong_version = block.clone();
        wrong_version[0] = 99;
        assert!(!fresh.restore_learned(&wrong_version));
        let mut wrong_classes = block;
        wrong_classes[1] = 7;
        assert!(!fresh.restore_learned(&wrong_classes));
    }

    #[test]
    fn learned_block_hostile_values_stay_within_audit_bounds() {
        let c = ScipCore::new(10_000, ScipConfig::default());
        let block = c.export_learned();
        // Flip every single byte in turn; the restored core must always
        // either reject the block or clamp back into audit bounds.
        for i in 0..block.len() {
            for bit in 0..8 {
                let mut mutated = block.clone();
                mutated[i] ^= 1 << bit;
                let mut fresh = ScipCore::new(10_000, ScipConfig::default());
                fresh.restore_learned(&mutated);
                fresh.audit().expect("clamped restore audits");
            }
        }
    }

    fn c_evict_zro(c: &mut ScipCore, i: u64) {
        c.on_evict(victim(i, true, 0, i, i, i + 100));
    }

    #[test]
    fn tag_roundtrip() {
        let (last, hh) = unpack_tag(pack_tag(123_456, true));
        assert_eq!(last, 123_456);
        assert!(hh);
        let (last, hh) = unpack_tag(pack_tag(0, false));
        assert_eq!(last, 0);
        assert!(!hh);
    }
}
