//! SCIP — the Smart Cache Insertion and Promotion policy of Wang et al.
//! (ICPP 2023), the primary contribution this workspace reproduces.
//!
//! SCIP unifies the insertion policy (placement of *missing* objects) and
//! the promotion policy (re-placement of *hit* objects) by treating a hit
//! as a special miss. Two FIFO history lists record evicted objects by the
//! position their residency began at (`H_m` for MRU, `H_l` for LRU); ghost
//! hits in those lists drive multiplicative updates of the MRU/LRU
//! insertion probabilities `(ω_m, ω_l)` — a two-armed bandit — and the
//! learning rate `λ` follows the gradient-based stochastic hill climbing
//! of the paper's Algorithm 2, with random restarts after prolonged
//! stagnation.
//!
//! - [`core`]: [`ScipCore`] — the reusable MAB brain (histories, ω, λ),
//!   plus [`UpdateLr`], a standalone Algorithm 2.
//! - [`policy`]: [`Scip`] (Algorithm 1 on an LRU queue — "SCIP-LRU") and
//!   [`Sci`] (Algorithm 3: insertion only, hits always promote to MRU).
//! - [`enhance`]: the §4 integration harness — [`Enhanced`] puts a
//!   probationary region in front of any [`EvictionCore`] (LRU-K, LRB) and
//!   lets a [`PlacementBrain`] (SCIP or ASC-IP) steer placement, yielding
//!   LRU-K-SCIP, LRB-SCIP and their ASC-IP counterparts for Figure 12.

pub mod core;
pub mod enhance;
pub mod policy;

pub use crate::core::{ScipConfig, ScipCore, UpdateLr};
pub use enhance::{AscIpBrain, Enhanced, EvictionCore, PlacementBrain, ScipBrain};
pub use policy::{Sci, Scip};
