//! §4 integration: SCIP (or ASC-IP) as a placement layer over existing
//! replacement algorithms — producing LRU-K-SCIP, LRB-SCIP and the ASC-IP
//! reference enhancements of Figure 12.
//!
//! The mechanics follow the paper's Figure 5: the wrapped algorithm keeps
//! its victim-selection brain, while the placement brain decides, for
//! every missing *and* hit object, whether it deserves the protected
//! region (the wrapped algorithm's own structure) or the "LRU position".
//!
//! **Realising the LRU position on a non-queue host.** LRU-K and LRB have
//! no recency queue, so "insert at the LRU position" has no literal
//! analog. We use the steady-state equivalence: in a full cache, an object
//! placed at the eviction frontier is reclaimed before its next access
//! anyway, so the LRU position degenerates to *bypass* (for misses) and
//! *early drop* (for demoted hits). This preserves Algorithm 1's ghost
//! semantics exactly — bypassed/dropped objects are recorded in `H_l` as
//! if they had been inserted and immediately evicted, and a quick return
//! triggers the §3.2 rescue — while leaving the host's victim selection
//! untouched (a probationary region that is drained first was measured to
//! *fight* the host's eviction intelligence instead of complementing it).
//! Victims chosen by the host itself populate `H_m`.

use cdn_cache::policy::RejectReason;
use cdn_cache::{
    AccessKind, CachePolicy, FxHashMap, InsertPos, ObjectId, PolicyStats, Request, Tick,
};
use cdn_policies::replacement::{Lrb, LruK};

use crate::core::{ScipConfig, ScipCore, VictimInfo};

/// Everything a placement brain learns from an eviction.
#[derive(Debug, Clone, Copy)]
pub struct EvictInfo {
    /// Victim identity.
    pub id: ObjectId,
    /// Victim size in bytes.
    pub size: u64,
    /// Eviction tick.
    pub tick: Tick,
    /// Hits the victim received while resident.
    pub hits: u32,
    /// Tick of the victim's last access.
    pub last_access: Tick,
    /// Tick the victim's residency began.
    pub inserted_tick: Tick,
    /// True if the victim was living in the probationary (LRU-position)
    /// region.
    pub was_demoted: bool,
}

/// A placement decider pluggable into [`Enhanced`].
pub trait PlacementBrain {
    /// Name suffix for display ("SCIP", "ASC-IP").
    fn suffix(&self) -> &'static str;

    /// Miss-path ghost lookup (Algorithm 1 lines 6-13 for SCIP; no-op for
    /// heuristics).
    fn on_miss_lookup(&mut self, _id: ObjectId, _now: Tick) {}

    /// Placement for a missing object. The wrapper has already called
    /// [`PlacementBrain::on_miss_lookup`]; a SCIP brain folds the §3.2
    /// per-object verdict in here.
    fn decide_miss(&mut self, req: &Request) -> InsertPos;

    /// Placement for a hit object. `was_demoted` says where it currently
    /// lives; `prior_hits` counts hits before this one.
    fn decide_hit(&mut self, req: &Request, was_demoted: bool, prior_hits: u32) -> InsertPos;

    /// Eviction feedback.
    fn on_evict(&mut self, _info: &EvictInfo) {}

    /// Per-request clock (learning-rate windows).
    fn on_request_end(&mut self, _hit: bool) {}

    /// Brain state size in bytes.
    fn memory_bytes(&self) -> usize;
}

/// SCIP's bandit as a placement brain.
///
/// Unlike the standalone [`crate::Scip`] (which follows Algorithm 1's
/// probabilistic SELECT exactly), the enhancement brain acts
/// *conservatively*: it only overrides the host policy when the learned
/// weights carry strong evidence (`ω < DEMOTE_THRESHOLD`). A coin flip at
/// ω = 0.5 demotes half the traffic, which measurably fights a host whose
/// own victim selection is already good (LRU-K, LRB); thresholding keeps
/// cold-start behaviour identical to the host and lets SCIP carve out
/// only the confidently-dead classes.
#[derive(Debug, Clone)]
pub struct ScipBrain {
    core: ScipCore,
    pending_verdict: Option<InsertPos>,
    /// Demote only when the relevant arm's weight falls below this.
    pub demote_threshold: f64,
}

impl ScipBrain {
    /// Brain for a cache of `capacity` bytes. Always runs the core in
    /// host mode (see [`ScipConfig::host_mode`]).
    pub fn new(capacity: u64, cfg: ScipConfig) -> Self {
        let cfg = ScipConfig {
            host_mode: true,
            ..cfg
        };
        ScipBrain {
            core: ScipCore::new(capacity, cfg),
            pending_verdict: None,
            demote_threshold: 0.05,
        }
    }

    /// The wrapped engine (diagnostics).
    pub fn core(&self) -> &ScipCore {
        &self.core
    }
}

impl PlacementBrain for ScipBrain {
    fn suffix(&self) -> &'static str {
        "SCIP"
    }

    fn on_miss_lookup(&mut self, id: ObjectId, now: Tick) {
        // Host mode in the core: only rescue verdicts are produced.
        self.pending_verdict = self.core.on_miss_lookup(id, now);
    }

    fn decide_miss(&mut self, req: &Request) -> InsertPos {
        if let Some(v) = self.pending_verdict.take() {
            return v;
        }
        if self.core.omega_m_for(req.size) < self.demote_threshold {
            InsertPos::Lru
        } else {
            InsertPos::Mru
        }
    }

    fn decide_hit(&mut self, _req: &Request, _was_demoted: bool, _prior_hits: u32) -> InsertPos {
        // Non-queue hosts have no promotion position: a hit just updates
        // the host's own bookkeeping. The P-ZRO eviction signal that tunes
        // ω_p is queue-relative (it compares time-since-last-hit with an
        // LRU traversal estimate) and mis-fires on hosts whose victims die
        // young by design, so drop-on-hit is disabled here; the insertion
        // half carries the enhancement (§4's "complement to a
        // machine-learning model to determine the insertion position").
        InsertPos::Mru
    }

    fn on_evict(&mut self, info: &EvictInfo) {
        self.core.on_evict(VictimInfo {
            id: info.id,
            size: info.size,
            tick: info.tick,
            inserted_at_mru: !info.was_demoted,
            hits: info.hits,
            last_access: info.last_access,
            inserted_tick: info.inserted_tick,
        });
    }

    fn on_request_end(&mut self, hit: bool) {
        self.core.on_request_end(hit);
    }

    fn memory_bytes(&self) -> usize {
        self.core.memory_bytes()
    }
}

/// ASC-IP's adaptive size threshold as a placement brain (the Figure 12
/// reference enhancement). Hits always go protected; only the insertion of
/// missing objects is size-gated.
#[derive(Debug, Clone)]
pub struct AscIpBrain {
    threshold: f64,
    delta: f64,
}

impl AscIpBrain {
    /// Start at a 1 MB threshold (as in the standalone ASC-IP baseline).
    pub fn new() -> Self {
        AscIpBrain {
            threshold: 1024.0 * 1024.0,
            delta: 0.02,
        }
    }

    /// Current threshold (diagnostics).
    pub fn threshold(&self) -> f64 {
        self.threshold
    }
}

impl Default for AscIpBrain {
    fn default() -> Self {
        Self::new()
    }
}

impl PlacementBrain for AscIpBrain {
    fn suffix(&self) -> &'static str {
        "ASC-IP"
    }

    fn decide_miss(&mut self, req: &Request) -> InsertPos {
        if (req.size as f64) >= self.threshold {
            InsertPos::Lru
        } else {
            InsertPos::Mru
        }
    }

    fn decide_hit(&mut self, _req: &Request, was_demoted: bool, prior_hits: u32) -> InsertPos {
        if was_demoted && prior_hits == 0 {
            // False ZRO call: relax the threshold.
            self.threshold *= 1.0 + self.delta;
        }
        InsertPos::Mru
    }

    fn on_evict(&mut self, info: &EvictInfo) {
        if info.hits == 0 && !info.was_demoted {
            self.threshold = (self.threshold * (1.0 - self.delta)).max(64.0);
        }
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }
}

/// Minimal surface an algorithm must expose to be SCIP-enhanced: admit,
/// remove, victim selection and hit bookkeeping, with the *wrapper* owning
/// the byte budget.
pub trait EvictionCore {
    /// Base display name ("LRU-2", "LRB").
    fn base_name(&self) -> String;
    /// Residency test.
    fn contains(&self, id: ObjectId) -> bool;
    /// Hit bookkeeping (frequency updates, model sampling…).
    fn touch(&mut self, req: &Request);
    /// Admit without capacity enforcement.
    fn admit(&mut self, req: &Request);
    /// Remove a resident object, returning its size.
    fn remove(&mut self, id: ObjectId) -> Option<u64>;
    /// Pick and remove this algorithm's preferred victim.
    fn evict_victim(&mut self, now: Tick) -> Option<(ObjectId, u64)>;
    /// Bytes resident in the core.
    fn used_bytes(&self) -> u64;
    /// Metadata footprint.
    fn memory_bytes(&self) -> usize;
}

impl EvictionCore for LruK {
    fn base_name(&self) -> String {
        CachePolicy::name(self).to_string()
    }
    fn contains(&self, id: ObjectId) -> bool {
        LruK::contains(self, id)
    }
    fn touch(&mut self, req: &Request) {
        LruK::touch(self, req.id, req.tick);
    }
    fn admit(&mut self, req: &Request) {
        LruK::admit(self, req);
    }
    fn remove(&mut self, id: ObjectId) -> Option<u64> {
        LruK::remove(self, id)
    }
    fn evict_victim(&mut self, _now: Tick) -> Option<(ObjectId, u64)> {
        LruK::evict_victim(self)
    }
    fn used_bytes(&self) -> u64 {
        CachePolicy::used_bytes(self)
    }
    fn memory_bytes(&self) -> usize {
        CachePolicy::memory_bytes(self)
    }
}

impl EvictionCore for Lrb {
    fn base_name(&self) -> String {
        CachePolicy::name(self).to_string()
    }
    fn contains(&self, id: ObjectId) -> bool {
        Lrb::contains(self, id)
    }
    fn touch(&mut self, req: &Request) {
        Lrb::touch(self, req);
    }
    fn admit(&mut self, req: &Request) {
        Lrb::admit(self, req);
    }
    fn remove(&mut self, id: ObjectId) -> Option<u64> {
        Lrb::remove(self, id)
    }
    fn evict_victim(&mut self, now: Tick) -> Option<(ObjectId, u64)> {
        Lrb::evict_victim(self, now)
    }
    fn used_bytes(&self) -> u64 {
        CachePolicy::used_bytes(self)
    }
    fn memory_bytes(&self) -> usize {
        CachePolicy::memory_bytes(self)
    }
}

/// Residency bookkeeping the wrapper keeps for every object (the cores
/// don't expose per-residency timestamps).
#[derive(Debug, Clone, Copy)]
struct Residency {
    hits: u32,
    inserted_tick: Tick,
    last_access: Tick,
}

/// A replacement algorithm enhanced with a placement brain.
#[derive(Debug)]
pub struct Enhanced<C, B> {
    core: C,
    brain: B,
    residency: FxHashMap<ObjectId, Residency>,
    capacity: u64,
    name: String,
    stats: PolicyStats,
}

impl<C: EvictionCore, B: PlacementBrain> Enhanced<C, B> {
    /// Wrap `core` (which must be constructed unbounded or with the same
    /// capacity — the wrapper enforces the byte budget) with `brain`.
    pub fn new(core: C, brain: B, capacity: u64) -> Self {
        let name = format!("{}-{}", core.base_name(), brain.suffix());
        Enhanced {
            core,
            brain,
            residency: FxHashMap::default(),
            capacity,
            name,
            stats: PolicyStats::default(),
        }
    }

    /// The placement brain (diagnostics).
    pub fn brain(&self) -> &B {
        &self.brain
    }

    fn evict_for(&mut self, size: u64, tick: Tick) {
        while self.core.used_bytes().saturating_add(size) > self.capacity {
            let (id, vsize) = self
                .core
                .evict_victim(tick)
                .expect("over budget implies nonempty");
            let r = self.residency.remove(&id).unwrap_or(Residency {
                hits: 0,
                inserted_tick: tick,
                last_access: tick,
            });
            self.brain.on_evict(&EvictInfo {
                id,
                size: vsize,
                tick,
                hits: r.hits,
                last_access: r.last_access,
                inserted_tick: r.inserted_tick,
                was_demoted: false,
            });
            self.stats.evictions += 1;
        }
    }

    /// Record an object sent to the "LRU position" (bypassed or dropped)
    /// as an immediate `H_l` eviction.
    fn record_demotion(&mut self, id: ObjectId, size: u64, tick: Tick, r: Residency) {
        self.brain.on_evict(&EvictInfo {
            id,
            size,
            tick,
            hits: r.hits,
            last_access: r.last_access,
            inserted_tick: r.inserted_tick,
            was_demoted: true,
        });
    }
}

impl<C: EvictionCore, B: PlacementBrain> CachePolicy for Enhanced<C, B> {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_request(&mut self, req: &Request) -> AccessKind {
        let outcome = if self.core.contains(req.id) {
            let prior = self.residency.get(&req.id).map_or(0, |r| r.hits);
            if let Some(r) = self.residency.get_mut(&req.id) {
                r.hits += 1;
                r.last_access = req.tick;
            }
            match self.brain.decide_hit(req, false, prior) {
                InsertPos::Mru => self.core.touch(req),
                InsertPos::Lru => {
                    // P-ZRO suspected: early drop = LRU-position placement.
                    self.core.remove(req.id).expect("resident");
                    let r = self
                        .residency
                        .remove(&req.id)
                        .expect("resident objects are tracked");
                    self.record_demotion(req.id, req.size, req.tick, r);
                }
            }
            AccessKind::Hit
        } else if req.size > self.capacity {
            AccessKind::Rejected(RejectReason::TooLarge)
        } else {
            self.brain.on_miss_lookup(req.id, req.tick);
            match self.brain.decide_miss(req) {
                InsertPos::Mru => {
                    self.evict_for(req.size, req.tick);
                    self.residency.insert(
                        req.id,
                        Residency {
                            hits: 0,
                            inserted_tick: req.tick,
                            last_access: req.tick,
                        },
                    );
                    self.core.admit(req);
                    self.stats.insertions += 1;
                }
                InsertPos::Lru => {
                    // ZRO suspected: bypass = LRU-position placement.
                    self.record_demotion(
                        req.id,
                        req.size,
                        req.tick,
                        Residency {
                            hits: 0,
                            inserted_tick: req.tick,
                            last_access: req.tick,
                        },
                    );
                }
            }
            AccessKind::Miss
        };
        self.brain.on_request_end(outcome.is_hit());
        outcome
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used_bytes(&self) -> u64 {
        self.core.used_bytes()
    }

    fn memory_bytes(&self) -> usize {
        self.core.memory_bytes()
            + self.brain.memory_bytes()
            + self.residency.capacity() * (8 + std::mem::size_of::<Residency>() + 8)
    }

    fn stats(&self) -> PolicyStats {
        PolicyStats {
            resident_objects: self.residency.len(),
            resident_bytes: self.core.used_bytes(),
            ..self.stats
        }
    }
}

/// LRU-K enhanced with SCIP (Figure 12).
pub fn lruk_scip(capacity: u64, k: usize, seed: u64) -> Enhanced<LruK, ScipBrain> {
    Enhanced::new(
        LruK::with_k(u64::MAX, k),
        ScipBrain::new(
            capacity,
            ScipConfig {
                seed,
                initial_omega_m: 0.8,
                ..ScipConfig::default()
            },
        ),
        capacity,
    )
}

/// LRU-K enhanced with ASC-IP (Figure 12 reference).
pub fn lruk_ascip(capacity: u64, k: usize) -> Enhanced<LruK, AscIpBrain> {
    Enhanced::new(LruK::with_k(u64::MAX, k), AscIpBrain::new(), capacity)
}

/// LRB enhanced with SCIP (Figure 12).
pub fn lrb_scip(
    capacity: u64,
    cfg: cdn_policies::replacement::LrbConfig,
    seed: u64,
) -> Enhanced<Lrb, ScipBrain> {
    Enhanced::new(
        Lrb::with_config(u64::MAX, cfg, seed),
        ScipBrain::new(
            capacity,
            ScipConfig {
                seed,
                initial_omega_m: 0.8,
                ..ScipConfig::default()
            },
        ),
        capacity,
    )
}

/// LRB enhanced with ASC-IP (Figure 12 reference).
pub fn lrb_ascip(
    capacity: u64,
    cfg: cdn_policies::replacement::LrbConfig,
    seed: u64,
) -> Enhanced<Lrb, AscIpBrain> {
    Enhanced::new(
        Lrb::with_config(u64::MAX, cfg, seed),
        AscIpBrain::new(),
        capacity,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdn_cache::object::micro_trace;
    use cdn_policies::replay;

    fn churn_trace() -> Vec<Request> {
        let mut reqs = Vec::new();
        let mut next = 10_000u64;
        for i in 0..20_000u64 {
            if i % 4 == 0 {
                reqs.push((i / 4 % 25, 10));
            } else {
                reqs.push((next, 10));
                next += 1;
            }
        }
        micro_trace(&reqs)
    }

    #[test]
    fn budget_enforced_for_lruk_scip() {
        let mut p = lruk_scip(300, 2, 1);
        for r in churn_trace() {
            p.on_request(&r);
            assert!(p.used_bytes() <= 300, "used {}", p.used_bytes());
        }
        assert_eq!(p.name(), "LRU-2-SCIP");
    }

    #[test]
    fn budget_enforced_for_lrb_scip() {
        let cfg = cdn_policies::replacement::LrbConfig {
            memory_window: 4_000,
            train_interval: 2_000,
            min_train_samples: 256,
            ..Default::default()
        };
        let mut p = lrb_scip(300, cfg, 1);
        for r in churn_trace() {
            p.on_request(&r);
            assert!(p.used_bytes() <= 300);
        }
        assert_eq!(p.name(), "LRB-SCIP");
    }

    #[test]
    fn scip_enhancement_helps_lruk_on_wonder_heavy_load() {
        use cdn_policies::replacement::LruK;
        let t = churn_trace();
        let cap = 300;
        let mut plain = LruK::new(cap);
        let mut enhanced = lruk_scip(cap, 2, 3);
        let a = replay(&mut plain, &t).miss_ratio();
        let b = replay(&mut enhanced, &t).miss_ratio();
        assert!(b <= a + 0.02, "LRU-K-SCIP {b} vs LRU-K {a}");
    }

    #[test]
    fn demoted_misses_are_bypassed_into_hl() {
        let mut p = lruk_ascip(30, 2);
        // Force all inserts demoted by an aggressive threshold.
        p.brain.threshold = 1.0;
        for r in micro_trace(&[(1, 10), (2, 10), (3, 10), (4, 10)]) {
            p.on_request(&r);
        }
        // Nothing admitted; the cache stays empty.
        assert_eq!(p.used_bytes(), 0);
        assert!(!p.core.contains(cdn_cache::ObjectId(4)));
    }

    #[test]
    fn bypassed_object_rescued_on_quick_return() {
        let mut p = lruk_scip(1000, 2, 5);
        // Hammer one object: whatever the first decisions were, the ghost
        // rescue (H_l quick return → forced MRU) must converge to hits.
        let mut last_hit = false;
        for i in 0..50u64 {
            last_hit = p.on_request(&cdn_cache::Request::new(i, 7, 10)).is_hit();
        }
        assert!(last_hit, "object must end up cached and hitting");
    }

    #[test]
    fn ascip_brain_threshold_adapts() {
        let mut b = AscIpBrain::new();
        let t0 = b.threshold();
        for i in 0..100 {
            b.on_evict(&EvictInfo {
                id: cdn_cache::ObjectId(i),
                size: 10,
                tick: i,
                hits: 0,
                last_access: i,
                inserted_tick: i,
                was_demoted: false,
            });
        }
        assert!(b.threshold() < t0);
        let t1 = b.threshold();
        let req = cdn_cache::Request::new(0, 1, 10);
        b.decide_hit(&req, true, 0); // false positive
        assert!(b.threshold() > t1);
    }
}
