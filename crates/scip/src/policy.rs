//! Algorithm 1 (SCIP) and Algorithm 3 (SCI) on the LRU victim policy.

use cdn_cache::policy::RejectReason;
use cdn_cache::{AccessKind, CachePolicy, InsertPos, LruQueue, ObjectId, PolicyStats, Request};

use crate::core::{ScipConfig, ScipCore, VictimInfo};

/// SCIP-LRU: the paper's Algorithm 1.
///
/// - Hits are treated as special misses: the object is `REMOVE`d (no
///   history write) and re-inserted through the same bimodal SELECT as a
///   missing object — this is the promotion-as-insertion unification.
/// - Misses consult `H_m`/`H_l` (adjusting `ω`), evict as needed
///   (recording victims in the history list matching their `insert_pos`),
///   then insert by SELECT.
#[derive(Debug, Clone)]
pub struct Scip {
    cache: LruQueue,
    core: ScipCore,
    stats: PolicyStats,
    name: String,
}

impl Scip {
    /// SCIP with the paper's defaults.
    pub fn new(capacity: u64, seed: u64) -> Self {
        Self::with_config(
            capacity,
            ScipConfig {
                seed,
                ..ScipConfig::default()
            },
        )
    }

    /// SCIP with explicit configuration.
    pub fn with_config(capacity: u64, cfg: ScipConfig) -> Self {
        Scip {
            cache: LruQueue::new(capacity),
            core: ScipCore::new(capacity, cfg),
            stats: PolicyStats::default(),
            name: "SCIP".to_string(),
        }
    }

    /// The decision engine (diagnostics/ablations).
    pub fn core(&self) -> &ScipCore {
        &self.core
    }

    /// The queue (tests).
    pub fn queue(&self) -> &LruQueue {
        &self.cache
    }

    /// Full invariant walk: queue structure + ledger (see
    /// [`LruQueue::audit`]) and the SCIP learned state + history lists
    /// (see [`ScipCore::audit`]). Called on every request when built with
    /// `--features audit`.
    pub fn audit(&self) -> Result<(), String> {
        self.cache.audit()?;
        self.core.audit()
    }

    fn insert_by_select(&mut self, req: &Request) {
        match self.core.decide(req.size) {
            InsertPos::Mru => self.cache.insert_mru(req.id, req.size, req.tick),
            InsertPos::Lru => self.cache.insert_lru(req.id, req.size, req.tick),
        };
        self.stats.insertions += 1;
    }

    fn evict_for(&mut self, size: u64, tick: u64) {
        while self.cache.needs_eviction_for(size) {
            let v = self.cache.evict_lru().expect("nonempty");
            self.core.on_evict(VictimInfo {
                id: v.id,
                size: v.size,
                tick,
                inserted_at_mru: v.inserted_at_mru,
                hits: v.hits,
                last_access: v.last_access,
                inserted_tick: v.inserted_tick,
            });
            self.stats.evictions += 1;
        }
    }
}

impl CachePolicy for Scip {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_request(&mut self, req: &Request) -> AccessKind {
        let outcome = if let Some(h) = self.cache.lookup(req.id) {
            // PROMOTE = REMOVE (no history write) + INSERT by SELECT,
            // realised as an in-place move: one hash probe, no slab churn,
            // identical queue order and metadata.
            let hits = self.cache.hits_at(h);
            match self.core.decide_promotion(hits + 1) {
                InsertPos::Mru => {
                    self.cache.record_promotion_at(h, true, req.tick);
                    self.cache.promote_to_mru_at(h);
                }
                InsertPos::Lru => {
                    self.cache.record_promotion_at(h, false, req.tick);
                    self.cache.demote_to_lru_at(h);
                }
            }
            AccessKind::Hit
        } else if !self.cache.admissible(req.size) {
            // Oversized: rejected before the history lookup so neither the
            // ghost lists nor the weights see the hopeless object.
            AccessKind::Rejected(RejectReason::TooLarge)
        } else {
            let verdict = self.core.on_miss_lookup(req.id, req.tick);
            self.evict_for(req.size, req.tick);
            match verdict {
                // §3.2 judgement: the object's own history decides.
                Some(InsertPos::Mru) => {
                    self.cache.insert_mru(req.id, req.size, req.tick);
                    self.stats.insertions += 1;
                }
                Some(InsertPos::Lru) => {
                    self.cache.insert_lru(req.id, req.size, req.tick);
                    self.stats.insertions += 1;
                }
                // No history: bimodal SELECT on the learned weights.
                None => self.insert_by_select(req),
            }
            AccessKind::Miss
        };
        self.core.on_request_end(outcome.is_hit());
        #[cfg(feature = "audit")]
        self.audit().expect("SCIP invariants");
        outcome
    }

    fn capacity(&self) -> u64 {
        self.cache.capacity()
    }

    fn used_bytes(&self) -> u64 {
        self.cache.used_bytes()
    }

    fn memory_bytes(&self) -> usize {
        self.cache.memory_bytes() + self.core.memory_bytes()
    }

    fn stats(&self) -> PolicyStats {
        PolicyStats {
            resident_objects: self.cache.len(),
            resident_bytes: self.cache.used_bytes(),
            ..self.stats
        }
    }

    #[inline]
    fn prefetch_hint(&self, id: ObjectId) {
        self.cache.prefetch_lookup(id);
    }

    fn for_each_resident(&self, visit: &mut dyn FnMut(&cdn_cache::ResidentEntry)) -> bool {
        cdn_cache::export_lru_queue(&self.cache, 0, visit);
        true
    }

    fn restore_resident(&mut self, entries: &[cdn_cache::ResidentEntry]) -> bool {
        // Queue order and per-entry residency marks (insert position, hit
        // counts) are reconstructed exactly; the ghost lists restart empty
        // and re-accumulate from post-restart evictions.
        cdn_cache::restore_lru_queue(&mut self.cache, entries);
        true
    }

    fn export_learned(&self) -> Option<Vec<u8>> {
        Some(self.core.export_learned())
    }

    fn restore_learned(&mut self, block: &[u8]) -> bool {
        self.core.restore_learned(block)
    }
}

/// SCI: Algorithm 3 — SCIP without the promotion half. Hits always go to
/// the MRU position; only missing objects pass through the bandit. The
/// paper's Figure 7 ablation.
#[derive(Debug, Clone)]
pub struct Sci {
    cache: LruQueue,
    core: ScipCore,
    stats: PolicyStats,
}

impl Sci {
    /// SCI with the paper's defaults.
    pub fn new(capacity: u64, seed: u64) -> Self {
        Self::with_config(
            capacity,
            ScipConfig {
                seed,
                ..ScipConfig::default()
            },
        )
    }

    /// SCI with explicit configuration.
    pub fn with_config(capacity: u64, cfg: ScipConfig) -> Self {
        Sci {
            cache: LruQueue::new(capacity),
            core: ScipCore::new(capacity, cfg),
            stats: PolicyStats::default(),
        }
    }

    /// The decision engine (diagnostics).
    pub fn core(&self) -> &ScipCore {
        &self.core
    }
}

impl CachePolicy for Sci {
    fn name(&self) -> &str {
        "SCI"
    }

    fn on_request(&mut self, req: &Request) -> AccessKind {
        let outcome = if let Some(h) = self.cache.lookup(req.id) {
            // Algorithm 3 lines 3-5: hits re-enter at MRU unconditionally
            // (in-place promotion: one hash probe, same queue order).
            self.cache.record_promotion_at(h, true, req.tick);
            self.cache.promote_to_mru_at(h);
            AccessKind::Hit
        } else if !self.cache.admissible(req.size) {
            AccessKind::Rejected(RejectReason::TooLarge)
        } else {
            let verdict = self.core.on_miss_lookup(req.id, req.tick);
            while self.cache.needs_eviction_for(req.size) {
                let v = self.cache.evict_lru().expect("nonempty");
                self.core.on_evict(VictimInfo {
                    id: v.id,
                    size: v.size,
                    tick: req.tick,
                    inserted_at_mru: v.inserted_at_mru,
                    hits: v.hits,
                    last_access: v.last_access,
                    inserted_tick: v.inserted_tick,
                });
                self.stats.evictions += 1;
            }
            let pos = verdict.unwrap_or_else(|| self.core.decide(req.size));
            match pos {
                cdn_cache::InsertPos::Mru => self.cache.insert_mru(req.id, req.size, req.tick),
                cdn_cache::InsertPos::Lru => self.cache.insert_lru(req.id, req.size, req.tick),
            };
            self.stats.insertions += 1;
            AccessKind::Miss
        };
        self.core.on_request_end(outcome.is_hit());
        #[cfg(feature = "audit")]
        {
            self.cache.audit().expect("SCI queue invariants");
            self.core.audit().expect("SCI core invariants");
        }
        outcome
    }

    fn capacity(&self) -> u64 {
        self.cache.capacity()
    }

    fn used_bytes(&self) -> u64 {
        self.cache.used_bytes()
    }

    fn memory_bytes(&self) -> usize {
        self.cache.memory_bytes() + self.core.memory_bytes()
    }

    fn stats(&self) -> PolicyStats {
        PolicyStats {
            resident_objects: self.cache.len(),
            resident_bytes: self.cache.used_bytes(),
            ..self.stats
        }
    }

    #[inline]
    fn prefetch_hint(&self, id: ObjectId) {
        self.cache.prefetch_lookup(id);
    }

    fn for_each_resident(&self, visit: &mut dyn FnMut(&cdn_cache::ResidentEntry)) -> bool {
        cdn_cache::export_lru_queue(&self.cache, 0, visit);
        true
    }

    fn restore_resident(&mut self, entries: &[cdn_cache::ResidentEntry]) -> bool {
        cdn_cache::restore_lru_queue(&mut self.cache, entries);
        true
    }

    fn export_learned(&self) -> Option<Vec<u8>> {
        Some(self.core.export_learned())
    }

    fn restore_learned(&mut self, block: &[u8]) -> bool {
        self.core.restore_learned(block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdn_cache::object::micro_trace;
    use cdn_cache::ObjectId;
    use cdn_policies::replacement::lru::Lru;
    use cdn_policies::replay;

    #[test]
    fn capacity_and_accounting() {
        let reqs: Vec<(u64, u64)> = (0..5000).map(|i| (i * 7 % 300, 1 + i % 10)).collect();
        let t = micro_trace(&reqs);
        let mut p = Scip::new(200, 1);
        for r in &t {
            p.on_request(r);
            assert!(p.used_bytes() <= 200);
        }
        let s = p.stats();
        assert!(s.evictions > 0 && s.insertions > 0);
    }

    #[test]
    fn promotion_does_not_write_history() {
        let mut p = Scip::new(100, 1);
        for r in micro_trace(&[(1, 10), (1, 10), (1, 10)]) {
            p.on_request(&r);
        }
        // Hits only re-place the object; no eviction ⇒ empty histories.
        assert!(p.core().h_m.is_empty());
        assert!(p.core().h_l.is_empty());
        assert_eq!(p.queue().get(ObjectId(1)).unwrap().hits, 2);
    }

    #[test]
    fn evictions_route_to_matching_history_list() {
        let mut p = Scip::new(20, 3);
        // Fill and churn; every ghost entry must match its insert mark.
        let reqs: Vec<(u64, u64)> = (0..400).map(|i| (i, 10)).collect();
        for r in micro_trace(&reqs) {
            p.on_request(&r);
        }
        assert!(!p.core().h_m.is_empty() || !p.core().h_l.is_empty());
    }

    #[test]
    fn learns_to_demote_one_hit_wonders() {
        // 80% one-hit wonders + small hot set: ω_m should fall well below
        // its 0.5 prior as H_m ghost hits accumulate… but note ghost hits
        // require *re-access* of an evicted object. One-hit wonders never
        // re-access, so the signal comes from hot objects evicted after
        // MRU inserts. Either way SCIP must beat LRU here.
        let mut reqs = Vec::new();
        let mut next = 10_000u64;
        for i in 0..30_000u64 {
            if i % 5 == 0 {
                reqs.push((i / 5 % 30, 10)); // hot set of 30, distance 150
            } else {
                reqs.push((next, 10));
                next += 1;
            }
        }
        let t = micro_trace(&reqs);
        let cap = 500; // 50 objects: hot set doesn't survive MRU churn
        let mut scip = Scip::new(cap, 5);
        let mut lru = Lru::new(cap);
        let s = replay(&mut scip, &t).miss_ratio();
        let l = replay(&mut lru, &t).miss_ratio();
        assert!(s < l, "SCIP {s} vs LRU {l}");
    }

    #[test]
    fn scip_beats_sci_on_pzro_heavy_workload() {
        // Burst objects: hit exactly once shortly after insertion, then
        // dead (textbook P-ZROs). SCI promotes them to MRU where they rot;
        // SCIP learns to demote on promotion too.
        let mut reqs = Vec::new();
        let mut next = 100_000u64;
        for i in 0..40_000u64 {
            match i % 5 {
                0 => {
                    reqs.push((next, 10)); // burst insert
                }
                1 => {
                    reqs.push((next, 10)); // burst hit → P-ZRO
                    next += 1;
                }
                _ => {
                    reqs.push((i / 5 % 40, 10)); // hot set, distance ~120
                }
            }
        }
        let t = micro_trace(&reqs);
        let cap = 350;
        let mut scip = Scip::new(cap, 7);
        let mut sci = Sci::new(cap, 7);
        let s = replay(&mut scip, &t).miss_ratio();
        let c = replay(&mut sci, &t).miss_ratio();
        assert!(s <= c + 0.01, "SCIP {s} vs SCI {c}");
    }

    #[test]
    fn sci_promotes_hits_to_mru_always() {
        let mut p = Sci::new(100, 1);
        for r in micro_trace(&[(1, 10), (2, 10), (1, 10)]) {
            p.on_request(&r);
        }
        assert_eq!(p.cache.peek_mru().unwrap().id, ObjectId(1));
        assert!(p.cache.peek_mru().unwrap().inserted_at_mru);
    }

    #[test]
    fn deterministic_given_seed() {
        let reqs: Vec<(u64, u64)> = (0..3000).map(|i| (i * 11 % 200, 1 + i % 7)).collect();
        let t = micro_trace(&reqs);
        let mut a = Scip::new(100, 9);
        let mut b = Scip::new(100, 9);
        assert_eq!(replay(&mut a, &t).misses(), replay(&mut b, &t).misses());
    }
}
