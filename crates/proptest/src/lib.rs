//! Dependency-free stand-in for the `proptest` crate.
//!
//! The workspace builds in an offline environment with no crates.io
//! access, so this crate vendors the subset of the proptest API the
//! workspace's property tests actually use:
//!
//! - [`Strategy`] over integer/float ranges, tuples, [`Just`], `any::<T>()`,
//!   `prop_map`, [`prop_oneof!`] unions and [`collection::vec`].
//! - The [`proptest!`] macro (including `#![proptest_config(..)]`) and the
//!   `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` macros.
//!
//! Differences from real proptest: failing inputs are not shrunk (the
//! failing case's seed is printed instead so it can be replayed with
//! `PROPTEST_SEED`), and the default case count is 64 (override with the
//! `PROPTEST_CASES` environment variable).

use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic splitmix64 generator driving all value generation.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        TestRng(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// How many cases each property runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Cases per property (default 64).
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// Case count after applying the `PROPTEST_CASES` env override.
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
    }
}

/// Per-test root seed: `PROPTEST_SEED` (default) mixed with the test name.
pub fn test_seed(name: &str) -> u64 {
    let base: u64 = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0x5EED_CAFE);
    // FNV-1a over the test name so sibling tests draw distinct streams.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    base ^ h
}

/// Prints the failing case's coordinates if the test body panics.
pub struct CaseGuard {
    name: &'static str,
    case: u32,
    seed: u64,
}

impl CaseGuard {
    /// Arm the guard for one case.
    pub fn new(name: &'static str, case: u32, seed: u64) -> Self {
        CaseGuard { name, case, seed }
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest shim: {} failed at case {} (case seed {:#x}); \
                 rerun with PROPTEST_SEED to reproduce the run",
                self.name, self.case, self.seed
            );
        }
    }
}

/// A generator of values for one property parameter.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + (rng.next_u64() % span) as i64) as $t
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() as f32 * (self.end - self.start)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Whole-domain generation for primitives (the `any::<T>()` strategy).
pub trait Arbitrary {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_f64()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        rng.next_f64() as f32
    }
}

/// Strategy form of [`Arbitrary`]; see [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Any value of a primitive type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! tuple_strategy {
    ($(($($s:ident/$idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0, B/1);
    (A/0, B/1, C/2);
    (A/0, B/1, C/2, D/3);
    (A/0, B/1, C/2, D/3, E/4);
}

/// Uniform choice between boxed arms (the [`prop_oneof!`] strategy).
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Union over `arms`; must be non-empty.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// `Vec`s of `element` values with length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    /// Output of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Define property tests: `proptest! { #[test] fn f(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = ($crate::ProptestConfig::default()); $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __seed = $crate::test_seed(stringify!($name));
            let mut __rng = $crate::TestRng::new(__seed);
            for __case in 0..__config.effective_cases() {
                let __case_seed = __rng.next_u64();
                let __guard =
                    $crate::CaseGuard::new(stringify!($name), __case, __case_seed);
                let mut __case_rng = $crate::TestRng::new(__case_seed);
                $(let $pat =
                    $crate::Strategy::generate(&($strat), &mut __case_rng);)*
                { $body }
                ::std::mem::drop(__guard);
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

/// Assert within a property (no shrinking; fails the case immediately).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assert within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assert within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(::std::boxed::Box::new($arm)
                as ::std::boxed::Box<dyn $crate::Strategy<Value = _>>),+
        ])
    };
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u64..9), &mut rng);
            assert!((3..9).contains(&v));
            let f = Strategy::generate(&(0.25f64..0.75), &mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn vec_lengths_respect_range() {
        let mut rng = TestRng::new(2);
        for _ in 0..200 {
            let v = Strategy::generate(
                &crate::collection::vec((0u64..10, 1u64..5), 1..40),
                &mut rng,
            );
            assert!((1..40).contains(&v.len()));
            for (a, b) in v {
                assert!(a < 10 && (1..5).contains(&b));
            }
        }
    }

    #[test]
    fn determinism_per_seed() {
        let mut a = TestRng::new(7);
        let mut b = TestRng::new(7);
        let s = crate::collection::vec(0u64..100, 5..6);
        assert_eq!(
            Strategy::generate(&s, &mut a),
            Strategy::generate(&s, &mut b)
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        /// The macro itself compiles with config, map, oneof and tuples.
        #[test]
        fn macro_smoke(xs in crate::collection::vec(0u32..50, 1..20), flag in any::<bool>()) {
            prop_assert!(xs.len() < 20);
            prop_assert_eq!(flag, flag);
            prop_assert_ne!(xs.len(), 20);
        }
    }
}
