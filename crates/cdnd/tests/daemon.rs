//! Integration tests for the daemon's calm-path contracts: ledger
//! exactness against the library's serial sharded replay, bounded load
//! shedding, drain-on-shutdown, reject-and-keep-old reload, and the
//! deterministic live policy switch. (Crash/restart behaviour needs the
//! failpoint registry and lives in `supervision_check.rs` behind
//! `--features fault-injection`.)

use std::time::Duration;

use cdn_cache::{ObjectId, Request, Tick};
use cdn_sim::PolicyKind;
use cdn_trace::{GeneratorConfig, TraceGenerator};
use cdnd::{
    feed, ledger_diff, switchable_factory, Daemon, DaemonConfig, DaemonConfigError, FeedMode,
    RestartConfig, RouteConfig, ShardPlan, SnapshotConfig,
};
use tdc::SwitchableScip;

fn small_trace(requests: u64, seed: u64) -> Vec<Request> {
    TraceGenerator::generate(GeneratorConfig {
        requests,
        core_objects: 2_000,
        seed,
        ..GeneratorConfig::default()
    })
}

fn calm_mode() -> FeedMode {
    FeedMode::FailFast {
        push_timeout: Duration::from_secs(10),
    }
}

const QUIESCE: Duration = Duration::from_secs(30);

/// Calm daemon ledgers equal `run_sharded_serial` u64-for-u64, per shard,
/// for both a simple and a context-sensitive policy.
#[test]
fn calm_ledgers_match_serial_reference_exactly() {
    let trace = small_trace(30_000, 11);
    let total_capacity = 4 << 20;
    for kind in [PolicyKind::Lru, PolicyKind::Scip] {
        let cfg = DaemonConfig {
            shards: 4,
            total_capacity,
            ..DaemonConfig::default()
        };
        let plan = ShardPlan::build(&trace, cfg.shards, cfg.seed);
        let daemon = Daemon::spawn(cfg.clone(), plan.factory(kind)).unwrap();
        let report = feed(&daemon, &trace, calm_mode());
        for shard in 0..cfg.shards {
            assert!(daemon.await_quiesced(shard, QUIESCE), "shard {shard} stuck");
        }
        let stats = daemon.shutdown();
        // Calm path: everything accepted, nothing shed or rejected.
        report.check_against(&stats.shards, true).unwrap();
        assert_eq!(report.total_accepted(), trace.len() as u64);
        assert_eq!(report.outage_windows, 0);
        assert_eq!(report.overall_availability(), 1.0);
        let reference = plan.reference(kind, total_capacity);
        for (shard, (snap, m)) in stats.shards.iter().zip(&reference.per_shard).enumerate() {
            if let Some(diff) = ledger_diff(shard, snap, m) {
                panic!("{kind:?}: {diff}");
            }
        }
    }
}

/// Overload is bounded and observable: with queue capacity Q and a burst
/// of 3Q at a paused shard, exactly Q are admitted, the rest shed with
/// `Overloaded`, the ring never exceeds Q (exact high-water mark), and
/// the daemon counters match the client-side tally one-for-one.
#[test]
fn overload_sheds_boundedly_and_counters_reconcile() {
    let q = 64usize;
    let cfg = DaemonConfig {
        shards: 1,
        queue_capacity: q,
        worker_batch: 8,
        ..DaemonConfig::default()
    };
    let daemon = Daemon::spawn(cfg, switchable_factory(Tick::MAX, 7)).unwrap();
    daemon.pause_shard(0);
    let (mut accepted, mut shed) = (0u64, 0u64);
    for i in 0..(3 * q as u64) {
        match daemon.submit(Request {
            tick: 0,
            id: ObjectId(i),
            size: 1_000,
            wall_secs: 0.0,
        }) {
            Ok(_) => accepted += 1,
            Err((_, cdnd::SubmitError::Shed)) => shed += 1,
            Err((_, e)) => panic!("unexpected submit error: {e:?}"),
        }
    }
    assert_eq!(accepted, q as u64);
    assert_eq!(shed, 2 * q as u64);
    let mid = daemon.stats();
    assert_eq!(mid.shards[0].depth, q);
    assert_eq!(mid.shards[0].peak_depth, q, "queue grew past its bound");
    assert_eq!(mid.shards[0].enqueued, accepted);
    assert_eq!(mid.shards[0].shed, shed);
    // Recovery: resume, drain, everything admitted gets served.
    daemon.resume_shard(0);
    assert!(daemon.await_quiesced(0, QUIESCE));
    let stats = daemon.shutdown();
    assert_eq!(stats.shards[0].processed, accepted);
    assert_eq!(stats.shards[0].depth, 0);
    assert_eq!(stats.shards[0].peak_depth, q);
    assert_eq!(stats.shards[0].dropped_at_shutdown, 0);
    assert_eq!(
        stats.shards[0].hits + stats.shards[0].misses,
        stats.shards[0].processed
    );
}

/// Graceful shutdown drains: every accepted request is fully served
/// before the daemon exits, with nothing dropped.
#[test]
fn shutdown_drains_in_flight_requests() {
    let cfg = DaemonConfig {
        shards: 2,
        queue_capacity: 10_000,
        ..DaemonConfig::default()
    };
    let trace = small_trace(5_000, 3);
    let plan = ShardPlan::build(&trace, cfg.shards, cfg.seed);
    let daemon = Daemon::spawn(cfg, plan.factory(PolicyKind::Lru)).unwrap();
    let report = feed(&daemon, &trace, calm_mode());
    // No quiesce: shutdown itself must finish the queued work.
    let stats = daemon.shutdown();
    assert_eq!(report.total_accepted(), trace.len() as u64);
    assert_eq!(stats.total_processed(), trace.len() as u64);
    assert_eq!(stats.total_lost(), 0);
    for snap in &stats.shards {
        assert_eq!(snap.dropped_at_shutdown, 0);
        assert_eq!(snap.depth, 0);
        assert_eq!(snap.enqueued, snap.processed);
    }
}

/// Reload validates the whole candidate first and rejects it atomically:
/// an invalid config or an immutable-field change leaves the old config
/// fully in force; a tunable-only change applies.
#[test]
fn reload_rejects_and_keeps_old_config() {
    let cfg = DaemonConfig::default();
    let daemon = Daemon::spawn(cfg.clone(), switchable_factory(Tick::MAX, 1)).unwrap();

    // Immutable field change: rejected, old config intact.
    let mut resharded = cfg.clone();
    resharded.shards += 1;
    assert_eq!(
        daemon.reload(resharded),
        Err(DaemonConfigError::ImmutableField("shards"))
    );
    assert_eq!(daemon.config(), cfg);

    // Invalid candidate: rejected even though only tunables changed.
    let mut invalid = cfg.clone();
    invalid.restart.storm_threshold = 0;
    assert_eq!(
        daemon.reload(invalid),
        Err(DaemonConfigError::ZeroStormThreshold)
    );
    assert_eq!(daemon.config(), cfg);

    // Tunable-only change: applied.
    let mut tuned = cfg.clone();
    tuned.restart = RestartConfig {
        backoff_base_ms: 1,
        backoff_max_ms: 10,
        storm_threshold: 2,
        storm_window_ms: 500,
    };
    daemon.reload(tuned.clone()).unwrap();
    assert_eq!(daemon.config(), tuned);

    let stats = daemon.shutdown();
    assert_eq!(stats.reloads_applied, 1);
    assert_eq!(stats.reloads_rejected, 2);
}

/// Invalid configs never spawn a daemon.
#[test]
fn spawn_rejects_invalid_config() {
    let cfg = DaemonConfig {
        shards: 0,
        ..DaemonConfig::default()
    };
    match Daemon::spawn(cfg, switchable_factory(Tick::MAX, 1)) {
        Err(DaemonConfigError::ZeroShards) => {}
        Err(other) => panic!("expected ZeroShards, got {other:?}"),
        Ok(_) => panic!("expected ZeroShards, daemon spawned"),
    }
}

/// Live policy switch is deterministic: quiesce a shard at tick T, flip
/// its switchable node to deploy SCIP at T, feed the rest — the final
/// ledger equals a serial `SwitchableScip::new(cap, T, seed)` replay of
/// the full shard stream.
#[test]
fn live_switch_matches_switchable_reference() {
    let seed = 9u64;
    let cfg = DaemonConfig {
        shards: 2,
        total_capacity: 2 << 20,
        queue_capacity: 20_000,
        ..DaemonConfig::default()
    };
    let trace = small_trace(16_000, seed);
    let plan = ShardPlan::build(&trace, cfg.shards, cfg.seed);
    let daemon = Daemon::spawn(cfg.clone(), switchable_factory(Tick::MAX, seed)).unwrap();

    let half = trace.len() / 2;
    feed(&daemon, &trace[..half], calm_mode());
    for shard in 0..cfg.shards {
        assert!(daemon.await_quiesced(shard, QUIESCE));
    }
    // Each shard is quiesced at its own local tick = requests processed
    // so far; deploy SCIP exactly there.
    let mid = daemon.stats();
    let deploy_at: Vec<Tick> = mid.shards.iter().map(|s| s.processed).collect();
    for (shard, &at) in deploy_at.iter().enumerate() {
        daemon.pause_shard(shard);
        daemon.switch_policy_at(shard, at);
    }
    // The switch is applied by the worker between batches; paused workers
    // keep polling control, so wait for the acknowledgement counter.
    let ack = std::time::Instant::now();
    while daemon.stats().shards.iter().any(|s| s.switches != 1) {
        assert!(ack.elapsed() < QUIESCE, "switch not acknowledged");
        std::thread::sleep(Duration::from_millis(1));
    }
    for shard in 0..cfg.shards {
        daemon.resume_shard(shard);
    }
    feed(&daemon, &trace[half..], calm_mode());
    for shard in 0..cfg.shards {
        assert!(daemon.await_quiesced(shard, QUIESCE));
    }
    let stats = daemon.shutdown();

    // Serial reference: the same switchable node replayed over each
    // localized shard stream with the same deploy tick.
    let per_shard_capacity = cfg.per_shard_capacity();
    for (shard, &at) in deploy_at.iter().enumerate() {
        let mut reference = SwitchableScip::new(per_shard_capacity, at, seed);
        let (mut hits, mut misses, mut hit_bytes, mut miss_bytes) = (0u64, 0u64, 0u64, 0u64);
        let mut requests = plan.sharded.shards[shard].to_requests();
        for (i, req) in requests.iter_mut().enumerate() {
            req.tick = i as u64;
            if cdn_cache::CachePolicy::on_request(&mut reference, req).is_hit() {
                hits += 1;
                hit_bytes += req.size;
            } else {
                misses += 1;
                miss_bytes += req.size;
            }
        }
        let snap = &stats.shards[shard];
        assert_eq!(snap.hits, hits, "shard {shard} hits");
        assert_eq!(snap.misses, misses, "shard {shard} misses");
        assert_eq!(snap.hit_bytes, hit_bytes, "shard {shard} hit bytes");
        assert_eq!(snap.miss_bytes, miss_bytes, "shard {shard} miss bytes");
        assert_eq!(snap.switches, 1);
    }
}

/// A rejected reload leaves the *running* snapshot cadence untouched:
/// workers keep committing epochs at the old interval, and the config
/// snapshot still reports the old tunables. A valid snapshot-tunable
/// reload then applies live.
#[test]
fn rejected_reload_keeps_snapshot_cadence_running() {
    let dir = std::env::temp_dir().join(format!("cdnd-test-reload-snaps-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = DaemonConfig {
        shards: 1,
        queue_capacity: 20_000,
        snap: SnapshotConfig {
            interval: 500,
            keep: 2,
            dir: Some(dir.clone()),
        },
        ..DaemonConfig::default()
    };
    let trace = small_trace(4_000, 5);
    let plan = ShardPlan::build(&trace, cfg.shards, cfg.seed);
    let daemon = Daemon::spawn(cfg.clone(), plan.factory(PolicyKind::Lru)).unwrap();

    // Invalid candidate: snapshotting enabled without a directory.
    let mut invalid = cfg.clone();
    invalid.snap.dir = None;
    assert_eq!(
        daemon.reload(invalid),
        Err(DaemonConfigError::SnapDirRequired)
    );
    assert_eq!(daemon.config(), cfg, "rejected reload must change nothing");

    // Another invalid candidate: enabled with keep = 0.
    let mut invalid = cfg.clone();
    invalid.snap.keep = 0;
    assert_eq!(daemon.reload(invalid), Err(DaemonConfigError::ZeroSnapKeep));
    assert_eq!(daemon.config(), cfg);

    // The running cadence survived both rejections: feeding past the
    // interval still commits epochs at the original rate.
    feed(&daemon, &trace, calm_mode());
    assert!(daemon.await_quiesced(0, QUIESCE));
    let mid = daemon.stats();
    assert!(
        mid.shards[0].snapshots_written >= (trace.len() as u64) / 500 - 1,
        "cadence stalled after rejected reloads: {} epochs",
        mid.shards[0].snapshots_written
    );

    // A valid snapshot-tunable change applies live (snap is reloadable).
    let mut tuned = cfg.clone();
    tuned.snap.interval = 10_000;
    daemon.reload(tuned.clone()).unwrap();
    assert_eq!(daemon.config(), tuned);

    let stats = daemon.shutdown();
    assert_eq!(stats.reloads_applied, 1);
    assert_eq!(stats.reloads_rejected, 2);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Warm restart across daemon lifetimes: a drained daemon leaves final
/// epochs on disk; a new daemon over the same directory restores the
/// full resident set (objects and bytes) before serving, and reports it
/// through the restored counters.
#[test]
fn respawn_over_snapshot_dir_restores_residency() {
    let dir = std::env::temp_dir().join(format!("cdnd-test-respawn-snaps-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = DaemonConfig {
        shards: 2,
        total_capacity: 4 << 20,
        queue_capacity: 20_000,
        snap: SnapshotConfig {
            interval: 1 << 40, // only the drain-final epochs
            keep: 1,
            dir: Some(dir.clone()),
        },
        ..DaemonConfig::default()
    };
    let trace = small_trace(20_000, 17);
    let plan = ShardPlan::build(&trace, cfg.shards, cfg.seed);

    let daemon = Daemon::spawn(cfg.clone(), plan.factory(PolicyKind::Scip)).unwrap();
    feed(&daemon, &trace, calm_mode());
    let first = daemon.shutdown();
    for (shard, s) in first.shards.iter().enumerate() {
        assert!(s.snapshots_written >= 1, "shard {shard} wrote no epoch");
        assert_eq!(s.restored_objects, 0, "first run must start cold");
    }

    let daemon = Daemon::spawn(cfg, plan.factory(PolicyKind::Scip)).unwrap();
    // Restore runs in worker startup; quiesce-with-nothing-queued means
    // waiting for the restored counters is a bounded poll.
    let t0 = std::time::Instant::now();
    while daemon
        .stats()
        .shards
        .iter()
        .any(|s| s.restored_objects == 0)
    {
        assert!(t0.elapsed() < QUIESCE, "warm restore never completed");
        std::thread::sleep(Duration::from_millis(1));
    }
    let second = daemon.shutdown();
    for (shard, (a, b)) in first.shards.iter().zip(&second.shards).enumerate() {
        assert_eq!(
            b.restored_objects, a.resident_objects as u64,
            "shard {shard} restored a different object count than it left"
        );
        assert_eq!(
            b.restored_bytes, a.resident_bytes,
            "shard {shard} restored different bytes than it left"
        );
        assert_eq!(b.epochs_discarded, 0, "clean epochs were discarded");
        assert_eq!(
            b.resident_objects, a.resident_objects,
            "shard {shard} residency after warm restore"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// With every shard up, enabling failover routing is invisible: ledgers
/// are bit-identical to the routing-off daemon (and to the serial
/// reference), nothing is failover-served, and the only observable
/// difference is the config flag itself.
#[test]
fn calm_routing_is_bit_identical_to_routing_off() {
    let trace = small_trace(20_000, 23);
    let total_capacity = 4 << 20;
    let base = DaemonConfig {
        shards: 4,
        total_capacity,
        ..DaemonConfig::default()
    };
    let plan = ShardPlan::build(&trace, base.shards, base.seed);

    let run = |route_on: bool| {
        let mut cfg = base.clone();
        cfg.route = RouteConfig { failover: route_on };
        let daemon = Daemon::spawn(cfg.clone(), plan.factory(PolicyKind::Scip)).unwrap();
        let report = feed(&daemon, &trace, calm_mode());
        for shard in 0..cfg.shards {
            assert!(daemon.await_quiesced(shard, QUIESCE));
        }
        assert_eq!(report.failover_accepted, 0);
        assert_eq!(report.outage_windows, 0);
        daemon.shutdown()
    };
    let off = run(false);
    let on = run(true);

    assert_eq!(on.total_failover(), 0);
    let reference = plan.reference(PolicyKind::Scip, total_capacity);
    for shard in 0..base.shards {
        let (a, b) = (&off.shards[shard], &on.shards[shard]);
        assert_eq!(a.hits, b.hits, "shard {shard} hits");
        assert_eq!(a.misses, b.misses, "shard {shard} misses");
        assert_eq!(a.hit_bytes, b.hit_bytes, "shard {shard} hit bytes");
        assert_eq!(a.miss_bytes, b.miss_bytes, "shard {shard} miss bytes");
        assert_eq!(a.processed, b.processed, "shard {shard} processed");
        assert_eq!(b.failover_in, 0, "shard {shard} failover");
        if let Some(diff) = ledger_diff(shard, b, &reference.per_shard[shard]) {
            panic!("routing-on vs serial: {diff}");
        }
    }
}

/// Brownout sheds lowest class first with exact, per-cause counts: at a
/// paused shard with queue capacity Q, Low admits to 50 % of Q, Normal
/// to 75 %, High to Q; a per-request deadline tighter than the class
/// watermark refuses as `Deadline`, not `Shed`. Every refusal lands on
/// exactly one counter and the drill reconciles after drain.
#[test]
fn brownout_sheds_by_class_with_exact_counts() {
    use cdnd::{Admit, Priority};
    let q = 64usize;
    let cfg = DaemonConfig {
        shards: 1,
        queue_capacity: q,
        worker_batch: 8,
        ..DaemonConfig::default()
    };
    let daemon = Daemon::spawn(cfg, switchable_factory(Tick::MAX, 7)).unwrap();
    daemon.pause_shard(0);

    let mut id = 0u64;
    let mut drill = |class: Priority, n: usize, deadline: Option<usize>| {
        let (mut ok, mut shed, mut dead) = (0u64, 0u64, 0u64);
        for _ in 0..n {
            let req = Request {
                tick: 0,
                id: ObjectId(id),
                size: 1_000,
                wall_secs: 0.0,
            };
            id += 1;
            match daemon.submit_classed(
                req,
                Admit {
                    class,
                    deadline_depth: deadline,
                },
                None,
            ) {
                Ok(acc) => {
                    assert!(!acc.failover);
                    ok += 1;
                }
                Err((_, cdnd::SubmitError::Shed)) => shed += 1,
                Err((_, cdnd::SubmitError::Deadline)) => dead += 1,
                Err((_, e)) => panic!("unexpected submit error: {e:?}"),
            }
        }
        (ok, shed, dead)
    };

    // Low admits to its 50 % watermark (32), then sheds.
    assert_eq!(
        drill(Priority::Low, q, None),
        (q as u64 / 2, q as u64 / 2, 0)
    );
    // Normal admits from depth 32 to its 75 % watermark (48).
    assert_eq!(
        drill(Priority::Normal, q, None),
        (q as u64 / 4, 3 * q as u64 / 4, 0)
    );
    // A deadline tighter than the current depth refuses as Deadline
    // (depth 48 is below High's watermark, so this is not a shed).
    assert_eq!(drill(Priority::High, 1, Some(40)), (0, 0, 1));
    // A deadline looser than the depth admits.
    assert_eq!(drill(Priority::High, 1, Some(q)), (1, 0, 0));
    // High fills the remaining capacity, then sheds at the full ring.
    assert_eq!(
        drill(Priority::High, q, None),
        (q as u64 / 4 - 1, 3 * q as u64 / 4 + 1, 0)
    );

    let mid = daemon.stats();
    assert_eq!(mid.shards[0].depth, q);
    assert_eq!(mid.shards[0].peak_depth, q);
    assert_eq!(mid.shards[0].enqueued, q as u64);
    assert_eq!(mid.shards[0].shed_low, q as u64 / 2);
    assert_eq!(mid.shards[0].shed_normal, 3 * q as u64 / 4);
    assert_eq!(mid.shards[0].shed_high, 3 * q as u64 / 4 + 1);
    assert_eq!(mid.shards[0].rejected_deadline, 1);
    assert_eq!(
        mid.shards[0].shed,
        mid.shards[0].shed_low + mid.shards[0].shed_normal + mid.shards[0].shed_high
    );

    // Recovery: everything admitted is served, nothing new is refused.
    daemon.resume_shard(0);
    assert!(daemon.await_quiesced(0, QUIESCE));
    let stats = daemon.shutdown();
    assert_eq!(stats.shards[0].processed, q as u64);
    assert_eq!(stats.shards[0].dropped_at_shutdown, 0);
}
