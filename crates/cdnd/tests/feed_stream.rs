//! Batched and out-of-core feed paths: same ledgers, same tallies, same
//! serial reference as the per-request [`feed`] loop.
//!
//! `feed_batched` submits shard-homogeneous windows through
//! `Daemon::submit_batch` (one ring-lock acquisition per run);
//! `feed_stream` drives the same batched windows from a chunk iterator —
//! including a real disk-backed [`StreamingTrace`] — without ever
//! holding the whole trace in RAM. Both must reproduce the per-request
//! path's exactness contract: every request accepted on a calm daemon,
//! client tallies reconciling with daemon counters one-for-one, and
//! per-shard ledgers equal to `run_sharded_serial` u64-for-u64.

use std::time::Duration;

use cdn_cache::Request;
use cdn_sim::PolicyKind;
use cdnd::{
    feed, feed_batched, feed_stream, ledger_diff, oracle_free_factory, Daemon, DaemonConfig,
    FeedMode, ShardPlan,
};

use cdn_trace::io::write_binary;
use cdn_trace::{GeneratorConfig, StreamingTrace, TraceColumns, TraceError, TraceGenerator};

fn small_trace(requests: u64, seed: u64) -> Vec<Request> {
    TraceGenerator::generate(GeneratorConfig {
        requests,
        core_objects: 2_000,
        seed,
        ..GeneratorConfig::default()
    })
}

fn calm_mode() -> FeedMode {
    FeedMode::FailFast {
        push_timeout: Duration::from_secs(10),
    }
}

const QUIESCE: Duration = Duration::from_secs(30);

/// Cut `cols` into owned chunks of `chunk_len` requests.
fn chunked(cols: &TraceColumns, chunk_len: usize) -> Vec<TraceColumns> {
    let mut out = Vec::new();
    let mut at = 0usize;
    while at < cols.len() {
        let end = (at + chunk_len).min(cols.len());
        let mut c = TraceColumns::new();
        for i in at..end {
            c.push(cols.get(i));
        }
        out.push(c);
        at = end;
    }
    out
}

/// Batched feed on a calm daemon: everything accepted, tallies reconcile
/// strictly, and per-shard ledgers equal the serial reference — i.e. the
/// batch fast path is invisible to every ledger.
#[test]
fn batched_feed_matches_serial_reference_exactly() {
    let trace = small_trace(30_000, 13);
    let total_capacity = 4 << 20;
    for kind in [PolicyKind::Lru, PolicyKind::Scip] {
        let cfg = DaemonConfig {
            shards: 4,
            total_capacity,
            ..DaemonConfig::default()
        };
        let plan = ShardPlan::build(&trace, cfg.shards, cfg.seed);
        let daemon = Daemon::spawn(cfg.clone(), plan.factory(kind)).unwrap();
        let report = feed_batched(&daemon, &trace, calm_mode());
        for shard in 0..cfg.shards {
            assert!(daemon.await_quiesced(shard, QUIESCE), "shard {shard} stuck");
        }
        let stats = daemon.shutdown();
        report.check_against(&stats.shards, true).unwrap();
        assert_eq!(report.total_accepted(), trace.len() as u64);
        assert_eq!(report.outage_windows, 0);
        assert_eq!(report.overall_availability(), 1.0);
        let reference = plan.reference(kind, total_capacity);
        for (shard, (snap, m)) in stats.shards.iter().zip(&reference.per_shard).enumerate() {
            if let Some(diff) = ledger_diff(shard, snap, m) {
                panic!("{kind:?}: {diff}");
            }
        }
    }
}

/// Batched feed under backpressure: a tiny ring forces the fast path to
/// wait and to hand stragglers to the per-request fallback, yet nothing
/// is shed and the report equals the per-request feed's.
#[test]
fn batched_feed_survives_tiny_rings_without_shedding() {
    let trace = small_trace(8_000, 17);
    let cfg = DaemonConfig {
        shards: 2,
        total_capacity: 1 << 20,
        queue_capacity: 16,
        worker_batch: 4,
        ..DaemonConfig::default()
    };
    let plan = ShardPlan::build(&trace, cfg.shards, cfg.seed);
    let daemon = Daemon::spawn(cfg.clone(), plan.factory(PolicyKind::Lru)).unwrap();
    let report = feed_batched(&daemon, &trace, calm_mode());
    for shard in 0..cfg.shards {
        assert!(daemon.await_quiesced(shard, QUIESCE), "shard {shard} stuck");
    }
    let stats = daemon.shutdown();
    report.check_against(&stats.shards, true).unwrap();
    assert_eq!(report.total_accepted(), trace.len() as u64);
    assert_eq!(report.overall_availability(), 1.0);
}

/// Streamed feed from an on-disk trace through the real prefetch thread:
/// same acceptance, same reconciliation, same serial-reference ledgers
/// as feeding the in-RAM slice — the daemon cannot tell the difference.
#[test]
fn streamed_feed_from_disk_matches_in_ram_feed() {
    let trace = small_trace(30_000, 19);
    let total_capacity = 4 << 20;
    let dir = std::env::temp_dir().join("cdnd_feed_stream_tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("feed.bin");
    write_binary(&path, &trace).unwrap();

    let cfg = DaemonConfig {
        shards: 3,
        total_capacity,
        ..DaemonConfig::default()
    };
    let plan = ShardPlan::build(&trace, cfg.shards, cfg.seed);

    // Reference: per-request feed of the in-RAM slice.
    let daemon = Daemon::spawn(cfg.clone(), plan.factory(PolicyKind::Scip)).unwrap();
    let in_ram_report = feed(&daemon, &trace, calm_mode());
    for shard in 0..cfg.shards {
        assert!(daemon.await_quiesced(shard, QUIESCE), "shard {shard} stuck");
    }
    let in_ram_stats = daemon.shutdown();

    // Streamed: same daemon shape fed from disk.
    let daemon = Daemon::spawn(cfg.clone(), plan.factory(PolicyKind::Scip)).unwrap();
    let stream = StreamingTrace::open(&path).unwrap();
    let report = feed_stream(&daemon, stream, calm_mode()).unwrap();
    for shard in 0..cfg.shards {
        assert!(daemon.await_quiesced(shard, QUIESCE), "shard {shard} stuck");
    }
    let stats = daemon.shutdown();
    std::fs::remove_file(&path).ok();

    report.check_against(&stats.shards, true).unwrap();
    assert_eq!(report.total_accepted(), trace.len() as u64);
    assert_eq!(report.per_shard, in_ram_report.per_shard);
    let reference = plan.reference(PolicyKind::Scip, total_capacity);
    for (shard, (snap, (in_ram, m))) in stats
        .shards
        .iter()
        .zip(in_ram_stats.shards.iter().zip(&reference.per_shard))
        .enumerate()
    {
        assert_eq!(
            (snap.hits, snap.misses, snap.hit_bytes, snap.miss_bytes),
            (
                in_ram.hits,
                in_ram.misses,
                in_ram.hit_bytes,
                in_ram.miss_bytes
            ),
            "shard {shard}: streamed feed diverged from in-RAM feed"
        );
        if let Some(diff) = ledger_diff(shard, snap, m) {
            panic!("streamed feed: {diff}");
        }
    }
}

/// An oracle-free factory feeds a streamed trace with no ShardPlan (no
/// in-RAM trace at all): the daemon still accepts everything. This is
/// the production-scale path `cdnd_bench --stream`-style drills use.
#[test]
fn oracle_free_streamed_feed_accepts_everything() {
    let trace = small_trace(12_000, 23);
    let cols = TraceColumns::from_requests(&trace);
    let cfg = DaemonConfig {
        shards: 2,
        total_capacity: 1 << 20,
        ..DaemonConfig::default()
    };
    let factory = oracle_free_factory(PolicyKind::TinyLfu, trace.len() as u64, cfg.seed);
    let daemon = Daemon::spawn(cfg.clone(), factory).unwrap();
    let chunks = chunked(&cols, 999).into_iter().map(Ok::<_, TraceError>);
    let report = feed_stream(&daemon, chunks, calm_mode()).unwrap();
    for shard in 0..cfg.shards {
        assert!(daemon.await_quiesced(shard, QUIESCE), "shard {shard} stuck");
    }
    let stats = daemon.shutdown();
    report.check_against(&stats.shards, true).unwrap();
    assert_eq!(report.total_accepted(), trace.len() as u64);
}

/// A stream error aborts the feed: the error surfaces, and only the
/// requests from chunks before it ever reached the daemon.
#[test]
fn stream_error_aborts_feed_after_prior_chunks() {
    let trace = small_trace(6_000, 29);
    let cols = TraceColumns::from_requests(&trace);
    let good = chunked(&cols, 1_000);
    let fed_before_error: usize = good[..3].iter().map(|c| c.len()).sum();
    let chunks: Vec<Result<TraceColumns, TraceError>> = good
        .into_iter()
        .take(3)
        .map(Ok)
        .chain(std::iter::once(Err(TraceError::Io(std::io::Error::other(
            "disk went away",
        )))))
        .collect();
    let cfg = DaemonConfig {
        shards: 2,
        total_capacity: 1 << 20,
        ..DaemonConfig::default()
    };
    let factory = oracle_free_factory(PolicyKind::Lru, trace.len() as u64, cfg.seed);
    let daemon = Daemon::spawn(cfg.clone(), factory).unwrap();
    let err =
        feed_stream(&daemon, chunks, calm_mode()).expect_err("stream error must abort the feed");
    assert!(matches!(err, TraceError::Io(_)), "got {err:?}");
    for shard in 0..cfg.shards {
        assert!(daemon.await_quiesced(shard, QUIESCE), "shard {shard} stuck");
    }
    let stats = daemon.shutdown();
    let enqueued: u64 = stats.shards.iter().map(|s| s.enqueued).sum();
    assert_eq!(enqueued, fed_before_error as u64);
}
