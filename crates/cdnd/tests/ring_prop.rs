//! Model-based property tests for [`BoundedRing`]: arbitrary
//! interleavings of `try_push` / `push_wait` / `try_push_within` /
//! `pop_many` / `unpop` against a plain `VecDeque` reference model,
//! asserting FIFO delivery and an *exact* `peak_depth` high-water mark —
//! including the crash-return path, where a worker pops a batch,
//! "processes" a prefix and `unpop`s the unprocessed tail (which may
//! transiently exceed capacity, exactly as the supervisor's
//! catch_unwind handler does).

use std::collections::VecDeque;
use std::time::Duration;

use cdnd::{BoundedRing, Popped, PushError};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum Op {
    /// Non-blocking push.
    TryPush,
    /// Watermark-limited push (`limit` as a raw value, clamped in-test).
    TryPushWithin(usize),
    /// Blocking push with a tiny timeout (single-threaded: full ⇒ Full).
    PushWait,
    /// Pop up to `max`, then crash-return all but `keep` of the batch.
    PopKeepUnpop { max: usize, keep: usize },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::TryPush),
        (0usize..24).prop_map(Op::TryPushWithin),
        Just(Op::PushWait),
        ((1usize..12), (0usize..12)).prop_map(|(max, keep)| Op::PopKeepUnpop { max, keep }),
    ]
}

proptest! {
    #[test]
    fn ring_matches_model_under_interleavings(
        capacity in 1usize..12,
        ops in proptest::collection::vec(arb_op(), 1..120),
    ) {
        let ring: BoundedRing<u64> = BoundedRing::new(capacity);
        let mut model: VecDeque<u64> = VecDeque::new();
        let mut model_peak = 0usize;
        let mut next_val = 0u64;
        // Everything "processed" (kept from a popped batch), in order.
        let mut delivered: Vec<u64> = Vec::new();
        let mut pushed = 0u64;

        for op in &ops {
            match *op {
                Op::TryPush => {
                    let got = ring.try_push(next_val);
                    if model.len() < capacity {
                        prop_assert_eq!(got, Ok(()));
                        model.push_back(next_val);
                        model_peak = model_peak.max(model.len());
                        pushed += 1;
                    } else {
                        prop_assert_eq!(got, Err(PushError::Full));
                    }
                    next_val += 1;
                }
                Op::TryPushWithin(limit) => {
                    let got = ring.try_push_within(next_val, limit);
                    let bound = limit.min(capacity);
                    if model.len() < bound {
                        prop_assert_eq!(got, Ok(()));
                        model.push_back(next_val);
                        model_peak = model_peak.max(model.len());
                        pushed += 1;
                    } else {
                        // Refusal reports the exact depth seen under lock.
                        prop_assert_eq!(got, Err((model.len(), PushError::Full)));
                    }
                    next_val += 1;
                }
                Op::PushWait => {
                    let got = ring.push_wait(next_val, Duration::from_millis(1));
                    if model.len() < capacity {
                        prop_assert_eq!(got, Ok(()));
                        model.push_back(next_val);
                        model_peak = model_peak.max(model.len());
                        pushed += 1;
                    } else {
                        // No consumer thread: a full ring must time out.
                        prop_assert_eq!(got, Err(PushError::Full));
                    }
                    next_val += 1;
                }
                Op::PopKeepUnpop { max, keep } => {
                    match ring.pop_many(max, Duration::from_millis(1)) {
                        Popped::Items(items) => {
                            let take = model.len().min(max.max(1));
                            let expect: Vec<u64> = model.drain(..take).collect();
                            prop_assert_eq!(&items, &expect, "batch must be FIFO");
                            // Crash-return: keep a prefix, unpop the tail.
                            let keep = keep.min(items.len());
                            delivered.extend_from_slice(&items[..keep]);
                            let tail = items[keep..].to_vec();
                            for v in tail.iter().rev() {
                                model.push_front(*v);
                            }
                            ring.unpop(tail);
                            model_peak = model_peak.max(model.len());
                        }
                        Popped::TimedOut => {
                            prop_assert!(model.is_empty(), "TimedOut only when empty");
                        }
                        Popped::Drained => prop_assert!(false, "ring never closed"),
                    }
                }
            }
            prop_assert_eq!(ring.len(), model.len());
            prop_assert_eq!(ring.peak_depth(), model_peak, "peak must be exact");
        }

        // Drain what remains: delivered ++ residue must be exactly the
        // accepted pushes in submission order — crash-return loses and
        // reorders nothing.
        while let Popped::Items(items) = ring.pop_many(usize::MAX, Duration::from_millis(1)) {
            let expect: Vec<u64> = model.drain(..).collect();
            prop_assert_eq!(&items, &expect);
            delivered.extend_from_slice(&items);
        }
        prop_assert_eq!(delivered.len() as u64, pushed);
        let mut sorted = delivered.clone();
        sorted.sort_unstable();
        prop_assert_eq!(&sorted, &delivered, "FIFO: delivery order = push order");
        prop_assert_eq!(ring.peak_depth(), model_peak);
    }
}
