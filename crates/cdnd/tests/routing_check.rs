//! Failover-routing proofs under deterministic fault injection: the
//! `cdnd.route` failpoint forces failover without a real outage, routing
//! stays inert when disabled, and a real mid-trace shard kill with
//! failover enabled keeps *every* shard's ledger u64-exact against the
//! routing-aware serial reference ([`cdn_sim::run_routed_serial`]) —
//! overlay misses included.
//!
//! Compile with `--features fault-injection`; without the feature this
//! file is empty. The failpoint registry is process-global, so every
//! test serialises on [`LOCK`] and clears the registry on entry.

#![cfg(feature = "fault-injection")]

use std::sync::Mutex;
use std::time::Duration;

use cdn_cache::fault::{self, FaultAction, FaultRule};
use cdn_cache::{key_shard, route_with_failover, Request};
use cdn_sim::{run_routed_serial, OutageWindow, PolicyKind};
use cdn_trace::{GeneratorConfig, TraceGenerator};
use cdnd::{
    feed, route_fault_key, routed_ledger_diff, worker_fault_key, Daemon, DaemonConfig, FeedMode,
    RestartConfig, RouteConfig, ShardPlan, ShardState, FP_ROUTE, FP_SHARD_WORKER,
};

static LOCK: Mutex<()> = Mutex::new(());

fn exclusive() -> std::sync::MutexGuard<'static, ()> {
    let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    fault::clear();
    guard
}

fn calm_mode() -> FeedMode {
    FeedMode::FailFast {
        push_timeout: Duration::from_secs(10),
    }
}

const QUIESCE: Duration = Duration::from_secs(30);

fn routed_cfg(shards: usize, total_capacity: u64, seed: u64) -> DaemonConfig {
    DaemonConfig {
        shards,
        total_capacity,
        queue_capacity: 4_096,
        worker_batch: 16,
        seed,
        route: RouteConfig { failover: true },
        // Park a crashed shard in Backoff for the rest of the run, so an
        // outage window's end is the trace end, not a revival race.
        restart: RestartConfig {
            backoff_base_ms: 600_000,
            backoff_max_ms: 600_000,
            storm_threshold: 100,
            storm_window_ms: 60_000,
        },
        ..DaemonConfig::default()
    }
}

/// The route failpoint forces a failover decision with no real outage:
/// the request is accepted on its rendezvous-ordered secondary, counted
/// as failover-in there, and the next (unforced) submit lands on the
/// primary again.
#[test]
fn fp_route_forces_failover_to_rendezvous_secondary() {
    let _g = exclusive();
    let shards = 4usize;
    let cfg = routed_cfg(shards, 1 << 20, 3);
    let plan = ShardPlan::build(&[Request::new(0, 1, 100)], shards, cfg.seed);
    let daemon = Daemon::spawn(cfg, plan.factory(PolicyKind::Lru)).unwrap();

    let key = 42u64;
    let primary = key_shard(key, shards);
    let secondary =
        route_with_failover(key, shards, |s| s == primary).expect("secondary must exist");
    assert_ne!(secondary, primary);

    // Submit ordinals start at 0; force only the first decision.
    fault::arm(
        FP_ROUTE,
        FaultRule::OnKeys(
            vec![route_fault_key(primary, 0)],
            FaultAction::Error("forced primary-down".into()),
        ),
    );
    let acc = daemon.submit(Request::new(0, key, 100)).unwrap();
    assert_eq!(acc, secondary, "forced failover must pick the secondary");
    // Second decision (seq 1) is unforced: primary serves again —
    // revival flip-back needs no state, routing is pure.
    let acc = daemon.submit(Request::new(1, key, 100)).unwrap();
    assert_eq!(acc, primary);
    assert_eq!(fault::fired(FP_ROUTE), 1);
    fault::clear();

    for shard in 0..shards {
        assert!(daemon.await_quiesced(shard, QUIESCE));
    }
    let stats = daemon.shutdown();
    assert_eq!(stats.shards[secondary].failover_in, 1);
    assert_eq!(stats.shards[primary].failover_in, 0);
    assert_eq!(stats.total_failover(), 1);
}

/// With failover routing disabled the route failpoint is never even
/// consulted: the decision sequence only advances for routed daemons.
#[test]
fn routing_off_never_consults_the_route_failpoint() {
    let _g = exclusive();
    let shards = 2usize;
    let mut cfg = routed_cfg(shards, 1 << 20, 3);
    cfg.route = RouteConfig { failover: false };
    let plan = ShardPlan::build(&[Request::new(0, 1, 100)], shards, cfg.seed);
    let daemon = Daemon::spawn(cfg, plan.factory(PolicyKind::Lru)).unwrap();

    // Arm every possible decision ordinal for the keys below: if the
    // router consulted the failpoint at all, it would fire.
    fault::arm(
        FP_ROUTE,
        FaultRule::OnKeys(
            (0..16u64)
                .flat_map(|seq| (0..shards).map(move |p| route_fault_key(p, seq)))
                .collect(),
            FaultAction::Error("forced primary-down".into()),
        ),
    );
    for i in 0..16u64 {
        let shard = daemon.submit(Request::new(i, i, 100)).unwrap();
        assert_eq!(shard, key_shard(i, shards), "must stay on the primary");
    }
    assert_eq!(fault::fired(FP_ROUTE), 0, "failpoint consulted while off");
    fault::clear();
    daemon.shutdown();
}

/// A real kill with failover enabled: the victim's crash request is
/// lost, every later victim-primary request is served cold on its
/// rendezvous secondary, and *all four* ledgers — survivors plus the
/// overlay work they absorbed — equal `run_routed_serial` u64-for-u64.
/// The client sees zero `Down` rejections: availability inside the
/// outage is 100 % of admitted requests.
#[test]
fn kill_with_failover_matches_routed_serial_reference() {
    let _g = exclusive();
    let shards = 4usize;
    let trace = TraceGenerator::generate(GeneratorConfig {
        requests: 12_000,
        core_objects: 1_500,
        seed: 19,
        ..GeneratorConfig::default()
    });
    let cfg = routed_cfg(shards, 2 << 20, 19);
    let plan = ShardPlan::build(&trace, shards, cfg.seed);

    // Victim = shard of the middle request; crash at its middle request.
    let victim_indices: Vec<usize> = (0..trace.len())
        .filter(|&i| key_shard(trace[i].id.0, shards) == victim_of(&trace, shards))
        .collect();
    let victim = victim_of(&trace, shards);
    let k = victim_indices.len() / 2;
    let ci = victim_indices[k];

    let daemon = Daemon::spawn(cfg.clone(), plan.factory(PolicyKind::Scip)).unwrap();
    // Phase 1: calm prefix, then quiesce so the victim's local tick is
    // deterministic when the crash request arrives.
    let pre = feed(&daemon, &trace[..ci], calm_mode());
    assert_eq!(pre.failover_accepted, 0);
    for shard in 0..shards {
        assert!(daemon.await_quiesced(shard, QUIESCE));
    }
    // Phase 2: the crash request alone. Its victim-local tick is exactly
    // k (k earlier victim requests, none lost yet).
    fault::arm(
        FP_SHARD_WORKER,
        FaultRule::OnKeys(
            vec![worker_fault_key(victim, k as u64)],
            FaultAction::Panic("injected kill".into()),
        ),
    );
    let mid = feed(&daemon, &trace[ci..=ci], calm_mode());
    assert!(
        daemon.await_shard_state(victim, ShardState::Backoff, QUIESCE),
        "victim never entered backoff"
    );
    assert_eq!(fault::fired(FP_SHARD_WORKER), 1);
    fault::clear();
    // Phase 3: the rest of the trace; victim-primary keys fail over.
    let post = feed(&daemon, &trace[ci + 1..], calm_mode());
    for shard in 0..shards {
        if shard != victim {
            assert!(daemon.await_quiesced(shard, QUIESCE));
        }
    }
    let stats = daemon.shutdown();

    // Zero Down rejections: every admitted request was answered.
    for tally in pre.per_shard.iter().chain(&post.per_shard) {
        assert_eq!(tally.rejected_down, 0);
        assert_eq!(tally.shed, 0);
    }
    assert!(post.failover_accepted > 0, "no failover traffic observed");
    assert_eq!(post.inside_availability(), 1.0);
    // Client tallies reconcile phase-summed against the daemon counters.
    for shard in 0..shards {
        let accepted = pre.per_shard[shard].accepted
            + mid.per_shard[shard].accepted
            + post.per_shard[shard].accepted;
        assert_eq!(accepted, stats.shards[shard].enqueued, "shard {shard}");
        let failover = pre.per_shard[shard].failover_accepted
            + mid.per_shard[shard].failover_accepted
            + post.per_shard[shard].failover_accepted;
        assert_eq!(failover, stats.shards[shard].failover_in, "shard {shard}");
    }

    // The routing-aware serial reference reproduces every ledger.
    let reference = run_routed_serial(
        PolicyKind::Scip,
        cfg.total_capacity,
        &trace,
        shards,
        cfg.seed,
        &[OutageWindow {
            shard: victim,
            crash_index: ci,
            end_index: trace.len(),
        }],
    );
    assert_eq!(reference.unroutable, 0);
    assert_eq!(reference.per_shard[victim].lost, 1);
    let total_overlay: u64 = reference.per_shard.iter().map(|l| l.failover_in).sum();
    assert_eq!(post.failover_accepted, total_overlay);
    for shard in 0..shards {
        if let Some(diff) =
            routed_ledger_diff(shard, &stats.shards[shard], &reference.per_shard[shard])
        {
            panic!("{diff}");
        }
    }
}

/// Shard of the middle request — a deterministic victim pick that is
/// guaranteed to own traffic.
fn victim_of(trace: &[Request], shards: usize) -> usize {
    key_shard(trace[trace.len() / 2].id.0, shards)
}
