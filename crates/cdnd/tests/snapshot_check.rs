//! Fault-injection checks for the snapshot/recovery ladder (DESIGN.md
//! §17): the committed-epoch corruption corpus (every single-byte flip
//! must be detected and degrade one rung, never panic), the
//! `cdnd.snap_write` torn-tail and write-error rungs, and the
//! `cdnd.snap_load` read-error rung. All tests drive the public
//! `cdnd::snapshot` API over real files.
//!
//! Build with `--features fault-injection`; without it this file is
//! empty.
#![cfg(feature = "fault-injection")]

use std::path::PathBuf;
use std::sync::Mutex;

use cdn_cache::fault::{self, FaultAction, FaultRule};
use cdn_cache::{ObjectId, ResidentEntry};
use cdnd::snapshot::{list_epochs, prune, recover, snapshot_path, write_epoch};
use cdnd::{snap_fault_key, SnapshotData, FP_SNAP_LOAD, FP_SNAP_WRITE};

static LOCK: Mutex<()> = Mutex::new(());

/// Serialise tests that arm the (global) failpoint registry and
/// guarantee a clean slate on entry.
fn exclusive() -> std::sync::MutexGuard<'static, ()> {
    let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    fault::clear();
    guard
}

/// A scratch directory under the OS temp dir, wiped on entry.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cdnd-snapcheck-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A small but structurally complete snapshot: two compartments, varied
/// metadata, and a learned block.
fn sample(shard: u32, epoch: u64, entries: usize) -> SnapshotData {
    SnapshotData {
        shard,
        epoch,
        entries: (0..entries as u64)
            .map(|i| ResidentEntry {
                id: ObjectId(1_000 * epoch + i),
                size: 100 + i * 7,
                bucket: (i % 2) as u32,
                inserted_at_mru: i % 3 != 0,
                inserted_tick: i,
                last_access: i + epoch,
                hits: (i % 5) as u32,
                tag: i.wrapping_mul(0x9E37),
            })
            .collect(),
        learned: Some((0..64u8).collect()),
    }
}

/// Every single-byte flip of a committed epoch file is detected by the
/// framing CRCs (or structural validation) and recovery descends exactly
/// one rung to the older epoch — zero panics across the whole corpus.
#[test]
fn every_byte_flip_descends_to_older_epoch() {
    let dir = scratch("flip");
    let old = sample(3, 1, 40);
    let new = sample(3, 2, 40);
    write_epoch(&dir, &old).unwrap();
    let path = write_epoch(&dir, &new).unwrap();
    let pristine = std::fs::read(&path).unwrap();

    for i in 0..pristine.len() {
        let mut bytes = pristine.clone();
        bytes[i] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let outcome = recover(&dir, 3);
        let data = outcome.data.unwrap_or_else(|| {
            panic!("flip at byte {i}: recovery went cold instead of descending")
        });
        assert_eq!(
            data.epoch, 1,
            "flip at byte {i} went undetected (recovered epoch {})",
            data.epoch
        );
        assert_eq!(
            data.entries, old.entries,
            "flip at byte {i}: stale rung mangled"
        );
        assert_eq!(outcome.epochs_discarded, 1, "flip at byte {i}");
        assert_eq!(outcome.latest_epoch_seen, 2, "flip at byte {i}");
    }
    // Control: the pristine file recovers as epoch 2 with no discards.
    std::fs::write(&path, &pristine).unwrap();
    let outcome = recover(&dir, 3);
    assert_eq!(outcome.data.unwrap().epoch, 2);
    assert_eq!(outcome.epochs_discarded, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The `cdnd.snap_write` torn-tail action commits a truncated file (a
/// simulated crash between write and fsync): recovery discards it and
/// serves the previous epoch.
#[test]
fn torn_write_failpoint_descends_one_rung() {
    let _guard = exclusive();
    let dir = scratch("torn");
    write_epoch(&dir, &sample(5, 1, 30)).unwrap();
    fault::arm(
        FP_SNAP_WRITE,
        FaultRule::OnKeys(
            vec![snap_fault_key(5, 2)],
            FaultAction::ShortRead(37), // commit only the first 37 bytes
        ),
    );
    write_epoch(&dir, &sample(5, 2, 30)).unwrap();
    fault::clear();
    assert_eq!(fault::fired(FP_SNAP_WRITE), 0); // cleared counters
    assert_eq!(list_epochs(&dir, 5), vec![1, 2], "torn epoch still listed");

    let outcome = recover(&dir, 5);
    assert_eq!(outcome.data.unwrap().epoch, 1);
    assert_eq!(outcome.epochs_discarded, 1);
    // Epoch numbering continues past the torn file, never shadowing it.
    assert_eq!(outcome.latest_epoch_seen, 2);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The `cdnd.snap_write` error action fails the commit outright: no new
/// file appears and the previous epoch remains authoritative.
#[test]
fn write_error_failpoint_leaves_previous_epoch_authoritative() {
    let _guard = exclusive();
    let dir = scratch("werr");
    write_epoch(&dir, &sample(7, 1, 10)).unwrap();
    fault::arm(
        FP_SNAP_WRITE,
        FaultRule::OnKeys(
            vec![snap_fault_key(7, 2)],
            FaultAction::Error("disk full".into()),
        ),
    );
    assert!(write_epoch(&dir, &sample(7, 2, 10)).is_err());
    fault::clear();
    assert_eq!(list_epochs(&dir, 7), vec![1], "failed write left a file");
    let outcome = recover(&dir, 7);
    assert_eq!(outcome.data.unwrap().epoch, 1);
    assert_eq!(outcome.epochs_discarded, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The `cdnd.snap_load` read-error rung: a clean file that cannot be
/// read is discarded like a corrupt one; with every epoch unreadable the
/// ladder bottoms out cold without panicking.
#[test]
fn load_failpoint_walks_ladder_to_cold() {
    let _guard = exclusive();
    let dir = scratch("lerr");
    write_epoch(&dir, &sample(9, 1, 20)).unwrap();
    write_epoch(&dir, &sample(9, 2, 20)).unwrap();

    // Newest unreadable → one rung down.
    fault::arm(
        FP_SNAP_LOAD,
        FaultRule::OnKeys(vec![snap_fault_key(9, 2)], FaultAction::Error("io".into())),
    );
    let outcome = recover(&dir, 9);
    assert_eq!(outcome.data.as_ref().unwrap().epoch, 1);
    assert_eq!(outcome.epochs_discarded, 1);

    // Both unreadable → cold, two discards, epoch numbering preserved.
    fault::arm(
        FP_SNAP_LOAD,
        FaultRule::OnKeys(
            vec![snap_fault_key(9, 1), snap_fault_key(9, 2)],
            FaultAction::Error("io".into()),
        ),
    );
    let outcome = recover(&dir, 9);
    assert!(outcome.data.is_none(), "cold start expected");
    assert_eq!(outcome.epochs_discarded, 2);
    assert_eq!(outcome.latest_epoch_seen, 2);
    fault::clear();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Missing-epoch rung: pruning (or deletion) of every file yields a
/// clean cold start with nothing discarded.
#[test]
fn empty_ladder_is_a_clean_cold_start() {
    let dir = scratch("cold");
    write_epoch(&dir, &sample(2, 1, 5)).unwrap();
    write_epoch(&dir, &sample(2, 2, 5)).unwrap();
    for epoch in list_epochs(&dir, 2) {
        std::fs::remove_file(snapshot_path(&dir, 2, epoch)).unwrap();
    }
    let outcome = recover(&dir, 2);
    assert!(outcome.data.is_none());
    assert_eq!(outcome.epochs_discarded, 0);
    assert_eq!(outcome.latest_epoch_seen, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// keep-last-K pruning interacts with the ladder: after pruning to one
/// epoch, recovery still serves the survivor.
#[test]
fn prune_keeps_newest_and_recovery_survives() {
    let dir = scratch("prune");
    for epoch in 1..=5 {
        write_epoch(&dir, &sample(4, epoch, 8)).unwrap();
    }
    assert_eq!(prune(&dir, 4, 1), 4);
    assert_eq!(list_epochs(&dir, 4), vec![5]);
    let outcome = recover(&dir, 4);
    assert_eq!(outcome.data.unwrap().epoch, 5);
    assert_eq!(outcome.epochs_discarded, 0);
    let _ = std::fs::remove_dir_all(&dir);
}
