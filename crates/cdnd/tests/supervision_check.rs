//! Supervision proofs under deterministic fault injection: crash
//! isolation preserves surviving-shard exactness (property test extending
//! `cdn-sim/tests/shard_check.rs`), killed shards restart empty, the
//! restart-storm breaker opens and is operator-resettable, and the
//! enqueue failpoint surfaces as a client-visible fault.
//!
//! Compile with `--features fault-injection`; without the feature this
//! file is empty. The failpoint registry is process-global, so every test
//! serialises on [`LOCK`] and clears the registry on entry and exit.

#![cfg(feature = "fault-injection")]

use std::sync::Mutex;
use std::time::Duration;

use cdn_cache::fault::{self, FaultAction, FaultRule};
use cdn_cache::{ObjectId, Request};
use cdn_sim::PolicyKind;
use cdnd::{
    feed, ledger_diff, worker_fault_key, Daemon, DaemonConfig, FeedMode, RestartConfig, ShardPlan,
    ShardState, SubmitError, FP_ENQUEUE, FP_SHARD_WORKER,
};
use proptest::prelude::*;

static LOCK: Mutex<()> = Mutex::new(());

/// Serialise on the registry and guarantee a clean slate before/after.
fn exclusive() -> std::sync::MutexGuard<'static, ()> {
    let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    fault::clear();
    guard
}

/// Supervision config tuned for tests: near-instant restarts, a storm
/// breaker that stays out of the way unless a test wants it.
fn fast_restarts(storm_threshold: u32) -> RestartConfig {
    RestartConfig {
        backoff_base_ms: 1,
        backoff_max_ms: 8,
        storm_threshold,
        storm_window_ms: 60_000,
    }
}

/// Exactness-measuring feed: retry down/overloaded shards until accepted,
/// so every request reaches its shard in trace order.
fn await_recovery() -> FeedMode {
    FeedMode::AwaitRecovery {
        push_timeout: Duration::from_secs(1),
        retry: Duration::from_micros(500),
        give_up: Duration::from_secs(20),
    }
}

const QUIESCE: Duration = Duration::from_secs(30);

proptest! {
    // Each case spawns a daemon and real threads; a modest case count
    // still sweeps shard counts × kill positions × policies broadly.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For any seeded kill schedule against one shard, the surviving
    /// shards' daemon ledgers equal `run_sharded_serial` u64-for-u64, and
    /// the killed shard loses exactly the panicked requests (its cache
    /// restarts empty; every other accepted request is still served).
    #[test]
    fn kill_schedules_preserve_surviving_shard_exactness(
        pairs in proptest::collection::vec((0u64..150, 1u64..80), 50..600),
        shards in 2usize..5,
        victim_pick in 0usize..8,
        kill_fracs in proptest::collection::vec(0u64..1000, 1..3),
        policy_pick in 0usize..2,
    ) {
        let _g = exclusive();
        let kind = if policy_pick == 0 { PolicyKind::Lru } else { PolicyKind::Scip };
        let trace: Vec<Request> = pairs
            .iter()
            .enumerate()
            .map(|(t, &(id, size))| Request::new(t as u64, id, size))
            .collect();
        let cfg = DaemonConfig {
            shards,
            total_capacity: 2_000,
            queue_capacity: 4_096,
            worker_batch: 16,
            seed: 5,
            restart: fast_restarts(100),
            ..DaemonConfig::default()
        };
        let plan = ShardPlan::build(&trace, shards, cfg.seed);
        let victim = victim_pick % shards;
        // Kill positions inside the victim's stream, deduped; an empty
        // victim partition degenerates to a calm run.
        let victim_len = plan.shard_len(victim) as u64;
        let mut kill_ticks: Vec<u64> = kill_fracs
            .iter()
            .filter(|_| victim_len > 0)
            .map(|f| f * victim_len / 1000)
            .collect();
        kill_ticks.sort_unstable();
        kill_ticks.dedup();
        let kills = kill_ticks.len() as u64;
        fault::arm(
            FP_SHARD_WORKER,
            FaultRule::OnKeys(
                kill_ticks.iter().map(|t| worker_fault_key(victim, *t)).collect(),
                FaultAction::Panic("injected shard kill".into()),
            ),
        );

        let daemon = Daemon::spawn(cfg.clone(), plan.factory(kind)).unwrap();
        let report = feed(&daemon, &trace, await_recovery());
        for shard in 0..shards {
            prop_assert!(daemon.await_quiesced(shard, QUIESCE), "shard {} stuck", shard);
        }
        let stats = daemon.shutdown();
        prop_assert_eq!(fault::fired(FP_SHARD_WORKER), kills);
        fault::clear();

        // Every request was eventually accepted (retries outlast backoff).
        prop_assert_eq!(report.total_accepted(), trace.len() as u64);
        report.check_against(&stats.shards, false).unwrap();

        let reference = plan.reference(kind, cfg.total_capacity);
        for shard in 0..shards {
            let snap = &stats.shards[shard];
            if shard == victim {
                // The panicked requests are lost — everything else served.
                prop_assert_eq!(snap.lost, kills, "victim lost");
                prop_assert_eq!(snap.crashes, kills, "victim crashes");
                prop_assert_eq!(snap.restarts, kills, "victim restarts");
                prop_assert_eq!(
                    snap.processed,
                    plan.shard_len(victim) as u64 - kills,
                    "victim processed"
                );
            } else {
                prop_assert_eq!(snap.crashes, 0, "survivor {} crashed", shard);
                if let Some(diff) = ledger_diff(shard, snap, &reference.per_shard[shard]) {
                    panic!("{}", diff);
                }
            }
        }
    }
}

/// A killed shard restarts with an empty cache: objects hot before the
/// crash miss after it, and the lost request is exactly the panicked one.
#[test]
fn killed_shard_restarts_empty() {
    let _g = exclusive();
    let cfg = DaemonConfig {
        shards: 1,
        total_capacity: 1 << 20,
        restart: fast_restarts(100),
        ..DaemonConfig::default()
    };
    let plan = ShardPlan::build(
        &(0..8u64)
            .map(|t| Request::new(t, 1, 100))
            .collect::<Vec<_>>(),
        1,
        cfg.seed,
    );
    let daemon = Daemon::spawn(cfg, plan.factory(PolicyKind::Lru)).unwrap();
    let submit = |id: u64| {
        let req = Request::new(0, id, 100);
        loop {
            match daemon.submit(req) {
                Ok(_) => return,
                Err((_, SubmitError::Down)) => {
                    std::thread::sleep(Duration::from_micros(500));
                }
                Err((_, e)) => panic!("unexpected submit error: {e:?}"),
            }
        }
    };
    // Warm object 1: 1 miss + 4 hits.
    for _ in 0..5 {
        submit(1);
    }
    assert!(daemon.await_quiesced(0, QUIESCE));
    assert_eq!(daemon.stats().shards[0].hits, 4);
    assert!(daemon.stats().shards[0].resident_objects >= 1);

    // Kill the worker on its 6th request (local tick 5), then re-request
    // the warm object: the replacement's cache is empty, so it misses.
    fault::arm(
        FP_SHARD_WORKER,
        FaultRule::OnKeys(
            vec![worker_fault_key(0, 5)],
            FaultAction::Panic("injected kill".into()),
        ),
    );
    submit(2); // lost to the crash
    submit(1); // retried until the restarted worker accepts it
    assert!(daemon.await_quiesced(0, QUIESCE));
    let stats = daemon.shutdown();
    fault::clear();
    let s = &stats.shards[0];
    assert_eq!(s.crashes, 1);
    assert_eq!(s.restarts, 1);
    assert_eq!(s.lost, 1);
    assert_eq!(s.processed, 6); // 5 warmup + post-restart re-request
    assert_eq!(s.hits, 4, "post-restart request must miss an empty cache");
    assert_eq!(s.misses, 2); // initial warm miss + post-restart miss
}

/// Three crashes against a threshold-2 breaker: the first two restart
/// with backoff, the third trips Storm-Open and the shard stays down —
/// until `reset_shard`, which clears the history and revives it.
#[test]
fn storm_breaker_opens_and_reset_revives() {
    let _g = exclusive();
    let cfg = DaemonConfig {
        shards: 1,
        restart: fast_restarts(2),
        ..DaemonConfig::default()
    };
    let plan = ShardPlan::build(
        &(0..4u64)
            .map(|t| Request::new(t, t, 100))
            .collect::<Vec<_>>(),
        1,
        cfg.seed,
    );
    // Kill the first three requests the worker ever processes.
    fault::arm(
        FP_SHARD_WORKER,
        FaultRule::OnKeys(
            (0..3).map(|t| worker_fault_key(0, t)).collect(),
            FaultAction::Panic("injected storm".into()),
        ),
    );
    let daemon = Daemon::spawn(cfg, plan.factory(PolicyKind::Lru)).unwrap();
    for id in 0..3u64 {
        loop {
            match daemon.submit(Request::new(0, id, 100)) {
                Ok(_) => break,
                Err((_, SubmitError::Down)) => {
                    if daemon.shard_state(0) == ShardState::StormOpen {
                        break;
                    }
                    std::thread::sleep(Duration::from_micros(500));
                }
                Err((_, e)) => panic!("unexpected submit error: {e:?}"),
            }
        }
    }
    assert!(
        daemon.await_shard_state(0, ShardState::StormOpen, QUIESCE),
        "breaker never opened"
    );
    // Storm-Open is stable: no restart happens on its own.
    std::thread::sleep(Duration::from_millis(30));
    assert_eq!(daemon.shard_state(0), ShardState::StormOpen);
    assert!(matches!(
        daemon.submit(Request::new(0, 9, 100)),
        Err((0, SubmitError::Down))
    ));

    // Operator reset: history cleared, worker respawned, serving again.
    daemon.reset_shard(0);
    assert!(
        daemon.await_shard_state(0, ShardState::Closed, QUIESCE),
        "reset did not revive the shard"
    );
    loop {
        match daemon.submit(Request::new(0, 3, 100)) {
            Ok(_) => break,
            Err((_, SubmitError::Down)) => std::thread::sleep(Duration::from_micros(500)),
            Err((_, e)) => panic!("unexpected submit error: {e:?}"),
        }
    }
    assert!(daemon.await_quiesced(0, QUIESCE));
    let stats = daemon.shutdown();
    fault::clear();
    let s = &stats.shards[0];
    assert_eq!(s.crashes, 3);
    assert_eq!(s.restarts, 3); // two backoff restarts + the reset revival
    assert!(s.processed >= 1, "post-reset request must be served");
}

/// The `cdnd.enqueue` failpoint turns submits into client-visible
/// transport faults, counted per shard; non-matching keys are untouched
/// and non-Error actions are ignored at this site.
#[test]
fn enqueue_failpoint_faults_submit() {
    let _g = exclusive();
    let cfg = DaemonConfig {
        shards: 1,
        ..DaemonConfig::default()
    };
    let daemon = Daemon::spawn(cfg, cdnd::switchable_factory(u64::MAX, 1)).unwrap();
    fault::arm(
        FP_ENQUEUE,
        FaultRule::OnKeys(vec![7], FaultAction::Error("injected enqueue fault".into())),
    );
    assert!(matches!(
        daemon.submit(Request {
            tick: 0,
            id: ObjectId(7),
            size: 100,
            wall_secs: 0.0
        }),
        Err((0, SubmitError::Faulted))
    ));
    assert!(daemon
        .submit(Request {
            tick: 0,
            id: ObjectId(8),
            size: 100,
            wall_secs: 0.0
        })
        .is_ok());
    assert_eq!(fault::fired(FP_ENQUEUE), 1);
    // A Panic rule at this site is not an enqueue-fault: ignored.
    fault::arm(
        FP_ENQUEUE,
        FaultRule::OnKeys(vec![9], FaultAction::Panic("ignored here".into())),
    );
    assert!(daemon
        .submit(Request {
            tick: 0,
            id: ObjectId(9),
            size: 100,
            wall_secs: 0.0
        })
        .is_ok());
    assert!(daemon.await_quiesced(0, QUIESCE));
    let stats = daemon.shutdown();
    fault::clear();
    assert_eq!(stats.shards[0].faulted_enqueues, 1);
    assert_eq!(stats.shards[0].enqueued, 2);
    assert_eq!(stats.shards[0].processed, 2);
}
