//! Crash-consistent per-shard snapshot epochs for warm restarts.
//!
//! Each shard worker periodically serialises its resident set (and, for
//! learning policies, the small learned-parameter block) into an epoch
//! file `snap-<shard>-<epoch>.bin`. The on-disk format reuses the trace
//! format v2 discipline: a magic-framed header, CRC32-guarded chunks, and
//! a footer that makes truncation detectable — so *any* torn write, bit
//! flip or short read is caught by validation rather than deserialised
//! into a poisoned cache.
//!
//! ## Epoch file format (`CDNS` v1)
//!
//! ```text
//! [magic "CDNS"][version u16][shard u32][epoch u64][crc32 of the 14
//!  header bytes]
//! per chunk (<= 1024 entries):
//!   [count u32][count * 49-byte entries][crc32 of the entry payload]
//! [0u32 sentinel chunk]
//! [learned-present u8][if present: len u32 + block + crc32]
//! [total entry count u64][end magic "SNPE"]
//! ```
//!
//! Entries are written hottest-first, exactly as
//! [`cdn_cache::CachePolicy::for_each_resident`] yields them, so a
//! restore replaying coldest-first rebuilds the recency order.
//!
//! ## Commit discipline
//!
//! Write to `.<name>.tmp`, `fsync` the file, atomically rename over the
//! final name, then `fsync` the directory. A crash at any point leaves
//! either the previous epoch set intact or a complete new epoch — never a
//! half-visible file under the committed name. (A torn *tail* under the
//! committed name — the failpoint below simulates a kernel/disk lying
//! about durability — is still caught by the CRC/footer validation and
//! falls down the epoch ladder.)
//!
//! ## Recovery ladder
//!
//! [`recover`] walks committed epochs newest-first: the first one that
//! passes full validation wins; every rejected rung is counted so the
//! daemon can surface `epochs_discarded`. An empty or unreadable
//! directory means a cold start — recovery never fails, it only degrades.

use std::fs;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use cdn_cache::ResidentEntry;
use cdn_trace::checksum::crc32;

/// Failpoint site: epoch serialisation/commit (`FaultAction::Error` fails
/// the write, `ShortRead(n)` commits a torn file truncated to `n` bytes,
/// `CorruptByte(i)` commits with byte `i mod len` flipped). Keyed by
/// [`snap_fault_key`].
pub const FP_SNAP_WRITE: &str = "cdnd.snap_write";
/// Failpoint site: epoch load (`FaultAction::Error` fails the read,
/// `ShortRead(n)` truncates the bytes read, `CorruptByte(i)` flips one).
/// Keyed by [`snap_fault_key`].
pub const FP_SNAP_LOAD: &str = "cdnd.snap_load";

/// Failpoint key for snapshot sites: shard in the high bits, epoch in the
/// low 48 (mirrors the worker-site key packing).
pub fn snap_fault_key(shard: u32, epoch: u64) -> u64 {
    ((shard as u64) << 48) | (epoch & 0xFFFF_FFFF_FFFF)
}

const SNAP_MAGIC: [u8; 4] = *b"CDNS";
const SNAP_END: [u8; 4] = *b"SNPE";
const SNAP_VERSION: u16 = 1;
/// Entries per CRC-guarded chunk.
const CHUNK_ENTRIES: usize = 1024;
/// Serialised entry size: id + size + bucket + flags + 3 ticks/counters.
const ENTRY_BYTES: usize = 8 + 8 + 4 + 1 + 8 + 8 + 4 + 8;

/// Everything one epoch file carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotData {
    /// Shard the snapshot belongs to.
    pub shard: u32,
    /// Monotonic epoch number (per shard).
    pub epoch: u64,
    /// Resident set, hottest-first.
    pub entries: Vec<ResidentEntry>,
    /// Opaque learned-parameter block, if the policy exported one.
    pub learned: Option<Vec<u8>>,
}

impl SnapshotData {
    /// Total bytes of the snapshotted resident set.
    pub fn resident_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.size).sum()
    }
}

/// Why a snapshot could not be written or read.
#[derive(Debug)]
pub enum SnapError {
    /// Filesystem-level failure.
    Io(io::Error),
    /// The file exists but fails validation (torn, flipped, truncated,
    /// wrong magic/version/shard). The string names the first violation.
    Corrupt(String),
}

impl std::fmt::Display for SnapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapError::Io(e) => write!(f, "snapshot io: {e}"),
            SnapError::Corrupt(why) => write!(f, "snapshot corrupt: {why}"),
        }
    }
}

impl std::error::Error for SnapError {}

impl From<io::Error> for SnapError {
    fn from(e: io::Error) -> Self {
        SnapError::Io(e)
    }
}

/// Committed path of one epoch file.
pub fn snapshot_path(dir: &Path, shard: u32, epoch: u64) -> PathBuf {
    dir.join(format!("snap-{shard}-{epoch}.bin"))
}

fn encode_entry(out: &mut Vec<u8>, e: &ResidentEntry) {
    out.extend_from_slice(&e.id.0.to_le_bytes());
    out.extend_from_slice(&e.size.to_le_bytes());
    out.extend_from_slice(&e.bucket.to_le_bytes());
    out.push(u8::from(e.inserted_at_mru));
    out.extend_from_slice(&e.inserted_tick.to_le_bytes());
    out.extend_from_slice(&e.last_access.to_le_bytes());
    out.extend_from_slice(&e.hits.to_le_bytes());
    out.extend_from_slice(&e.tag.to_le_bytes());
}

fn decode_entry(buf: &[u8]) -> Result<ResidentEntry, SnapError> {
    if buf.len() != ENTRY_BYTES {
        return Err(SnapError::Corrupt(format!(
            "entry record of {} bytes (want {ENTRY_BYTES})",
            buf.len()
        )));
    }
    let u64_at = |off: usize| u64::from_le_bytes(buf[off..off + 8].try_into().expect("sized"));
    let u32_at = |off: usize| u32::from_le_bytes(buf[off..off + 4].try_into().expect("sized"));
    let flags = buf[20];
    if flags > 1 {
        return Err(SnapError::Corrupt(format!("entry flags byte {flags}")));
    }
    Ok(ResidentEntry {
        id: cdn_cache::ObjectId(u64_at(0)),
        size: u64_at(8),
        bucket: u32_at(16),
        inserted_at_mru: flags == 1,
        inserted_tick: u64_at(21),
        last_access: u64_at(29),
        hits: u32_at(37),
        tag: u64_at(41),
    })
}

/// Serialise an epoch to its on-disk byte image.
fn encode(data: &SnapshotData) -> Vec<u8> {
    let mut out = Vec::with_capacity(32 + data.entries.len() * (ENTRY_BYTES + 1));
    out.extend_from_slice(&SNAP_MAGIC);
    let header_start = out.len();
    out.extend_from_slice(&SNAP_VERSION.to_le_bytes());
    out.extend_from_slice(&data.shard.to_le_bytes());
    out.extend_from_slice(&data.epoch.to_le_bytes());
    let header_crc = crc32(&out[header_start..]);
    out.extend_from_slice(&header_crc.to_le_bytes());
    let mut payload = Vec::with_capacity(CHUNK_ENTRIES * ENTRY_BYTES);
    for chunk in data.entries.chunks(CHUNK_ENTRIES) {
        payload.clear();
        for e in chunk {
            encode_entry(&mut payload, e);
        }
        out.extend_from_slice(&(chunk.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
    }
    out.extend_from_slice(&0u32.to_le_bytes()); // sentinel: no more chunks
    match &data.learned {
        Some(block) => {
            out.push(1);
            out.extend_from_slice(&(block.len() as u32).to_le_bytes());
            out.extend_from_slice(block);
            out.extend_from_slice(&crc32(block).to_le_bytes());
        }
        None => out.push(0),
    }
    out.extend_from_slice(&(data.entries.len() as u64).to_le_bytes());
    out.extend_from_slice(&SNAP_END);
    out
}

/// Streaming validator/decoder over a complete byte image.
fn decode(bytes: &[u8]) -> Result<SnapshotData, SnapError> {
    let mut cur = io::Cursor::new(bytes);
    let mut magic = [0u8; 4];
    cur.read_exact(&mut magic)
        .map_err(|_| SnapError::Corrupt("file shorter than magic".into()))?;
    if magic != SNAP_MAGIC {
        return Err(SnapError::Corrupt(format!("bad magic {magic:?}")));
    }
    let mut header = [0u8; 14];
    cur.read_exact(&mut header)
        .map_err(|_| SnapError::Corrupt("truncated header".into()))?;
    let mut crc_buf = [0u8; 4];
    cur.read_exact(&mut crc_buf)
        .map_err(|_| SnapError::Corrupt("truncated header crc".into()))?;
    if crc32(&header) != u32::from_le_bytes(crc_buf) {
        return Err(SnapError::Corrupt("header crc mismatch".into()));
    }
    let version = u16::from_le_bytes(header[0..2].try_into().expect("sized"));
    if version != SNAP_VERSION {
        return Err(SnapError::Corrupt(format!("unknown version {version}")));
    }
    let shard = u32::from_le_bytes(header[2..6].try_into().expect("sized"));
    let epoch = u64::from_le_bytes(header[6..14].try_into().expect("sized"));
    let mut entries = Vec::new();
    loop {
        let mut count_buf = [0u8; 4];
        cur.read_exact(&mut count_buf)
            .map_err(|_| SnapError::Corrupt("truncated chunk count".into()))?;
        let count = u32::from_le_bytes(count_buf) as usize;
        if count == 0 {
            break;
        }
        if count > CHUNK_ENTRIES {
            return Err(SnapError::Corrupt(format!("oversized chunk {count}")));
        }
        let mut payload = vec![0u8; count * ENTRY_BYTES];
        cur.read_exact(&mut payload)
            .map_err(|_| SnapError::Corrupt("truncated chunk payload".into()))?;
        cur.read_exact(&mut crc_buf)
            .map_err(|_| SnapError::Corrupt("truncated chunk crc".into()))?;
        if crc32(&payload) != u32::from_le_bytes(crc_buf) {
            return Err(SnapError::Corrupt("chunk crc mismatch".into()));
        }
        for rec in payload.chunks(ENTRY_BYTES) {
            entries.push(decode_entry(rec)?);
        }
    }
    let mut flag = [0u8; 1];
    cur.read_exact(&mut flag)
        .map_err(|_| SnapError::Corrupt("truncated learned flag".into()))?;
    let learned = match flag[0] {
        0 => None,
        1 => {
            let mut len_buf = [0u8; 4];
            cur.read_exact(&mut len_buf)
                .map_err(|_| SnapError::Corrupt("truncated learned len".into()))?;
            let len = u32::from_le_bytes(len_buf) as usize;
            // Learned blocks are small (a few hundred bytes for SCIP); a
            // huge length is corruption, not a real block.
            if len > 1 << 20 {
                return Err(SnapError::Corrupt(format!("learned block {len} bytes")));
            }
            let mut block = vec![0u8; len];
            cur.read_exact(&mut block)
                .map_err(|_| SnapError::Corrupt("truncated learned block".into()))?;
            cur.read_exact(&mut crc_buf)
                .map_err(|_| SnapError::Corrupt("truncated learned crc".into()))?;
            if crc32(&block) != u32::from_le_bytes(crc_buf) {
                return Err(SnapError::Corrupt("learned crc mismatch".into()));
            }
            Some(block)
        }
        other => return Err(SnapError::Corrupt(format!("learned flag byte {other}"))),
    };
    let mut total_buf = [0u8; 8];
    cur.read_exact(&mut total_buf)
        .map_err(|_| SnapError::Corrupt("truncated footer count".into()))?;
    let total = u64::from_le_bytes(total_buf);
    if total != entries.len() as u64 {
        return Err(SnapError::Corrupt(format!(
            "footer count {total} != {} entries",
            entries.len()
        )));
    }
    cur.read_exact(&mut magic)
        .map_err(|_| SnapError::Corrupt("truncated end magic".into()))?;
    if magic != SNAP_END {
        return Err(SnapError::Corrupt(format!("bad end magic {magic:?}")));
    }
    if cur.position() != bytes.len() as u64 {
        return Err(SnapError::Corrupt(format!(
            "{} trailing bytes after end magic",
            bytes.len() as u64 - cur.position()
        )));
    }
    Ok(SnapshotData {
        shard,
        epoch,
        entries,
        learned,
    })
}

/// Serialise and atomically commit one epoch file; returns its committed
/// path. Commit order: tmp write → file fsync → rename → directory fsync.
///
/// Under `--features fault-injection` the [`FP_SNAP_WRITE`] site can fail
/// the write ([`cdn_cache::fault::FaultAction::Error`]), commit a torn
/// tail (`ShortRead(n)`: the *committed* file is truncated to `n` bytes —
/// simulating storage that lied about durability) or commit a single
/// flipped byte (`CorruptByte(i)`).
pub fn write_epoch(dir: &Path, data: &SnapshotData) -> Result<PathBuf, SnapError> {
    #[allow(unused_mut)]
    let mut bytes = encode(data);
    #[cfg(feature = "fault-injection")]
    if let Some(action) =
        cdn_cache::fault::check(FP_SNAP_WRITE, snap_fault_key(data.shard, data.epoch))
    {
        use cdn_cache::fault::FaultAction;
        match action {
            FaultAction::Panic(msg) => panic!("failpoint {FP_SNAP_WRITE}: {msg}"),
            FaultAction::Error(msg) => {
                return Err(SnapError::Io(io::Error::other(format!(
                    "failpoint {FP_SNAP_WRITE}: {msg}"
                ))));
            }
            FaultAction::ShortRead(n) => bytes.truncate(n.min(bytes.len())),
            FaultAction::CorruptByte(i) => {
                let idx = i % bytes.len().max(1);
                bytes[idx] ^= 0x01;
            }
        }
    }
    fs::create_dir_all(dir)?;
    let final_path = snapshot_path(dir, data.shard, data.epoch);
    let tmp_path = dir.join(format!(".snap-{}-{}.tmp", data.shard, data.epoch));
    {
        let mut f = fs::File::create(&tmp_path)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp_path, &final_path)?;
    // Make the rename itself durable: fsync the containing directory.
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(final_path)
}

/// Load and fully validate one committed epoch file.
///
/// Under `--features fault-injection` the [`FP_SNAP_LOAD`] site (keyed by
/// [`snap_fault_key`]) can fail the read, truncate it, or flip one byte of
/// what was read — driving the recovery ladder without touching the disk
/// image.
pub fn load_epoch(path: &Path, shard: u32, epoch: u64) -> Result<SnapshotData, SnapError> {
    #[cfg(not(feature = "fault-injection"))]
    let _ = (shard, epoch);
    #[allow(unused_mut)]
    let mut bytes = fs::read(path)?;
    #[cfg(feature = "fault-injection")]
    if let Some(action) = cdn_cache::fault::check(FP_SNAP_LOAD, snap_fault_key(shard, epoch)) {
        use cdn_cache::fault::FaultAction;
        match action {
            FaultAction::Panic(msg) => panic!("failpoint {FP_SNAP_LOAD}: {msg}"),
            FaultAction::Error(msg) => {
                return Err(SnapError::Io(io::Error::other(format!(
                    "failpoint {FP_SNAP_LOAD}: {msg}"
                ))));
            }
            FaultAction::ShortRead(n) => bytes.truncate(n.min(bytes.len())),
            FaultAction::CorruptByte(i) => {
                let idx = i % bytes.len().max(1);
                bytes[idx] ^= 0x01;
            }
        }
    }
    decode(&bytes)
}

/// Committed epochs for `shard` in `dir`, ascending. Unreadable or foreign
/// files are ignored — listing never fails.
pub fn list_epochs(dir: &Path, shard: u32) -> Vec<u64> {
    let prefix = format!("snap-{shard}-");
    let mut epochs = Vec::new();
    let Ok(rd) = fs::read_dir(dir) else {
        return epochs;
    };
    for entry in rd.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(rest) = name.strip_prefix(&prefix) else {
            continue;
        };
        let Some(num) = rest.strip_suffix(".bin") else {
            continue;
        };
        if let Ok(epoch) = num.parse::<u64>() {
            epochs.push(epoch);
        }
    }
    epochs.sort_unstable();
    epochs
}

/// What [`recover`] found.
#[derive(Debug)]
pub struct RecoverOutcome {
    /// The newest epoch that passed full validation, if any.
    pub data: Option<SnapshotData>,
    /// Epochs that existed but failed validation or could not be read
    /// (each one is a descended ladder rung).
    pub epochs_discarded: u64,
    /// Highest epoch number seen on disk, valid or not — the successor
    /// worker must number its own epochs above this so a discarded-but-
    /// newer corrupt file can never shadow future snapshots.
    pub latest_epoch_seen: u64,
}

/// Walk the epoch ladder newest-first and return the first epoch that
/// validates. Never fails: a directory with no readable epoch yields a
/// cold start (`data: None`) with every broken rung counted.
pub fn recover(dir: &Path, shard: u32) -> RecoverOutcome {
    let mut discarded = 0u64;
    let epochs = list_epochs(dir, shard);
    let latest = epochs.last().copied().unwrap_or(0);
    for &epoch in epochs.iter().rev() {
        match load_epoch(&snapshot_path(dir, shard, epoch), shard, epoch) {
            Ok(data) if data.shard == shard && data.epoch == epoch => {
                return RecoverOutcome {
                    data: Some(data),
                    epochs_discarded: discarded,
                    latest_epoch_seen: latest,
                };
            }
            // A file whose embedded identity disagrees with its name is as
            // untrustworthy as a bad CRC.
            Ok(_) | Err(_) => discarded += 1,
        }
    }
    RecoverOutcome {
        data: None,
        epochs_discarded: discarded,
        latest_epoch_seen: latest,
    }
}

/// Remove all but the newest `keep` committed epochs for `shard`; returns
/// how many files were removed. Removal failures are ignored (a stale
/// epoch is harmless; recovery validates whatever it finds).
pub fn prune(dir: &Path, shard: u32, keep: u32) -> u64 {
    let epochs = list_epochs(dir, shard);
    let keep = keep.max(1) as usize;
    if epochs.len() <= keep {
        return 0;
    }
    let mut removed = 0;
    for &epoch in &epochs[..epochs.len() - keep] {
        if fs::remove_file(snapshot_path(dir, shard, epoch)).is_ok() {
            removed += 1;
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdn_cache::ObjectId;

    fn entry(id: u64, size: u64, bucket: u32) -> ResidentEntry {
        ResidentEntry {
            id: ObjectId(id),
            size,
            bucket,
            inserted_at_mru: id.is_multiple_of(2),
            inserted_tick: id * 3,
            last_access: id * 5,
            hits: (id % 7) as u32,
            tag: id.wrapping_mul(0x9E37),
        }
    }

    fn sample(shard: u32, epoch: u64, n: u64) -> SnapshotData {
        SnapshotData {
            shard,
            epoch,
            entries: (0..n)
                .map(|i| entry(i, 1 + i % 9, (i % 3) as u32))
                .collect(),
            learned: Some(vec![7u8; 42]),
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("cdnd-snap-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let dir = tmpdir("roundtrip");
        // Cross a chunk boundary to exercise multi-chunk framing.
        let data = sample(2, 9, CHUNK_ENTRIES as u64 + 100);
        let path = write_epoch(&dir, &data).unwrap();
        assert_eq!(path, snapshot_path(&dir, 2, 9));
        let loaded = load_epoch(&path, 2, 9).unwrap();
        assert_eq!(loaded, data);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_and_learnedless_snapshots_roundtrip() {
        let dir = tmpdir("empty");
        for data in [
            SnapshotData {
                shard: 0,
                epoch: 1,
                entries: vec![],
                learned: None,
            },
            SnapshotData {
                shard: 0,
                epoch: 2,
                entries: vec![entry(1, 5, 0)],
                learned: None,
            },
        ] {
            let path = write_epoch(&dir, &data).unwrap();
            assert_eq!(load_epoch(&path, 0, data.epoch).unwrap(), data);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_truncation_is_detected() {
        let data = sample(1, 4, 50);
        let bytes = encode(&data);
        for cut in 0..bytes.len() {
            assert!(
                decode(&bytes[..cut]).is_err(),
                "truncation to {cut}/{} bytes accepted",
                bytes.len()
            );
        }
        assert!(decode(&bytes).is_ok());
    }

    #[test]
    fn trailing_garbage_is_detected() {
        let data = sample(1, 4, 3);
        let mut bytes = encode(&data);
        bytes.push(0);
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn list_recover_and_prune_walk_the_ladder() {
        let dir = tmpdir("ladder");
        for epoch in [3u64, 5, 9] {
            write_epoch(&dir, &sample(7, epoch, 10)).unwrap();
        }
        assert_eq!(list_epochs(&dir, 7), vec![3, 5, 9]);
        assert_eq!(list_epochs(&dir, 8), Vec::<u64>::new());

        // Corrupt the newest epoch on disk: recovery descends one rung.
        let newest = snapshot_path(&dir, 7, 9);
        let mut bytes = fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&newest, &bytes).unwrap();
        let out = recover(&dir, 7);
        assert_eq!(out.data.as_ref().unwrap().epoch, 5);
        assert_eq!(out.epochs_discarded, 1);
        assert_eq!(out.latest_epoch_seen, 9);

        // Prune to 1: only the newest file (even though corrupt) survives,
        // and a follow-up recover degrades to cold with the rung counted.
        assert_eq!(prune(&dir, 7, 1), 2);
        assert_eq!(list_epochs(&dir, 7), vec![9]);
        let out = recover(&dir, 7);
        assert!(out.data.is_none());
        assert_eq!(out.epochs_discarded, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_on_missing_dir_is_cold_not_error() {
        let out = recover(Path::new("/nonexistent/cdnd-snapshots"), 0);
        assert!(out.data.is_none());
        assert_eq!(out.epochs_discarded, 0);
        assert_eq!(out.latest_epoch_seen, 0);
    }

    #[test]
    fn mislabeled_file_is_discarded() {
        let dir = tmpdir("mislabel");
        // A valid shard-3 snapshot renamed to shard 4's name: the embedded
        // identity wins and the rung is discarded.
        write_epoch(&dir, &sample(3, 6, 5)).unwrap();
        fs::rename(snapshot_path(&dir, 3, 6), snapshot_path(&dir, 4, 6)).unwrap();
        let out = recover(&dir, 4);
        assert!(out.data.is_none());
        assert_eq!(out.epochs_discarded, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn commit_is_atomic_no_tmp_left_behind() {
        let dir = tmpdir("atomic");
        write_epoch(&dir, &sample(0, 1, 20)).unwrap();
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "tmp files: {leftovers:?}");
        let _ = fs::remove_dir_all(&dir);
    }
}
