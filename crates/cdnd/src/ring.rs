//! Bounded MPSC request ring feeding one shard worker.
//!
//! A deliberately boring `Mutex<VecDeque>` + two condvars: the daemon's
//! robustness claims rest on this queue being **bounded** (overload turns
//! into explicit shedding, never unbounded growth) and **outliving the
//! worker** (a crashed worker's queued requests survive in the ring and
//! are served by its replacement, so crash isolation does not silently
//! drop accepted work). Both properties are easier to prove on a mutexed
//! deque than on a lock-free ring, and the daemon batches pops
//! ([`BoundedRing::pop_many`]) so the lock is taken once per batch, not
//! once per request.
//!
//! Depth accounting: the ring tracks its own high-water mark
//! ([`BoundedRing::peak_depth`]) under the same lock that admits pushes,
//! so the overload test's "peak depth ≤ capacity" assertion is exact, not
//! sampled.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The ring is at capacity — the caller must shed or wait.
    Full,
    /// The ring was closed (daemon shutting down).
    Closed,
}

/// Outcome of a timed pop.
#[derive(Debug)]
pub enum Popped<T> {
    /// Items were dequeued (into the caller's buffer).
    Items(Vec<T>),
    /// Nothing arrived within the timeout; the ring is still open.
    TimedOut,
    /// The ring is closed *and* fully drained — the worker may exit.
    Drained,
}

struct Inner<T> {
    queue: VecDeque<T>,
    closed: bool,
    peak_depth: usize,
}

/// Bounded multi-producer single-consumer queue with close/drain
/// semantics. `capacity` is a hard bound: pushes beyond it fail with
/// [`PushError::Full`] (or block, for the backpressure variant) rather
/// than allocate.
pub struct BoundedRing<T> {
    capacity: usize,
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> BoundedRing<T> {
    /// Ring holding at most `capacity` queued items.
    ///
    /// # Panics
    /// If `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "BoundedRing: capacity must be >= 1");
        BoundedRing {
            capacity,
            inner: Mutex::new(Inner {
                queue: VecDeque::with_capacity(capacity.min(1 << 16)),
                closed: false,
                peak_depth: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Hard bound this ring was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Try to enqueue without blocking; sheds with [`PushError::Full`] at
    /// capacity.
    pub fn try_push(&self, item: T) -> Result<(), PushError> {
        self.try_push_within(item, self.capacity)
            .map_err(|(_, e)| e)
    }

    /// Try to enqueue only while the current depth is below `limit`
    /// (clamped to `capacity`). On refusal reports the depth observed
    /// under the lock alongside the error, so an admission controller can
    /// attribute the refusal to the exact bound that was hit (class
    /// watermark vs per-request deadline) with no race between the depth
    /// read and the refusal — both happen under one lock acquisition.
    pub fn try_push_within(&self, item: T, limit: usize) -> Result<(), (usize, PushError)> {
        let bound = limit.min(self.capacity);
        let mut g = self.inner.lock().unwrap();
        if g.closed {
            return Err((g.queue.len(), PushError::Closed));
        }
        if g.queue.len() >= bound {
            return Err((g.queue.len(), PushError::Full));
        }
        g.queue.push_back(item);
        let depth = g.queue.len();
        g.peak_depth = g.peak_depth.max(depth);
        drop(g);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Batched submit: move items from the front of `batch` into the ring
    /// while the depth stays below `limit` (clamped to `capacity`), under
    /// a **single** lock acquisition — the per-request daemon feed pays
    /// one lock round-trip per request; a chunked feeder pays one per
    /// batch. Returns the number enqueued (possibly 0 on a full ring);
    /// refused items stay in `batch` in order, so the caller's
    /// per-request fallback path keeps exact per-cause accounting.
    /// [`PushError::Closed`] leaves the whole batch with the caller.
    pub fn push_many(&self, batch: &mut VecDeque<T>, limit: usize) -> Result<usize, PushError> {
        if batch.is_empty() {
            return Ok(0);
        }
        let bound = limit.min(self.capacity);
        let mut g = self.inner.lock().unwrap();
        if g.closed {
            return Err(PushError::Closed);
        }
        let room = bound.saturating_sub(g.queue.len());
        let take = room.min(batch.len());
        if take == 0 {
            return Ok(0);
        }
        g.queue.extend(batch.drain(..take));
        let depth = g.queue.len();
        g.peak_depth = g.peak_depth.max(depth);
        drop(g);
        self.not_empty.notify_one();
        Ok(take)
    }

    /// Enqueue with backpressure: block while the ring is full, up to
    /// `timeout`. Returns [`PushError::Full`] only if the timeout expires
    /// with the ring still at capacity (a stuck consumer), or
    /// [`PushError::Closed`] if the ring closes while waiting.
    pub fn push_wait(&self, item: T, timeout: Duration) -> Result<(), PushError> {
        let mut g = self.inner.lock().unwrap();
        loop {
            if g.closed {
                return Err(PushError::Closed);
            }
            if g.queue.len() < self.capacity {
                g.queue.push_back(item);
                let depth = g.queue.len();
                g.peak_depth = g.peak_depth.max(depth);
                drop(g);
                self.not_empty.notify_one();
                return Ok(());
            }
            let (g2, res) = self.not_full.wait_timeout(g, timeout).unwrap();
            g = g2;
            if res.timed_out() && g.queue.len() >= self.capacity {
                return Err(PushError::Full);
            }
        }
    }

    /// Dequeue up to `max` items, waiting up to `timeout` for the first.
    /// One lock acquisition serves the whole batch. Single consumer only.
    pub fn pop_many(&self, max: usize, timeout: Duration) -> Popped<T> {
        let mut g = self.inner.lock().unwrap();
        loop {
            if !g.queue.is_empty() {
                let take = g.queue.len().min(max.max(1));
                let items: Vec<T> = g.queue.drain(..take).collect();
                drop(g);
                self.not_full.notify_all();
                return Popped::Items(items);
            }
            if g.closed {
                return Popped::Drained;
            }
            let (g2, res) = self.not_empty.wait_timeout(g, timeout).unwrap();
            g = g2;
            if res.timed_out() && g.queue.is_empty() {
                return if g.closed {
                    Popped::Drained
                } else {
                    Popped::TimedOut
                };
            }
        }
    }

    /// Put items back at the *front* of the ring, preserving their order.
    /// Used by a crashing worker to return the unprocessed tail of its
    /// popped batch, so the replacement worker sees the exact original
    /// stream (minus only the request that panicked). May transiently
    /// exceed `capacity` — the items were already admitted once, so
    /// re-queueing them must not shed.
    pub fn unpop(&self, items: Vec<T>) {
        if items.is_empty() {
            return;
        }
        let mut g = self.inner.lock().unwrap();
        for item in items.into_iter().rev() {
            g.queue.push_front(item);
        }
        let depth = g.queue.len();
        g.peak_depth = g.peak_depth.max(depth);
        drop(g);
        self.not_empty.notify_one();
    }

    /// Close the ring: further pushes fail, pops drain what remains and
    /// then report [`Popped::Drained`]. Wakes all waiters.
    pub fn close(&self) {
        let mut g = self.inner.lock().unwrap();
        g.closed = true;
        drop(g);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().queue.len()
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Highest depth ever observed (updated under the push lock).
    pub fn peak_depth(&self) -> usize {
        self.inner.lock().unwrap().peak_depth
    }

    /// Has [`BoundedRing::close`] been called?
    pub fn is_closed(&self) -> bool {
        self.inner.lock().unwrap().closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sheds_at_capacity_and_tracks_peak() {
        let ring: BoundedRing<u32> = BoundedRing::new(4);
        for i in 0..4 {
            assert_eq!(ring.try_push(i), Ok(()));
        }
        assert_eq!(ring.try_push(99), Err(PushError::Full));
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.peak_depth(), 4);
        match ring.pop_many(64, Duration::from_millis(1)) {
            Popped::Items(items) => assert_eq!(items, vec![0, 1, 2, 3]),
            other => panic!("expected items, got {other:?}"),
        }
        // Peak is a high-water mark: draining does not lower it.
        assert_eq!(ring.peak_depth(), 4);
        assert_eq!(ring.try_push(5), Ok(()));
    }

    #[test]
    fn push_within_enforces_limit_and_reports_depth() {
        let ring: BoundedRing<u32> = BoundedRing::new(8);
        for i in 0..3 {
            assert_eq!(ring.try_push_within(i, 3), Ok(()));
        }
        // Refused at the limit with the exact depth observed.
        assert_eq!(ring.try_push_within(9, 3), Err((3, PushError::Full)));
        // A looser limit still admits (the ring itself has room).
        assert_eq!(ring.try_push_within(4, 8), Ok(()));
        // Limits beyond capacity clamp to capacity.
        for i in 0..4 {
            assert_eq!(ring.try_push_within(i, usize::MAX), Ok(()));
        }
        assert_eq!(
            ring.try_push_within(99, usize::MAX),
            Err((8, PushError::Full))
        );
        ring.close();
        assert_eq!(ring.try_push_within(1, 3), Err((8, PushError::Closed)));
    }

    #[test]
    fn push_many_fills_to_limit_and_leaves_the_rest() {
        let ring: BoundedRing<u32> = BoundedRing::new(4);
        let mut batch: VecDeque<u32> = (0..6).collect();
        // Class limit below capacity: only 3 admitted.
        assert_eq!(ring.push_many(&mut batch, 3), Ok(3));
        assert_eq!(batch, VecDeque::from(vec![3, 4, 5]));
        // Ring has one slot left under its hard capacity.
        assert_eq!(ring.push_many(&mut batch, usize::MAX), Ok(1));
        assert_eq!(batch, VecDeque::from(vec![4, 5]));
        // Full: nothing admitted, nothing lost.
        assert_eq!(ring.push_many(&mut batch, usize::MAX), Ok(0));
        assert_eq!(batch.len(), 2);
        assert_eq!(ring.peak_depth(), 4);
        match ring.pop_many(8, Duration::from_millis(1)) {
            Popped::Items(items) => assert_eq!(items, vec![0, 1, 2, 3]),
            other => panic!("expected items, got {other:?}"),
        }
        ring.close();
        assert_eq!(
            ring.push_many(&mut batch, usize::MAX),
            Err(PushError::Closed)
        );
        assert_eq!(batch.len(), 2, "closed ring leaves the batch intact");
    }

    #[test]
    fn close_drains_then_reports_drained() {
        let ring: BoundedRing<u32> = BoundedRing::new(8);
        ring.try_push(1).unwrap();
        ring.try_push(2).unwrap();
        ring.close();
        assert_eq!(ring.try_push(3), Err(PushError::Closed));
        match ring.pop_many(1, Duration::from_millis(1)) {
            Popped::Items(items) => assert_eq!(items, vec![1]),
            other => panic!("expected items, got {other:?}"),
        }
        match ring.pop_many(8, Duration::from_millis(1)) {
            Popped::Items(items) => assert_eq!(items, vec![2]),
            other => panic!("expected items, got {other:?}"),
        }
        assert!(matches!(
            ring.pop_many(8, Duration::from_millis(1)),
            Popped::Drained
        ));
    }

    #[test]
    fn unpop_restores_front_order() {
        let ring: BoundedRing<u32> = BoundedRing::new(8);
        ring.try_push(4).unwrap();
        ring.unpop(vec![1, 2, 3]);
        match ring.pop_many(8, Duration::from_millis(1)) {
            Popped::Items(items) => assert_eq!(items, vec![1, 2, 3, 4]),
            other => panic!("expected items, got {other:?}"),
        }
    }

    #[test]
    fn push_wait_blocks_until_space() {
        use std::sync::Arc;
        let ring: Arc<BoundedRing<u32>> = Arc::new(BoundedRing::new(1));
        ring.try_push(0).unwrap();
        let r2 = Arc::clone(&ring);
        let consumer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            match r2.pop_many(1, Duration::from_millis(100)) {
                Popped::Items(items) => assert_eq!(items, vec![0]),
                other => panic!("expected items, got {other:?}"),
            }
        });
        // Blocks until the consumer drains, then succeeds.
        assert_eq!(ring.push_wait(1, Duration::from_secs(5)), Ok(()));
        consumer.join().unwrap();
        assert_eq!(ring.len(), 1);
    }

    #[test]
    fn push_wait_times_out_on_stuck_consumer() {
        let ring: BoundedRing<u32> = BoundedRing::new(1);
        ring.try_push(0).unwrap();
        assert_eq!(
            ring.push_wait(1, Duration::from_millis(10)),
            Err(PushError::Full)
        );
    }
}
