//! `cdnd` — a supervised, sharded cache-server daemon.
//!
//! Promotes the library-only SCIP stack into a long-running process
//! shape (ROADMAP item 1): N single-threaded shard workers, one
//! [`cdn_cache::CachePolicy`] instance each, key-partitioned with
//! [`cdn_cache::key_shard`], fed by bounded MPSC rings under a
//! supervisor thread. The crate's contract is robustness, in this order:
//!
//! 1. **Crash isolation** — a panicking shard worker is caught, its
//!    cache declared lost, and restarted with bounded exponential
//!    backoff behind a restart-storm breaker, while every other shard
//!    keeps serving ([`Daemon`], DESIGN.md §16). With snapshotting
//!    enabled ([`SnapshotConfig`]), the replacement worker restores warm
//!    from the newest readable CRC-framed epoch file before draining its
//!    ring ([`snapshot`], DESIGN.md §17).
//! 2. **Overload robustness** — bounded queues shed explicitly with
//!    [`SubmitError::Overloaded`]; depth/shed/restart counters are
//!    observable in [`DaemonStats`].
//! 3. **Graceful lifecycle** — drain-on-shutdown, validated config with
//!    reject-and-keep-old reload ([`DaemonConfig`]), and live per-shard
//!    LRU→SCIP policy switch via `tdc::switchable`.
//!
//! The [`harness`] module is the deterministic in-process client used by
//! the `cdnd_chaos` binary and the test suite to prove the availability
//! and ledger-exactness gates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod daemon;
pub mod harness;
pub mod ring;
pub mod snapshot;

pub use config::{DaemonConfig, DaemonConfigError, RestartConfig, SnapshotConfig};
pub use daemon::{
    worker_fault_key, Daemon, DaemonStats, PolicyFactory, ShardPolicy, ShardSnapshot, ShardState,
    SubmitError, FP_ENQUEUE, FP_SHARD_WORKER,
};
pub use harness::{
    feed, ledger_diff, ledger_matches, switchable_factory, ClientTally, FeedMode, FeedReport,
    ShardPlan,
};
pub use ring::{BoundedRing, Popped, PushError};
pub use snapshot::{
    snap_fault_key, RecoverOutcome, SnapError, SnapshotData, FP_SNAP_LOAD, FP_SNAP_WRITE,
};
