//! `cdnd` — a supervised, sharded cache-server daemon.
//!
//! Promotes the library-only SCIP stack into a long-running process
//! shape (ROADMAP item 1): N single-threaded shard workers, one
//! [`cdn_cache::CachePolicy`] instance each, key-partitioned with
//! [`cdn_cache::key_shard`], fed by bounded MPSC rings under a
//! supervisor thread. The crate's contract is robustness, in this order:
//!
//! 1. **Crash isolation** — a panicking shard worker is caught, its
//!    cache declared lost, and restarted with bounded exponential
//!    backoff behind a restart-storm breaker, while every other shard
//!    keeps serving ([`Daemon`], DESIGN.md §16). With snapshotting
//!    enabled ([`SnapshotConfig`]), the replacement worker restores warm
//!    from the newest readable CRC-framed epoch file before draining its
//!    ring ([`snapshot`], DESIGN.md §17).
//! 2. **Availability under failure** — when a key's primary shard is
//!    down and failover routing is enabled ([`RouteConfig`]), the
//!    [`route`] module re-routes it deterministically to its
//!    rendezvous-ordered secondary, served cold as an overlay miss —
//!    degraded, never dark (DESIGN.md §18).
//! 3. **Overload robustness** — bounded queues guarded by a
//!    class-watermark admission controller ([`Admit`], [`AdmitConfig`]):
//!    brownout sheds the lowest [`Priority`] class first, per-request
//!    deadlines refuse at the request's own depth bound, and every
//!    refusal is counted under exactly one [`SubmitError`] cause in
//!    [`DaemonStats`].
//! 4. **Graceful lifecycle** — drain-on-shutdown, validated config with
//!    reject-and-keep-old reload ([`DaemonConfig`]), and live per-shard
//!    LRU→SCIP policy switch via `tdc::switchable`.
//!
//! The [`harness`] module is the deterministic in-process client used by
//! the `cdnd_chaos` binary and the test suite to prove the availability
//! and ledger-exactness gates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod daemon;
pub mod harness;
pub mod ring;
pub mod route;
pub mod snapshot;

pub use config::{
    AdmitConfig, DaemonConfig, DaemonConfigError, RestartConfig, RouteConfig, SnapshotConfig,
};
pub use daemon::{
    worker_fault_key, Accepted, Daemon, DaemonStats, PolicyFactory, ShardPolicy, ShardSnapshot,
    ShardState, SubmitError, FP_ENQUEUE, FP_SHARD_WORKER,
};
pub use harness::{
    feed, feed_batched, feed_stream, ledger_diff, ledger_matches, oracle_free_factory,
    routed_ledger_diff, routed_ledger_matches, switchable_factory, ClientTally, FeedMode,
    FeedReport, ShardPlan, FEED_WINDOW,
};
pub use ring::{BoundedRing, Popped, PushError};
pub use route::{route_fault_key, Admit, Priority, RouteDecision, ShardHealth, FP_ROUTE};
pub use snapshot::{
    snap_fault_key, RecoverOutcome, SnapError, SnapshotData, FP_SNAP_LOAD, FP_SNAP_WRITE,
};
