//! The supervised, sharded daemon core.
//!
//! N single-threaded shard workers — one [`CachePolicy`] instance each,
//! key-partitioned with the workspace-wide [`cdn_cache::key_shard`]
//! mapping — are fed by bounded MPSC rings and watched by one supervisor
//! thread. The robustness contract, in order of importance:
//!
//! - **Crash isolation**: a panicking worker (its own bug, or the
//!   `cdnd.shard_worker` failpoint) is caught per request. Its cache is
//!   declared lost (the policy instance drops with the worker), the
//!   unprocessed tail of its popped batch is returned to the ring, and
//!   every other shard keeps serving untouched. Only the single request
//!   that panicked is lost, and it is counted (`lost`), never silent.
//! - **Supervised recovery**: the supervisor restarts crashed shards with
//!   bounded exponential backoff; a restart storm (more than
//!   `storm_threshold` restarts inside `storm_window_ms`) trips a breaker
//!   to Storm-Open — the shard stays down, cheap and observable, until an
//!   operator [`Daemon::reset_shard`]. State machine: Closed → (crash) →
//!   Backoff → (restart) → Closed, or → Storm-Open (see DESIGN.md §16).
//! - **Failover routing** (off by default, [`RouteConfig`]): when a
//!   key's primary shard is down, the submit path re-routes it to its
//!   rendezvous-ordered live secondary ([`crate::route`]) where it is
//!   served cold as an overlay miss — degraded, never dark. The decision
//!   is pure in `(key, down-set)`, so the routing-aware serial reference
//!   (`cdn_sim::run_routed_serial`) replays it exactly and failover
//!   ledgers stay u64-reconcilable.
//! - **Admission, not blind shedding**: rings are bounded and guarded by
//!   a class-watermark admission controller ([`crate::Admit`],
//!   [`AdmitConfig`]): brownout sheds `Low` before `Normal` before
//!   `High`, per-request deadlines refuse at the request's own depth
//!   bound, and every refusal lands under exactly one counted cause
//!   ([`SubmitError`]). Queue memory stays
//!   `shards × queue_capacity × sizeof(Request)`, a constant.
//! - **Graceful drain**: [`Daemon::shutdown`] stops intake, lets every
//!   live worker finish all queued requests, then joins all threads.
//!
//! Ledger exactness: each worker assigns local ticks `0, 1, 2, …` to the
//! requests it processes and splits capacity exactly like
//! `cdn_sim::run_sharded_serial`, so a shard that never crashed produces
//! hit/miss/byte ledgers equal u64-for-u64 to the library's serial
//! sharded replay of the same stream (property-tested in
//! `tests/supervision_check.rs`).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cdn_cache::{
    key_shard, route_with_failover, AccessKind, CachePolicy, Request, ResidentEntry, Tick,
};
use tdc::SwitchableScip;

use crate::config::{AdmitConfig, DaemonConfig, DaemonConfigError, RestartConfig, SnapshotConfig};
use crate::ring::{BoundedRing, Popped, PushError};
use crate::route::{Admit, Priority, ShardHealth};
use crate::snapshot::{self, SnapshotData};

#[cfg(feature = "fault-injection")]
use crate::route::{route_fault_key, FP_ROUTE};

/// Failpoint site evaluated once per request inside a shard worker, keyed
/// by [`worker_fault_key`]. Arm it with [`cdn_cache::fault::FaultRule`]
/// `Panic` actions to kill a shard at an exact point in its stream.
pub const FP_SHARD_WORKER: &str = "cdnd.shard_worker";
/// Failpoint site evaluated on every submit, keyed by the object id. An
/// armed `Error` action makes the submit fail with
/// [`SubmitError::Faulted`] (a client-visible transport fault); other
/// actions are ignored at this site.
pub const FP_ENQUEUE: &str = "cdnd.enqueue";

/// Failpoint key for [`FP_SHARD_WORKER`]: shard id in the top 16 bits,
/// the shard-local tick (request ordinal) in the low 48.
pub fn worker_fault_key(shard: usize, tick: Tick) -> u64 {
    ((shard as u64) << 48) | (tick & 0x0000_FFFF_FFFF_FFFF)
}

/// Why a submit was refused, by cause. Every variant is counted per
/// shard in [`ShardSnapshot`] (`Shed` further split by priority class),
/// so client-side tallies and daemon counters reconcile exactly — each
/// refused request lands under exactly one cause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The routed shard's queue reached the request's class watermark
    /// (brownout) or the hard ring capacity — load was shed.
    Shed,
    /// No shard can serve this key: its primary is in Backoff or
    /// Storm-Open and either failover routing is disabled or every
    /// failover candidate is down too.
    Down,
    /// The routed shard's queue depth reached the request's own
    /// [`Admit::deadline_depth`] bound before its class watermark.
    Deadline,
    /// The `cdnd.enqueue` failpoint injected a transport fault.
    Faulted,
    /// The daemon is draining; no new work is accepted.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Shed => write!(f, "shed (class watermark or queue full)"),
            SubmitError::Down => write!(f, "down (no live shard for key)"),
            SubmitError::Deadline => write!(f, "deadline (queue deeper than request tolerates)"),
            SubmitError::Faulted => write!(f, "injected enqueue fault"),
            SubmitError::ShuttingDown => write!(f, "daemon shutting down"),
        }
    }
}

/// Successful submit: where the request landed and whether the router
/// diverted it from its primary (served as an overlay miss on a
/// rendezvous secondary).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Accepted {
    /// Shard whose ring accepted the request.
    pub shard: usize,
    /// True when `shard` is not the key's primary (failover overlay).
    pub failover: bool,
}

/// Supervision state of one shard (the breaker states of DESIGN.md §16).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardState {
    /// Worker alive and serving (breaker closed).
    Closed,
    /// Worker crashed; a restart is pending after exponential backoff.
    Backoff,
    /// Restart storm detected; the shard stays down until
    /// [`Daemon::reset_shard`].
    StormOpen,
}

/// The policy a shard worker drives. `Plain` wraps any boxed
/// [`CachePolicy`]; `Switchable` exposes the `tdc::switchable` node so the
/// admin plane can flip its insertion/promotion policy from LRU to SCIP
/// live, at an exact shard-local tick ([`Daemon::switch_policy_at`]).
pub enum ShardPolicy {
    /// Any fixed policy.
    Plain(Box<dyn CachePolicy>),
    /// LRU-until-deploy-tick, SCIP-after (live-switchable).
    Switchable(Box<SwitchableScip>),
}

impl ShardPolicy {
    fn on_request(&mut self, req: &Request) -> AccessKind {
        match self {
            ShardPolicy::Plain(p) => p.on_request(req),
            ShardPolicy::Switchable(p) => p.on_request(req),
        }
    }

    fn residency(&self) -> (usize, u64) {
        let stats = match self {
            ShardPolicy::Plain(p) => p.stats(),
            ShardPolicy::Switchable(p) => p.stats(),
        };
        (stats.resident_objects, stats.resident_bytes)
    }

    /// Apply a live switch; false (counted, not fatal) when the shard
    /// runs a non-switchable policy.
    fn switch_at(&mut self, tick: Tick) -> bool {
        match self {
            ShardPolicy::Plain(_) => false,
            ShardPolicy::Switchable(p) => {
                p.deploy_at = tick;
                true
            }
        }
    }

    fn as_policy(&self) -> &dyn CachePolicy {
        match self {
            ShardPolicy::Plain(p) => p.as_ref(),
            ShardPolicy::Switchable(p) => p.as_ref(),
        }
    }

    fn as_policy_mut(&mut self) -> &mut dyn CachePolicy {
        match self {
            ShardPolicy::Plain(p) => p.as_mut(),
            ShardPolicy::Switchable(p) => p.as_mut(),
        }
    }

    /// Read-only export of the resident set (hottest-first), or `None`
    /// when the policy does not support the seam — that shard snapshots
    /// nothing and restarts cold.
    fn export_resident(&self) -> Option<Vec<ResidentEntry>> {
        let mut out = Vec::new();
        if self.as_policy().for_each_resident(&mut |e| out.push(*e)) {
            Some(out)
        } else {
            None
        }
    }

    /// Rebuild residency (and learned parameters, when present) from a
    /// recovered snapshot. Returns false when the policy rejects the
    /// resident-set restore (cold start).
    fn restore_from(&mut self, data: &SnapshotData) -> bool {
        let policy = self.as_policy_mut();
        if !policy.restore_resident(&data.entries) {
            return false;
        }
        if let Some(block) = &data.learned {
            // A stale/foreign learned block is skipped, not fatal: the
            // resident set alone is most of the warmth.
            let _ = policy.restore_learned(block);
        }
        true
    }
}

/// Builds a fresh policy for `(shard, per_shard_capacity)`. Called on the
/// worker's own thread at every (re)start, so the policy value never
/// crosses threads and need not be `Send`. Must be pure enough to call
/// repeatedly: restarts build replacement instances from scratch.
pub type PolicyFactory = Arc<dyn Fn(usize, u64) -> ShardPolicy + Send + Sync>;

/// Admin commands delivered to a worker between batches.
enum Ctl {
    /// Set the switchable policy's deploy tick.
    SwitchAt(Tick),
    /// Commit a snapshot epoch now (regardless of the cadence), if
    /// snapshotting is enabled and the policy supports export.
    SnapshotNow,
}

/// Everything about one shard that outlives its worker incarnations.
struct ShardShared {
    id: usize,
    ring: BoundedRing<Request>,
    state: Mutex<ShardState>,
    paused: AtomicBool,
    ctl: Mutex<Vec<Ctl>>,
    ctl_pending: AtomicBool,
    // Intake counters (written by producers under submit).
    enqueued: AtomicU64,
    failover_in: AtomicU64,
    shed_low: AtomicU64,
    shed_normal: AtomicU64,
    shed_high: AtomicU64,
    rejected_down: AtomicU64,
    rejected_deadline: AtomicU64,
    faulted_enqueues: AtomicU64,
    // Serving ledger (written by the worker).
    processed: AtomicU64,
    lost: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    hit_bytes: AtomicU64,
    miss_bytes: AtomicU64,
    /// Next shard-local tick (attempt ordinal; survives restarts).
    ticks: AtomicU64,
    crashes: AtomicU64,
    restarts: AtomicU64,
    switches: AtomicU64,
    dropped_at_shutdown: AtomicU64,
    resident_objects: AtomicUsize,
    resident_bytes: AtomicU64,
    // Warm-restart bookkeeping (written by the worker).
    snapshots_written: AtomicU64,
    restored_objects: AtomicU64,
    restored_bytes: AtomicU64,
    epochs_discarded: AtomicU64,
    /// Next snapshot epoch to commit (monotonic across incarnations).
    snap_epoch: AtomicU64,
}

impl ShardShared {
    fn new(id: usize, queue_capacity: usize) -> Self {
        ShardShared {
            id,
            ring: BoundedRing::new(queue_capacity),
            state: Mutex::new(ShardState::Closed),
            paused: AtomicBool::new(false),
            ctl: Mutex::new(Vec::new()),
            ctl_pending: AtomicBool::new(false),
            enqueued: AtomicU64::new(0),
            failover_in: AtomicU64::new(0),
            shed_low: AtomicU64::new(0),
            shed_normal: AtomicU64::new(0),
            shed_high: AtomicU64::new(0),
            rejected_down: AtomicU64::new(0),
            rejected_deadline: AtomicU64::new(0),
            faulted_enqueues: AtomicU64::new(0),
            processed: AtomicU64::new(0),
            lost: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            hit_bytes: AtomicU64::new(0),
            miss_bytes: AtomicU64::new(0),
            ticks: AtomicU64::new(0),
            crashes: AtomicU64::new(0),
            restarts: AtomicU64::new(0),
            switches: AtomicU64::new(0),
            dropped_at_shutdown: AtomicU64::new(0),
            resident_objects: AtomicUsize::new(0),
            resident_bytes: AtomicU64::new(0),
            snapshots_written: AtomicU64::new(0),
            restored_objects: AtomicU64::new(0),
            restored_bytes: AtomicU64::new(0),
            epochs_discarded: AtomicU64::new(0),
            snap_epoch: AtomicU64::new(1),
        }
    }

    fn state(&self) -> ShardState {
        *self.state.lock().unwrap()
    }

    fn set_state(&self, s: ShardState) {
        *self.state.lock().unwrap() = s;
    }

    fn publish_residency(&self, policy: &ShardPolicy) {
        let (objects, bytes) = policy.residency();
        self.resident_objects.store(objects, Ordering::Relaxed);
        self.resident_bytes.store(bytes, Ordering::Relaxed);
    }

    fn shed_counter(&self, class: Priority) -> &AtomicU64 {
        match class {
            Priority::Low => &self.shed_low,
            Priority::Normal => &self.shed_normal,
            Priority::High => &self.shed_high,
        }
    }
}

/// Point-in-time counters for one shard. Consistency (once the daemon is
/// quiescent or shut down): `enqueued == processed + lost +
/// dropped_at_shutdown + depth`, and client-side tallies of submit
/// outcomes equal `enqueued` / `shed` / `rejected_down` /
/// `rejected_deadline` / `faulted_enqueues` exactly — every submitted
/// request reconciles to exactly one counter cause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSnapshot {
    /// Supervision state at snapshot time.
    pub state: ShardState,
    /// Requests currently queued.
    pub depth: usize,
    /// High-water queue depth (exact, tracked under the ring lock).
    pub peak_depth: usize,
    /// Ring capacity (the shed bound).
    pub queue_capacity: usize,
    /// Requests accepted into the ring.
    pub enqueued: u64,
    /// Requests fully served by the policy.
    pub processed: u64,
    /// Requests lost to a worker crash (the panicking request itself).
    pub lost: u64,
    /// Requests shed with [`SubmitError::Shed`], all classes
    /// (`shed_low + shed_normal + shed_high`).
    pub shed: u64,
    /// `Low`-class requests shed at the brownout watermark.
    pub shed_low: u64,
    /// `Normal`-class requests shed at the brownout watermark.
    pub shed_normal: u64,
    /// `High`-class requests shed at the hard ring capacity.
    pub shed_high: u64,
    /// Requests rejected with [`SubmitError::Down`].
    pub rejected_down: u64,
    /// Requests refused with [`SubmitError::Deadline`] (queue deeper
    /// than the request's own bound, below its class watermark).
    pub rejected_deadline: u64,
    /// Requests failed by the `cdnd.enqueue` failpoint.
    pub faulted_enqueues: u64,
    /// Requests this shard accepted as failover overlay (their primary
    /// was down; served here cold).
    pub failover_in: u64,
    /// Cache hits (ledger, comparable to `RunMeasurement::hits`).
    pub hits: u64,
    /// Cache misses, rejections included.
    pub misses: u64,
    /// Bytes served from cache.
    pub hit_bytes: u64,
    /// Bytes missed to origin.
    pub miss_bytes: u64,
    /// Worker panics caught.
    pub crashes: u64,
    /// Worker restarts performed by the supervisor.
    pub restarts: u64,
    /// Live policy switches applied.
    pub switches: u64,
    /// Requests still queued on a dead shard when the daemon shut down.
    pub dropped_at_shutdown: u64,
    /// Objects resident after the last processed batch.
    pub resident_objects: usize,
    /// Bytes resident after the last processed batch.
    pub resident_bytes: u64,
    /// Snapshot epochs committed by this shard's workers.
    pub snapshots_written: u64,
    /// Objects re-inserted from snapshots across all warm restarts.
    pub restored_objects: u64,
    /// Bytes re-inserted from snapshots across all warm restarts.
    pub restored_bytes: u64,
    /// Snapshot epochs found on disk but rejected by validation during
    /// recovery (each one is a descended fallback-ladder rung).
    pub epochs_discarded: u64,
}

/// Snapshot of every shard plus daemon-level reload counters.
#[derive(Debug, Clone)]
pub struct DaemonStats {
    /// Per-shard counters, indexed by shard id.
    pub shards: Vec<ShardSnapshot>,
    /// Config reloads applied.
    pub reloads_applied: u64,
    /// Config reloads rejected (validation or immutable-field failures).
    pub reloads_rejected: u64,
}

impl DaemonStats {
    /// Sum of `f` across shards.
    fn sum(&self, f: impl Fn(&ShardSnapshot) -> u64) -> u64 {
        self.shards.iter().map(f).sum()
    }

    /// Total requests accepted.
    pub fn total_enqueued(&self) -> u64 {
        self.sum(|s| s.enqueued)
    }

    /// Total requests served.
    pub fn total_processed(&self) -> u64 {
        self.sum(|s| s.processed)
    }

    /// Total requests shed under overload.
    pub fn total_shed(&self) -> u64 {
        self.sum(|s| s.shed)
    }

    /// Total requests rejected while shards were down.
    pub fn total_rejected_down(&self) -> u64 {
        self.sum(|s| s.rejected_down)
    }

    /// Total requests refused on their own deadline bound.
    pub fn total_rejected_deadline(&self) -> u64 {
        self.sum(|s| s.rejected_deadline)
    }

    /// Total requests served as failover overlay (accepted on a
    /// rendezvous secondary while their primary was down).
    pub fn total_failover(&self) -> u64 {
        self.sum(|s| s.failover_in)
    }

    /// Total requests lost to crashes.
    pub fn total_lost(&self) -> u64 {
        self.sum(|s| s.lost)
    }

    /// Total worker restarts.
    pub fn total_restarts(&self) -> u64 {
        self.sum(|s| s.restarts)
    }
}

enum SupEvent {
    Crashed { shard: usize },
    Reset { shard: usize },
    Shutdown,
}

thread_local! {
    /// Set while a worker processes a request under `catch_unwind`, so
    /// the global panic hook stays quiet for crashes the supervisor is
    /// about to catch, account for and recover from.
    static ISOLATING: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Install (once) a panic hook that suppresses backtrace spew for panics
/// the daemon isolates (same pattern as the sweep executor's quiet hook).
fn install_quiet_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !ISOLATING.with(|f| f.get()) {
                previous(info);
            }
        }));
    });
}

/// How long a worker waits on an empty ring before re-checking control
/// state (pause flags, drain). Pure liveness knob; correctness never
/// depends on it.
const POP_TIMEOUT: Duration = Duration::from_millis(1);
/// Supervisor idle wake interval when no restart is pending.
const SUP_IDLE: Duration = Duration::from_millis(200);

/// Export the shard's resident set and commit one snapshot epoch.
/// Returns true when a file was committed. Never perturbs policy state:
/// the export seam is `&self` and a policy without the seam (or a write
/// failure) simply leaves the previous epoch set in place.
fn take_snapshot(shared: &ShardShared, policy: &ShardPolicy, snap: &SnapshotConfig) -> bool {
    if !snap.enabled() {
        return false;
    }
    let Some(dir) = &snap.dir else { return false };
    let Some(entries) = policy.export_resident() else {
        return false;
    };
    let learned = policy.as_policy().export_learned();
    let epoch = shared.snap_epoch.fetch_add(1, Ordering::Relaxed);
    let data = SnapshotData {
        shard: shared.id as u32,
        epoch,
        entries,
        learned,
    };
    match snapshot::write_epoch(dir, &data) {
        Ok(_) => {
            shared.snapshots_written.fetch_add(1, Ordering::Relaxed);
            snapshot::prune(dir, shared.id as u32, snap.keep);
            true
        }
        Err(_) => false,
    }
}

/// Walk the epoch ladder and restore the newest readable snapshot into a
/// freshly built policy. Every discarded rung is counted; any failure —
/// missing dir, all epochs corrupt, policy rejects the restore, or a
/// panic inside the restore itself — degrades to a cold start.
fn restore_warm(shared: &ShardShared, policy: &mut ShardPolicy, snap: &SnapshotConfig) {
    if !snap.enabled() {
        return;
    }
    let Some(dir) = &snap.dir else { return };
    let outcome = snapshot::recover(dir, shared.id as u32);
    shared
        .epochs_discarded
        .fetch_add(outcome.epochs_discarded, Ordering::Relaxed);
    // Future epochs must outnumber everything ever seen on disk, valid or
    // corrupt, so a discarded-but-newer file can never shadow them.
    shared
        .snap_epoch
        .fetch_max(outcome.latest_epoch_seen + 1, Ordering::Relaxed);
    let Some(data) = outcome.data else { return };
    ISOLATING.with(|f| f.set(true));
    let restored = catch_unwind(AssertUnwindSafe(|| policy.restore_from(&data)));
    ISOLATING.with(|f| f.set(false));
    if let Ok(true) = restored {
        let (objects, bytes) = policy.residency();
        shared
            .restored_objects
            .fetch_add(objects as u64, Ordering::Relaxed);
        shared.restored_bytes.fetch_add(bytes, Ordering::Relaxed);
    }
}

fn worker_loop(
    shared: Arc<ShardShared>,
    factory: PolicyFactory,
    per_shard_capacity: u64,
    batch: usize,
    snap_cfg: Arc<Mutex<SnapshotConfig>>,
    events: Sender<SupEvent>,
) {
    let built = catch_unwind(AssertUnwindSafe(|| factory(shared.id, per_shard_capacity)));
    let mut policy = match built {
        Ok(p) => p,
        Err(_) => {
            shared.crashes.fetch_add(1, Ordering::Relaxed);
            shared.set_state(ShardState::Backoff);
            let _ = events.send(SupEvent::Crashed { shard: shared.id });
            return;
        }
    };
    // Warm restore happens before the first pop: the ring's queued
    // requests are served by a cache that already holds the snapshotted
    // resident set, in its snapshotted recency order.
    {
        let snap = snap_cfg.lock().unwrap().clone();
        restore_warm(&shared, &mut policy, &snap);
    }
    shared.publish_residency(&policy);
    let mut since_snap: u64 = 0;
    loop {
        if shared.ctl_pending.swap(false, Ordering::AcqRel) {
            let cmds: Vec<Ctl> = std::mem::take(&mut *shared.ctl.lock().unwrap());
            for cmd in cmds {
                match cmd {
                    Ctl::SwitchAt(tick) => {
                        if policy.switch_at(tick) {
                            shared.switches.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    Ctl::SnapshotNow => {
                        let snap = snap_cfg.lock().unwrap().clone();
                        if take_snapshot(&shared, &policy, &snap) {
                            since_snap = 0;
                        }
                    }
                }
            }
        }
        if shared.paused.load(Ordering::Acquire) {
            std::thread::sleep(Duration::from_micros(200));
            continue;
        }
        match shared.ring.pop_many(batch, POP_TIMEOUT) {
            Popped::Items(items) => {
                // A pause that raced the pop (the worker was already
                // blocked inside `pop_many` when the flag went up) is
                // honoured before any request is served: the batch goes
                // back in order and the worker idles, so admission
                // drills observe exact queue depths. The ring mutex
                // orders the flag store before the popped push.
                if shared.paused.load(Ordering::Acquire) {
                    shared.ring.unpop(items.into_iter().collect());
                    continue;
                }
                let mut pending = items.into_iter();
                while let Some(mut req) = pending.next() {
                    let tick = shared.ticks.fetch_add(1, Ordering::Relaxed);
                    req.tick = tick;
                    let outcome = {
                        ISOLATING.with(|f| f.set(true));
                        let r = catch_unwind(AssertUnwindSafe(|| {
                            #[cfg(feature = "fault-injection")]
                            cdn_cache::fault::maybe_panic(
                                FP_SHARD_WORKER,
                                worker_fault_key(shared.id, tick),
                            );
                            policy.on_request(&req)
                        }));
                        ISOLATING.with(|f| f.set(false));
                        r
                    };
                    match outcome {
                        Ok(kind) => {
                            if kind.is_hit() {
                                shared.hits.fetch_add(1, Ordering::Relaxed);
                                shared.hit_bytes.fetch_add(req.size, Ordering::Relaxed);
                            } else {
                                shared.misses.fetch_add(1, Ordering::Relaxed);
                                shared.miss_bytes.fetch_add(req.size, Ordering::Relaxed);
                            }
                            shared.processed.fetch_add(1, Ordering::Relaxed);
                            since_snap += 1;
                        }
                        Err(_) => {
                            // Crash isolation: the panicking request is
                            // lost (counted), the rest of the batch goes
                            // back to the ring in order, the cache dies
                            // with this incarnation.
                            shared.lost.fetch_add(1, Ordering::Relaxed);
                            shared.crashes.fetch_add(1, Ordering::Relaxed);
                            shared.ring.unpop(pending.collect());
                            shared.set_state(ShardState::Backoff);
                            shared.resident_objects.store(0, Ordering::Relaxed);
                            shared.resident_bytes.store(0, Ordering::Relaxed);
                            let _ = events.send(SupEvent::Crashed { shard: shared.id });
                            return;
                        }
                    }
                }
                shared.publish_residency(&policy);
                // Cadence snapshots commit between batches, never inside
                // one, so an epoch always captures a batch boundary.
                let snap = snap_cfg.lock().unwrap().clone();
                if snap.enabled() && since_snap >= snap.interval {
                    take_snapshot(&shared, &policy, &snap);
                    since_snap = 0;
                }
            }
            Popped::TimedOut => continue,
            Popped::Drained => {
                // Graceful drain: one final epoch so a subsequent process
                // start (or the bench harness) can restore fully warm.
                let snap = snap_cfg.lock().unwrap().clone();
                take_snapshot(&shared, &policy, &snap);
                break;
            }
        }
    }
    shared.publish_residency(&policy);
}

type WorkerSlots = Arc<Vec<Mutex<Option<JoinHandle<()>>>>>;

struct SupervisorCtx {
    shards: Vec<Arc<ShardShared>>,
    workers: WorkerSlots,
    factory: PolicyFactory,
    per_shard_capacity: u64,
    worker_batch: usize,
    restart_cfg: Arc<Mutex<RestartConfig>>,
    snap_cfg: Arc<Mutex<SnapshotConfig>>,
    events_tx: Sender<SupEvent>,
    shutting_down: Arc<AtomicBool>,
}

fn spawn_worker(ctx: &SupervisorCtx, shard: usize) {
    let shared = Arc::clone(&ctx.shards[shard]);
    let factory = Arc::clone(&ctx.factory);
    let events = ctx.events_tx.clone();
    let capacity = ctx.per_shard_capacity;
    let batch = ctx.worker_batch;
    let snap_cfg = Arc::clone(&ctx.snap_cfg);
    let handle = std::thread::Builder::new()
        .name(format!("cdnd-shard-{shard}"))
        .spawn(move || worker_loop(shared, factory, capacity, batch, snap_cfg, events))
        .expect("spawn shard worker");
    *ctx.workers[shard].lock().unwrap() = Some(handle);
}

fn supervisor_loop(ctx: SupervisorCtx, events_rx: std::sync::mpsc::Receiver<SupEvent>) {
    let n = ctx.shards.len();
    // (shard, due) pending restarts and per-shard restart timestamps
    // inside the current storm window.
    let mut pending: Vec<(usize, Instant)> = Vec::new();
    let mut history: Vec<Vec<Instant>> = vec![Vec::new(); n];
    loop {
        let now = Instant::now();
        let timeout = pending
            .iter()
            .map(|(_, due)| due.saturating_duration_since(now))
            .min()
            .unwrap_or(SUP_IDLE);
        match events_rx.recv_timeout(timeout) {
            Ok(SupEvent::Crashed { shard }) => {
                if let Some(handle) = ctx.workers[shard].lock().unwrap().take() {
                    let _ = handle.join();
                }
                if ctx.shutting_down.load(Ordering::Acquire) {
                    continue;
                }
                let cfg = *ctx.restart_cfg.lock().unwrap();
                let now = Instant::now();
                let window = Duration::from_millis(cfg.storm_window_ms);
                history[shard].retain(|t| now.duration_since(*t) <= window);
                let in_window = history[shard].len() as u32;
                if in_window >= cfg.storm_threshold {
                    ctx.shards[shard].set_state(ShardState::StormOpen);
                } else {
                    pending.push((shard, now + cfg.backoff_delay(in_window)));
                }
            }
            Ok(SupEvent::Reset { shard }) => {
                // Operator reset: forget the restart history, cancel any
                // pending backoff, and if the worker is dead (Backoff or
                // Storm-Open) respawn it immediately.
                history[shard].clear();
                pending.retain(|(s, _)| *s != shard);
                if ctx.shards[shard].state() != ShardState::Closed
                    && !ctx.shutting_down.load(Ordering::Acquire)
                {
                    spawn_worker(&ctx, shard);
                    ctx.shards[shard].restarts.fetch_add(1, Ordering::Relaxed);
                    ctx.shards[shard].set_state(ShardState::Closed);
                }
            }
            Ok(SupEvent::Shutdown) | Err(RecvTimeoutError::Disconnected) => return,
            Err(RecvTimeoutError::Timeout) => {}
        }
        let now = Instant::now();
        let due: Vec<usize> = pending
            .iter()
            .filter(|(_, at)| *at <= now)
            .map(|(s, _)| *s)
            .collect();
        pending.retain(|(_, at)| *at > now);
        for shard in due {
            if ctx.shutting_down.load(Ordering::Acquire) {
                continue;
            }
            history[shard].push(now);
            spawn_worker(&ctx, shard);
            ctx.shards[shard].restarts.fetch_add(1, Ordering::Relaxed);
            ctx.shards[shard].set_state(ShardState::Closed);
        }
    }
}

/// The daemon: owns the shard rings, the worker threads and the
/// supervisor. Submit from any number of threads; call
/// [`Daemon::shutdown`] to drain and collect final stats.
pub struct Daemon {
    shards: Vec<Arc<ShardShared>>,
    workers: WorkerSlots,
    supervisor: Option<JoinHandle<()>>,
    events_tx: Sender<SupEvent>,
    cfg: Mutex<DaemonConfig>,
    restart_cfg: Arc<Mutex<RestartConfig>>,
    snap_cfg: Arc<Mutex<SnapshotConfig>>,
    // Routing/admission tunables, mirrored into atomics so the submit
    // hot path never takes a config lock.
    route_failover: AtomicBool,
    admit_low_pct: std::sync::atomic::AtomicU8,
    admit_normal_pct: std::sync::atomic::AtomicU8,
    /// Monotonic submit ordinal — the router's tick ([`FP_ROUTE`] key).
    route_seq: AtomicU64,
    shutting_down: Arc<AtomicBool>,
    reloads_applied: AtomicU64,
    reloads_rejected: AtomicU64,
}

impl Daemon {
    /// Validate `cfg`, spawn one worker per shard plus the supervisor.
    pub fn spawn(cfg: DaemonConfig, factory: PolicyFactory) -> Result<Daemon, DaemonConfigError> {
        cfg.validate()?;
        install_quiet_hook();
        let n = cfg.shards;
        let shards: Vec<Arc<ShardShared>> = (0..n)
            .map(|id| Arc::new(ShardShared::new(id, cfg.queue_capacity)))
            .collect();
        let workers: WorkerSlots = Arc::new((0..n).map(|_| Mutex::new(None)).collect());
        let restart_cfg = Arc::new(Mutex::new(cfg.restart));
        let snap_cfg = Arc::new(Mutex::new(cfg.snap.clone()));
        let shutting_down = Arc::new(AtomicBool::new(false));
        let (events_tx, events_rx) = channel();
        let ctx = SupervisorCtx {
            shards: shards.clone(),
            workers: Arc::clone(&workers),
            factory,
            per_shard_capacity: cfg.per_shard_capacity(),
            worker_batch: cfg.worker_batch,
            restart_cfg: Arc::clone(&restart_cfg),
            snap_cfg: Arc::clone(&snap_cfg),
            events_tx: events_tx.clone(),
            shutting_down: Arc::clone(&shutting_down),
        };
        for shard in 0..n {
            spawn_worker(&ctx, shard);
        }
        let supervisor = std::thread::Builder::new()
            .name("cdnd-supervisor".to_string())
            .spawn(move || supervisor_loop(ctx, events_rx))
            .expect("spawn supervisor");
        Ok(Daemon {
            shards,
            workers,
            supervisor: Some(supervisor),
            events_tx,
            route_failover: AtomicBool::new(cfg.route.failover),
            admit_low_pct: std::sync::atomic::AtomicU8::new(cfg.admit.low_watermark_pct),
            admit_normal_pct: std::sync::atomic::AtomicU8::new(cfg.admit.normal_watermark_pct),
            route_seq: AtomicU64::new(0),
            cfg: Mutex::new(cfg),
            restart_cfg,
            snap_cfg,
            shutting_down,
            reloads_applied: AtomicU64::new(0),
            reloads_rejected: AtomicU64::new(0),
        })
    }

    /// Shard count.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The primary shard `id` routes to with everything up
    /// ([`cdn_cache::key_shard`]).
    pub fn route(&self, id: u64) -> usize {
        key_shard(id, self.shards.len())
    }

    /// Point-in-time router view of every shard: supervision state plus
    /// queue pressure.
    pub fn shard_health(&self) -> Vec<ShardHealth> {
        self.shards
            .iter()
            .map(|s| ShardHealth {
                up: s.state() == ShardState::Closed,
                depth: s.ring.len(),
                queue_capacity: s.ring.capacity(),
            })
            .collect()
    }

    /// Route + admit + enqueue. `wait` is the backpressure budget used
    /// only when the effective admission bound is the full ring capacity
    /// (class `High`, no deadline): brownout classes and deadlines fail
    /// fast — a request unwilling to stand in a deep queue must not block
    /// on one.
    fn submit_inner(
        &self,
        req: Request,
        admit: Admit,
        wait: Option<Duration>,
    ) -> Result<Accepted, (usize, SubmitError)> {
        let primary = self.route(req.id.0);
        if self.shutting_down.load(Ordering::Acquire) {
            return Err((primary, SubmitError::ShuttingDown));
        }
        #[cfg(feature = "fault-injection")]
        if let Some(cdn_cache::fault::FaultAction::Error(_)) =
            cdn_cache::fault::check(FP_ENQUEUE, req.id.0)
        {
            self.shards[primary]
                .faulted_enqueues
                .fetch_add(1, Ordering::Relaxed);
            return Err((primary, SubmitError::Faulted));
        }
        let shard = if self.route_failover.load(Ordering::Relaxed) {
            let _seq = self.route_seq.fetch_add(1, Ordering::Relaxed);
            #[cfg(feature = "fault-injection")]
            let force_primary_down = matches!(
                cdn_cache::fault::check(FP_ROUTE, route_fault_key(primary, _seq)),
                Some(cdn_cache::fault::FaultAction::Error(_))
            );
            #[cfg(not(feature = "fault-injection"))]
            let force_primary_down = false;
            let routed = route_with_failover(req.id.0, self.shards.len(), |s| {
                (force_primary_down && s == primary) || self.shards[s].state() != ShardState::Closed
            });
            match routed {
                Some(shard) => shard,
                None => {
                    self.shards[primary]
                        .rejected_down
                        .fetch_add(1, Ordering::Relaxed);
                    return Err((primary, SubmitError::Down));
                }
            }
        } else {
            if self.shards[primary].state() != ShardState::Closed {
                self.shards[primary]
                    .rejected_down
                    .fetch_add(1, Ordering::Relaxed);
                return Err((primary, SubmitError::Down));
            }
            primary
        };
        let target = &self.shards[shard];
        let admit_cfg = AdmitConfig {
            low_watermark_pct: self.admit_low_pct.load(Ordering::Relaxed),
            normal_watermark_pct: self.admit_normal_pct.load(Ordering::Relaxed),
        };
        let class_limit = admit_cfg.class_limit(admit.class, target.ring.capacity());
        let limit = class_limit.min(admit.deadline_depth.unwrap_or(usize::MAX));
        let result = match wait {
            Some(timeout) if limit >= target.ring.capacity() => target
                .ring
                .push_wait(req, timeout)
                .map_err(|e| (target.ring.capacity(), e)),
            _ => target.ring.try_push_within(req, limit),
        };
        match result {
            Ok(()) => {
                target.enqueued.fetch_add(1, Ordering::Relaxed);
                let failover = shard != primary;
                if failover {
                    target.failover_in.fetch_add(1, Ordering::Relaxed);
                }
                Ok(Accepted { shard, failover })
            }
            Err((depth, PushError::Full)) => {
                // Cause attribution: the class watermark is charged when
                // the observed depth reached it; otherwise the request's
                // own (tighter) deadline bound refused first.
                if depth >= class_limit {
                    target
                        .shed_counter(admit.class)
                        .fetch_add(1, Ordering::Relaxed);
                    Err((shard, SubmitError::Shed))
                } else {
                    target.rejected_deadline.fetch_add(1, Ordering::Relaxed);
                    Err((shard, SubmitError::Deadline))
                }
            }
            Err((_, PushError::Closed)) => Err((shard, SubmitError::ShuttingDown)),
        }
    }

    /// Full-control submit: route `req` (with failover when enabled),
    /// admit it under `admit`'s class watermark and deadline bound, and
    /// enqueue. `wait` bounds backpressure blocking and only applies when
    /// the effective admission bound is the whole ring (class `High`
    /// with no deadline); otherwise the call fails fast.
    pub fn submit_classed(
        &self,
        req: Request,
        admit: Admit,
        wait: Option<Duration>,
    ) -> Result<Accepted, (usize, SubmitError)> {
        self.submit_inner(req, admit, wait)
    }

    /// Non-blocking submit at default admission (`High`, no deadline):
    /// sheds with [`SubmitError::Shed`] when the target ring is full.
    /// Returns the shard that accepted (or refused) the request.
    pub fn submit(&self, req: Request) -> Result<usize, (usize, SubmitError)> {
        self.submit_inner(req, Admit::default(), None)
            .map(|a| a.shard)
    }

    /// Batched fast-path submit of a shard-homogeneous run at default
    /// admission (`High`, no deadline): every request in `batch` must
    /// route to `shard` as its primary. Accepts as many as fit under one
    /// ring-lock acquisition per attempt ([`BoundedRing::push_many`]),
    /// waiting for queue space up to `wait`, and returns how many were
    /// enqueued. Refused requests stay in `batch` in submission order so
    /// the caller can fall back to the per-request path — which owns all
    /// refusal accounting (shed / down / deadline / failover). The fast
    /// path itself refuses nothing and counts nothing but `enqueued`: it
    /// stops (returning the partial count) the moment the shard leaves
    /// `Closed`, so requests are never silently queued behind a dead
    /// shard the per-request path would have rejected or re-routed.
    ///
    /// Compiled with `fault-injection`, the fast path disables itself
    /// (always returns `Ok(0)`) so every submit evaluates its enqueue
    /// and routing failpoints on the per-request path.
    pub fn submit_batch(
        &self,
        shard: usize,
        batch: &mut std::collections::VecDeque<Request>,
        wait: Option<Duration>,
    ) -> Result<usize, (usize, SubmitError)> {
        debug_assert!(
            batch.iter().all(|r| self.route(r.id.0) == shard),
            "submit_batch: batch must be homogeneous on its primary shard"
        );
        #[cfg(feature = "fault-injection")]
        {
            let _ = (shard, &batch, wait);
            Ok(0)
        }
        #[cfg(not(feature = "fault-injection"))]
        {
            let target = &self.shards[shard];
            let deadline = wait.map(|w| Instant::now() + w);
            let mut pushed = 0usize;
            loop {
                if self.shutting_down.load(Ordering::Acquire) {
                    return if pushed == 0 {
                        Err((shard, SubmitError::ShuttingDown))
                    } else {
                        Ok(pushed)
                    };
                }
                if batch.is_empty() || target.state() != ShardState::Closed {
                    return Ok(pushed);
                }
                match target.ring.push_many(batch, target.ring.capacity()) {
                    Ok(n) => {
                        if n > 0 {
                            target.enqueued.fetch_add(n as u64, Ordering::Relaxed);
                            pushed += n;
                            continue;
                        }
                        // Ring full: wait out the backpressure budget in
                        // short slices so a shard crash mid-wait is seen.
                        match deadline {
                            Some(d) if Instant::now() < d => {
                                std::thread::sleep(Duration::from_micros(200));
                            }
                            _ => return Ok(pushed),
                        }
                    }
                    Err(PushError::Full) => unreachable!("push_many never reports Full"),
                    Err(PushError::Closed) => {
                        return if pushed == 0 {
                            Err((shard, SubmitError::ShuttingDown))
                        } else {
                            Ok(pushed)
                        };
                    }
                }
            }
        }
    }

    /// Backpressure submit at default admission: blocks while the target
    /// ring is full (up to `timeout`, then sheds). Still fails fast with
    /// [`SubmitError::Down`] when no shard can serve the key — waiting
    /// on a dead shard would stall the producer for the whole backoff.
    pub fn submit_wait(
        &self,
        req: Request,
        timeout: Duration,
    ) -> Result<usize, (usize, SubmitError)> {
        self.submit_inner(req, Admit::default(), Some(timeout))
            .map(|a| a.shard)
    }

    /// Supervision state of `shard`.
    pub fn shard_state(&self, shard: usize) -> ShardState {
        self.shards[shard].state()
    }

    /// Stop `shard`'s worker from consuming (requests keep queueing up to
    /// the ring bound, then shed). Admin/test hook.
    pub fn pause_shard(&self, shard: usize) {
        self.shards[shard].paused.store(true, Ordering::Release);
    }

    /// Resume a paused shard.
    pub fn resume_shard(&self, shard: usize) {
        self.shards[shard].paused.store(false, Ordering::Release);
    }

    /// Ask `shard`'s switchable policy to deploy SCIP at shard-local tick
    /// `deploy_at` (past ticks switch immediately). Applied between
    /// worker batches; quiesce the shard first for a deterministic
    /// boundary. Ignored (counted nowhere) on non-switchable policies.
    pub fn switch_policy_at(&self, shard: usize, deploy_at: Tick) {
        self.shards[shard]
            .ctl
            .lock()
            .unwrap()
            .push(Ctl::SwitchAt(deploy_at));
        self.shards[shard]
            .ctl_pending
            .store(true, Ordering::Release);
    }

    /// Operator reset: clear the shard's restart history, cancel any
    /// pending backoff, and bring a dead shard (Backoff or Storm-Open)
    /// back up immediately with a fresh, empty cache. No-op on a healthy
    /// shard.
    pub fn reset_shard(&self, shard: usize) {
        let _ = self.events_tx.send(SupEvent::Reset { shard });
    }

    /// Validate and apply a new config. Only supervision tunables
    /// ([`RestartConfig`]), snapshot tunables ([`SnapshotConfig`]),
    /// routing ([`RouteConfig`]) and admission ([`AdmitConfig`]) may
    /// change live; an invalid candidate or a changed immutable field is
    /// rejected whole and the daemon keeps the old config — including the
    /// running snapshot cadence ([`DaemonConfigError::ImmutableField`]).
    pub fn reload(&self, candidate: DaemonConfig) -> Result<(), DaemonConfigError> {
        let result = candidate.validate().and_then(|()| {
            let current = self.cfg.lock().unwrap();
            current.reload_compatible(&candidate)
        });
        match result {
            Ok(()) => {
                *self.restart_cfg.lock().unwrap() = candidate.restart;
                *self.snap_cfg.lock().unwrap() = candidate.snap.clone();
                self.route_failover
                    .store(candidate.route.failover, Ordering::Relaxed);
                self.admit_low_pct
                    .store(candidate.admit.low_watermark_pct, Ordering::Relaxed);
                self.admit_normal_pct
                    .store(candidate.admit.normal_watermark_pct, Ordering::Relaxed);
                *self.cfg.lock().unwrap() = candidate;
                self.reloads_applied.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(e) => {
                self.reloads_rejected.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// Ask `shard`'s worker to commit a snapshot epoch at its next batch
    /// boundary, regardless of the cadence. No-op (nothing is written,
    /// `snapshots_written` does not advance) when snapshotting is
    /// disabled or the shard's policy lacks the export seam. Poll
    /// [`ShardSnapshot::snapshots_written`] to observe completion.
    pub fn snapshot_shard(&self, shard: usize) {
        self.shards[shard]
            .ctl
            .lock()
            .unwrap()
            .push(Ctl::SnapshotNow);
        self.shards[shard]
            .ctl_pending
            .store(true, Ordering::Release);
    }

    /// Current config (a copy).
    pub fn config(&self) -> DaemonConfig {
        self.cfg.lock().unwrap().clone()
    }

    /// Point-in-time counters for every shard.
    pub fn stats(&self) -> DaemonStats {
        let shards = self
            .shards
            .iter()
            .map(|s| ShardSnapshot {
                state: s.state(),
                depth: s.ring.len(),
                peak_depth: s.ring.peak_depth(),
                queue_capacity: s.ring.capacity(),
                enqueued: s.enqueued.load(Ordering::Relaxed),
                processed: s.processed.load(Ordering::Relaxed),
                lost: s.lost.load(Ordering::Relaxed),
                shed: s.shed_low.load(Ordering::Relaxed)
                    + s.shed_normal.load(Ordering::Relaxed)
                    + s.shed_high.load(Ordering::Relaxed),
                shed_low: s.shed_low.load(Ordering::Relaxed),
                shed_normal: s.shed_normal.load(Ordering::Relaxed),
                shed_high: s.shed_high.load(Ordering::Relaxed),
                rejected_down: s.rejected_down.load(Ordering::Relaxed),
                rejected_deadline: s.rejected_deadline.load(Ordering::Relaxed),
                faulted_enqueues: s.faulted_enqueues.load(Ordering::Relaxed),
                failover_in: s.failover_in.load(Ordering::Relaxed),
                hits: s.hits.load(Ordering::Relaxed),
                misses: s.misses.load(Ordering::Relaxed),
                hit_bytes: s.hit_bytes.load(Ordering::Relaxed),
                miss_bytes: s.miss_bytes.load(Ordering::Relaxed),
                crashes: s.crashes.load(Ordering::Relaxed),
                restarts: s.restarts.load(Ordering::Relaxed),
                switches: s.switches.load(Ordering::Relaxed),
                dropped_at_shutdown: s.dropped_at_shutdown.load(Ordering::Relaxed),
                resident_objects: s.resident_objects.load(Ordering::Relaxed),
                resident_bytes: s.resident_bytes.load(Ordering::Relaxed),
                snapshots_written: s.snapshots_written.load(Ordering::Relaxed),
                restored_objects: s.restored_objects.load(Ordering::Relaxed),
                restored_bytes: s.restored_bytes.load(Ordering::Relaxed),
                epochs_discarded: s.epochs_discarded.load(Ordering::Relaxed),
            })
            .collect();
        DaemonStats {
            shards,
            reloads_applied: self.reloads_applied.load(Ordering::Relaxed),
            reloads_rejected: self.reloads_rejected.load(Ordering::Relaxed),
        }
    }

    /// Block until `shard` has fully served everything it accepted
    /// (`processed + lost == enqueued`); false on timeout.
    pub fn await_quiesced(&self, shard: usize, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            let s = &self.shards[shard];
            let done = s.processed.load(Ordering::Relaxed) + s.lost.load(Ordering::Relaxed)
                >= s.enqueued.load(Ordering::Relaxed);
            if done && s.ring.is_empty() {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    /// Block until `shard` reaches `state`; false on timeout.
    pub fn await_shard_state(&self, shard: usize, state: ShardState, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.shards[shard].state() != state {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_micros(500));
        }
        true
    }

    /// Graceful drain: stop intake, let every live worker finish all
    /// queued requests, stop the supervisor, join everything, and return
    /// the final stats. Requests still queued on crashed (un-restarted)
    /// shards are counted as `dropped_at_shutdown`, never silently
    /// discarded.
    pub fn shutdown(mut self) -> DaemonStats {
        self.shutting_down.store(true, Ordering::Release);
        // Stop the supervisor first so no restart races the join below.
        let _ = self.events_tx.send(SupEvent::Shutdown);
        if let Some(sup) = self.supervisor.take() {
            let _ = sup.join();
        }
        for shard in self.shards.iter() {
            shard.paused.store(false, Ordering::Release);
            shard.ring.close();
        }
        for slot in self.workers.iter() {
            if let Some(handle) = slot.lock().unwrap().take() {
                let _ = handle.join();
            }
        }
        for shard in self.shards.iter() {
            let left = shard.ring.len() as u64;
            shard.dropped_at_shutdown.store(left, Ordering::Relaxed);
        }
        self.stats()
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        // Best-effort teardown for daemons dropped without `shutdown()`
        // (e.g. a failing test): stop intake, wake everyone, join.
        self.shutting_down.store(true, Ordering::Release);
        let _ = self.events_tx.send(SupEvent::Shutdown);
        if let Some(sup) = self.supervisor.take() {
            let _ = sup.join();
        }
        for shard in self.shards.iter() {
            shard.paused.store(false, Ordering::Release);
            shard.ring.close();
        }
        for slot in self.workers.iter() {
            if let Some(handle) = slot.lock().unwrap().take() {
                let _ = handle.join();
            }
        }
    }
}
