//! Validated daemon configuration with reject-and-keep-old reload.
//!
//! Follows the `tdc::ConfigError` pattern from the resilience layer: every
//! field is validated with a structured error before a config is ever
//! applied, and [`crate::Daemon::reload`] validates the *whole* candidate
//! first — an invalid or live-immutable change is rejected and the daemon
//! keeps serving under the old config, never a half-applied one.

use std::fmt;
use std::path::PathBuf;
use std::time::Duration;

use crate::route::Priority;

/// Structured validation failure for a [`DaemonConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DaemonConfigError {
    /// `shards` must be at least 1.
    ZeroShards,
    /// `total_capacity` must provide at least one byte per shard.
    CapacityBelowShards {
        /// Offending capacity.
        total_capacity: u64,
        /// Configured shard count.
        shards: usize,
    },
    /// `queue_capacity` must be at least 1 (a zero queue can accept
    /// nothing and the daemon would shed every request).
    ZeroQueueCapacity,
    /// `worker_batch` must be at least 1.
    ZeroWorkerBatch,
    /// Restart backoff cap must be at least the base.
    BackoffCapBelowBase {
        /// Configured base delay (ms).
        base_ms: u64,
        /// Configured cap (ms).
        max_ms: u64,
    },
    /// Storm breaker threshold must be at least 1 restart.
    ZeroStormThreshold,
    /// Storm window must be positive.
    ZeroStormWindow,
    /// Snapshotting is enabled (`interval > 0`) but `keep` is 0 — every
    /// epoch would be pruned the moment it commits.
    ZeroSnapKeep,
    /// Snapshotting is enabled but no snapshot directory is configured.
    SnapDirRequired,
    /// An admission watermark is outside `1..=100` percent.
    WatermarkOutOfRange {
        /// Which class's watermark is bad.
        class: &'static str,
        /// Offending percentage.
        pct: u8,
    },
    /// The low watermark exceeds the normal watermark — brownout could
    /// shed `Normal` before `Low`.
    WatermarkInverted {
        /// Configured low watermark (percent).
        low_pct: u8,
        /// Configured normal watermark (percent).
        normal_pct: u8,
    },
    /// A live reload tried to change a field that only a restart can
    /// change (shard count, capacities, policy, seed).
    ImmutableField(&'static str),
}

impl fmt::Display for DaemonConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DaemonConfigError::ZeroShards => write!(f, "shards must be >= 1"),
            DaemonConfigError::CapacityBelowShards {
                total_capacity,
                shards,
            } => write!(
                f,
                "total_capacity {total_capacity} cannot cover {shards} shards \
                 (need >= 1 byte per shard)"
            ),
            DaemonConfigError::ZeroQueueCapacity => {
                write!(f, "queue_capacity must be >= 1")
            }
            DaemonConfigError::ZeroWorkerBatch => write!(f, "worker_batch must be >= 1"),
            DaemonConfigError::BackoffCapBelowBase { base_ms, max_ms } => write!(
                f,
                "restart backoff cap {max_ms} ms is below the base {base_ms} ms"
            ),
            DaemonConfigError::ZeroStormThreshold => {
                write!(f, "storm_threshold must be >= 1 restart")
            }
            DaemonConfigError::ZeroStormWindow => {
                write!(f, "storm_window_ms must be > 0")
            }
            DaemonConfigError::ZeroSnapKeep => {
                write!(
                    f,
                    "snapshot keep must be >= 1 epoch when snapshotting is enabled"
                )
            }
            DaemonConfigError::SnapDirRequired => {
                write!(f, "snapshot dir is required when snapshot interval > 0")
            }
            DaemonConfigError::WatermarkOutOfRange { class, pct } => write!(
                f,
                "admission watermark for class `{class}` must be in 1..=100 percent (got {pct})"
            ),
            DaemonConfigError::WatermarkInverted {
                low_pct,
                normal_pct,
            } => write!(
                f,
                "admission low watermark {low_pct}% exceeds normal watermark {normal_pct}%"
            ),
            DaemonConfigError::ImmutableField(name) => write!(
                f,
                "field `{name}` cannot change on a live reload (restart the daemon)"
            ),
        }
    }
}

impl std::error::Error for DaemonConfigError {}

/// Supervision tunables — the subset of [`DaemonConfig`] a live reload may
/// change (the supervisor re-reads them on every crash event).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestartConfig {
    /// First restart delay; doubles per restart inside the storm window.
    pub backoff_base_ms: u64,
    /// Cap on the exponential backoff delay.
    pub backoff_max_ms: u64,
    /// Restarts within [`RestartConfig::storm_window_ms`] that trip the
    /// breaker: the shard goes Storm-Open and stays down until an
    /// operator [`crate::Daemon::reset_shard`].
    pub storm_threshold: u32,
    /// Sliding window the storm breaker counts restarts over.
    pub storm_window_ms: u64,
}

impl Default for RestartConfig {
    fn default() -> Self {
        RestartConfig {
            backoff_base_ms: 50,
            backoff_max_ms: 2_000,
            storm_threshold: 5,
            storm_window_ms: 10_000,
        }
    }
}

impl RestartConfig {
    /// Backoff delay before restart number `restarts_in_window + 1`:
    /// `base * 2^restarts_in_window`, saturating, capped at the max.
    pub fn backoff_delay(&self, restarts_in_window: u32) -> Duration {
        let factor = 1u64 << restarts_in_window.min(20);
        let ms = self
            .backoff_base_ms
            .saturating_mul(factor)
            .min(self.backoff_max_ms);
        Duration::from_millis(ms)
    }
}

/// Warm-restart snapshot tunables — live-reloadable, like
/// [`RestartConfig`] (workers re-read them between batches).
///
/// Snapshotting is **off by default** (`interval == 0`): a crashed shard
/// restarts cold, exactly the pre-snapshot behavior. Enabling it makes
/// every shard worker export its resident set (and any learned-parameter
/// block the policy offers) into CRC-framed epoch files under
/// [`SnapshotConfig::dir`], and makes replacement workers restore warm
/// from the newest readable epoch before draining their ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotConfig {
    /// Requests a shard processes between snapshot epochs; `0` disables
    /// snapshotting entirely.
    pub interval: u64,
    /// Committed epochs retained per shard (older ones are pruned after
    /// each successful commit). Must be at least 1 when enabled — the
    /// deeper the ladder, the more corruption rungs recovery can descend.
    pub keep: u32,
    /// Directory epoch files live in (`snap-<shard>-<epoch>.bin`).
    /// Required when `interval > 0`.
    pub dir: Option<PathBuf>,
}

impl Default for SnapshotConfig {
    fn default() -> Self {
        SnapshotConfig {
            interval: 0,
            keep: 3,
            dir: None,
        }
    }
}

impl SnapshotConfig {
    /// Whether snapshotting is active.
    pub fn enabled(&self) -> bool {
        self.interval > 0
    }

    /// Validate this block (called from [`DaemonConfig::validate`]).
    pub fn validate(&self) -> Result<(), DaemonConfigError> {
        if self.enabled() {
            if self.keep == 0 {
                return Err(DaemonConfigError::ZeroSnapKeep);
            }
            if self.dir.is_none() {
                return Err(DaemonConfigError::SnapDirRequired);
            }
        }
        Ok(())
    }
}

/// Failover-routing tunables — live-reloadable (the submit path re-reads
/// them on every request).
///
/// Routing is **off by default**: a submit whose primary shard is down
/// fails fast with `Down`, exactly the pre-routing daemon, and the calm
/// serving path is bit-identical either way (the router only diverts when
/// a shard is actually down). Enabling failover makes the submit path
/// walk the key's rendezvous order (`cdn_cache::route_with_failover`) and
/// serve primaries of a dead shard on their live secondary as overlay
/// misses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RouteConfig {
    /// Re-route primaries of a down shard to their rendezvous secondary
    /// instead of rejecting with `Down`.
    pub failover: bool,
}

/// Admission-control tunables — live-reloadable. Watermarks are integer
/// percentages of `queue_capacity` so class depth limits are exact (no
/// float rounding in the admission decision).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmitConfig {
    /// Queue-depth watermark (percent of capacity) above which `Low`
    /// traffic browns out.
    pub low_watermark_pct: u8,
    /// Watermark above which `Normal` traffic browns out. `High` always
    /// rides to the full ring capacity.
    pub normal_watermark_pct: u8,
}

impl Default for AdmitConfig {
    fn default() -> Self {
        AdmitConfig {
            low_watermark_pct: 50,
            normal_watermark_pct: 75,
        }
    }
}

impl AdmitConfig {
    /// Validate this block (called from [`DaemonConfig::validate`]).
    pub fn validate(&self) -> Result<(), DaemonConfigError> {
        for (class, pct) in [
            ("low", self.low_watermark_pct),
            ("normal", self.normal_watermark_pct),
        ] {
            if pct == 0 || pct > 100 {
                return Err(DaemonConfigError::WatermarkOutOfRange { class, pct });
            }
        }
        if self.low_watermark_pct > self.normal_watermark_pct {
            return Err(DaemonConfigError::WatermarkInverted {
                low_pct: self.low_watermark_pct,
                normal_pct: self.normal_watermark_pct,
            });
        }
        Ok(())
    }

    /// Exact depth bound for `class` on a ring of `queue_capacity`:
    /// `capacity · pct / 100` (integer floor), at least 1 so a tiny ring
    /// still admits every class, with `High` always at full capacity.
    pub fn class_limit(&self, class: Priority, queue_capacity: usize) -> usize {
        let pct = match class {
            Priority::Low => self.low_watermark_pct,
            Priority::Normal => self.normal_watermark_pct,
            Priority::High => 100,
        } as usize;
        (queue_capacity * pct / 100).max(1)
    }
}

/// Full daemon configuration. Everything outside the live-reloadable
/// blocks ([`DaemonConfig::restart`], [`DaemonConfig::snap`],
/// [`DaemonConfig::route`], [`DaemonConfig::admit`]) is fixed for the
/// life of the process — shard count and capacity determine where every
/// key lives and how much state each worker owns, so changing them live
/// would silently invalidate the whole cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DaemonConfig {
    /// Number of single-threaded shard workers (key-partitioned via
    /// [`cdn_cache::key_shard`]).
    pub shards: usize,
    /// Total cache bytes, split evenly: each shard manages
    /// `total_capacity / shards` (floor, min 1) — the same split as
    /// `cdn_sim::run_sharded_serial`, so daemon ledgers are comparable
    /// u64-for-u64 against the library reference.
    pub total_capacity: u64,
    /// Per-shard bounded ring depth; arrivals beyond it are shed with
    /// [`crate::SubmitError::Overloaded`].
    pub queue_capacity: usize,
    /// Max requests a worker dequeues per ring lock acquisition.
    pub worker_batch: usize,
    /// Seed forwarded to stochastic policies.
    pub seed: u64,
    /// Supervision tunables (live-reloadable).
    pub restart: RestartConfig,
    /// Warm-restart snapshot tunables (live-reloadable).
    pub snap: SnapshotConfig,
    /// Failover-routing tunables (live-reloadable).
    pub route: RouteConfig,
    /// Admission-control tunables (live-reloadable).
    pub admit: AdmitConfig,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            shards: 4,
            total_capacity: 64 << 20,
            queue_capacity: 4_096,
            worker_batch: 64,
            seed: 42,
            restart: RestartConfig::default(),
            snap: SnapshotConfig::default(),
            route: RouteConfig::default(),
            admit: AdmitConfig::default(),
        }
    }
}

impl DaemonConfig {
    /// Validate every field; an `Err` means the config must not be
    /// applied.
    pub fn validate(&self) -> Result<(), DaemonConfigError> {
        if self.shards == 0 {
            return Err(DaemonConfigError::ZeroShards);
        }
        if self.total_capacity < self.shards as u64 {
            return Err(DaemonConfigError::CapacityBelowShards {
                total_capacity: self.total_capacity,
                shards: self.shards,
            });
        }
        if self.queue_capacity == 0 {
            return Err(DaemonConfigError::ZeroQueueCapacity);
        }
        if self.worker_batch == 0 {
            return Err(DaemonConfigError::ZeroWorkerBatch);
        }
        if self.restart.backoff_max_ms < self.restart.backoff_base_ms {
            return Err(DaemonConfigError::BackoffCapBelowBase {
                base_ms: self.restart.backoff_base_ms,
                max_ms: self.restart.backoff_max_ms,
            });
        }
        if self.restart.storm_threshold == 0 {
            return Err(DaemonConfigError::ZeroStormThreshold);
        }
        if self.restart.storm_window_ms == 0 {
            return Err(DaemonConfigError::ZeroStormWindow);
        }
        self.snap.validate()?;
        self.admit.validate()?;
        Ok(())
    }

    /// Bytes each shard's policy instance manages (floor split, min 1 —
    /// identical to the sharded-replay reference decomposition).
    pub fn per_shard_capacity(&self) -> u64 {
        (self.total_capacity / self.shards as u64).max(1)
    }

    /// Check that `candidate` only changes live-reloadable fields
    /// relative to `self`; names the first immutable field that differs.
    pub fn reload_compatible(&self, candidate: &Self) -> Result<(), DaemonConfigError> {
        if candidate.shards != self.shards {
            return Err(DaemonConfigError::ImmutableField("shards"));
        }
        if candidate.total_capacity != self.total_capacity {
            return Err(DaemonConfigError::ImmutableField("total_capacity"));
        }
        if candidate.queue_capacity != self.queue_capacity {
            return Err(DaemonConfigError::ImmutableField("queue_capacity"));
        }
        if candidate.worker_batch != self.worker_batch {
            return Err(DaemonConfigError::ImmutableField("worker_batch"));
        }
        if candidate.seed != self.seed {
            return Err(DaemonConfigError::ImmutableField("seed"));
        }
        Ok(())
    }

    /// Overlay `CDND_*` environment knobs onto `self` (unset or
    /// unparsable variables keep the current value): `CDND_SHARDS`,
    /// `CDND_CAPACITY_MB`, `CDND_QUEUE_CAP`, `CDND_WORKER_BATCH`,
    /// `CDND_SEED`, `CDND_BACKOFF_BASE_MS`, `CDND_BACKOFF_MAX_MS`,
    /// `CDND_STORM_THRESHOLD`, `CDND_STORM_WINDOW_MS`,
    /// `CDND_SNAP_INTERVAL`, `CDND_SNAP_KEEP`, `CDND_SNAP_DIR` (an empty
    /// string clears the directory), `CDND_ROUTE_FAILOVER` (`1`/`true`
    /// enables, `0`/`false` disables), `CDND_ADMIT_LOW_PCT`,
    /// `CDND_ADMIT_NORMAL_PCT`.
    pub fn overlay_env(mut self) -> Self {
        fn env<T: std::str::FromStr>(key: &str, current: T) -> T {
            std::env::var(key)
                .ok()
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(current)
        }
        self.shards = env("CDND_SHARDS", self.shards);
        if let Ok(mb) = std::env::var("CDND_CAPACITY_MB") {
            if let Ok(mb) = mb.trim().parse::<u64>() {
                self.total_capacity = mb << 20;
            }
        }
        self.queue_capacity = env("CDND_QUEUE_CAP", self.queue_capacity);
        self.worker_batch = env("CDND_WORKER_BATCH", self.worker_batch);
        self.seed = env("CDND_SEED", self.seed);
        self.restart.backoff_base_ms = env("CDND_BACKOFF_BASE_MS", self.restart.backoff_base_ms);
        self.restart.backoff_max_ms = env("CDND_BACKOFF_MAX_MS", self.restart.backoff_max_ms);
        self.restart.storm_threshold = env("CDND_STORM_THRESHOLD", self.restart.storm_threshold);
        self.restart.storm_window_ms = env("CDND_STORM_WINDOW_MS", self.restart.storm_window_ms);
        self.snap.interval = env("CDND_SNAP_INTERVAL", self.snap.interval);
        self.snap.keep = env("CDND_SNAP_KEEP", self.snap.keep);
        if let Ok(dir) = std::env::var("CDND_SNAP_DIR") {
            let dir = dir.trim();
            self.snap.dir = if dir.is_empty() {
                None
            } else {
                Some(PathBuf::from(dir))
            };
        }
        if let Ok(v) = std::env::var("CDND_ROUTE_FAILOVER") {
            match v.trim() {
                "1" | "true" | "on" => self.route.failover = true,
                "0" | "false" | "off" => self.route.failover = false,
                _ => {}
            }
        }
        self.admit.low_watermark_pct = env("CDND_ADMIT_LOW_PCT", self.admit.low_watermark_pct);
        self.admit.normal_watermark_pct =
            env("CDND_ADMIT_NORMAL_PCT", self.admit.normal_watermark_pct);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        DaemonConfig::default().validate().unwrap();
    }

    #[test]
    fn rejects_each_bad_field() {
        let base = DaemonConfig::default();
        let cases: Vec<(DaemonConfig, DaemonConfigError)> = vec![
            (
                DaemonConfig {
                    shards: 0,
                    ..base.clone()
                },
                DaemonConfigError::ZeroShards,
            ),
            (
                DaemonConfig {
                    shards: 8,
                    total_capacity: 4,
                    ..base.clone()
                },
                DaemonConfigError::CapacityBelowShards {
                    total_capacity: 4,
                    shards: 8,
                },
            ),
            (
                DaemonConfig {
                    queue_capacity: 0,
                    ..base.clone()
                },
                DaemonConfigError::ZeroQueueCapacity,
            ),
            (
                DaemonConfig {
                    worker_batch: 0,
                    ..base.clone()
                },
                DaemonConfigError::ZeroWorkerBatch,
            ),
            (
                DaemonConfig {
                    restart: RestartConfig {
                        backoff_base_ms: 100,
                        backoff_max_ms: 10,
                        ..base.restart
                    },
                    ..base.clone()
                },
                DaemonConfigError::BackoffCapBelowBase {
                    base_ms: 100,
                    max_ms: 10,
                },
            ),
            (
                DaemonConfig {
                    restart: RestartConfig {
                        storm_threshold: 0,
                        ..base.restart
                    },
                    ..base.clone()
                },
                DaemonConfigError::ZeroStormThreshold,
            ),
            (
                DaemonConfig {
                    restart: RestartConfig {
                        storm_window_ms: 0,
                        ..base.restart
                    },
                    ..base.clone()
                },
                DaemonConfigError::ZeroStormWindow,
            ),
        ];
        for (cfg, want) in cases {
            assert_eq!(cfg.validate(), Err(want));
        }
    }

    #[test]
    fn snapshot_config_validates() {
        // Disabled: anything goes.
        SnapshotConfig::default().validate().unwrap();
        SnapshotConfig {
            interval: 0,
            keep: 0,
            dir: None,
        }
        .validate()
        .unwrap();
        // Enabled: needs keep >= 1 and a directory.
        assert_eq!(
            SnapshotConfig {
                interval: 100,
                keep: 0,
                dir: Some(PathBuf::from("/tmp/x")),
            }
            .validate(),
            Err(DaemonConfigError::ZeroSnapKeep)
        );
        assert_eq!(
            SnapshotConfig {
                interval: 100,
                keep: 3,
                dir: None,
            }
            .validate(),
            Err(DaemonConfigError::SnapDirRequired)
        );
        SnapshotConfig {
            interval: 100,
            keep: 3,
            dir: Some(PathBuf::from("/tmp/x")),
        }
        .validate()
        .unwrap();
        // And the daemon-level validate covers the block.
        let cfg = DaemonConfig {
            snap: SnapshotConfig {
                interval: 5,
                keep: 1,
                dir: None,
            },
            ..DaemonConfig::default()
        };
        assert_eq!(cfg.validate(), Err(DaemonConfigError::SnapDirRequired));
    }

    #[test]
    fn snapshot_fields_are_live_reloadable() {
        let a = DaemonConfig::default();
        let mut b = a.clone();
        b.snap = SnapshotConfig {
            interval: 500,
            keep: 2,
            dir: Some(PathBuf::from("/tmp/snaps")),
        };
        a.reload_compatible(&b).unwrap();
    }

    #[test]
    fn admit_config_validates_and_bounds_classes() {
        AdmitConfig::default().validate().unwrap();
        assert_eq!(
            AdmitConfig {
                low_watermark_pct: 0,
                ..AdmitConfig::default()
            }
            .validate(),
            Err(DaemonConfigError::WatermarkOutOfRange {
                class: "low",
                pct: 0
            })
        );
        assert_eq!(
            AdmitConfig {
                normal_watermark_pct: 101,
                ..AdmitConfig::default()
            }
            .validate(),
            Err(DaemonConfigError::WatermarkOutOfRange {
                class: "normal",
                pct: 101
            })
        );
        assert_eq!(
            AdmitConfig {
                low_watermark_pct: 90,
                normal_watermark_pct: 60,
            }
            .validate(),
            Err(DaemonConfigError::WatermarkInverted {
                low_pct: 90,
                normal_pct: 60
            })
        );
        // Exact integer limits, High always at capacity, floor ≥ 1.
        let a = AdmitConfig::default();
        assert_eq!(a.class_limit(Priority::Low, 4_096), 2_048);
        assert_eq!(a.class_limit(Priority::Normal, 4_096), 3_072);
        assert_eq!(a.class_limit(Priority::High, 4_096), 4_096);
        assert_eq!(a.class_limit(Priority::Low, 1), 1);
        // And the daemon-level validate covers the block.
        let cfg = DaemonConfig {
            admit: AdmitConfig {
                low_watermark_pct: 0,
                ..AdmitConfig::default()
            },
            ..DaemonConfig::default()
        };
        assert!(matches!(
            cfg.validate(),
            Err(DaemonConfigError::WatermarkOutOfRange { .. })
        ));
    }

    #[test]
    fn route_and_admit_are_live_reloadable() {
        let a = DaemonConfig::default();
        let mut b = a.clone();
        b.route.failover = true;
        b.admit.low_watermark_pct = 25;
        a.reload_compatible(&b).unwrap();
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let r = RestartConfig {
            backoff_base_ms: 10,
            backoff_max_ms: 50,
            ..RestartConfig::default()
        };
        assert_eq!(r.backoff_delay(0), Duration::from_millis(10));
        assert_eq!(r.backoff_delay(1), Duration::from_millis(20));
        assert_eq!(r.backoff_delay(2), Duration::from_millis(40));
        assert_eq!(r.backoff_delay(3), Duration::from_millis(50));
        assert_eq!(r.backoff_delay(63), Duration::from_millis(50));
    }

    #[test]
    fn reload_compat_names_first_immutable_change() {
        let a = DaemonConfig::default();
        let mut b = a.clone();
        b.restart.backoff_base_ms = 1; // reloadable
        a.reload_compatible(&b).unwrap();
        b.shards += 1;
        assert_eq!(
            a.reload_compatible(&b),
            Err(DaemonConfigError::ImmutableField("shards"))
        );
    }

    #[test]
    fn per_shard_capacity_matches_reference_split() {
        let cfg = DaemonConfig {
            shards: 3,
            total_capacity: 10,
            ..DaemonConfig::default()
        };
        assert_eq!(cfg.per_shard_capacity(), 3); // floor(10/3), as in run_sharded_serial
    }
}
