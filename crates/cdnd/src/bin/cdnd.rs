//! The daemon binary: generate (or size from) a CDN-T workload, serve it
//! through a supervised sharded daemon, drain, and print the per-shard
//! stats snapshot. This is the in-process serving shape — there is no
//! network listener; the deterministic client harness plays the role of
//! the frontend, which keeps every run reproducible.
//!
//! Knobs (see the README knob table): `CDND_SHARDS`, `CDND_CAPACITY_MB`,
//! `CDND_QUEUE_CAP`, `CDND_WORKER_BATCH`, `CDND_SEED`,
//! `CDND_BACKOFF_BASE_MS`, `CDND_BACKOFF_MAX_MS`, `CDND_STORM_THRESHOLD`,
//! `CDND_STORM_WINDOW_MS`, `CDND_SNAP_INTERVAL`, `CDND_SNAP_KEEP`,
//! `CDND_SNAP_DIR`, `CDND_ROUTE_FAILOVER`, `CDND_ADMIT_LOW_PCT`,
//! `CDND_ADMIT_NORMAL_PCT`, plus `CDND_REQUESTS` (default
//! `REPRO_REQUESTS` or 200k) and `CDND_POLICY` (a `PolicyKind` label,
//! default `SCIP`).
//! With `CDND_SNAP_INTERVAL > 0` and a `CDND_SNAP_DIR`, each shard
//! commits snapshot epochs at that cadence (plus one final epoch at
//! drain) and a subsequent run over the same directory starts warm.

use std::time::{Duration, Instant};

use cdn_sim::PolicyKind;
use cdn_trace::{TraceGenerator, TraceStats, Workload};
use cdnd::{feed, Daemon, DaemonConfig, FeedMode, ShardPlan};

fn env_u64(key: &str, fallback: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(fallback)
}

fn policy_from_env() -> PolicyKind {
    let name = std::env::var("CDND_POLICY").unwrap_or_else(|_| "SCIP".to_string());
    match PolicyKind::ALL
        .iter()
        .find(|k| k.label().eq_ignore_ascii_case(&name))
    {
        Some(&kind) => kind,
        None => {
            eprintln!("error: unknown CDND_POLICY `{name}`; known labels:");
            for kind in PolicyKind::ALL {
                eprintln!("  {}", kind.label());
            }
            std::process::exit(2);
        }
    }
}

fn main() {
    let requests = env_u64("CDND_REQUESTS", env_u64("REPRO_REQUESTS", 200_000));
    let kind = policy_from_env();
    let mut cfg = DaemonConfig::default().overlay_env();
    let seed = cfg.seed;
    eprintln!("generating {requests} CDN-T requests (seed {seed})...");
    let trace = TraceGenerator::generate(Workload::CdnT.profile().config(requests, seed));
    let stats = TraceStats::compute(&trace);
    if std::env::var("CDND_CAPACITY_MB").is_err() {
        cfg.total_capacity =
            stats.cache_bytes_for_fraction(Workload::CdnT.paper_cache_fraction(64.0));
    }
    let plan = ShardPlan::build(&trace, cfg.shards, cfg.seed);
    eprintln!(
        "cdnd: {} shards x {:.1} MiB, queue {}, batch {}, policy {}",
        cfg.shards,
        cfg.per_shard_capacity() as f64 / (1 << 20) as f64,
        cfg.queue_capacity,
        cfg.worker_batch,
        kind.label()
    );

    let daemon = match Daemon::spawn(cfg.clone(), plan.factory(kind)) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: invalid daemon config: {e}");
            std::process::exit(2);
        }
    };
    let start = Instant::now();
    let report = feed(
        &daemon,
        &trace,
        FeedMode::FailFast {
            push_timeout: Duration::from_secs(30),
        },
    );
    let final_stats = daemon.shutdown();
    let wall = start.elapsed().as_secs_f64();

    println!(
        "{:<5} {:>9} {:>9} {:>6} {:>5} {:>8} {:>6} {:>6} {:>8} {:>8} {:>7} {:>7} {:>10} {:>5} {:>8} {:>9} {:>8}",
        "shard",
        "enqueued",
        "processed",
        "shed",
        "down",
        "deadline",
        "fault",
        "lost",
        "failover",
        "hits",
        "misses",
        "peak_q",
        "resident",
        "snaps",
        "restored",
        "discarded",
        "state"
    );
    for (i, s) in final_stats.shards.iter().enumerate() {
        println!(
            "{:<5} {:>9} {:>9} {:>6} {:>5} {:>8} {:>6} {:>6} {:>8} {:>8} {:>7} {:>7} {:>10} {:>5} {:>8} {:>9} {:>8?}",
            i,
            s.enqueued,
            s.processed,
            s.shed,
            s.rejected_down,
            s.rejected_deadline,
            s.faulted_enqueues,
            s.lost,
            s.failover_in,
            s.hits,
            s.misses,
            s.peak_depth,
            s.resident_objects,
            s.snapshots_written,
            s.restored_objects,
            s.epochs_discarded,
            s.state
        );
    }
    let served = final_stats.total_processed();
    let hits: u64 = final_stats.shards.iter().map(|s| s.hits).sum();
    println!(
        "served {served} of {} in {wall:.2}s ({:.2} Mreq/s), miss ratio {:.4}, \
         availability {:.4}",
        trace.len(),
        served as f64 / wall.max(1e-9) / 1e6,
        1.0 - hits as f64 / served.max(1) as f64,
        report.overall_availability()
    );
}
