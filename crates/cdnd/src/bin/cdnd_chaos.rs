//! Daemon chaos harness: replay a `cdn-trace` workload through a 4-shard
//! `cdnd` daemon under a calm schedule and (with `--features
//! fault-injection`) a deterministic kill schedule, then gate on
//! availability and ledger exactness.
//!
//! The kill schedule is deterministic by construction, not by timing
//! luck: the restart backoff is set far beyond the run length, so a
//! killed shard stays down for an exactly-known slice of the trace and
//! is revived with an explicit operator `reset_shard` — the outage
//! windows contain the same requests on every run with the same
//! trace/seed. The min-share shard is killed (twice) so the availability
//! floor has maximum headroom.
//!
//! Gates (nonzero exit on violation):
//! - calm: 100 % availability, zero outage windows, all-shard ledgers
//!   bit-identical to `run_sharded_serial`, client/daemon counters match.
//! - kill: both injected kills fired, surviving-shard ledgers
//!   bit-identical to the serial reference, availability 100 % outside
//!   the outage windows and ≥ 75 % inside them.
//!
//! Knobs: `CDND_CHAOS_REQUESTS` (default `REPRO_REQUESTS` or 200k),
//! `CDND_CHAOS_SEED` (default `REPRO_SEED`). Results land in
//! `results/cdnd_chaos.{md,json,tsv}`.

use std::fmt::Write as _;
use std::fs;
use std::time::Duration;

use cdn_sim::PolicyKind;
use cdn_trace::{TraceGenerator, TraceStats, Workload};
use cdnd::{feed, ledger_diff, Daemon, DaemonConfig, FeedMode, RestartConfig, ShardPlan};

const SHARDS: usize = 4;
const POLICY: PolicyKind = PolicyKind::Scip;

fn env_u64(key: &str, fallback: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(fallback)
}

fn calm_mode() -> FeedMode {
    FeedMode::FailFast {
        push_timeout: Duration::from_secs(30),
    }
}

/// One schedule's outcome row.
struct Row {
    schedule: &'static str,
    availability: f64,
    inside_availability: f64,
    outside_availability: f64,
    outage_windows: u64,
    kills: u64,
    restarts: u64,
    lost: u64,
    exact_shards: usize,
    compared_shards: usize,
}

struct Gate {
    failures: Vec<String>,
}

impl Gate {
    fn check(&mut self, ok: bool, what: String) {
        if !ok {
            self.failures.push(what);
        }
    }
}

#[cfg(feature = "fault-injection")]
fn merge_reports(reports: &[cdnd::FeedReport]) -> cdnd::FeedReport {
    let mut merged = reports[0].clone();
    for r in &reports[1..] {
        for (a, b) in merged.per_shard.iter_mut().zip(&r.per_shard) {
            a.submitted += b.submitted;
            a.accepted += b.accepted;
            a.shed += b.shed;
            a.rejected_down += b.rejected_down;
            a.faulted += b.faulted;
            a.shutting_down += b.shutting_down;
        }
        merged.inside_total += r.inside_total;
        merged.inside_accepted += r.inside_accepted;
        merged.outside_total += r.outside_total;
        merged.outside_accepted += r.outside_accepted;
        merged.outage_windows += r.outage_windows;
    }
    merged
}

/// Calm schedule: the whole trace through a healthy daemon. Everything
/// must be accepted and every shard ledger must equal the reference.
fn run_calm(
    trace: &[cdn_cache::Request],
    plan: &ShardPlan,
    cfg: &DaemonConfig,
    gate: &mut Gate,
) -> Row {
    let daemon = Daemon::spawn(cfg.clone(), plan.factory(POLICY)).expect("spawn calm daemon");
    let report = feed(&daemon, trace, calm_mode());
    for shard in 0..SHARDS {
        assert!(
            daemon.await_quiesced(shard, Duration::from_secs(120)),
            "calm: shard {shard} never quiesced"
        );
    }
    let stats = daemon.shutdown();
    if let Err(e) = report.check_against(&stats.shards, true) {
        gate.check(false, format!("calm: counter reconciliation: {e}"));
    }
    let reference = plan.reference(POLICY, cfg.total_capacity);
    let mut exact = 0usize;
    for (shard, (snap, m)) in stats.shards.iter().zip(&reference.per_shard).enumerate() {
        match ledger_diff(shard, snap, m) {
            None => exact += 1,
            Some(diff) => gate.check(false, format!("calm: {diff}")),
        }
    }
    gate.check(
        report.overall_availability() == 1.0,
        format!(
            "calm: availability {:.4} < 1.0",
            report.overall_availability()
        ),
    );
    gate.check(
        report.outage_windows == 0,
        format!("calm: {} outage windows, expected 0", report.outage_windows),
    );
    Row {
        schedule: "calm",
        availability: report.overall_availability(),
        inside_availability: report.inside_availability(),
        outside_availability: report.outside_availability(),
        outage_windows: report.outage_windows,
        kills: 0,
        restarts: stats.total_restarts(),
        lost: stats.total_lost(),
        exact_shards: exact,
        compared_shards: SHARDS,
    }
}

/// Kill schedule: two deterministic outages of the min-share shard.
#[cfg(feature = "fault-injection")]
fn run_kill(
    trace: &[cdn_cache::Request],
    plan: &ShardPlan,
    cfg: &DaemonConfig,
    gate: &mut Gate,
) -> Row {
    use cdn_cache::fault::{self, FaultAction, FaultRule};
    use cdnd::{worker_fault_key, ShardState, FP_SHARD_WORKER};

    // Backoff far beyond the run: a killed shard stays down until the
    // explicit reset below, so each outage covers an exact trace slice.
    let mut cfg = cfg.clone();
    cfg.restart = RestartConfig {
        backoff_base_ms: 600_000,
        backoff_max_ms: 600_000,
        storm_threshold: 100,
        storm_window_ms: 600_000,
    };
    let n = trace.len();
    // Slices: calm warmup | outage 1 | recovery | outage 2 | calm tail.
    let cuts = [n / 5, 2 * n / 5, 3 * n / 5, 4 * n / 5];
    // Kill the shard with the smallest request share *within the outage
    // slices* — that share is exactly the availability loss while it is
    // down, so the ≥75 % floor gets its maximum (and deterministic)
    // headroom.
    let victim = (0..SHARDS)
        .min_by_key(|&shard| {
            trace[cuts[0]..cuts[1]]
                .iter()
                .chain(&trace[cuts[2]..cuts[3]])
                .filter(|r| cdn_cache::key_shard(r.id.0, SHARDS) == shard)
                .count()
        })
        .unwrap();

    fault::clear();
    let daemon = Daemon::spawn(cfg.clone(), plan.factory(POLICY)).expect("spawn kill daemon");
    let quiesce_all = |daemon: &Daemon| {
        for shard in 0..SHARDS {
            if shard != victim {
                assert!(
                    daemon.await_quiesced(shard, Duration::from_secs(120)),
                    "kill: shard {shard} never quiesced"
                );
            }
        }
    };
    let arm_next_victim_tick = |daemon: &Daemon| {
        let s = &daemon.stats().shards[victim];
        fault::arm(
            FP_SHARD_WORKER,
            FaultRule::OnKeys(
                vec![worker_fault_key(victim, s.processed + s.lost)],
                FaultAction::Panic("cdnd_chaos kill".into()),
            ),
        );
    };

    let mut reports = Vec::new();
    let mut kills = 0u64;
    // Warmup, fully calm.
    reports.push(feed(&daemon, &trace[..cuts[0]], calm_mode()));
    assert!(daemon.await_quiesced(victim, Duration::from_secs(120)));
    quiesce_all(&daemon);

    for (start, end) in [(cuts[0], cuts[1]), (cuts[2], cuts[3])] {
        // Kill the victim on its next request, then feed the outage
        // slice: the crash request is accepted-then-lost, every later
        // victim-bound request in the slice is rejected ShardDown.
        arm_next_victim_tick(&daemon);
        reports.push(feed(&daemon, &trace[start..end], calm_mode()));
        assert!(
            daemon.await_shard_state(victim, ShardState::Backoff, Duration::from_secs(30)),
            "victim should be down at the end of the outage slice"
        );
        // `arm` resets the site's fired counter, so bank this outage's
        // count before the next arm.
        kills += fault::fired(FP_SHARD_WORKER);
        // Operator revival, then a recovery slice that closes the window.
        daemon.reset_shard(victim);
        assert!(
            daemon.await_shard_state(victim, ShardState::Closed, Duration::from_secs(30)),
            "reset did not revive the victim"
        );
        let tail = if end == cuts[1] { cuts[2] } else { n };
        reports.push(feed(&daemon, &trace[end..tail], calm_mode()));
        assert!(daemon.await_quiesced(victim, Duration::from_secs(120)));
        quiesce_all(&daemon);
    }
    let stats = daemon.shutdown();
    fault::clear();

    let report = merge_reports(&reports);
    gate.check(kills == 2, format!("kill: {kills} kills fired, expected 2"));
    gate.check(
        report.outage_windows == 2,
        format!("kill: {} outage windows, expected 2", report.outage_windows),
    );
    gate.check(
        report.outside_availability() == 1.0,
        format!(
            "kill: availability outside outage windows {:.4} < 1.0",
            report.outside_availability()
        ),
    );
    gate.check(
        report.inside_availability() >= 0.75,
        format!(
            "kill: availability inside outage windows {:.4} < 0.75",
            report.inside_availability()
        ),
    );
    if let Err(e) = report.check_against(&stats.shards, true) {
        gate.check(false, format!("kill: counter reconciliation: {e}"));
    }
    // Survivors must be bit-identical to the serial reference; the victim
    // lost exactly the two panicked requests plus the rejected ones.
    let reference = plan.reference(POLICY, cfg.total_capacity);
    let mut exact = 0usize;
    for shard in 0..SHARDS {
        if shard == victim {
            continue;
        }
        match ledger_diff(shard, &stats.shards[shard], &reference.per_shard[shard]) {
            None => exact += 1,
            Some(diff) => gate.check(false, format!("kill: surviving {diff}")),
        }
    }
    gate.check(
        stats.shards[victim].lost == 2,
        format!(
            "kill: victim lost {}, expected 2",
            stats.shards[victim].lost
        ),
    );
    Row {
        schedule: "kill-2x",
        availability: report.overall_availability(),
        inside_availability: report.inside_availability(),
        outside_availability: report.outside_availability(),
        outage_windows: report.outage_windows,
        kills,
        restarts: stats.total_restarts(),
        lost: stats.total_lost(),
        exact_shards: exact,
        compared_shards: SHARDS - 1,
    }
}

fn main() {
    let requests = env_u64("CDND_CHAOS_REQUESTS", env_u64("REPRO_REQUESTS", 200_000));
    let seed = env_u64("CDND_CHAOS_SEED", cdn_sim::default_seed());
    eprintln!("generating {requests} CDN-T requests (seed {seed})...");
    let trace = TraceGenerator::generate(Workload::CdnT.profile().config(requests, seed));
    let stats = TraceStats::compute(&trace);
    let cache_bytes = stats.cache_bytes_for_fraction(Workload::CdnT.paper_cache_fraction(64.0));
    let cfg = DaemonConfig {
        shards: SHARDS,
        total_capacity: cache_bytes,
        queue_capacity: 4_096,
        worker_batch: 64,
        seed,
        restart: RestartConfig::default(),
    }
    .overlay_env();
    let plan = ShardPlan::build(&trace, cfg.shards, cfg.seed);
    eprintln!(
        "daemon: {} shards x {:.1} MiB, queue {}, policy {}",
        cfg.shards,
        cfg.per_shard_capacity() as f64 / (1 << 20) as f64,
        cfg.queue_capacity,
        POLICY.label()
    );

    let mut gate = Gate {
        failures: Vec::new(),
    };
    let rows: Vec<Row> = {
        #[cfg(feature = "fault-injection")]
        {
            vec![
                run_calm(&trace, &plan, &cfg, &mut gate),
                run_kill(&trace, &plan, &cfg, &mut gate),
            ]
        }
        #[cfg(not(feature = "fault-injection"))]
        {
            eprintln!(
                "note: built without --features fault-injection; kill schedule \
                 skipped (calm gates only)"
            );
            vec![run_calm(&trace, &plan, &cfg, &mut gate)]
        }
    };

    // Human table.
    println!(
        "{:<8} {:>6} {:>8} {:>9} {:>8} {:>6} {:>9} {:>5} {:>6}",
        "schedule", "avail", "inside", "outside", "windows", "kills", "restarts", "lost", "exact"
    );
    for r in &rows {
        println!(
            "{:<8} {:>6.4} {:>8.4} {:>9.4} {:>8} {:>6} {:>9} {:>5} {:>3}/{}",
            r.schedule,
            r.availability,
            r.inside_availability,
            r.outside_availability,
            r.outage_windows,
            r.kills,
            r.restarts,
            r.lost,
            r.exact_shards,
            r.compared_shards
        );
    }

    // Persisted artifacts: markdown, TSV and JSON under results/.
    let dir = cdn_sim::table::results_dir();
    cdn_sim::or_die(fs::create_dir_all(&dir), "creating results dir");
    let mut md = String::from(
        "# cdnd chaos schedules\n\n\
         | schedule | availability | inside | outside | windows | kills | restarts | lost | exact shards |\n\
         |---|---|---|---|---|---|---|---|---|\n",
    );
    let mut tsv = String::from(
        "schedule\tavailability\tinside\toutside\twindows\tkills\trestarts\tlost\texact\tcompared\n",
    );
    let mut json = format!(
        "{{\n  \"schema\": \"cdnd_chaos_v1\",\n  \"requests\": {requests},\n  \
         \"seed\": {seed},\n  \"shards\": {SHARDS},\n  \"policy\": \"{}\",\n  \
         \"cache_bytes\": {cache_bytes},\n  \"schedules\": [\n",
        POLICY.label()
    );
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            md,
            "| {} | {:.4} | {:.4} | {:.4} | {} | {} | {} | {} | {}/{} |",
            r.schedule,
            r.availability,
            r.inside_availability,
            r.outside_availability,
            r.outage_windows,
            r.kills,
            r.restarts,
            r.lost,
            r.exact_shards,
            r.compared_shards
        );
        let _ = writeln!(
            tsv,
            "{}\t{:.6}\t{:.6}\t{:.6}\t{}\t{}\t{}\t{}\t{}\t{}",
            r.schedule,
            r.availability,
            r.inside_availability,
            r.outside_availability,
            r.outage_windows,
            r.kills,
            r.restarts,
            r.lost,
            r.exact_shards,
            r.compared_shards
        );
        let _ = writeln!(
            json,
            "    {{\"schedule\": \"{}\", \"availability\": {:.6}, \
             \"inside_availability\": {:.6}, \"outside_availability\": {:.6}, \
             \"outage_windows\": {}, \"kills\": {}, \"restarts\": {}, \
             \"lost\": {}, \"exact_shards\": {}, \"compared_shards\": {}}}{}",
            r.schedule,
            r.availability,
            r.inside_availability,
            r.outside_availability,
            r.outage_windows,
            r.kills,
            r.restarts,
            r.lost,
            r.exact_shards,
            r.compared_shards,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(
        json,
        "  ],\n  \"gate_failures\": {},\n  \"fault_injection\": {}\n}}",
        gate.failures.len(),
        cfg!(feature = "fault-injection")
    );
    cdn_sim::or_die(fs::write(dir.join("cdnd_chaos.md"), md), "writing markdown");
    cdn_sim::or_die(fs::write(dir.join("cdnd_chaos.tsv"), tsv), "writing TSV");
    cdn_sim::or_die(fs::write(dir.join("cdnd_chaos.json"), json), "writing JSON");
    eprintln!("saved results/cdnd_chaos.{{md,tsv,json}}");

    if !gate.failures.is_empty() {
        for f in &gate.failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    eprintln!("all cdnd chaos gates passed");
}
