//! Daemon chaos harness: replay a `cdn-trace` workload through a 4-shard
//! `cdnd` daemon under a calm schedule and (with `--features
//! fault-injection`) a deterministic kill schedule, then gate on
//! availability and ledger exactness.
//!
//! The kill schedule is deterministic by construction, not by timing
//! luck: the restart backoff is set far beyond the run length, so a
//! killed shard stays down for an exactly-known slice of the trace and
//! is revived with an explicit operator `reset_shard` — the outage
//! windows contain the same requests on every run with the same
//! trace/seed. The min-share shard is killed (twice) so the availability
//! floor has maximum headroom.
//!
//! Gates (nonzero exit on violation):
//! - calm: 100 % availability, zero outage windows, all-shard ledgers
//!   bit-identical to `run_sharded_serial`, client/daemon counters match.
//! - calm-snap: same trace with periodic snapshot epochs enabled — every
//!   ledger must still be bit-identical to the serial reference, proving
//!   the read-only export seam never perturbs policy state (snapshots-on
//!   equals snapshots-off, u64 for u64).
//! - kill: both injected kills fired, surviving-shard ledgers
//!   bit-identical to the serial reference, availability 100 % outside
//!   the outage windows and ≥ 75 % inside them.
//! - warm-kill: snapshot forced immediately before the kill; the revived
//!   shard must restore ≥ 90 % of its pre-crash resident bytes from the
//!   epoch file while the survivors stay bit-identical to the reference.
//! - corrupt: three restore rungs — torn-tail epoch (via the
//!   `cdnd.snap_write` failpoint), a bit-flipped committed epoch, and a
//!   missing-epoch directory — each must degrade to an older epoch or a
//!   cold start with zero panics beyond the intentional kills.
//! - calm-routed: the calm trace with failover routing *enabled*: every
//!   ledger must stay bit-identical to the serial reference with zero
//!   failover traffic — routing-on equals routing-off when nothing is
//!   down.
//! - flash-kill: a flash-crowd trace (drift event over the middle half)
//!   with failover routing enabled and both kills landing *inside* the
//!   crowd window. Availability inside the outage windows must be 100 %
//!   of admitted requests (victim keys answered as overlay misses on
//!   their rendezvous secondary, zero `Down` rejections), every shard —
//!   survivors *and* overlay receivers — must be u64-exact against the
//!   routing-aware serial reference (`run_routed_serial`), and every
//!   request must reconcile to exactly one client/daemon counter cause.
//!
//! Knobs: `CDND_CHAOS_REQUESTS` (default `REPRO_REQUESTS` or 200k),
//! `CDND_CHAOS_SEED` (default `REPRO_SEED`). Results land in
//! `results/cdnd_chaos.{md,json,tsv}` (schema `cdnd_chaos_v3`).

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;
use std::time::Duration;

use cdn_sim::PolicyKind;
use cdn_trace::{TraceGenerator, TraceStats, Workload};
use cdnd::{
    feed, ledger_diff, AdmitConfig, Daemon, DaemonConfig, FeedMode, RestartConfig, RouteConfig,
    ShardPlan, SnapshotConfig,
};

const SHARDS: usize = 4;
const POLICY: PolicyKind = PolicyKind::Scip;

fn env_u64(key: &str, fallback: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(fallback)
}

fn calm_mode() -> FeedMode {
    FeedMode::FailFast {
        push_timeout: Duration::from_secs(30),
    }
}

/// One schedule's outcome row.
struct Row {
    schedule: &'static str,
    availability: f64,
    inside_availability: f64,
    outside_availability: f64,
    outage_windows: u64,
    kills: u64,
    restarts: u64,
    lost: u64,
    failover: u64,
    exact_shards: usize,
    compared_shards: usize,
    snapshots: u64,
    restored_objects: u64,
    restored_bytes: u64,
    epochs_discarded: u64,
}

/// A scratch snapshot directory under the OS temp dir, wiped on entry.
fn fresh_snap_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cdnd-chaos-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Block until the shard has committed more than `before` snapshot epochs.
#[cfg(feature = "fault-injection")]
fn force_snapshot(daemon: &Daemon, shard: usize) {
    use std::time::Instant;
    let before = daemon.stats().shards[shard].snapshots_written;
    daemon.snapshot_shard(shard);
    let deadline = Instant::now() + Duration::from_secs(30);
    while daemon.stats().shards[shard].snapshots_written == before {
        assert!(
            Instant::now() < deadline,
            "shard {shard} never committed the forced snapshot"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

struct Gate {
    failures: Vec<String>,
}

impl Gate {
    fn check(&mut self, ok: bool, what: String) {
        if !ok {
            self.failures.push(what);
        }
    }
}

#[cfg(feature = "fault-injection")]
fn merge_reports(reports: &[cdnd::FeedReport]) -> cdnd::FeedReport {
    let mut merged = reports[0].clone();
    for r in &reports[1..] {
        for (a, b) in merged.per_shard.iter_mut().zip(&r.per_shard) {
            a.submitted += b.submitted;
            a.accepted += b.accepted;
            a.failover_accepted += b.failover_accepted;
            a.shed += b.shed;
            a.rejected_down += b.rejected_down;
            a.deadline += b.deadline;
            a.faulted += b.faulted;
            a.shutting_down += b.shutting_down;
        }
        merged.inside_total += r.inside_total;
        merged.inside_accepted += r.inside_accepted;
        merged.outside_total += r.outside_total;
        merged.outside_accepted += r.outside_accepted;
        merged.outage_windows += r.outage_windows;
        merged.failover_accepted += r.failover_accepted;
    }
    merged
}

/// Calm schedule: the whole trace through a healthy daemon. Everything
/// must be accepted and every shard ledger must equal the reference.
fn run_calm(
    trace: &[cdn_cache::Request],
    plan: &ShardPlan,
    cfg: &DaemonConfig,
    gate: &mut Gate,
) -> Row {
    let daemon = Daemon::spawn(cfg.clone(), plan.factory(POLICY)).expect("spawn calm daemon");
    let report = feed(&daemon, trace, calm_mode());
    for shard in 0..SHARDS {
        assert!(
            daemon.await_quiesced(shard, Duration::from_secs(120)),
            "calm: shard {shard} never quiesced"
        );
    }
    let stats = daemon.shutdown();
    if let Err(e) = report.check_against(&stats.shards, true) {
        gate.check(false, format!("calm: counter reconciliation: {e}"));
    }
    let reference = plan.reference(POLICY, cfg.total_capacity);
    let mut exact = 0usize;
    for (shard, (snap, m)) in stats.shards.iter().zip(&reference.per_shard).enumerate() {
        match ledger_diff(shard, snap, m) {
            None => exact += 1,
            Some(diff) => gate.check(false, format!("calm: {diff}")),
        }
    }
    gate.check(
        report.overall_availability() == 1.0,
        format!(
            "calm: availability {:.4} < 1.0",
            report.overall_availability()
        ),
    );
    gate.check(
        report.outage_windows == 0,
        format!("calm: {} outage windows, expected 0", report.outage_windows),
    );
    Row {
        schedule: "calm",
        availability: report.overall_availability(),
        inside_availability: report.inside_availability(),
        outside_availability: report.outside_availability(),
        outage_windows: report.outage_windows,
        kills: 0,
        restarts: stats.total_restarts(),
        lost: stats.total_lost(),
        failover: stats.total_failover(),
        exact_shards: exact,
        compared_shards: SHARDS,
        snapshots: 0,
        restored_objects: 0,
        restored_bytes: 0,
        epochs_discarded: 0,
    }
}

/// Calm schedule with failover routing *enabled*: routing is consulted
/// on every submit, but with every shard healthy it must be a pure
/// pass-through — zero failover traffic, zero outage windows, and every
/// shard ledger bit-identical to the serial reference. This is the
/// chaos-scale proof of the calm-path bit-identity invariant.
fn run_calm_routed(
    trace: &[cdn_cache::Request],
    plan: &ShardPlan,
    cfg: &DaemonConfig,
    gate: &mut Gate,
) -> Row {
    let mut cfg = cfg.clone();
    cfg.route = RouteConfig { failover: true };
    let daemon =
        Daemon::spawn(cfg.clone(), plan.factory(POLICY)).expect("spawn calm-routed daemon");
    let report = feed(&daemon, trace, calm_mode());
    for shard in 0..SHARDS {
        assert!(
            daemon.await_quiesced(shard, Duration::from_secs(120)),
            "calm-routed: shard {shard} never quiesced"
        );
    }
    let stats = daemon.shutdown();
    if let Err(e) = report.check_against(&stats.shards, true) {
        gate.check(false, format!("calm-routed: counter reconciliation: {e}"));
    }
    let reference = plan.reference(POLICY, cfg.total_capacity);
    let mut exact = 0usize;
    for (shard, (snap, m)) in stats.shards.iter().zip(&reference.per_shard).enumerate() {
        match ledger_diff(shard, snap, m) {
            None => exact += 1,
            Some(diff) => gate.check(false, format!("calm-routed: {diff}")),
        }
    }
    gate.check(
        stats.total_failover() == 0,
        format!(
            "calm-routed: {} failover arrivals on a healthy daemon, expected 0",
            stats.total_failover()
        ),
    );
    gate.check(
        report.overall_availability() == 1.0,
        format!(
            "calm-routed: availability {:.4} < 1.0",
            report.overall_availability()
        ),
    );
    gate.check(
        report.outage_windows == 0,
        format!(
            "calm-routed: {} outage windows, expected 0",
            report.outage_windows
        ),
    );
    Row {
        schedule: "calm-rtd",
        availability: report.overall_availability(),
        inside_availability: report.inside_availability(),
        outside_availability: report.outside_availability(),
        outage_windows: report.outage_windows,
        kills: 0,
        restarts: stats.total_restarts(),
        lost: stats.total_lost(),
        failover: stats.total_failover(),
        exact_shards: exact,
        compared_shards: SHARDS,
        snapshots: 0,
        restored_objects: 0,
        restored_bytes: 0,
        epochs_discarded: 0,
    }
}

/// Calm schedule with periodic snapshot epochs enabled: the export seam
/// is read-only, so every shard ledger must still be bit-identical to
/// the serial reference — snapshots-on equals snapshots-off, u64 for
/// u64. Also gates that every shard actually committed epochs.
fn run_calm_snap(
    trace: &[cdn_cache::Request],
    plan: &ShardPlan,
    cfg: &DaemonConfig,
    gate: &mut Gate,
) -> Row {
    let dir = fresh_snap_dir("calm");
    let mut cfg = cfg.clone();
    cfg.snap = SnapshotConfig {
        interval: 2_048,
        keep: 2,
        dir: Some(dir.clone()),
    };
    let daemon = Daemon::spawn(cfg.clone(), plan.factory(POLICY)).expect("spawn calm-snap daemon");
    let report = feed(&daemon, trace, calm_mode());
    for shard in 0..SHARDS {
        assert!(
            daemon.await_quiesced(shard, Duration::from_secs(120)),
            "calm-snap: shard {shard} never quiesced"
        );
    }
    let stats = daemon.shutdown();
    let _ = fs::remove_dir_all(&dir);
    if let Err(e) = report.check_against(&stats.shards, true) {
        gate.check(false, format!("calm-snap: counter reconciliation: {e}"));
    }
    let reference = plan.reference(POLICY, cfg.total_capacity);
    let mut exact = 0usize;
    for (shard, (snap, m)) in stats.shards.iter().zip(&reference.per_shard).enumerate() {
        match ledger_diff(shard, snap, m) {
            None => exact += 1,
            Some(diff) => gate.check(false, format!("calm-snap: {diff}")),
        }
    }
    let snapshots: u64 = stats.shards.iter().map(|s| s.snapshots_written).sum();
    for (shard, s) in stats.shards.iter().enumerate() {
        gate.check(
            s.snapshots_written > 0,
            format!("calm-snap: shard {shard} committed no snapshot epochs"),
        );
    }
    gate.check(
        report.overall_availability() == 1.0,
        format!(
            "calm-snap: availability {:.4} < 1.0",
            report.overall_availability()
        ),
    );
    Row {
        schedule: "calm-snap",
        availability: report.overall_availability(),
        inside_availability: report.inside_availability(),
        outside_availability: report.outside_availability(),
        outage_windows: report.outage_windows,
        kills: 0,
        restarts: stats.total_restarts(),
        lost: stats.total_lost(),
        failover: stats.total_failover(),
        exact_shards: exact,
        compared_shards: SHARDS,
        snapshots,
        restored_objects: 0,
        restored_bytes: 0,
        epochs_discarded: 0,
    }
}

/// Kill schedule: two deterministic outages of the min-share shard.
#[cfg(feature = "fault-injection")]
fn run_kill(
    trace: &[cdn_cache::Request],
    plan: &ShardPlan,
    cfg: &DaemonConfig,
    gate: &mut Gate,
) -> Row {
    use cdn_cache::fault::{self, FaultAction, FaultRule};
    use cdnd::{worker_fault_key, ShardState, FP_SHARD_WORKER};

    // Backoff far beyond the run: a killed shard stays down until the
    // explicit reset below, so each outage covers an exact trace slice.
    let mut cfg = cfg.clone();
    cfg.restart = RestartConfig {
        backoff_base_ms: 600_000,
        backoff_max_ms: 600_000,
        storm_threshold: 100,
        storm_window_ms: 600_000,
    };
    let n = trace.len();
    // Slices: calm warmup | outage 1 | recovery | outage 2 | calm tail.
    let cuts = [n / 5, 2 * n / 5, 3 * n / 5, 4 * n / 5];
    // Kill the shard with the smallest request share *within the outage
    // slices* — that share is exactly the availability loss while it is
    // down, so the ≥75 % floor gets its maximum (and deterministic)
    // headroom.
    let victim = (0..SHARDS)
        .min_by_key(|&shard| {
            trace[cuts[0]..cuts[1]]
                .iter()
                .chain(&trace[cuts[2]..cuts[3]])
                .filter(|r| cdn_cache::key_shard(r.id.0, SHARDS) == shard)
                .count()
        })
        .unwrap();

    fault::clear();
    let daemon = Daemon::spawn(cfg.clone(), plan.factory(POLICY)).expect("spawn kill daemon");
    let quiesce_all = |daemon: &Daemon| {
        for shard in 0..SHARDS {
            if shard != victim {
                assert!(
                    daemon.await_quiesced(shard, Duration::from_secs(120)),
                    "kill: shard {shard} never quiesced"
                );
            }
        }
    };
    let arm_next_victim_tick = |daemon: &Daemon| {
        let s = &daemon.stats().shards[victim];
        fault::arm(
            FP_SHARD_WORKER,
            FaultRule::OnKeys(
                vec![worker_fault_key(victim, s.processed + s.lost)],
                FaultAction::Panic("cdnd_chaos kill".into()),
            ),
        );
    };

    let mut reports = Vec::new();
    let mut kills = 0u64;
    // Warmup, fully calm.
    reports.push(feed(&daemon, &trace[..cuts[0]], calm_mode()));
    assert!(daemon.await_quiesced(victim, Duration::from_secs(120)));
    quiesce_all(&daemon);

    for (start, end) in [(cuts[0], cuts[1]), (cuts[2], cuts[3])] {
        // Kill the victim on its next request, then feed the outage
        // slice: the crash request is accepted-then-lost, every later
        // victim-bound request in the slice is rejected ShardDown.
        arm_next_victim_tick(&daemon);
        reports.push(feed(&daemon, &trace[start..end], calm_mode()));
        assert!(
            daemon.await_shard_state(victim, ShardState::Backoff, Duration::from_secs(30)),
            "victim should be down at the end of the outage slice"
        );
        // `arm` resets the site's fired counter, so bank this outage's
        // count before the next arm.
        kills += fault::fired(FP_SHARD_WORKER);
        // Operator revival, then a recovery slice that closes the window.
        daemon.reset_shard(victim);
        assert!(
            daemon.await_shard_state(victim, ShardState::Closed, Duration::from_secs(30)),
            "reset did not revive the victim"
        );
        let tail = if end == cuts[1] { cuts[2] } else { n };
        reports.push(feed(&daemon, &trace[end..tail], calm_mode()));
        assert!(daemon.await_quiesced(victim, Duration::from_secs(120)));
        quiesce_all(&daemon);
    }
    let stats = daemon.shutdown();
    fault::clear();

    let report = merge_reports(&reports);
    gate.check(kills == 2, format!("kill: {kills} kills fired, expected 2"));
    gate.check(
        report.outage_windows == 2,
        format!("kill: {} outage windows, expected 2", report.outage_windows),
    );
    gate.check(
        report.outside_availability() == 1.0,
        format!(
            "kill: availability outside outage windows {:.4} < 1.0",
            report.outside_availability()
        ),
    );
    gate.check(
        report.inside_availability() >= 0.75,
        format!(
            "kill: availability inside outage windows {:.4} < 0.75",
            report.inside_availability()
        ),
    );
    if let Err(e) = report.check_against(&stats.shards, true) {
        gate.check(false, format!("kill: counter reconciliation: {e}"));
    }
    // Survivors must be bit-identical to the serial reference; the victim
    // lost exactly the two panicked requests plus the rejected ones.
    let reference = plan.reference(POLICY, cfg.total_capacity);
    let mut exact = 0usize;
    for shard in 0..SHARDS {
        if shard == victim {
            continue;
        }
        match ledger_diff(shard, &stats.shards[shard], &reference.per_shard[shard]) {
            None => exact += 1,
            Some(diff) => gate.check(false, format!("kill: surviving {diff}")),
        }
    }
    gate.check(
        stats.shards[victim].lost == 2,
        format!(
            "kill: victim lost {}, expected 2",
            stats.shards[victim].lost
        ),
    );
    Row {
        schedule: "kill-2x",
        availability: report.overall_availability(),
        inside_availability: report.inside_availability(),
        outside_availability: report.outside_availability(),
        outage_windows: report.outage_windows,
        kills,
        restarts: stats.total_restarts(),
        lost: stats.total_lost(),
        failover: stats.total_failover(),
        exact_shards: exact,
        compared_shards: SHARDS - 1,
        snapshots: 0,
        restored_objects: 0,
        restored_bytes: 0,
        epochs_discarded: 0,
    }
}

/// Warm-restart schedule: one deterministic kill of the min-share shard
/// with snapshotting enabled and an epoch forced immediately before the
/// kill. The revived shard must come back with ≥ 90 % of its pre-crash
/// resident bytes restored from the snapshot, while the surviving shards
/// stay bit-identical to the serial reference.
#[cfg(feature = "fault-injection")]
fn run_warm(
    trace: &[cdn_cache::Request],
    plan: &ShardPlan,
    cfg: &DaemonConfig,
    gate: &mut Gate,
) -> Row {
    use cdn_cache::fault::{self, FaultAction, FaultRule};
    use cdnd::{worker_fault_key, ShardState, FP_SHARD_WORKER};

    let dir = fresh_snap_dir("warm");
    let mut cfg = cfg.clone();
    cfg.restart = RestartConfig {
        backoff_base_ms: 600_000,
        backoff_max_ms: 600_000,
        storm_threshold: 100,
        storm_window_ms: 600_000,
    };
    // Huge interval: only the forced epoch (and the drain-final one)
    // exist, so the restore provenance is unambiguous.
    cfg.snap = SnapshotConfig {
        interval: 1 << 40,
        keep: 3,
        dir: Some(dir.clone()),
    };
    let n = trace.len();
    // Slices: warmup | outage | recovery tail.
    let cuts = [n / 3, 2 * n / 3];
    let victim = (0..SHARDS)
        .min_by_key(|&shard| {
            trace[cuts[0]..cuts[1]]
                .iter()
                .filter(|r| cdn_cache::key_shard(r.id.0, SHARDS) == shard)
                .count()
        })
        .unwrap();

    fault::clear();
    let daemon = Daemon::spawn(cfg.clone(), plan.factory(POLICY)).expect("spawn warm daemon");
    let mut reports = Vec::new();
    reports.push(feed(&daemon, &trace[..cuts[0]], calm_mode()));
    for shard in 0..SHARDS {
        assert!(
            daemon.await_quiesced(shard, Duration::from_secs(120)),
            "warm: shard {shard} never quiesced"
        );
    }
    // Snapshot the quiesced victim, then kill it on its next request:
    // the epoch on disk is exactly the pre-crash resident set (the crash
    // request itself is lost, never applied).
    force_snapshot(&daemon, victim);
    let pre = daemon.stats().shards[victim];
    fault::arm(
        FP_SHARD_WORKER,
        FaultRule::OnKeys(
            vec![worker_fault_key(victim, pre.processed + pre.lost)],
            FaultAction::Panic("cdnd_chaos warm kill".into()),
        ),
    );
    reports.push(feed(&daemon, &trace[cuts[0]..cuts[1]], calm_mode()));
    assert!(
        daemon.await_shard_state(victim, ShardState::Backoff, Duration::from_secs(30)),
        "warm: victim should be down at the end of the outage slice"
    );
    let kills = fault::fired(FP_SHARD_WORKER);
    daemon.reset_shard(victim);
    assert!(
        daemon.await_shard_state(victim, ShardState::Closed, Duration::from_secs(30)),
        "warm: reset did not revive the victim"
    );
    let post = daemon.stats().shards[victim];
    reports.push(feed(&daemon, &trace[cuts[1]..], calm_mode()));
    for shard in 0..SHARDS {
        if shard != victim {
            assert!(
                daemon.await_quiesced(shard, Duration::from_secs(120)),
                "warm: shard {shard} never quiesced"
            );
        }
    }
    assert!(daemon.await_quiesced(victim, Duration::from_secs(120)));
    let stats = daemon.shutdown();
    let _ = fs::remove_dir_all(&dir);
    fault::clear();

    let report = merge_reports(&reports);
    gate.check(kills == 1, format!("warm: {kills} kills fired, expected 1"));
    gate.check(
        post.epochs_discarded == 0,
        format!(
            "warm: {} epochs discarded on a clean restore, expected 0",
            post.epochs_discarded
        ),
    );
    gate.check(
        post.restored_objects > 0,
        "warm: revived shard restored no objects".to_string(),
    );
    let floor = (pre.resident_bytes as f64 * 0.9).ceil() as u64;
    gate.check(
        post.restored_bytes >= floor,
        format!(
            "warm: restored {} of {} pre-crash resident bytes (< 90 % floor {})",
            post.restored_bytes, pre.resident_bytes, floor
        ),
    );
    gate.check(
        report.outside_availability() == 1.0,
        format!(
            "warm: availability outside the outage window {:.4} < 1.0",
            report.outside_availability()
        ),
    );
    if let Err(e) = report.check_against(&stats.shards, true) {
        gate.check(false, format!("warm: counter reconciliation: {e}"));
    }
    let reference = plan.reference(POLICY, cfg.total_capacity);
    let mut exact = 0usize;
    for shard in 0..SHARDS {
        if shard == victim {
            continue;
        }
        match ledger_diff(shard, &stats.shards[shard], &reference.per_shard[shard]) {
            None => exact += 1,
            Some(diff) => gate.check(false, format!("warm: surviving {diff}")),
        }
    }
    Row {
        schedule: "warm-kill",
        availability: report.overall_availability(),
        inside_availability: report.inside_availability(),
        outside_availability: report.outside_availability(),
        outage_windows: report.outage_windows,
        kills,
        restarts: stats.total_restarts(),
        lost: stats.total_lost(),
        failover: stats.total_failover(),
        exact_shards: exact,
        compared_shards: SHARDS - 1,
        snapshots: stats.shards.iter().map(|s| s.snapshots_written).sum(),
        restored_objects: stats.shards[victim].restored_objects,
        restored_bytes: stats.shards[victim].restored_bytes,
        epochs_discarded: stats.shards[victim].epochs_discarded,
    }
}

/// Corruption-ladder schedule: three kill/restore rungs against a
/// damaged snapshot directory. Rung 1 tears the newest epoch's tail via
/// the `cdnd.snap_write` failpoint, rung 2 bit-flips a committed epoch
/// on disk, rung 3 deletes every epoch. Each rung must degrade to an
/// older epoch (or cold) with zero panics beyond the intentional kills.
#[cfg(feature = "fault-injection")]
fn run_corrupt(
    trace: &[cdn_cache::Request],
    plan: &ShardPlan,
    cfg: &DaemonConfig,
    gate: &mut Gate,
) -> Row {
    use cdn_cache::fault::{self, FaultAction, FaultRule};
    use cdnd::snapshot::{list_epochs, snapshot_path};
    use cdnd::{snap_fault_key, worker_fault_key, ShardState, FP_SHARD_WORKER, FP_SNAP_WRITE};

    let dir = fresh_snap_dir("corrupt");
    let mut cfg = cfg.clone();
    cfg.restart = RestartConfig {
        backoff_base_ms: 600_000,
        backoff_max_ms: 600_000,
        storm_threshold: 100,
        storm_window_ms: 600_000,
    };
    cfg.snap = SnapshotConfig {
        interval: 1 << 40,
        keep: 4,
        dir: Some(dir.clone()),
    };
    let n = trace.len();
    // Slices: warmup | (outage | recovery) × 3 | tail.
    let cut = |i: usize| i * n / 8;
    let outages = [(cut(1), cut(2)), (cut(3), cut(4)), (cut(5), cut(6))];
    let victim = (0..SHARDS)
        .min_by_key(|&shard| {
            outages
                .iter()
                .flat_map(|&(a, b)| &trace[a..b])
                .filter(|r| cdn_cache::key_shard(r.id.0, SHARDS) == shard)
                .count()
        })
        .unwrap();

    fault::clear();
    let daemon = Daemon::spawn(cfg.clone(), plan.factory(POLICY)).expect("spawn corrupt daemon");
    let quiesce_all = |daemon: &Daemon| {
        for shard in 0..SHARDS {
            if shard != victim {
                assert!(
                    daemon.await_quiesced(shard, Duration::from_secs(120)),
                    "corrupt: shard {shard} never quiesced"
                );
            }
        }
    };
    let mut reports = Vec::new();
    let mut kills = 0u64;
    reports.push(feed(&daemon, &trace[..cut(1)], calm_mode()));
    assert!(daemon.await_quiesced(victim, Duration::from_secs(120)));
    quiesce_all(&daemon);
    // Epoch 1: a good snapshot every later rung can fall back to.
    force_snapshot(&daemon, victim);

    // Per-rung damage, applied right before the rung's kill. Expected
    // ladder: rung 0 discards the torn newest epoch, rung 1 discards the
    // flipped epoch plus the still-torn one beneath it, rung 2 finds
    // nothing and starts cold.
    let damage: [&dyn Fn(&Daemon); 3] = [
        &|daemon: &Daemon| {
            // Tear the tail of the next committed epoch via the write
            // failpoint, then force that epoch.
            let next = list_epochs(&dir, victim as u32).last().unwrap() + 1;
            fault::arm(
                FP_SNAP_WRITE,
                FaultRule::OnKeys(
                    vec![snap_fault_key(victim as u32, next)],
                    FaultAction::ShortRead(64),
                ),
            );
            force_snapshot(daemon, victim);
        },
        &|daemon: &Daemon| {
            // Commit a good epoch, then flip one byte of it on disk.
            force_snapshot(daemon, victim);
            let newest = *list_epochs(&dir, victim as u32).last().unwrap();
            let path = snapshot_path(&dir, victim as u32, newest);
            let mut bytes = fs::read(&path).expect("read committed epoch");
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x01;
            fs::write(&path, bytes).expect("write flipped epoch");
        },
        &|_daemon: &Daemon| {
            // Delete every epoch: the ladder bottoms out cold.
            for epoch in list_epochs(&dir, victim as u32) {
                let _ = fs::remove_file(snapshot_path(&dir, victim as u32, epoch));
            }
        },
    ];
    let expect_discarded: [u64; 3] = [1, 2, 0];
    let expect_warm: [bool; 3] = [true, true, false];

    for (rung, &(start, end)) in outages.iter().enumerate() {
        damage[rung](&daemon);
        let before = daemon.stats().shards[victim];
        fault::arm(
            FP_SHARD_WORKER,
            FaultRule::OnKeys(
                vec![worker_fault_key(victim, before.processed + before.lost)],
                FaultAction::Panic("cdnd_chaos corrupt kill".into()),
            ),
        );
        reports.push(feed(&daemon, &trace[start..end], calm_mode()));
        assert!(
            daemon.await_shard_state(victim, ShardState::Backoff, Duration::from_secs(30)),
            "corrupt rung {rung}: victim should be down"
        );
        kills += fault::fired(FP_SHARD_WORKER);
        daemon.reset_shard(victim);
        assert!(
            daemon.await_shard_state(victim, ShardState::Closed, Duration::from_secs(30)),
            "corrupt rung {rung}: reset did not revive the victim"
        );
        let after = daemon.stats().shards[victim];
        let discarded = after.epochs_discarded - before.epochs_discarded;
        gate.check(
            discarded == expect_discarded[rung],
            format!(
                "corrupt rung {rung}: {} epochs discarded, expected {}",
                discarded, expect_discarded[rung]
            ),
        );
        let warm = after.restored_objects > before.restored_objects;
        gate.check(
            warm == expect_warm[rung],
            format!(
                "corrupt rung {rung}: restore was {}, expected {}",
                if warm { "warm" } else { "cold" },
                if expect_warm[rung] { "warm" } else { "cold" }
            ),
        );
        let tail = if rung + 1 < outages.len() {
            outages[rung + 1].0
        } else {
            n
        };
        reports.push(feed(&daemon, &trace[end..tail], calm_mode()));
        assert!(daemon.await_quiesced(victim, Duration::from_secs(120)));
        quiesce_all(&daemon);
    }
    let stats = daemon.shutdown();
    let _ = fs::remove_dir_all(&dir);
    fault::clear();

    let report = merge_reports(&reports);
    gate.check(kills == 3, format!("corrupt: {kills} kills, expected 3"));
    // Zero panics beyond the intentional kills: every restart is
    // accounted for by a kill, and the victim lost exactly the three
    // crash requests.
    gate.check(
        stats.total_restarts() == kills,
        format!(
            "corrupt: {} restarts for {} kills — a restore panicked",
            stats.total_restarts(),
            kills
        ),
    );
    gate.check(
        stats.shards[victim].lost == 3,
        format!(
            "corrupt: victim lost {}, expected 3",
            stats.shards[victim].lost
        ),
    );
    gate.check(
        report.outside_availability() == 1.0,
        format!(
            "corrupt: availability outside outage windows {:.4} < 1.0",
            report.outside_availability()
        ),
    );
    if let Err(e) = report.check_against(&stats.shards, true) {
        gate.check(false, format!("corrupt: counter reconciliation: {e}"));
    }
    let reference = plan.reference(POLICY, cfg.total_capacity);
    let mut exact = 0usize;
    for shard in 0..SHARDS {
        if shard == victim {
            continue;
        }
        match ledger_diff(shard, &stats.shards[shard], &reference.per_shard[shard]) {
            None => exact += 1,
            Some(diff) => gate.check(false, format!("corrupt: surviving {diff}")),
        }
    }
    Row {
        schedule: "corrupt",
        availability: report.overall_availability(),
        inside_availability: report.inside_availability(),
        outside_availability: report.outside_availability(),
        outage_windows: report.outage_windows,
        kills,
        restarts: stats.total_restarts(),
        lost: stats.total_lost(),
        failover: stats.total_failover(),
        exact_shards: exact,
        compared_shards: SHARDS - 1,
        snapshots: stats.shards.iter().map(|s| s.snapshots_written).sum(),
        restored_objects: stats.shards[victim].restored_objects,
        restored_bytes: stats.shards[victim].restored_bytes,
        epochs_discarded: stats.shards[victim].epochs_discarded,
    }
}

/// Flash-crowd kill schedule: a drift trace whose middle half is a flash
/// crowd, failover routing enabled, and two deterministic kills of the
/// min-share shard landing *inside* the crowd window. While the victim
/// is down its keys are answered as overlay misses on their rendezvous
/// secondary — availability inside the outage windows must be 100 % of
/// admitted requests with zero `Down` rejections — and *all* shard
/// ledgers (survivors plus overlay receivers) must be u64-exact against
/// the routing-aware serial reference.
#[cfg(feature = "fault-injection")]
fn run_flash_kill(requests: u64, seed: u64, cfg: &DaemonConfig, gate: &mut Gate) -> Row {
    use cdn_cache::fault::{self, FaultAction, FaultRule};
    use cdn_cache::key_shard;
    use cdn_sim::{run_routed_serial, OutageWindow};
    use cdn_trace::flash_crowd_window;
    use cdnd::{routed_ledger_diff, worker_fault_key, ShardState, FP_SHARD_WORKER};

    eprintln!("generating {requests} flash-crowd requests (seed {seed})...");
    let trace = TraceGenerator::generate(Workload::CdnT.profile().config_with_events(
        requests,
        seed,
        vec![flash_crowd_window(requests)],
    ));
    let stats = TraceStats::compute(&trace);
    let mut cfg = cfg.clone();
    cfg.total_capacity = stats.cache_bytes_for_fraction(Workload::CdnT.paper_cache_fraction(64.0));
    cfg.route = RouteConfig { failover: true };
    cfg.restart = RestartConfig {
        backoff_base_ms: 600_000,
        backoff_max_ms: 600_000,
        storm_threshold: 100,
        storm_window_ms: 600_000,
    };
    let plan = ShardPlan::build(&trace, cfg.shards, cfg.seed);

    // The flash crowd covers [n/4, 3n/4); both outage slices sit strictly
    // inside it, so every window is fully exposed to the crowd skew.
    let n = trace.len();
    let outages = [(3 * n / 8, 4 * n / 8), (5 * n / 8, 6 * n / 8)];
    let victim = (0..SHARDS)
        .min_by_key(|&shard| {
            outages
                .iter()
                .flat_map(|&(a, b)| &trace[a..b])
                .filter(|r| key_shard(r.id.0, SHARDS) == shard)
                .count()
        })
        .unwrap();

    fault::clear();
    let daemon = Daemon::spawn(cfg.clone(), plan.factory(POLICY)).expect("spawn flash daemon");
    let quiesce_all = |daemon: &Daemon| {
        for shard in 0..SHARDS {
            assert!(
                daemon.await_quiesced(shard, Duration::from_secs(120)),
                "flash-kill: shard {shard} never quiesced"
            );
        }
    };

    let mut reports = Vec::new();
    let mut kills = 0u64;
    let mut windows = Vec::new();
    let mut pos = 0usize;
    for (round, &(start, end)) in outages.iter().enumerate() {
        // The crash request is the first victim-primary request in the
        // outage slice; everything before it is fed calm.
        let ci = (start..end)
            .find(|&i| key_shard(trace[i].id.0, SHARDS) == victim)
            .expect("no victim-primary request in the outage slice");
        reports.push(feed(&daemon, &trace[pos..ci], calm_mode()));
        // Quiesce everyone so the victim's local tick is deterministic
        // when the crash request arrives.
        quiesce_all(&daemon);
        let s = daemon.stats().shards[victim];
        fault::arm(
            FP_SHARD_WORKER,
            FaultRule::OnKeys(
                vec![worker_fault_key(victim, s.processed + s.lost)],
                FaultAction::Panic("cdnd_chaos flash kill".into()),
            ),
        );
        // The crash request alone, then wait for the supervisor to park
        // the victim in backoff: every later victim-primary submit in
        // the slice sees the outage and fails over — no enqueue race.
        reports.push(feed(&daemon, &trace[ci..=ci], calm_mode()));
        assert!(
            daemon.await_shard_state(victim, ShardState::Backoff, Duration::from_secs(30)),
            "flash-kill round {round}: victim never entered backoff"
        );
        kills += fault::fired(FP_SHARD_WORKER);
        reports.push(feed(&daemon, &trace[ci + 1..end], calm_mode()));
        // Operator revival at the slice boundary: the outage window is
        // exactly [ci, end) on every run.
        daemon.reset_shard(victim);
        assert!(
            daemon.await_shard_state(victim, ShardState::Closed, Duration::from_secs(30)),
            "flash-kill round {round}: reset did not revive the victim"
        );
        windows.push(OutageWindow {
            shard: victim,
            crash_index: ci,
            end_index: end,
        });
        pos = end;
    }
    reports.push(feed(&daemon, &trace[pos..], calm_mode()));
    quiesce_all(&daemon);
    let stats = daemon.shutdown();
    fault::clear();

    let report = merge_reports(&reports);
    gate.check(
        kills == 2,
        format!("flash-kill: {kills} kills fired, expected 2"),
    );
    gate.check(
        report.outage_windows == 2,
        format!(
            "flash-kill: {} outage windows, expected 2",
            report.outage_windows
        ),
    );
    // The tentpole availability gate: inside the outage windows every
    // admitted request is answered (as a failover miss), none dropped.
    gate.check(
        report.inside_availability() == 1.0,
        format!(
            "flash-kill: availability inside outage windows {:.4} < 1.0",
            report.inside_availability()
        ),
    );
    gate.check(
        report.outside_availability() == 1.0,
        format!(
            "flash-kill: availability outside outage windows {:.4} < 1.0",
            report.outside_availability()
        ),
    );
    let down: u64 = report.per_shard.iter().map(|t| t.rejected_down).sum();
    let shed: u64 = report.per_shard.iter().map(|t| t.shed).sum();
    gate.check(
        down == 0 && shed == 0,
        format!("flash-kill: {down} Down / {shed} Shed rejections, expected 0"),
    );
    gate.check(
        report.failover_accepted > 0,
        "flash-kill: no failover traffic observed".to_string(),
    );
    if let Err(e) = report.check_against(&stats.shards, true) {
        gate.check(false, format!("flash-kill: counter reconciliation: {e}"));
    }
    // Every ledger — survivors and the overlay work they absorbed — must
    // equal the routing-aware serial reference u64-for-u64.
    let reference = run_routed_serial(
        POLICY,
        cfg.total_capacity,
        &trace,
        SHARDS,
        cfg.seed,
        &windows,
    );
    gate.check(
        reference.unroutable == 0,
        format!(
            "flash-kill: reference found {} unroutable requests",
            reference.unroutable
        ),
    );
    let overlay: u64 = reference.per_shard.iter().map(|l| l.failover_in).sum();
    gate.check(
        report.failover_accepted == overlay,
        format!(
            "flash-kill: client saw {} failover accepts, reference {}",
            report.failover_accepted, overlay
        ),
    );
    let mut exact = 0usize;
    for shard in 0..SHARDS {
        match routed_ledger_diff(shard, &stats.shards[shard], &reference.per_shard[shard]) {
            None => exact += 1,
            Some(diff) => gate.check(false, format!("flash-kill: {diff}")),
        }
    }
    gate.check(
        stats.shards[victim].lost == 2,
        format!(
            "flash-kill: victim lost {}, expected 2",
            stats.shards[victim].lost
        ),
    );
    Row {
        schedule: "flash-kill",
        availability: report.overall_availability(),
        inside_availability: report.inside_availability(),
        outside_availability: report.outside_availability(),
        outage_windows: report.outage_windows,
        kills,
        restarts: stats.total_restarts(),
        lost: stats.total_lost(),
        failover: stats.total_failover(),
        exact_shards: exact,
        compared_shards: SHARDS,
        snapshots: 0,
        restored_objects: 0,
        restored_bytes: 0,
        epochs_discarded: 0,
    }
}

fn main() {
    let requests = env_u64("CDND_CHAOS_REQUESTS", env_u64("REPRO_REQUESTS", 200_000));
    let seed = env_u64("CDND_CHAOS_SEED", cdn_sim::default_seed());
    eprintln!("generating {requests} CDN-T requests (seed {seed})...");
    let trace = TraceGenerator::generate(Workload::CdnT.profile().config(requests, seed));
    let stats = TraceStats::compute(&trace);
    let cache_bytes = stats.cache_bytes_for_fraction(Workload::CdnT.paper_cache_fraction(64.0));
    let cfg = DaemonConfig {
        shards: SHARDS,
        total_capacity: cache_bytes,
        queue_capacity: 4_096,
        worker_batch: 64,
        seed,
        restart: RestartConfig::default(),
        snap: SnapshotConfig::default(),
        route: RouteConfig::default(),
        admit: AdmitConfig::default(),
    }
    .overlay_env();
    let plan = ShardPlan::build(&trace, cfg.shards, cfg.seed);
    eprintln!(
        "daemon: {} shards x {:.1} MiB, queue {}, policy {}",
        cfg.shards,
        cfg.per_shard_capacity() as f64 / (1 << 20) as f64,
        cfg.queue_capacity,
        POLICY.label()
    );

    let mut gate = Gate {
        failures: Vec::new(),
    };
    let rows: Vec<Row> = {
        #[cfg(feature = "fault-injection")]
        {
            vec![
                run_calm(&trace, &plan, &cfg, &mut gate),
                run_calm_routed(&trace, &plan, &cfg, &mut gate),
                run_calm_snap(&trace, &plan, &cfg, &mut gate),
                run_kill(&trace, &plan, &cfg, &mut gate),
                run_warm(&trace, &plan, &cfg, &mut gate),
                run_corrupt(&trace, &plan, &cfg, &mut gate),
                run_flash_kill(requests, seed, &cfg, &mut gate),
            ]
        }
        #[cfg(not(feature = "fault-injection"))]
        {
            eprintln!(
                "note: built without --features fault-injection; kill, warm-kill, \
                 corrupt and flash-kill schedules skipped (calm gates only)"
            );
            vec![
                run_calm(&trace, &plan, &cfg, &mut gate),
                run_calm_routed(&trace, &plan, &cfg, &mut gate),
                run_calm_snap(&trace, &plan, &cfg, &mut gate),
            ]
        }
    };

    // Human table.
    println!(
        "{:<10} {:>6} {:>8} {:>9} {:>8} {:>6} {:>9} {:>5} {:>8} {:>6} {:>6} {:>9} {:>9}",
        "schedule",
        "avail",
        "inside",
        "outside",
        "windows",
        "kills",
        "restarts",
        "lost",
        "failover",
        "exact",
        "snaps",
        "restored",
        "discarded"
    );
    for r in &rows {
        println!(
            "{:<10} {:>6.4} {:>8.4} {:>9.4} {:>8} {:>6} {:>9} {:>5} {:>8} {:>3}/{} {:>6} {:>9} {:>9}",
            r.schedule,
            r.availability,
            r.inside_availability,
            r.outside_availability,
            r.outage_windows,
            r.kills,
            r.restarts,
            r.lost,
            r.failover,
            r.exact_shards,
            r.compared_shards,
            r.snapshots,
            r.restored_objects,
            r.epochs_discarded
        );
    }

    // Persisted artifacts: markdown, TSV and JSON under results/.
    let dir = cdn_sim::table::results_dir();
    cdn_sim::or_die(fs::create_dir_all(&dir), "creating results dir");
    let mut md = String::from(
        "# cdnd chaos schedules\n\n\
         | schedule | availability | inside | outside | windows | kills | restarts | lost | failover | exact shards | snapshots | restored objects | restored bytes | epochs discarded |\n\
         |---|---|---|---|---|---|---|---|---|---|---|---|---|---|\n",
    );
    let mut tsv = String::from(
        "schedule\tavailability\tinside\toutside\twindows\tkills\trestarts\tlost\tfailover\texact\tcompared\tsnapshots\trestored_objects\trestored_bytes\tepochs_discarded\n",
    );
    let mut json = format!(
        "{{\n  \"schema\": \"cdnd_chaos_v3\",\n  \"requests\": {requests},\n  \
         \"seed\": {seed},\n  \"shards\": {SHARDS},\n  \"policy\": \"{}\",\n  \
         \"cache_bytes\": {cache_bytes},\n  \"schedules\": [\n",
        POLICY.label()
    );
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            md,
            "| {} | {:.4} | {:.4} | {:.4} | {} | {} | {} | {} | {} | {}/{} | {} | {} | {} | {} |",
            r.schedule,
            r.availability,
            r.inside_availability,
            r.outside_availability,
            r.outage_windows,
            r.kills,
            r.restarts,
            r.lost,
            r.failover,
            r.exact_shards,
            r.compared_shards,
            r.snapshots,
            r.restored_objects,
            r.restored_bytes,
            r.epochs_discarded
        );
        let _ = writeln!(
            tsv,
            "{}\t{:.6}\t{:.6}\t{:.6}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            r.schedule,
            r.availability,
            r.inside_availability,
            r.outside_availability,
            r.outage_windows,
            r.kills,
            r.restarts,
            r.lost,
            r.failover,
            r.exact_shards,
            r.compared_shards,
            r.snapshots,
            r.restored_objects,
            r.restored_bytes,
            r.epochs_discarded
        );
        let _ = writeln!(
            json,
            "    {{\"schedule\": \"{}\", \"availability\": {:.6}, \
             \"inside_availability\": {:.6}, \"outside_availability\": {:.6}, \
             \"outage_windows\": {}, \"kills\": {}, \"restarts\": {}, \
             \"lost\": {}, \"failover\": {}, \"exact_shards\": {}, \
             \"compared_shards\": {}, \
             \"snapshots\": {}, \"restored_objects\": {}, \
             \"restored_bytes\": {}, \"epochs_discarded\": {}}}{}",
            r.schedule,
            r.availability,
            r.inside_availability,
            r.outside_availability,
            r.outage_windows,
            r.kills,
            r.restarts,
            r.lost,
            r.failover,
            r.exact_shards,
            r.compared_shards,
            r.snapshots,
            r.restored_objects,
            r.restored_bytes,
            r.epochs_discarded,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(
        json,
        "  ],\n  \"gate_failures\": {},\n  \"fault_injection\": {}\n}}",
        gate.failures.len(),
        cfg!(feature = "fault-injection")
    );
    cdn_sim::or_die(fs::write(dir.join("cdnd_chaos.md"), md), "writing markdown");
    cdn_sim::or_die(fs::write(dir.join("cdnd_chaos.tsv"), tsv), "writing TSV");
    cdn_sim::or_die(fs::write(dir.join("cdnd_chaos.json"), json), "writing JSON");
    eprintln!("saved results/cdnd_chaos.{{md,tsv,json}}");

    if !gate.failures.is_empty() {
        for f in &gate.failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    eprintln!("all cdnd chaos gates passed");
}
