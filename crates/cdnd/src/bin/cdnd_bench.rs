//! Daemon serving-throughput bench: replay a CDN-T workload through the
//! supervised daemon at several shard counts and report requests/sec
//! end-to-end (submit → ring → worker → ledger), next to the library's
//! serial sharded-replay reference. Writes `BENCH_daemon.json` (schema
//! `daemon_bench_v1`) with one JSON row per (policy × shards) point so
//! `scripts/bench.sh --daemon` can gate regressions by grep.
//!
//! Single-core honesty (the PR 6 convention, extended here): when
//! `available_parallelism` is 1, the daemon-vs-serial speedup is
//! suppressed (`null`) and an explicit note plus the `requested_shards`
//! list is recorded — never a fabricated speedup from time-sliced
//! threads.
//!
//! Knobs: `CDND_BENCH_REQUESTS` (default 500k), `CDND_BENCH_SHARDS`
//! (comma-separated, default `1,2,4`), `CDND_BENCH_OUT` (output path).

use std::time::{Duration, Instant};

use cdn_sim::PolicyKind;
use cdn_trace::{TraceGenerator, TraceStats, Workload};
use cdnd::{feed, ledger_diff, Daemon, DaemonConfig, FeedMode, ShardPlan};

const POLICIES: [PolicyKind; 2] = [PolicyKind::Lru, PolicyKind::Scip];

fn env_u64(key: &str, fallback: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(fallback)
}

fn shard_counts_from_env() -> Vec<usize> {
    let raw = std::env::var("CDND_BENCH_SHARDS").unwrap_or_else(|_| "1,2,4".to_string());
    let counts: Vec<usize> = raw
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .filter(|&n| n > 0)
        .collect();
    if counts.is_empty() {
        vec![1, 2, 4]
    } else {
        counts
    }
}

struct Point {
    policy: &'static str,
    shards: usize,
    daemon_rps: f64,
    serial_rps: f64,
    /// `daemon rps / serial reference rps` — None on a single-core
    /// machine, where the comparison is scheduling noise.
    speedup: Option<f64>,
    aggregate_miss_ratio: f64,
}

fn main() {
    let requests = env_u64("CDND_BENCH_REQUESTS", 500_000);
    let seed = cdn_sim::default_seed();
    let out_path =
        std::env::var("CDND_BENCH_OUT").unwrap_or_else(|_| "BENCH_daemon.json".to_string());
    let shard_counts = shard_counts_from_env();
    let cores = std::thread::available_parallelism()
        .map(|w| w.get())
        .unwrap_or(1);

    eprintln!("generating {requests} CDN-T requests (seed {seed})...");
    let trace = TraceGenerator::generate(Workload::CdnT.profile().config(requests, seed));
    let n = trace.len();
    let stats = TraceStats::compute(&trace);
    let cache_bytes = stats.cache_bytes_for_fraction(Workload::CdnT.paper_cache_fraction(64.0));

    let mut points: Vec<Point> = Vec::new();
    for &shards in &shard_counts {
        let plan = ShardPlan::build(&trace, shards, seed);
        for kind in POLICIES {
            let reference = plan.reference(kind, cache_bytes);
            let cfg = DaemonConfig {
                shards,
                total_capacity: cache_bytes,
                queue_capacity: 4_096,
                worker_batch: 64,
                seed,
                ..DaemonConfig::default()
            };
            let daemon = Daemon::spawn(cfg, plan.factory(kind)).expect("spawn bench daemon");
            let start = Instant::now();
            feed(
                &daemon,
                &trace,
                FeedMode::FailFast {
                    push_timeout: Duration::from_secs(60),
                },
            );
            let final_stats = daemon.shutdown();
            let wall = start.elapsed().as_secs_f64().max(1e-9);
            // The bench is only meaningful if the daemon did the same
            // work as the reference — enforce exactness, don't assume it.
            for (shard, (snap, m)) in final_stats
                .shards
                .iter()
                .zip(&reference.per_shard)
                .enumerate()
            {
                if let Some(diff) = ledger_diff(shard, snap, m) {
                    eprintln!("FAIL: {} at {shards} shards: {diff}", kind.label());
                    std::process::exit(1);
                }
            }
            let daemon_rps = n as f64 / wall;
            let serial_rps = n as f64 / reference.wall_secs.max(1e-9);
            let point = Point {
                policy: kind.label(),
                shards,
                daemon_rps,
                serial_rps,
                speedup: (cores > 1).then(|| daemon_rps / serial_rps),
                aggregate_miss_ratio: reference.aggregate.miss_ratio(),
            };
            match point.speedup {
                Some(s) => eprintln!(
                    "shards {shards} [{}]: daemon {:.2} Mreq/s vs serial {:.2} Mreq/s ({s:.2}x)",
                    point.policy,
                    daemon_rps / 1e6,
                    serial_rps / 1e6
                ),
                None => eprintln!(
                    "shards {shards} [{}]: daemon {:.2} Mreq/s (single-core machine, \
                     daemon-vs-serial speedup suppressed; serial {:.2} Mreq/s)",
                    point.policy,
                    daemon_rps / 1e6,
                    serial_rps / 1e6
                ),
            }
            points.push(point);
        }
    }
    if cores == 1 {
        eprintln!(
            "daemon scaling: 1 core available — shard workers are time-sliced, \
             so no parallel speedup is claimed on this machine"
        );
    }

    let requested: Vec<String> = shard_counts.iter().map(|s| s.to_string()).collect();
    let note = if cores == 1 {
        "\"single-core runner: daemon speedup suppressed, not fabricated\""
    } else {
        "null"
    };
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"daemon_bench_v1\",\n");
    json.push_str(&format!("  \"requests\": {n},\n"));
    json.push_str(&format!("  \"seed\": {seed},\n"));
    json.push_str(&format!("  \"cache_bytes\": {cache_bytes},\n"));
    json.push_str("  \"shard_scaling\": {\n");
    json.push_str(&format!("    \"cores\": {cores},\n"));
    json.push_str(&format!(
        "    \"requested_shards\": [{}],\n",
        requested.join(", ")
    ));
    json.push_str(&format!("    \"note\": {note},\n"));
    json.push_str("    \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let speedup = p.speedup.map_or("null".to_string(), |s| format!("{s:.3}"));
        json.push_str(&format!(
            "      {{\"policy\": \"{}\", \"shards\": {}, \
             \"daemon_requests_per_sec\": {:.1}, \"serial_requests_per_sec\": {:.1}, \
             \"speedup_vs_serial\": {}, \"aggregate_miss_ratio\": {:.6}}}{}\n",
            p.policy,
            p.shards,
            p.daemon_rps,
            p.serial_rps,
            speedup,
            p.aggregate_miss_ratio,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    json.push_str("    ]\n  }\n}\n");

    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("error: failed to write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("{json}");
    eprintln!("wrote {out_path}");
}
