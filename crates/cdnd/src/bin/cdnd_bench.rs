//! Daemon serving-throughput bench: replay a CDN-T workload through the
//! supervised daemon at several shard counts and report requests/sec
//! end-to-end (submit → ring → worker → ledger), next to the library's
//! serial sharded-replay reference. Writes `BENCH_daemon.json` (schema
//! `daemon_bench_v3`) with one JSON row per (policy × shards) point so
//! `scripts/bench.sh --daemon` can gate regressions by grep.
//!
//! The v3 additions: every serving point records its client-observed
//! `availability` (gated at exactly 1.0 — a healthy daemon refuses
//! nothing), and an `admission` section runs a deterministic brownout
//! drill against a paused shard: classed submits walk the Low/Normal
//! watermarks and a deadline bound, every per-class accept/shed count
//! must land exactly on the configured watermark arithmetic, and the
//! drained daemon must serve every admitted request.
//!
//! The v2 `warm_restart` section measures the snapshot subsystem: a
//! daemon with snapshotting enabled serves the trace's first half and
//! drains (committing final epochs), a second daemon respawns over the
//! same snapshot directory, and we record the time until every shard
//! has restored plus the warm-vs-cold hit-ratio delta over the second
//! half. Policies without the resident-export seam (e.g. GDSF) get
//! their warm metrics suppressed (`null` + a note) — never fabricated.
//!
//! Single-core honesty (the PR 6 convention, extended here): when
//! `available_parallelism` is 1, the daemon-vs-serial speedup is
//! suppressed (`null`) and an explicit note plus the `requested_shards`
//! list is recorded — never a fabricated speedup from time-sliced
//! threads.
//!
//! Knobs: `CDND_BENCH_REQUESTS` (default 500k), `CDND_BENCH_SHARDS`
//! (comma-separated, default `1,2,4`), `CDND_BENCH_OUT` (output path).

use std::path::PathBuf;
use std::time::{Duration, Instant};

use cdn_sim::PolicyKind;
use cdn_trace::{TraceGenerator, TraceStats, Workload};
use cdnd::{
    feed, feed_batched, ledger_diff, Daemon, DaemonConfig, FeedMode, ShardPlan, SnapshotConfig,
};

const POLICIES: [PolicyKind; 2] = [PolicyKind::Lru, PolicyKind::Scip];

/// Warm-restart measurement policies: the last one lacks the
/// resident-export seam, pinning the suppressed-not-fabricated path.
const WARM_POLICIES: [PolicyKind; 3] = [PolicyKind::Lru, PolicyKind::Scip, PolicyKind::Gdsf];
const WARM_SHARDS: usize = 2;

fn env_u64(key: &str, fallback: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(fallback)
}

fn shard_counts_from_env() -> Vec<usize> {
    let raw = std::env::var("CDND_BENCH_SHARDS").unwrap_or_else(|_| "1,2,4".to_string());
    let counts: Vec<usize> = raw
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .filter(|&n| n > 0)
        .collect();
    if counts.is_empty() {
        vec![1, 2, 4]
    } else {
        counts
    }
}

struct Point {
    policy: &'static str,
    shards: usize,
    daemon_rps: f64,
    serial_rps: f64,
    /// `daemon rps / serial reference rps` — None on a single-core
    /// machine, where the comparison is scheduling noise.
    speedup: Option<f64>,
    aggregate_miss_ratio: f64,
    /// Client-observed availability: accepted / submitted. A healthy
    /// daemon must accept everything — gated at exactly 1.0.
    availability: f64,
}

/// One warm-restart measurement row. The warm fields are `None` for
/// policies without the resident-export seam.
struct WarmPoint {
    policy: &'static str,
    supported: bool,
    time_to_restore_ms: Option<f64>,
    restored_objects: u64,
    restored_bytes: u64,
    warm_hit_ratio: Option<f64>,
    cold_hit_ratio: f64,
}

fn aggregate_hit_ratio(stats: &cdnd::DaemonStats) -> f64 {
    let hits: u64 = stats.shards.iter().map(|s| s.hits).sum();
    let processed: u64 = stats.shards.iter().map(|s| s.processed).sum();
    hits as f64 / processed.max(1) as f64
}

/// Measure one policy's warm restart: serve `warmup` with snapshotting
/// on, drain (committing final epochs), respawn over the same directory,
/// time the restore, then serve `measure` and compare its hit ratio to a
/// cold daemon fed the same slice.
fn warm_point(
    kind: PolicyKind,
    warmup: &[cdn_cache::Request],
    measure: &[cdn_cache::Request],
    cache_bytes: u64,
    seed: u64,
    plan: &ShardPlan,
    dir: &std::path::Path,
) -> WarmPoint {
    let _ = std::fs::remove_dir_all(dir);
    let snap_cfg = DaemonConfig {
        shards: WARM_SHARDS,
        total_capacity: cache_bytes,
        queue_capacity: 4_096,
        worker_batch: 64,
        seed,
        snap: SnapshotConfig {
            interval: 1 << 40, // only the drain-final epochs
            keep: 1,
            dir: Some(dir.to_path_buf()),
        },
        ..DaemonConfig::default()
    };
    let mode = || FeedMode::FailFast {
        push_timeout: Duration::from_secs(60),
    };

    // Phase A: warm a daemon, drain it, leaving one epoch per shard.
    let daemon = Daemon::spawn(snap_cfg.clone(), plan.factory(kind)).expect("spawn warmup daemon");
    feed(&daemon, warmup, mode());
    let warm_stats = daemon.shutdown();
    let supported = warm_stats.shards.iter().any(|s| s.snapshots_written > 0);

    // Phase B: respawn over the same directory; the restore runs in each
    // worker's startup, so time-to-restore is spawn → every shard warm.
    let (restore_ms, restored_objects, restored_bytes, warm_hit_ratio) = if supported {
        let t0 = Instant::now();
        let daemon =
            Daemon::spawn(snap_cfg.clone(), plan.factory(kind)).expect("spawn warm daemon");
        let deadline = Instant::now() + Duration::from_secs(60);
        while daemon
            .stats()
            .shards
            .iter()
            .any(|s| s.restored_objects == 0)
        {
            assert!(
                Instant::now() < deadline,
                "{}: warm restore never completed",
                kind.label()
            );
            std::thread::sleep(Duration::from_micros(200));
        }
        let restore_ms = t0.elapsed().as_secs_f64() * 1e3;
        feed(&daemon, measure, mode());
        let stats = daemon.shutdown();
        (
            Some(restore_ms),
            stats.shards.iter().map(|s| s.restored_objects).sum(),
            stats.shards.iter().map(|s| s.restored_bytes).sum(),
            Some(aggregate_hit_ratio(&stats)),
        )
    } else {
        (None, 0, 0, None)
    };

    // Cold comparison: a fresh daemon (no snapshots) over the same slice.
    let cold_cfg = DaemonConfig {
        snap: SnapshotConfig::default(),
        ..snap_cfg
    };
    let daemon = Daemon::spawn(cold_cfg, plan.factory(kind)).expect("spawn cold daemon");
    feed(&daemon, measure, mode());
    let cold_hit_ratio = aggregate_hit_ratio(&daemon.shutdown());
    let _ = std::fs::remove_dir_all(dir);

    WarmPoint {
        policy: kind.label(),
        supported,
        time_to_restore_ms: restore_ms,
        restored_objects,
        restored_bytes,
        warm_hit_ratio,
        cold_hit_ratio,
    }
}

/// Outcome of the deterministic admission/brownout drill.
struct AdmitDrill {
    queue_capacity: usize,
    low_pct: u8,
    normal_pct: u8,
    accepted_low: u64,
    accepted_normal: u64,
    accepted_high: u64,
    shed_low: u64,
    shed_normal: u64,
    shed_high: u64,
    deadline_rejections: u64,
    drained_processed: u64,
    /// Every count landed exactly on the watermark arithmetic and the
    /// drained daemon served everything it admitted.
    exact: bool,
}

/// Brownout drill against a paused shard: classed submits walk the
/// Low/Normal watermarks and a deadline bound, synchronously, so every
/// accept/shed count is a pure function of the queue capacity and the
/// configured percentages — then the shard is resumed and must serve
/// every admitted request.
fn admission_drill(seed: u64) -> AdmitDrill {
    use cdn_cache::Request;
    use cdnd::{Admit, Priority, SubmitError};

    let q = 64usize;
    let admit = cdnd::AdmitConfig::default();
    let reqs: Vec<Request> = (0..4 * q as u64)
        .map(|i| Request::new(0, i, 1_000))
        .collect();
    let cfg = DaemonConfig {
        shards: 1,
        total_capacity: 1 << 20,
        queue_capacity: q,
        worker_batch: 8,
        seed,
        ..DaemonConfig::default()
    };
    let plan = ShardPlan::build(&reqs, 1, seed);
    let daemon = Daemon::spawn(cfg, plan.factory(PolicyKind::Lru)).expect("spawn drill daemon");
    daemon.pause_shard(0);

    let mut id = 0u64;
    let mut drill = |class: Priority, n: usize, deadline: Option<usize>| {
        let (mut ok, mut shed, mut dead) = (0u64, 0u64, 0u64);
        for _ in 0..n {
            let req = Request::new(0, id, 1_000);
            id += 1;
            match daemon.submit_classed(
                req,
                Admit {
                    class,
                    deadline_depth: deadline,
                },
                None,
            ) {
                Ok(_) => ok += 1,
                Err((_, SubmitError::Shed)) => shed += 1,
                Err((_, SubmitError::Deadline)) => dead += 1,
                Err((_, e)) => {
                    eprintln!("FAIL: admission drill: unexpected submit error {e:?}");
                    std::process::exit(1);
                }
            }
        }
        (ok, shed, dead)
    };

    // Low to its watermark, Normal on top of it, a too-tight deadline, a
    // loose deadline, then High to the full ring.
    let (low_ok, low_shed, _) = drill(Priority::Low, q, None);
    let (normal_ok, normal_shed, _) = drill(Priority::Normal, q, None);
    let (_, _, dead) = drill(Priority::High, 1, Some(40));
    let (loose_ok, _, _) = drill(Priority::High, 1, Some(q));
    let (high_ok, high_shed, _) = drill(Priority::High, q, None);
    let accepted_high = loose_ok + high_ok;

    daemon.resume_shard(0);
    let drained = daemon.await_quiesced(0, Duration::from_secs(60));
    let stats = daemon.shutdown();
    let s = &stats.shards[0];

    let exact = drained
        && (low_ok, low_shed) == (q as u64 / 2, q as u64 / 2)
        && (normal_ok, normal_shed) == (q as u64 / 4, 3 * q as u64 / 4)
        && dead == 1
        && (accepted_high, high_shed) == (q as u64 / 4, 3 * q as u64 / 4 + 1)
        && s.enqueued == q as u64
        && s.processed == q as u64
        && s.dropped_at_shutdown == 0
        && s.shed_low == low_shed
        && s.shed_normal == normal_shed
        && s.shed_high == high_shed
        && s.rejected_deadline == 1
        && s.shed == s.shed_low + s.shed_normal + s.shed_high;
    AdmitDrill {
        queue_capacity: q,
        low_pct: admit.low_watermark_pct,
        normal_pct: admit.normal_watermark_pct,
        accepted_low: low_ok,
        accepted_normal: normal_ok,
        accepted_high,
        shed_low: low_shed,
        shed_normal: normal_shed,
        shed_high: high_shed,
        deadline_rejections: dead,
        drained_processed: s.processed,
        exact,
    }
}

fn main() {
    let requests = env_u64("CDND_BENCH_REQUESTS", 500_000);
    let seed = cdn_sim::default_seed();
    let out_path =
        std::env::var("CDND_BENCH_OUT").unwrap_or_else(|_| "BENCH_daemon.json".to_string());
    let shard_counts = shard_counts_from_env();
    let cores = std::thread::available_parallelism()
        .map(|w| w.get())
        .unwrap_or(1);

    eprintln!("generating {requests} CDN-T requests (seed {seed})...");
    let trace = TraceGenerator::generate(Workload::CdnT.profile().config(requests, seed));
    let n = trace.len();
    let stats = TraceStats::compute(&trace);
    let cache_bytes = stats.cache_bytes_for_fraction(Workload::CdnT.paper_cache_fraction(64.0));

    let mut points: Vec<Point> = Vec::new();
    for &shards in &shard_counts {
        let plan = ShardPlan::build(&trace, shards, seed);
        for kind in POLICIES {
            let reference = plan.reference(kind, cache_bytes);
            let cfg = DaemonConfig {
                shards,
                total_capacity: cache_bytes,
                queue_capacity: 4_096,
                worker_batch: 64,
                seed,
                ..DaemonConfig::default()
            };
            let daemon = Daemon::spawn(cfg, plan.factory(kind)).expect("spawn bench daemon");
            let start = Instant::now();
            // Batched submit path: shard-homogeneous windows through one
            // ring-lock acquisition each, with per-request fallback. The
            // exactness checks below gate that it changes no ledger.
            let report = feed_batched(
                &daemon,
                &trace,
                FeedMode::FailFast {
                    push_timeout: Duration::from_secs(60),
                },
            );
            let final_stats = daemon.shutdown();
            if report.overall_availability() != 1.0 {
                eprintln!(
                    "FAIL: {} at {shards} shards: availability {:.6} < 1.0 on a \
                     healthy daemon",
                    kind.label(),
                    report.overall_availability()
                );
                std::process::exit(1);
            }
            let wall = start.elapsed().as_secs_f64().max(1e-9);
            // The bench is only meaningful if the daemon did the same
            // work as the reference — enforce exactness, don't assume it.
            for (shard, (snap, m)) in final_stats
                .shards
                .iter()
                .zip(&reference.per_shard)
                .enumerate()
            {
                if let Some(diff) = ledger_diff(shard, snap, m) {
                    eprintln!("FAIL: {} at {shards} shards: {diff}", kind.label());
                    std::process::exit(1);
                }
            }
            let daemon_rps = n as f64 / wall;
            let serial_rps = n as f64 / reference.wall_secs.max(1e-9);
            let point = Point {
                policy: kind.label(),
                shards,
                daemon_rps,
                serial_rps,
                speedup: (cores > 1).then(|| daemon_rps / serial_rps),
                aggregate_miss_ratio: reference.aggregate.miss_ratio(),
                availability: report.overall_availability(),
            };
            match point.speedup {
                Some(s) => eprintln!(
                    "shards {shards} [{}]: daemon {:.2} Mreq/s vs serial {:.2} Mreq/s ({s:.2}x)",
                    point.policy,
                    daemon_rps / 1e6,
                    serial_rps / 1e6
                ),
                None => eprintln!(
                    "shards {shards} [{}]: daemon {:.2} Mreq/s (single-core machine, \
                     daemon-vs-serial speedup suppressed; serial {:.2} Mreq/s)",
                    point.policy,
                    daemon_rps / 1e6,
                    serial_rps / 1e6
                ),
            }
            points.push(point);
        }
    }
    if cores == 1 {
        eprintln!(
            "daemon scaling: 1 core available — shard workers are time-sliced, \
             so no parallel speedup is claimed on this machine"
        );
    }

    // Warm-restart section: first half warms, second half measures.
    let half = n / 2;
    let warm_plan = ShardPlan::build(&trace, WARM_SHARDS, seed);
    let snap_dir: PathBuf =
        std::env::temp_dir().join(format!("cdnd-bench-snaps-{}", std::process::id()));
    let mut warm_points: Vec<WarmPoint> = Vec::new();
    for kind in WARM_POLICIES {
        let p = warm_point(
            kind,
            &trace[..half],
            &trace[half..],
            cache_bytes,
            seed,
            &warm_plan,
            &snap_dir,
        );
        match (p.time_to_restore_ms, p.warm_hit_ratio) {
            (Some(ms), Some(warm)) => eprintln!(
                "warm restart [{}]: restored {} objects in {ms:.1} ms, \
                 hit ratio {warm:.4} warm vs {:.4} cold ({:+.4})",
                p.policy,
                p.restored_objects,
                p.cold_hit_ratio,
                warm - p.cold_hit_ratio
            ),
            _ => eprintln!(
                "warm restart [{}]: resident export unsupported — warm metrics \
                 suppressed, not fabricated (cold hit ratio {:.4})",
                p.policy, p.cold_hit_ratio
            ),
        }
        warm_points.push(p);
    }

    // Admission/brownout drill: exact watermark arithmetic or bust.
    let drill = admission_drill(seed);
    eprintln!(
        "admission drill (q={} @ {}/{} %): accepted L/N/H {}/{}/{}, shed {}/{}/{}, \
         deadline {}, drained {} — {}",
        drill.queue_capacity,
        drill.low_pct,
        drill.normal_pct,
        drill.accepted_low,
        drill.accepted_normal,
        drill.accepted_high,
        drill.shed_low,
        drill.shed_normal,
        drill.shed_high,
        drill.deadline_rejections,
        drill.drained_processed,
        if drill.exact { "exact" } else { "MISMATCH" }
    );
    if !drill.exact {
        eprintln!("FAIL: admission drill counts diverged from the watermark arithmetic");
        std::process::exit(1);
    }

    let requested: Vec<String> = shard_counts.iter().map(|s| s.to_string()).collect();
    let note = if cores == 1 {
        "\"single-core runner: daemon speedup suppressed, not fabricated\""
    } else {
        "null"
    };
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"daemon_bench_v3\",\n");
    json.push_str(&format!("  \"requests\": {n},\n"));
    json.push_str(&format!("  \"seed\": {seed},\n"));
    json.push_str(&format!("  \"cache_bytes\": {cache_bytes},\n"));
    json.push_str("  \"shard_scaling\": {\n");
    json.push_str(&format!("    \"cores\": {cores},\n"));
    json.push_str(&format!(
        "    \"requested_shards\": [{}],\n",
        requested.join(", ")
    ));
    json.push_str(&format!("    \"note\": {note},\n"));
    json.push_str("    \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let speedup = p.speedup.map_or("null".to_string(), |s| format!("{s:.3}"));
        json.push_str(&format!(
            "      {{\"policy\": \"{}\", \"shards\": {}, \
             \"daemon_requests_per_sec\": {:.1}, \"serial_requests_per_sec\": {:.1}, \
             \"speedup_vs_serial\": {}, \"aggregate_miss_ratio\": {:.6}, \
             \"availability\": {:.6}}}{}\n",
            p.policy,
            p.shards,
            p.daemon_rps,
            p.serial_rps,
            speedup,
            p.aggregate_miss_ratio,
            p.availability,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    json.push_str("    ]\n  },\n");
    json.push_str("  \"warm_restart\": {\n");
    json.push_str(&format!("    \"shards\": {WARM_SHARDS},\n"));
    json.push_str(&format!("    \"warmup_requests\": {half},\n"));
    json.push_str(&format!("    \"measure_requests\": {},\n", n - half));
    json.push_str("    \"points\": [\n");
    for (i, p) in warm_points.iter().enumerate() {
        let fmt_opt = |v: Option<f64>, digits: usize| {
            v.map_or("null".to_string(), |x| format!("{x:.digits$}"))
        };
        let delta = match p.warm_hit_ratio {
            Some(w) => format!("{:.6}", w - p.cold_hit_ratio),
            None => "null".to_string(),
        };
        let note = if p.supported {
            "null".to_string()
        } else {
            "\"resident export unsupported; warm metrics suppressed, not fabricated\"".to_string()
        };
        json.push_str(&format!(
            "      {{\"policy\": \"{}\", \"supported\": {}, \
             \"time_to_restore_ms\": {}, \"restored_objects\": {}, \
             \"restored_bytes\": {}, \"warm_hit_ratio\": {}, \
             \"cold_hit_ratio\": {:.6}, \"hit_ratio_delta\": {}, \"note\": {}}}{}\n",
            p.policy,
            p.supported,
            fmt_opt(p.time_to_restore_ms, 3),
            p.restored_objects,
            p.restored_bytes,
            fmt_opt(p.warm_hit_ratio, 6),
            p.cold_hit_ratio,
            delta,
            note,
            if i + 1 < warm_points.len() { "," } else { "" }
        ));
    }
    json.push_str("    ]\n  },\n");
    json.push_str("  \"admission\": {\n");
    json.push_str(&format!(
        "    \"queue_capacity\": {},\n    \"low_watermark_pct\": {},\n    \
         \"normal_watermark_pct\": {},\n",
        drill.queue_capacity, drill.low_pct, drill.normal_pct
    ));
    json.push_str(&format!(
        "    \"accepted\": {{\"low\": {}, \"normal\": {}, \"high\": {}}},\n",
        drill.accepted_low, drill.accepted_normal, drill.accepted_high
    ));
    json.push_str(&format!(
        "    \"shed\": {{\"low\": {}, \"normal\": {}, \"high\": {}}},\n",
        drill.shed_low, drill.shed_normal, drill.shed_high
    ));
    json.push_str(&format!(
        "    \"deadline_rejections\": {},\n    \"drained_processed\": {},\n    \
         \"exact\": {}\n",
        drill.deadline_rejections, drill.drained_processed, drill.exact
    ));
    json.push_str("  }\n}\n");

    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("error: failed to write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("{json}");
    eprintln!("wrote {out_path}");
}
