//! Deterministic in-process client harness.
//!
//! Drives a [`Daemon`] with a `cdn-trace` workload from a single client
//! thread (so per-shard arrival order equals trace order), keeps an
//! independent client-side tally of every submit outcome, and tracks
//! per-shard outage windows for availability accounting. The harness is
//! what `cdnd_chaos`, the daemon tests and the supervision proptest all
//! build on, so its accounting rules are worth stating precisely:
//!
//! - A shard's **outage window** is the half-open interval from the first
//!   [`SubmitError::Down`] rejection *or* failover-served request after a
//!   crash to the first subsequent submit served on that shard as
//!   primary. A request is *inside* an outage when, after its own outcome
//!   is applied, at least one shard is marked down.
//! - **Availability** is accepted/submitted over a region (inside
//!   windows, outside windows, overall). The chaos gates require 100 %
//!   outside all windows and a floor inside them.
//! - **Exactness**: a surviving (never-crashed) shard's daemon ledger
//!   must equal the corresponding [`RunMeasurement`] from
//!   [`cdn_sim::run_sharded_serial`] u64-for-u64 — same capacity split,
//!   same local tick assignment, same per-shard replay context.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cdn_cache::{Request, Tick};
use cdn_sim::{
    BatchMode, PolicyKind, RoutedShardLedger, RunMeasurement, ShardedRunReport, TraceCtx,
};
use cdn_trace::{partition_columns, ShardedTrace, TraceColumns};
use tdc::SwitchableScip;

use crate::daemon::{Accepted, Daemon, PolicyFactory, ShardPolicy, ShardSnapshot, SubmitError};
use crate::route::Admit;

/// A workload pre-partitioned exactly like the library's sharded replay:
/// the partition, the per-shard localized replay contexts, and the
/// original request stream in trace order.
pub struct ShardPlan {
    /// Order-preserving key partition ([`cdn_trace::partition_columns`]).
    pub sharded: ShardedTrace,
    /// Per-shard replay contexts over the *localized* (re-ticked 0..len)
    /// shard streams — identical to what `run_sharded_serial` builds, so
    /// context-sensitive policies (SCIP's update interval, Belady's
    /// next-access table) behave identically in the daemon.
    pub ctxs: Vec<TraceCtx>,
    /// Full stream in trace order (what the client submits).
    pub requests: Vec<Request>,
    /// Seed the contexts were built with.
    pub seed: u64,
}

impl ShardPlan {
    /// Partition `requests` into `shards` and build each shard's replay
    /// context the same way `cdn_sim::shard::localized_shards` does.
    pub fn build(requests: &[Request], shards: usize, seed: u64) -> ShardPlan {
        let cols = TraceColumns::from_requests(requests);
        let sharded = partition_columns(&cols, shards);
        let ctxs = sharded
            .shards
            .iter()
            .map(|cols| {
                let mut local = cols.clone();
                for (i, t) in local.ticks.iter_mut().enumerate() {
                    *t = i as u64;
                }
                TraceCtx::new(&local.to_requests(), seed)
            })
            .collect();
        ShardPlan {
            sharded,
            ctxs,
            requests: requests.to_vec(),
            seed,
        }
    }

    /// Requests routed to `shard`.
    pub fn shard_len(&self, shard: usize) -> usize {
        self.sharded.shards[shard].len()
    }

    /// The shard with the fewest requests — the chaos schedule kills this
    /// one so the availability floor has maximum headroom regardless of
    /// how the trace's keys happen to balance.
    pub fn min_share_shard(&self) -> usize {
        (0..self.sharded.shard_count())
            .min_by_key(|s| self.sharded.shards[*s].len())
            .expect("ShardPlan: no shards")
    }

    /// The serial reference decomposition for this plan: per-shard
    /// ledgers the daemon must reproduce exactly on surviving shards.
    pub fn reference(&self, kind: PolicyKind, total_capacity: u64) -> ShardedRunReport {
        cdn_sim::run_sharded_serial(
            kind,
            total_capacity,
            &self.sharded,
            self.seed,
            BatchMode::Off,
        )
    }

    /// A [`PolicyFactory`] building `kind` with this plan's per-shard
    /// contexts — the daemon-side mirror of the reference replay. Fresh
    /// instances on every (re)start, constructed on the worker thread.
    pub fn factory(&self, kind: PolicyKind) -> PolicyFactory {
        let ctxs: Arc<Vec<TraceCtx>> = Arc::new(self.ctxs.clone());
        Arc::new(move |shard, capacity| ShardPolicy::Plain(kind.build(capacity, &ctxs[shard])))
    }
}

/// A [`PolicyFactory`] for out-of-core drills: builds `kind` with an
/// oracle-free [`TraceCtx`] (requests-count hint + seed only), so no
/// per-shard context — and therefore no in-RAM copy of the trace — is
/// ever materialized. Every policy except Belady accepts it.
pub fn oracle_free_factory(kind: PolicyKind, requests: u64, seed: u64) -> PolicyFactory {
    Arc::new(move |_shard, capacity| {
        let ctx = TraceCtx::without_oracle(requests, seed);
        ShardPolicy::Plain(kind.build(capacity, &ctx))
    })
}

/// A [`PolicyFactory`] building the live-switchable LRU→SCIP node from
/// `tdc::switchable` on every shard, deploying SCIP at shard-local tick
/// `deploy_at` (use [`Tick::MAX`] for "LRU until told otherwise" and
/// [`Daemon::switch_policy_at`] to flip it live).
pub fn switchable_factory(deploy_at: Tick, seed: u64) -> PolicyFactory {
    Arc::new(move |_shard, capacity| {
        ShardPolicy::Switchable(Box::new(SwitchableScip::new(capacity, deploy_at, seed)))
    })
}

/// How the client reacts to submit failures.
#[derive(Debug, Clone, Copy)]
pub enum FeedMode {
    /// Backpressure on full rings (block up to `push_timeout`), but a
    /// down shard fails fast: the rejection is tallied and the client
    /// moves on. This is the availability-measuring mode — rejections
    /// are the outage signal.
    FailFast {
        /// How long to wait for ring space before shedding.
        push_timeout: Duration,
    },
    /// Retry `Down` / `Shed` until accepted or `give_up`
    /// elapses for that request. This is the exactness-measuring mode:
    /// every request (except crash-lost ones) eventually reaches its
    /// shard in trace order, so surviving-shard ledgers are comparable
    /// to the serial reference.
    AwaitRecovery {
        /// How long to wait for ring space per attempt.
        push_timeout: Duration,
        /// Sleep between retries of a down shard.
        retry: Duration,
        /// Per-request retry budget.
        give_up: Duration,
    },
}

/// Client-side tally of submit outcomes for one shard. Cross-checkable
/// against [`ShardSnapshot`]: `accepted == enqueued` always, and in
/// [`FeedMode::FailFast`] `shed`/`rejected_down`/`faulted` match the
/// daemon counters one-for-one (each request is attempted exactly once).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientTally {
    /// Requests whose final outcome (accept or refusal) landed on this
    /// shard — with failover routing, the serving shard, not the primary.
    pub submitted: u64,
    /// Accepted into the shard's ring.
    pub accepted: u64,
    /// Accepted as failover overlay (this shard served for a down
    /// primary).
    pub failover_accepted: u64,
    /// Final `Shed` outcomes.
    pub shed: u64,
    /// Final `Down` outcomes.
    pub rejected_down: u64,
    /// Final `Deadline` outcomes.
    pub deadline: u64,
    /// Final `Faulted` outcomes (injected enqueue faults).
    pub faulted: u64,
    /// Final `ShuttingDown` outcomes.
    pub shutting_down: u64,
}

/// What the client observed while feeding a stream.
#[derive(Debug, Clone)]
pub struct FeedReport {
    /// Per-shard tallies, indexed by shard id.
    pub per_shard: Vec<ClientTally>,
    /// Requests classified inside an outage window.
    pub inside_total: u64,
    /// Accepted requests inside outage windows.
    pub inside_accepted: u64,
    /// Requests classified outside all outage windows.
    pub outside_total: u64,
    /// Accepted requests outside all outage windows.
    pub outside_accepted: u64,
    /// Down transitions observed (one per outage window opened).
    pub outage_windows: u64,
    /// Requests accepted on a failover secondary (their primary was
    /// down). These count toward availability — answered, degraded.
    pub failover_accepted: u64,
}

impl FeedReport {
    /// Accepted / submitted over the whole stream.
    pub fn overall_availability(&self) -> f64 {
        let total = self.inside_total + self.outside_total;
        if total == 0 {
            return 1.0;
        }
        (self.inside_accepted + self.outside_accepted) as f64 / total as f64
    }

    /// Accepted / submitted inside outage windows (1.0 when none).
    pub fn inside_availability(&self) -> f64 {
        if self.inside_total == 0 {
            return 1.0;
        }
        self.inside_accepted as f64 / self.inside_total as f64
    }

    /// Accepted / submitted outside outage windows (1.0 when none).
    pub fn outside_availability(&self) -> f64 {
        if self.outside_total == 0 {
            return 1.0;
        }
        self.outside_accepted as f64 / self.outside_total as f64
    }

    /// Total accepted across shards.
    pub fn total_accepted(&self) -> u64 {
        self.per_shard.iter().map(|t| t.accepted).sum()
    }

    /// Cross-check the client tally against the daemon's own counters.
    /// `strict_rejections` additionally requires shed / rejected-down /
    /// faulted counts to match one-for-one (valid in
    /// [`FeedMode::FailFast`], where each request is attempted exactly
    /// once; retry modes re-attempt, so daemon rejection counters run
    /// higher than final client outcomes).
    pub fn check_against(
        &self,
        shards: &[ShardSnapshot],
        strict_rejections: bool,
    ) -> Result<(), String> {
        if shards.len() != self.per_shard.len() {
            return Err(format!(
                "shard count mismatch: client {} vs daemon {}",
                self.per_shard.len(),
                shards.len()
            ));
        }
        for (i, (tally, snap)) in self.per_shard.iter().zip(shards).enumerate() {
            if tally.accepted != snap.enqueued {
                return Err(format!(
                    "shard {i}: client accepted {} != daemon enqueued {}",
                    tally.accepted, snap.enqueued
                ));
            }
            if tally.failover_accepted != snap.failover_in {
                return Err(format!(
                    "shard {i}: client failover-accepted {} != daemon failover-in {}",
                    tally.failover_accepted, snap.failover_in
                ));
            }
            if strict_rejections {
                if tally.shed != snap.shed {
                    return Err(format!(
                        "shard {i}: client shed {} != daemon shed {}",
                        tally.shed, snap.shed
                    ));
                }
                if tally.rejected_down != snap.rejected_down {
                    return Err(format!(
                        "shard {i}: client rejected-down {} != daemon {}",
                        tally.rejected_down, snap.rejected_down
                    ));
                }
                if tally.deadline != snap.rejected_deadline {
                    return Err(format!(
                        "shard {i}: client deadline {} != daemon {}",
                        tally.deadline, snap.rejected_deadline
                    ));
                }
                if tally.faulted != snap.faulted_enqueues {
                    return Err(format!(
                        "shard {i}: client faulted {} != daemon {}",
                        tally.faulted, snap.faulted_enqueues
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Requests per grouping window in [`feed_batched`]: big enough that
/// per-shard runs amortize the ring lock, small enough that cross-shard
/// reordering stays local (per-shard order is always exact).
pub const FEED_WINDOW: usize = 1024;

/// The accounting core every feed variant shares: per-shard tallies, the
/// client-side down-set and the inside/outside outage classification.
/// One instance per feed; the variants differ only in how requests reach
/// [`FeedState::submit_one`] / [`FeedState::submit_window`].
struct FeedState {
    report: FeedReport,
    down: Vec<bool>,
}

impl FeedState {
    fn new(shards: usize) -> FeedState {
        FeedState {
            report: FeedReport {
                per_shard: vec![ClientTally::default(); shards],
                inside_total: 0,
                inside_accepted: 0,
                outside_total: 0,
                outside_accepted: 0,
                outage_windows: 0,
                failover_accepted: 0,
            },
            down: vec![false; shards],
        }
    }

    /// Apply one submit outcome to the tallies and the outage windows.
    /// A failover accept and a Down rejection both signal the primary is
    /// down (window opens); a request served on its own primary signals
    /// that shard up (window closes). Inside/outside is judged *after*
    /// applying the outcome, so the first rejection of a window counts
    /// inside it and the accept that closes the window counts outside
    /// (half-open interval).
    fn apply(&mut self, primary: usize, outcome: Result<Accepted, (usize, SubmitError)>) {
        let accepted = match outcome {
            Ok(acc) => {
                let tally = &mut self.report.per_shard[acc.shard];
                tally.submitted += 1;
                tally.accepted += 1;
                if acc.failover {
                    tally.failover_accepted += 1;
                    self.report.failover_accepted += 1;
                    if !self.down[primary] {
                        self.down[primary] = true;
                        self.report.outage_windows += 1;
                    }
                } else {
                    self.down[acc.shard] = false;
                }
                true
            }
            Err((shard, e)) => {
                let tally = &mut self.report.per_shard[shard];
                tally.submitted += 1;
                match e {
                    SubmitError::Down => {
                        tally.rejected_down += 1;
                        if !self.down[shard] {
                            self.down[shard] = true;
                            self.report.outage_windows += 1;
                        }
                    }
                    SubmitError::Shed => tally.shed += 1,
                    SubmitError::Deadline => tally.deadline += 1,
                    SubmitError::Faulted => tally.faulted += 1,
                    SubmitError::ShuttingDown => tally.shutting_down += 1,
                }
                false
            }
        };
        if self.down.iter().any(|d| *d) {
            self.report.inside_total += 1;
            if accepted {
                self.report.inside_accepted += 1;
            }
        } else {
            self.report.outside_total += 1;
            if accepted {
                self.report.outside_accepted += 1;
            }
        }
    }

    /// Submit one request through the per-request path.
    fn submit_one(&mut self, daemon: &Daemon, req: Request, mode: FeedMode) {
        let primary = daemon.route(req.id.0);
        let outcome = submit_with_mode(daemon, req, mode);
        self.apply(primary, outcome);
    }

    /// Submit a window of requests, batching each shard-homogeneous
    /// group through [`Daemon::submit_batch`] and falling back to the
    /// per-request path for whatever the fast path refused. Per-shard
    /// submission order equals trace order (the exactness contract);
    /// only the interleaving *across* shards changes, which no ledger
    /// observes.
    fn submit_window(&mut self, daemon: &Daemon, window: &[Request], mode: FeedMode) {
        let n = daemon.shard_count();
        let mut groups: Vec<VecDeque<Request>> = vec![VecDeque::new(); n];
        for req in window {
            groups[daemon.route(req.id.0)].push_back(*req);
        }
        let wait = match mode {
            FeedMode::FailFast { push_timeout } => push_timeout,
            FeedMode::AwaitRecovery { push_timeout, .. } => push_timeout,
        };
        for (shard, mut group) in groups.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            // A refused whole batch (daemon draining) pushes nothing and
            // falls through to the per-request path, which tallies the cause.
            let pushed = daemon
                .submit_batch(shard, &mut group, Some(wait))
                .unwrap_or(0);
            for _ in 0..pushed {
                self.apply(
                    shard,
                    Ok(Accepted {
                        shard,
                        failover: false,
                    }),
                );
            }
            for req in group {
                self.submit_one(daemon, req, mode);
            }
        }
    }
}

/// Feed `requests` (trace order) into `daemon` from the calling thread,
/// at default admission (`High`, no deadline).
pub fn feed(daemon: &Daemon, requests: &[Request], mode: FeedMode) -> FeedReport {
    let mut state = FeedState::new(daemon.shard_count());
    for req in requests {
        state.submit_one(daemon, *req, mode);
    }
    state.report
}

/// Like [`feed`], but submits [`FEED_WINDOW`]-request windows through
/// the batched fast path ([`Daemon::submit_batch`], one ring-lock
/// acquisition per shard run) with per-request fallback for anything the
/// fast path refuses. Per-shard arrival order still equals trace order,
/// so surviving-shard ledgers stay comparable to the serial reference
/// and [`FeedReport::check_against`] holds exactly.
pub fn feed_batched(daemon: &Daemon, requests: &[Request], mode: FeedMode) -> FeedReport {
    let mut state = FeedState::new(daemon.shard_count());
    for window in requests.chunks(FEED_WINDOW) {
        state.submit_window(daemon, window, mode);
    }
    state.report
}

/// Feed an out-of-core chunk stream (e.g. [`cdn_trace::StreamingTrace`])
/// into `daemon`, one batched window per chunk, without ever holding the
/// whole trace in RAM. The first stream error aborts the feed and is
/// returned — everything submitted before it has already reached the
/// daemon (no partial report is fabricated for a broken trace).
pub fn feed_stream<I, E>(daemon: &Daemon, chunks: I, mode: FeedMode) -> Result<FeedReport, E>
where
    I: IntoIterator<Item = Result<TraceColumns, E>>,
{
    let mut state = FeedState::new(daemon.shard_count());
    for chunk in chunks {
        let chunk = chunk?;
        for window_start in (0..chunk.len()).step_by(FEED_WINDOW) {
            let window_end = (window_start + FEED_WINDOW).min(chunk.len());
            let window: Vec<Request> = (window_start..window_end).map(|i| chunk.get(i)).collect();
            state.submit_window(daemon, &window, mode);
        }
    }
    Ok(state.report)
}

fn submit_with_mode(
    daemon: &Daemon,
    req: Request,
    mode: FeedMode,
) -> Result<Accepted, (usize, SubmitError)> {
    match mode {
        FeedMode::FailFast { push_timeout } => {
            daemon.submit_classed(req, Admit::default(), Some(push_timeout))
        }
        FeedMode::AwaitRecovery {
            push_timeout,
            retry,
            give_up,
        } => {
            let deadline = Instant::now() + give_up;
            loop {
                match daemon.submit_classed(req, Admit::default(), Some(push_timeout)) {
                    Err((shard, e @ (SubmitError::Down | SubmitError::Shed))) => {
                        if Instant::now() >= deadline {
                            return Err((shard, e));
                        }
                        std::thread::sleep(retry);
                    }
                    other => return other,
                }
            }
        }
    }
}

/// Does a daemon shard ledger equal a reference [`RunMeasurement`]
/// exactly?
pub fn ledger_matches(snap: &ShardSnapshot, reference: &RunMeasurement) -> bool {
    snap.hits == reference.hits
        && snap.misses == reference.misses
        && snap.hit_bytes == reference.hit_bytes
        && snap.miss_bytes == reference.miss_bytes
}

/// Human-readable diff of a daemon shard ledger against the reference
/// (None when exact).
pub fn ledger_diff(
    shard: usize,
    snap: &ShardSnapshot,
    reference: &RunMeasurement,
) -> Option<String> {
    if ledger_matches(snap, reference) {
        return None;
    }
    Some(format!(
        "shard {shard}: daemon (hits {}, misses {}, hit_bytes {}, miss_bytes {}) \
         != reference (hits {}, misses {}, hit_bytes {}, miss_bytes {})",
        snap.hits,
        snap.misses,
        snap.hit_bytes,
        snap.miss_bytes,
        reference.hits,
        reference.misses,
        reference.hit_bytes,
        reference.miss_bytes
    ))
}

/// Does a daemon shard ledger equal a routing-aware reference
/// [`RoutedShardLedger`] exactly — including the work it absorbed as a
/// failover secondary and the requests it lost to its own crashes?
pub fn routed_ledger_matches(snap: &ShardSnapshot, reference: &RoutedShardLedger) -> bool {
    snap.processed == reference.processed
        && snap.lost == reference.lost
        && snap.hits == reference.hits
        && snap.misses == reference.misses
        && snap.hit_bytes == reference.hit_bytes
        && snap.miss_bytes == reference.miss_bytes
        && snap.failover_in == reference.failover_in
}

/// Human-readable diff of a daemon shard ledger against the routed
/// reference (None when exact).
pub fn routed_ledger_diff(
    shard: usize,
    snap: &ShardSnapshot,
    reference: &RoutedShardLedger,
) -> Option<String> {
    if routed_ledger_matches(snap, reference) {
        return None;
    }
    Some(format!(
        "shard {shard}: daemon (processed {}, lost {}, hits {}, misses {}, \
         hit_bytes {}, miss_bytes {}, failover_in {}) \
         != routed reference (processed {}, lost {}, hits {}, misses {}, \
         hit_bytes {}, miss_bytes {}, failover_in {})",
        snap.processed,
        snap.lost,
        snap.hits,
        snap.misses,
        snap.hit_bytes,
        snap.miss_bytes,
        snap.failover_in,
        reference.processed,
        reference.lost,
        reference.hits,
        reference.misses,
        reference.hit_bytes,
        reference.miss_bytes,
        reference.failover_in
    ))
}
