//! Resilient request routing and admission classes.
//!
//! The router answers one question per submit: *which shard serves this
//! key right now?* While every shard is up the answer is the static
//! [`cdn_cache::key_shard`] primary, bit-identical to routing disabled.
//! When the primary is down (Backoff or Storm-Open), the router walks the
//! key's rendezvous order ([`cdn_cache::route_with_failover`] — the same
//! highest-random-weight seam `tdc`'s origin cluster uses) and serves the
//! request on the first live secondary as an **overlay miss**: the
//! secondary's cache has never seen the key, so the first touch misses
//! and the object becomes ordinary resident state there. On revival the
//! decision function flips back to the primary by itself (it is pure in
//! `(key, down-set)`), and the overlay residue on the secondary simply
//! ages out of its LRU/SCIP queues — no invalidation traffic, no state to
//! reconcile (DESIGN.md §18).
//!
//! Admission ([`Priority`], [`crate::AdmitConfig`]) decides whether the
//! routed shard may take the request at its current queue depth: each
//! class owns a depth watermark (brownout sheds `Low` first, then
//! `Normal`; `High` rides to the full ring bound), and a request may
//! carry a per-request deadline expressed as the deepest queue it is
//! willing to stand in ([`Admit::deadline_depth`] — the deterministic
//! proxy for a latency SLO). Every refusal is counted under exactly one
//! cause: `Shed` (class watermark), `Deadline` (request's own bound),
//! `Down` (no live shard), or `Faulted` (injected transport fault).

use cdn_cache::route_with_failover;

/// Failpoint site evaluated once per routed submit (only when failover
/// routing is enabled), keyed by [`route_fault_key`]. An armed `Error`
/// action makes the router treat the key's primary shard as down for
/// this one decision, forcing a failover re-route without crashing
/// anything — the router runs on the client thread, so `Panic` actions
/// are not honored here.
pub const FP_ROUTE: &str = "cdnd.route";

/// Failpoint key for [`FP_ROUTE`]: primary shard in the top 16 bits, the
/// daemon-wide submit ordinal (the router's tick) in the low 48.
pub fn route_fault_key(primary: usize, seq: u64) -> u64 {
    ((primary as u64) << 48) | (seq & 0x0000_FFFF_FFFF_FFFF)
}

/// Admission priority class. Brownout mode sheds the lowest class first:
/// `Low` stops admitting at the low watermark, `Normal` at the normal
/// watermark, `High` only at the full ring capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Best-effort traffic (prefetch, revalidation) — first to brown out.
    Low,
    /// Ordinary traffic.
    Normal,
    /// Must-serve traffic — admitted up to the hard ring bound.
    High,
}

impl Priority {
    /// All classes, lowest first.
    pub const ALL: [Priority; 3] = [Priority::Low, Priority::Normal, Priority::High];

    /// Stable lowercase name (stats tables, JSON).
    pub fn as_str(&self) -> &'static str {
        match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
        }
    }
}

/// Per-request admission parameters. The default (`High`, no deadline)
/// reproduces the pre-admission daemon exactly: admitted to the full
/// ring bound, shed only when the ring is hard-full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Admit {
    /// Priority class (selects the brownout watermark).
    pub class: Priority,
    /// Deepest queue this request will stand in: admission refuses with
    /// `Deadline` when the routed shard's depth has reached this bound.
    /// `None` means no per-request deadline.
    pub deadline_depth: Option<usize>,
}

impl Default for Admit {
    fn default() -> Self {
        Admit {
            class: Priority::High,
            deadline_depth: None,
        }
    }
}

/// Point-in-time health of one shard as the router sees it: supervision
/// state plus queue pressure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardHealth {
    /// Is the worker serving (breaker Closed)?
    pub up: bool,
    /// Requests currently queued.
    pub depth: usize,
    /// Ring capacity (the hard admission bound).
    pub queue_capacity: usize,
}

impl ShardHealth {
    /// Queue pressure in `[0, 1]` (depth over capacity).
    pub fn pressure(&self) -> f64 {
        self.depth as f64 / self.queue_capacity.max(1) as f64
    }
}

/// One routing decision: the shard that will serve the request and the
/// static primary it would have gone to with everything up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteDecision {
    /// Shard chosen to serve the request.
    pub shard: usize,
    /// The key's static [`cdn_cache::key_shard`] home.
    pub primary: usize,
}

impl RouteDecision {
    /// Did the router divert away from the primary?
    pub fn is_failover(&self) -> bool {
        self.shard != self.primary
    }
}

/// Pure routing decision over a health view: primary while up, first
/// rendezvous-ordered live secondary while down, `None` when every shard
/// is down. `force_primary_down` additionally treats the primary as down
/// (the [`FP_ROUTE`] failpoint's hook).
pub fn decide(
    key: u64,
    primary: usize,
    health: &[ShardHealth],
    force_primary_down: bool,
) -> Option<RouteDecision> {
    let shard = route_with_failover(key, health.len(), |s| {
        !health[s].up || (force_primary_down && s == primary)
    })?;
    Some(RouteDecision { shard, primary })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdn_cache::key_shard;

    fn health(up: &[bool]) -> Vec<ShardHealth> {
        up.iter()
            .map(|&u| ShardHealth {
                up: u,
                depth: 0,
                queue_capacity: 64,
            })
            .collect()
    }

    #[test]
    fn primary_wins_while_up() {
        let h = health(&[true, true, true, true]);
        for key in 0..500u64 {
            let primary = key_shard(key, 4);
            let d = decide(key, primary, &h, false).unwrap();
            assert_eq!(d.shard, primary);
            assert!(!d.is_failover());
        }
    }

    #[test]
    fn downed_primary_diverts_and_revival_flips_back() {
        for key in 0..500u64 {
            let primary = key_shard(key, 4);
            let mut up = [true; 4];
            up[primary] = false;
            let d = decide(key, primary, &health(&up), false).unwrap();
            assert!(d.is_failover());
            assert_ne!(d.shard, primary);
            // Revival: the pure function flips back with no state.
            let back = decide(key, primary, &health(&[true; 4]), false).unwrap();
            assert_eq!(back.shard, primary);
        }
    }

    #[test]
    fn force_primary_down_mirrors_real_outage() {
        for key in 0..500u64 {
            let primary = key_shard(key, 4);
            let mut up = [true; 4];
            up[primary] = false;
            let real = decide(key, primary, &health(&up), false).unwrap();
            let forced = decide(key, primary, &health(&[true; 4]), true).unwrap();
            assert_eq!(real.shard, forced.shard);
        }
    }

    #[test]
    fn all_down_is_unroutable() {
        assert_eq!(
            decide(7, key_shard(7, 2), &health(&[false, false]), false),
            None
        );
    }

    #[test]
    fn route_fault_key_packs_shard_and_seq() {
        assert_eq!(route_fault_key(0, 0), 0);
        assert_eq!(route_fault_key(3, 5), (3u64 << 48) | 5);
        // Seq overflow cannot bleed into the shard bits.
        assert_eq!(route_fault_key(1, u64::MAX) >> 48, 1);
    }

    #[test]
    fn priority_order_and_names() {
        assert!(Priority::Low < Priority::Normal);
        assert!(Priority::Normal < Priority::High);
        assert_eq!(Priority::ALL.map(|p| p.as_str()), ["low", "normal", "high"]);
        assert_eq!(Admit::default().class, Priority::High);
        assert_eq!(Admit::default().deadline_depth, None);
    }

    #[test]
    fn pressure_is_depth_over_capacity() {
        let h = ShardHealth {
            up: true,
            depth: 16,
            queue_capacity: 64,
        };
        assert!((h.pressure() - 0.25).abs() < 1e-12);
    }
}
