//! Drive a policy over a trace and collect metrics.

use cdn_cache::{CachePolicy, MetricsRecorder, MissRatio, Request};

/// Replay a trace through a policy, returning cumulative metrics.
pub fn replay(policy: &mut dyn CachePolicy, trace: &[Request]) -> MissRatio {
    let mut m = MissRatio::new();
    for r in trace {
        if policy.on_request(r).is_hit() {
            m.record_hit(r.size);
        } else {
            m.record_miss(r.size);
        }
    }
    m
}

/// Replay with interval snapshots every `interval` requests (time-series
/// figures).
pub fn replay_with_recorder(
    policy: &mut dyn CachePolicy,
    trace: &[Request],
    interval: u64,
) -> MetricsRecorder {
    let mut rec = MetricsRecorder::new(interval);
    for r in trace {
        let hit = policy.on_request(r).is_hit();
        rec.record(r.tick, r.size, hit);
    }
    rec.finish(trace.last().map_or(0, |r| r.tick + 1));
    rec
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insertion::{deciders::Mip, InsertionCache};
    use cdn_cache::object::micro_trace;

    #[test]
    fn replay_counts_hits() {
        let t = micro_trace(&[(1, 1), (1, 1), (2, 1), (1, 1)]);
        let mut p = InsertionCache::new(Mip, 10, "LRU");
        let m = replay(&mut p, &t);
        assert_eq!(m.hits(), 2);
        assert_eq!(m.misses(), 2);
    }

    #[test]
    fn recorder_snapshots() {
        let t = micro_trace(&[(1, 1), (1, 1), (2, 1), (1, 1)]);
        let mut p = InsertionCache::new(Mip, 10, "LRU");
        let rec = replay_with_recorder(&mut p, &t, 2);
        assert_eq!(rec.snapshots().len(), 2);
        assert_eq!(rec.totals().hits(), 2);
    }
}
