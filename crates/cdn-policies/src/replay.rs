//! Drive a policy over a trace and collect metrics.
//!
//! The replay loops are generic over `P: CachePolicy + ?Sized`: called
//! with a concrete policy type they monomorphize — the per-request
//! virtual call and its inlining barrier disappear, which is what the
//! sweep's hot paths use — while `&mut dyn CachePolicy` still works
//! unchanged (and the `*_dyn` wrappers pin that reference path down for
//! equivalence testing). Both the interleaved `&[Request]` and the
//! structure-of-arrays [`TraceColumns`] layouts are supported; they
//! produce bit-identical metrics.

use cdn_cache::{CachePolicy, MetricsRecorder, MissRatio, Request};
use cdn_trace::TraceColumns;

/// Replay a trace through a policy, returning cumulative metrics.
pub fn replay<P: CachePolicy + ?Sized>(policy: &mut P, trace: &[Request]) -> MissRatio {
    replay_iter(policy, trace.iter().copied())
}

/// Replay a structure-of-arrays trace (same metrics as [`replay`]).
pub fn replay_columns<P: CachePolicy + ?Sized>(policy: &mut P, trace: &TraceColumns) -> MissRatio {
    replay_iter(policy, trace.iter())
}

fn replay_iter<P: CachePolicy + ?Sized>(
    policy: &mut P,
    requests: impl Iterator<Item = Request>,
) -> MissRatio {
    let mut m = MissRatio::new();
    for r in requests {
        if policy.on_request(&r).is_hit() {
            m.record_hit(r.size);
        } else {
            m.record_miss(r.size);
        }
    }
    m
}

/// Replay with interval snapshots every `interval` requests (time-series
/// figures).
pub fn replay_with_recorder<P: CachePolicy + ?Sized>(
    policy: &mut P,
    trace: &[Request],
    interval: u64,
) -> MetricsRecorder {
    let mut rec = MetricsRecorder::new(interval);
    for r in trace {
        let hit = policy.on_request(r).is_hit();
        rec.record(r.tick, r.size, hit);
    }
    rec.finish(trace.last().map_or(0, |r| r.tick + 1));
    rec
}

/// Reference `dyn`-dispatch replay: same loop as [`replay`] but forced
/// through a trait object, as the equivalence tests and the throughput
/// harness's speedup baseline require.
pub fn replay_dyn(policy: &mut dyn CachePolicy, trace: &[Request]) -> MissRatio {
    replay(policy, trace)
}

/// Reference `dyn`-dispatch recorder replay (see [`replay_dyn`]).
pub fn replay_with_recorder_dyn(
    policy: &mut dyn CachePolicy,
    trace: &[Request],
    interval: u64,
) -> MetricsRecorder {
    replay_with_recorder(policy, trace, interval)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insertion::{deciders::Mip, InsertionCache};
    use crate::replacement::Lru;
    use cdn_cache::object::micro_trace;

    #[test]
    fn replay_counts_hits() {
        let t = micro_trace(&[(1, 1), (1, 1), (2, 1), (1, 1)]);
        let mut p = InsertionCache::new(Mip, 10, "LRU");
        let m = replay(&mut p, &t);
        assert_eq!(m.hits(), 2);
        assert_eq!(m.misses(), 2);
    }

    #[test]
    fn recorder_snapshots() {
        let t = micro_trace(&[(1, 1), (1, 1), (2, 1), (1, 1)]);
        let mut p = InsertionCache::new(Mip, 10, "LRU");
        let rec = replay_with_recorder(&mut p, &t, 2);
        assert_eq!(rec.snapshots().len(), 2);
        assert_eq!(rec.totals().hits(), 2);
    }

    #[test]
    fn generic_dyn_and_columns_agree() {
        let reqs: Vec<(u64, u64)> = (0..2_000).map(|i| (i * 11 % 90, 1 + i % 40)).collect();
        let t = micro_trace(&reqs);
        let cols = TraceColumns::from_requests(&t);
        let mono = replay(&mut Lru::new(500), &t);
        let via_cols = replay_columns(&mut Lru::new(500), &cols);
        let mut boxed: Box<dyn CachePolicy> = Box::new(Lru::new(500));
        let dynamic = replay_dyn(boxed.as_mut(), &t);
        for m in [&via_cols, &dynamic] {
            assert_eq!(mono.hits(), m.hits());
            assert_eq!(mono.misses(), m.misses());
            assert_eq!(mono.miss_bytes(), m.miss_bytes());
        }
    }
}
