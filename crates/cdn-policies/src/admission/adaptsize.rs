//! AdaptSize (Berger, Sitaraman & Harchol-Balter, NSDI 2017):
//! probabilistic size-aware admission for CDN memory caches.
//!
//! Objects are admitted with probability `e^{-size / c}`. The original
//! tunes `c` by evaluating a Markov cache model over a log-spaced grid of
//! candidates against recent request statistics; we keep the same outer
//! loop — periodically pick the `c` whose *predicted* object hit ratio
//! over the recent window is maximal — but score candidates with a direct
//! little-model: an object with frequency `f` and size `s` is a predicted
//! hit iff it is admitted (`e^{-s/c}`) and re-requested (`f ≥ 2`), with
//! cache pressure approximated by the admitted-bytes budget. This keeps
//! AdaptSize's behaviour (small objects favoured, threshold tracks the
//! workload) at a fraction of the original solver's complexity.

use cdn_cache::policy::RejectReason;
use cdn_cache::{
    AccessKind, CachePolicy, FxHashMap, LruQueue, ObjectId, PolicyStats, Request, SimRng,
};

/// Number of log-spaced candidates for `c`.
const N_CANDIDATES: usize = 24;

/// AdaptSize admission in front of an LRU cache.
#[derive(Debug, Clone)]
pub struct AdaptSize {
    cache: LruQueue,
    /// Current admission scale `c` (bytes).
    c: f64,
    /// Recent-window per-object stats: (requests, size).
    window: FxHashMap<ObjectId, (u32, u64)>,
    window_reqs: u64,
    /// Re-tune after this many requests.
    pub tune_interval: u64,
    rng: SimRng,
    stats: PolicyStats,
}

impl AdaptSize {
    /// AdaptSize with an initial scale of 64 KB.
    pub fn new(capacity: u64, seed: u64) -> Self {
        AdaptSize {
            cache: LruQueue::new(capacity),
            c: 65_536.0,
            window: FxHashMap::default(),
            window_reqs: 0,
            tune_interval: 50_000,
            rng: SimRng::new(seed),
            stats: PolicyStats::default(),
        }
    }

    /// Current admission scale (diagnostics).
    pub fn c(&self) -> f64 {
        self.c
    }

    /// Score a candidate `c`: expected hits under the little-model, with
    /// the admitted working set clamped to the cache size.
    fn score(&self, c: f64) -> f64 {
        let budget = self.cache.capacity() as f64;
        let mut admitted_bytes = 0.0;
        let mut expected_hits = 0.0;
        // Most-valuable-first isn't tracked; approximate pressure by
        // scaling achieved hits by budget/admitted when oversubscribed.
        // One-hit objects earn nothing but still consume admitted bytes —
        // that pressure is exactly what pushes `c` down.
        for &(reqs, size) in self.window.values() {
            let p_admit = (-(size as f64) / c).exp();
            admitted_bytes += p_admit * size as f64;
            if reqs >= 2 {
                expected_hits += p_admit * (reqs - 1) as f64;
            }
        }
        if admitted_bytes > budget && admitted_bytes > 0.0 {
            expected_hits * (budget / admitted_bytes)
        } else {
            expected_hits
        }
    }

    fn retune(&mut self) {
        let mut best = (f64::MIN, self.c);
        for i in 0..N_CANDIDATES {
            // 256 B … 2 GB, log-spaced.
            let c = 1024.0 * 2f64.powi(i as i32 - 2);
            let s = self.score(c);
            if s > best.0 {
                best = (s, c);
            }
        }
        self.c = best.1;
        self.window.clear();
        self.window_reqs = 0;
    }
}

impl CachePolicy for AdaptSize {
    fn name(&self) -> &str {
        "AdaptSize"
    }

    fn on_request(&mut self, req: &Request) -> AccessKind {
        let e = self.window.entry(req.id).or_insert((0, req.size));
        e.0 = e.0.saturating_add(1);
        self.window_reqs += 1;
        if self.window_reqs >= self.tune_interval {
            self.retune();
        }
        if self.cache.contains(req.id) {
            self.cache.record_hit(req.id, req.tick);
            self.cache.promote_to_mru(req.id);
            return AccessKind::Hit;
        }
        if !self.cache.admissible(req.size) {
            return AccessKind::Rejected(RejectReason::TooLarge);
        }
        // Probabilistic size-aware admission.
        let p_admit = (-(req.size as f64) / self.c).exp();
        if !self.rng.chance(p_admit) {
            return AccessKind::Miss;
        }
        while self.cache.needs_eviction_for(req.size) {
            self.cache.evict_lru();
            self.stats.evictions += 1;
        }
        self.cache.insert_mru(req.id, req.size, req.tick);
        self.stats.insertions += 1;
        AccessKind::Miss
    }

    fn capacity(&self) -> u64 {
        self.cache.capacity()
    }

    fn used_bytes(&self) -> u64 {
        self.cache.used_bytes()
    }

    fn memory_bytes(&self) -> usize {
        self.cache.memory_bytes() + self.window.capacity() * 24
    }

    fn stats(&self) -> PolicyStats {
        PolicyStats {
            resident_objects: self.cache.len(),
            resident_bytes: self.cache.used_bytes(),
            ..self.stats
        }
    }

    #[inline]
    fn prefetch_hint(&self, id: ObjectId) {
        self.cache.prefetch_lookup(id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replacement::lru::Lru;
    use crate::replay;
    use cdn_cache::object::micro_trace;

    #[test]
    fn small_objects_admitted_more_often() {
        let mut p = AdaptSize::new(1_000_000, 1);
        p.c = 10_000.0;
        let mut small_in = 0;
        let mut big_in = 0;
        for i in 0..400u64 {
            p.on_request(&cdn_cache::Request::new(i, i, 1_000));
            small_in += usize::from(p.cache.contains(ObjectId(i)));
        }
        for i in 400..800u64 {
            p.on_request(&cdn_cache::Request::new(i, i, 100_000));
            big_in += usize::from(p.cache.contains(ObjectId(i)));
        }
        assert!(small_in > 300, "small admitted {small_in}");
        assert!(big_in < 50, "big admitted {big_in}");
    }

    #[test]
    fn retune_moves_c_toward_workload() {
        let mut p = AdaptSize::new(10_000, 3);
        p.tune_interval = 2_000;
        // Reused objects are all ~100 B; large objects are one-hit.
        let mut reqs = Vec::new();
        let mut next = 10_000u64;
        for i in 0..6_000u64 {
            if i % 2 == 0 {
                reqs.push((i / 2 % 40, 100));
            } else {
                reqs.push((next, 50_000));
                next += 1;
            }
        }
        replay(&mut p, &micro_trace(&reqs));
        // c should have settled low enough to discriminate 100 B vs 50 KB.
        let p_small = (-(100.0) / p.c()).exp();
        let p_big = (-(50_000.0) / p.c()).exp();
        assert!(p_small > 0.9, "p_small {p_small} (c={})", p.c());
        assert!(p_big < 0.5, "p_big {p_big} (c={})", p.c());
    }

    #[test]
    fn beats_lru_when_size_predicts_reuse() {
        let mut reqs = Vec::new();
        let mut next = 10_000u64;
        for i in 0..8_000u64 {
            if i % 3 == 0 {
                reqs.push((i / 3 % 50, 200)); // hot small
            } else {
                reqs.push((next, 5_000)); // cold large
                next += 1;
            }
        }
        let t = micro_trace(&reqs);
        let cap = 20_000;
        let mut ad = AdaptSize::new(cap, 5);
        ad.tune_interval = 2_000;
        let mut lru = Lru::new(cap);
        let a = replay(&mut ad, &t).miss_ratio();
        let b = replay(&mut lru, &t).miss_ratio();
        assert!(a < b, "AdaptSize {a} vs LRU {b}");
    }

    #[test]
    fn capacity_respected() {
        let reqs: Vec<(u64, u64)> = (0..3000).map(|i| (i * 13 % 200, 1 + i % 40)).collect();
        let t = micro_trace(&reqs);
        let mut p = AdaptSize::new(300, 7);
        for r in &t {
            p.on_request(r);
            assert!(p.used_bytes() <= 300);
        }
    }
}
