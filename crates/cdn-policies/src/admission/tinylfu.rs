//! TinyLFU (Einziger, Friedman & Manes, ACM TOS 2017): a counting-sketch
//! admission filter in front of an LRU cache (the W-TinyLFU arrangement,
//! with a small LRU window absorbing bursts).
//!
//! A 4-bit count-min sketch approximates each object's recent request
//! frequency; on a miss that would force an eviction, the candidate is
//! admitted only if its estimated frequency beats the would-be victim's.
//! The sketch halves all counters periodically (the "reset" aging), so the
//! frequency estimate tracks a sliding sample window.

use cdn_cache::hash::mix64;
use cdn_cache::policy::RejectReason;
use cdn_cache::{AccessKind, CachePolicy, LruQueue, ObjectId, PolicyStats, Request};

/// 4-bit count-min sketch with periodic halving.
#[derive(Debug, Clone)]
pub struct FrequencySketch {
    /// Packed 4-bit counters.
    table: Vec<u64>,
    /// Mask over counter slots (power of two).
    slot_mask: u64,
    additions: u64,
    reset_after: u64,
}

impl FrequencySketch {
    /// Sketch sized for roughly `expected_objects` distinct keys.
    pub fn new(expected_objects: usize) -> Self {
        let slots = expected_objects.next_power_of_two().max(1 << 10) as u64;
        FrequencySketch {
            table: vec![0u64; (slots / 16).max(1) as usize], // 16 counters/u64
            slot_mask: slots - 1,
            additions: 0,
            reset_after: slots * 10,
        }
    }

    #[inline]
    fn slot(&self, hash: u64) -> (usize, u32) {
        let idx = hash & self.slot_mask;
        ((idx / 16) as usize, ((idx % 16) * 4) as u32)
    }

    fn counter(&self, hash: u64) -> u64 {
        let (word, shift) = self.slot(hash);
        (self.table[word] >> shift) & 0xF
    }

    fn bump(&mut self, hash: u64) {
        let (word, shift) = self.slot(hash);
        let cur = (self.table[word] >> shift) & 0xF;
        if cur < 15 {
            self.table[word] += 1u64 << shift;
        }
    }

    /// Record one access.
    pub fn increment(&mut self, id: ObjectId) {
        for i in 0..4u64 {
            self.bump(mix64(id.0 ^ (i.wrapping_mul(0x9E3779B97F4A7C15))));
        }
        self.additions += 1;
        if self.additions >= self.reset_after {
            self.additions /= 2;
            for w in &mut self.table {
                // Halve every 4-bit lane.
                *w = (*w >> 1) & 0x7777_7777_7777_7777;
            }
        }
    }

    /// Estimated frequency (count-min: minimum over the hash lanes).
    pub fn estimate(&self, id: ObjectId) -> u64 {
        (0..4u64)
            .map(|i| self.counter(mix64(id.0 ^ (i.wrapping_mul(0x9E3779B97F4A7C15)))))
            .min()
            .expect("four lanes")
    }

    /// Sketch footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.table.capacity() * 8
    }
}

/// W-TinyLFU: window LRU (1 %) + main LRU behind the sketch filter.
#[derive(Debug, Clone)]
pub struct TinyLfu {
    sketch: FrequencySketch,
    window: LruQueue,
    main: LruQueue,
    window_budget: u64,
    capacity: u64,
    stats: PolicyStats,
}

impl TinyLfu {
    /// TinyLFU sized for the given byte capacity (sketch sized from an
    /// assumed ~32 KB mean object size).
    pub fn new(capacity: u64) -> Self {
        let expected = (capacity / 32_768).max(1024) as usize;
        TinyLfu {
            sketch: FrequencySketch::new(expected * 4),
            window: LruQueue::new(u64::MAX),
            main: LruQueue::new(u64::MAX),
            window_budget: (capacity / 100).max(1),
            capacity,
            stats: PolicyStats::default(),
        }
    }

    fn used(&self) -> u64 {
        self.window.used_bytes() + self.main.used_bytes()
    }

    /// Structural invariant check over both compartments: each queue's own
    /// `audit` plus window/main disjointness and the shared capacity bound.
    pub fn audit(&self) -> Result<(), String> {
        self.window.audit().map_err(|e| format!("window: {e}"))?;
        self.main.audit().map_err(|e| format!("main: {e}"))?;
        if let Some(meta) = self.window.iter().find(|m| self.main.contains(m.id)) {
            return Err(format!(
                "object {:?} resident in both window and main",
                meta.id
            ));
        }
        if self.used() > self.capacity {
            return Err(format!(
                "used {} exceeds capacity {}",
                self.used(),
                self.capacity
            ));
        }
        Ok(())
    }

    /// The admission duel: window overflow candidates fight the main
    /// queue's LRU victim on sketch frequency.
    fn rebalance(&mut self, tick: u64) {
        while self.window.used_bytes() > self.window_budget {
            let candidate = self.window.evict_lru().expect("over budget");
            // The candidate's estimate is loop-invariant across the duel
            // (evictions don't touch the sketch); hoist the 4-lane probe.
            let candidate_freq = self.sketch.estimate(candidate.id);
            // Make room in main, dueling candidate vs victims.
            let mut admitted = true;
            while self.main.used_bytes().saturating_add(candidate.size)
                > self.capacity - self.window_budget
            {
                let victim = match self.main.peek_lru() {
                    Some(v) => v,
                    None => break,
                };
                if candidate_freq > self.sketch.estimate(victim.id) {
                    self.main.evict_lru();
                    self.stats.evictions += 1;
                } else {
                    admitted = false;
                    self.stats.evictions += 1; // the candidate is dropped
                    break;
                }
            }
            if admitted
                && self.main.used_bytes() + candidate.size
                    <= self.capacity.saturating_sub(self.window_budget)
            {
                let mut meta = candidate;
                meta.last_access = tick;
                self.main.insert_meta_mru(meta);
            }
        }
    }
}

impl CachePolicy for TinyLfu {
    fn name(&self) -> &str {
        "TinyLFU"
    }

    fn on_request(&mut self, req: &Request) -> AccessKind {
        self.sketch.increment(req.id);
        // Single-probe hit paths: one index lookup yields a handle that
        // drives the hit bookkeeping and the MRU move. The previous
        // contains → record_hit → promote_to_mru sequence probed the same
        // fused-index bucket three times per hit (the post-PR-5 regression
        // this recovers; see DESIGN.md §15).
        if let Some(h) = self.window.lookup(req.id) {
            self.window.record_hit_at(h, req.tick);
            self.window.promote_to_mru_at(h);
            return AccessKind::Hit;
        }
        if let Some(h) = self.main.lookup(req.id) {
            self.main.record_hit_at(h, req.tick);
            self.main.promote_to_mru_at(h);
            return AccessKind::Hit;
        }
        if req.size > self.capacity {
            return AccessKind::Rejected(RejectReason::TooLarge);
        }
        // New arrivals always enter the window (burst absorption), then
        // duel for main admission on window overflow.
        while self.used().saturating_add(req.size) > self.capacity {
            if self.window.evict_lru().is_none() {
                self.main.evict_lru();
            }
            self.stats.evictions += 1;
        }
        self.window.insert_mru(req.id, req.size, req.tick);
        self.stats.insertions += 1;
        self.rebalance(req.tick);
        AccessKind::Miss
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used_bytes(&self) -> u64 {
        self.used()
    }

    fn memory_bytes(&self) -> usize {
        self.window.memory_bytes() + self.main.memory_bytes() + self.sketch.memory_bytes()
    }

    fn stats(&self) -> PolicyStats {
        PolicyStats {
            resident_objects: self.window.len() + self.main.len(),
            resident_bytes: self.used(),
            ..self.stats
        }
    }

    #[inline]
    fn prefetch_hint(&self, id: ObjectId) {
        self.window.prefetch_lookup(id);
        self.main.prefetch_lookup(id);
    }

    fn for_each_resident(&self, visit: &mut dyn FnMut(&cdn_cache::ResidentEntry)) -> bool {
        // Window (bucket 0) is the burst-absorbing front, main (bucket 1)
        // the protected bulk; each MRU→LRU.
        cdn_cache::export_lru_queue(&self.window, 0, visit);
        cdn_cache::export_lru_queue(&self.main, 1, visit);
        true
    }

    fn restore_resident(&mut self, entries: &[cdn_cache::ResidentEntry]) -> bool {
        for e in entries.iter().rev() {
            if self.window.contains(e.id)
                || self.main.contains(e.id)
                || self.used().saturating_add(e.size) > self.capacity
            {
                continue;
            }
            let queue = if e.bucket == 0 {
                &mut self.window
            } else {
                &mut self.main
            };
            queue.insert_meta_mru(e.to_meta());
            // The sketch itself restarts cold (it is approximate sampled
            // state); one increment per restored object keeps restored
            // entries from losing every admission duel to fresh arrivals.
            self.sketch.increment(e.id);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replacement::lru::Lru;
    use crate::replay;
    use cdn_cache::object::micro_trace;

    #[test]
    fn sketch_counts_and_ages() {
        let mut s = FrequencySketch::new(1024);
        let id = ObjectId(7);
        assert_eq!(s.estimate(id), 0);
        for _ in 0..10 {
            s.increment(id);
        }
        assert!(s.estimate(id) >= 8, "estimate {}", s.estimate(id));
        // Saturation at 15.
        for _ in 0..100 {
            s.increment(id);
        }
        assert!(s.estimate(id) <= 15);
    }

    #[test]
    fn sketch_reset_halves() {
        let mut s = FrequencySketch::new(64);
        s.reset_after = 32;
        let id = ObjectId(3);
        for _ in 0..8 {
            s.increment(id);
        }
        let before = s.estimate(id);
        // Push unrelated traffic past the reset threshold.
        for i in 0..64u64 {
            s.increment(ObjectId(1000 + i));
        }
        assert!(
            s.estimate(id) < before,
            "aged: {} -> {}",
            before,
            s.estimate(id)
        );
    }

    #[test]
    fn frequent_objects_survive_scans() {
        let mut reqs = Vec::new();
        let mut next = 10_000u64;
        for round in 0..200u64 {
            for hot in 0..4u64 {
                reqs.push((hot, 10));
            }
            for _ in 0..30 {
                reqs.push((next, 10));
                next += 1;
            }
            let _ = round;
        }
        let t = micro_trace(&reqs);
        let cap = 200;
        let mut tiny = TinyLfu::new(cap);
        let mut lru = Lru::new(cap);
        let a = replay(&mut tiny, &t).miss_ratio();
        let b = replay(&mut lru, &t).miss_ratio();
        assert!(a < b, "TinyLFU {a} vs LRU {b}");
    }

    #[test]
    fn capacity_respected() {
        let reqs: Vec<(u64, u64)> = (0..4000).map(|i| (i * 11 % 150, 1 + i % 12)).collect();
        let t = micro_trace(&reqs);
        let mut p = TinyLfu::new(120);
        for r in &t {
            p.on_request(r);
            assert!(p.used_bytes() <= 120, "used {}", p.used_bytes());
        }
    }
}
