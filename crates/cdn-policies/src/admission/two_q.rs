//! 2Q (Johnson & Shasha, VLDB 1994), simplified to its full version's
//! object-cache form: a FIFO probation queue `A1in`, a ghost `A1out`, and
//! a main LRU `Am`. First-time objects enter `A1in`; objects re-referenced
//! while in `A1in` or remembered in `A1out` are promoted into `Am`. One-hit
//! wonders therefore never pollute the main queue — the admission-side
//! answer to the ZRO problem.

use cdn_cache::ghost::GhostEntry;
use cdn_cache::policy::RejectReason;
use cdn_cache::{AccessKind, CachePolicy, GhostList, LruQueue, PolicyStats, Request};

/// 2Q with byte-budgeted regions.
#[derive(Debug, Clone)]
pub struct TwoQ {
    /// Probation FIFO (classic Kin ≈ 25 % of the cache).
    a1in: LruQueue,
    /// Ghost of recent probation evictions (Kout: one cache's worth of
    /// bytes — byte-budgeted ghosts need the full budget to cover the
    /// reuse distances the page-count Kout=50 % covered in the original).
    a1out: GhostList,
    /// Main protected LRU.
    am: LruQueue,
    a1in_budget: u64,
    capacity: u64,
    stats: PolicyStats,
}

impl TwoQ {
    /// 2Q with the classic Kin = 25 %, Kout = 50 % split.
    pub fn new(capacity: u64) -> Self {
        TwoQ {
            a1in: LruQueue::new(u64::MAX),
            a1out: GhostList::new(capacity),
            am: LruQueue::new(u64::MAX),
            a1in_budget: capacity / 4,
            capacity,
            stats: PolicyStats::default(),
        }
    }

    fn used(&self) -> u64 {
        self.a1in.used_bytes() + self.am.used_bytes()
    }

    /// Free space: drain over-budget probation first (FIFO → A1out), then
    /// the main queue's LRU end.
    fn reclaim(&mut self, incoming: u64, tick: u64) {
        while self.used().saturating_add(incoming) > self.capacity {
            let from_a1in = self.a1in.used_bytes() > self.a1in_budget || self.am.is_empty();
            if from_a1in {
                let v = self.a1in.evict_lru().expect("probation nonempty");
                self.a1out.add(GhostEntry {
                    id: v.id,
                    size: v.size,
                    evicted_tick: tick,
                    tag: 0,
                });
            } else {
                self.am.evict_lru().expect("main nonempty");
            }
            self.stats.evictions += 1;
        }
    }
}

impl CachePolicy for TwoQ {
    fn name(&self) -> &str {
        "2Q"
    }

    fn on_request(&mut self, req: &Request) -> AccessKind {
        if self.am.contains(req.id) {
            self.am.record_hit(req.id, req.tick);
            self.am.promote_to_mru(req.id);
            return AccessKind::Hit;
        }
        if self.a1in.contains(req.id) {
            // Second touch while on probation: promote into Am.
            let mut meta = self.a1in.remove(req.id).expect("resident");
            meta.hits += 1;
            meta.last_access = req.tick;
            self.am.insert_meta_mru(meta);
            return AccessKind::Hit;
        }
        if req.size > self.capacity {
            return AccessKind::Rejected(RejectReason::TooLarge);
        }
        self.reclaim(req.size, req.tick);
        if self.a1out.delete(req.id).is_some() {
            // Remembered from probation: admit straight into Am.
            self.am.insert_mru(req.id, req.size, req.tick);
        } else {
            self.a1in.insert_mru(req.id, req.size, req.tick);
        }
        self.stats.insertions += 1;
        AccessKind::Miss
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used_bytes(&self) -> u64 {
        self.used()
    }

    fn memory_bytes(&self) -> usize {
        self.a1in.memory_bytes() + self.am.memory_bytes() + self.a1out.memory_bytes()
    }

    fn stats(&self) -> PolicyStats {
        PolicyStats {
            resident_objects: self.a1in.len() + self.am.len(),
            resident_bytes: self.used(),
            ..self.stats
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replacement::lru::Lru;
    use crate::replay;
    use cdn_cache::object::micro_trace;
    use cdn_cache::ObjectId;

    #[test]
    fn second_touch_promotes_to_main() {
        let mut p = TwoQ::new(100);
        for r in micro_trace(&[(1, 10), (1, 10)]) {
            p.on_request(&r);
        }
        assert!(p.am.contains(ObjectId(1)));
        assert!(!p.a1in.contains(ObjectId(1)));
    }

    #[test]
    fn ghost_memory_readmits_into_main() {
        let mut p = TwoQ::new(40); // a1in budget 10 = 1 object
                                   // 1 enters probation, 2 pushes it to A1out, then 1 returns.
        for r in micro_trace(&[(1, 10), (2, 10), (3, 10), (4, 10), (5, 10), (1, 10)]) {
            p.on_request(&r);
        }
        assert!(p.am.contains(ObjectId(1)), "readmitted via A1out");
    }

    #[test]
    fn one_hit_wonders_never_reach_main() {
        let mut p = TwoQ::new(200);
        let reqs: Vec<(u64, u64)> = (0..100).map(|i| (i, 10)).collect();
        replay(&mut p, &micro_trace(&reqs));
        assert_eq!(p.am.len(), 0);
    }

    #[test]
    fn capacity_respected() {
        let reqs: Vec<(u64, u64)> = (0..3000).map(|i| (i * 7 % 120, 1 + i % 15)).collect();
        let t = micro_trace(&reqs);
        let mut p = TwoQ::new(150);
        for r in &t {
            p.on_request(r);
            assert!(p.used_bytes() <= 150);
        }
    }

    #[test]
    fn beats_lru_on_wonder_heavy_traffic() {
        let mut reqs = Vec::new();
        let mut next = 10_000u64;
        for i in 0..6_000u64 {
            if i % 2 == 0 {
                reqs.push((i / 2 % 20, 10));
            } else {
                reqs.push((next, 10));
                next += 1;
            }
        }
        let t = micro_trace(&reqs);
        let cap = 300;
        let mut q = TwoQ::new(cap);
        let mut lru = Lru::new(cap);
        let a = replay(&mut q, &t).miss_ratio();
        let b = replay(&mut lru, &t).miss_ratio();
        assert!(a < b, "2Q {a} vs LRU {b}");
    }
}
