//! Cache *admission* algorithms — the related family the paper's §7
//! surveys ("denying data that will not be accessed into the cache can
//! effectively improve cache performance"). They attack the same ZRO
//! problem as SCIP from the front door: instead of inserting suspected
//! zero-reuse objects at the LRU position, they refuse to cache them at
//! all.
//!
//! - [`two_q`]: 2Q (Johnson & Shasha, VLDB 1994) — only objects seen
//!   twice within a FIFO probation window enter the main cache.
//! - [`tinylfu`]: TinyLFU (Einziger, Friedman & Manes, TOS 2017) — a
//!   frequency sketch arbitrates victim-vs-candidate admission.
//! - [`adaptsize`]: AdaptSize (Berger, Sitaraman & Harchol-Balter,
//!   NSDI 2017) — probabilistic size-threshold admission,
//!   `P(admit) = e^{-size/c}`, with `c` tuned online.
//!
//! All three compose with the LRU queue substrate and implement
//! [`cdn_cache::CachePolicy`], so they drop into the same sweeps as every
//! other policy (see `compare_policies --admission`).

pub mod adaptsize;
pub mod tinylfu;
pub mod two_q;

pub use adaptsize::AdaptSize;
pub use tinylfu::TinyLfu;
pub use two_q::TwoQ;
