//! Baseline cache policies: the eight insertion/promotion policies and the
//! replacement algorithms the paper compares SCIP against.
//!
//! Two families, mirroring the paper's §6 grouping:
//!
//! - [`insertion`]: policies that keep LRU victim selection and only change
//!   *where* objects enter / re-enter the queue — LIP, MIP (classic LRU
//!   insertion), BIP, DIP, PIPP, DTA, SHiP, DGIPPR, DAAIP and ASC-IP.
//!   Most are expressed against the [`insertion::InsertionDecider`]
//!   framework; PIPP and DGIPPR need positional inserts and are built on
//!   [`cdn_cache::SegmentedQueue`] directly.
//! - [`replacement`]: full replacement algorithms — LRU, LRU-K, S4LRU,
//!   SS-LRU, GDSF, LHD, ARC, LeCaR, CACHEUS, LRB, GL-Cache and the Belady
//!   oracle policy.
//!
//! A third family, [`admission`], implements the related work the paper's
//! §7 surveys (2Q, TinyLFU, AdaptSize): admission-side answers to the same
//! ZRO problem SCIP attacks with placement.
//!
//! CPU-cache-native baselines (DIP, SHiP, DAAIP, DGIPPR, PIPP, DTA) are
//! re-targeted from set-associative caches to one large object cache the
//! same way the paper had to: leader sets become hashed leader objects, PCs
//! become object signatures, and set positions become queue fractions. Each
//! module documents its adaptation.

pub mod admission;
pub mod insertion;
pub mod replacement;
pub mod replay;

pub use insertion::{InsertionCache, InsertionDecider, MissDecision, PromoteAction};
pub use replay::{
    replay, replay_columns, replay_dyn, replay_with_recorder, replay_with_recorder_dyn,
};
