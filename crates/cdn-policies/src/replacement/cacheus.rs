//! CACHEUS (Rodriguez et al., FAST 2021).
//!
//! CACHEUS refines LeCaR along three axes, all reproduced here:
//! 1. **SR-LRU** — a scan-resistant recency expert: a small probation
//!    segment absorbs new objects; only reused objects enter the protected
//!    segment (we realise it with a 2-segment queue, 1/4 probation).
//! 2. **CR-LFU** — churn resistance: frequency ties break by recency
//!    (encoded in the ordered key), so churning unit-frequency objects
//!    don't evict each other pathologically.
//! 3. **Adaptive learning rate** — λ is no longer fixed: every window the
//!    hit-rate gradient doubles λ when performance degrades under the
//!    current mixture and decays it when stable (the original's
//!    performance-driven lr schedule, simplified to its
//!    double-on-regress / decay-on-progress core).

use std::collections::BTreeSet;

use cdn_cache::ghost::GhostEntry;
use cdn_cache::policy::RejectReason;
use cdn_cache::{
    AccessKind, CachePolicy, FxHashMap, GhostList, ObjectId, PolicyStats, Request, SegmentedQueue,
    SimRng, Tick,
};

const WINDOW: u64 = 4_096;
const LAMBDA_MIN: f64 = 0.001;
const LAMBDA_MAX: f64 = 1.0;

/// CACHEUS: SR-LRU + CR-LFU experts with an adaptive learning rate.
#[derive(Debug, Clone)]
pub struct Cacheus {
    capacity: u64,
    /// SR-LRU structure: segment 0 = probation (25 %), 1 = protected.
    recency: SegmentedQueue,
    freq_queue: BTreeSet<(u64, Tick, ObjectId)>,
    freq: FxHashMap<ObjectId, (u64, Tick)>,
    h_lru: GhostList,
    h_lfu: GhostList,
    w_lru: f64,
    lambda: f64,
    // Window bookkeeping for the adaptive lr.
    window_hits: u64,
    window_reqs: u64,
    prev_hit_rate: f64,
    rng: SimRng,
    stats: PolicyStats,
}

impl Cacheus {
    /// CACHEUS with the given byte capacity.
    pub fn new(capacity: u64, seed: u64) -> Self {
        Cacheus {
            capacity,
            recency: SegmentedQueue::new(u64::MAX / 2, &[0.25, 0.75]),
            freq_queue: BTreeSet::new(),
            freq: FxHashMap::default(),
            h_lru: GhostList::new(capacity / 2),
            h_lfu: GhostList::new(capacity / 2),
            w_lru: 0.5,
            lambda: 0.45,
            window_hits: 0,
            window_reqs: 0,
            prev_hit_rate: 0.0,
            rng: SimRng::new(seed),
            stats: PolicyStats::default(),
        }
    }

    /// Current learning rate (diagnostics).
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Current LRU-expert weight (diagnostics).
    pub fn w_lru(&self) -> f64 {
        self.w_lru
    }

    fn penalise(&mut self, lru_expert: bool) {
        let decay = (-self.lambda).exp();
        let (mut a, mut b) = (self.w_lru, 1.0 - self.w_lru);
        if lru_expert {
            a *= decay;
        } else {
            b *= decay;
        }
        self.w_lru = (a / (a + b)).clamp(0.01, 0.99);
    }

    fn adapt_lambda(&mut self) {
        let rate = if self.window_reqs == 0 {
            0.0
        } else {
            self.window_hits as f64 / self.window_reqs as f64
        };
        if rate < self.prev_hit_rate {
            // Regressing: explore faster.
            self.lambda = (self.lambda * 2.0).min(LAMBDA_MAX);
        } else {
            // Stable or improving: settle down.
            self.lambda = (self.lambda * 0.9).max(LAMBDA_MIN);
        }
        self.prev_hit_rate = rate;
        self.window_hits = 0;
        self.window_reqs = 0;
    }

    fn evict_one(&mut self) {
        let use_lru = self.rng.chance(self.w_lru);
        let meta = if use_lru {
            // SR-LRU victim: globally least-recent (probation first). O(1).
            self.recency.evict_global().expect("nonempty")
        } else {
            let victim_id = self.freq_queue.iter().next().expect("nonempty").2;
            self.recency.remove(victim_id).expect("resident")
        };
        let victim_id = meta.id;
        let (f, last) = self.freq.remove(&victim_id).expect("tracked");
        self.freq_queue.remove(&(f, last, victim_id));
        let ghost = if use_lru {
            &mut self.h_lru
        } else {
            &mut self.h_lfu
        };
        ghost.add(GhostEntry {
            id: victim_id,
            size: meta.size,
            evicted_tick: meta.last_access,
            tag: f,
        });
        self.stats.evictions += 1;
    }
}

impl CachePolicy for Cacheus {
    fn name(&self) -> &str {
        "CACHEUS"
    }

    fn on_request(&mut self, req: &Request) -> AccessKind {
        self.window_reqs += 1;
        if self.window_reqs >= WINDOW {
            self.adapt_lambda();
        }
        if self.recency.contains(req.id) {
            self.window_hits += 1;
            // SR-LRU: reuse promotes into the protected segment; overflow
            // falls back to probation, never straight out of the cache.
            self.recency.hit_move_to(req.id, 1, req.tick);
            let (f, last) = self.freq[&req.id];
            self.freq_queue.remove(&(f, last, req.id));
            self.freq.insert(req.id, (f + 1, req.tick));
            self.freq_queue.insert((f + 1, req.tick, req.id));
            return AccessKind::Hit;
        }
        if req.size > self.capacity {
            return AccessKind::Rejected(RejectReason::TooLarge);
        }
        let mut restored_freq = 0;
        if let Some(e) = self.h_lru.delete(req.id) {
            self.penalise(true);
            restored_freq = e.tag;
        } else if let Some(e) = self.h_lfu.delete(req.id) {
            self.penalise(false);
            restored_freq = e.tag;
        }
        while self.recency.used_bytes().saturating_add(req.size) > self.capacity {
            self.evict_one();
        }
        // New objects start in probation (segment 0).
        let evicted = self.recency.insert(0, req.id, req.size, req.tick);
        debug_assert!(evicted.is_empty(), "budget enforced above");
        self.freq.insert(req.id, (restored_freq + 1, req.tick));
        self.freq_queue
            .insert((restored_freq + 1, req.tick, req.id));
        self.stats.insertions += 1;
        AccessKind::Miss
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used_bytes(&self) -> u64 {
        self.recency.used_bytes()
    }

    fn memory_bytes(&self) -> usize {
        self.recency.memory_bytes()
            + self.freq.capacity() * 32
            + self.freq_queue.len() * 48
            + self.h_lru.memory_bytes()
            + self.h_lfu.memory_bytes()
    }

    fn stats(&self) -> PolicyStats {
        PolicyStats {
            resident_objects: self.recency.len(),
            resident_bytes: self.recency.used_bytes(),
            ..self.stats
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replacement::lru::Lru;
    use crate::replay;
    use cdn_cache::object::micro_trace;

    #[test]
    fn invariants_hold_under_churn() {
        let reqs: Vec<(u64, u64)> = (0..4000).map(|i| (i * 11 % 120, 1 + i % 6)).collect();
        let t = micro_trace(&reqs);
        let mut p = Cacheus::new(80, 1);
        for r in &t {
            p.on_request(r);
            assert!(p.used_bytes() <= 80);
            assert_eq!(p.freq.len(), p.recency.len());
            assert!((LAMBDA_MIN..=LAMBDA_MAX).contains(&p.lambda()));
            assert!((0.01..=0.99).contains(&p.w_lru()));
        }
    }

    #[test]
    fn scan_resistant_vs_lru() {
        // Hot set touched twice per round, then a scan longer than the
        // cache: probation absorbs the scan, the protected segment and the
        // LFU expert keep the hot set.
        let mut reqs = Vec::new();
        let mut next = 1000u64;
        for _round in 0..150 {
            for _pass in 0..2 {
                for hot in 0..6u64 {
                    reqs.push((hot, 1));
                }
            }
            for _ in 0..24 {
                reqs.push((next, 1));
                next += 1;
            }
        }
        let t = micro_trace(&reqs);
        let cap = 12;
        let mut c = Cacheus::new(cap, 3);
        let mut lru = Lru::new(cap);
        let a = replay(&mut c, &t).miss_ratio();
        let l = replay(&mut lru, &t).miss_ratio();
        assert!(a < l, "CACHEUS {a} vs LRU {l}");
    }

    #[test]
    fn lambda_adapts_over_time() {
        let mut p = Cacheus::new(10, 5);
        let start = p.lambda();
        // Alternating hot/cold phases force hit-rate swings.
        let mut reqs = Vec::new();
        for phase in 0..6u64 {
            for i in 0..2 * WINDOW {
                if phase % 2 == 0 {
                    reqs.push((i % 5, 1)); // cacheable
                } else {
                    reqs.push((1_000_000 + phase * 100_000 + i, 1)); // all-miss
                }
            }
        }
        replay(&mut p, &micro_trace(&reqs));
        assert_ne!(p.lambda(), start);
    }
}
