//! GL-Cache: group-level learning (Yang et al., FAST 2023) — the paper's
//! "current optimal" learned baseline.
//!
//! Faithful simplification: objects inserted close in time form *groups*;
//! utility is learned at group granularity (orders of magnitude fewer
//! predictions than per-object learning), and eviction drains the
//! lowest-utility group. Our groups close after a byte budget
//! (capacity/64); group features are (age, mean object size, request rate,
//! hits per byte); utility labels are the hits-per-byte each group earned
//! over the last observation interval; a GBDT regressor retrains
//! periodically. Before the first training, eviction is FIFO by group
//! creation (what GL-Cache's cold-start also degrades to).

use std::collections::VecDeque;

use cdn_cache::policy::RejectReason;
use cdn_cache::{AccessKind, CachePolicy, FxHashMap, ObjectId, PolicyStats, Request, Tick};
use cdn_learning::{Gbdt, GbdtParams};

const N_GROUP_FEATURES: usize = 4;

#[derive(Debug, Clone)]
struct Group {
    created: Tick,
    bytes: u64,
    /// Insertion order; objects may have been individually removed.
    members: VecDeque<ObjectId>,
    live_objects: u64,
    hits_total: u64,
    /// Hits at the previous snapshot (for interval labels).
    hits_at_snapshot: u64,
    snapshot_tick: Tick,
}

impl Group {
    fn features(&self, now: Tick, out: &mut [f64; N_GROUP_FEATURES]) {
        let age = now.saturating_sub(self.created).max(1) as f64;
        let mean_size = self.bytes as f64 / self.live_objects.max(1) as f64;
        out[0] = age.ln();
        out[1] = mean_size.max(1.0).ln();
        out[2] = (self.hits_total as f64 / age).ln().max(-20.0);
        out[3] = ((self.hits_total as f64 + 1.0) / self.bytes.max(1) as f64)
            .ln()
            .max(-30.0);
    }
}

#[derive(Debug, Clone, Copy)]
struct ObjInfo {
    size: u64,
    group: u64,
}

/// Group-level learned cache.
#[derive(Debug)]
pub struct GlCache {
    capacity: u64,
    used: u64,
    objects: FxHashMap<ObjectId, ObjInfo>,
    groups: FxHashMap<u64, Group>,
    group_order: VecDeque<u64>,
    next_group_id: u64,
    group_byte_budget: u64,
    model: Option<Gbdt>,
    samples_x: Vec<Vec<f64>>,
    samples_y: Vec<f64>,
    /// Requests between snapshot/train passes.
    pub train_interval: u64,
    last_train: Tick,
    max_samples: usize,
    stats: PolicyStats,
}

impl GlCache {
    /// GL-Cache with the given byte capacity.
    pub fn new(capacity: u64) -> Self {
        GlCache {
            capacity,
            used: 0,
            objects: FxHashMap::default(),
            groups: FxHashMap::default(),
            group_order: VecDeque::new(),
            next_group_id: 0,
            group_byte_budget: (capacity / 64).max(1),
            model: None,
            samples_x: Vec::new(),
            samples_y: Vec::new(),
            train_interval: 20_000,
            last_train: 0,
            max_samples: 8_192,
            stats: PolicyStats::default(),
        }
    }

    /// Whether the utility model has trained (diagnostics).
    pub fn trained(&self) -> bool {
        self.model.is_some()
    }

    fn current_group(&mut self, now: Tick) -> u64 {
        let need_new = match self.group_order.back() {
            Some(gid) => self.groups[gid].bytes >= self.group_byte_budget,
            None => true,
        };
        if need_new {
            let gid = self.next_group_id;
            self.next_group_id += 1;
            self.groups.insert(
                gid,
                Group {
                    created: now,
                    bytes: 0,
                    members: VecDeque::new(),
                    live_objects: 0,
                    hits_total: 0,
                    hits_at_snapshot: 0,
                    snapshot_tick: now,
                },
            );
            self.group_order.push_back(gid);
        }
        *self.group_order.back().expect("just ensured")
    }

    fn maybe_train(&mut self, now: Tick) {
        if now.saturating_sub(self.last_train) < self.train_interval {
            return;
        }
        self.last_train = now;
        // Snapshot every group: label = hits per byte earned this interval.
        let mut feats = [0.0f64; N_GROUP_FEATURES];
        for g in self.groups.values_mut() {
            let interval_hits = g.hits_total - g.hits_at_snapshot;
            if now > g.snapshot_tick && g.bytes > 0 {
                g.features(now, &mut feats);
                let label =
                    interval_hits as f64 / g.bytes as f64 / (now - g.snapshot_tick).max(1) as f64
                        * 1e9; // scale to a comfortable regression range
                if self.samples_y.len() >= self.max_samples {
                    self.samples_x.drain(..self.max_samples / 2);
                    self.samples_y.drain(..self.max_samples / 2);
                }
                self.samples_x.push(feats.to_vec());
                self.samples_y.push((label + 1.0).ln());
            }
            g.hits_at_snapshot = g.hits_total;
            g.snapshot_tick = now;
        }
        if self.samples_y.len() >= 512 {
            let mut m = Gbdt::new(GbdtParams {
                n_trees: 15,
                max_depth: 3,
                shrinkage: 0.3,
                min_leaf: 16,
                n_thresholds: 8,
            });
            m.fit_regression(&self.samples_x, &self.samples_y);
            self.model = Some(m);
        }
    }

    /// Pick the eviction group: lowest predicted utility (or oldest before
    /// the model exists).
    fn eviction_group(&self, now: Tick) -> u64 {
        let Some(model) = &self.model else {
            return *self.group_order.front().expect("nonempty");
        };
        let mut feats = [0.0f64; N_GROUP_FEATURES];
        let mut best: Option<(f64, u64)> = None;
        // Scan head groups (old groups dominate eviction candidates in
        // GL-Cache's merge scheme); cap the scan for O(1)-ish cost.
        for &gid in self.group_order.iter().take(16) {
            let g = &self.groups[&gid];
            if g.live_objects == 0 {
                return gid; // drain empties eagerly
            }
            g.features(now, &mut feats);
            let u = model.predict_raw(&feats);
            if best.is_none_or(|(bu, _)| u < bu) {
                best = Some((u, gid));
            }
        }
        best.expect("nonempty order").1
    }

    fn evict_some(&mut self, now: Tick) {
        let gid = self.eviction_group(now);
        // Drain one object (or retire the group if empty).
        loop {
            let g = self.groups.get_mut(&gid).expect("listed");
            match g.members.pop_front() {
                Some(oid) => {
                    if let Some(info) = self.objects.get(&oid) {
                        if info.group == gid {
                            let size = info.size;
                            self.objects.remove(&oid);
                            let g = self.groups.get_mut(&gid).expect("listed");
                            g.bytes -= size;
                            g.live_objects -= 1;
                            self.used -= size;
                            self.stats.evictions += 1;
                            return;
                        }
                    }
                    // Stale member (already removed): keep draining.
                }
                None => {
                    // Group exhausted: retire it.
                    self.groups.remove(&gid);
                    if let Some(pos) = self.group_order.iter().position(|&g| g == gid) {
                        self.group_order.remove(pos);
                    }
                    debug_assert!(!self.group_order.is_empty(), "cache not empty");
                    return;
                }
            }
        }
    }
}

impl CachePolicy for GlCache {
    fn name(&self) -> &str {
        "GL-Cache"
    }

    fn on_request(&mut self, req: &Request) -> AccessKind {
        self.maybe_train(req.tick);
        if let Some(&info) = self.objects.get(&req.id) {
            self.groups
                .get_mut(&info.group)
                .expect("member group live")
                .hits_total += 1;
            return AccessKind::Hit;
        }
        if req.size > self.capacity {
            return AccessKind::Rejected(RejectReason::TooLarge);
        }
        while self.used.saturating_add(req.size) > self.capacity {
            self.evict_some(req.tick);
        }
        let gid = self.current_group(req.tick);
        let g = self.groups.get_mut(&gid).expect("current");
        g.members.push_back(req.id);
        g.bytes += req.size;
        g.live_objects += 1;
        self.objects.insert(
            req.id,
            ObjInfo {
                size: req.size,
                group: gid,
            },
        );
        self.used += req.size;
        self.stats.insertions += 1;
        AccessKind::Miss
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used_bytes(&self) -> u64 {
        self.used
    }

    fn memory_bytes(&self) -> usize {
        self.objects.capacity() * (8 + std::mem::size_of::<ObjInfo>() + 8)
            + self
                .groups
                .values()
                .map(|g| g.members.capacity() * 8 + std::mem::size_of::<Group>())
                .sum::<usize>()
            + self.samples_x.capacity() * N_GROUP_FEATURES * 8
            + self.model.as_ref().map_or(0, |m| m.memory_bytes())
    }

    fn stats(&self) -> PolicyStats {
        PolicyStats {
            resident_objects: self.objects.len(),
            resident_bytes: self.used,
            ..self.stats
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replacement::lru::Lru;
    use crate::replay;
    use cdn_cache::object::micro_trace;

    #[test]
    fn accounting_invariants() {
        let reqs: Vec<(u64, u64)> = (0..10_000).map(|i| (i * 7 % 400, 1 + i % 10)).collect();
        let t = micro_trace(&reqs);
        let mut p = GlCache::new(300);
        for r in &t {
            p.on_request(r);
            assert!(p.used_bytes() <= 300);
            let sum: u64 = p.objects.values().map(|o| o.size).sum();
            assert_eq!(sum, p.used_bytes());
            let gsum: u64 = p.groups.values().map(|g| g.bytes).sum();
            assert_eq!(gsum, p.used_bytes());
        }
    }

    #[test]
    fn groups_rotate_as_bytes_accumulate() {
        let mut p = GlCache::new(6400);
        let reqs: Vec<(u64, u64)> = (0..200).map(|i| (i, 10)).collect();
        replay(&mut p, &micro_trace(&reqs));
        assert!(p.groups.len() > 1, "groups {}", p.groups.len());
    }

    #[test]
    fn trains_and_beats_lru_on_group_separable_load() {
        // Consecutive epochs: a run of reusable hot objects, then a run of
        // junk longer than the cache. Groups align with epochs, so learned
        // group utility separates them; LRU loses the hot set every round.
        let cap = 4_000; // 400 objects of size 10
        let mut p = GlCache::new(cap);
        p.train_interval = 4_000;
        let mut reqs = Vec::new();
        let mut junk = 100_000u64;
        for _round in 0..80u64 {
            for _pass in 0..4 {
                for hot in 0..20u64 {
                    reqs.push((hot, 10));
                }
            }
            for _ in 0..500 {
                reqs.push((junk, 10));
                junk += 1;
            }
        }
        let t = micro_trace(&reqs);
        let g = replay(&mut p, &t).miss_ratio();
        let mut lru = Lru::new(cap);
        let l = replay(&mut lru, &t).miss_ratio();
        assert!(p.trained());
        assert!(g < l, "GL-Cache {g} vs LRU {l}");
    }
}
