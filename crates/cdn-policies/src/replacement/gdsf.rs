//! GDSF: GreedyDual-Size with Frequency (Cherkasova & Ciardo, HPCN 2001).
//!
//! Each resident object carries priority `H = L + F·C/S` where `F` is its
//! access frequency, `S` its size, `C` a uniform retrieval cost (1), and
//! `L` the inflation value — the priority of the last evicted object. The
//! object with minimal `H` is evicted, which favours small, frequently
//! accessed, recently touched objects without timestamps.

use std::collections::BTreeSet;

use cdn_cache::policy::RejectReason;
use cdn_cache::{AccessKind, CachePolicy, FxHashMap, ObjectId, PolicyStats, Request};

use super::OrdF64;

#[derive(Debug, Clone, Copy)]
struct Entry {
    size: u64,
    freq: u64,
    priority: f64,
}

/// GreedyDual-Size-Frequency replacement.
#[derive(Debug, Clone)]
pub struct Gdsf {
    capacity: u64,
    used: u64,
    inflation: f64,
    entries: FxHashMap<ObjectId, Entry>,
    queue: BTreeSet<(OrdF64, ObjectId)>,
    stats: PolicyStats,
}

impl Gdsf {
    /// GDSF with the given byte capacity.
    pub fn new(capacity: u64) -> Self {
        Gdsf {
            capacity,
            used: 0,
            inflation: 0.0,
            entries: FxHashMap::default(),
            queue: BTreeSet::new(),
            stats: PolicyStats::default(),
        }
    }

    fn priority(&self, freq: u64, size: u64) -> f64 {
        self.inflation + freq as f64 / size.max(1) as f64
    }

    /// Current inflation value `L` (diagnostics).
    pub fn inflation(&self) -> f64 {
        self.inflation
    }
}

impl CachePolicy for Gdsf {
    fn name(&self) -> &str {
        "GDSF"
    }

    fn on_request(&mut self, req: &Request) -> AccessKind {
        if let Some(&e) = self.entries.get(&req.id) {
            self.queue.remove(&(OrdF64(e.priority), req.id));
            let freq = e.freq + 1;
            let priority = self.priority(freq, e.size);
            self.entries.insert(
                req.id,
                Entry {
                    size: e.size,
                    freq,
                    priority,
                },
            );
            self.queue.insert((OrdF64(priority), req.id));
            return AccessKind::Hit;
        }
        if req.size > self.capacity {
            return AccessKind::Rejected(RejectReason::TooLarge);
        }
        while self.used.saturating_add(req.size) > self.capacity {
            let &(OrdF64(h), victim) = self.queue.iter().next().expect("over capacity");
            self.queue.remove(&(OrdF64(h), victim));
            let e = self.entries.remove(&victim).expect("indexed");
            self.used -= e.size;
            self.inflation = h; // L := H of the evicted object
            self.stats.evictions += 1;
        }
        let priority = self.priority(1, req.size);
        self.entries.insert(
            req.id,
            Entry {
                size: req.size,
                freq: 1,
                priority,
            },
        );
        self.queue.insert((OrdF64(priority), req.id));
        self.used += req.size;
        self.stats.insertions += 1;
        AccessKind::Miss
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used_bytes(&self) -> u64 {
        self.used
    }

    fn memory_bytes(&self) -> usize {
        self.entries.capacity() * (8 + std::mem::size_of::<Entry>() + 8)
            + self.queue.len() * (std::mem::size_of::<(OrdF64, ObjectId)>() * 2)
    }

    fn stats(&self) -> PolicyStats {
        PolicyStats {
            resident_objects: self.entries.len(),
            resident_bytes: self.used,
            ..self.stats
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay;
    use cdn_cache::object::micro_trace;

    #[test]
    fn prefers_evicting_large_cold_objects() {
        // Capacity 100: small object (1B) and large (90B) inserted, then a
        // 50B object arrives: the large one has lower F/S and is evicted.
        let t = micro_trace(&[(1, 1), (2, 90), (3, 50)]);
        let mut p = Gdsf::new(100);
        replay(&mut p, &t);
        assert!(p.entries.contains_key(&ObjectId(1)));
        assert!(!p.entries.contains_key(&ObjectId(2)));
        assert!(p.entries.contains_key(&ObjectId(3)));
    }

    #[test]
    fn frequency_protects_objects() {
        // Large object hit many times (H = 20/80 = 0.25) outranks a cold
        // small one (H = 1/30 ≈ 0.03): the cold one is evicted.
        let mut reqs = vec![(1, 80); 20];
        reqs.push((2, 30));
        reqs.push((3, 50)); // 80+30+50 > 150: forces one eviction
        let t = micro_trace(&reqs);
        let mut p = Gdsf::new(150);
        replay(&mut p, &t);
        assert!(
            p.entries.contains_key(&ObjectId(1)),
            "hot large object kept"
        );
        assert!(!p.entries.contains_key(&ObjectId(2)), "cold small evicted");
    }

    #[test]
    fn inflation_monotone_nondecreasing() {
        let reqs: Vec<(u64, u64)> = (0..500).map(|i| (i * 3 % 40, 5 + i % 20)).collect();
        let t = micro_trace(&reqs);
        let mut p = Gdsf::new(100);
        let mut last = 0.0;
        for r in &t {
            p.on_request(r);
            assert!(p.inflation() >= last);
            last = p.inflation();
        }
    }

    #[test]
    fn aging_lets_new_objects_displace_stale_hot_ones() {
        // Hot object accumulates priority, goes cold; inflation from later
        // evictions lets fresh objects eventually displace it.
        let mut reqs = vec![(1, 50); 10];
        for i in 0..200u64 {
            reqs.push((100 + i, 60)); // stream of new objects
        }
        let t = micro_trace(&reqs);
        let mut p = Gdsf::new(100);
        replay(&mut p, &t);
        assert!(
            !p.entries.contains_key(&ObjectId(1)),
            "stale object aged out"
        );
    }

    #[test]
    fn accounting_invariants() {
        let reqs: Vec<(u64, u64)> = (0..2000).map(|i| (i * 7 % 80, 1 + i % 30)).collect();
        let t = micro_trace(&reqs);
        let mut p = Gdsf::new(200);
        for r in &t {
            p.on_request(r);
            assert!(p.used_bytes() <= 200);
            assert_eq!(p.queue.len(), p.entries.len());
        }
    }
}
