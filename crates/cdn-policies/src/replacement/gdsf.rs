//! GDSF: GreedyDual-Size with Frequency (Cherkasova & Ciardo, HPCN 2001).
//!
//! Each resident object carries priority `H = L + F·C/S` where `F` is its
//! access frequency, `S` its size, `C` a uniform retrieval cost (1), and
//! `L` the inflation value — the priority of the last evicted object. The
//! object with minimal `H` is evicted, which favours small, frequently
//! accessed, recently touched objects without timestamps.
//!
//! ## Lazy rekeying
//!
//! The min-tracking structure is a binary min-heap with *deferred* key
//! updates, not an ordered set. A hit only rewrites the entry's priority
//! in the hash map — O(1), no tree surgery — leaving the heap's copy
//! stale. Staleness is one-sided: priorities only grow (frequency
//! increments, inflation is non-decreasing), so a heap key is always ≤
//! the entry's current priority. Eviction pops the heap minimum and
//! checks it against the map: stale copies are re-pushed at their current
//! priority and the pop retries. When an up-to-date copy surfaces, every
//! remaining heap key (and hence every current priority) is ≥ it — it is
//! the true minimum, with ties broken by object id exactly as the ordered
//! set version broke them. The heap holds exactly one entry per resident
//! object (pop either evicts or re-pushes), so memory stays O(residents)
//! with no compaction pass. This replaced a `BTreeSet` remove+insert per
//! hit that made GDSF the slowest policy in the workspace at 514
//! ns/request; behaviour is bit-identical (pinned by the golden
//! recordings).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use cdn_cache::policy::RejectReason;
use cdn_cache::{AccessKind, CachePolicy, FxHashMap, ObjectId, PolicyStats, Request};

use super::OrdF64;

#[derive(Debug, Clone, Copy)]
struct Entry {
    size: u64,
    freq: u64,
    priority: f64,
}

/// GreedyDual-Size-Frequency replacement.
#[derive(Debug, Clone)]
pub struct Gdsf {
    capacity: u64,
    used: u64,
    inflation: f64,
    entries: FxHashMap<ObjectId, Entry>,
    /// Min-heap over `(priority, id)` with lazily updated keys: one entry
    /// per resident object, possibly at an outdated (lower) priority.
    heap: BinaryHeap<Reverse<(OrdF64, ObjectId)>>,
    stats: PolicyStats,
}

impl Gdsf {
    /// GDSF with the given byte capacity.
    pub fn new(capacity: u64) -> Self {
        Gdsf {
            capacity,
            used: 0,
            inflation: 0.0,
            entries: FxHashMap::default(),
            heap: BinaryHeap::new(),
            stats: PolicyStats::default(),
        }
    }

    fn priority(&self, freq: u64, size: u64) -> f64 {
        self.inflation + freq as f64 / size.max(1) as f64
    }

    /// Current inflation value `L` (diagnostics).
    pub fn inflation(&self) -> f64 {
        self.inflation
    }

    /// Pop the resident object with minimal current `(priority, id)`,
    /// skipping (and refreshing) stale heap keys.
    fn pop_min(&mut self) -> (f64, ObjectId, Entry) {
        loop {
            let Reverse((OrdF64(h), victim)) = self.heap.pop().expect("over capacity");
            let e = *self.entries.get(&victim).expect("heap and entries agree");
            if e.priority != h {
                // Stale key from before a hit bumped this entry; its
                // current priority is strictly higher. Re-push at the
                // current key and retry — the next up-to-date pop is the
                // true minimum.
                debug_assert!(e.priority > h, "priorities only grow");
                self.heap.push(Reverse((OrdF64(e.priority), victim)));
                continue;
            }
            self.entries.remove(&victim);
            return (h, victim, e);
        }
    }
}

impl CachePolicy for Gdsf {
    fn name(&self) -> &str {
        "GDSF"
    }

    fn on_request(&mut self, req: &Request) -> AccessKind {
        let inflation = self.inflation;
        if let Some(e) = self.entries.get_mut(&req.id) {
            // Hit path is a single map probe: the heap keeps its stale
            // (lower) key and learns the new one lazily at eviction time.
            e.freq += 1;
            e.priority = inflation + e.freq as f64 / e.size.max(1) as f64;
            return AccessKind::Hit;
        }
        if req.size > self.capacity {
            return AccessKind::Rejected(RejectReason::TooLarge);
        }
        while self.used.saturating_add(req.size) > self.capacity {
            let (h, _victim, e) = self.pop_min();
            self.used -= e.size;
            self.inflation = h; // L := H of the evicted object
            self.stats.evictions += 1;
        }
        let priority = self.priority(1, req.size);
        self.entries.insert(
            req.id,
            Entry {
                size: req.size,
                freq: 1,
                priority,
            },
        );
        self.heap.push(Reverse((OrdF64(priority), req.id)));
        self.used += req.size;
        self.stats.insertions += 1;
        AccessKind::Miss
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used_bytes(&self) -> u64 {
        self.used
    }

    fn memory_bytes(&self) -> usize {
        self.entries.capacity() * (8 + std::mem::size_of::<Entry>() + 8)
            + self.heap.len() * std::mem::size_of::<Reverse<(OrdF64, ObjectId)>>()
    }

    fn stats(&self) -> PolicyStats {
        PolicyStats {
            resident_objects: self.entries.len(),
            resident_bytes: self.used,
            ..self.stats
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay;
    use cdn_cache::object::micro_trace;

    #[test]
    fn prefers_evicting_large_cold_objects() {
        // Capacity 100: small object (1B) and large (90B) inserted, then a
        // 50B object arrives: the large one has lower F/S and is evicted.
        let t = micro_trace(&[(1, 1), (2, 90), (3, 50)]);
        let mut p = Gdsf::new(100);
        replay(&mut p, &t);
        assert!(p.entries.contains_key(&ObjectId(1)));
        assert!(!p.entries.contains_key(&ObjectId(2)));
        assert!(p.entries.contains_key(&ObjectId(3)));
    }

    #[test]
    fn frequency_protects_objects() {
        // Large object hit many times (H = 20/80 = 0.25) outranks a cold
        // small one (H = 1/30 ≈ 0.03): the cold one is evicted.
        let mut reqs = vec![(1, 80); 20];
        reqs.push((2, 30));
        reqs.push((3, 50)); // 80+30+50 > 150: forces one eviction
        let t = micro_trace(&reqs);
        let mut p = Gdsf::new(150);
        replay(&mut p, &t);
        assert!(
            p.entries.contains_key(&ObjectId(1)),
            "hot large object kept"
        );
        assert!(!p.entries.contains_key(&ObjectId(2)), "cold small evicted");
    }

    #[test]
    fn inflation_monotone_nondecreasing() {
        let reqs: Vec<(u64, u64)> = (0..500).map(|i| (i * 3 % 40, 5 + i % 20)).collect();
        let t = micro_trace(&reqs);
        let mut p = Gdsf::new(100);
        let mut last = 0.0;
        for r in &t {
            p.on_request(r);
            assert!(p.inflation() >= last);
            last = p.inflation();
        }
    }

    #[test]
    fn aging_lets_new_objects_displace_stale_hot_ones() {
        // Hot object accumulates priority, goes cold; inflation from later
        // evictions lets fresh objects eventually displace it.
        let mut reqs = vec![(1, 50); 10];
        for i in 0..200u64 {
            reqs.push((100 + i, 60)); // stream of new objects
        }
        let t = micro_trace(&reqs);
        let mut p = Gdsf::new(100);
        replay(&mut p, &t);
        assert!(
            !p.entries.contains_key(&ObjectId(1)),
            "stale object aged out"
        );
    }

    #[test]
    fn accounting_invariants() {
        let reqs: Vec<(u64, u64)> = (0..2000).map(|i| (i * 7 % 80, 1 + i % 30)).collect();
        let t = micro_trace(&reqs);
        let mut p = Gdsf::new(200);
        for r in &t {
            p.on_request(r);
            assert!(p.used_bytes() <= 200);
            // Lazy-rekey invariant: exactly one heap key per resident
            // object (stale or fresh), never an orphan for an evicted one.
            assert_eq!(p.heap.len(), p.entries.len());
        }
    }

    #[test]
    fn lazy_heap_matches_ordered_set_reference() {
        // Differential check against a straightforward BTreeSet
        // implementation of the same eviction rule (the pre-optimization
        // structure): identical outcome streams and identical inflation
        // trajectory over an eviction-heavy adversarial mix.
        use std::collections::BTreeSet;
        let mut reqs: Vec<(u64, u64)> = Vec::new();
        for i in 0..6_000u64 {
            // Hot set rehit often (stale-key churn), cold stream forces
            // evictions, occasional giants force multi-evictions.
            reqs.push(match i % 7 {
                0..=2 => (i % 5, 3 + i % 4),
                3 | 4 => (1_000 + i, 10 + i % 50),
                5 => (i % 40, 1),
                _ => (2_000 + i, 90),
            });
        }
        let t = micro_trace(&reqs);

        let mut fast = Gdsf::new(300);
        // Reference: map + ordered set, rekeyed eagerly on every hit.
        let mut ref_entries: std::collections::HashMap<ObjectId, Entry> = Default::default();
        let mut ref_queue: BTreeSet<(OrdF64, ObjectId)> = BTreeSet::new();
        let mut ref_used = 0u64;
        let mut ref_inflation = 0f64;
        for r in &t {
            let got = fast.on_request(r);
            let want = if let Some(&e) = ref_entries.get(&r.id) {
                ref_queue.remove(&(OrdF64(e.priority), r.id));
                let freq = e.freq + 1;
                let priority = ref_inflation + freq as f64 / e.size.max(1) as f64;
                ref_entries.insert(
                    r.id,
                    Entry {
                        size: e.size,
                        freq,
                        priority,
                    },
                );
                ref_queue.insert((OrdF64(priority), r.id));
                AccessKind::Hit
            } else if r.size > 300 {
                AccessKind::Rejected(RejectReason::TooLarge)
            } else {
                while ref_used.saturating_add(r.size) > 300 {
                    let &(OrdF64(h), victim) = ref_queue.iter().next().expect("over capacity");
                    ref_queue.remove(&(OrdF64(h), victim));
                    let e = ref_entries.remove(&victim).expect("indexed");
                    ref_used -= e.size;
                    ref_inflation = h;
                }
                let priority = ref_inflation + 1.0 / r.size.max(1) as f64;
                ref_entries.insert(
                    r.id,
                    Entry {
                        size: r.size,
                        freq: 1,
                        priority,
                    },
                );
                ref_queue.insert((OrdF64(priority), r.id));
                ref_used += r.size;
                AccessKind::Miss
            };
            assert_eq!(got, want, "outcome diverged at tick {}", r.tick);
            assert_eq!(fast.inflation().to_bits(), ref_inflation.to_bits());
            assert_eq!(fast.used_bytes(), ref_used);
        }
        // Residency sets must be identical at the end, not just counts.
        let mut fast_ids: Vec<u64> = fast.entries.keys().map(|id| id.0).collect();
        let mut ref_ids: Vec<u64> = ref_entries.keys().map(|id| id.0).collect();
        fast_ids.sort_unstable();
        ref_ids.sort_unstable();
        assert_eq!(fast_ids, ref_ids);
    }
}
