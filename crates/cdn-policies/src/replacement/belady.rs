//! Belady's MIN wrapped as a [`CachePolicy`], for plotting the offline
//! lower bound alongside online policies in every figure.

use std::sync::Arc as StdArc;

use cdn_cache::policy::RejectReason;
use cdn_cache::{AccessKind, CachePolicy, PolicyStats, Request};
use cdn_trace::belady::BeladyOracle;

/// The offline optimal policy. Construct with the trace's precomputed
/// next-access table ([`cdn_trace::next_access_table`]); requests must then
/// be replayed in order, and `req.tick` must index that table.
#[derive(Debug)]
pub struct BeladyPolicy {
    oracle: BeladyOracle,
    next: StdArc<Vec<u64>>,
    capacity: u64,
    stats: PolicyStats,
}

impl BeladyPolicy {
    /// Oracle policy over a specific trace's next-access table.
    pub fn new(capacity: u64, next: StdArc<Vec<u64>>) -> Self {
        BeladyPolicy {
            oracle: BeladyOracle::new(capacity),
            next,
            capacity,
            stats: PolicyStats::default(),
        }
    }
}

impl CachePolicy for BeladyPolicy {
    fn name(&self) -> &str {
        "Belady"
    }

    fn on_request(&mut self, req: &Request) -> AccessKind {
        let na = self.next[req.tick as usize];
        if self.oracle.access(req, na) {
            AccessKind::Hit
        } else if req.size > self.capacity {
            // Uniform oversized contract: the oracle's bypass of a
            // can-never-fit object is a rejection, not an ordinary miss.
            AccessKind::Rejected(RejectReason::TooLarge)
        } else {
            self.stats.insertions += 1;
            AccessKind::Miss
        }
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used_bytes(&self) -> u64 {
        self.oracle.used_bytes()
    }

    fn memory_bytes(&self) -> usize {
        self.next.len() * 8
    }

    fn stats(&self) -> PolicyStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replacement::lru::Lru;
    use crate::replay;
    use cdn_cache::object::micro_trace;
    use cdn_trace::next_access_table;

    #[test]
    fn policy_matches_oracle_run() {
        let t = micro_trace(&[(1, 1), (2, 1), (3, 1), (1, 1), (2, 1), (3, 1)]);
        let next = StdArc::new(next_access_table(&t));
        let mut p = BeladyPolicy::new(2, next);
        let m = replay(&mut p, &t);
        assert!((m.miss_ratio() - BeladyOracle::run(&t, 2)).abs() < 1e-12);
    }

    #[test]
    fn lower_bounds_lru() {
        let mut rng = cdn_cache::SimRng::new(3);
        let trace: Vec<_> = (0..3000)
            .map(|t| cdn_cache::Request::new(t, rng.u64_below(80), 1 + rng.u64_below(50)))
            .collect();
        let next = StdArc::new(next_access_table(&trace));
        let mut b = BeladyPolicy::new(600, next);
        let mut l = Lru::new(600);
        let bm = replay(&mut b, &trace).miss_ratio();
        let lm = replay(&mut l, &trace).miss_ratio();
        assert!(bm <= lm + 1e-12, "belady {bm} vs lru {lm}");
    }
}
