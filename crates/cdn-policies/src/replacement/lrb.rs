//! LRB: Learning Relaxed Belady (Song et al., NSDI 2020) — the paper's
//! simulator substrate and one of its two "active" learned baselines.
//!
//! Faithful simplification of the artifact, preserving the pieces the SCIP
//! paper interacts with:
//!
//! - **Memory window**: object metadata and training labels live within a
//!   sliding window of requests; the window is also the relaxed Belady
//!   boundary.
//! - **Features**: log recency, log size, the last 4 inter-arrival deltas
//!   and 4 exponentially-decayed counters (EDCs) — a 10-dimensional subset
//!   of the artifact's feature set.
//! - **Training**: randomly sampled accesses become regression samples
//!   labelled with (log) time-to-next-access; unlabelled samples older
//!   than the window get the beyond-boundary label. A GBDT is retrained
//!   every `train_interval` requests.
//! - **Eviction**: sample `n_candidates` residents, predict
//!   time-to-next-access, and evict the farthest-predicted candidate
//!   (relaxed Belady rule). Before the first model trains, the sampled
//!   candidate with the oldest last access is evicted (LRU-flavoured
//!   bootstrap).

use cdn_cache::policy::RejectReason;
use cdn_cache::{AccessKind, CachePolicy, FxHashMap, ObjectId, PolicyStats, Request, SimRng, Tick};
use cdn_learning::{Gbdt, GbdtParams};

const N_DELTAS: usize = 4;
const N_EDCS: usize = 4;
/// Feature vector length.
pub const N_FEATURES: usize = 2 + N_DELTAS + N_EDCS;

/// LRB hyper-parameters.
#[derive(Debug, Clone)]
pub struct LrbConfig {
    /// Memory window in requests (and relaxed Belady boundary).
    pub memory_window: u64,
    /// Probability an access is sampled for training.
    pub sample_prob: f64,
    /// Requests between model retrains.
    pub train_interval: u64,
    /// Minimum samples before the first train.
    pub min_train_samples: usize,
    /// Eviction candidate sample size.
    pub n_candidates: usize,
    /// Training-buffer capacity.
    pub max_samples: usize,
    /// Boosted-tree hyper-parameters.
    pub gbdt: GbdtParams,
}

impl Default for LrbConfig {
    fn default() -> Self {
        LrbConfig {
            memory_window: 100_000,
            sample_prob: 1.0 / 16.0,
            train_interval: 20_000,
            min_train_samples: 1_024,
            n_candidates: 32,
            max_samples: 16_384,
            gbdt: GbdtParams {
                n_trees: 20,
                max_depth: 4,
                shrinkage: 0.25,
                min_leaf: 16,
                n_thresholds: 12,
            },
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct ObjState {
    size: u64,
    last_access: Tick,
    /// Most recent inter-arrival deltas, newest first.
    deltas: [f32; N_DELTAS],
    n_deltas: u8,
    edc: [f32; N_EDCS],
    pool_slot: u32,
}

impl ObjState {
    fn features(&self, now: Tick, window: u64, out: &mut [f64; N_FEATURES]) {
        let recency = now.saturating_sub(self.last_access).min(2 * window);
        out[0] = (recency as f64 + 1.0).ln();
        out[1] = (self.size.max(1) as f64).ln();
        for i in 0..N_DELTAS {
            out[2 + i] = if i < self.n_deltas as usize {
                (self.deltas[i] as f64 + 1.0).ln()
            } else {
                (2.0 * window as f64).ln() // "unknown" sentinel
            };
        }
        for i in 0..N_EDCS {
            out[2 + N_DELTAS + i] = self.edc[i] as f64;
        }
    }

    fn touch(&mut self, now: Tick) {
        let delta = now.saturating_sub(self.last_access);
        if delta > 0 {
            self.deltas.rotate_right(1);
            self.deltas[0] = delta as f32;
            self.n_deltas = (self.n_deltas + 1).min(N_DELTAS as u8);
            for (i, e) in self.edc.iter_mut().enumerate() {
                // EDC_i ← 1 + EDC_i · 2^(−Δ / 2^(9+i))
                let half_life = (1u64 << (9 + i)) as f32;
                *e = 1.0 + *e * (-(delta as f32) / half_life * std::f32::consts::LN_2).exp();
            }
        }
        self.last_access = now;
    }
}

/// Learning relaxed Belady.
#[derive(Debug)]
pub struct Lrb {
    cfg: LrbConfig,
    capacity: u64,
    used: u64,
    resident: FxHashMap<ObjectId, ObjState>,
    pool: Vec<ObjectId>,
    model: Option<Gbdt>,
    /// Sampled accesses awaiting their next-access label.
    pending: FxHashMap<ObjectId, (Tick, [f64; N_FEATURES])>,
    samples_x: Vec<Vec<f64>>,
    samples_y: Vec<f64>,
    last_train: Tick,
    rng: SimRng,
    stats: PolicyStats,
    name: String,
}

impl Lrb {
    /// LRB with the given byte capacity and configuration.
    pub fn with_config(capacity: u64, cfg: LrbConfig, seed: u64) -> Self {
        Lrb {
            cfg,
            capacity,
            used: 0,
            resident: FxHashMap::default(),
            pool: Vec::new(),
            model: None,
            pending: FxHashMap::default(),
            samples_x: Vec::new(),
            samples_y: Vec::new(),
            last_train: 0,
            rng: SimRng::new(seed),
            stats: PolicyStats::default(),
            name: "LRB".to_string(),
        }
    }

    /// Defaults scaled to the cache size (window ≈ 8× resident objects at
    /// the workload's mean size; callers with trace knowledge should size
    /// it explicitly).
    pub fn new(capacity: u64, seed: u64) -> Self {
        Self::with_config(capacity, LrbConfig::default(), seed)
    }

    /// Whether a model has been trained (diagnostics).
    pub fn trained(&self) -> bool {
        self.model.is_some()
    }

    fn beyond_boundary_label(&self) -> f64 {
        (2.0 * self.cfg.memory_window as f64 + 1.0).ln()
    }

    fn label_pending(&mut self, id: ObjectId, now: Tick) {
        if let Some((t0, feats)) = self.pending.remove(&id) {
            let tta = now.saturating_sub(t0).min(2 * self.cfg.memory_window);
            self.push_sample(feats, (tta as f64 + 1.0).ln());
        }
    }

    fn push_sample(&mut self, feats: [f64; N_FEATURES], label: f64) {
        if self.samples_y.len() >= self.cfg.max_samples {
            let half = self.cfg.max_samples / 2;
            self.samples_x.drain(..half);
            self.samples_y.drain(..half);
        }
        self.samples_x.push(feats.to_vec());
        self.samples_y.push(label);
    }

    fn maybe_train(&mut self, now: Tick) {
        if now.saturating_sub(self.last_train) < self.cfg.train_interval {
            return;
        }
        self.last_train = now;
        // Expire pending samples that fell out of the memory window: they
        // were not re-accessed, so they get the beyond-boundary label.
        let window = self.cfg.memory_window;
        let expired: Vec<ObjectId> = self
            .pending
            .iter()
            .filter(|(_, (t0, _))| now.saturating_sub(*t0) > window)
            .map(|(&id, _)| id)
            .collect();
        let label = self.beyond_boundary_label();
        for id in expired {
            let (_, feats) = self.pending.remove(&id).expect("listed");
            self.push_sample(feats, label);
        }
        if self.samples_y.len() < self.cfg.min_train_samples {
            return;
        }
        let mut m = Gbdt::new(self.cfg.gbdt);
        m.fit_regression(&self.samples_x, &self.samples_y);
        self.model = Some(m);
    }

    fn pool_remove(&mut self, id: ObjectId) {
        let slot = self.resident[&id].pool_slot as usize;
        let last = self.pool.len() - 1;
        self.pool.swap(slot, last);
        let moved = self.pool[slot];
        self.pool.pop();
        if moved != id {
            self.resident.get_mut(&moved).expect("resident").pool_slot = slot as u32;
        }
    }

    fn evict_one(&mut self, now: Tick) -> (ObjectId, u64) {
        debug_assert!(!self.pool.is_empty());
        let n = self.cfg.n_candidates.min(self.pool.len());
        let mut feats = [0.0f64; N_FEATURES];
        let mut victim: Option<(f64, ObjectId)> = None;
        for _ in 0..n {
            let id = self.pool[self.rng.usize_below(self.pool.len())];
            let st = self.resident[&id];
            let score = match &self.model {
                Some(m) => {
                    st.features(now, self.cfg.memory_window, &mut feats);
                    m.predict_raw(&feats)
                }
                // Bootstrap: pretend predicted TTA = current age (LRU-ish).
                None => (now.saturating_sub(st.last_access) as f64 + 1.0).ln(),
            };
            if victim.is_none_or(|(s, _)| score > s) {
                victim = Some((score, id));
            }
        }
        let (_, id) = victim.expect("sampled");
        let st = self.resident[&id];
        self.pool_remove(id);
        self.resident.remove(&id);
        self.used -= st.size;
        self.stats.evictions += 1;
        (id, st.size)
    }

    // ------ core-manipulation API for enhancement wrappers (SCIP §4) ------

    /// Record a hit on a resident object (wrapper-managed hit path): runs
    /// the periodic training check and feature/sample bookkeeping.
    pub fn touch(&mut self, req: &Request) {
        self.maybe_train(req.tick);
        if self.resident.contains_key(&req.id) {
            self.observe(req, true);
        }
    }

    /// Admit an object without capacity enforcement (the wrapper owns the
    /// byte budget).
    pub fn admit(&mut self, req: &Request) {
        debug_assert!(!self.resident.contains_key(&req.id));
        self.maybe_train(req.tick);
        self.label_pending(req.id, req.tick);
        self.resident.insert(
            req.id,
            ObjState {
                size: req.size,
                last_access: req.tick,
                deltas: [0.0; N_DELTAS],
                n_deltas: 0,
                edc: [1.0; N_EDCS],
                pool_slot: self.pool.len() as u32,
            },
        );
        self.pool.push(req.id);
        self.used += req.size;
        self.stats.insertions += 1;
        self.observe(req, false);
    }

    /// Remove a resident object, returning its size.
    pub fn remove(&mut self, id: ObjectId) -> Option<u64> {
        let st = *self.resident.get(&id)?;
        self.pool_remove(id);
        self.resident.remove(&id);
        self.used -= st.size;
        Some(st.size)
    }

    /// Evict this policy's preferred victim (sampled relaxed-Belady rule),
    /// returning `(id, size)`.
    pub fn evict_victim(&mut self, now: Tick) -> Option<(ObjectId, u64)> {
        if self.pool.is_empty() {
            return None;
        }
        Some(self.evict_one(now))
    }

    /// Whether an object is resident.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.resident.contains_key(&id)
    }

    /// Compute the state an object would have after this access, updating
    /// metadata and possibly sampling for training.
    fn observe(&mut self, req: &Request, resident: bool) {
        let window = self.cfg.memory_window;
        self.label_pending(req.id, req.tick);
        if resident {
            let st = self.resident.get_mut(&req.id).expect("resident");
            st.touch(req.tick);
        }
        // Sample this access for future labeling.
        if self.rng.chance(self.cfg.sample_prob) {
            let mut feats = [0.0f64; N_FEATURES];
            if let Some(st) = self.resident.get(&req.id) {
                st.features(req.tick, window, &mut feats);
                self.pending.insert(req.id, (req.tick, feats));
            }
        }
    }
}

impl CachePolicy for Lrb {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_request(&mut self, req: &Request) -> AccessKind {
        self.maybe_train(req.tick);
        if self.resident.contains_key(&req.id) {
            self.observe(req, true);
            return AccessKind::Hit;
        }
        self.label_pending(req.id, req.tick);
        if req.size > self.capacity {
            return AccessKind::Rejected(RejectReason::TooLarge);
        }
        while self.used.saturating_add(req.size) > self.capacity {
            self.evict_one(req.tick);
        }
        self.resident.insert(
            req.id,
            ObjState {
                size: req.size,
                last_access: req.tick,
                deltas: [0.0; N_DELTAS],
                n_deltas: 0,
                edc: [1.0; N_EDCS],
                pool_slot: self.pool.len() as u32,
            },
        );
        self.pool.push(req.id);
        self.used += req.size;
        self.stats.insertions += 1;
        self.observe(req, false);
        AccessKind::Miss
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used_bytes(&self) -> u64 {
        self.used
    }

    fn memory_bytes(&self) -> usize {
        self.resident.capacity() * (8 + std::mem::size_of::<ObjState>() + 8)
            + self.pool.capacity() * 8
            + self.pending.capacity() * (8 + 8 + N_FEATURES * 8)
            + self.samples_x.capacity() * N_FEATURES * 8
            + self.samples_y.capacity() * 8
            + self.model.as_ref().map_or(0, |m| m.memory_bytes())
    }

    fn stats(&self) -> PolicyStats {
        PolicyStats {
            resident_objects: self.resident.len(),
            resident_bytes: self.used,
            ..self.stats
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replacement::lru::Lru;
    use crate::replay;
    use cdn_cache::object::micro_trace;

    fn quick_cfg() -> LrbConfig {
        LrbConfig {
            memory_window: 4_000,
            sample_prob: 0.25,
            train_interval: 2_000,
            min_train_samples: 256,
            ..LrbConfig::default()
        }
    }

    #[test]
    fn accounting_invariants() {
        let reqs: Vec<(u64, u64)> = (0..8000).map(|i| (i * 7 % 300, 1 + i % 12)).collect();
        let t = micro_trace(&reqs);
        let mut p = Lrb::with_config(200, quick_cfg(), 1);
        for r in &t {
            p.on_request(r);
            assert!(p.used_bytes() <= 200);
            assert_eq!(p.pool.len(), p.resident.len());
        }
        assert!(p.samples_y.len() <= p.cfg.max_samples);
    }

    #[test]
    fn model_trains() {
        let reqs: Vec<(u64, u64)> = (0..20_000).map(|i| (i * 13 % 500, 1 + i % 9)).collect();
        let t = micro_trace(&reqs);
        let mut p = Lrb::with_config(300, quick_cfg(), 3);
        replay(&mut p, &t);
        assert!(p.trained());
    }

    #[test]
    fn edc_grows_with_reuse() {
        let mut st = ObjState {
            size: 1,
            last_access: 0,
            deltas: [0.0; N_DELTAS],
            n_deltas: 0,
            edc: [1.0; N_EDCS],
            pool_slot: 0,
        };
        for t in 1..50u64 {
            st.touch(t * 10);
        }
        assert!(st.edc[0] > 1.5, "edc {:?}", st.edc);
        assert_eq!(st.n_deltas, N_DELTAS as u8);
        assert!((st.deltas[0] - 10.0).abs() < 1e-6);
    }

    #[test]
    fn beats_lru_on_cyclic_loop() {
        // A cyclic loop slightly larger than the cache is LRU's classic
        // pathology (≈ 100 % misses). LRB's sampled farthest-predicted
        // eviction retains a stable subset and hits on it.
        let reqs: Vec<(u64, u64)> = (0..60_000).map(|i| (i % 150, 2)).collect();
        let t = micro_trace(&reqs);
        let cap = 160; // 80 of the 150 loop objects fit
        let mut lrb = Lrb::with_config(cap, quick_cfg(), 5);
        let mut lru = Lru::new(cap);
        let a = replay(&mut lrb, &t).miss_ratio();
        let l = replay(&mut lru, &t).miss_ratio();
        assert!(l > 0.95, "sanity: LRU should thrash, got {l}");
        assert!(a < l - 0.15, "LRB {a} vs LRU {l}");
    }
}
