//! LRU-K (O'Neil, O'Neil & Weikum, SIGMOD 1993).
//!
//! Evicts the object with the largest *backward K-distance*: the object
//! whose K-th most recent reference is oldest. Objects with fewer than K
//! references have infinite backward K-distance and are evicted first (LRU
//! among themselves). Reference history is retained across evictions in a
//! bounded table, as the original requires.

use std::collections::BTreeSet;

use cdn_cache::policy::RejectReason;
use cdn_cache::{AccessKind, CachePolicy, FxHashMap, ObjectId, PolicyStats, Request, Tick};

/// Eviction key: `(band, time)` — band 0 = fewer than K references
/// (infinite K-distance, evicted first, oldest last-reference first),
/// band 1 = K-th most recent reference time. Min element = victim.
type Key = (u8, Tick, ObjectId);

#[derive(Debug, Clone)]
struct History {
    /// Most recent K reference times, newest last.
    times: Vec<Tick>,
}

/// LRU-K replacement (default K = 2).
#[derive(Debug, Clone)]
pub struct LruK {
    k: usize,
    capacity: u64,
    used: u64,
    resident: FxHashMap<ObjectId, (u64, Key)>, // id -> (size, eviction key)
    queue: BTreeSet<Key>,
    history: FxHashMap<ObjectId, History>,
    history_budget: usize,
    stats: PolicyStats,
    name: String,
}

impl LruK {
    /// LRU-K with the given byte capacity and K.
    pub fn with_k(capacity: u64, k: usize) -> Self {
        assert!(k >= 1);
        LruK {
            k,
            capacity,
            used: 0,
            resident: FxHashMap::default(),
            queue: BTreeSet::new(),
            history: FxHashMap::default(),
            history_budget: 1 << 16,
            stats: PolicyStats::default(),
            name: format!("LRU-{k}"),
        }
    }

    /// The classic K = 2 configuration.
    pub fn new(capacity: u64) -> Self {
        Self::with_k(capacity, 2)
    }

    fn key_for(&self, id: ObjectId, hist: &History) -> Key {
        if hist.times.len() >= self.k {
            (1, hist.times[hist.times.len() - self.k], id)
        } else {
            (0, *hist.times.last().expect("nonempty history"), id)
        }
    }

    fn record_reference(&mut self, id: ObjectId, tick: Tick) {
        if self.history.len() >= self.history_budget && !self.history.contains_key(&id) {
            // Amortised trim: drop the older half by last reference time.
            let mut lasts: Vec<Tick> = self
                .history
                .values()
                .map(|h| *h.times.last().expect("nonempty"))
                .collect();
            lasts.sort_unstable();
            let median = lasts[lasts.len() / 2];
            let resident = &self.resident;
            self.history.retain(|hid, h| {
                resident.contains_key(hid) || *h.times.last().expect("nonempty") > median
            });
        }
        let k = self.k;
        let h = self
            .history
            .entry(id)
            .or_insert(History { times: Vec::new() });
        h.times.push(tick);
        if h.times.len() > k {
            h.times.remove(0);
        }
    }

    fn reindex(&mut self, id: ObjectId) {
        let hist = self.history.get(&id).expect("referenced").clone();
        let new_key = self.key_for(id, &hist);
        if let Some((_, old_key)) = self.resident.get(&id) {
            self.queue.remove(old_key);
            self.queue.insert(new_key);
            self.resident.get_mut(&id).expect("resident").1 = new_key;
        }
    }

    fn evict_one(&mut self) {
        let &victim_key = self.queue.iter().next().expect("evict on nonempty");
        self.queue.remove(&victim_key);
        let (_, _, id) = victim_key;
        let (size, _) = self.resident.remove(&id).expect("indexed");
        self.used -= size;
        self.stats.evictions += 1;
    }

    // ------ core-manipulation API for enhancement wrappers (SCIP §4) ------

    /// Record a reference and refresh the K-distance index (hit path for
    /// wrappers that manage hits themselves).
    pub fn touch(&mut self, id: ObjectId, tick: Tick) {
        self.record_reference(id, tick);
        if self.resident.contains_key(&id) {
            self.reindex(id);
        }
    }

    /// Admit an object without capacity enforcement (the wrapper owns the
    /// byte budget). Also records the reference.
    pub fn admit(&mut self, req: &Request) {
        debug_assert!(!self.resident.contains_key(&req.id));
        self.record_reference(req.id, req.tick);
        let hist = self.history.get(&req.id).expect("just recorded").clone();
        let key = self.key_for(req.id, &hist);
        self.resident.insert(req.id, (req.size, key));
        self.queue.insert(key);
        self.used += req.size;
        self.stats.insertions += 1;
    }

    /// Remove a resident object, returning its size.
    pub fn remove(&mut self, id: ObjectId) -> Option<u64> {
        let (size, key) = self.resident.remove(&id)?;
        self.queue.remove(&key);
        self.used -= size;
        Some(size)
    }

    /// Evict this policy's preferred victim, returning `(id, size)`.
    pub fn evict_victim(&mut self) -> Option<(ObjectId, u64)> {
        let &victim_key = self.queue.iter().next()?;
        let (_, _, id) = victim_key;
        let size = self.remove(id).expect("indexed");
        self.stats.evictions += 1;
        Some((id, size))
    }

    /// Whether an object is resident.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.resident.contains_key(&id)
    }
}

impl CachePolicy for LruK {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_request(&mut self, req: &Request) -> AccessKind {
        self.record_reference(req.id, req.tick);
        if self.resident.contains_key(&req.id) {
            self.reindex(req.id);
            return AccessKind::Hit;
        }
        if req.size > self.capacity {
            return AccessKind::Rejected(RejectReason::TooLarge);
        }
        while self.used.saturating_add(req.size) > self.capacity {
            self.evict_one();
        }
        let hist = self.history.get(&req.id).expect("just recorded").clone();
        let key = self.key_for(req.id, &hist);
        self.resident.insert(req.id, (req.size, key));
        self.queue.insert(key);
        self.used += req.size;
        self.stats.insertions += 1;
        AccessKind::Miss
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used_bytes(&self) -> u64 {
        self.used
    }

    fn memory_bytes(&self) -> usize {
        self.resident.capacity() * (8 + 8 + std::mem::size_of::<Key>())
            + self.queue.len() * std::mem::size_of::<Key>() * 2
            + self.history.capacity() * (8 + self.k * 8 + 24)
    }

    fn stats(&self) -> PolicyStats {
        PolicyStats {
            resident_objects: self.resident.len(),
            resident_bytes: self.used,
            ..self.stats
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay;
    use cdn_cache::object::micro_trace;

    #[test]
    fn single_reference_objects_evicted_first() {
        // 1 referenced twice (K=2 satisfied), 2 and 3 once each: inserting
        // 4 must evict 2 (oldest single-reference), not 1.
        let t = micro_trace(&[(1, 1), (1, 1), (2, 1), (3, 1), (4, 1), (1, 1)]);
        let mut p = LruK::new(3);
        let m = replay(&mut p, &t);
        // Hits: second access of 1, and final access of 1.
        assert_eq!(m.hits(), 2);
        assert!(!p.resident.contains_key(&ObjectId(2)));
        assert!(p.resident.contains_key(&ObjectId(1)));
    }

    #[test]
    fn history_survives_eviction() {
        // Object 1 referenced once, evicted, then referenced again: its
        // second reference makes it a 2-reference object immediately.
        let t = micro_trace(&[(1, 1), (2, 1), (3, 1), (1, 1), (4, 1), (5, 1)]);
        let mut p = LruK::new(2);
        replay(&mut p, &t);
        // After 1's second reference it holds band-1 status: 4 and 5 (one
        // reference each) should be evicted in preference to it.
        assert!(p.resident.contains_key(&ObjectId(1)));
    }

    #[test]
    fn resists_scan_better_than_lru() {
        use crate::replacement::lru::Lru;
        let mut reqs = Vec::new();
        let mut next = 100u64;
        for i in 0..3000u64 {
            if i % 3 == 0 {
                reqs.push((i / 3 % 3, 1)); // hot trio, re-referenced often
            } else {
                reqs.push((next, 1)); // single-reference scan
                next += 1;
            }
        }
        let t = micro_trace(&reqs);
        let mut lruk = LruK::new(4);
        let mut lru = Lru::new(4);
        let a = replay(&mut lruk, &t).miss_ratio();
        let b = replay(&mut lru, &t).miss_ratio();
        assert!(a < b, "LRU-K {a} vs LRU {b}");
    }

    #[test]
    fn capacity_and_accounting_hold() {
        let reqs: Vec<(u64, u64)> = (0..2000).map(|i| (i * 13 % 97, 1 + i % 10)).collect();
        let t = micro_trace(&reqs);
        let mut p = LruK::new(50);
        for r in &t {
            p.on_request(r);
            assert!(p.used_bytes() <= 50);
            assert_eq!(p.queue.len(), p.resident.len());
            let sum: u64 = p.resident.values().map(|(s, _)| s).sum();
            assert_eq!(sum, p.used_bytes());
        }
    }

    #[test]
    fn history_table_bounded() {
        let mut p = LruK::new(10);
        p.history_budget = 256;
        let reqs: Vec<(u64, u64)> = (0..10_000).map(|i| (i, 1)).collect();
        replay(&mut p, &micro_trace(&reqs));
        assert!(p.history.len() <= 300, "history {}", p.history.len());
    }
}
