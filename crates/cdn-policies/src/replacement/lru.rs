//! Plain LRU — the deployed TDC baseline the paper improves on.

use cdn_cache::{AccessKind, CachePolicy, PolicyStats, Request};

use crate::insertion::deciders::Mip;
use crate::insertion::InsertionCache;

/// Least-recently-used replacement (MRU insert, MRU promote, LRU evict).
#[derive(Debug, Clone)]
pub struct Lru {
    inner: InsertionCache<Mip>,
}

impl Lru {
    /// LRU cache with the given byte capacity.
    pub fn new(capacity: u64) -> Self {
        Lru {
            inner: InsertionCache::new(Mip, capacity, "LRU"),
        }
    }

    /// Read-only view of the queue (tests, labelers).
    pub fn queue(&self) -> &cdn_cache::LruQueue {
        self.inner.queue()
    }
}

impl CachePolicy for Lru {
    fn name(&self) -> &str {
        "LRU"
    }

    fn on_request(&mut self, req: &Request) -> AccessKind {
        self.inner.on_request(req)
    }

    fn capacity(&self) -> u64 {
        self.inner.capacity()
    }

    fn used_bytes(&self) -> u64 {
        self.inner.used_bytes()
    }

    fn memory_bytes(&self) -> usize {
        self.inner.memory_bytes()
    }

    fn stats(&self) -> PolicyStats {
        self.inner.stats()
    }

    #[inline]
    fn prefetch_hint(&self, id: cdn_cache::ObjectId) {
        self.inner.prefetch_hint(id);
    }

    fn for_each_resident(&self, visit: &mut dyn FnMut(&cdn_cache::ResidentEntry)) -> bool {
        self.inner.for_each_resident(visit)
    }

    fn restore_resident(&mut self, entries: &[cdn_cache::ResidentEntry]) -> bool {
        self.inner.restore_resident(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay;
    use cdn_cache::object::micro_trace;

    #[test]
    fn evicts_least_recent() {
        let t = micro_trace(&[(1, 1), (2, 1), (1, 1), (3, 1), (2, 1)]);
        // Cap 2: after 1,2,hit(1) order is [1,2]; 3 evicts 2; 2 misses.
        let mut p = Lru::new(2);
        let m = replay(&mut p, &t);
        assert_eq!(m.hits(), 1);
        assert_eq!(m.misses(), 4);
    }

    #[test]
    fn hit_ratio_grows_with_capacity() {
        let reqs: Vec<(u64, u64)> = (0..2000).map(|i| (i * 7 % 64, 1)).collect();
        let t = micro_trace(&reqs);
        let mut small = Lru::new(8);
        let mut big = Lru::new(64);
        let s = replay(&mut small, &t).miss_ratio();
        let b = replay(&mut big, &t).miss_ratio();
        assert!(b < s, "big {b} vs small {s}");
    }
}
