//! SS-LRU: Smart Segmented LRU (Li et al., DAC 2022).
//!
//! A segmented LRU whose *admission segment* is chosen by a lightweight
//! online model: an incoming object predicted to be reused enters the
//! warm segment directly, everything else starts in probation. The model
//! is a logistic regression over (log size, log frequency, log recency
//! gap) trained continuously from eviction outcomes — the smallest model
//! that captures the paper's "smart" segment steering. Hits climb segments
//! exactly as in S4LRU.

use cdn_cache::policy::RejectReason;
use cdn_cache::{
    AccessKind, CachePolicy, FxHashMap, ObjectId, PolicyStats, Request, SegmentedQueue, Tick,
};
use cdn_learning::sigmoid;

const N_SEGMENTS: usize = 3;
const LR: f64 = 0.05;

/// Smart segmented LRU.
#[derive(Debug, Clone)]
pub struct SsLru {
    q: SegmentedQueue,
    /// Online logistic regression weights (bias + 3 features).
    w: [f64; 4],
    freq: FxHashMap<ObjectId, (u32, Tick)>,
    freq_budget: usize,
    stats: PolicyStats,
}

fn features(size: u64, freq: u32, gap: f64) -> [f64; 3] {
    [
        (size.max(1) as f64).ln() / 16.0,
        (freq as f64 + 1.0).ln() / 8.0,
        (gap + 1.0).ln() / 16.0,
    ]
}

impl SsLru {
    /// SS-LRU with the given byte capacity.
    pub fn new(capacity: u64) -> Self {
        SsLru {
            q: SegmentedQueue::equal(capacity, N_SEGMENTS),
            w: [0.0; 4],
            freq: FxHashMap::default(),
            freq_budget: 1 << 15,
            stats: PolicyStats::default(),
        }
    }

    fn observe(&mut self, id: ObjectId, tick: Tick) -> (u32, f64) {
        if self.freq.len() >= self.freq_budget && !self.freq.contains_key(&id) {
            self.freq.retain(|_, (c, _)| {
                *c /= 2;
                *c > 0
            });
        }
        let e = self.freq.entry(id).or_insert((0, tick));
        let gap = tick.saturating_sub(e.1) as f64;
        let f = e.0;
        e.0 = e.0.saturating_add(1);
        e.1 = tick;
        (f, gap)
    }

    fn score(&self, x: &[f64; 3]) -> f64 {
        sigmoid(self.w[0] + self.w[1] * x[0] + self.w[2] * x[1] + self.w[3] * x[2])
    }

    fn train(&mut self, x: &[f64; 3], reused: bool) {
        let err = self.score(x) - f64::from(reused);
        self.w[0] -= LR * err;
        self.w[1] -= LR * err * x[0];
        self.w[2] -= LR * err * x[1];
        self.w[3] -= LR * err * x[2];
    }

    /// Model weights (diagnostics).
    pub fn weights(&self) -> [f64; 4] {
        self.w
    }
}

impl CachePolicy for SsLru {
    fn name(&self) -> &str {
        "SS-LRU"
    }

    fn on_request(&mut self, req: &Request) -> AccessKind {
        if self.q.contains(req.id) {
            self.observe(req.id, req.tick);
            let cur = self.q.segment_of(req.id).expect("resident");
            let target = (cur + 1).min(N_SEGMENTS - 1);
            let evicted = self.q.hit_move_to(req.id, target, req.tick);
            self.stats.evictions += evicted.len() as u64;
            return AccessKind::Hit;
        }
        if req.size > self.q.capacity() {
            return AccessKind::Rejected(RejectReason::TooLarge);
        }
        let (freq, gap) = self.observe(req.id, req.tick);
        let x = features(req.size, freq, gap);
        // Smart admission: predicted-reusable objects skip probation.
        let seg = if self.score(&x) >= 0.5 { 1 } else { 0 };
        let evicted = self.q.insert(seg, req.id, req.size, req.tick);
        for v in &evicted {
            // Eviction outcome trains the admission model.
            let (vf, _) = self.freq.get(&v.id).copied().unwrap_or((1, 0));
            let vx = features(
                v.size,
                vf.saturating_sub(1),
                v.inserted_tick.saturating_sub(0) as f64,
            );
            self.train(&vx, v.hits > 0);
        }
        self.stats.evictions += evicted.len() as u64;
        self.stats.insertions += 1;
        AccessKind::Miss
    }

    fn capacity(&self) -> u64 {
        self.q.capacity()
    }

    fn used_bytes(&self) -> u64 {
        self.q.used_bytes()
    }

    fn memory_bytes(&self) -> usize {
        self.q.memory_bytes() + self.freq.capacity() * 24 + 32
    }

    fn stats(&self) -> PolicyStats {
        PolicyStats {
            resident_objects: self.q.len(),
            resident_bytes: self.q.used_bytes(),
            ..self.stats
        }
    }

    #[inline]
    fn prefetch_hint(&self, id: ObjectId) {
        self.q.prefetch_lookup(id);
    }

    fn for_each_resident(&self, visit: &mut dyn FnMut(&cdn_cache::ResidentEntry)) -> bool {
        cdn_cache::export_segmented_queue(&self.q, visit);
        true
    }

    fn restore_resident(&mut self, entries: &[cdn_cache::ResidentEntry]) -> bool {
        // Segment placement and recency are reconstructed; the admission
        // model (weights + frequency table) restarts cold and re-trains.
        cdn_cache::restore_segmented_queue(&mut self.q, entries);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replacement::lru::Lru;
    use crate::replay;
    use cdn_cache::object::micro_trace;

    #[test]
    fn capacity_respected_and_weights_finite() {
        let reqs: Vec<(u64, u64)> = (0..5000).map(|i| (i * 7 % 200, 1 + i % 8)).collect();
        let t = micro_trace(&reqs);
        let mut p = SsLru::new(150);
        for r in &t {
            p.on_request(r);
            assert!(p.used_bytes() <= 150);
        }
        assert!(p.weights().iter().all(|w| w.is_finite()));
    }

    #[test]
    fn learns_to_separate_scan_from_hot() {
        let mut reqs = Vec::new();
        let mut next = 10_000u64;
        for i in 0..12_000u64 {
            if i % 3 == 0 {
                reqs.push((i / 3 % 8, 4)); // hot small, reused
            } else {
                reqs.push((next, 64)); // cold large scan
                next += 1;
            }
        }
        let t = micro_trace(&reqs);
        let cap = 700;
        let mut ss = SsLru::new(cap);
        let mut lru = Lru::new(cap);
        let a = replay(&mut ss, &t).miss_ratio();
        let l = replay(&mut lru, &t).miss_ratio();
        assert!(a < l, "SS-LRU {a} vs LRU {l}");
    }

    #[test]
    fn hits_climb_segments() {
        let mut p = SsLru::new(3000);
        for r in micro_trace(&[(1, 10), (1, 10), (1, 10), (1, 10)]) {
            p.on_request(&r);
        }
        assert_eq!(p.q.segment_of(cdn_cache::ObjectId(1)), Some(N_SEGMENTS - 1));
    }
}
