//! S4LRU (Huang et al., "An analysis of Facebook photo caching"; used as a
//! CDN baseline in Zhou et al., ICS 2018 — the CDN-A paper).
//!
//! Four equal LRU segments: misses insert at the head of segment 0, a hit
//! in segment `i` moves the object to the head of segment `min(i+1, 3)`,
//! overflow cascades downward and segment 0 evicts.

use cdn_cache::policy::RejectReason;
use cdn_cache::{AccessKind, CachePolicy, PolicyStats, Request, SegmentedQueue};

/// Segmented LRU with 4 levels.
#[derive(Debug, Clone)]
pub struct S4Lru {
    q: SegmentedQueue,
    stats: PolicyStats,
}

impl S4Lru {
    /// S4LRU with the given byte capacity.
    pub fn new(capacity: u64) -> Self {
        S4Lru {
            q: SegmentedQueue::equal(capacity, 4),
            stats: PolicyStats::default(),
        }
    }

    /// Internal queue (tests).
    pub fn queue(&self) -> &SegmentedQueue {
        &self.q
    }
}

impl CachePolicy for S4Lru {
    fn name(&self) -> &str {
        "S4LRU"
    }

    fn on_request(&mut self, req: &Request) -> AccessKind {
        if self.q.contains(req.id) {
            let cur = self.q.segment_of(req.id).expect("resident");
            let target = (cur + 1).min(3);
            let evicted = self.q.hit_move_to(req.id, target, req.tick);
            self.stats.evictions += evicted.len() as u64;
            return AccessKind::Hit;
        }
        if req.size > self.q.capacity() {
            return AccessKind::Rejected(RejectReason::TooLarge);
        }
        let evicted = self.q.insert(0, req.id, req.size, req.tick);
        self.stats.evictions += evicted.len() as u64;
        self.stats.insertions += 1;
        AccessKind::Miss
    }

    fn capacity(&self) -> u64 {
        self.q.capacity()
    }

    fn used_bytes(&self) -> u64 {
        self.q.used_bytes()
    }

    fn memory_bytes(&self) -> usize {
        self.q.memory_bytes()
    }

    fn stats(&self) -> PolicyStats {
        PolicyStats {
            resident_objects: self.q.len(),
            resident_bytes: self.q.used_bytes(),
            ..self.stats
        }
    }

    #[inline]
    fn prefetch_hint(&self, id: cdn_cache::ObjectId) {
        self.q.prefetch_lookup(id);
    }

    fn for_each_resident(&self, visit: &mut dyn FnMut(&cdn_cache::ResidentEntry)) -> bool {
        cdn_cache::export_segmented_queue(&self.q, visit);
        true
    }

    fn restore_resident(&mut self, entries: &[cdn_cache::ResidentEntry]) -> bool {
        cdn_cache::restore_segmented_queue(&mut self.q, entries);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replacement::lru::Lru;
    use crate::replay;
    use cdn_cache::object::micro_trace;
    use cdn_cache::ObjectId;

    #[test]
    fn misses_enter_level_zero_and_hits_climb() {
        let mut p = S4Lru::new(4000);
        for r in micro_trace(&[(1, 10), (1, 10), (1, 10), (1, 10), (1, 10)]) {
            p.on_request(&r);
        }
        assert_eq!(p.queue().segment_of(ObjectId(1)), Some(3)); // saturates at 3
    }

    #[test]
    fn one_hit_wonders_cannot_pollute_upper_levels() {
        let mut p = S4Lru::new(400);
        let reqs: Vec<(u64, u64)> = (0..100).map(|i| (i, 10)).collect();
        for r in micro_trace(&reqs) {
            p.on_request(&r);
        }
        for seg in 1..4 {
            assert_eq!(p.queue().iter_segment(seg).count(), 0, "segment {seg}");
        }
    }

    #[test]
    fn beats_lru_on_scan_mixed_workload() {
        // Hot objects touched twice per round climb out of level 0; the
        // scan that follows (longer than the whole cache) only churns
        // level 0. LRU loses the hot set to every scan.
        let mut reqs = Vec::new();
        let mut next = 1000u64;
        for _round in 0..150 {
            for _pass in 0..2 {
                for hot in 0..4u64 {
                    reqs.push((hot, 10));
                }
            }
            for _ in 0..32 {
                reqs.push((next, 10));
                next += 1;
            }
        }
        let t = micro_trace(&reqs);
        let cap = 160;
        let mut s4 = S4Lru::new(cap);
        let mut lru = Lru::new(cap);
        let a = replay(&mut s4, &t).miss_ratio();
        let b = replay(&mut lru, &t).miss_ratio();
        assert!(a < b, "S4LRU {a} vs LRU {b}");
    }
}
