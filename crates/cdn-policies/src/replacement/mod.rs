//! Full cache replacement algorithms (victim selection + insertion +
//! promotion), the paper's §6.4 comparison set.
//!
//! Passive (recency/frequency structured): [`lru`], [`lruk`], [`s4lru`],
//! [`sslru`], [`gdsf`], [`lhd`], [`arc`]. Active (learned eviction):
//! [`lecar`], [`cacheus`], [`lrb`], [`glcache`]. Plus the offline
//! [`belady`] oracle policy used as the lower bound in every figure.

pub mod arc;
pub mod belady;
pub mod cacheus;
pub mod gdsf;
pub mod glcache;
pub mod lecar;
pub mod lhd;
pub mod lrb;
pub mod lru;
pub mod lruk;
pub mod s4lru;
pub mod sslru;

pub use arc::Arc;
pub use belady::BeladyPolicy;
pub use cacheus::Cacheus;
pub use gdsf::Gdsf;
pub use glcache::GlCache;
pub use lecar::LeCar;
pub use lhd::Lhd;
pub use lrb::{Lrb, LrbConfig};
pub use lru::Lru;
pub use lruk::LruK;
pub use s4lru::S4Lru;
pub use sslru::SsLru;

/// Total-order wrapper for `f64` priorities in `BTreeSet`s. Priorities in
/// this crate are always finite; `total_cmp` keeps the order total anyway.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrdF64(pub f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::OrdF64;

    #[test]
    fn ordf64_orders_and_dedups() {
        use std::collections::BTreeSet;
        let mut s = BTreeSet::new();
        s.insert(OrdF64(3.5));
        s.insert(OrdF64(1.0));
        s.insert(OrdF64(2.0));
        s.insert(OrdF64(1.0));
        let v: Vec<f64> = s.iter().map(|o| o.0).collect();
        assert_eq!(v, vec![1.0, 2.0, 3.5]);
    }
}
