//! LHD: Least Hit Density (Beckmann, Chen & Cidon, NSDI 2018).
//!
//! LHD ranks objects by *hit density* — expected hits per byte of
//! space-time the object will consume — estimated from the empirical
//! age-conditioned behaviour of that object's class, and evicts the lowest
//! density among a random sample of residents. Our classes are
//! (log₂ size, log₂ current age) buckets whose hit/eviction counters decay
//! periodically, which reproduces LHD's adaptivity without its full
//! conditional-probability machinery.

use cdn_cache::policy::RejectReason;
use cdn_cache::{AccessKind, CachePolicy, FxHashMap, ObjectId, PolicyStats, Request, SimRng, Tick};

const SIZE_BUCKETS: usize = 32;
const AGE_BUCKETS: usize = 32;
const SAMPLE: usize = 16;
/// Counter decay period (events) and factor.
const DECAY_EVERY: u64 = 1 << 14;
const DECAY: f64 = 0.9;

#[derive(Debug, Clone, Copy)]
struct Resident {
    size: u64,
    last_access: Tick,
    pool_slot: u32,
}

#[derive(Debug, Clone, Copy, Default)]
struct ClassStats {
    hits: f64,
    evictions: f64,
}

/// Least-hit-density replacement with sampled eviction.
#[derive(Debug, Clone)]
pub struct Lhd {
    capacity: u64,
    used: u64,
    resident: FxHashMap<ObjectId, Resident>,
    /// Random-sampling pool; swap-remove keeps it dense.
    pool: Vec<ObjectId>,
    classes: Vec<ClassStats>,
    events: u64,
    rng: SimRng,
    stats: PolicyStats,
}

fn bucket_log2(v: u64) -> usize {
    (64 - v.max(1).leading_zeros() as usize).min(SIZE_BUCKETS - 1)
}

fn class_index(size: u64, age: u64) -> usize {
    let s = bucket_log2(size);
    let a = bucket_log2(age.max(1)).min(AGE_BUCKETS - 1);
    s * AGE_BUCKETS + a
}

impl Lhd {
    /// LHD with the given byte capacity.
    pub fn new(capacity: u64, seed: u64) -> Self {
        Lhd {
            capacity,
            used: 0,
            resident: FxHashMap::default(),
            pool: Vec::new(),
            classes: vec![ClassStats::default(); SIZE_BUCKETS * AGE_BUCKETS],
            events: 0,
            rng: SimRng::new(seed),
            stats: PolicyStats::default(),
        }
    }

    fn tick_event(&mut self) {
        self.events += 1;
        if self.events.is_multiple_of(DECAY_EVERY) {
            for c in &mut self.classes {
                c.hits *= DECAY;
                c.evictions *= DECAY;
            }
        }
    }

    /// Estimated hit density of a resident object at `now`.
    fn density(&self, r: &Resident, now: Tick) -> f64 {
        let age = now.saturating_sub(r.last_access);
        let c = &self.classes[class_index(r.size, age)];
        let total = c.hits + c.evictions;
        // Unseen classes get an optimistic prior so new behaviour is
        // explored rather than insta-evicted.
        let hit_prob = if total < 1.0 { 0.5 } else { c.hits / total };
        // Expected remaining space-time ∝ age (older without reuse means a
        // longer expected wait) × size.
        hit_prob / ((age.max(1) as f64) * r.size.max(1) as f64)
    }

    fn pool_remove(&mut self, id: ObjectId) {
        let slot = self.resident[&id].pool_slot as usize;
        let last = self.pool.len() - 1;
        self.pool.swap(slot, last);
        let moved = self.pool[slot];
        self.pool.pop();
        if moved != id {
            self.resident.get_mut(&moved).expect("resident").pool_slot = slot as u32;
        }
    }

    fn evict_one(&mut self, now: Tick) {
        debug_assert!(!self.pool.is_empty());
        let mut victim: Option<(f64, ObjectId)> = None;
        let samples = SAMPLE.min(self.pool.len());
        for _ in 0..samples {
            let id = self.pool[self.rng.usize_below(self.pool.len())];
            let r = self.resident[&id];
            let d = self.density(&r, now);
            if victim.is_none_or(|(vd, _)| d < vd) {
                victim = Some((d, id));
            }
        }
        let (_, id) = victim.expect("sampled at least once");
        let r = self.resident[&id];
        let age = now.saturating_sub(r.last_access);
        self.classes[class_index(r.size, age)].evictions += 1.0;
        self.pool_remove(id);
        self.resident.remove(&id);
        self.used -= r.size;
        self.stats.evictions += 1;
    }
}

impl CachePolicy for Lhd {
    fn name(&self) -> &str {
        "LHD"
    }

    fn on_request(&mut self, req: &Request) -> AccessKind {
        self.tick_event();
        if let Some(r) = self.resident.get_mut(&req.id) {
            let age = req.tick.saturating_sub(r.last_access);
            r.last_access = req.tick;
            let size = r.size;
            self.classes[class_index(size, age)].hits += 1.0;
            return AccessKind::Hit;
        }
        if req.size > self.capacity {
            return AccessKind::Rejected(RejectReason::TooLarge);
        }
        while self.used.saturating_add(req.size) > self.capacity {
            self.evict_one(req.tick);
        }
        self.resident.insert(
            req.id,
            Resident {
                size: req.size,
                last_access: req.tick,
                pool_slot: self.pool.len() as u32,
            },
        );
        self.pool.push(req.id);
        self.used += req.size;
        self.stats.insertions += 1;
        AccessKind::Miss
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used_bytes(&self) -> u64 {
        self.used
    }

    fn memory_bytes(&self) -> usize {
        self.resident.capacity() * (8 + std::mem::size_of::<Resident>() + 8)
            + self.pool.capacity() * 8
            + self.classes.len() * std::mem::size_of::<ClassStats>()
    }

    fn stats(&self) -> PolicyStats {
        PolicyStats {
            resident_objects: self.resident.len(),
            resident_bytes: self.used,
            ..self.stats
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replacement::lru::Lru;
    use crate::replay;
    use cdn_cache::object::micro_trace;

    #[test]
    fn pool_and_map_stay_consistent() {
        let reqs: Vec<(u64, u64)> = (0..3000).map(|i| (i * 7 % 150, 1 + i % 9)).collect();
        let t = micro_trace(&reqs);
        let mut p = Lhd::new(100, 1);
        for r in &t {
            p.on_request(r);
            assert_eq!(p.pool.len(), p.resident.len());
            assert!(p.used_bytes() <= 100);
            // Spot-check slot backlinks.
            if let Some(&id) = p.pool.first() {
                assert_eq!(p.resident[&id].pool_slot, 0);
            }
        }
        let sum: u64 = p.resident.values().map(|r| r.size).sum();
        assert_eq!(sum, p.used_bytes());
    }

    #[test]
    fn favours_reused_class_over_one_hit_class() {
        // Hot small objects (reused) vs cold large scan: after learning,
        // LHD should beat LRU.
        let mut reqs = Vec::new();
        let mut next = 10_000u64;
        for i in 0..12_000u64 {
            if i % 3 == 0 {
                reqs.push((i / 3 % 16, 4));
            } else {
                reqs.push((next, 64));
                next += 1;
            }
        }
        let t = micro_trace(&reqs);
        let cap = 700;
        let mut lhd = Lhd::new(cap, 3);
        let mut lru = Lru::new(cap);
        let a = replay(&mut lhd, &t).miss_ratio();
        let l = replay(&mut lru, &t).miss_ratio();
        assert!(a < l, "LHD {a} vs LRU {l}");
    }

    #[test]
    fn decay_keeps_counters_bounded() {
        let mut p = Lhd::new(50, 5);
        let reqs: Vec<(u64, u64)> = (0..200_000).map(|i| (i % 20, 1)).collect();
        replay(&mut p, &micro_trace(&reqs));
        let max = p
            .classes
            .iter()
            .map(|c| c.hits + c.evictions)
            .fold(0.0f64, f64::max);
        // Without decay a single class could reach ~200k; with decay the
        // steady state is DECAY_EVERY · DECAY/(1-DECAY) ≈ 9 · DECAY_EVERY.
        assert!(max < 12.0 * DECAY_EVERY as f64, "max counter {max}");
    }
}
