//! ARC: Adaptive Replacement Cache (Megiddo & Modha, FAST 2003),
//! generalised to variable object sizes by running the adaptation target
//! `p` in bytes.
//!
//! Two resident lists — T1 (recency, seen once) and T2 (frequency, seen at
//! least twice) — shadowed by ghost lists B1/B2. Ghost hits steer `p`, the
//! byte budget T1 is allowed to occupy.

use cdn_cache::ghost::GhostEntry;
use cdn_cache::policy::RejectReason;
use cdn_cache::{AccessKind, CachePolicy, GhostList, LruQueue, PolicyStats, Request};

/// Adaptive replacement cache.
#[derive(Debug, Clone)]
pub struct Arc {
    capacity: u64,
    /// Target byte budget for T1.
    p: u64,
    t1: LruQueue,
    t2: LruQueue,
    b1: GhostList,
    b2: GhostList,
    stats: PolicyStats,
}

impl Arc {
    /// ARC with the given byte capacity.
    pub fn new(capacity: u64) -> Self {
        Arc {
            capacity,
            p: 0,
            // Budgets are enforced by the ARC logic itself; the queues are
            // unbounded containers here.
            t1: LruQueue::new(u64::MAX),
            t2: LruQueue::new(u64::MAX),
            b1: GhostList::new(capacity),
            b2: GhostList::new(capacity),
            stats: PolicyStats::default(),
        }
    }

    /// Current adaptation target in bytes (diagnostics).
    pub fn p(&self) -> u64 {
        self.p
    }

    /// Evict from T1 or T2 according to `p` until `incoming` fits.
    fn replace(&mut self, incoming: u64, from_b2: bool) {
        while self
            .t1
            .used_bytes()
            .saturating_add(self.t2.used_bytes())
            .saturating_add(incoming)
            > self.capacity
        {
            let prefer_t1 = !self.t1.is_empty()
                && (self.t1.used_bytes() > self.p
                    || (from_b2 && self.t1.used_bytes() >= self.p)
                    || self.t2.is_empty());
            let (victim, ghost) = if prefer_t1 {
                (self.t1.evict_lru().expect("nonempty"), &mut self.b1)
            } else {
                (self.t2.evict_lru().expect("nonempty"), &mut self.b2)
            };
            ghost.add(GhostEntry {
                id: victim.id,
                size: victim.size,
                evicted_tick: victim.last_access,
                tag: 0,
            });
            self.stats.evictions += 1;
        }
    }
}

impl CachePolicy for Arc {
    fn name(&self) -> &str {
        "ARC"
    }

    fn on_request(&mut self, req: &Request) -> AccessKind {
        // Case I: hit in T1 or T2 → move to T2 MRU.
        if self.t1.contains(req.id) {
            let mut meta = self.t1.remove(req.id).expect("resident");
            meta.hits += 1;
            meta.last_access = req.tick;
            self.t2.insert_meta_mru(meta);
            return AccessKind::Hit;
        }
        if self.t2.contains(req.id) {
            self.t2.record_hit(req.id, req.tick);
            self.t2.promote_to_mru(req.id);
            return AccessKind::Hit;
        }
        if req.size > self.capacity {
            return AccessKind::Rejected(RejectReason::TooLarge);
        }
        // Case II: ghost hit in B1 → grow p.
        if self.b1.contains(req.id) {
            let ratio = if self.b1.used_bytes() == 0 {
                1.0
            } else {
                (self.b2.used_bytes() as f64 / self.b1.used_bytes() as f64).max(1.0)
            };
            let delta = (req.size as f64 * ratio) as u64;
            self.p = (self.p + delta).min(self.capacity);
            self.b1.delete(req.id);
            self.replace(req.size, false);
            self.t2.insert_mru(req.id, req.size, req.tick);
            self.stats.insertions += 1;
            return AccessKind::Miss;
        }
        // Case III: ghost hit in B2 → shrink p.
        if self.b2.contains(req.id) {
            let ratio = if self.b2.used_bytes() == 0 {
                1.0
            } else {
                (self.b1.used_bytes() as f64 / self.b2.used_bytes() as f64).max(1.0)
            };
            let delta = (req.size as f64 * ratio) as u64;
            self.p = self.p.saturating_sub(delta);
            self.b2.delete(req.id);
            self.replace(req.size, true);
            self.t2.insert_mru(req.id, req.size, req.tick);
            self.stats.insertions += 1;
            return AccessKind::Miss;
        }
        // Case IV: brand-new object → T1. (Directory trimming is handled
        // by the ghost lists' own byte budgets.)
        self.replace(req.size, false);
        self.t1.insert_mru(req.id, req.size, req.tick);
        self.stats.insertions += 1;
        AccessKind::Miss
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used_bytes(&self) -> u64 {
        self.t1.used_bytes() + self.t2.used_bytes()
    }

    fn memory_bytes(&self) -> usize {
        self.t1.memory_bytes()
            + self.t2.memory_bytes()
            + self.b1.memory_bytes()
            + self.b2.memory_bytes()
    }

    fn stats(&self) -> PolicyStats {
        PolicyStats {
            resident_objects: self.t1.len() + self.t2.len(),
            resident_bytes: self.used_bytes(),
            ..self.stats
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replacement::lru::Lru;
    use crate::replay;
    use cdn_cache::object::micro_trace;
    use cdn_cache::ObjectId;

    #[test]
    fn second_access_promotes_to_t2() {
        let mut p = Arc::new(10);
        for r in micro_trace(&[(1, 1), (1, 1)]) {
            p.on_request(&r);
        }
        assert!(!p.t1.contains(ObjectId(1)));
        assert!(p.t2.contains(ObjectId(1)));
    }

    #[test]
    fn ghost_hit_in_b1_grows_p() {
        let mut p = Arc::new(2);
        // 1 and 2 fill T1; 3 evicts 1 into B1; re-request 1 → p grows.
        for r in micro_trace(&[(1, 1), (2, 1), (3, 1), (1, 1)]) {
            p.on_request(&r);
        }
        assert!(p.p() > 0);
        assert!(p.t2.contains(ObjectId(1)));
    }

    #[test]
    fn scan_does_not_flush_frequent_set() {
        // Rounds of (hot set touched twice, then a scan longer than the
        // cache): LRU loses the hot set to every scan; ARC's T2 keeps it.
        let mut reqs = Vec::new();
        let mut next = 100u64;
        for _round in 0..100 {
            for _pass in 0..2 {
                for hot in 0..4u64 {
                    reqs.push((hot, 1));
                }
            }
            for _ in 0..16 {
                reqs.push((next, 1));
                next += 1;
            }
        }
        let t = micro_trace(&reqs);
        let mut arc = Arc::new(8);
        let mut lru = Lru::new(8);
        let a = replay(&mut arc, &t).miss_ratio();
        let l = replay(&mut lru, &t).miss_ratio();
        assert!(a < l, "ARC {a} vs LRU {l}");
    }

    #[test]
    fn capacity_never_exceeded() {
        let reqs: Vec<(u64, u64)> = (0..3000).map(|i| (i * 11 % 120, 1 + i % 17)).collect();
        let t = micro_trace(&reqs);
        let mut p = Arc::new(100);
        for r in &t {
            p.on_request(r);
            assert!(p.used_bytes() <= 100);
            assert!(p.p() <= 100);
        }
    }

    #[test]
    fn recency_and_frequency_hits_both_served() {
        let t = micro_trace(&[(1, 1), (1, 1), (1, 1), (2, 1), (2, 1)]);
        let mut p = Arc::new(4);
        let m = replay(&mut p, &t);
        assert_eq!(m.hits(), 3);
    }
}
