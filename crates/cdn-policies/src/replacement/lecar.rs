//! LeCaR: Learning Cache Replacement (Vietri et al., HotStorage 2018).
//!
//! Two experts — LRU and LFU — each with a ghost list of its own eviction
//! mistakes. On a miss that hits expert E's ghost list, E's weight decays
//! multiplicatively (`w ← w·e^{-λ}`, then renormalise): regret
//! minimisation. Evictions follow a coin flip weighted by the current
//! expert weights. Object frequency survives eviction by riding in the
//! ghost entry's tag, as the original's history requires.

use std::collections::BTreeSet;

use cdn_cache::ghost::GhostEntry;
use cdn_cache::policy::RejectReason;
use cdn_cache::{
    AccessKind, CachePolicy, FxHashMap, GhostList, LruQueue, ObjectId, PolicyStats, Request,
    SimRng, Tick,
};

/// LeCaR's default learning rate.
pub const DEFAULT_LAMBDA: f64 = 0.45;

/// Learning cache replacement with LRU + LFU experts.
#[derive(Debug, Clone)]
pub struct LeCar {
    capacity: u64,
    recency: LruQueue,
    /// (freq, last access, id) — min element is the LFU victim.
    freq_queue: BTreeSet<(u64, Tick, ObjectId)>,
    freq: FxHashMap<ObjectId, (u64, Tick)>,
    h_lru: GhostList,
    h_lfu: GhostList,
    w_lru: f64,
    /// Multiplicative penalty exponent.
    pub lambda: f64,
    rng: SimRng,
    stats: PolicyStats,
    name: String,
}

impl LeCar {
    /// LeCaR with the given byte capacity.
    pub fn new(capacity: u64, seed: u64) -> Self {
        LeCar {
            capacity,
            recency: LruQueue::new(u64::MAX),
            freq_queue: BTreeSet::new(),
            freq: FxHashMap::default(),
            // LeCaR sizes each expert's history at the cache size.
            h_lru: GhostList::new(capacity),
            h_lfu: GhostList::new(capacity),
            w_lru: 0.5,
            lambda: DEFAULT_LAMBDA,
            rng: SimRng::new(seed),
            stats: PolicyStats::default(),
            name: "LeCaR".to_string(),
        }
    }

    /// Current LRU-expert weight (diagnostics).
    pub fn w_lru(&self) -> f64 {
        self.w_lru
    }

    /// Penalise an expert and renormalise.
    fn penalise(&mut self, lru_expert: bool) {
        let decay = (-self.lambda).exp();
        let (mut a, mut b) = (self.w_lru, 1.0 - self.w_lru);
        if lru_expert {
            a *= decay;
        } else {
            b *= decay;
        }
        self.w_lru = (a / (a + b)).clamp(0.01, 0.99);
    }

    fn bump_freq(&mut self, id: ObjectId, tick: Tick, base: u64) {
        let (f, last) = self.freq.get(&id).copied().unwrap_or((base, tick));
        self.freq_queue.remove(&(f, last, id));
        self.freq.insert(id, (f + 1, tick));
        self.freq_queue.insert((f + 1, tick, id));
    }

    fn evict_one(&mut self) {
        let use_lru = self.rng.chance(self.w_lru);
        let victim_id = if use_lru {
            self.recency.peek_lru().expect("nonempty").id
        } else {
            self.freq_queue.iter().next().expect("nonempty").2
        };
        let meta = self.recency.remove(victim_id).expect("resident");
        let (f, last) = self.freq.remove(&victim_id).expect("tracked");
        self.freq_queue.remove(&(f, last, victim_id));
        let ghost = if use_lru {
            &mut self.h_lru
        } else {
            &mut self.h_lfu
        };
        ghost.add(GhostEntry {
            id: victim_id,
            size: meta.size,
            evicted_tick: meta.last_access,
            tag: f, // frequency survives in history
        });
        self.stats.evictions += 1;
    }
}

impl CachePolicy for LeCar {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_request(&mut self, req: &Request) -> AccessKind {
        if self.recency.contains(req.id) {
            self.recency.record_hit(req.id, req.tick);
            self.recency.promote_to_mru(req.id);
            self.bump_freq(req.id, req.tick, 0);
            return AccessKind::Hit;
        }
        if req.size > self.capacity {
            return AccessKind::Rejected(RejectReason::TooLarge);
        }
        // Regret updates from ghost hits.
        let mut restored_freq = 0;
        if let Some(e) = self.h_lru.delete(req.id) {
            self.penalise(true);
            restored_freq = e.tag;
        } else if let Some(e) = self.h_lfu.delete(req.id) {
            self.penalise(false);
            restored_freq = e.tag;
        }
        while self.recency.used_bytes().saturating_add(req.size) > self.capacity {
            self.evict_one();
        }
        self.recency.insert_mru(req.id, req.size, req.tick);
        self.freq.insert(req.id, (restored_freq + 1, req.tick));
        self.freq_queue
            .insert((restored_freq + 1, req.tick, req.id));
        self.stats.insertions += 1;
        AccessKind::Miss
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used_bytes(&self) -> u64 {
        self.recency.used_bytes()
    }

    fn memory_bytes(&self) -> usize {
        self.recency.memory_bytes()
            + self.freq.capacity() * 32
            + self.freq_queue.len() * 48
            + self.h_lru.memory_bytes()
            + self.h_lfu.memory_bytes()
    }

    fn stats(&self) -> PolicyStats {
        PolicyStats {
            resident_objects: self.recency.len(),
            resident_bytes: self.recency.used_bytes(),
            ..self.stats
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replacement::lru::Lru;
    use crate::replay;
    use cdn_cache::object::micro_trace;

    #[test]
    fn structures_stay_consistent() {
        let reqs: Vec<(u64, u64)> = (0..3000).map(|i| (i * 7 % 90, 1 + i % 5)).collect();
        let t = micro_trace(&reqs);
        let mut p = LeCar::new(60, 1);
        for r in &t {
            p.on_request(r);
            assert!(p.used_bytes() <= 60);
            assert_eq!(p.freq.len(), p.recency.len());
            assert_eq!(p.freq_queue.len(), p.recency.len());
        }
    }

    #[test]
    fn weights_stay_normalised() {
        let reqs: Vec<(u64, u64)> = (0..5000).map(|i| (i * 13 % 200, 1)).collect();
        let t = micro_trace(&reqs);
        let mut p = LeCar::new(20, 3);
        for r in &t {
            p.on_request(r);
            assert!((0.01..=0.99).contains(&p.w_lru()));
        }
    }

    #[test]
    fn lfu_expert_wins_on_frequency_skew() {
        // Frequent objects re-referenced at long distance + recency churn:
        // LFU protects them, plain LRU cannot.
        let mut reqs = Vec::new();
        let mut next = 1000u64;
        for round in 0..200u64 {
            for hot in 0..4u64 {
                reqs.push((hot, 1));
            }
            for _ in 0..8 {
                reqs.push((next, 1));
                next += 1;
            }
            let _ = round;
        }
        let t = micro_trace(&reqs);
        let cap = 8;
        let mut lecar = LeCar::new(cap, 5);
        let mut lru = Lru::new(cap);
        let a = replay(&mut lecar, &t).miss_ratio();
        let l = replay(&mut lru, &t).miss_ratio();
        assert!(a < l, "LeCaR {a} vs LRU {l}");
    }

    #[test]
    fn ghost_frequency_restored() {
        let mut p = LeCar::new(2, 7);
        // Access 1 three times, evict it, bring it back: frequency > 1.
        for r in micro_trace(&[(1, 1), (1, 1), (1, 1), (2, 1), (3, 1), (4, 1), (1, 1)]) {
            p.on_request(&r);
        }
        let (f, _) = p.freq[&cdn_cache::ObjectId(1)];
        assert!(f > 1, "restored frequency {f}");
    }
}
