//! The three elementary placement deciders: MIP, LIP and BIP
//! (Qureshi et al., "Adaptive insertion policies for high performance
//! caching", ISCA 2007).

use cdn_cache::{EntryMeta, InsertPos, LruQueue, Request, SimRng, Tick};

use super::{InsertionDecider, MissDecision, PromoteAction};

/// MRU insertion policy — the classic LRU algorithm's insertion half.
#[derive(Debug, Clone, Copy, Default)]
pub struct Mip;

impl InsertionDecider for Mip {
    fn on_miss(&mut self, _req: &Request, _cache: &LruQueue) -> MissDecision {
        MissDecision::at(InsertPos::Mru)
    }

    fn on_hit(&mut self, _req: &Request, _meta: &EntryMeta, _cache: &LruQueue) -> PromoteAction {
        PromoteAction::ToMru
    }
}

/// LRU insertion policy: every missing object enters at the LRU end; a hit
/// promotes to MRU. Thrash-resistant, but new popular objects struggle to
/// establish themselves (the paper's Figure 8 discussion).
#[derive(Debug, Clone, Copy, Default)]
pub struct Lip;

impl InsertionDecider for Lip {
    fn on_miss(&mut self, _req: &Request, _cache: &LruQueue) -> MissDecision {
        MissDecision::at(InsertPos::Lru)
    }

    fn on_hit(&mut self, _req: &Request, _meta: &EntryMeta, _cache: &LruQueue) -> PromoteAction {
        PromoteAction::ToMru
    }
}

/// Bimodal insertion policy: LIP, except a small fraction `epsilon` of
/// misses insert at MRU so genuinely popular newcomers can take hold.
#[derive(Debug, Clone)]
pub struct Bip {
    /// Probability of an MRU insert.
    pub epsilon: f64,
    rng: SimRng,
}

impl Bip {
    /// Qureshi's ε = 1/32 default.
    pub fn new(seed: u64) -> Self {
        Self::with_epsilon(1.0 / 32.0, seed)
    }

    /// Custom throttle.
    pub fn with_epsilon(epsilon: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&epsilon));
        Bip {
            epsilon,
            rng: SimRng::new(seed),
        }
    }
}

impl InsertionDecider for Bip {
    fn on_miss(&mut self, _req: &Request, _cache: &LruQueue) -> MissDecision {
        if self.rng.chance(self.epsilon) {
            MissDecision::at(InsertPos::Mru)
        } else {
            MissDecision::at(InsertPos::Lru)
        }
    }

    fn on_hit(&mut self, _req: &Request, _meta: &EntryMeta, _cache: &LruQueue) -> PromoteAction {
        PromoteAction::ToMru
    }

    fn on_evict(&mut self, _victim: &EntryMeta, _tick: Tick) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insertion::InsertionCache;
    use crate::replay;
    use cdn_cache::object::micro_trace;
    use cdn_cache::CachePolicy;

    #[test]
    fn mip_inserts_at_mru() {
        let mut p = InsertionCache::new(Mip, 10, "LRU");
        for r in micro_trace(&[(1, 1), (2, 1)]) {
            p.on_request(&r);
        }
        assert_eq!(p.queue().peek_mru().unwrap().id.0, 2);
        assert!(p.queue().peek_mru().unwrap().inserted_at_mru);
    }

    #[test]
    fn lip_inserts_at_lru() {
        let mut p = InsertionCache::new(Lip, 10, "LIP");
        for r in micro_trace(&[(1, 1), (2, 1)]) {
            p.on_request(&r);
        }
        assert_eq!(p.queue().peek_lru().unwrap().id.0, 2);
        assert!(!p.queue().peek_lru().unwrap().inserted_at_mru);
    }

    #[test]
    fn bip_mixes_positions() {
        let mut p = InsertionCache::new(Bip::with_epsilon(0.5, 3), 1_000_000, "BIP");
        for r in micro_trace(&(0..1000).map(|i| (i, 1)).collect::<Vec<_>>()) {
            p.on_request(&r);
        }
        let mru_inserts = p.queue().iter().filter(|m| m.inserted_at_mru).count();
        assert!(
            (300..700).contains(&mru_inserts),
            "mru inserts {mru_inserts}"
        );
    }

    #[test]
    fn bip_epsilon_zero_is_lip() {
        let t = micro_trace(&(0..200).map(|i| (i % 7, 1)).collect::<Vec<_>>());
        let mut bip = InsertionCache::new(Bip::with_epsilon(0.0, 1), 3, "BIP0");
        let mut lip = InsertionCache::new(Lip, 3, "LIP");
        let a = replay(&mut bip, &t).miss_ratio();
        let b = replay(&mut lip, &t).miss_ratio();
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn lip_beats_mip_on_scan_workload() {
        // Working set {0,1} with an interleaved one-hit-wonder scan: LIP
        // keeps the hot pair, MIP thrashes.
        let mut reqs = Vec::new();
        let mut next = 100u64;
        for i in 0..600u64 {
            if i % 3 == 0 {
                reqs.push((i / 3 % 2, 1));
            } else {
                reqs.push((next, 1));
                next += 1;
            }
        }
        let t = micro_trace(&reqs);
        let mut lip = InsertionCache::new(Lip, 2, "LIP");
        let mut mip = InsertionCache::new(Mip, 2, "LRU");
        let lip_mr = replay(&mut lip, &t).miss_ratio();
        let mip_mr = replay(&mut mip, &t).miss_ratio();
        assert!(lip_mr < mip_mr, "LIP {lip_mr} vs MIP {mip_mr}");
    }
}
