//! DTA: insertion-policy selection by Decision Tree Analysis (Khan &
//! Jiménez, ICCD 2010).
//!
//! **Adaptation from CPU caches**: the original trains decision trees over
//! program features to pick an insertion policy per region. For an object
//! cache the analogous design is a periodically retrained shallow decision
//! tree over *object* features (log size, observed frequency, time since
//! last access) predicting whether the incoming object will be reused
//! before eviction; predicted-reusable objects insert at MRU, the rest at
//! LRU. Training labels come from eviction outcomes (`hits > 0`), gathered
//! in a sliding buffer — the same eviction-driven supervision the original
//! derives from set dueling. The tree is one depth-3 CART from our GBDT
//! module; retraining every `train_interval` requests gives DTA its
//! characteristic compute overhead (visible in Figure 9a).

use cdn_cache::{EntryMeta, FxHashMap, InsertPos, LruQueue, ObjectId, Request, Tick};
use cdn_learning::{Classifier, Gbdt, GbdtParams};

use super::{InsertionDecider, MissDecision, PromoteAction};

const FEATURES: usize = 3;

/// Decision-tree-analysis insertion.
#[derive(Debug, Clone)]
pub struct Dta {
    model: Option<Gbdt>,
    samples_x: Vec<Vec<f64>>,
    samples_y: Vec<f64>,
    /// Retrain period in evictions.
    pub train_interval: usize,
    /// Sliding training-buffer capacity.
    pub buffer: usize,
    evictions_since_train: usize,
    /// Coarse access history for the frequency feature.
    freq: FxHashMap<ObjectId, (u32, Tick)>,
    freq_budget: usize,
}

fn features(size: u64, freq: u32, gap: f64) -> Vec<f64> {
    vec![
        (size.max(1) as f64).ln(),
        (freq as f64 + 1.0).ln(),
        (gap + 1.0).ln(),
    ]
}

impl Dta {
    /// DTA with the given frequency-table budget (≈ cache object count).
    pub fn new(freq_budget: usize) -> Self {
        Dta {
            model: None,
            samples_x: Vec::new(),
            samples_y: Vec::new(),
            train_interval: 2_000,
            buffer: 8_000,
            evictions_since_train: 0,
            freq: FxHashMap::default(),
            freq_budget: freq_budget.max(1024),
        }
    }

    fn observe(&mut self, id: ObjectId, tick: Tick) -> (u32, f64) {
        if self.freq.len() >= self.freq_budget && !self.freq.contains_key(&id) {
            self.freq.retain(|_, (c, _)| {
                *c /= 2;
                *c > 0
            });
        }
        let entry = self.freq.entry(id).or_insert((0, tick));
        let gap = tick.saturating_sub(entry.1) as f64;
        let freq = entry.0;
        entry.0 = entry.0.saturating_add(1);
        entry.1 = tick;
        (freq, gap)
    }

    fn maybe_train(&mut self) {
        self.evictions_since_train += 1;
        if self.evictions_since_train < self.train_interval || self.samples_y.len() < 200 {
            return;
        }
        self.evictions_since_train = 0;
        let mut m = Gbdt::new(GbdtParams {
            n_trees: 1,
            max_depth: 3,
            shrinkage: 1.0,
            min_leaf: 16,
            n_thresholds: 8,
        });
        m.fit(&self.samples_x, &self.samples_y);
        self.model = Some(m);
    }

    /// Whether a model has been trained yet (diagnostics).
    pub fn trained(&self) -> bool {
        self.model.is_some()
    }
}

impl InsertionDecider for Dta {
    fn on_miss(&mut self, req: &Request, _cache: &LruQueue) -> MissDecision {
        let (freq, gap) = self.observe(req.id, req.tick);
        let pos = match &self.model {
            Some(m) if !m.predict(&features(req.size, freq, gap)) => InsertPos::Lru,
            _ => InsertPos::Mru,
        };
        // Stash the features' inputs in the tag so eviction can rebuild the
        // training sample: pack freq (32b) and a coarse gap (32b).
        let gap_coarse = (gap as u64).min(u32::MAX as u64);
        MissDecision {
            pos,
            tag: ((freq as u64) << 32) | gap_coarse,
        }
    }

    fn on_hit(&mut self, req: &Request, _meta: &EntryMeta, _cache: &LruQueue) -> PromoteAction {
        self.observe(req.id, req.tick);
        PromoteAction::ToMru
    }

    fn on_evict(&mut self, victim: &EntryMeta, _tick: Tick) {
        let freq = (victim.tag >> 32) as u32;
        let gap = (victim.tag & u32::MAX as u64) as f64;
        if self.samples_y.len() >= self.buffer {
            // Slide: drop the oldest half wholesale (amortised O(1)).
            let half = self.buffer / 2;
            self.samples_x.drain(..half);
            self.samples_y.drain(..half);
        }
        self.samples_x.push(features(victim.size, freq, gap));
        self.samples_y.push(f64::from(victim.hits > 0));
        self.maybe_train();
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of_val(self)
            + self.samples_x.capacity() * FEATURES * 8
            + self.samples_y.capacity() * 8
            + self.freq.capacity() * 24
            + self.model.as_ref().map_or(0, |m| m.memory_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insertion::deciders::Mip;
    use crate::insertion::InsertionCache;
    use crate::replay;
    use cdn_cache::object::micro_trace;

    fn scan_mix(n: u64) -> Vec<cdn_cache::Request> {
        let mut reqs = Vec::new();
        let mut next = 10_000u64;
        for i in 0..n {
            if i % 3 == 0 {
                reqs.push((i / 3 % 4, 50)); // hot small
            } else {
                reqs.push((next, 5_000)); // dead large
                next += 1;
            }
        }
        micro_trace(&reqs)
    }

    #[test]
    fn trains_after_enough_evictions() {
        let mut p = InsertionCache::new(Dta::new(4096), 10_200, "DTA");
        let mut dta_trained = false;
        for r in scan_mix(20_000) {
            use cdn_cache::CachePolicy;
            p.on_request(&r);
            dta_trained |= p.decider().trained();
        }
        assert!(dta_trained);
    }

    #[test]
    fn beats_lru_on_size_separable_traffic() {
        let t = scan_mix(30_000);
        let cap = 10_200;
        let mut dta = InsertionCache::new(Dta::new(4096), cap, "DTA");
        let mut lru = InsertionCache::new(Mip, cap, "LRU");
        let d = replay(&mut dta, &t).miss_ratio();
        let l = replay(&mut lru, &t).miss_ratio();
        assert!(d < l, "DTA {d} vs LRU {l}");
    }

    #[test]
    fn buffer_stays_bounded() {
        let mut p = InsertionCache::new(Dta::new(4096), 1_000, "DTA");
        for r in scan_mix(30_000) {
            use cdn_cache::CachePolicy;
            p.on_request(&r);
        }
        assert!(p.decider().samples_y.len() <= p.decider().buffer);
    }
}
