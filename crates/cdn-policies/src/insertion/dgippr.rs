//! DGIPPR: genetic insertion and promotion for PseudoLRU replacement
//! (Jiménez, MICRO 2013).
//!
//! **Adaptation from CPU caches**: the original evolves per-position
//! insertion/promotion vectors for a 16-way PseudoLRU stack with a genetic
//! algorithm evaluated by set dueling. On an object cache we keep the GA
//! and the phenotype but swap the stack for an 8-segment queue: a genome is
//! `(insert_seg, promote_step)` — where misses enter and how far a hit
//! jumps toward the protected end. Genomes are evaluated online in
//! round-robin epochs on the live hit rate; each generation keeps the best
//! half, refills by uniform crossover and mutates. The periodic evaluation
//! machinery is what gives DGIPPR its elevated CPU cost in Figure 9(a).

use cdn_cache::policy::RejectReason;
use cdn_cache::{AccessKind, CachePolicy, PolicyStats, Request, SegmentedQueue, SimRng};

const N_SEGMENTS: usize = 8;
const POPULATION: usize = 8;

/// One candidate policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Genome {
    /// Segment misses insert into (0 = LRU end).
    pub insert_seg: u8,
    /// Segments a hit jumps upward.
    pub promote_step: u8,
}

impl Genome {
    fn random(rng: &mut SimRng) -> Self {
        Genome {
            insert_seg: rng.u64_below(N_SEGMENTS as u64) as u8,
            promote_step: 1 + rng.u64_below(N_SEGMENTS as u64 - 1) as u8,
        }
    }

    fn crossover(a: Genome, b: Genome, rng: &mut SimRng) -> Genome {
        Genome {
            insert_seg: if rng.chance(0.5) {
                a.insert_seg
            } else {
                b.insert_seg
            },
            promote_step: if rng.chance(0.5) {
                a.promote_step
            } else {
                b.promote_step
            },
        }
    }

    fn mutate(&mut self, rng: &mut SimRng) {
        if rng.chance(0.2) {
            self.insert_seg = rng.u64_below(N_SEGMENTS as u64) as u8;
        }
        if rng.chance(0.2) {
            self.promote_step = 1 + rng.u64_below(N_SEGMENTS as u64 - 1) as u8;
        }
    }
}

/// Genetically-tuned insertion and promotion.
#[derive(Debug, Clone)]
pub struct Dgippr {
    q: SegmentedQueue,
    population: Vec<Genome>,
    fitness: Vec<(u64, u64)>, // (hits, requests) per genome
    current: usize,
    /// Requests each genome is evaluated for per generation.
    pub epoch_len: u64,
    epoch_left: u64,
    generations: u64,
    rng: SimRng,
    stats: PolicyStats,
}

impl Dgippr {
    /// Fresh policy with a random initial population.
    pub fn new(capacity: u64, seed: u64) -> Self {
        let mut rng = SimRng::new(seed);
        let mut population: Vec<Genome> =
            (0..POPULATION).map(|_| Genome::random(&mut rng)).collect();
        // Seed the classic policies so generation 0 is never hopeless.
        population[0] = Genome {
            insert_seg: (N_SEGMENTS - 1) as u8,
            promote_step: N_SEGMENTS as u8, // ≈ LRU: insert top, hit → top
        };
        population[1] = Genome {
            insert_seg: 0,
            promote_step: N_SEGMENTS as u8, // ≈ LIP
        };
        let epoch_len = 2_000;
        Dgippr {
            q: SegmentedQueue::equal(capacity, N_SEGMENTS),
            population,
            fitness: vec![(0, 0); POPULATION],
            current: 0,
            epoch_len,
            epoch_left: epoch_len,
            generations: 0,
            rng,
            stats: PolicyStats::default(),
        }
    }

    fn evolve(&mut self) {
        self.generations += 1;
        // Rank genomes by hit rate (unevaluated → 0).
        let mut order: Vec<usize> = (0..POPULATION).collect();
        let rate = |&(h, r): &(u64, u64)| {
            if r == 0 {
                0.0
            } else {
                h as f64 / r as f64
            }
        };
        order.sort_by(|&a, &b| {
            rate(&self.fitness[b])
                .partial_cmp(&rate(&self.fitness[a]))
                .expect("finite rates")
        });
        let survivors: Vec<Genome> = order[..POPULATION / 2]
            .iter()
            .map(|&i| self.population[i])
            .collect();
        let mut next = survivors.clone();
        while next.len() < POPULATION {
            let a = survivors[self.rng.usize_below(survivors.len())];
            let b = survivors[self.rng.usize_below(survivors.len())];
            let mut child = Genome::crossover(a, b, &mut self.rng);
            child.mutate(&mut self.rng);
            next.push(child);
        }
        self.population = next;
        self.fitness = vec![(0, 0); POPULATION];
        self.current = 0;
    }

    fn advance_epoch(&mut self) {
        self.epoch_left -= 1;
        if self.epoch_left == 0 {
            self.epoch_left = self.epoch_len;
            self.current += 1;
            if self.current == POPULATION {
                self.evolve();
            }
        }
    }

    /// Change the per-genome evaluation epoch (takes effect immediately).
    pub fn set_epoch_len(&mut self, len: u64) {
        assert!(len > 0);
        self.epoch_len = len;
        self.epoch_left = self.epoch_left.min(len);
    }

    /// Generations completed (diagnostics).
    pub fn generations(&self) -> u64 {
        self.generations
    }

    /// Currently active genome (diagnostics).
    pub fn active_genome(&self) -> Genome {
        self.population[self.current]
    }
}

impl CachePolicy for Dgippr {
    fn name(&self) -> &str {
        "DGIPPR"
    }

    fn on_request(&mut self, req: &Request) -> AccessKind {
        let genome = self.population[self.current];
        let outcome = if self.q.contains(req.id) {
            let cur = self.q.segment_of(req.id).expect("resident");
            let target = (cur + genome.promote_step as usize).min(N_SEGMENTS - 1);
            let evicted = self.q.hit_move_to(req.id, target, req.tick);
            self.stats.evictions += evicted.len() as u64;
            self.fitness[self.current].0 += 1;
            AccessKind::Hit
        } else if req.size > self.q.capacity() {
            AccessKind::Rejected(RejectReason::TooLarge)
        } else {
            let evicted = self
                .q
                .insert(genome.insert_seg as usize, req.id, req.size, req.tick);
            self.stats.evictions += evicted.len() as u64;
            self.stats.insertions += 1;
            AccessKind::Miss
        };
        self.fitness[self.current].1 += 1;
        self.advance_epoch();
        outcome
    }

    fn capacity(&self) -> u64 {
        self.q.capacity()
    }

    fn used_bytes(&self) -> u64 {
        self.q.used_bytes()
    }

    fn memory_bytes(&self) -> usize {
        self.q.memory_bytes() + POPULATION * std::mem::size_of::<Genome>()
    }

    fn stats(&self) -> PolicyStats {
        PolicyStats {
            resident_objects: self.q.len(),
            resident_bytes: self.q.used_bytes(),
            ..self.stats
        }
    }

    #[inline]
    fn prefetch_hint(&self, id: cdn_cache::ObjectId) {
        self.q.prefetch_lookup(id);
    }

    fn for_each_resident(&self, visit: &mut dyn FnMut(&cdn_cache::ResidentEntry)) -> bool {
        cdn_cache::export_segmented_queue(&self.q, visit);
        true
    }

    fn restore_resident(&mut self, entries: &[cdn_cache::ResidentEntry]) -> bool {
        cdn_cache::restore_segmented_queue(&mut self.q, entries);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdn_cache::object::micro_trace;

    #[test]
    fn genome_fields_in_range_after_evolution() {
        let mut p = Dgippr::new(1000, 3);
        p.set_epoch_len(10);
        let reqs: Vec<(u64, u64)> = (0..2000).map(|i| (i % 30, 1)).collect();
        for r in micro_trace(&reqs) {
            p.on_request(&r);
        }
        assert!(p.generations() > 0);
        for g in &p.population {
            assert!((g.insert_seg as usize) < N_SEGMENTS);
            assert!(g.promote_step >= 1);
        }
    }

    #[test]
    fn fitness_attributed_to_active_genome() {
        let mut p = Dgippr::new(1000, 5);
        p.epoch_left = p.epoch_len; // genome 0 active
        for r in micro_trace(&[(1, 1), (1, 1), (1, 1)]) {
            p.on_request(&r);
        }
        assert_eq!(p.fitness[0], (2, 3));
    }

    #[test]
    fn improves_over_generations_on_stable_workload() {
        // Thrash-prone loop: evolution should discover low insertion.
        let reqs: Vec<(u64, u64)> = (0..60_000).map(|i| (i % 25, 1)).collect();
        let t = micro_trace(&reqs);
        let mut p = Dgippr::new(20, 7);
        p.set_epoch_len(200);
        let early: f64 = {
            let mut hits = 0u64;
            for r in &t[..8000] {
                if p.on_request(r).is_hit() {
                    hits += 1;
                }
            }
            hits as f64 / 8000.0
        };
        let late: f64 = {
            let mut hits = 0u64;
            for r in &t[t.len() - 8000..] {
                if p.on_request(r).is_hit() {
                    hits += 1;
                }
            }
            hits as f64 / 8000.0
        };
        assert!(late >= early, "late {late} vs early {early}");
    }

    #[test]
    fn capacity_respected() {
        let mut p = Dgippr::new(100, 9);
        for r in micro_trace(&(0..1000).map(|i| (i % 50, 7)).collect::<Vec<_>>()) {
            p.on_request(&r);
            assert!(p.used_bytes() <= 100);
        }
    }
}
