//! ASC-IP: Adaptive Size-aware Cache Insertion Policy (Wang et al.,
//! ICCD 2022) — the paper's direct predecessor and strongest insertion
//! baseline.
//!
//! ASC-IP observes that in CDN workloads object size is the dominant
//! predictor of zero reuse, and maintains an adaptive size threshold `T`:
//! missing objects of size ≥ `T` are suspected ZROs and inserted at the LRU
//! position; smaller ones go to MRU. The threshold adapts from eviction
//! feedback:
//!
//! - a victim evicted *without* any hit whose residency began at MRU was a
//!   missed ZRO → lower `T` multiplicatively to catch similar objects;
//! - a hit on an object that had been inserted at the LRU position was a
//!   false ZRO call → raise `T`.
//!
//! All hit objects are promoted to MRU — exactly the limitation (no P-ZRO
//! handling) that motivates SCIP.

use cdn_cache::{EntryMeta, InsertPos, LruQueue, Request, Tick};

use super::{InsertionDecider, MissDecision, PromoteAction};

/// Adaptive size-aware insertion.
#[derive(Debug, Clone)]
pub struct AscIp {
    threshold: f64,
    /// Multiplicative adaptation step.
    pub delta: f64,
    min_threshold: f64,
    max_threshold: f64,
}

impl AscIp {
    /// Start with a permissive threshold (most objects go to MRU until the
    /// workload proves otherwise).
    pub fn new(initial_threshold: f64) -> Self {
        assert!(initial_threshold > 0.0);
        AscIp {
            threshold: initial_threshold,
            delta: 0.02,
            min_threshold: 64.0,
            max_threshold: 1e12,
        }
    }

    /// Default: 1 MB initial threshold.
    pub fn default_for_cdn() -> Self {
        Self::new(1.0 * 1024.0 * 1024.0)
    }

    /// Current threshold in bytes (diagnostics).
    pub fn threshold(&self) -> f64 {
        self.threshold
    }
}

impl InsertionDecider for AscIp {
    fn on_miss(&mut self, req: &Request, _cache: &LruQueue) -> MissDecision {
        let pos = if (req.size as f64) >= self.threshold {
            InsertPos::Lru
        } else {
            InsertPos::Mru
        };
        MissDecision::at(pos)
    }

    fn on_hit(&mut self, _req: &Request, meta: &EntryMeta, _cache: &LruQueue) -> PromoteAction {
        if meta.hits == 1 && !meta.inserted_at_mru {
            // We called this object a ZRO and it got reused: threshold was
            // too aggressive for its size range.
            self.threshold = (self.threshold * (1.0 + self.delta)).min(self.max_threshold);
        }
        PromoteAction::ToMru
    }

    fn on_evict(&mut self, victim: &EntryMeta, _tick: Tick) {
        // "the evicted object's hit token equals False" — a ZRO we failed
        // to detect (it entered at MRU and wasted a full queue traversal).
        if victim.hits == 0 && victim.inserted_at_mru {
            self.threshold = (self.threshold * (1.0 - self.delta)).max(self.min_threshold);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insertion::deciders::Mip;
    use crate::insertion::InsertionCache;
    use crate::replay;
    use cdn_cache::object::micro_trace;

    #[test]
    fn threshold_decreases_under_pure_zro_traffic() {
        let mut p = InsertionCache::new(AscIp::new(1e6), 100, "ASC-IP");
        let reqs: Vec<(u64, u64)> = (0..400).map(|i| (i, 10)).collect();
        let t0 = p.decider().threshold();
        replay(&mut p, &micro_trace(&reqs));
        assert!(p.decider().threshold() < t0);
    }

    #[test]
    fn threshold_recovers_on_false_positives() {
        let mut asc = AscIp::new(1e6);
        asc.threshold = 100.0; // force aggressive state
        let mut p = InsertionCache::new(asc, 10_000, "ASC-IP");
        // Large objects that ARE reused: every LRU insert that hits raises T.
        let mut reqs = Vec::new();
        for i in 0..50u64 {
            reqs.push((i, 500));
            reqs.push((i, 500));
        }
        replay(&mut p, &micro_trace(&reqs));
        assert!(p.decider().threshold() > 100.0);
    }

    #[test]
    fn separates_by_size_on_mixed_traffic() {
        // Small hot working set + large one-hit objects (the CDN pattern
        // ASC-IP was designed for): it should beat plain LRU.
        let mut reqs = Vec::new();
        let mut next = 1000u64;
        for i in 0..3000u64 {
            if i % 3 == 0 {
                reqs.push((i / 3 % 4, 50)); // hot small
            } else {
                reqs.push((next, 5_000)); // cold large
                next += 1;
            }
        }
        let t = micro_trace(&reqs);
        let cap = 10_200;
        let mut asc = InsertionCache::new(AscIp::new(1e6), cap, "ASC-IP");
        let mut lru = InsertionCache::new(Mip, cap, "LRU");
        let a = replay(&mut asc, &t).miss_ratio();
        let l = replay(&mut lru, &t).miss_ratio();
        assert!(a < l, "ASC-IP {a} vs LRU {l}");
    }

    #[test]
    fn threshold_stays_bounded() {
        let mut asc = AscIp::new(1e6);
        for _ in 0..10_000 {
            asc.on_evict(
                &cdn_cache::EntryMeta {
                    id: cdn_cache::ObjectId(1),
                    size: 10,
                    inserted_at_mru: true,
                    inserted_tick: 0,
                    last_access: 0,
                    hits: 0,
                    tag: 0,
                },
                0,
            );
        }
        assert!(asc.threshold() >= 64.0);
    }
}
