//! Insertion/promotion policies on an LRU victim-selection backbone.
//!
//! The paper's §6.3 baselines all share the same victim policy (evict from
//! the LRU end) and differ only in *placement*: where a missing object is
//! inserted and where a hit object is re-placed. [`InsertionDecider`]
//! captures exactly those two decisions plus eviction feedback, and
//! [`InsertionCache`] lifts any decider into a full [`CachePolicy`].
//!
//! PIPP and DGIPPR need interior queue positions and live in their own
//! modules on top of [`cdn_cache::SegmentedQueue`].

pub mod ascip;
pub mod daaip;
pub mod deciders;
pub mod dgippr;
pub mod dip;
pub mod dta;
pub mod pipp;
pub mod ship;

pub use ascip::AscIp;
pub use daaip::Daaip;
pub use deciders::{Bip, Lip, Mip};
pub use dgippr::Dgippr;
pub use dip::Dip;
pub use dta::Dta;
pub use pipp::Pipp;
pub use ship::Ship;

use cdn_cache::policy::RejectReason;
use cdn_cache::{
    AccessKind, CachePolicy, EntryMeta, InsertPos, LruQueue, PolicyStats, Request, Tick,
};

/// What to do with a hit object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PromoteAction {
    /// Move to the MRU position (classic promotion).
    ToMru,
    /// Move one slot toward MRU (PIPP-style).
    OneStep,
    /// Move to the LRU position (demotion — what SCIP does to P-ZROs).
    ToLru,
    /// Leave in place.
    Stay,
}

/// Placement decision for a missing object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MissDecision {
    /// Queue end to insert at.
    pub pos: InsertPos,
    /// Policy-private tag stored in the entry (signatures, class ids...).
    pub tag: u64,
}

impl MissDecision {
    /// Tag-less decision.
    pub fn at(pos: InsertPos) -> Self {
        MissDecision { pos, tag: 0 }
    }
}

/// The two placement decisions + feedback hooks of an insertion policy.
pub trait InsertionDecider {
    /// Placement of a missing object (about to be inserted).
    fn on_miss(&mut self, req: &Request, cache: &LruQueue) -> MissDecision;

    /// Action for a hit object (its entry metadata is provided).
    fn on_hit(&mut self, req: &Request, meta: &EntryMeta, cache: &LruQueue) -> PromoteAction;

    /// Feedback: `victim` was just evicted at `tick`.
    fn on_evict(&mut self, _victim: &EntryMeta, _tick: Tick) {}

    /// Approximate decider state size in bytes.
    fn memory_bytes(&self) -> usize {
        std::mem::size_of_val(self)
    }
}

/// An LRU-victim cache driven by an [`InsertionDecider`].
#[derive(Debug, Clone)]
pub struct InsertionCache<D> {
    decider: D,
    cache: LruQueue,
    name: String,
    stats: PolicyStats,
}

impl<D: InsertionDecider> InsertionCache<D> {
    /// Build with the given decider, capacity and display name.
    pub fn new(decider: D, capacity: u64, name: &str) -> Self {
        InsertionCache {
            decider,
            cache: LruQueue::new(capacity),
            name: name.to_string(),
            stats: PolicyStats::default(),
        }
    }

    /// The wrapped decider (for tests and ablations).
    pub fn decider(&self) -> &D {
        &self.decider
    }

    /// The underlying queue (read-only).
    pub fn queue(&self) -> &LruQueue {
        &self.cache
    }
}

impl<D: InsertionDecider> CachePolicy for InsertionCache<D> {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_request(&mut self, req: &Request) -> AccessKind {
        // Hit path: one hash probe; all follow-up work goes through the
        // handle. This loop dominates replay throughput.
        if let Some(h) = self.cache.lookup(req.id) {
            self.cache.record_hit_at(h, req.tick);
            let meta = self.cache.get_at(h);
            match self.decider.on_hit(req, &meta, &self.cache) {
                PromoteAction::ToMru => self.cache.promote_to_mru_at(h),
                PromoteAction::OneStep => self.cache.promote_one_at(h),
                PromoteAction::ToLru => self.cache.demote_to_lru_at(h),
                PromoteAction::Stay => {}
            }
            #[cfg(feature = "audit")]
            self.cache.audit().expect("insertion-cache invariants");
            return AccessKind::Hit;
        }
        if !self.cache.admissible(req.size) {
            return AccessKind::Rejected(RejectReason::TooLarge);
        }
        let decision = self.decider.on_miss(req, &self.cache);
        while self.cache.needs_eviction_for(req.size) {
            let victim = self.cache.evict_lru().expect("nonempty");
            self.stats.evictions += 1;
            self.decider.on_evict(&victim, req.tick);
        }
        let h = match decision.pos {
            InsertPos::Mru => self.cache.insert_mru(req.id, req.size, req.tick),
            InsertPos::Lru => self.cache.insert_lru(req.id, req.size, req.tick),
        };
        if decision.tag != 0 {
            self.cache.set_tag_at(h, decision.tag);
        }
        self.stats.insertions += 1;
        #[cfg(feature = "audit")]
        self.cache.audit().expect("insertion-cache invariants");
        AccessKind::Miss
    }

    fn capacity(&self) -> u64 {
        self.cache.capacity()
    }

    fn used_bytes(&self) -> u64 {
        self.cache.used_bytes()
    }

    fn memory_bytes(&self) -> usize {
        self.cache.memory_bytes() + self.decider.memory_bytes()
    }

    fn stats(&self) -> PolicyStats {
        PolicyStats {
            resident_objects: self.cache.len(),
            resident_bytes: self.cache.used_bytes(),
            ..self.stats
        }
    }

    #[inline]
    fn prefetch_hint(&self, id: cdn_cache::ObjectId) {
        self.cache.prefetch_lookup(id);
    }

    fn for_each_resident(&self, visit: &mut dyn FnMut(&cdn_cache::ResidentEntry)) -> bool {
        cdn_cache::export_lru_queue(&self.cache, 0, visit);
        true
    }

    fn restore_resident(&mut self, entries: &[cdn_cache::ResidentEntry]) -> bool {
        // Queue order and per-entry statistics are reconstructed exactly;
        // the decider's own state (set-dueling counters, SHiP tables...)
        // restarts cold.
        cdn_cache::restore_lru_queue(&mut self.cache, entries);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::deciders::{Lip, Mip};
    use super::*;
    use cdn_cache::object::micro_trace;

    #[test]
    fn mip_behaves_like_lru() {
        // Capacity 2 (unit sizes), sequence 1 2 3 1: LRU misses all four.
        let t = micro_trace(&[(1, 1), (2, 1), (3, 1), (1, 1)]);
        let mut p = InsertionCache::new(Mip, 2, "LRU");
        let m = crate::replay(&mut p, &t);
        assert_eq!(m.misses(), 4);
    }

    #[test]
    fn lip_protects_working_set() {
        // With LIP, 3 is inserted at LRU and evicted before it can damage
        // the {1,2} working set: 1 still hits afterwards.
        let t = micro_trace(&[(1, 1), (2, 1), (1, 1), (3, 1), (1, 1), (2, 1)]);
        let mut p = InsertionCache::new(Lip, 2, "LIP");
        let m = crate::replay(&mut p, &t);
        // 1,2 miss; 1 hits (promoted); 3 misses to LRU evicting 2 (LRU end
        // after 1's promotion)… then 1 hits, 2 misses.
        assert!(m.hits() >= 2, "hits {}", m.hits());
    }

    #[test]
    fn oversized_objects_bypass() {
        let t = micro_trace(&[(1, 100), (1, 100)]);
        let mut p = InsertionCache::new(Mip, 10, "LRU");
        let m = crate::replay(&mut p, &t);
        assert_eq!(m.misses(), 2);
        assert_eq!(p.used_bytes(), 0);
    }

    #[test]
    fn stats_track_insertions_and_evictions() {
        let t = micro_trace(&[(1, 1), (2, 1), (3, 1)]);
        let mut p = InsertionCache::new(Mip, 2, "LRU");
        crate::replay(&mut p, &t);
        let s = p.stats();
        assert_eq!(s.insertions, 3);
        assert_eq!(s.evictions, 1);
        assert_eq!(s.resident_objects, 2);
    }
}
