//! DAAIP: Deadblock Aware Adaptive Insertion Policy (Mahto et al.,
//! ICCD 2017).
//!
//! **Adaptation from CPU caches**: DAAIP predicts dead-on-arrival blocks
//! from per-region history and inserts predicted-dead blocks at low
//! priority, with an adaptive fallback when the predictor misbehaves. Our
//! object-cache port keeps both halves: a table of 2-bit "deadness"
//! counters keyed by size-class × popularity-class (the object analog of a
//! code region), trained by eviction outcomes, and an adaptive confidence
//! throttle — when predictions keep getting refuted by hits on
//! LRU-inserted objects, the policy backs off to MRU insertion.

use cdn_cache::hash::mix64;
use cdn_cache::{EntryMeta, FxHashMap, InsertPos, LruQueue, ObjectId, Request, Tick};

use super::{InsertionDecider, MissDecision, PromoteAction};

const N_CLASSES: usize = 256;
const DEAD_MAX: u8 = 3;
/// Predict dead when the class counter reaches this value.
const DEAD_THRESHOLD: u8 = 2;
const CONF_MAX: i32 = 256;

/// Deadblock-aware adaptive insertion.
#[derive(Debug, Clone)]
pub struct Daaip {
    dead: [u8; N_CLASSES],
    /// Confidence: positive = trust the predictor, negative = back off.
    conf: i32,
    /// Recent access counts per object, to derive the popularity class.
    freq: FxHashMap<ObjectId, u32>,
    freq_budget: usize,
}

fn size_class(size: u64) -> u64 {
    64 - size.max(1).leading_zeros() as u64
}

fn class_index(size: u64, freq: u32) -> usize {
    let pop_class = 32 - freq.min(7).leading_zeros() as u64; // 0..=3ish
    (mix64(size_class(size) ^ (pop_class << 32)) % N_CLASSES as u64) as usize
}

impl Daaip {
    /// Fresh predictor; `freq_budget` bounds the frequency table (object
    /// count, roughly the cache's object population).
    pub fn new(freq_budget: usize) -> Self {
        Daaip {
            dead: [0; N_CLASSES],
            conf: CONF_MAX / 2,
            freq: FxHashMap::default(),
            freq_budget: freq_budget.max(1024),
        }
    }

    fn bump_freq(&mut self, id: ObjectId) -> u32 {
        if self.freq.len() >= self.freq_budget && !self.freq.contains_key(&id) {
            // Cheap wholesale aging: halve and drop cold entries.
            self.freq.retain(|_, c| {
                *c /= 2;
                *c > 0
            });
        }
        let c = self.freq.entry(id).or_insert(0);
        *c = c.saturating_add(1);
        *c
    }

    /// Predictor confidence (diagnostics).
    pub fn confidence(&self) -> i32 {
        self.conf
    }
}

impl InsertionDecider for Daaip {
    fn on_miss(&mut self, req: &Request, _cache: &LruQueue) -> MissDecision {
        let f = self.bump_freq(req.id);
        let class = class_index(req.size, f.saturating_sub(1));
        let predicted_dead = self.dead[class] >= DEAD_THRESHOLD;
        let pos = if predicted_dead && self.conf > 0 {
            InsertPos::Lru
        } else {
            InsertPos::Mru
        };
        MissDecision {
            pos,
            tag: class as u64 + 1,
        }
    }

    fn on_hit(&mut self, req: &Request, meta: &EntryMeta, _cache: &LruQueue) -> PromoteAction {
        self.bump_freq(req.id);
        if meta.hits == 1 && meta.tag != 0 {
            let class = (meta.tag - 1) as usize;
            // A hit refutes deadness for the class.
            self.dead[class] = self.dead[class].saturating_sub(1);
            if !meta.inserted_at_mru {
                // We inserted it at LRU and it was still reused: the
                // predictor cost us recency; lose confidence.
                self.conf = (self.conf - 4).max(-CONF_MAX);
            }
        }
        PromoteAction::ToMru
    }

    fn on_evict(&mut self, victim: &EntryMeta, _tick: Tick) {
        if victim.tag == 0 {
            return;
        }
        let class = (victim.tag - 1) as usize;
        if victim.hits == 0 {
            self.dead[class] = (self.dead[class] + 1).min(DEAD_MAX);
            if victim.inserted_at_mru {
                // Dead object rode the whole queue: predictor would have
                // helped; gain confidence.
                self.conf = (self.conf + 1).min(CONF_MAX);
            }
        }
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of_val(self) + self.freq.capacity() * 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insertion::deciders::Mip;
    use crate::insertion::InsertionCache;
    use crate::replay;
    use cdn_cache::object::micro_trace;

    #[test]
    fn class_index_in_range() {
        for size in [1u64, 100, 10_000, u64::MAX] {
            for f in [0u32, 1, 5, 100] {
                assert!(class_index(size, f) < N_CLASSES);
            }
        }
    }

    #[test]
    fn learns_dead_scan_class() {
        // Hot pair of 10-byte objects + one-hit 1000-byte scan: DAAIP
        // should learn the scan class is dead and beat LRU.
        let mut reqs = Vec::new();
        let mut next = 100u64;
        for i in 0..1200u64 {
            if i % 3 == 0 {
                reqs.push((i / 3 % 2, 10));
            } else {
                reqs.push((next, 1000));
                next += 1;
            }
        }
        let t = micro_trace(&reqs);
        let mut daaip = InsertionCache::new(Daaip::new(4096), 2020, "DAAIP");
        let mut lru = InsertionCache::new(Mip, 2020, "LRU");
        let d = replay(&mut daaip, &t).miss_ratio();
        let l = replay(&mut lru, &t).miss_ratio();
        assert!(d < l, "DAAIP {d} vs LRU {l}");
    }

    #[test]
    fn confidence_drops_on_refuted_predictions() {
        let mut p = InsertionCache::new(Daaip::new(4096), 100, "DAAIP");
        // First train a dead class (ids never reused)…
        let mut reqs: Vec<(u64, u64)> = (0..300).map(|i| (i, 30)).collect();
        // …then reuse that class heavily so LRU-inserted objects get hits.
        for i in 300..360u64 {
            reqs.push((i, 30));
            reqs.push((i, 30));
        }
        let conf_start = CONF_MAX / 2;
        let t = micro_trace(&reqs);
        replay(&mut p, &t);
        assert!(p.decider().confidence() != conf_start);
    }

    #[test]
    fn freq_table_stays_bounded() {
        let mut p = InsertionCache::new(Daaip::new(1024), 10_000, "DAAIP");
        let reqs: Vec<(u64, u64)> = (0..20_000).map(|i| (i, 1)).collect();
        replay(&mut p, &micro_trace(&reqs));
        assert!(
            p.decider().freq.len() <= 1100,
            "freq {}",
            p.decider().freq.len()
        );
    }
}
