//! DIP: Dynamic Insertion Policy via set dueling (Qureshi et al. 2007).
//!
//! **Adaptation from CPU caches**: DIP dedicates a few cache *sets* to pure
//! LRU (MIP) and a few to BIP, and a saturating policy-selector counter
//! (PSEL) tallies which leader group misses less; follower sets use the
//! winner. An object cache has no sets, so we hash object ids into leader
//! groups instead: ids with `mix64(id) % 32 == 0` are MIP leaders,
//! `== 1` are BIP leaders, everything else follows PSEL. This preserves
//! DIP's property that the duel is decided by real misses on a sampled
//! ~1/32 of the traffic.

use cdn_cache::hash::mix64;
use cdn_cache::{EntryMeta, InsertPos, LruQueue, Request, SimRng};

use super::{InsertionDecider, MissDecision, PromoteAction};

const LEADER_MOD: u64 = 32;
const PSEL_MAX: i32 = 1024;

/// Set-dueling dynamic insertion.
#[derive(Debug, Clone)]
pub struct Dip {
    /// PSEL > 0 favours BIP, ≤ 0 favours MIP.
    psel: i32,
    epsilon: f64,
    rng: SimRng,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Group {
    MipLeader,
    BipLeader,
    Follower,
}

fn group_of(id: u64) -> Group {
    match mix64(id) % LEADER_MOD {
        0 => Group::MipLeader,
        1 => Group::BipLeader,
        _ => Group::Follower,
    }
}

impl Dip {
    /// DIP with BIP's classic ε = 1/32.
    pub fn new(seed: u64) -> Self {
        Dip {
            psel: 0,
            epsilon: 1.0 / 32.0,
            rng: SimRng::new(seed),
        }
    }

    /// Current selector value (tests/diagnostics).
    pub fn psel(&self) -> i32 {
        self.psel
    }

    fn bip_pos(&mut self) -> InsertPos {
        if self.rng.chance(self.epsilon) {
            InsertPos::Mru
        } else {
            InsertPos::Lru
        }
    }
}

impl InsertionDecider for Dip {
    fn on_miss(&mut self, req: &Request, _cache: &LruQueue) -> MissDecision {
        let pos = match group_of(req.id.0) {
            Group::MipLeader => {
                // A miss on a MIP leader is evidence against MIP.
                self.psel = (self.psel + 1).min(PSEL_MAX);
                InsertPos::Mru
            }
            Group::BipLeader => {
                self.psel = (self.psel - 1).max(-PSEL_MAX);
                self.bip_pos()
            }
            Group::Follower => {
                if self.psel > 0 {
                    self.bip_pos()
                } else {
                    InsertPos::Mru
                }
            }
        };
        MissDecision::at(pos)
    }

    fn on_hit(&mut self, _req: &Request, _meta: &EntryMeta, _cache: &LruQueue) -> PromoteAction {
        PromoteAction::ToMru
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insertion::deciders::{Lip, Mip};
    use crate::insertion::InsertionCache;
    use crate::replay;
    use cdn_cache::object::micro_trace;

    #[test]
    fn leader_groups_are_sparse_and_disjoint() {
        let mut mip = 0;
        let mut bip = 0;
        for id in 0..32_000u64 {
            match group_of(id) {
                Group::MipLeader => mip += 1,
                Group::BipLeader => bip += 1,
                Group::Follower => {}
            }
        }
        assert!((800..1200).contains(&mip), "mip leaders {mip}");
        assert!((800..1200).contains(&bip), "bip leaders {bip}");
    }

    #[test]
    fn psel_moves_toward_bip_on_thrash() {
        // Cyclic scan larger than the cache: MIP leaders miss every time,
        // BIP leaders eventually hold their objects.
        let reqs: Vec<(u64, u64)> = (0..4000).map(|i| (i % 40, 1)).collect();
        let t = micro_trace(&reqs);
        let mut p = InsertionCache::new(Dip::new(5), 20, "DIP");
        replay(&mut p, &t);
        assert!(p.decider().psel() > 0, "psel {}", p.decider().psel());
    }

    #[test]
    fn dip_tracks_the_better_of_lip_and_mip() {
        // On a thrashing loop DIP should land near BIP/LIP, far from MIP.
        let reqs: Vec<(u64, u64)> = (0..6000).map(|i| (i % 60, 1)).collect();
        let t = micro_trace(&reqs);
        let mr = |mr: f64| mr;
        let mut dip = InsertionCache::new(Dip::new(7), 30, "DIP");
        let mut lipc = InsertionCache::new(Lip, 30, "LIP");
        let mut mipc = InsertionCache::new(Mip, 30, "LRU");
        let d = mr(replay(&mut dip, &t).miss_ratio());
        let l = mr(replay(&mut lipc, &t).miss_ratio());
        let m = mr(replay(&mut mipc, &t).miss_ratio());
        assert!(m > l, "sanity: MIP should thrash ({m} vs {l})");
        assert!(
            d < (l + m) / 2.0,
            "DIP {d} should be near LIP {l}, not MIP {m}"
        );
    }

    #[test]
    fn dip_follows_mip_on_recency_friendly_stream() {
        // Strong temporal locality: MIP wins and PSEL should stay ≤ ~0.
        let mut reqs = Vec::new();
        for i in 0..3000u64 {
            reqs.push((i / 10 % 8, 1)); // slowly rotating hot set that fits
        }
        let t = micro_trace(&reqs);
        let mut dip = InsertionCache::new(Dip::new(9), 8, "DIP");
        let mut mipc = InsertionCache::new(Mip, 8, "LRU");
        let d = replay(&mut dip, &t).miss_ratio();
        let m = replay(&mut mipc, &t).miss_ratio();
        assert!(d <= m + 0.02, "DIP {d} vs MIP {m}");
    }
}
