//! PIPP: Promotion/Insertion Pseudo-Partitioning (Xie & Loh, ISCA 2009).
//!
//! **Adaptation from CPU caches**: PIPP inserts a core's blocks at a
//! position proportional to that core's partition allocation and promotes a
//! hit block *one position* toward MRU with probability `p_prom`. A CDN
//! cache serves a single logical stream, so the partition machinery reduces
//! to its single-stream configuration: insert at a fixed queue fraction
//! (default: 1/4 of the queue above the LRU end, PIPP's low-allocation
//! setting) and promote-by-one on hit. The paper's §1 critique — one-step
//! promotion strands P-ZROs in huge CDN queues — is directly visible in
//! Figure 8 with this implementation.
//!
//! Positions are realised with an 8-segment [`SegmentedQueue`]; inserting
//! into segment `k` is an O(1) stand-in for "insert at fraction k/8".

use cdn_cache::policy::RejectReason;
use cdn_cache::{AccessKind, CachePolicy, PolicyStats, Request, SegmentedQueue, SimRng};

const N_SEGMENTS: usize = 8;

/// Promotion/insertion pseudo-partitioning for a single request stream.
#[derive(Debug, Clone)]
pub struct Pipp {
    q: SegmentedQueue,
    /// Insertion segment (0 = LRU end).
    pub insert_seg: usize,
    /// Probability a hit promotes by one position.
    pub p_prom: f64,
    rng: SimRng,
    stats: PolicyStats,
}

impl Pipp {
    /// PIPP with the paper-default single-stream parameters
    /// (insert at 1/4 from the LRU end, promote with p = 3/4).
    pub fn new(capacity: u64, seed: u64) -> Self {
        Pipp {
            q: SegmentedQueue::equal(capacity, N_SEGMENTS),
            insert_seg: N_SEGMENTS / 4,
            p_prom: 0.75,
            rng: SimRng::new(seed),
            stats: PolicyStats::default(),
        }
    }

    /// Internal queue (tests).
    pub fn queue(&self) -> &SegmentedQueue {
        &self.q
    }
}

impl CachePolicy for Pipp {
    fn name(&self) -> &str {
        "PIPP"
    }

    fn on_request(&mut self, req: &Request) -> AccessKind {
        if self.q.contains(req.id) {
            self.q.record_hit(req.id, req.tick);
            if self.rng.chance(self.p_prom) {
                self.q.promote_one_global(req.id);
            }
            return AccessKind::Hit;
        }
        if req.size > self.q.capacity() {
            return AccessKind::Rejected(RejectReason::TooLarge);
        }
        let evicted = self.q.insert(self.insert_seg, req.id, req.size, req.tick);
        self.stats.evictions += evicted.len() as u64;
        self.stats.insertions += 1;
        AccessKind::Miss
    }

    fn capacity(&self) -> u64 {
        self.q.capacity()
    }

    fn used_bytes(&self) -> u64 {
        self.q.used_bytes()
    }

    fn memory_bytes(&self) -> usize {
        self.q.memory_bytes()
    }

    fn stats(&self) -> PolicyStats {
        PolicyStats {
            resident_objects: self.q.len(),
            resident_bytes: self.q.used_bytes(),
            ..self.stats
        }
    }

    #[inline]
    fn prefetch_hint(&self, id: cdn_cache::ObjectId) {
        self.q.prefetch_lookup(id);
    }

    fn for_each_resident(&self, visit: &mut dyn FnMut(&cdn_cache::ResidentEntry)) -> bool {
        cdn_cache::export_segmented_queue(&self.q, visit);
        true
    }

    fn restore_resident(&mut self, entries: &[cdn_cache::ResidentEntry]) -> bool {
        cdn_cache::restore_segmented_queue(&mut self.q, entries);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insertion::deciders::Mip;
    use crate::insertion::InsertionCache;
    use crate::replay;
    use cdn_cache::object::micro_trace;

    #[test]
    fn inserts_low_in_the_queue() {
        let mut p = Pipp::new(8000, 1);
        for r in micro_trace(&[(1, 10), (2, 10)]) {
            p.on_request(&r);
        }
        assert_eq!(p.queue().segment_of(cdn_cache::ObjectId(1)), Some(2));
        assert_eq!(p.queue().segment_of(cdn_cache::ObjectId(2)), Some(2));
    }

    #[test]
    fn hits_promote_gradually_not_to_mru() {
        let mut p = Pipp::new(8000, 1);
        p.p_prom = 1.0;
        let mut reqs = vec![(1, 10), (2, 10), (3, 10)];
        reqs.push((1, 10)); // hit: promote one step only
        for r in micro_trace(&reqs) {
            p.on_request(&r);
        }
        // After one promotion, object 1 is not at the global MRU front.
        let front = p.queue().iter_global().next().unwrap().id;
        assert_ne!(front.0, 1);
    }

    #[test]
    fn repeated_hits_eventually_reach_protection() {
        let mut p = Pipp::new(800, 1);
        p.p_prom = 1.0;
        let mut reqs = vec![(1, 10)];
        for _ in 0..100 {
            reqs.push((1, 10));
        }
        for r in micro_trace(&reqs) {
            p.on_request(&r);
        }
        assert_eq!(
            p.queue().segment_of(cdn_cache::ObjectId(1)),
            Some(N_SEGMENTS - 1)
        );
    }

    #[test]
    fn scan_resistant_relative_to_lru() {
        // Hot objects are hammered enough to climb above the insertion
        // segment, then a flood larger than the cache passes through. LRU
        // loses the hot set to the flood; PIPP's low insertion point means
        // the flood dies in the bottom segments.
        let mut reqs = Vec::new();
        let mut next = 1000u64;
        for _round in 0..8 {
            for hot in 0..4u64 {
                for _ in 0..8 {
                    reqs.push((hot, 10)); // climb via promote-by-one
                }
            }
            for _ in 0..50 {
                reqs.push((next, 10)); // flood: 500 bytes > capacity
                next += 1;
            }
        }
        let t = micro_trace(&reqs);
        let cap = 200;
        let mut pipp = Pipp::new(cap, 3);
        pipp.p_prom = 1.0;
        let mut lru = InsertionCache::new(Mip, cap, "LRU");
        let p = replay(&mut pipp, &t).miss_ratio();
        let l = replay(&mut lru, &t).miss_ratio();
        assert!(p < l, "PIPP {p} vs LRU {l}");
    }

    #[test]
    fn capacity_respected() {
        let mut p = Pipp::new(100, 1);
        for r in micro_trace(&(0..500).map(|i| (i, 9)).collect::<Vec<_>>()) {
            p.on_request(&r);
            assert!(p.used_bytes() <= 100);
        }
    }
}
